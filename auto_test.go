package congestedclique

// Tests for the demand-aware planner (AlgorithmAuto) at the public API
// level: misclassification edges (empty instances, the direct-send
// boundary), the bit-identical-to-Deterministic guarantee whenever the
// pipeline is selected, the fast paths' word advantage on sparse demand, and
// a fuzzer comparing planned results against the deterministic router.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"congestedclique/internal/workload"
)

// routeDeliveredEqual deep-compares two route results' deliveries.
func routeDeliveredEqual(t *testing.T, label string, got, want *RouteResult) {
	t.Helper()
	if len(got.Delivered) != len(want.Delivered) {
		t.Fatalf("%s: delivered to %d nodes, want %d", label, len(got.Delivered), len(want.Delivered))
	}
	for i := range want.Delivered {
		if len(got.Delivered[i]) != len(want.Delivered[i]) {
			t.Fatalf("%s: node %d received %d messages, want %d", label, i, len(got.Delivered[i]), len(want.Delivered[i]))
		}
		for j := range want.Delivered[i] {
			if got.Delivered[i][j] != want.Delivered[i][j] {
				t.Fatalf("%s: node %d message %d = %+v, want %+v", label, i, j, got.Delivered[i][j], want.Delivered[i][j])
			}
		}
	}
}

// scenarioMessages converts a workload scenario instance to the public
// message type.
func scenarioMessages(t *testing.T, name string, n int, seed int64) [][]Message {
	t.Helper()
	sc, ok := workload.ScenarioByName(name)
	if !ok {
		t.Fatalf("unknown scenario %q", name)
	}
	ri, err := sc.Build(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	msgs := make([][]Message, n)
	for i, row := range ri.Msgs {
		for _, m := range row {
			msgs[i] = append(msgs[i], Message{Src: m.Src, Dst: m.Dst, Seq: m.Seq, Payload: int64(m.Payload)})
		}
	}
	return msgs
}

// TestAutoEmptyInstance pins the degenerate edge: an instance with no
// messages costs zero rounds and zero words under the planner.
func TestAutoEmptyInstance(t *testing.T) {
	t.Parallel()
	for _, msgs := range [][][]Message{nil, make([][]Message, 64), {{}, {}}} {
		res, err := Route(64, msgs, WithAlgorithm(AlgorithmAuto))
		if err != nil {
			t.Fatal(err)
		}
		if res.Strategy != StrategyEmpty {
			t.Fatalf("strategy = %v, want empty", res.Strategy)
		}
		if res.Stats.Rounds != 0 || res.Stats.TotalWords != 0 || res.Stats.TotalMessages != 0 {
			t.Fatalf("empty instance cost %+v, want all-zero", res.Stats)
		}
		for i, d := range res.Delivered {
			if len(d) != 0 {
				t.Fatalf("node %d received %d messages from an empty instance", i, len(d))
			}
		}
	}
}

// TestAutoDirectBoundary pins the planner's direct-send boundary through the
// public API: a single hot sink fed at exactly the boundary multiplicity
// goes direct; one past the boundary (with many sources) falls back to the
// pipeline. Both deliver exactly what the deterministic router delivers.
func TestAutoDirectBoundary(t *testing.T) {
	t.Parallel()
	const n = 64
	ctx := context.Background()
	cl, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// The catalog's hotspot-sink scenario sits exactly on the boundary.
	at := scenarioMessages(t, "hotspot-sink", n, 1)
	resAt, err := cl.Route(ctx, at, WithAlgorithm(AlgorithmAuto))
	if err != nil {
		t.Fatal(err)
	}
	if resAt.Strategy != StrategyDirect {
		t.Fatalf("boundary instance: strategy = %v, want direct", resAt.Strategy)
	}
	det, err := cl.Route(ctx, at)
	if err != nil {
		t.Fatal(err)
	}
	if det.Strategy != 0 || det.Strategy.String() != "unplanned" {
		t.Fatalf("deterministic run reported strategy %v, want unplanned zero value", det.Strategy)
	}
	routeDeliveredEqual(t, "at-boundary", resAt, det)

	// 12 sources sending 5 copies each to the sink: multiplicity 5 is past
	// the direct budget and 12 sources exceed the broadcast gate (64/8 = 8),
	// so the planner must keep the pipeline.
	over := make([][]Message, n)
	for src := 1; src <= 12; src++ {
		for k := 0; k < 5; k++ {
			over[src] = append(over[src], Message{Src: src, Dst: 0, Seq: k, Payload: int64(src*100 + k)})
		}
	}
	resOver, err := cl.Route(ctx, over, WithAlgorithm(AlgorithmAuto))
	if err != nil {
		t.Fatal(err)
	}
	if resOver.Strategy != StrategyPipeline {
		t.Fatalf("over-boundary instance: strategy = %v, want pipeline", resOver.Strategy)
	}
	detOver, err := cl.Route(ctx, over)
	if err != nil {
		t.Fatal(err)
	}
	routeDeliveredEqual(t, "over-boundary", resOver, detOver)
	if resOver.Stats != detOver.Stats {
		t.Fatalf("pipeline fallback stats %+v diverge from Deterministic %+v", resOver.Stats, detOver.Stats)
	}
}

// TestAutoUniformFullLoadBitIdentical is the acceptance pin: on the uniform
// full-load golden workload the planner selects the pipeline and reproduces
// the deterministic goldens bit for bit (same numbers
// TestRouteStatsInvariants holds Deterministic to).
func TestAutoUniformFullLoadBitIdentical(t *testing.T) {
	for _, g := range statsGoldens {
		g := g
		if g.n < 8 {
			continue // the planner's catalog sizes; goldens below that are tiny-clique only
		}
		t.Run(fmt.Sprintf("n=%d", g.n), func(t *testing.T) {
			t.Parallel()
			res, err := Route(g.n, benchRouteWorkload(g.n), WithAlgorithm(AlgorithmAuto))
			if err != nil {
				t.Fatal(err)
			}
			if res.Strategy != StrategyPipeline {
				t.Fatalf("strategy = %v, want pipeline on full load", res.Strategy)
			}
			s := res.Stats
			if s.Rounds != g.routeRounds || s.MaxEdgeWords != g.routeMEW || s.MaxEdgeMessages != g.routeMEM ||
				s.TotalMessages != g.routeMsgs || s.TotalWords != g.routeWords {
				t.Errorf("AlgorithmAuto stats %+v diverge from deterministic goldens %+v", s, g)
			}
			det, err := Route(g.n, benchRouteWorkload(g.n))
			if err != nil {
				t.Fatal(err)
			}
			routeDeliveredEqual(t, "uniform-full", res, det)
		})
	}
}

// TestAutoSparseWordAdvantage is the other acceptance pin: on the sparse
// catalog scenario the planner's direct path moves at least 5x fewer words
// than the full pipeline on the same instance.
func TestAutoSparseWordAdvantage(t *testing.T) {
	t.Parallel()
	const n = 256
	msgs := scenarioMessages(t, "sparse", n, 1)
	ctx := context.Background()
	cl, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	auto, err := cl.Route(ctx, msgs, WithAlgorithm(AlgorithmAuto))
	if err != nil {
		t.Fatal(err)
	}
	if auto.Strategy != StrategyDirect {
		t.Fatalf("sparse scenario: strategy = %v, want direct", auto.Strategy)
	}
	det, err := cl.Route(ctx, msgs)
	if err != nil {
		t.Fatal(err)
	}
	routeDeliveredEqual(t, "sparse", auto, det)
	if auto.Stats.TotalWords*5 > det.Stats.TotalWords {
		t.Fatalf("sparse words: auto %d vs pipeline %d — advantage below 5x",
			auto.Stats.TotalWords, det.Stats.TotalWords)
	}
	if auto.Stats.Rounds >= det.Stats.Rounds {
		t.Fatalf("sparse rounds: auto %d vs pipeline %d", auto.Stats.Rounds, det.Stats.Rounds)
	}
}

// TestAutoSortPipelineArmBitIdentical pins the sorting planner's general
// arm: a full-load instance with a wide value domain is classified
// SortStrategyPipeline and runs Algorithm 4 with stats bit-identical to
// Deterministic (see auto_sort_test.go for the fast arms).
func TestAutoSortPipelineArmBitIdentical(t *testing.T) {
	t.Parallel()
	const n = 16
	values := benchSortWorkload(n)
	auto, err := Sort(n, values, WithAlgorithm(AlgorithmAuto))
	if err != nil {
		t.Fatal(err)
	}
	det, err := Sort(n, values)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Strategy != SortStrategyPipeline {
		t.Fatalf("strategy = %v, want pipeline", auto.Strategy)
	}
	if auto.Stats != det.Stats {
		t.Fatalf("auto sort stats %+v diverge from deterministic %+v", auto.Stats, det.Stats)
	}
	if auto.Total != det.Total {
		t.Fatalf("auto sort total %d vs %d", auto.Total, det.Total)
	}
}

// FuzzAutoMatchesDeterministic generates random (mostly sparse, sometimes
// skewed) instances and checks that AlgorithmAuto delivers exactly what the
// deterministic router delivers, whatever strategy the planner picked.
func FuzzAutoMatchesDeterministic(f *testing.F) {
	f.Add(int64(1), uint8(16), uint8(4), false)
	f.Add(int64(2), uint8(9), uint8(0), false)
	f.Add(int64(3), uint8(25), uint8(12), true)
	f.Add(int64(4), uint8(31), uint8(200), true)
	f.Fuzz(func(t *testing.T, seed int64, nRaw, perRaw uint8, concentrate bool) {
		n := 8 + int(nRaw)%25 // 8..32
		per := int(perRaw) % (n + 1)
		rng := rand.New(rand.NewSource(seed))
		msgs := make([][]Message, n)
		recv := make([]int, n)
		for src := 0; src < n; src++ {
			count := rng.Intn(per + 1)
			for k := 0; k < count; k++ {
				dst := rng.Intn(n)
				if concentrate {
					dst = rng.Intn(1 + n/4) // pile demand on few sinks
				}
				if recv[dst] >= n {
					continue
				}
				recv[dst]++
				msgs[src] = append(msgs[src], Message{Src: src, Dst: dst, Seq: len(msgs[src]), Payload: rng.Int63n(1 << 40)})
			}
		}
		auto, err := Route(n, msgs, WithAlgorithm(AlgorithmAuto))
		if err != nil {
			t.Fatal(err)
		}
		det, err := Route(n, msgs)
		if err != nil {
			t.Fatal(err)
		}
		routeDeliveredEqual(t, fmt.Sprintf("n=%d strategy=%v", n, auto.Strategy), auto, det)
	})
}
