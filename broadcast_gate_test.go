package congestedclique

// The adversarial broadcast-gate pin: two instances that straddle the
// planner's BroadcastMaxRounds gate (workload.BroadcastGateRoute). Just under
// the gate the planner takes the broadcast fast path at exactly the round
// cap; one message per source past it the fast path is rejected and the
// Theorem 3.7 pipeline handles the skew — same deliveries, rounds within the
// theorem bound and per-edge words a small constant.

import (
	"fmt"
	"testing"

	"congestedclique/internal/workload"
)

// instanceMessages converts a workload routing instance to the public
// message type.
func instanceMessages(ri *workload.RoutingInstance) [][]Message {
	msgs := make([][]Message, ri.N)
	for i, row := range ri.Msgs {
		msgs[i] = make([]Message, len(row))
		for j, m := range row {
			msgs[i][j] = Message{Src: m.Src, Dst: m.Dst, Seq: m.Seq, Payload: int64(m.Payload)}
		}
	}
	return msgs
}

func TestBroadcastGate(t *testing.T) {
	t.Parallel()
	const n = 64
	for _, over := range []bool{false, true} {
		ri, err := workload.BroadcastGateRoute(n, over)
		if err != nil {
			t.Fatal(err)
		}
		msgs := instanceMessages(ri)

		auto, err := Route(n, msgs, WithAlgorithm(AlgorithmAuto))
		if err != nil {
			t.Fatalf("over=%v: auto: %v", over, err)
		}
		det, err := Route(n, msgs)
		if err != nil {
			t.Fatalf("over=%v: deterministic: %v", over, err)
		}
		routeDeliveredEqual(t, fmt.Sprintf("gate over=%v", over), auto, det)

		if over {
			if auto.Strategy != StrategyPipeline {
				t.Fatalf("one past the gate: strategy %v, want pipeline", auto.Strategy)
			}
			if auto.Stats != det.Stats {
				t.Fatalf("pipeline fallback stats %+v diverge from deterministic %+v", auto.Stats, det.Stats)
			}
			// Theorem 3.7: the pipeline finishes within 16 rounds with
			// constant per-edge bandwidth.
			if auto.Stats.Rounds > 16 {
				t.Fatalf("pipeline used %d rounds, Theorem 3.7 allows 16", auto.Stats.Rounds)
			}
			if auto.Stats.MaxEdgeWords > 64 {
				t.Fatalf("pipeline per-edge load %d words is not a small constant", auto.Stats.MaxEdgeWords)
			}
		} else {
			if auto.Strategy != StrategyBroadcast {
				t.Fatalf("just under the gate: strategy %v, want broadcast", auto.Strategy)
			}
			// Exactly at the cap: one scatter round plus BroadcastMaxRounds-1
			// delivery rounds.
			if auto.Stats.Rounds != 8 {
				t.Fatalf("broadcast at the cap used %d rounds, want 8", auto.Stats.Rounds)
			}
		}

		// The sparse handle must agree bit for bit on both sides of the gate
		// (broadcast runs on the step executors, the rejected shape falls
		// back to the dense pipeline).
		sparse, err := Route(n, msgs, WithAlgorithm(AlgorithmAuto), WithSparsePath())
		if err != nil {
			t.Fatalf("over=%v: sparse: %v", over, err)
		}
		routeResultEqual(t, "sparse-path gate", sparse, auto)
	}
}
