package congestedclique

// Tests for the cross-run plan and schedule cache (WithPlanCache) and the
// charged census (WithChargedCensus). The safety claim under test: a cached
// hit can never change a result — every hit is validated against the exact
// instance, the seeded schedule replays only on the run that matched, and a
// drifted or colliding instance always re-plans. The perf claim: a pipeline
// hit skips the schedule-establishment rounds (16 -> 8, plus the 3-round
// census either way).

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// cachePipelineInstance is a full-load pipeline-shaped demand (total n^2
// messages beats the n^2/4 volume gate) with a rotation so rows differ.
func cachePipelineInstance(n, salt int) [][]Message {
	msgs := make([][]Message, n)
	for i := 0; i < n; i++ {
		row := make([]Message, n)
		for j := 0; j < n; j++ {
			row[j] = Message{Src: i, Dst: (i + j + salt) % n, Seq: j, Payload: int64(salt<<20 | i<<10 | j)}
		}
		msgs[i] = row
	}
	return msgs
}

func cacheSortInstance(n, salt int) [][]int64 {
	vals := make([][]int64, n)
	for i := 0; i < n; i++ {
		vals[i] = make([]int64, n)
		for j := 0; j < n; j++ {
			vals[i][j] = int64((i*31+j*17+salt*101)%997) - 500
		}
	}
	return vals
}

// TestPlanCacheRouteHitBitIdentical pins the whole contract on the route
// side at once: the miss and every subsequent hit deliver bit-identically to
// a cache-off handle, the hit skips the four announcement exchanges
// (16 -> 8 protocol rounds) while the census adds its 3 rounds to both, and
// the handle counters account for every lookup.
func TestPlanCacheRouteHitBitIdentical(t *testing.T) {
	t.Parallel()
	const n = 64
	ctx := context.Background()
	msgs := cachePipelineInstance(n, 0)

	base, err := New(n, WithAlgorithm(AlgorithmAuto))
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	golden, err := base.Route(ctx, msgs)
	if err != nil {
		t.Fatal(err)
	}
	if golden.Strategy != StrategyPipeline {
		t.Fatalf("instance classified %v, the cache round-skip needs pipeline", golden.Strategy)
	}

	cl, err := New(n, WithAlgorithm(AlgorithmAuto), WithPlanCache(8))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	miss, err := cl.Route(ctx, msgs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(miss.Delivered, golden.Delivered) {
		t.Fatal("miss run diverged from cache-off golden")
	}
	if want := golden.Stats.Rounds + RouteCensusRounds; miss.Stats.Rounds != want {
		t.Fatalf("miss rounds = %d, want %d (plain %d + census %d)", miss.Stats.Rounds, want, golden.Stats.Rounds, RouteCensusRounds)
	}

	for rep := 0; rep < 3; rep++ {
		hit, err := cl.Route(ctx, msgs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(hit.Delivered, golden.Delivered) {
			t.Fatalf("hit run %d diverged from cache-off golden", rep)
		}
		if hit.Strategy != golden.Strategy {
			t.Fatalf("hit strategy %v, golden %v", hit.Strategy, golden.Strategy)
		}
		// Hit cost: census (3) + the 8 payload rounds; the 8 announcement
		// rounds are replayed from the cached schedule.
		if hit.Stats.Rounds >= miss.Stats.Rounds {
			t.Fatalf("hit rounds = %d, no cheaper than the miss's %d", hit.Stats.Rounds, miss.Stats.Rounds)
		}
		if want := RouteCensusRounds + golden.Stats.Rounds/2; hit.Stats.Rounds != want {
			t.Fatalf("hit rounds = %d, want %d (census %d + payload %d)", hit.Stats.Rounds, want, RouteCensusRounds, golden.Stats.Rounds/2)
		}
		if hit.Stats.TotalWords >= miss.Stats.TotalWords {
			t.Fatalf("hit words = %d, no cheaper than the miss's %d", hit.Stats.TotalWords, miss.Stats.TotalWords)
		}
	}

	cs := cl.CumulativeStats()
	if cs.PlanCacheHits != 3 || cs.PlanCacheMisses != 1 || cs.PlanCacheInvalidations != 0 {
		t.Fatalf("cache counters = (%d,%d,%d), want (3,1,0)", cs.PlanCacheHits, cs.PlanCacheMisses, cs.PlanCacheInvalidations)
	}
}

// TestPlanCacheRouteDrift pins that touching a single destination after the
// cache is warm re-plans from scratch and still delivers correctly: the
// seeded schedule never leaks across instances.
func TestPlanCacheRouteDrift(t *testing.T) {
	t.Parallel()
	const n = 64
	ctx := context.Background()

	cl, err := New(n, WithAlgorithm(AlgorithmAuto), WithPlanCache(8))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Route(ctx, cachePipelineInstance(n, 0)); err != nil {
		t.Fatal(err)
	}

	// Swap two destinations within one row: receive totals are unchanged
	// (still a legal full-load instance) but the ordered destination
	// sequence — which the captured schedule depends on — differs.
	drifted := cachePipelineInstance(n, 0)
	drifted[7][11].Dst, drifted[7][12].Dst = drifted[7][12].Dst, drifted[7][11].Dst
	got, err := cl.Route(ctx, drifted)
	if err != nil {
		t.Fatal(err)
	}
	base, err := New(n, WithAlgorithm(AlgorithmAuto))
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	want, err := base.Route(ctx, drifted)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Delivered, want.Delivered) {
		t.Fatal("drifted instance diverged from cache-off golden")
	}
	cs := cl.CumulativeStats()
	if cs.PlanCacheHits != 0 || cs.PlanCacheMisses != 2 {
		t.Fatalf("cache counters = (%d,%d), want (0,2): drift must miss", cs.PlanCacheHits, cs.PlanCacheMisses)
	}
}

// TestPlanCacheSortHitBitIdentical: the sort side caches the plan verdict
// and shared colorings (no round skip — see the sort census honesty note),
// so hits must match cache-off output exactly and count correctly.
func TestPlanCacheSortHitBitIdentical(t *testing.T) {
	t.Parallel()
	const n = 64
	ctx := context.Background()
	vals := cacheSortInstance(n, 0)

	base, err := New(n, WithAlgorithm(AlgorithmAuto))
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	golden, err := base.Sort(ctx, vals)
	if err != nil {
		t.Fatal(err)
	}

	cl, err := New(n, WithAlgorithm(AlgorithmAuto), WithPlanCache(8))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for rep := 0; rep < 3; rep++ {
		got, err := cl.Sort(ctx, vals)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Batches, golden.Batches) || got.Total != golden.Total {
			t.Fatalf("sort run %d diverged from cache-off golden", rep)
		}
		if got.Strategy != golden.Strategy {
			t.Fatalf("sort run %d strategy %v, golden %v", rep, got.Strategy, golden.Strategy)
		}
		if want := golden.Stats.Rounds + SortCensusRounds; got.Stats.Rounds != want {
			t.Fatalf("sort run %d rounds = %d, want %d", rep, got.Stats.Rounds, want)
		}
	}
	cs := cl.CumulativeStats()
	if cs.PlanCacheHits != 2 || cs.PlanCacheMisses != 1 {
		t.Fatalf("cache counters = (%d,%d), want (2,1)", cs.PlanCacheHits, cs.PlanCacheMisses)
	}
}

// TestPlanCacheSortKeysBypass: SortKeys with caller-owned Seq labels is not
// cacheable (the fingerprint covers values only, so two instances differing
// only in bookkeeping would collide) and must leave the counters untouched
// while still sorting correctly.
func TestPlanCacheSortKeysBypass(t *testing.T) {
	t.Parallel()
	const n = 16
	ctx := context.Background()
	keys := make([][]Key, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 4; j++ {
			keys[i] = append(keys[i], Key{Value: int64((i*7 + j*3) % 40), Origin: i, Seq: j * 2})
		}
	}
	cl, err := New(n, WithAlgorithm(AlgorithmAuto), WithPlanCache(8))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for rep := 0; rep < 2; rep++ {
		if _, err := cl.SortKeys(ctx, keys); err != nil {
			t.Fatal(err)
		}
	}
	cs := cl.CumulativeStats()
	if cs.PlanCacheHits != 0 || cs.PlanCacheMisses != 0 || cs.PlanCacheInvalidations != 0 {
		t.Fatalf("non-canonical SortKeys touched the cache: (%d,%d,%d)", cs.PlanCacheHits, cs.PlanCacheMisses, cs.PlanCacheInvalidations)
	}
}

// TestChargedCensusRounds pins WithChargedCensus without a cache: Auto
// operations pay exactly the documented census rounds on the wire and stay
// bit-identical; non-Auto algorithms are untouched.
func TestChargedCensusRounds(t *testing.T) {
	t.Parallel()
	const n = 64
	ctx := context.Background()
	msgs := cachePipelineInstance(n, 1)
	vals := cacheSortInstance(n, 1)

	base, err := New(n, WithAlgorithm(AlgorithmAuto))
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	cen, err := New(n, WithAlgorithm(AlgorithmAuto), WithChargedCensus())
	if err != nil {
		t.Fatal(err)
	}
	defer cen.Close()

	r0, err := base.Route(ctx, msgs)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := cen.Route(ctx, msgs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Delivered, r0.Delivered) {
		t.Fatal("census run diverged from plain Auto")
	}
	if r1.Stats.Rounds != r0.Stats.Rounds+RouteCensusRounds {
		t.Fatalf("census route rounds = %d, want %d + %d", r1.Stats.Rounds, r0.Stats.Rounds, RouteCensusRounds)
	}

	s0, err := base.Sort(ctx, vals)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := cen.Sort(ctx, vals)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1.Batches, s0.Batches) {
		t.Fatal("census sort diverged from plain Auto")
	}
	if s1.Stats.Rounds != s0.Stats.Rounds+SortCensusRounds {
		t.Fatalf("census sort rounds = %d, want %d + %d", s1.Stats.Rounds, s0.Stats.Rounds, SortCensusRounds)
	}

	// Deterministic (non-Auto) calls on a census handle pay nothing extra.
	d0, err := base.Route(ctx, msgs, WithAlgorithm(Deterministic))
	if err != nil {
		t.Fatal(err)
	}
	d1, err := cen.Route(ctx, msgs, WithAlgorithm(Deterministic))
	if err != nil {
		t.Fatal(err)
	}
	if d1.Stats.Rounds != d0.Stats.Rounds {
		t.Fatalf("census handle charged a Deterministic call: %d vs %d rounds", d1.Stats.Rounds, d0.Stats.Rounds)
	}
}

// TestPlanCacheSeedScopedToOneRun pins the per-run shared-cache invariant
// the cache must not weaken: a hit seeds the engine's shared-compute cache
// for that one run only, so an immediately following different instance on
// the same engine re-derives everything and still matches its own golden.
func TestPlanCacheSeedScopedToOneRun(t *testing.T) {
	t.Parallel()
	const n = 64
	ctx := context.Background()
	a := cachePipelineInstance(n, 0)
	b := cachePipelineInstance(n, 3)

	cl, err := New(n, WithAlgorithm(AlgorithmAuto), WithPlanCache(8))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Warm and hit A so the engine run consuming the seed is the one right
	// before B.
	for i := 0; i < 2; i++ {
		if _, err := cl.Route(ctx, a); err != nil {
			t.Fatal(err)
		}
	}
	got, err := cl.Route(ctx, b)
	if err != nil {
		t.Fatal(err)
	}
	base, err := New(n, WithAlgorithm(AlgorithmAuto))
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	want, err := base.Route(ctx, b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Delivered, want.Delivered) {
		t.Fatal("instance B after a seeded run of A diverged from B's golden")
	}
}

// TestPlanCacheConcurrentHammer is the -race stress for the handle-shared
// cache: four engines route and sort a small set of repeated and drifted
// instances concurrently, every result deep-compared against cache-off
// goldens. Exercises concurrent lookups, stores of the same fingerprint
// (replace-on-insert), seeded and capturing runs interleaving across
// engines, and LRU churn (capacity 2 < distinct instances).
func TestPlanCacheConcurrentHammer(t *testing.T) {
	t.Parallel()
	const (
		n       = 36
		workers = 8
		iters   = 12
	)
	ctx := context.Background()

	routeIn := make([][][]Message, 3)
	sortIn := make([][][]int64, 2)
	routeGold := make([]*RouteResult, len(routeIn))
	sortGold := make([]*SortResult, len(sortIn))
	base, err := New(n, WithAlgorithm(AlgorithmAuto))
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	for i := range routeIn {
		routeIn[i] = cachePipelineInstance(n, i)
		if routeGold[i], err = base.Route(ctx, routeIn[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := range sortIn {
		sortIn[i] = cacheSortInstance(n, i)
		if sortGold[i], err = base.Sort(ctx, sortIn[i]); err != nil {
			t.Fatal(err)
		}
	}

	cl, err := New(n, WithAlgorithm(AlgorithmAuto), WithPlanCache(2), WithMaxConcurrency(4))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				k := (w + it) % (len(routeIn) + len(sortIn))
				if k < len(routeIn) {
					res, err := cl.Route(ctx, routeIn[k])
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(res.Delivered, routeGold[k].Delivered) {
						errs <- fmt.Errorf("worker %d iter %d: route %d diverged from golden", w, it, k)
						return
					}
				} else {
					k -= len(routeIn)
					res, err := cl.Sort(ctx, sortIn[k])
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(res.Batches, sortGold[k].Batches) {
						errs <- fmt.Errorf("worker %d iter %d: sort %d diverged from golden", w, it, k)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	cs := cl.CumulativeStats()
	if got := cs.PlanCacheHits + cs.PlanCacheMisses; got != workers*iters {
		t.Fatalf("hits+misses = %d, want one cacheable lookup per op = %d", got, workers*iters)
	}
	if cs.PlanCacheInvalidations != 0 {
		t.Fatalf("unexpected invalidations: %d", cs.PlanCacheInvalidations)
	}
}
