package workload

// Scale-out instance builders: deterministic O(n)-message demand shapes for
// the large-n frontier (n up to 16384), where the catalog's full-load
// scenarios would allocate O(n²) messages just to describe the instance.
// Every builder is a pure function of its parameters, so frontier runs are
// reproducible; they are shared by the scaling benchmarks (cliquebench
// -scaling-json), the property harness and the frontier guard tests.

import (
	"fmt"
	"math/rand"
)

// ScaleSparseRoute builds the frontier's sparse routing instance: each source
// sends 1 + src%3 messages (about 2n total) to distinct spread destinations,
// so the per-pair multiplicity is exactly 1 and the planner selects the
// single-round direct strategy at every n. Memory stays O(n).
func ScaleSparseRoute(n int, seed int64) (*RoutingInstance, error) {
	if err := checkScenarioN("scale-sparse", n); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	b := newInstanceBuilder(n)
	for src := 0; src < n; src++ {
		for j := 0; j < 1+src%3; j++ {
			b.add(src, (src+1+j*7)%n, rng.Int63n(1<<40))
		}
	}
	return b.instance(n, "scale-sparse"), nil
}

// ScaleBroadcastRoute builds the frontier's one-to-many instance: 6 sources
// each send 35 messages spread over 7 sinks (pair multiplicity 5, past the
// direct budget), few enough sources to pass the broadcast gate at every
// n >= 48. The planner selects the broadcast strategy; total demand is O(1).
func ScaleBroadcastRoute(n int) (*RoutingInstance, error) {
	if n < 48 {
		return nil, fmt.Errorf("workload: scale-broadcast needs n >= 48, got %d", n)
	}
	b := newInstanceBuilder(n)
	for src := 0; src < 6; src++ {
		for k := 0; k < 35; k++ {
			b.add(src, 6+k%7, int64(src*1000+k))
		}
	}
	return b.instance(n, "scale-broadcast"), nil
}

// BroadcastGateRoute builds the adversarial instances that sit on the two
// sides of the planner's broadcast round gate (BroadcastMaxRounds). Both
// shapes concentrate 8 sources on sink 0 with pair multiplicity past the
// direct budget; the deterministic scatter piles their messages onto shared
// relays, so the induced delivery depth equals the per-source message count.
// With over=false each source sends 7 messages (scatter + 7 delivery rounds,
// exactly at the cap: StrategyBroadcast); with over=true each sends 8
// (1+8 rounds, one past the cap: the planner must reject the fast path and
// keep the Theorem 3.7 pipeline). Requires n >= 64 so 8 sources stay within
// the broadcast source cap n/8.
func BroadcastGateRoute(n int, over bool) (*RoutingInstance, error) {
	if n < 64 {
		return nil, fmt.Errorf("workload: broadcast-gate needs n >= 64, got %d", n)
	}
	per := 7
	if over {
		per = 8
	}
	b := newInstanceBuilder(n)
	for src := 0; src < 8; src++ {
		for k := 0; k < per; k++ {
			b.add(src, 0, int64(src*100+k))
		}
	}
	name := "broadcast-gate-under"
	if over {
		name = "broadcast-gate-over"
	}
	return b.instance(n, name), nil
}

// ScalePresortedValues builds the frontier's sorting instance as public-API
// values: node i holds (i*7)%5+1 ascending values strictly below node i+1's
// (every 11th node holds none), about 2n keys total. The instance partitions
// the global order, so the sorting planner selects the presorted strategy at
// every n. Memory stays O(n).
func ScalePresortedValues(n int) [][]int64 {
	values := make([][]int64, n)
	v := int64(0)
	for i := 0; i < n; i++ {
		cnt := (i*7)%5 + 1
		if i%11 == 0 {
			cnt = 0
		}
		for j := 0; j < cnt; j++ {
			values[i] = append(values[i], v)
			v += int64(1 + (i+j)%3)
		}
	}
	return values
}
