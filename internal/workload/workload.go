// Package workload generates deterministic routing and sorting instances for
// tests, benchmarks and the experiment harness. Every generator is a pure
// function of its parameters and seed, so experiments are reproducible.
package workload

import (
	"fmt"
	"math/rand"

	"congestedclique/internal/clique"
	"congestedclique/internal/core"
)

// RoutingPattern names a routing workload family.
type RoutingPattern string

const (
	// RoutingUniform overlays per random permutations: every node sends and
	// receives exactly per messages with uniformly spread destinations.
	RoutingUniform RoutingPattern = "uniform"
	// RoutingSkewed sends all of node i's messages to node (i+1) mod n, the
	// worst case for naive direct delivery.
	RoutingSkewed RoutingPattern = "skewed"
	// RoutingSetAdversarial directs all traffic of node set g to node set
	// (g+1) mod sqrt(n), stressing the inter-set balancing of Algorithm 2.
	RoutingSetAdversarial RoutingPattern = "set-adversarial"
	// RoutingRandomPartial sends a random number of messages (at most per) to
	// random destinations; loads are unbalanced on both sides.
	RoutingRandomPartial RoutingPattern = "random-partial"
	// RoutingSelfHeavy sends half of each node's messages to itself and the
	// rest uniformly.
	RoutingSelfHeavy RoutingPattern = "self-heavy"
)

// RoutingPatterns lists all routing workload families.
func RoutingPatterns() []RoutingPattern {
	return []RoutingPattern{RoutingUniform, RoutingSkewed, RoutingSetAdversarial, RoutingRandomPartial, RoutingSelfHeavy}
}

// RoutingInstance is a complete instance of the Information Distribution
// Task: Msgs[i] are the messages originating at node i.
type RoutingInstance struct {
	N       int
	Pattern RoutingPattern
	Msgs    [][]core.Message
}

// TotalMessages returns the number of messages in the instance.
func (ri *RoutingInstance) TotalMessages() int {
	total := 0
	for _, ms := range ri.Msgs {
		total += len(ms)
	}
	return total
}

// MaxLoad returns the maximum number of messages any node sends or receives.
func (ri *RoutingInstance) MaxLoad() int {
	recv := make([]int, ri.N)
	max := 0
	for _, ms := range ri.Msgs {
		if len(ms) > max {
			max = len(ms)
		}
		for _, m := range ms {
			recv[m.Dst]++
		}
	}
	for _, r := range recv {
		if r > max {
			max = r
		}
	}
	return max
}

// NewRoutingInstance builds a routing instance with n nodes and (up to) per
// messages per node following the given pattern.
func NewRoutingInstance(n, per int, pattern RoutingPattern, seed int64) (*RoutingInstance, error) {
	if n <= 0 || per < 0 {
		return nil, fmt.Errorf("workload: invalid routing instance parameters n=%d per=%d", n, per)
	}
	rng := rand.New(rand.NewSource(seed))
	msgs := make([][]core.Message, n)
	add := func(src, dst int) {
		msgs[src] = append(msgs[src], core.Message{
			Src:     src,
			Dst:     dst,
			Seq:     len(msgs[src]),
			Payload: clique.Word(rng.Int63n(1 << 40)),
		})
	}
	switch pattern {
	case RoutingUniform:
		for k := 0; k < per; k++ {
			perm := rng.Perm(n)
			for src, dst := range perm {
				add(src, dst)
			}
		}
	case RoutingSkewed:
		for src := 0; src < n; src++ {
			for k := 0; k < per; k++ {
				add(src, (src+1)%n)
			}
		}
	case RoutingSetAdversarial:
		s := 1
		for (s+1)*(s+1) <= n {
			s++
		}
		for src := 0; src < n; src++ {
			g := (src / s) % s
			tg := (g + 1) % s
			for k := 0; k < per; k++ {
				add(src, (tg*s+(src+k)%s)%n)
			}
		}
	case RoutingRandomPartial:
		for src := 0; src < n; src++ {
			count := rng.Intn(per + 1)
			for k := 0; k < count; k++ {
				add(src, rng.Intn(n))
			}
		}
	case RoutingSelfHeavy:
		for src := 0; src < n; src++ {
			for k := 0; k < per; k++ {
				if k%2 == 0 {
					add(src, src)
				} else {
					add(src, rng.Intn(n))
				}
			}
		}
	default:
		return nil, fmt.Errorf("workload: unknown routing pattern %q", pattern)
	}
	return &RoutingInstance{N: n, Pattern: pattern, Msgs: msgs}, nil
}

// KeyDistribution names a sorting workload family.
type KeyDistribution string

const (
	// KeysUniform draws values uniformly from a large range.
	KeysUniform KeyDistribution = "uniform"
	// KeysDuplicateHeavy draws values from a tiny range, so almost every key
	// has many duplicates.
	KeysDuplicateHeavy KeyDistribution = "duplicate-heavy"
	// KeysPreSorted gives node i the i-th block of an already sorted
	// sequence, so the algorithm's data movement is maximally "unnecessary".
	KeysPreSorted KeyDistribution = "pre-sorted"
	// KeysReverseSorted is the mirror image of KeysPreSorted.
	KeysReverseSorted KeyDistribution = "reverse-sorted"
	// KeysClustered gives every node a narrow value range of its own.
	KeysClustered KeyDistribution = "clustered"
	// KeysConstant makes every key identical, the degenerate duplicate case.
	KeysConstant KeyDistribution = "constant"
)

// KeyDistributions lists all sorting workload families.
func KeyDistributions() []KeyDistribution {
	return []KeyDistribution{KeysUniform, KeysDuplicateHeavy, KeysPreSorted, KeysReverseSorted, KeysClustered, KeysConstant}
}

// SortingInstance is a complete sorting instance: Keys[i] are node i's keys.
type SortingInstance struct {
	N            int
	Distribution KeyDistribution
	Keys         [][]core.Key
}

// TotalKeys returns the number of keys in the instance.
func (si *SortingInstance) TotalKeys() int {
	total := 0
	for _, ks := range si.Keys {
		total += len(ks)
	}
	return total
}

// NewSortingInstance builds a sorting instance with n nodes and per keys per
// node drawn from the given distribution.
func NewSortingInstance(n, per int, dist KeyDistribution, seed int64) (*SortingInstance, error) {
	if n <= 0 || per < 0 {
		return nil, fmt.Errorf("workload: invalid sorting instance parameters n=%d per=%d", n, per)
	}
	rng := rand.New(rand.NewSource(seed))
	keys := make([][]core.Key, n)
	for i := 0; i < n; i++ {
		for k := 0; k < per; k++ {
			var v int64
			switch dist {
			case KeysUniform:
				v = rng.Int63n(1 << 40)
			case KeysDuplicateHeavy:
				v = int64(rng.Intn(7))
			case KeysPreSorted:
				v = int64(i*per + k)
			case KeysReverseSorted:
				v = int64((n-i)*per - k)
			case KeysClustered:
				v = int64(i)*1_000 + int64(rng.Intn(10))
			case KeysConstant:
				v = 42
			default:
				return nil, fmt.Errorf("workload: unknown key distribution %q", dist)
			}
			keys[i] = append(keys[i], core.Key{Value: v, Origin: i, Seq: k})
		}
	}
	return &SortingInstance{N: n, Distribution: dist, Keys: keys}, nil
}

// NewSmallKeyInstance builds a Section 6.3 instance: per values per node from
// the domain [0, domain).
func NewSmallKeyInstance(n, per, domain int, seed int64) ([][]int, error) {
	if n <= 0 || per < 0 || domain <= 0 {
		return nil, fmt.Errorf("workload: invalid small-key instance parameters")
	}
	rng := rand.New(rand.NewSource(seed))
	values := make([][]int, n)
	for i := 0; i < n; i++ {
		for k := 0; k < per; k++ {
			values[i] = append(values[i], rng.Intn(domain))
		}
	}
	return values, nil
}

// ProtocolBenchRoute returns the deterministic full-load routing instance of
// the protocol benchmarks (BenchmarkRoute, cliquebench -protocol-json and
// the stats-invariant goldens): every node sends one message to every node,
// dsts[i][j] = j with payload i*n+j. Both consumers must measure the same
// workload for the recorded before/after numbers to stay comparable, so
// this is the single definition.
func ProtocolBenchRoute(n int) (dsts [][]int, payloads [][]int64) {
	dsts = make([][]int, n)
	payloads = make([][]int64, n)
	for i := 0; i < n; i++ {
		dsts[i] = make([]int, n)
		payloads[i] = make([]int64, n)
		for j := 0; j < n; j++ {
			dsts[i][j] = j
			payloads[i][j] = int64(i*n + j)
		}
	}
	return dsts, payloads
}

// ProtocolBenchSortValues returns the deterministic full-load sorting
// instance of the protocol benchmarks: n values per node drawn from a fixed
// linear congruential sequence (see ProtocolBenchRoute for why it is shared).
func ProtocolBenchSortValues(n int) [][]int64 {
	values := make([][]int64, n)
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < n; i++ {
		row := make([]int64, n)
		for j := 0; j < n; j++ {
			x = x*6364136223846793005 + 1442695040888963407
			row[j] = int64(x >> 33)
		}
		values[i] = row
	}
	return values
}
