package workload

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRoutingInstanceProperties(t *testing.T) {
	t.Parallel()
	for _, pattern := range RoutingPatterns() {
		pattern := pattern
		t.Run(string(pattern), func(t *testing.T) {
			t.Parallel()
			const n, per = 25, 25
			inst, err := NewRoutingInstance(n, per, pattern, 7)
			if err != nil {
				t.Fatal(err)
			}
			if inst.N != n || len(inst.Msgs) != n {
				t.Fatalf("instance shape wrong: %d nodes", len(inst.Msgs))
			}
			for src, msgs := range inst.Msgs {
				if len(msgs) > per {
					t.Fatalf("node %d has %d messages, per=%d", src, len(msgs), per)
				}
				for i, m := range msgs {
					if m.Src != src {
						t.Fatalf("message %d of node %d has source %d", i, src, m.Src)
					}
					if m.Dst < 0 || m.Dst >= n {
						t.Fatalf("message destination %d out of range", m.Dst)
					}
					if m.Seq != i {
						t.Fatalf("message %d of node %d has seq %d", i, src, m.Seq)
					}
				}
			}
			if inst.TotalMessages() == 0 && pattern != RoutingRandomPartial {
				t.Fatal("instance unexpectedly empty")
			}
			if inst.MaxLoad() > n && pattern == RoutingUniform {
				t.Fatalf("uniform instance has load %d > n", inst.MaxLoad())
			}
		})
	}
}

func TestRoutingInstanceDeterminism(t *testing.T) {
	t.Parallel()
	a, err := NewRoutingInstance(16, 16, RoutingUniform, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRoutingInstance(16, 16, RoutingUniform, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Msgs, b.Msgs) {
		t.Fatal("same seed produced different instances")
	}
	c, err := NewRoutingInstance(16, 16, RoutingUniform, 100)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Msgs, c.Msgs) {
		t.Fatal("different seeds produced identical instances")
	}
}

func TestRoutingInstanceValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewRoutingInstance(0, 5, RoutingUniform, 1); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := NewRoutingInstance(4, -1, RoutingUniform, 1); err == nil {
		t.Fatal("negative load accepted")
	}
	if _, err := NewRoutingInstance(4, 4, RoutingPattern("bogus"), 1); err == nil {
		t.Fatal("unknown pattern accepted")
	}
}

func TestSortingInstanceProperties(t *testing.T) {
	t.Parallel()
	for _, dist := range KeyDistributions() {
		dist := dist
		t.Run(string(dist), func(t *testing.T) {
			t.Parallel()
			const n, per = 16, 16
			inst, err := NewSortingInstance(n, per, dist, 13)
			if err != nil {
				t.Fatal(err)
			}
			if inst.TotalKeys() != n*per {
				t.Fatalf("total keys %d, want %d", inst.TotalKeys(), n*per)
			}
			for i, ks := range inst.Keys {
				for j, k := range ks {
					if k.Origin != i || k.Seq != j {
						t.Fatalf("key (%d,%d) has origin/seq (%d,%d)", i, j, k.Origin, k.Seq)
					}
				}
			}
		})
	}
	if _, err := NewSortingInstance(4, 4, KeyDistribution("bogus"), 1); err == nil {
		t.Fatal("unknown distribution accepted")
	}
	if _, err := NewSortingInstance(-1, 4, KeysUniform, 1); err == nil {
		t.Fatal("negative node count accepted")
	}
}

func TestSmallKeyInstance(t *testing.T) {
	t.Parallel()
	values, err := NewSmallKeyInstance(32, 10, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(values) != 32 {
		t.Fatalf("expected 32 nodes, got %d", len(values))
	}
	for i, vs := range values {
		if len(vs) != 10 {
			t.Fatalf("node %d has %d values", i, len(vs))
		}
		for _, v := range vs {
			if v < 0 || v >= 3 {
				t.Fatalf("value %d outside domain", v)
			}
		}
	}
	if _, err := NewSmallKeyInstance(4, 4, 0, 1); err == nil {
		t.Fatal("zero domain accepted")
	}
}

func TestPatternAndDistributionLists(t *testing.T) {
	t.Parallel()
	if len(RoutingPatterns()) < 5 {
		t.Fatal("expected at least five routing patterns")
	}
	if len(KeyDistributions()) < 6 {
		t.Fatal("expected at least six key distributions")
	}
	// Every listed pattern must be generatable.
	for _, p := range RoutingPatterns() {
		if _, err := NewRoutingInstance(9, 3, p, 1); err != nil {
			t.Fatalf("pattern %s: %v", p, err)
		}
	}
	for _, d := range KeyDistributions() {
		if _, err := NewSortingInstance(9, 3, d, 1); err != nil {
			t.Fatalf("distribution %s: %v", d, err)
		}
	}
	_ = fmt.Sprintf("%d patterns", len(RoutingPatterns()))
}
