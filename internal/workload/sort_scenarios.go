package workload

import (
	"fmt"
	"math/rand"

	"congestedclique/internal/core"
)

// SortScenario is one named key-distribution shape of the sorting scenario
// catalog, the sorting counterpart of Scenario. The catalog spans the
// regimes the demand-aware sorting planner (core.PlanSort) distinguishes:
// the full-load wide-domain workload (the Algorithm 4 design point, also the
// stats-invariant golden), pre-sorted and near-sorted input (the
// skip-redistribution arm), and duplicate-heavy tiny domains (the Section
// 6.3 counting arm). Build is a pure function of (n, seed), so every
// scenario is reproducible; cmd/cliquescen runs the catalog and records one
// table row per scenario.
type SortScenario struct {
	// Name is the registry key.
	Name string
	// Description is a one-line summary printed by cmd/cliquescen.
	Description string
	// FullLoad marks scenarios in the full-load regime, where the planner
	// deliberately stays on the Theorem 4.5 pipeline.
	FullLoad bool
	// Build constructs the instance for a clique of n nodes (n >= 8, like
	// the routing catalog).
	Build func(n int, seed int64) (*SortingInstance, error)
}

// SortScenarios returns the sorting catalog in its canonical order. The
// slice is freshly allocated; callers may reorder it.
func SortScenarios() []SortScenario {
	return []SortScenario{
		{
			Name:        "sort-uniform-full",
			Description: "full load, wide value domain: the protocol-benchmark instance (stats-invariant golden workload), nothing to exploit",
			FullLoad:    true,
			Build:       buildSortUniformFull,
		},
		{
			Name:        "sort-presorted",
			Description: "pre-sorted input: node i holds the i-th block of the sorted sequence, in order",
			Build:       buildSortPresorted,
		},
		{
			Name:        "sort-near-sorted",
			Description: "near-sorted input: node i holds the i-th block of the sorted sequence, shuffled within the row",
			Build:       buildSortNearSorted,
		},
		{
			Name:        "sort-duplicate-heavy",
			Description: "duplicate-heavy tiny domain: values drawn from the largest domain the Section 6.3 counting arm admits at this n (at least 2)",
			Build:       buildSortDuplicateHeavy,
		},
	}
}

// SortScenarioNames lists the sorting catalog's names in canonical order.
func SortScenarioNames() []string {
	scenarios := SortScenarios()
	names := make([]string, len(scenarios))
	for i, s := range scenarios {
		names[i] = s.Name
	}
	return names
}

// SortScenarioByName looks a scenario up in the sorting catalog.
func SortScenarioByName(name string) (SortScenario, bool) {
	for _, s := range SortScenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return SortScenario{}, false
}

// buildSortUniformFull is the shared deterministic full-load sorting
// workload (ProtocolBenchSortValues): the exact instance the protocol
// benchmarks and the stats-invariant goldens measure, so scenario numbers
// stay comparable with the committed golden statistics. The seed is ignored.
func buildSortUniformFull(n int, _ int64) (*SortingInstance, error) {
	if err := checkScenarioN("sort-uniform-full", n); err != nil {
		return nil, err
	}
	values := ProtocolBenchSortValues(n)
	keys := make([][]core.Key, n)
	for i, row := range values {
		for k, v := range row {
			keys[i] = append(keys[i], core.Key{Value: v, Origin: i, Seq: k})
		}
	}
	return &SortingInstance{N: n, Distribution: KeysUniform, Keys: keys}, nil
}

// sortedBlockValue is the shared value layout of the (near-)sorted
// scenarios: key k of node i is i*n+k, so node i holds exactly the i-th
// block of the global order.
func sortedBlockValue(n, i, k int) int64 {
	return int64(i*n + k)
}

func buildSortPresorted(n int, _ int64) (*SortingInstance, error) {
	if err := checkScenarioN("sort-presorted", n); err != nil {
		return nil, err
	}
	keys := make([][]core.Key, n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			keys[i] = append(keys[i], core.Key{Value: sortedBlockValue(n, i, k), Origin: i, Seq: k})
		}
	}
	return &SortingInstance{N: n, Distribution: KeysPreSorted, Keys: keys}, nil
}

func buildSortNearSorted(n int, seed int64) (*SortingInstance, error) {
	if err := checkScenarioN("sort-near-sorted", n); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	keys := make([][]core.Key, n)
	for i := 0; i < n; i++ {
		row := make([]int64, n)
		for k := 0; k < n; k++ {
			row[k] = sortedBlockValue(n, i, k)
		}
		rng.Shuffle(n, func(a, b int) { row[a], row[b] = row[b], row[a] })
		for k, v := range row {
			keys[i] = append(keys[i], core.Key{Value: v, Origin: i, Seq: k})
		}
	}
	return &SortingInstance{N: n, Distribution: KeysPreSorted, Keys: keys}, nil
}

func buildSortDuplicateHeavy(n int, seed int64) (*SortingInstance, error) {
	if err := checkScenarioN("sort-duplicate-heavy", n); err != nil {
		return nil, err
	}
	// The domain is the largest the counting arm admits at this n, capped at
	// 7 (the KeysDuplicateHeavy convention) and floored at 2: a single value
	// would be partitioned by the tie-break and take the presorted arm
	// instead, and at cliques too small for any counting (cap < 2) the
	// scenario honestly degrades to the pipeline.
	domain := core.SmallDomainDistinctCap(n)
	if domain > 7 {
		domain = 7
	}
	if domain < 2 {
		domain = 2
	}
	rng := rand.New(rand.NewSource(seed))
	keys := make([][]core.Key, n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			keys[i] = append(keys[i], core.Key{Value: int64(rng.Intn(domain)), Origin: i, Seq: k})
		}
	}
	return &SortingInstance{N: n, Distribution: KeysDuplicateHeavy, Keys: keys}, nil
}

// SortScenarioValues flattens a sorting instance to the plain per-node value
// rows the public Sort API consumes. It fails if the instance's keys were
// not built with the canonical (Origin=row, Seq=position) labeling, which
// the flattening silently re-derives.
func SortScenarioValues(si *SortingInstance) ([][]int64, error) {
	values := make([][]int64, si.N)
	for i, row := range si.Keys {
		for k, key := range row {
			if key.Origin != i || key.Seq != k {
				return nil, fmt.Errorf("workload: key at node %d position %d carries origin %d seq %d, cannot flatten to plain values",
					i, k, key.Origin, key.Seq)
			}
			values[i] = append(values[i], key.Value)
		}
	}
	return values, nil
}
