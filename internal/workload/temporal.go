package workload

import (
	"fmt"
	"math/rand"

	"congestedclique/internal/core"
)

// TemporalTrace is a sequence of routing instances presented to one session
// handle in order — the workload shape the cross-run plan cache
// (WithPlanCache) targets. Distinct holds the unique instances; Sequence[t]
// names the instance step t executes, so repetition is explicit: a step
// whose instance already appeared earlier in the sequence is an expected
// cache hit, and the trace's ideal hit rate is
// (len(Sequence) - len(Distinct)) / len(Sequence).
type TemporalTrace struct {
	N        int
	Name     string
	Distinct []*RoutingInstance
	Sequence []int
}

// Steps is the trace length.
func (tr *TemporalTrace) Steps() int { return len(tr.Sequence) }

// IdealHitRate is the hit rate a correct cache of sufficient capacity
// achieves on the trace: every repeat of an already-seen instance hits.
func (tr *TemporalTrace) IdealHitRate() float64 {
	if len(tr.Sequence) == 0 {
		return 0
	}
	return float64(len(tr.Sequence)-len(tr.Distinct)) / float64(len(tr.Sequence))
}

// TemporalScenario is one named entry of the temporal catalog: bursty
// instance sequences where identical demand recurs in phases — the regime
// where schedule reuse pays — plus a drifting control where it pays less.
type TemporalScenario struct {
	// Name is the registry key (rows in the temporal section merge by it).
	Name string
	// Description is a one-line summary printed by cmd/cliquescen.
	Description string
	// Build constructs the trace for a clique of n nodes; pure in (n, seed).
	Build func(n int, seed int64) (*TemporalTrace, error)
}

// TemporalScenarios returns the temporal catalog in canonical order. The
// slice is freshly allocated; callers may reorder it.
func TemporalScenarios() []TemporalScenario {
	return []TemporalScenario{
		{
			Name:        "bursty-shuffle",
			Description: "bursty full load: 4 distinct shuffle instances, each repeated in a 16-step phase (64 steps, ideal hit rate 93.75%)",
			Build:       buildBurstyShuffle,
		},
		{
			Name:        "bursty-transpose",
			Description: "bursty block transpose: 8 distinct offsets, each repeated in an 8-step phase (64 steps, ideal hit rate 87.5%)",
			Build:       buildBurstyTranspose,
		},
		{
			Name:        "drift-shuffle",
			Description: "drifting control: the shuffle instance perturbs every 4th step, so phases are short (32 steps, ideal hit rate 75%)",
			Build:       buildDriftShuffle,
		},
	}
}

// TemporalScenarioNames lists the temporal catalog's names in order.
func TemporalScenarioNames() []string {
	scenarios := TemporalScenarios()
	names := make([]string, len(scenarios))
	for i, s := range scenarios {
		names[i] = s.Name
	}
	return names
}

// TemporalScenarioByName looks a scenario up in the temporal catalog.
func TemporalScenarioByName(name string) (TemporalScenario, bool) {
	for _, s := range TemporalScenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return TemporalScenario{}, false
}

// phasedTrace lays out k distinct instances in consecutive phases of
// stepsPer repetitions each.
func phasedTrace(n int, name string, distinct []*RoutingInstance, stepsPer int) *TemporalTrace {
	tr := &TemporalTrace{N: n, Name: name, Distinct: distinct}
	for i := range distinct {
		for r := 0; r < stepsPer; r++ {
			tr.Sequence = append(tr.Sequence, i)
		}
	}
	return tr
}

// shuffleVariant is a full-load Latin-square shuffle with a per-variant
// rotation: message j of node i goes to node (i + j + rot) mod n. Every
// variant is full load (n^2 messages, past the planner's volume gate), so
// the whole family runs the Theorem 3.7 pipeline and repeats exercise the
// cached announcement schedule.
func shuffleVariant(n, rot int, rng *rand.Rand, name string) *RoutingInstance {
	b := newInstanceBuilder(n)
	for src := 0; src < n; src++ {
		for j := 0; j < n; j++ {
			b.add(src, (src+j+rot)%n, rng.Int63n(1<<40))
		}
	}
	return b.instance(n, name)
}

func buildBurstyShuffle(n int, seed int64) (*TemporalTrace, error) {
	if err := checkScenarioN("bursty-shuffle", n); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	distinct := make([]*RoutingInstance, 4)
	for v := range distinct {
		distinct[v] = shuffleVariant(n, v, rng, "bursty-shuffle")
	}
	return phasedTrace(n, "bursty-shuffle", distinct, 16), nil
}

func buildBurstyTranspose(n int, seed int64) (*TemporalTrace, error) {
	if err := checkScenarioN("bursty-transpose", n); err != nil {
		return nil, err
	}
	if n < 16 {
		// The 8 offsets must produce 8 distinct demand shapes (the cache keys
		// on destinations, not payloads), which needs n - 1 >= 8.
		return nil, fmt.Errorf("workload: scenario %q needs n >= 16, got %d", "bursty-transpose", n)
	}
	rng := rand.New(rand.NewSource(seed))
	distinct := make([]*RoutingInstance, 8)
	for v := range distinct {
		// Block transpose with a variant-dependent nonzero offset, distinct
		// per variant.
		off := 1 + v
		b := newInstanceBuilder(n)
		for src := 0; src < n; src++ {
			dst := (src + off) % n
			for j := 0; j < n; j++ {
				b.add(src, dst, rng.Int63n(1<<40))
			}
		}
		distinct[v] = b.instance(n, "bursty-transpose")
	}
	return phasedTrace(n, "bursty-transpose", distinct, 8), nil
}

func buildDriftShuffle(n int, seed int64) (*TemporalTrace, error) {
	if err := checkScenarioN("drift-shuffle", n); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	base := shuffleVariant(n, 0, rng, "drift-shuffle")
	distinct := []*RoutingInstance{base}
	for v := 1; v < 8; v++ {
		// Each drift swaps one adjacent destination pair in a fresh row: the
		// demand multiset per row is preserved (the instance stays a legal
		// full load) but the ordered sequence — what the cached schedule
		// depends on — changes.
		prev := distinct[v-1]
		next := &RoutingInstance{N: n, Pattern: prev.Pattern, Msgs: make([][]core.Message, n)}
		for i, row := range prev.Msgs {
			next.Msgs[i] = append([]core.Message(nil), row...)
		}
		row := v % n
		j := rng.Intn(n - 1)
		next.Msgs[row][j].Dst, next.Msgs[row][j+1].Dst = next.Msgs[row][j+1].Dst, next.Msgs[row][j].Dst
		distinct = append(distinct, next)
	}
	return phasedTrace(n, "drift-shuffle", distinct, 4), nil
}

// ValidateTrace checks a trace's internal consistency (sequence indices in
// range, at least one step) — used by tests and cmd/cliquescen before
// execution.
func ValidateTrace(tr *TemporalTrace) error {
	if tr.Steps() == 0 {
		return fmt.Errorf("workload: temporal trace %q has no steps", tr.Name)
	}
	for t, k := range tr.Sequence {
		if k < 0 || k >= len(tr.Distinct) {
			return fmt.Errorf("workload: temporal trace %q step %d references instance %d of %d", tr.Name, t, k, len(tr.Distinct))
		}
	}
	return nil
}
