package workload

import (
	"fmt"
	"time"

	"congestedclique/internal/clique"
)

// ChaosOp names the session operation a chaos scenario drives. The catalog
// describes faults abstractly (engine-level clique.Fault values plus session
// retry/deadline knobs); cmd/cliquescen translates each scenario into the
// public option set and executes it, so this package stays importable from
// the root package's own tests without an import cycle.
type ChaosOp string

// The operations the chaos catalog exercises.
const (
	// ChaosRoute drives Clique.Route on the uniform-full routing workload.
	ChaosRoute ChaosOp = "route"
	// ChaosSort drives Clique.Sort on the uniform sorting workload.
	ChaosSort ChaosOp = "sort"
)

// ChaosScenario is one named deterministic fault-injection run. Faults is a
// pure function of n, so every scenario replays bit-identically; the driver
// cross-checks recovered runs element by element against a fault-free golden
// on the identical instance.
type ChaosScenario struct {
	// Name is the registry key printed in the chaos table.
	Name string
	// Description is a one-line summary printed by cmd/cliquescen -list.
	Description string
	// Op selects the session operation under test.
	Op ChaosOp
	// Sparse runs the operation on the sparse scale-out instance
	// (ScaleSparseRoute) under WithSparsePath + AlgorithmAuto instead of the
	// uniform full-load workload, so the catalog also exercises the
	// engine-driven step executors' fault paths.
	Sparse bool
	// Deadline, when positive, arms the round watchdog (WithRoundDeadline)
	// for every attempt of the run.
	Deadline time.Duration
	// Retries and Backoff configure WithRetry for the run. With Retries > 0
	// an injected fault is transient: the plan is consumed by the first
	// attempt and the re-run executes fault-free.
	Retries int
	Backoff time.Duration
	// Faults builds the injection schedule for a clique of n nodes.
	Faults func(n int) []clique.Fault
	// WantRecover marks scenarios whose run must ultimately succeed — either
	// because the fault is absorbed (a stall without a deadline) or because
	// WithRetry re-runs it — with output bit-identical to the golden.
	WantRecover bool
	// WantError is the sentinel the surviving error must wrap when the
	// scenario is expected to fail (ignored when WantRecover is set).
	WantError error
}

// ChaosScenarios returns the chaos catalog in its canonical order. The slice
// is freshly allocated; callers may reorder it.
func ChaosScenarios() []ChaosScenario {
	return []ChaosScenario{
		{
			Name:        "panic-at-round-k",
			Description: "node n/4 panics at round 2 of a route; one retry re-runs the op fault-free and must reproduce the golden delivery",
			Op:          ChaosRoute,
			Retries:     1,
			Faults: func(n int) []clique.Fault {
				return []clique.Fault{{Kind: clique.FaultPanic, Node: n / 4, Round: 2}}
			},
			WantRecover: true,
		},
		{
			Name:        "panic-no-retry",
			Description: "node n/4 panics at round 2 of a route with retries disabled; the error must name the node and round and wrap ErrFaultInjected",
			Op:          ChaosRoute,
			Faults: func(n int) []clique.Fault {
				return []clique.Fault{{Kind: clique.FaultPanic, Node: n / 4, Round: 2}}
			},
			WantError: clique.ErrFaultInjected,
		},
		{
			Name:        "straggler-mid-sort",
			Description: "node n/2 stalls 5ms at round 3 of a sort with no deadline armed; the barrier absorbs the stall and the batches stay bit-identical",
			Op:          ChaosSort,
			Faults: func(n int) []clique.Fault {
				return []clique.Fault{{Kind: clique.FaultStall, Node: n / 2, Round: 3, Stall: 5 * time.Millisecond}}
			},
			WantRecover: true,
		},
		{
			Name:        "cancel-during-delivery",
			Description: "the run is cancelled at round 1's barrier turn-over; one retry re-runs the route fault-free and must reproduce the golden delivery",
			Op:          ChaosRoute,
			Retries:     1,
			Faults: func(n int) []clique.Fault {
				return []clique.Fault{{Kind: clique.FaultCancel, Node: -1, Round: 1}}
			},
			WantRecover: true,
		},
		{
			Name:        "deadline-exceeded",
			Description: "node 1 stalls 30s at round 1 of a sort under a 150ms watchdog with retries disabled; the watchdog must fail the run naming the straggler instead of hanging",
			Op:          ChaosSort,
			Deadline:    150 * time.Millisecond,
			Faults: func(n int) []clique.Fault {
				return []clique.Fault{{Kind: clique.FaultStall, Node: 1, Round: 1, Stall: 30 * time.Second}}
			},
			WantError: clique.ErrRoundDeadline,
		},
		{
			Name:        "sparse-panic-retry",
			Description: "node n/4 panics at round 1 of a sparse-path route (step scheduler); one retry re-runs the op fault-free and must reproduce the golden delivery",
			Op:          ChaosRoute,
			Sparse:      true,
			Retries:     1,
			Faults: func(n int) []clique.Fault {
				return []clique.Fault{{Kind: clique.FaultPanic, Node: n / 4, Round: 1}}
			},
			WantRecover: true,
		},
		{
			Name:        "sparse-straggler-absorbed",
			Description: "node n/2 stalls 5ms at round 0 of a sparse-path route under a 5s watchdog; the step scheduler absorbs the stall and the delivery stays bit-identical",
			Op:          ChaosRoute,
			Sparse:      true,
			Deadline:    5 * time.Second,
			Faults: func(n int) []clique.Fault {
				return []clique.Fault{{Kind: clique.FaultStall, Node: n / 2, Round: 0, Stall: 5 * time.Millisecond}}
			},
			WantRecover: true,
		},
		{
			Name:        "deadline-then-retry",
			Description: "node 1 stalls past a 150ms watchdog at round 1 of a route; the deadline failure is transient, so one retry recovers the golden delivery",
			Op:          ChaosRoute,
			Deadline:    150 * time.Millisecond,
			Retries:     1,
			Faults: func(n int) []clique.Fault {
				return []clique.Fault{{Kind: clique.FaultStall, Node: 1, Round: 1, Stall: 30 * time.Second}}
			},
			WantRecover: true,
		},
	}
}

// ChaosScenarioNames lists the chaos catalog's names in canonical order.
func ChaosScenarioNames() []string {
	scenarios := ChaosScenarios()
	names := make([]string, len(scenarios))
	for i, s := range scenarios {
		names[i] = s.Name
	}
	return names
}

// ChaosScenarioByName looks a chaos scenario up in the catalog.
func ChaosScenarioByName(name string) (ChaosScenario, bool) {
	for _, s := range ChaosScenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return ChaosScenario{}, false
}

// ValidateChaosScenario checks a scenario's schedule against a clique of n
// nodes using the engine's own plan validation, so a catalog entry that
// drifts out of range fails fast in the driver instead of erroring mid-run.
func ValidateChaosScenario(sc ChaosScenario, n int) error {
	if sc.Op != ChaosRoute && sc.Op != ChaosSort {
		return fmt.Errorf("workload: chaos scenario %q has unknown op %q", sc.Name, sc.Op)
	}
	if sc.Faults == nil {
		return fmt.Errorf("workload: chaos scenario %q has no fault schedule", sc.Name)
	}
	plan := clique.FaultPlan{Faults: sc.Faults(n)}
	if err := plan.Validate(n); err != nil {
		return fmt.Errorf("workload: chaos scenario %q: %w", sc.Name, err)
	}
	if !sc.WantRecover && sc.WantError == nil {
		return fmt.Errorf("workload: chaos scenario %q expects neither recovery nor a sentinel error", sc.Name)
	}
	return nil
}
