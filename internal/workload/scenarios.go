package workload

import (
	"fmt"
	"math/rand"

	"congestedclique/internal/clique"
	"congestedclique/internal/core"
)

// Scenario is one named demand shape of the routing scenario catalog. The
// catalog spans the regimes the demand-aware planner (core.PlanRoute)
// distinguishes: full balanced load (the paper's design point), sparse and
// degenerate demand (fast paths), and skewed/adversarial load (pipeline
// stress). Build is a pure function of (n, seed), so every scenario is
// reproducible; cmd/cliquescen runs the whole catalog and records one table
// row per scenario.
type Scenario struct {
	// Name is the registry key (also used as the instance's Pattern).
	Name string
	// Description is a one-line summary printed by cmd/cliquescen.
	Description string
	// FullLoad marks scenarios in the full-load regime, where the planner
	// deliberately stays on the Theorem 3.7 pipeline.
	FullLoad bool
	// Build constructs the instance for a clique of n nodes. Scenarios
	// require n >= 8 (the catalog's shapes degenerate below that).
	Build func(n int, seed int64) (*RoutingInstance, error)
}

// Scenarios returns the catalog in its canonical order. The slice is freshly
// allocated; callers may reorder it.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:        "uniform-full",
			Description: "full load, perfectly uniform: every node sends one message to every node (the stats-invariant golden workload)",
			FullLoad:    true,
			Build:       buildUniformFull,
		},
		{
			Name:        "sparse",
			Description: "sparse demand: n/16 messages per node to distinct spread destinations",
			Build:       buildSparse,
		},
		{
			Name:        "zipf-skew",
			Description: "heavy skew: n/2 messages per node with Zipf-distributed destinations (hot sinks capped at the Problem 3.1 receive bound)",
			FullLoad:    true,
			Build:       buildZipfSkew,
		},
		{
			Name:        "hotspot-sink",
			Description: "single hot sink at the direct-send boundary: n/4 sources each send DirectMaxMultiplicity messages to node 0",
			Build:       buildHotspotSink,
		},
		{
			Name:        "broadcast",
			Description: "one-to-all: node 0 sends one message to every node",
			Build:       buildBroadcast,
		},
		{
			Name:        "multicast",
			Description: "one-to-many with multiplicity: node 0 sends n messages over n/8 sinks (8 per sink)",
			Build:       buildMulticast,
		},
		{
			Name:        "transpose",
			Description: "block transpose: node i sends its full block of n messages to node (i+n/2) mod n",
			FullLoad:    true,
			Build:       buildTranspose,
		},
		{
			Name:        "shuffle",
			Description: "full-load Latin-square shuffle: message j of node i goes to node (i+j) mod n",
			FullLoad:    true,
			Build:       buildShuffle,
		},
		{
			Name:        "adversarial-sets",
			Description: "set-adversarial full load: all traffic of node set g targets set (g+1) mod sqrt(n), stressing Algorithm 2's inter-set balancing",
			FullLoad:    true,
			Build:       buildAdversarialSets,
		},
		{
			Name:        "empty",
			Description: "degenerate: no messages at all",
			Build:       buildEmpty,
		},
	}
}

// ScenarioNames lists the catalog's names in canonical order.
func ScenarioNames() []string {
	scenarios := Scenarios()
	names := make([]string, len(scenarios))
	for i, s := range scenarios {
		names[i] = s.Name
	}
	return names
}

// ScenarioByName looks a scenario up in the catalog.
func ScenarioByName(name string) (Scenario, bool) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// scenarioMinN is the smallest clique size the catalog's shapes support.
const scenarioMinN = 8

func checkScenarioN(name string, n int) error {
	if n < scenarioMinN {
		return fmt.Errorf("workload: scenario %q needs n >= %d, got %d", name, scenarioMinN, n)
	}
	return nil
}

// instanceBuilder accumulates messages with per-source sequence numbers.
type instanceBuilder struct {
	msgs [][]core.Message
}

func newInstanceBuilder(n int) *instanceBuilder {
	return &instanceBuilder{msgs: make([][]core.Message, n)}
}

func (b *instanceBuilder) add(src, dst int, payload int64) {
	b.msgs[src] = append(b.msgs[src], core.Message{
		Src:     src,
		Dst:     dst,
		Seq:     len(b.msgs[src]),
		Payload: clique.Word(payload),
	})
}

func (b *instanceBuilder) instance(n int, name string) *RoutingInstance {
	return &RoutingInstance{N: n, Pattern: RoutingPattern(name), Msgs: b.msgs}
}

// buildUniformFull is the shared deterministic full-load workload
// (ProtocolBenchRoute): the same instance the protocol benchmarks and the
// stats-invariant goldens measure, so scenario numbers stay comparable with
// the committed golden statistics. The seed is ignored — the goldens pin one
// exact instance.
func buildUniformFull(n int, _ int64) (*RoutingInstance, error) {
	if err := checkScenarioN("uniform-full", n); err != nil {
		return nil, err
	}
	b := newInstanceBuilder(n)
	dsts, payloads := ProtocolBenchRoute(n)
	for i := range dsts {
		for j := range dsts[i] {
			b.add(i, dsts[i][j], payloads[i][j])
		}
	}
	return b.instance(n, "uniform-full"), nil
}

func buildSparse(n int, seed int64) (*RoutingInstance, error) {
	if err := checkScenarioN("sparse", n); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	per := n / 16
	if per < 1 {
		per = 1
	}
	b := newInstanceBuilder(n)
	for src := 0; src < n; src++ {
		for j := 0; j < per; j++ {
			// Distinct destinations per source (stride 1 from src+1), so the
			// per-pair multiplicity is exactly 1.
			b.add(src, (src+1+j)%n, rng.Int63n(1<<40))
		}
	}
	return b.instance(n, "sparse"), nil
}

func buildZipfSkew(n int, seed int64) (*RoutingInstance, error) {
	if err := checkScenarioN("zipf-skew", n); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(n-1))
	per := n / 2
	recv := make([]int, n)
	b := newInstanceBuilder(n)
	for src := 0; src < n; src++ {
		for j := 0; j < per; j++ {
			dst := int(zipf.Uint64())
			// Respect the Problem 3.1 receive bound: a full sink deflects the
			// message to the next node with space (deterministic scan, space
			// always exists because the total is n*per <= n*n/2).
			for recv[dst] >= n {
				dst = (dst + 1) % n
			}
			recv[dst]++
			b.add(src, dst, rng.Int63n(1<<40))
		}
	}
	return b.instance(n, "zipf-skew"), nil
}

func buildHotspotSink(n int, seed int64) (*RoutingInstance, error) {
	if err := checkScenarioN("hotspot-sink", n); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	b := newInstanceBuilder(n)
	// n/4 sources each send DirectMaxMultiplicity messages to the single
	// sink 0: the receive load is exactly n and the per-pair multiplicity
	// sits exactly on the planner's direct-send boundary.
	for src := 0; src < n/4; src++ {
		for j := 0; j < core.DirectMaxMultiplicity; j++ {
			b.add(src, 0, rng.Int63n(1<<40))
		}
	}
	return b.instance(n, "hotspot-sink"), nil
}

func buildBroadcast(n int, seed int64) (*RoutingInstance, error) {
	if err := checkScenarioN("broadcast", n); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	b := newInstanceBuilder(n)
	for dst := 0; dst < n; dst++ {
		b.add(0, dst, rng.Int63n(1<<40))
	}
	return b.instance(n, "broadcast"), nil
}

func buildMulticast(n int, seed int64) (*RoutingInstance, error) {
	if err := checkScenarioN("multicast", n); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	sinks := n / 8
	if sinks < 1 {
		sinks = 1
	}
	b := newInstanceBuilder(n)
	for j := 0; j < n; j++ {
		b.add(0, 1+j%sinks, rng.Int63n(1<<40))
	}
	return b.instance(n, "multicast"), nil
}

func buildTranspose(n int, seed int64) (*RoutingInstance, error) {
	if err := checkScenarioN("transpose", n); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	b := newInstanceBuilder(n)
	for src := 0; src < n; src++ {
		dst := (src + n/2) % n
		for j := 0; j < n; j++ {
			b.add(src, dst, rng.Int63n(1<<40))
		}
	}
	return b.instance(n, "transpose"), nil
}

func buildShuffle(n int, seed int64) (*RoutingInstance, error) {
	if err := checkScenarioN("shuffle", n); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	b := newInstanceBuilder(n)
	for src := 0; src < n; src++ {
		for j := 0; j < n; j++ {
			b.add(src, (src+j)%n, rng.Int63n(1<<40))
		}
	}
	return b.instance(n, "shuffle"), nil
}

func buildAdversarialSets(n int, seed int64) (*RoutingInstance, error) {
	if err := checkScenarioN("adversarial-sets", n); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	s := 1
	for (s+1)*(s+1) <= n {
		s++
	}
	// Every node of set g sends s*s messages (the full load when n is a
	// perfect square) spread over the s members of set (g+1) mod s. When n
	// is not a perfect square the wrapped groups are uneven, so a sink at
	// its Problem 3.1 receive bound stops accepting (deterministically) —
	// the shape stays maximally adversarial without becoming invalid.
	recv := make([]int, n)
	b := newInstanceBuilder(n)
	for src := 0; src < n; src++ {
		g := (src / s) % s
		tg := (g + 1) % s
		for k := 0; k < s*s; k++ {
			dst := (tg*s + (src+k)%s) % n
			if recv[dst] >= n {
				continue
			}
			recv[dst]++
			b.add(src, dst, rng.Int63n(1<<40))
		}
	}
	return b.instance(n, "adversarial-sets"), nil
}

func buildEmpty(n int, _ int64) (*RoutingInstance, error) {
	if err := checkScenarioN("empty", n); err != nil {
		return nil, err
	}
	return &RoutingInstance{N: n, Pattern: "empty", Msgs: make([][]core.Message, n)}, nil
}
