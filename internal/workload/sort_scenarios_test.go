package workload

import (
	"testing"

	"congestedclique/internal/core"
)

// TestSortScenarioCatalogShape checks that every sorting scenario builds a
// valid Problem 4.1 instance (at most n keys per node, canonical
// Origin/Seq labels) and that names are unique.
func TestSortScenarioCatalogShape(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range SortScenarios() {
		if seen[s.Name] {
			t.Fatalf("duplicate sorting scenario name %q", s.Name)
		}
		seen[s.Name] = true
		if s.Description == "" {
			t.Fatalf("scenario %q has no description", s.Name)
		}
		for _, n := range []int{8, 16, 64} {
			si, err := s.Build(n, 1)
			if err != nil {
				t.Fatalf("%s n=%d: %v", s.Name, n, err)
			}
			if si.N != n || len(si.Keys) != n {
				t.Fatalf("%s n=%d: instance has N=%d and %d rows", s.Name, n, si.N, len(si.Keys))
			}
			for i, row := range si.Keys {
				if len(row) > n {
					t.Fatalf("%s n=%d: node %d holds %d keys (> n)", s.Name, n, i, len(row))
				}
				for k, key := range row {
					if key.Origin != i || key.Seq != k {
						t.Fatalf("%s n=%d: key at (%d,%d) labeled origin=%d seq=%d", s.Name, n, i, k, key.Origin, key.Seq)
					}
				}
			}
			if _, err := SortScenarioValues(si); err != nil {
				t.Fatalf("%s n=%d: %v", s.Name, n, err)
			}
		}
		if _, err := s.Build(scenarioMinN-1, 1); err == nil {
			t.Fatalf("%s accepted n below the catalog minimum", s.Name)
		}
	}
}

// TestSortScenarioDeterminism checks Build is a pure function of (n, seed).
func TestSortScenarioDeterminism(t *testing.T) {
	for _, s := range SortScenarios() {
		a, err := s.Build(32, 7)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.Build(32, 7)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Keys {
			if len(a.Keys[i]) != len(b.Keys[i]) {
				t.Fatalf("%s: node %d row lengths differ across rebuilds", s.Name, i)
			}
			for k := range a.Keys[i] {
				if a.Keys[i][k] != b.Keys[i][k] {
					t.Fatalf("%s: node %d key %d differs across rebuilds", s.Name, i, k)
				}
			}
		}
	}
}

// TestSortScenarioPlannerClassification pins the sorting planner's verdict
// for every catalog scenario — the dispatch table the catalog was designed
// to exercise. A new scenario must be added here with its expected strategy.
func TestSortScenarioPlannerClassification(t *testing.T) {
	want := map[string]map[int]core.SortStrategy{
		"sort-uniform-full": {16: core.SortStrategyPipeline, 256: core.SortStrategyPipeline},
		"sort-presorted":    {16: core.SortStrategyPresorted, 256: core.SortStrategyPresorted},
		"sort-near-sorted":  {16: core.SortStrategyPresorted, 256: core.SortStrategyPresorted},
		// The duplicate-heavy domain is floored at 2 distinct values, so at
		// n=16 (distinct cap 0) the scenario honestly degrades to the
		// pipeline; by n=256 (cap 3) the counting arm admits it.
		"sort-duplicate-heavy": {16: core.SortStrategyPipeline, 256: core.SortStrategySmallDomain},
	}
	for _, s := range SortScenarios() {
		expected, ok := want[s.Name]
		if !ok {
			t.Errorf("sorting scenario %q has no expected planner strategy in this test — add it", s.Name)
			continue
		}
		for n, strategy := range expected {
			si, err := s.Build(n, 1)
			if err != nil {
				t.Fatalf("%s n=%d: %v", s.Name, n, err)
			}
			plan := core.PlanSort(n, si.Keys)
			if plan.Strategy != strategy {
				t.Errorf("%s n=%d: planner chose %v, want %v (%s)", s.Name, n, plan.Strategy, strategy, plan.Reason)
			}
		}
	}
	for name := range want {
		if _, ok := SortScenarioByName(name); !ok {
			t.Errorf("expected strategy listed for unknown sorting scenario %q", name)
		}
	}
}
