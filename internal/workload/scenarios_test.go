package workload

import (
	"reflect"
	"testing"

	"congestedclique/internal/core"
)

// TestScenarioCatalogShape pins the registry contract: at least 8 scenarios,
// unique names, lookup by name, and a valid Problem 3.1 instance from every
// builder at several sizes.
func TestScenarioCatalogShape(t *testing.T) {
	scenarios := Scenarios()
	if len(scenarios) < 8 {
		t.Fatalf("catalog has %d scenarios, want >= 8", len(scenarios))
	}
	seen := make(map[string]bool)
	for _, s := range scenarios {
		if s.Name == "" || s.Description == "" || s.Build == nil {
			t.Fatalf("scenario %+v incomplete", s)
		}
		if seen[s.Name] {
			t.Fatalf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
		got, ok := ScenarioByName(s.Name)
		if !ok || got.Name != s.Name {
			t.Fatalf("ScenarioByName(%q) failed", s.Name)
		}
	}
	if _, ok := ScenarioByName("no-such-scenario"); ok {
		t.Fatal("ScenarioByName accepted an unknown name")
	}
	if names := ScenarioNames(); len(names) != len(scenarios) {
		t.Fatalf("ScenarioNames returned %d names for %d scenarios", len(names), len(scenarios))
	}

	for _, s := range scenarios {
		for _, n := range []int{8, 16, 64} {
			ri, err := s.Build(n, 1)
			if err != nil {
				t.Fatalf("%s n=%d: %v", s.Name, n, err)
			}
			validateInstance(t, s.Name, n, ri)
		}
		if _, err := s.Build(scenarioMinN-1, 1); err == nil {
			t.Errorf("%s accepted n below the catalog minimum", s.Name)
		}
	}
}

// validateInstance checks the Problem 3.1 shape: at most n messages per
// source and per sink, destinations in range, and Seq numbering per source.
func validateInstance(t *testing.T, name string, n int, ri *RoutingInstance) {
	t.Helper()
	if ri.N != n || len(ri.Msgs) != n {
		t.Fatalf("%s n=%d: instance shape N=%d rows=%d", name, n, ri.N, len(ri.Msgs))
	}
	recv := make([]int, n)
	for src, row := range ri.Msgs {
		if len(row) > n {
			t.Fatalf("%s n=%d: node %d sends %d > n messages", name, n, src, len(row))
		}
		for j, m := range row {
			if m.Src != src || m.Seq != j {
				t.Fatalf("%s n=%d: message %d of node %d mislabelled: %+v", name, n, j, src, m)
			}
			if m.Dst < 0 || m.Dst >= n {
				t.Fatalf("%s n=%d: destination %d out of range", name, n, m.Dst)
			}
			recv[m.Dst]++
		}
	}
	for dst, r := range recv {
		if r > n {
			t.Fatalf("%s n=%d: node %d receives %d > n messages", name, n, dst, r)
		}
	}
}

// TestScenarioDeterminism pins that Build is a pure function of (n, seed).
func TestScenarioDeterminism(t *testing.T) {
	for _, s := range Scenarios() {
		a, err := s.Build(16, 7)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		b, err := s.Build(16, 7)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same (n, seed) produced different instances", s.Name)
		}
	}
}

// TestScenarioPlannerClassification pins the demand-aware planner's verdict
// for every catalog scenario — the dispatch table the catalog was designed
// to exercise. A new scenario must be added here with its expected strategy.
func TestScenarioPlannerClassification(t *testing.T) {
	want := map[string]core.RouteStrategy{
		"uniform-full":     core.StrategyPipeline,
		"sparse":           core.StrategyDirect,
		"zipf-skew":        core.StrategyPipeline,
		"hotspot-sink":     core.StrategyDirect,
		"broadcast":        core.StrategyDirect,
		"multicast":        core.StrategyBroadcast,
		"transpose":        core.StrategyPipeline,
		"shuffle":          core.StrategyPipeline,
		"adversarial-sets": core.StrategyPipeline,
		"empty":            core.StrategyEmpty,
	}
	for _, s := range Scenarios() {
		expected, ok := want[s.Name]
		if !ok {
			t.Errorf("scenario %q has no expected planner strategy in this test — add it", s.Name)
			continue
		}
		for _, n := range []int{16, 64} {
			ri, err := s.Build(n, 1)
			if err != nil {
				t.Fatalf("%s n=%d: %v", s.Name, n, err)
			}
			plan := core.PlanRoute(n, ri.Msgs)
			if plan.Strategy != expected {
				t.Errorf("%s n=%d: planner chose %v, want %v (%s)", s.Name, n, plan.Strategy, expected, plan.Reason)
			}
		}
	}
	for name := range want {
		if _, ok := ScenarioByName(name); !ok {
			t.Errorf("expected strategy listed for unknown scenario %q", name)
		}
	}
}

// TestHotspotSinkSitsOnDirectBoundary pins that the hotspot-sink scenario is
// exactly at the planner's direct-send boundary: its multiplicity equals
// DirectMaxMultiplicity, and one more message on the hot pair flips the
// instance off the direct path.
func TestHotspotSinkSitsOnDirectBoundary(t *testing.T) {
	const n = 64
	ri, err := ScenarioByNameMust("hotspot-sink").Build(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan := core.PlanRoute(n, ri.Msgs)
	if plan.Strategy != core.StrategyDirect || plan.MaxPairMultiplicity != core.DirectMaxMultiplicity {
		t.Fatalf("hotspot-sink plan = %+v, want direct at multiplicity %d", plan, core.DirectMaxMultiplicity)
	}
	if plan.Rounds() != 1 {
		t.Fatalf("Rounds() = %d, want 1 (one-frame direct send)", plan.Rounds())
	}

	// One extra message on an already-full pair pushes the multiplicity past
	// the boundary; with many active sources the broadcast gate does not
	// apply either, so the instance falls back to the pipeline.
	src := 1
	over := ri.Msgs[src][len(ri.Msgs[src])-1]
	over.Seq = len(ri.Msgs[src])
	ri.Msgs[src] = append(ri.Msgs[src], over)
	plan = core.PlanRoute(n, ri.Msgs)
	if plan.Strategy != core.StrategyPipeline {
		t.Fatalf("over-boundary plan = %v (%s), want pipeline", plan.Strategy, plan.Reason)
	}
}

// ScenarioByNameMust is a test helper that panics on an unknown name.
func ScenarioByNameMust(name string) Scenario {
	s, ok := ScenarioByName(name)
	if !ok {
		panic("unknown scenario " + name)
	}
	return s
}
