package workload

import (
	"testing"

	"congestedclique/internal/core"
)

// TestScaleBuildersPlanAsIntended pins the planner classification of every
// scale-out builder: the frontier harness relies on these shapes exercising
// exactly the strategies they are named for, at every n.
func TestScaleBuildersPlanAsIntended(t *testing.T) {
	t.Parallel()
	for _, n := range []int{64, 256, 1024} {
		sparse, err := ScaleSparseRoute(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		if plan := core.PlanRoute(n, sparse.Msgs); plan.Strategy != core.StrategyDirect {
			t.Errorf("n=%d: scale-sparse classified %v (%s), want direct", n, plan.Strategy, plan.Reason)
		}

		bc, err := ScaleBroadcastRoute(n)
		if err != nil {
			t.Fatal(err)
		}
		if plan := core.PlanRoute(n, bc.Msgs); plan.Strategy != core.StrategyBroadcast {
			t.Errorf("n=%d: scale-broadcast classified %v (%s), want broadcast", n, plan.Strategy, plan.Reason)
		}

		under, err := BroadcastGateRoute(n, false)
		if err != nil {
			t.Fatal(err)
		}
		plan := core.PlanRoute(n, under.Msgs)
		if plan.Strategy != core.StrategyBroadcast {
			t.Errorf("n=%d: gate-under classified %v (%s), want broadcast", n, plan.Strategy, plan.Reason)
		} else if plan.RelayRounds != core.BroadcastMaxRounds-1 {
			t.Errorf("n=%d: gate-under relay rounds %d, want %d (exactly at the cap)", n, plan.RelayRounds, core.BroadcastMaxRounds-1)
		}

		over, err := BroadcastGateRoute(n, true)
		if err != nil {
			t.Fatal(err)
		}
		if plan := core.PlanRoute(n, over.Msgs); plan.Strategy != core.StrategyPipeline {
			t.Errorf("n=%d: gate-over classified %v (%s), want pipeline", n, plan.Strategy, plan.Reason)
		}

		values := ScalePresortedValues(n)
		keys := make([][]core.Key, n)
		for i, row := range values {
			for j, v := range row {
				keys[i] = append(keys[i], core.Key{Value: v, Origin: i, Seq: j})
			}
		}
		if plan := core.PlanSort(n, keys); plan.Strategy != core.SortStrategyPresorted {
			t.Errorf("n=%d: scale-presorted classified %v (%s), want presorted", n, plan.Strategy, plan.Reason)
		}
	}
}
