package workload

import (
	"testing"

	"congestedclique/internal/core"
)

func TestTemporalCatalogTraces(t *testing.T) {
	t.Parallel()
	const n = 16
	for _, sc := range TemporalScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			tr, err := sc.Build(n, 1)
			if err != nil {
				t.Fatal(err)
			}
			if err := ValidateTrace(tr); err != nil {
				t.Fatal(err)
			}
			if tr.IdealHitRate() < 0.75 {
				t.Fatalf("ideal hit rate %.2f, the temporal family targets bursty repetition", tr.IdealHitRate())
			}
			// Every distinct instance must be a legal Problem 3.1 instance and
			// genuinely distinct in its demand (the cache keys on the ordered
			// destination sequence, not payloads).
			seen := map[uint64]int{}
			for v, ri := range tr.Distinct {
				if len(ri.Msgs) != n {
					t.Fatalf("instance %d has %d rows", v, len(ri.Msgs))
				}
				recv := make([]int, n)
				for src, row := range ri.Msgs {
					if len(row) > n {
						t.Fatalf("instance %d node %d sends %d > n", v, src, len(row))
					}
					for _, m := range row {
						recv[m.Dst]++
					}
				}
				for dst, r := range recv {
					if r > n {
						t.Fatalf("instance %d node %d receives %d > n", v, dst, r)
					}
				}
				fp := core.RouteFingerprint(n, ri.Msgs)
				if prev, dup := seen[fp.Hash]; dup {
					t.Fatalf("instances %d and %d share demand fingerprint %x", prev, v, fp.Hash)
				}
				seen[fp.Hash] = v
			}
			// Determinism: the same (n, seed) rebuilds the same demand.
			tr2, err := sc.Build(n, 1)
			if err != nil {
				t.Fatal(err)
			}
			for v := range tr.Distinct {
				if core.RouteFingerprint(n, tr.Distinct[v].Msgs) != core.RouteFingerprint(n, tr2.Distinct[v].Msgs) {
					t.Fatalf("instance %d not reproducible from (n, seed)", v)
				}
			}
		})
	}
}

func TestTemporalScenarioLookup(t *testing.T) {
	t.Parallel()
	for _, name := range TemporalScenarioNames() {
		if _, ok := TemporalScenarioByName(name); !ok {
			t.Fatalf("catalog name %q not resolvable", name)
		}
	}
	if _, ok := TemporalScenarioByName("no-such-trace"); ok {
		t.Fatal("unknown name resolved")
	}
}
