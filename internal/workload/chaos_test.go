package workload

import (
	"testing"

	"congestedclique/internal/clique"
)

func TestChaosScenariosValidate(t *testing.T) {
	seen := make(map[string]bool)
	for _, sc := range ChaosScenarios() {
		if sc.Name == "" || sc.Description == "" {
			t.Fatalf("chaos scenario %+v missing name or description", sc)
		}
		if seen[sc.Name] {
			t.Fatalf("duplicate chaos scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		for _, n := range []int{8, 16, 64, 256} {
			if err := ValidateChaosScenario(sc, n); err != nil {
				t.Fatalf("scenario %s invalid at n=%d: %v", sc.Name, n, err)
			}
		}
		if sc.Retries < 0 {
			t.Fatalf("scenario %s has negative retries", sc.Name)
		}
	}
}

func TestChaosScenariosDeterministic(t *testing.T) {
	for _, sc := range ChaosScenarios() {
		a := sc.Faults(64)
		b := sc.Faults(64)
		if len(a) != len(b) {
			t.Fatalf("scenario %s: fault schedule length varies between calls", sc.Name)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("scenario %s: fault %d differs between calls: %+v vs %+v", sc.Name, i, a[i], b[i])
			}
		}
	}
}

func TestChaosScenarioByName(t *testing.T) {
	for _, name := range ChaosScenarioNames() {
		sc, ok := ChaosScenarioByName(name)
		if !ok || sc.Name != name {
			t.Fatalf("ChaosScenarioByName(%q) = %+v, %v", name, sc, ok)
		}
	}
	if _, ok := ChaosScenarioByName("no-such-scenario"); ok {
		t.Fatal("ChaosScenarioByName accepted an unknown name")
	}
}

func TestValidateChaosScenarioRejects(t *testing.T) {
	cases := []struct {
		name string
		sc   ChaosScenario
	}{
		{"unknown op", ChaosScenario{Name: "x", Op: "mode", Faults: func(int) []clique.Fault { return nil }, WantRecover: true}},
		{"nil faults", ChaosScenario{Name: "x", Op: ChaosRoute, WantRecover: true}},
		{"bad target", ChaosScenario{Name: "x", Op: ChaosRoute, WantRecover: true,
			Faults: func(n int) []clique.Fault { return []clique.Fault{{Kind: clique.FaultPanic, Node: n, Round: 0}} }}},
		{"no expectation", ChaosScenario{Name: "x", Op: ChaosRoute,
			Faults: func(int) []clique.Fault { return nil }}},
	}
	for _, tc := range cases {
		if err := ValidateChaosScenario(tc.sc, 8); err == nil {
			t.Fatalf("%s: ValidateChaosScenario accepted an invalid scenario", tc.name)
		}
	}
}
