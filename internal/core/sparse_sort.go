package core

import (
	"fmt"
	"slices"

	"congestedclique/internal/clique"
)

// This file implements the sparse step-mode executor for planned sorting
// instances: the RunRounds counterpart of AutoSort for the strategies
// SparseSortStepCapable admits — empty and presorted — plus the charged sort
// census. Like sparse_route.go it reproduces the blocking path's wire
// behaviour exactly: the presorted arm stages the same ranked bundles and
// forwards the same rank records through the same flat frames (one frame per
// busy destination per round, emitted in first-touch order, accounted with
// the identical SendFramed message count and model words), so stats and
// batches match the dense path bit for bit. The dense path's per-node comm
// scratch (length-n destination tables, member maps, arenas) is replaced by
// a first-touch stager whose state is proportional to the node's own
// traffic; the run's only O(n) allocations are the result headers.
//
// Round mapping. With the census armed, step rounds 0..1 carry the two
// census exchanges and the verdict is verified at the start of step round 2,
// which doubles as the strategy's round 0:
//
//	presorted  round 0: ranked bundles out   round 1: forward by rank
//	           round 2: assemble batch, done
//	empty      round 0: done
type SparseSortRun struct {
	n    int
	plan SortPlan
	keys [][]Key
	off  int // census rounds preceding the strategy phase

	nodes   []sparseSortNode
	results []*SortResult
}

// sparseSortNode is the per-node state of a sorting run: the frame stager
// and the relayed records carried from the deal round to the forward round.
type sparseSortNode struct {
	stager frameStager
}

// NewSparseSortRun prepares a step-mode execution of plan over keys (indexed
// by node, rows beyond len(keys) empty). The plan must be PlanSort of the
// same instance and its strategy must be SparseSortStepCapable.
func NewSparseSortRun(n int, keys [][]Key, plan SortPlan) (*SparseSortRun, error) {
	if !SparseSortStepCapable(plan.Strategy) {
		return nil, fmt.Errorf("core: sparse sort: strategy %v requires the blocking scheduler", plan.Strategy)
	}
	if plan.N != n {
		return nil, fmt.Errorf("core: sort plan computed for n=%d executed on n=%d", plan.N, n)
	}
	run := &SparseSortRun{
		n:       n,
		plan:    plan,
		keys:    keys,
		nodes:   make([]sparseSortNode, n),
		results: make([]*SortResult, n),
	}
	if plan.Census {
		run.off = SortCensusRounds
	}
	return run, nil
}

// row returns node's key row (nil when the node holds no keys).
func (run *SparseSortRun) row(node int) []Key {
	if node < len(run.keys) {
		return run.keys[node]
	}
	return nil
}

// Result returns node's sort result, valid after the run completes
// successfully; it is non-nil for every node.
func (run *SparseSortRun) Result(node int) *SortResult { return run.results[node] }

// Rounds returns the total step rounds the run will use (census included).
func (run *SparseSortRun) Rounds() int { return run.off + run.plan.Rounds() }

// Step is the clique.StepFunc of the run.
func (run *SparseSortRun) Step(nd *clique.Node, round int, inbox clique.Inbox) (bool, error) {
	if round < run.off {
		return false, run.censusStep(nd, round, inbox)
	}
	if run.off > 0 && round == run.off {
		if err := run.censusVerify(nd, inbox); err != nil {
			return true, err
		}
	}
	sround := round - run.off
	switch run.plan.Strategy {
	case SortStrategyEmpty:
		if row := run.row(nd.ID()); len(row) != 0 {
			return true, fmt.Errorf("core: empty sort plan but node %d holds %d keys", nd.ID(), len(row))
		}
		run.results[nd.ID()] = &SortResult{}
		return true, nil
	case SortStrategyPresorted:
		return run.presortedStep(nd, sround, inbox)
	default:
		return true, fmt.Errorf("core: unknown sort strategy %v", run.plan.Strategy)
	}
}

// censusStep executes the two sort-census exchanges of runSortCensus.
func (run *SparseSortRun) censusStep(nd *clique.Node, round int, inbox clique.Inbox) error {
	n := run.n
	id := nd.ID()
	switch round {
	case 0:
		// R1: every node reports (count, row hash) to node 0.
		row := run.row(id)
		nd.Send(0, clique.Packet{clique.Word(len(row)), clique.Word(sortRowHash(row))})
	case 1:
		// R2: node 0 folds and broadcasts [strategy, fingerprint].
		if id != 0 {
			return nil
		}
		h := uint64(fnvOffset64)
		for from := 0; from < n; from++ {
			if from >= len(inbox) || len(inbox[from]) != 1 || len(inbox[from][0]) != 2 {
				return fmt.Errorf("core: sort census: node 0 missing aggregate from node %d", from)
			}
			p := inbox[from][0]
			h = foldRows(h, int(p[0]), uint64(p[1]))
		}
		verdict := clique.Packet{clique.Word(run.plan.Strategy), clique.Word(h)}
		for to := 0; to < n; to++ {
			nd.Send(to, verdict)
		}
	}
	return nil
}

// censusVerify checks the broadcast sort verdict against the plan at step
// round 2, with the exact diagnostics of the blocking census.
func (run *SparseSortRun) censusVerify(nd *clique.Node, inbox clique.Inbox) error {
	plan := run.plan
	if len(inbox) == 0 || len(inbox[0]) != 1 || len(inbox[0][0]) != 2 {
		return fmt.Errorf("core: sort census: node %d missing verdict broadcast", nd.ID())
	}
	verdict := inbox[0][0]
	if SortStrategy(verdict[0]) != plan.Strategy {
		return fmt.Errorf("core: sort census: broadcast verdict %v disagrees with plan %v at node %d",
			SortStrategy(verdict[0]), plan.Strategy, nd.ID())
	}
	if plan.CensusHasFP && uint64(verdict[1]) != plan.CensusFP {
		return fmt.Errorf("core: sort census: instance fingerprint %x disagrees with plan fingerprint %x at node %d",
			uint64(verdict[1]), plan.CensusFP, nd.ID())
	}
	return nil
}

// presortedStep is presortedSort (and the dealByRank/dealDeliver pair behind
// it) as a step program.
func (run *SparseSortRun) presortedStep(nd *clique.Node, sround int, inbox clique.Inbox) (bool, error) {
	const context = "presorted.rank"
	n := run.n
	id := nd.ID()
	st := &run.nodes[id]
	plan := run.plan
	total := 0
	if len(plan.StartRanks) > 0 {
		total = plan.StartRanks[len(plan.StartRanks)-1]
	}
	perNode := ceilDiv(total, n)
	if perNode == 0 {
		perNode = 1
	}
	switch sround {
	case 0:
		if len(plan.StartRanks) != n+1 {
			return true, fmt.Errorf("core: presorted plan carries %d start ranks for n=%d", len(plan.StartRanks), n)
		}
		myKeys := run.row(id)
		if got, want := len(myKeys), plan.StartRanks[id+1]-plan.StartRanks[id]; got != want {
			return true, fmt.Errorf("core: presorted plan expected %d keys at node %d, got %d (plan does not match the instance)", want, id, got)
		}
		keys := append([]Key(nil), myKeys...)
		sortKeys(keys)
		// Round 1 of dealByRank: deal (rank,key) pairs, bundled, round-robin.
		start := plan.StartRanks[id]
		packetIdx := 0
		for lo := 0; lo < len(keys); lo += keysPerBundle {
			hi := min(lo+keysPerBundle, len(keys))
			st.stager.open((id + packetIdx) % n)
			st.stager.words(clique.Word(hi - lo))
			for t := lo; t < hi; t++ {
				k := keys[t]
				st.stager.words(clique.Word(start+t), k.Value, clique.Word(k.Origin), clique.Word(k.Seq))
			}
			st.stager.close()
			packetIdx++
		}
		st.stager.flush(nd)
		return false, nil
	case 1:
		// Decode the ranked bundles and forward every key to the node owning
		// its rank range (round 2 of dealDeliver).
		var relayed []rankedKey
		for from := 0; from < len(inbox); from++ {
			for _, frame := range inbox[from] {
				records, err := appendFrameMessages(nil, frame)
				if err != nil {
					return true, fmt.Errorf("%s deal: %w", context, err)
				}
				for _, p := range records {
					if len(p) < 1 {
						continue
					}
					count := int(p[0])
					if count < 0 || len(p) < 1+count*(keyWords+1) {
						return true, fmt.Errorf("%s deal: malformed ranked bundle", context)
					}
					for i := 0; i < count; i++ {
						base := 1 + i*(keyWords+1)
						k, decErr := decodeKey(p[base+1:])
						if decErr != nil {
							return true, fmt.Errorf("%s deal: %w", context, decErr)
						}
						relayed = append(relayed, rankedKey{rank: int(p[base]), key: k})
					}
				}
			}
		}
		for _, rk := range relayed {
			dst := min(rk.rank/perNode, n-1)
			st.stager.open(dst)
			st.stager.words(clique.Word(rk.rank), rk.key.Value, clique.Word(rk.key.Origin), clique.Word(rk.key.Seq))
			st.stager.close()
		}
		st.stager.flush(nd)
		return false, nil
	default:
		// Assemble the contiguous batch.
		var mine []rankedKey
		for from := 0; from < len(inbox); from++ {
			for _, frame := range inbox[from] {
				records, err := appendFrameMessages(nil, frame)
				if err != nil {
					return true, fmt.Errorf("%s deliver: %w", context, err)
				}
				for _, p := range records {
					if len(p) < 1+keyWords {
						continue
					}
					k, decErr := decodeKey(p[1:])
					if decErr != nil {
						return true, fmt.Errorf("%s deliver: %w", context, decErr)
					}
					mine = append(mine, rankedKey{rank: int(p[0]), key: k})
				}
			}
		}
		slices.SortFunc(mine, func(a, b rankedKey) int { return a.rank - b.rank })
		res := &SortResult{Total: total}
		if len(mine) > 0 {
			res.Start = mine[0].rank
			res.Batch = make([]Key, 0, len(mine))
		} else {
			res.Start = min(id*perNode, total)
		}
		for i, rk := range mine {
			if i > 0 && mine[i-1].rank+1 != rk.rank {
				return true, fmt.Errorf("%s deliver: node %d received non-contiguous ranks %d and %d", context, id, mine[i-1].rank, rk.rank)
			}
			res.Batch = append(res.Batch, rk.key)
		}
		run.results[id] = res
		return true, nil
	}
}

// frameStager is the comm staging log (stageOpen/stageClose/flushFrames in
// types.go) re-implemented without dense per-node tables: the destination
// load map, first-touch order and record log are all proportional to the
// traffic actually staged this round. flush emits byte-identical frames in
// the identical first-touch destination order with the identical SendFramed
// accounting, so a step-mode round is indistinguishable on the wire from the
// blocking comm's round.
type frameStager struct {
	stage    []clique.Word // [dst, len, words...] records in staging order
	lastOpen int           // stage offset of the open record's dst slot
	touched  []int32       // destinations in first-touch order
	load     map[int32]*stagerDst
	frameBuf []clique.Word
}

// stagerDst is the per-destination accounting of one staging round.
type stagerDst struct {
	words int32 // payload plus length slots
	count int32 // records staged
	start int32 // first record's offset in stage (count==1: served in place)
	off   int32 // multi-record assembly cursor into frameBuf
}

// open starts a record bound for dst.
func (s *frameStager) open(dst int) {
	if s.load == nil {
		s.load = make(map[int32]*stagerDst)
	}
	s.lastOpen = len(s.stage)
	s.stage = append(s.stage, clique.Word(dst), 0)
}

// words appends payload words to the open record.
func (s *frameStager) words(ws ...clique.Word) {
	s.stage = append(s.stage, ws...)
}

// close finishes the open record, fixing its length slot and the
// destination's frame accounting.
func (s *frameStager) close() {
	hdr := s.lastOpen
	l := int32(len(s.stage) - hdr - 2)
	s.stage[hdr+1] = clique.Word(l)
	d := int32(s.stage[hdr])
	ds := s.load[d]
	if ds == nil {
		ds = &stagerDst{start: int32(hdr)}
		s.load[d] = ds
		s.touched = append(s.touched, d)
	}
	ds.words += l + 1
	ds.count++
}

// flush assembles one frame per busy destination — in first-touch order,
// single-record frames served straight from the log, multi-record frames
// copied into frameBuf — and hands them to the engine with the logical
// message count and model word cost, exactly like comm.flushFrames.
func (s *frameStager) flush(nd *clique.Node) {
	if len(s.touched) == 0 {
		return
	}
	total := 0
	multi := false
	for _, d := range s.touched {
		ds := s.load[d]
		if ds.count > 1 {
			multi = true
			ds.start = int32(total)
			ds.off = int32(total + 1) // write cursor, past the count slot
			total += 1 + int(ds.words)
		}
	}
	if multi {
		if cap(s.frameBuf) < total {
			s.frameBuf = make([]clique.Word, total, total+total/2)
		} else {
			s.frameBuf = s.frameBuf[:total]
		}
		for i := 0; i < len(s.stage); {
			d := int32(s.stage[i])
			l := int(s.stage[i+1])
			if ds := s.load[d]; ds.count > 1 {
				cur := int(ds.off)
				copy(s.frameBuf[cur:cur+1+l], s.stage[i+1:i+2+l])
				ds.off = int32(cur + 1 + l)
			}
			i += 2 + l
		}
	}
	for _, d := range s.touched {
		ds := s.load[d]
		count := int(ds.count)
		size := 1 + int(ds.words) // count slot plus records
		start := int(ds.start)
		if count == 1 {
			frame := s.stage[start : start+size : start+size]
			frame[0] = 1
			nd.SendFramed(int(d), clique.Packet(frame), 1, size-2)
		} else {
			s.frameBuf[start] = clique.Word(count)
			nd.SendFramed(int(d), clique.Packet(s.frameBuf[start:start+size:start+size]), count, size-1-count)
		}
		delete(s.load, d)
	}
	s.touched = s.touched[:0]
	s.stage = s.stage[:0]
}
