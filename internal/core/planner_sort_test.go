package core

import (
	"fmt"
	"testing"

	"congestedclique/internal/clique"
)

// Tests for the demand-aware sorting planner: the classification table over
// the workload families, boundary flips at the partition and distinct-cap
// gates, and output identity of every planner arm against the Algorithm 4
// pipeline.

// smallDomainKeys builds a non-partitioned instance whose values cycle
// through exactly distinct values, interleaved across all origins so the
// presorted gate cannot fire.
func smallDomainKeys(n, per, distinct int) [][]Key {
	keys := make([][]Key, n)
	for i := 0; i < n; i++ {
		for k := 0; k < per; k++ {
			keys[i] = append(keys[i], Key{Value: int64((i + k) % distinct), Origin: i, Seq: k})
		}
	}
	return keys
}

// runAutoSort plans the instance centrally and executes AutoSort on every
// node, returning the per-node results and the run's metrics.
func runAutoSort(t *testing.T, keys [][]Key) ([]*SortResult, clique.Metrics) {
	t.Helper()
	n := len(keys)
	plan := PlanSort(n, keys)
	nw, err := clique.New(n)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*SortResult, n)
	err = nw.Run(func(nd *clique.Node) error {
		res, sErr := AutoSort(nd, keys[nd.ID()], plan)
		if sErr != nil {
			return sErr
		}
		results[nd.ID()] = res
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return results, nw.Metrics()
}

// runPipelineSort executes the deterministic Sort on every node.
func runPipelineSort(t *testing.T, keys [][]Key) []*SortResult {
	t.Helper()
	n := len(keys)
	nw, err := clique.New(n)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*SortResult, n)
	err = nw.Run(func(nd *clique.Node) error {
		res, sErr := Sort(nd, keys[nd.ID()])
		if sErr != nil {
			return sErr
		}
		results[nd.ID()] = res
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return results
}

// sortResultsEqual fails unless the two per-node result sets agree bit for
// bit (batches, starts, totals).
func sortResultsEqual(t *testing.T, label string, got, want []*SortResult) {
	t.Helper()
	for i := range want {
		g, w := got[i], want[i]
		if g.Start != w.Start || g.Total != w.Total || len(g.Batch) != len(w.Batch) {
			t.Fatalf("%s: node %d got start=%d len=%d total=%d, want start=%d len=%d total=%d",
				label, i, g.Start, len(g.Batch), g.Total, w.Start, len(w.Batch), w.Total)
		}
		for j := range w.Batch {
			if g.Batch[j] != w.Batch[j] {
				t.Fatalf("%s: node %d batch[%d] = %+v, want %+v", label, i, j, g.Batch[j], w.Batch[j])
			}
		}
	}
}

// TestPlanSortClassification pins the planner's verdict for each workload
// family at a clique size (n=64) whose distinct-value cap is 1, so only the
// partition gate can fire.
func TestPlanSortClassification(t *testing.T) {
	t.Parallel()
	const n, per = 64, 8
	cases := []struct {
		distribution string
		want         SortStrategy
		locallySorted,
		partitioned bool
	}{
		// Node i holds block i of the sorted sequence, in order.
		{"sorted", SortStrategyPresorted, true, true},
		// Disjoint per-node value ranges, shuffled within each row: the rows
		// partition the global order only after the free local sort.
		{"clustered", SortStrategyPresorted, false, true},
		// All keys equal: the footnote-5 tie-break (Value, Origin, Seq)
		// partitions them by origin, so the presorted gate fires before the
		// small-domain census is even consulted.
		{"constant", SortStrategyPresorted, true, true},
		// Descending across nodes and within rows: nothing partitions.
		{"reverse", SortStrategyPipeline, false, false},
		{"uniform", SortStrategyPipeline, false, false},
		// Seven distinct values, but SmallDomainDistinctCap(64) = 1: the
		// clique is too small for the counting arm.
		{"duplicates", SortStrategyPipeline, false, false},
	}
	if cap := SmallDomainDistinctCap(n); cap != 1 {
		t.Fatalf("SmallDomainDistinctCap(%d) = %d, test assumes 1", n, cap)
	}
	for _, tc := range cases {
		t.Run(tc.distribution, func(t *testing.T) {
			t.Parallel()
			plan := PlanSort(n, buildKeys(n, per, tc.distribution, 7))
			if plan.Strategy != tc.want {
				t.Fatalf("strategy = %v (%s), want %v", plan.Strategy, plan.Reason, tc.want)
			}
			if plan.LocallySorted != tc.locallySorted || plan.Partitioned != tc.partitioned {
				t.Fatalf("locallySorted=%v partitioned=%v, want %v/%v",
					plan.LocallySorted, plan.Partitioned, tc.locallySorted, tc.partitioned)
			}
			if plan.TotalKeys != n*per || plan.MaxLoad != per || plan.ActiveHolders != n {
				t.Fatalf("census = %d keys / max %d / %d holders, want %d/%d/%d",
					plan.TotalKeys, plan.MaxLoad, plan.ActiveHolders, n*per, per, n)
			}
		})
	}
}

// TestPlanSortEmpty pins the degenerate classification: no keys at all.
func TestPlanSortEmpty(t *testing.T) {
	t.Parallel()
	for _, keys := range [][][]Key{nil, make([][]Key, 16), {{}, {}}} {
		plan := PlanSort(16, keys)
		if plan.Strategy != SortStrategyEmpty || plan.TotalKeys != 0 {
			t.Fatalf("empty instance planned as %v with %d keys", plan.Strategy, plan.TotalKeys)
		}
		if plan.Rounds() != 0 {
			t.Fatalf("empty plan costs %d rounds, want 0", plan.Rounds())
		}
	}
}

// TestPlanSortPartitionBoundaryFlip flips the partition gate with a single
// key: a sorted instance is presorted, and moving one out-of-range value into
// node 0 demotes it to the pipeline.
func TestPlanSortPartitionBoundaryFlip(t *testing.T) {
	t.Parallel()
	const n, per = 64, 4
	keys := buildKeys(n, per, "sorted", 1)
	if plan := PlanSort(n, keys); plan.Strategy != SortStrategyPresorted {
		t.Fatalf("sorted instance planned as %v", plan.Strategy)
	}
	keys[0][per-1].Value = int64(n * per) // larger than everything held later
	plan := PlanSort(n, keys)
	if plan.Strategy != SortStrategyPipeline {
		t.Fatalf("one overlapping key still planned as %v (%s)", plan.Strategy, plan.Reason)
	}
	if plan.Partitioned {
		t.Fatal("plan still reports a partitioned instance")
	}
}

// TestPlanSortDistinctCapBoundaryFlip flips the small-domain gate by one
// distinct value: exactly SmallDomainDistinctCap(n) values select the
// counting arm, one more falls back to the pipeline.
func TestPlanSortDistinctCapBoundaryFlip(t *testing.T) {
	t.Parallel()
	const n, per = 256, 4
	distinctCap := SmallDomainDistinctCap(n)
	if distinctCap < 2 {
		t.Fatalf("SmallDomainDistinctCap(%d) = %d, test needs >= 2", n, distinctCap)
	}

	at := PlanSort(n, smallDomainKeys(n, per, distinctCap))
	if at.Strategy != SortStrategySmallDomain {
		t.Fatalf("%d distinct values planned as %v (%s)", distinctCap, at.Strategy, at.Reason)
	}
	if at.DistinctValues != distinctCap || len(at.Domain) != distinctCap {
		t.Fatalf("census found %d distinct (domain %d), want %d", at.DistinctValues, len(at.Domain), distinctCap)
	}
	for i := 1; i < len(at.Domain); i++ {
		if at.Domain[i-1] >= at.Domain[i] {
			t.Fatalf("domain table not strictly ascending: %v", at.Domain)
		}
	}
	if at.MaxDuplicity <= 0 {
		t.Fatalf("max duplicity = %d, want positive", at.MaxDuplicity)
	}

	over := PlanSort(n, smallDomainKeys(n, per, distinctCap+1))
	if over.Strategy != SortStrategyPipeline {
		t.Fatalf("%d distinct values planned as %v", distinctCap+1, over.Strategy)
	}
	if over.DistinctValues != distinctCap+1 {
		t.Fatalf("bailed census reports %d distinct, want cap+1 = %d", over.DistinctValues, distinctCap+1)
	}
}

// TestPlanSortRounds pins the strategy-to-round-count map.
func TestPlanSortRounds(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		strategy SortStrategy
		want     int
	}{
		{SortStrategyEmpty, 0},
		{SortStrategyPresorted, 2},
		{SortStrategySmallDomain, 4},
		{SortStrategyPipeline, -1},
	} {
		if got := (SortPlan{Strategy: tc.strategy}).Rounds(); got != tc.want {
			t.Fatalf("Rounds(%v) = %d, want %d", tc.strategy, got, tc.want)
		}
	}
}

// TestAutoSortArmsMatchPipeline runs every planner arm and checks the output
// is bit-identical to the deterministic pipeline's, and that the fast arms
// pay exactly their advertised round counts.
func TestAutoSortArmsMatchPipeline(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name       string
		keys       [][]Key
		strategy   SortStrategy
		wantRounds int // -1: don't check
	}{
		{"presorted", buildKeys(64, 8, "sorted", 3), SortStrategyPresorted, 2},
		{"near-sorted", buildKeys(64, 8, "clustered", 3), SortStrategyPresorted, 2},
		{"constant", buildKeys(64, 8, "constant", 3), SortStrategyPresorted, 2},
		{"small-domain", smallDomainKeys(256, 3, 3), SortStrategySmallDomain, 4},
		{"pipeline", buildKeys(64, 8, "uniform", 3), SortStrategyPipeline, -1},
		{"empty", make([][]Key, 16), SortStrategyEmpty, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			n := len(tc.keys)
			plan := PlanSort(n, tc.keys)
			if plan.Strategy != tc.strategy {
				t.Fatalf("strategy = %v (%s), want %v", plan.Strategy, plan.Reason, tc.strategy)
			}
			got, metrics := runAutoSort(t, tc.keys)
			want := runPipelineSort(t, tc.keys)
			sortResultsEqual(t, tc.name, got, want)
			if tc.wantRounds >= 0 && metrics.Rounds != tc.wantRounds {
				t.Fatalf("auto sort took %d rounds, want %d", metrics.Rounds, tc.wantRounds)
			}
		})
	}
}

// TestAutoSortUnevenPresorted exercises the presorted arm with ragged row
// sizes (including empty rows), where the StartRanks prefix sums are the only
// source of the global ranks.
func TestAutoSortUnevenPresorted(t *testing.T) {
	t.Parallel()
	const n = 32
	keys := make([][]Key, n)
	next := int64(0)
	for i := 0; i < n; i++ {
		load := (i * 7) % (n + 1) // ragged, some rows empty (i=0), some full
		for k := 0; k < load; k++ {
			keys[i] = append(keys[i], Key{Value: next, Origin: i, Seq: k})
			next++
		}
	}
	plan := PlanSort(n, keys)
	if plan.Strategy != SortStrategyPresorted {
		t.Fatalf("strategy = %v (%s), want presorted", plan.Strategy, plan.Reason)
	}
	got, metrics := runAutoSort(t, keys)
	want := runPipelineSort(t, keys)
	sortResultsEqual(t, "uneven-presorted", got, want)
	if metrics.Rounds != 2 {
		t.Fatalf("took %d rounds, want 2", metrics.Rounds)
	}
}

// TestAutoSortSmallDomainDuplicates exercises the counting arm where every
// value collides heavily across origins, so the per-origin prefix bits carry
// the whole ordering.
func TestAutoSortSmallDomainDuplicates(t *testing.T) {
	t.Parallel()
	const n = 256
	distinctCap := SmallDomainDistinctCap(n)
	for distinct := 1; distinct <= distinctCap; distinct++ {
		keys := smallDomainKeys(n, 4, distinct)
		plan := PlanSort(n, keys)
		if plan.Strategy != SortStrategySmallDomain {
			// distinct == 1 is partitioned by the tie-break; skip it.
			if distinct == 1 && plan.Strategy == SortStrategyPresorted {
				continue
			}
			t.Fatalf("distinct=%d: strategy = %v (%s)", distinct, plan.Strategy, plan.Reason)
		}
		got, _ := runAutoSort(t, keys)
		want := runPipelineSort(t, keys)
		sortResultsEqual(t, fmt.Sprintf("small-domain distinct=%d", distinct), got, want)
	}
}

// TestAutoSortPlanMismatch pins the defensive errors: a plan computed for a
// different clique size or instance is rejected instead of silently
// misdelivering.
func TestAutoSortPlanMismatch(t *testing.T) {
	t.Parallel()
	keys := buildKeys(16, 2, "sorted", 5)
	plan := PlanSort(16, keys)
	nw, err := clique.New(16)
	if err != nil {
		t.Fatal(err)
	}
	// Shrink every row after planning: the presorted arm must notice the
	// StartRanks mismatch (before any communication, so no node blocks on a
	// barrier its peers never reach).
	err = nw.Run(func(nd *clique.Node) error {
		if _, sErr := AutoSort(nd, keys[nd.ID()][:1], plan); sErr == nil {
			return fmt.Errorf("stale plan accepted at node %d", nd.ID())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	wrong := plan
	wrong.N = 8
	nw2, err := clique.New(16)
	if err != nil {
		t.Fatal(err)
	}
	err = nw2.Run(func(nd *clique.Node) error {
		if _, sErr := AutoSort(nd, keys[nd.ID()], wrong); sErr == nil {
			return fmt.Errorf("plan for n=8 accepted on n=16")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
