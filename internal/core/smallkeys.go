package core

import (
	"fmt"

	"congestedclique/internal/clique"
)

// SmallKeyResult is the outcome of the Section 6.3 counting protocol: the
// exact multiplicity of every value of a small key domain, known to every
// node. From the histogram each node can locally derive sorted order,
// distinct ranks, modes and selections of its own keys — the point of
// Section 6.3 is that for keys of o(log n) bits this takes only two rounds of
// messages carrying one or two bits each.
type SmallKeyResult struct {
	// Counts[v] is the number of occurrences of value v in the whole system.
	Counts []int64
	// Domain is the size of the key domain.
	Domain int
}

// Total returns the total number of keys counted.
func (r *SmallKeyResult) Total() int64 {
	var t int64
	for _, c := range r.Counts {
		t += c
	}
	return t
}

// DistinctRank returns the rank of value v among the distinct values present
// in the system (the Corollary 4.6 notion of rank), or -1 if v is absent.
func (r *SmallKeyResult) DistinctRank(v int) int {
	if v < 0 || v >= r.Domain || r.Counts[v] == 0 {
		return -1
	}
	rank := 0
	for u := 0; u < v; u++ {
		if r.Counts[u] > 0 {
			rank++
		}
	}
	return rank
}

// Rank returns the number of keys strictly smaller than v, i.e. the position
// at which the first copy of v appears in the globally sorted sequence.
func (r *SmallKeyResult) Rank(v int) int64 {
	if v < 0 {
		return 0
	}
	if v > r.Domain {
		v = r.Domain
	}
	var rank int64
	for u := 0; u < v; u++ {
		rank += r.Counts[u]
	}
	return rank
}

// Mode returns the most frequent value and its multiplicity (smallest value
// wins ties); the boolean is false if no keys are present.
func (r *SmallKeyResult) Mode() (int, int64, bool) {
	best := -1
	var bestCount int64
	for v, c := range r.Counts {
		if c > bestCount {
			best = v
			bestCount = c
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return best, bestCount, true
}

// smallKeyBits returns ceil(log2(n+1)), the bit width the Section 6.3
// protocol uses for both the per-node and the aggregated counts.
func smallKeyBits(n int) int {
	bits := 1
	for (1 << bits) <= n {
		bits++
	}
	return bits
}

// CheckSmallKeyDomain validates the Section 6.3 feasibility precondition —
// positive domain and K * ceil(log2(n+1))^2 <= n helper nodes — without
// running anything. It is the single source of truth for the bound: the
// session layer calls it before checking an engine out of its pool, and
// SmallKeyCount re-checks it inside the run as defense in depth.
func CheckSmallKeyDomain(n, domain int) error {
	if domain <= 0 {
		return fmt.Errorf("core: small-key domain must be positive, got %d", domain)
	}
	bits := smallKeyBits(n)
	if domain*bits*bits > n {
		return fmt.Errorf("core: domain %d needs %d helper nodes, only %d available (Section 6.3 requires K*log^2(n) <= n)",
			domain, domain*bits*bits, n)
	}
	return nil
}

// SmallKeyCount implements the counting protocol of Section 6.3 for keys
// drawn from a domain of size K. Every value is statically assigned a block
// of helper nodes: one helper per (bit position of the per-node count, bit
// position of the aggregated count). In the first round every node sends the
// i-th bit of its local count of value v to the helpers of (v, i); in the
// second round the j-th helper of (v, i) broadcasts the j-th bit of the
// number of set bits it received. Every node then reconstructs the exact
// global histogram. Both rounds use messages of a single word (conceptually
// one bit), and the protocol needs K * ceil(log2(n+1))^2 <= n, the paper's
// "number of different keys is at most n / log^2 n" regime.
func SmallKeyCount(ex clique.Exchanger, myValues []int, domain int) (*SmallKeyResult, error) {
	c := fullComm(ex, fmt.Sprintf("smallkeys@r%d", ex.Round()))
	defer c.release()
	n := c.size()
	if err := CheckSmallKeyDomain(n, domain); err != nil {
		return nil, err
	}
	bits := smallKeyBits(n)

	// Local histogram.
	local := make([]int64, domain)
	for _, v := range myValues {
		if v < 0 || v >= domain {
			return nil, fmt.Errorf("core: key value %d outside domain [0,%d)", v, domain)
		}
		local[v]++
	}

	helper := func(value, countBit, aggBit int) int {
		return value*bits*bits + countBit*bits + aggBit
	}

	// Round 1: send the i-th bit of my count of value v to every helper of
	// (v, i). Messages carry a single word holding the bit.
	for v := 0; v < domain; v++ {
		for i := 0; i < bits; i++ {
			bit := (local[v] >> uint(i)) & 1
			for j := 0; j < bits; j++ {
				c.send(helper(v, i, j), clique.Word(bit))
			}
		}
	}
	rx, err := c.exchange()
	if err != nil {
		return nil, fmt.Errorf("core: small-key round 1: %w", err)
	}

	// If I am the helper of (v, i, j), count the set bits I received and
	// broadcast the j-th bit of that count.
	myValue, myCountBit, myAggBit := -1, -1, -1
	if c.me < domain*bits*bits {
		myValue = c.me / (bits * bits)
		myCountBit = (c.me / bits) % bits
		myAggBit = c.me % bits
	}
	if myValue >= 0 {
		var ones int64
		for _, p := range rx.all() {
			if len(p) > 0 && p[0] == 1 {
				ones++
			}
		}
		outBit := (ones >> uint(myAggBit)) & 1
		for to := 0; to < n; to++ {
			c.send(to, clique.Word(outBit))
		}
	}
	rx, err = c.exchange()
	if err != nil {
		return nil, fmt.Errorf("core: small-key round 2: %w", err)
	}

	// Reconstruct: for every (v, i), the helpers of (v, i) collectively
	// broadcast the binary representation of "how many nodes had bit i set in
	// their count of v"; the global count of v is the weighted sum.
	counts := make([]int64, domain)
	for v := 0; v < domain; v++ {
		for i := 0; i < bits; i++ {
			var ones int64
			for j := 0; j < bits; j++ {
				p := rx.single(helper(v, i, j))
				if len(p) < 1 {
					return nil, fmt.Errorf("core: small-key round 2: missing bit from helper of (%d,%d,%d)", v, i, j)
				}
				if p[0] == 1 {
					ones |= 1 << uint(j)
				}
			}
			counts[v] += ones << uint(i)
		}
	}
	_ = myCountBit
	return &SmallKeyResult{Counts: counts, Domain: domain}, nil
}
