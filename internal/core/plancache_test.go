package core

import (
	"testing"

	"congestedclique/internal/clique"
)

// fpInstance builds a full-load pipeline-shaped instance whose rows differ
// from rotate so two calls with different rot produce different orderings of
// the same destination multiset per row when rot differs by a swap.
func fpInstance(n int) [][]Message {
	msgs := make([][]Message, n)
	for src := 0; src < n; src++ {
		row := make([]Message, n)
		for j := 0; j < n; j++ {
			row[j] = Message{Src: src, Dst: (src + j) % n, Seq: j, Payload: clique.Word(src*n + j)}
		}
		msgs[src] = row
	}
	return msgs
}

func TestRouteFingerprintOrderSensitive(t *testing.T) {
	t.Parallel()
	const n = 16
	a := fpInstance(n)
	b := fpInstance(n)
	// Same destination multiset on node 0, different order: the captured
	// schedule depends on the per-source submission order (interSet colors
	// are assigned by unit index), so the fingerprint must distinguish them.
	b[0][0].Dst, b[0][1].Dst = b[0][1].Dst, b[0][0].Dst
	fa := RouteFingerprint(n, a)
	fb := RouteFingerprint(n, b)
	if fa == fb {
		t.Fatalf("order-swapped instances share fingerprint %x", fa.Hash)
	}
	if fa != RouteFingerprint(n, a) {
		t.Error("fingerprint not deterministic")
	}
}

func TestSortFingerprintNonCanonicalBypass(t *testing.T) {
	t.Parallel()
	const n = 4
	keys := make([][]Key, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 3; j++ {
			keys[i] = append(keys[i], Key{Value: int64(i*10 + j), Origin: i, Seq: j})
		}
	}
	if _, ok := SortFingerprint(n, keys); !ok {
		t.Fatal("canonical labels reported non-cacheable")
	}
	keys[2][1].Origin = 0 // caller-supplied bookkeeping via SortKeys
	if _, ok := SortFingerprint(n, keys); ok {
		t.Fatal("non-canonical Origin reported cacheable; the fingerprint only covers values")
	}
}

func TestPlanCacheRouteHitAndDriftMiss(t *testing.T) {
	t.Parallel()
	const n = 16
	pc := NewPlanCache(4)
	msgs := fpInstance(n)
	plan := PlanRoute(n, msgs)

	fp, hit := pc.LookupRoute(n, msgs)
	if hit != nil {
		t.Fatal("hit on empty cache")
	}
	pc.StoreRoute(fp, n, msgs, plan, nil, clique.SharedSnapshot{})
	if _, hit = pc.LookupRoute(n, msgs); hit == nil {
		t.Fatal("no hit after store")
	} else if hit.Plan.Strategy != plan.Strategy {
		t.Fatalf("cached strategy %v, want %v", hit.Plan.Strategy, plan.Strategy)
	}

	// Drift: any change to the demand is a different fingerprint (with
	// overwhelming probability) and always a rep mismatch — never a hit.
	drift := fpInstance(n)
	drift[3][5].Dst = (drift[3][5].Dst + 1) % n
	if _, hit = pc.LookupRoute(n, drift); hit != nil {
		t.Fatal("drifted instance hit the cache")
	}

	hits, misses, inval := pc.Counters()
	if hits != 1 || misses != 2 || inval != 0 {
		t.Fatalf("counters = (%d,%d,%d), want (1,2,0)", hits, misses, inval)
	}
}

// TestPlanCacheInvalidation forges a fingerprint collision — an entry stored
// under instance B's fingerprint but holding instance A's canonical rep —
// and pins that validate-on-hit rejects it: the lookup counts an
// invalidation plus a miss, evicts the poisoned entry, and never returns A's
// plan for B.
func TestPlanCacheInvalidation(t *testing.T) {
	t.Parallel()
	const n = 16
	pc := NewPlanCache(4)
	a := fpInstance(n)
	b := fpInstance(n)
	b[0][0].Dst, b[0][1].Dst = b[0][1].Dst, b[0][0].Dst
	fpB := RouteFingerprint(n, b)
	pc.StoreRoute(fpB, n, a, PlanRoute(n, a), nil, clique.SharedSnapshot{})

	if _, hit := pc.LookupRoute(n, b); hit != nil {
		t.Fatal("colliding entry survived validate-on-hit")
	}
	if hits, misses, inval := pc.Counters(); hits != 0 || misses != 1 || inval != 1 {
		t.Fatalf("counters = (%d,%d,%d), want (0,1,1)", hits, misses, inval)
	}
	if pc.Len() != 0 {
		t.Fatalf("poisoned entry not evicted, Len = %d", pc.Len())
	}
	// The eviction means the next lookup is a clean miss, not another
	// invalidation.
	if _, hit := pc.LookupRoute(n, b); hit != nil {
		t.Fatal("hit after eviction")
	}
	if _, _, inval := pc.Counters(); inval != 1 {
		t.Fatalf("invalidations = %d after second lookup, want 1", inval)
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	t.Parallel()
	const n = 9
	pc := NewPlanCache(2)
	variant := func(k int) [][]Message {
		msgs := fpInstance(n)
		msgs[0][0].Dst = k % n
		return msgs
	}
	store := func(msgs [][]Message) Fingerprint {
		fp, _ := pc.LookupRoute(n, msgs)
		pc.StoreRoute(fp, n, msgs, PlanRoute(n, msgs), nil, clique.SharedSnapshot{})
		return fp
	}
	a, b, c := variant(1), variant(2), variant(3)
	store(a)
	store(b)
	if _, hit := pc.LookupRoute(n, a); hit == nil { // touch a: b becomes LRU
		t.Fatal("a missing before eviction")
	}
	store(c) // capacity 2: evicts b
	if pc.Len() != 2 {
		t.Fatalf("Len = %d, want 2", pc.Len())
	}
	if _, hit := pc.LookupRoute(n, b); hit != nil {
		t.Fatal("LRU entry b survived eviction")
	}
	if _, hit := pc.LookupRoute(n, a); hit == nil {
		t.Fatal("recently-used entry a evicted")
	}
	if _, hit := pc.LookupRoute(n, c); hit == nil {
		t.Fatal("newest entry c evicted")
	}
}

// TestRouteStrategyCensusAgreement pins that the census's distributed
// decision procedure replays PlanRoute's dispatch exactly, across every
// strategy class: the aggregates node 0 folds (total, per-pair max, active
// sources) plus the plan's relay-round echo must reproduce the plan.
func TestRouteStrategyCensusAgreement(t *testing.T) {
	t.Parallel()
	const n = 64
	cases := map[string][][]Message{
		"empty":           nil,
		"sparse-direct":   sparseInstance(n, 2, 1),
		"direct-boundary": sparseInstance(n, 1, DirectMaxMultiplicity),
		"past-direct":     sparseInstance(n, 1, DirectMaxMultiplicity+1),
		"full-load":       sparseInstance(n, n, 1),
		"broadcast-shaped": func() [][]Message {
			msgs := make([][]Message, n)
			for j := 0; j < n; j++ {
				msgs[0] = append(msgs[0], Message{Src: 0, Dst: 1 + j%4, Seq: j, Payload: clique.Word(j)})
			}
			return msgs
		}(),
		"scatter-too-deep": func() [][]Message {
			msgs := make([][]Message, n)
			for src := 0; src < 8; src++ {
				for k := 0; k < 8; k++ {
					msgs[src] = append(msgs[src], Message{Src: src, Dst: 0, Seq: k, Payload: clique.Word(src*100 + k)})
				}
			}
			return msgs
		}(),
	}
	for name, msgs := range cases {
		name, msgs := name, msgs
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			plan := PlanRoute(n, msgs)
			total, active := 0, 0
			pair := map[[2]int]int{}
			maxPair := 0
			for src, row := range msgs {
				total += len(row)
				if len(row) > 0 {
					active++
				}
				for _, m := range row {
					pair[[2]int{src, m.Dst}]++
					if pair[[2]int{src, m.Dst}] > maxPair {
						maxPair = pair[[2]int{src, m.Dst}]
					}
				}
			}
			got := routeStrategyFromCensus(n, total, maxPair, active, plan.relayRoundsCensus)
			if got != plan.Strategy {
				t.Fatalf("census decides %v, plan decided %v (%s)", got, plan.Strategy, plan.Reason)
			}
		})
	}
}
