package core

import (
	"fmt"
	"sort"
	"testing"

	"congestedclique/internal/clique"
)

// expectedDistinctRanks computes, for reference, the rank of each distinct
// value in the union of all inputs.
func expectedDistinctRanks(keys [][]Key) (map[int64]int, int) {
	seen := map[int64]bool{}
	for _, ks := range keys {
		for _, k := range ks {
			seen[k.Value] = true
		}
	}
	values := make([]int64, 0, len(seen))
	for v := range seen {
		values = append(values, v)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	ranks := make(map[int64]int, len(values))
	for i, v := range values {
		ranks[v] = i
	}
	return ranks, len(values)
}

func TestRankMatchesReference(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		n    int
		dist string
	}{
		{16, "uniform"}, {16, "duplicates"}, {25, "duplicates"}, {20, "constant"}, {12, "clustered"},
	} {
		tc := tc
		t.Run(fmt.Sprintf("n=%d_%s", tc.n, tc.dist), func(t *testing.T) {
			t.Parallel()
			keys := buildKeys(tc.n, tc.n, tc.dist, int64(tc.n))
			wantRanks, wantDistinct := expectedDistinctRanks(keys)

			nw, err := clique.New(tc.n)
			if err != nil {
				t.Fatal(err)
			}
			results := make([]*RankResult, tc.n)
			err = nw.Run(func(nd *clique.Node) error {
				res, rErr := Rank(nd, keys[nd.ID()])
				if rErr != nil {
					return rErr
				}
				results[nd.ID()] = res
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			m := nw.Metrics()
			if m.Rounds > 60 {
				t.Errorf("rank used %d rounds, expected a constant (<= 54 + slack)", m.Rounds)
			}
			for i, res := range results {
				if res.DistinctTotal != wantDistinct {
					t.Fatalf("node %d reports %d distinct values, want %d", i, res.DistinctTotal, wantDistinct)
				}
				for _, k := range keys[i] {
					got, ok := res.Ranks[k.Seq]
					if !ok {
						t.Fatalf("node %d missing rank for seq %d", i, k.Seq)
					}
					if got != wantRanks[k.Value] {
						t.Fatalf("node %d key %d (value %d): rank %d, want %d", i, k.Seq, k.Value, got, wantRanks[k.Value])
					}
				}
			}
		})
	}
}

func TestSelectAndMedian(t *testing.T) {
	t.Parallel()
	const n = 16
	keys := buildKeys(n, n, "uniform", 3)
	var all []Key
	for _, ks := range keys {
		all = append(all, ks...)
	}
	sortKeys(all)

	for _, k := range []int{0, 1, n, len(all) / 2, len(all) - 1} {
		k := k
		t.Run(fmt.Sprintf("rank=%d", k), func(t *testing.T) {
			t.Parallel()
			nw, err := clique.New(n)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]Key, n)
			err = nw.Run(func(nd *clique.Node) error {
				res, sErr := Select(nd, keys[nd.ID()], k)
				if sErr != nil {
					return sErr
				}
				got[nd.ID()] = res
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != all[k] {
					t.Fatalf("node %d selected %+v, want %+v", i, got[i], all[k])
				}
			}
		})
	}

	t.Run("median", func(t *testing.T) {
		t.Parallel()
		nw, err := clique.New(n)
		if err != nil {
			t.Fatal(err)
		}
		want := all[(len(all)-1)/2]
		err = nw.Run(func(nd *clique.Node) error {
			res, mErr := Median(nd, keys[nd.ID()])
			if mErr != nil {
				return mErr
			}
			if res != want {
				return fmt.Errorf("node %d median %+v, want %+v", nd.ID(), res, want)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})

	t.Run("select-out-of-range", func(t *testing.T) {
		t.Parallel()
		nw, err := clique.New(4)
		if err != nil {
			t.Fatal(err)
		}
		small := buildKeys(4, 2, "uniform", 9)
		err = nw.Run(func(nd *clique.Node) error {
			_, sErr := Select(nd, small[nd.ID()], 100)
			if sErr == nil {
				return fmt.Errorf("out-of-range rank accepted")
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestModeMatchesReference(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		n    int
		dist string
	}{
		{16, "duplicates"}, {25, "duplicates"}, {16, "constant"}, {20, "clustered"}, {12, "uniform"},
	} {
		tc := tc
		t.Run(fmt.Sprintf("n=%d_%s", tc.n, tc.dist), func(t *testing.T) {
			t.Parallel()
			keys := buildKeys(tc.n, tc.n, tc.dist, int64(tc.n)*31)
			counts := map[int64]int{}
			for _, ks := range keys {
				for _, k := range ks {
					counts[k.Value]++
				}
			}
			wantCount := 0
			var wantValue int64
			for v, ct := range counts {
				if ct > wantCount || (ct == wantCount && v < wantValue) {
					wantCount = ct
					wantValue = v
				}
			}
			nw, err := clique.New(tc.n)
			if err != nil {
				t.Fatal(err)
			}
			err = nw.Run(func(nd *clique.Node) error {
				res, mErr := Mode(nd, keys[nd.ID()])
				if mErr != nil {
					return mErr
				}
				if res.Count != wantCount || res.Value != wantValue {
					return fmt.Errorf("node %d mode (%d,%d), want (%d,%d)", nd.ID(), res.Value, res.Count, wantValue, wantCount)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestModeRunSpanningManyNodes(t *testing.T) {
	t.Parallel()
	// One value occupies several consecutive batches entirely; the stitching
	// across node boundaries must count the full run.
	const n = 9
	keys := make([][]Key, n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			v := int64(1000)
			if i >= 6 {
				v = int64(i*100 + k) // unique values elsewhere
			}
			keys[i] = append(keys[i], Key{Value: v, Origin: i, Seq: k})
		}
	}
	nw, err := clique.New(n)
	if err != nil {
		t.Fatal(err)
	}
	err = nw.Run(func(nd *clique.Node) error {
		res, mErr := Mode(nd, keys[nd.ID()])
		if mErr != nil {
			return mErr
		}
		if res.Value != 1000 || res.Count != 6*n {
			return fmt.Errorf("mode (%d,%d), want (1000,%d)", res.Value, res.Count, 6*n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
