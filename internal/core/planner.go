package core

import (
	"fmt"
	"slices"
	"sync"

	"congestedclique/internal/clique"
)

// This file implements the demand-aware routing planner. The paper's
// pipeline (Theorem 3.7) is engineered for the full-load regime — every node
// sending and receiving up to n messages — and pays a fixed 16-round
// schedule plus announcement traffic regardless of how much demand there
// actually is. The planner classifies a routing instance before committing
// to that pipeline and dispatches to the cheapest strategy that is still
// correct for the instance's shape:
//
//   - StrategyEmpty: no messages at all — zero rounds, zero words.
//   - StrategyDirect: every (source, destination) pair's load fits one
//     frame (at most DirectFrameWords words), so each pair's messages
//     travel as one frame straight over their own edge in a single round.
//     Unlike the naive-direct baseline this path spends no round agreeing
//     on a schedule: the plan already guarantees the frame bound.
//   - StrategyBroadcast: one-to-many demand (few active sources). Each
//     source deals its messages round-robin across all n nodes in one
//     scatter round, then every relay forwards what it holds to the final
//     destinations; the plan pre-computes the number of delivery rounds.
//   - StrategyPipeline: everything else runs the paper's deterministic
//     pipeline unchanged — stats are bit-identical to calling Route
//     directly, which the stats-invariant goldens pin.
//
// The fast paths are gated on the sub-full-load regime (see
// FastPathMaxTotal): at full balanced load the pipeline is the paper's
// design point and the quantity this repository measures, so the planner
// deliberately leaves it in charge there even when a one-round direct send
// would be legal (for example a full-load permutation instance).
//
// Honesty note on the model: PlanRoute runs centrally, over the instance the
// simulator already holds. In a real congested clique the same census is an
// O(1)-round aggregation; by default the simulator does not charge those
// words, exactly as it does not charge the deterministic schedule
// computations all nodes perform locally. Since PR 9 the census exists as a
// real charged protocol (census.go, armed by WithChargedCensus or implied by
// WithPlanCache): three rounds on the wire that recompute the strategy
// verdict distributedly and verify it against the plan, so planner and cache
// wins can be reported net of planning cost. The plan remains a pure
// function of the instance, so every node dispatching on it agrees on the
// strategy and the round count.

// RouteStrategy identifies the delivery strategy the demand-aware planner
// selected for a routing instance.
type RouteStrategy int

const (
	// StrategyPipeline is the paper's full Theorem 3.7 balancing pipeline.
	StrategyPipeline RouteStrategy = iota + 1
	// StrategyDirect delivers every message over its own source-destination
	// edge, one frame per busy edge, in a single round.
	StrategyDirect
	// StrategyBroadcast scatters the messages of few sources across all
	// nodes in one round and delivers from the relays.
	StrategyBroadcast
	// StrategyEmpty is the degenerate no-traffic instance: zero rounds.
	StrategyEmpty
)

// String returns the strategy name as used in scenario tables and logs.
func (s RouteStrategy) String() string {
	switch s {
	case StrategyPipeline:
		return "pipeline"
	case StrategyDirect:
		return "direct"
	case StrategyBroadcast:
		return "broadcast"
	case StrategyEmpty:
		return "empty"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Planner thresholds. They are exported so tests and documentation state the
// dispatch rule in terms of named constants rather than magic numbers.
const (
	// directWordsPerMessage is the wire cost of one direct-path message:
	// [seq, payload] (the source is implied by the edge).
	directWordsPerMessage = 2
	// relayWordsPerMessage is the wire cost of one broadcast-path message:
	// [dst, seq, payload] on the scatter hop, [src, seq, payload] on the
	// delivery hop.
	relayWordsPerMessage = 3
	// DirectFrameWords is the per-edge per-round word budget the direct path
	// must fit: a small constant, comparable to the O(log n)-bit model
	// message and to the pipeline's own observed MaxEdgeWords.
	DirectFrameWords = 8
	// DirectMaxMultiplicity is the largest per-(source,destination) message
	// multiplicity the direct path accepts: a pair's messages travel as one
	// frame, so DirectMaxMultiplicity messages of directWordsPerMessage
	// words fill the DirectFrameWords edge budget of the single round.
	DirectMaxMultiplicity = DirectFrameWords / directWordsPerMessage
	// BroadcastMaxRounds caps the broadcast path's total rounds (one scatter
	// round plus the delivery rounds); beyond it the pipeline's fixed 16
	// rounds win.
	BroadcastMaxRounds = 8
)

// FastPathMaxTotal is the demand-volume gate of the planner: instances with
// more than n²/4 total messages are the full-load regime the Theorem 3.7
// pipeline is designed (and measured) for, and are never diverted to a fast
// path.
func FastPathMaxTotal(n int) int { return n * n / 4 }

// BroadcastSourceCap is the one-to-many gate: the broadcast path is
// considered only when at most max(1, n/8) nodes hold messages.
func BroadcastSourceCap(n int) int {
	if n < 8 {
		return 1
	}
	return n / 8
}

// RoutePlan is the planner's verdict for one routing instance: the census it
// classified and the strategy every node dispatches on. A plan is a pure
// function of the instance (PlanRoute), so all nodes executing it agree on
// the communication schedule without exchanging a word.
type RoutePlan struct {
	// N is the clique size the plan was computed for.
	N int
	// Strategy is the selected delivery strategy.
	Strategy RouteStrategy
	// Reason is a human-readable one-liner explaining the dispatch (surfaced
	// by cmd/cliquescen).
	Reason string

	// TotalMessages is the number of messages in the instance.
	TotalMessages int
	// MaxSendLoad and MaxRecvLoad are the largest per-node send and receive
	// loads.
	MaxSendLoad int
	MaxRecvLoad int
	// ActiveSources and ActiveSinks count nodes that send, respectively
	// receive, at least one message.
	ActiveSources int
	ActiveSinks   int
	// MaxPairMultiplicity is the largest number of messages sharing one
	// ordered (source, destination) pair. It is only computed when the
	// instance passes the FastPathMaxTotal volume gate (0 otherwise): above
	// the gate the strategy is the pipeline regardless.
	MaxPairMultiplicity int

	// RelayRounds is the broadcast path's delivery round count (after the
	// one scatter round); set only when Strategy == StrategyBroadcast.
	RelayRounds int

	// relayRoundsCensus is the scatter depth the dispatch decision consumed
	// (set whenever planRelayRounds ran, even when the pipeline won); the
	// charged census broadcasts it so its distributed decision replays
	// PlanRoute's exactly.
	relayRoundsCensus int

	// Census arms the charged census protocol (census.go) for this
	// execution: AutoRoute spends its rounds and words on the wire before
	// dispatching. CensusHasFP additionally carries the plan-cache
	// fingerprint for distributed agreement; both are per-run execution
	// state, never part of a cached verdict.
	Census      bool
	CensusHasFP bool
	CensusFP    uint64

	// Sched is a validated cached announcement schedule to execute instead
	// of the pipeline's announcement exchanges; Capture is an empty schedule
	// to record them into. At most one is set, only for pipeline dispatch,
	// and only by the session's plan-cache layer.
	Sched   *RouteSchedule
	Capture *RouteSchedule
}

// Rounds returns the number of communication rounds the plan's strategy will
// use, or -1 for the pipeline (whose round count Route reports itself).
func (p RoutePlan) Rounds() int {
	switch p.Strategy {
	case StrategyEmpty:
		return 0
	case StrategyDirect:
		return 1
	case StrategyBroadcast:
		return 1 + p.RelayRounds
	default:
		return -1
	}
}

// plannerScratch is the reusable census scratch of PlanRoute: a receive-load
// slice and a pair-key slice (sorted to count multiplicities without a map),
// recycled through a process-wide pool so planning every AlgorithmAuto call
// allocates nothing in steady state — the same discipline as the route
// validator's scratch.
type plannerScratch struct {
	recv []int
	keys []uint64
}

var plannerScratchPool = sync.Pool{New: func() interface{} { return new(plannerScratch) }}

func (s *plannerScratch) recvSlice(n int) []int {
	if cap(s.recv) < n {
		s.recv = make([]int, n)
	} else {
		s.recv = s.recv[:n]
		clear(s.recv)
	}
	return s.recv
}

// maxRunOfSortedKeys sorts the scratch's key slice and returns the length of
// its longest run of equal keys (0 for an empty slice).
func (s *plannerScratch) maxRunOfSortedKeys() int {
	if len(s.keys) == 0 {
		return 0
	}
	slices.Sort(s.keys)
	max, run := 1, 1
	for i := 1; i < len(s.keys); i++ {
		if s.keys[i] == s.keys[i-1] {
			run++
			if run > max {
				max = run
			}
		} else {
			run = 1
		}
	}
	return max
}

// PlanRoute classifies a routing instance and selects the cheapest correct
// delivery strategy. msgs is indexed by source node (rows beyond len(msgs)
// are empty); the instance must already satisfy the Problem 3.1 shape (at
// most n messages per source and per sink, destinations in range) — the
// session layer validates before planning.
func PlanRoute(n int, msgs [][]Message) RoutePlan {
	sc := plannerScratchPool.Get().(*plannerScratch)
	defer plannerScratchPool.Put(sc)
	plan := RoutePlan{N: n}
	recv := sc.recvSlice(n)
	for _, row := range msgs {
		if len(row) == 0 {
			continue
		}
		plan.ActiveSources++
		plan.TotalMessages += len(row)
		if len(row) > plan.MaxSendLoad {
			plan.MaxSendLoad = len(row)
		}
		for _, m := range row {
			recv[m.Dst]++
		}
	}
	for _, r := range recv {
		if r == 0 {
			continue
		}
		plan.ActiveSinks++
		if r > plan.MaxRecvLoad {
			plan.MaxRecvLoad = r
		}
	}

	if plan.TotalMessages == 0 {
		plan.Strategy = StrategyEmpty
		plan.Reason = "no messages"
		return plan
	}
	if plan.TotalMessages > FastPathMaxTotal(n) {
		plan.Strategy = StrategyPipeline
		plan.Reason = fmt.Sprintf("full-load regime: %d messages > n²/4 = %d", plan.TotalMessages, FastPathMaxTotal(n))
		return plan
	}

	// Fast-path eligible: compute the per-pair multiplicity by sorting the
	// pair keys (bounded by the gated total message count — O(total log
	// total), no per-call map).
	sc.keys = sc.keys[:0]
	for _, row := range msgs {
		for _, m := range row {
			sc.keys = append(sc.keys, uint64(m.Src)*uint64(n)+uint64(m.Dst))
		}
	}
	plan.MaxPairMultiplicity = sc.maxRunOfSortedKeys()

	if plan.MaxPairMultiplicity <= DirectMaxMultiplicity {
		plan.Strategy = StrategyDirect
		plan.Reason = fmt.Sprintf("sparse demand: max pair multiplicity %d ≤ %d, one-frame direct send in a single round",
			plan.MaxPairMultiplicity, DirectMaxMultiplicity)
		return plan
	}

	if plan.ActiveSources > BroadcastSourceCap(n) {
		plan.Strategy = StrategyPipeline
		plan.Reason = fmt.Sprintf("skewed demand: max pair multiplicity %d exceeds the direct budget and %d sources exceed the broadcast cap %d",
			plan.MaxPairMultiplicity, plan.ActiveSources, BroadcastSourceCap(n))
		return plan
	}
	relayRounds := planRelayRounds(n, msgs, sc)
	plan.relayRoundsCensus = relayRounds
	if 1+relayRounds <= BroadcastMaxRounds {
		plan.Strategy = StrategyBroadcast
		plan.RelayRounds = relayRounds
		plan.Reason = fmt.Sprintf("one-to-many demand: %d source(s), scatter + %d delivery round(s)",
			plan.ActiveSources, relayRounds)
		return plan
	}
	plan.Strategy = StrategyPipeline
	plan.Reason = fmt.Sprintf("skewed demand: max pair multiplicity %d exceeds the direct budget and scatter would need 1+%d rounds (cap %d)",
		plan.MaxPairMultiplicity, relayRounds, BroadcastMaxRounds)
	return plan
}

// planRelayRounds simulates the broadcast path's deterministic scatter —
// message k of source s goes to relay (s+k) mod n — and returns the number
// of delivery rounds it induces: the largest number of messages any relay
// holds for one destination (counted by sorting (relay, dst) keys in the
// shared scratch).
func planRelayRounds(n int, msgs [][]Message, sc *plannerScratch) int {
	sc.keys = sc.keys[:0]
	for src, row := range msgs {
		for k, m := range row {
			relay := (src + k) % n
			sc.keys = append(sc.keys, uint64(relay)*uint64(n)+uint64(m.Dst))
		}
	}
	return sc.maxRunOfSortedKeys()
}

// AutoRoute executes one node's part of a planned routing instance. Every
// node must pass the same plan (PlanRoute of the same instance) and its own
// message row; the plan fixes the communication schedule, so no agreement
// rounds are needed. The output contract matches Route: the messages
// addressed to this node, sorted by (Src, Dst, Seq).
func AutoRoute(ex clique.Exchanger, msgs []Message, plan RoutePlan) ([]Message, error) {
	if plan.N != ex.N() {
		return nil, fmt.Errorf("core: plan computed for n=%d executed on n=%d", plan.N, ex.N())
	}
	if plan.Census {
		if err := runRouteCensus(ex, msgs, plan); err != nil {
			return nil, err
		}
	}
	switch plan.Strategy {
	case StrategyEmpty:
		if len(msgs) != 0 {
			return nil, fmt.Errorf("core: empty plan but node %d holds %d messages", ex.ID(), len(msgs))
		}
		return nil, nil
	case StrategyDirect:
		return directRoute(ex, msgs)
	case StrategyBroadcast:
		return broadcastRoute(ex, msgs, plan.RelayRounds)
	case StrategyPipeline:
		return routeWithSchedule(ex, msgs, plan.Sched, plan.Capture)
	default:
		return nil, fmt.Errorf("core: unknown route strategy %v", plan.Strategy)
	}
}

// directRoute delivers every message straight over its source-destination
// edge in a single round: all messages sharing one pair are packed into one
// frame of [seq, payload] pairs sent with SendFramed, so the engine accounts
// them as individual model messages while the frame stays within
// DirectFrameWords (the plan guarantees the multiplicity bound; a violation
// means the plan does not match the instance and is reported as an error).
func directRoute(ex clique.Exchanger, msgs []Message) ([]Message, error) {
	n := ex.N()
	byDst := make([][]Message, n)
	for _, m := range msgs {
		if m.Src != ex.ID() {
			return nil, fmt.Errorf("core: message (%d->%d) submitted by node %d", m.Src, m.Dst, ex.ID())
		}
		byDst[m.Dst] = append(byDst[m.Dst], m)
		if len(byDst[m.Dst]) > DirectMaxMultiplicity {
			return nil, fmt.Errorf("core: node %d holds %d messages for node %d, the direct plan allows %d",
				ex.ID(), len(byDst[m.Dst]), m.Dst, DirectMaxMultiplicity)
		}
	}
	for dst, queue := range byDst {
		if len(queue) == 0 {
			continue
		}
		frame := make(clique.Packet, 0, len(queue)*directWordsPerMessage)
		for _, m := range queue {
			frame = append(frame, clique.Word(m.Seq), m.Payload)
		}
		ex.SendFramed(dst, frame, len(queue), len(frame))
	}
	inbox, err := ex.Exchange()
	if err != nil {
		return nil, err
	}
	var received []Message
	for from, packets := range inbox {
		for _, p := range packets {
			if len(p)%directWordsPerMessage != 0 {
				return nil, fmt.Errorf("core: malformed direct frame with %d words", len(p))
			}
			for i := 0; i < len(p); i += directWordsPerMessage {
				received = append(received, Message{Src: from, Dst: ex.ID(), Seq: int(p[i]), Payload: p[i+1]})
			}
		}
	}
	sortMessages(received)
	return received, nil
}

// broadcastRoute is the one-to-many fast path: message k of this node is
// scattered to relay (id+k) mod n in one round, then every relay forwards
// its held messages to their destinations, one message per (relay,
// destination) edge per round, for exactly relayRounds rounds. Decoded
// packets are converted to Message values immediately, so nothing aliases
// engine receive memory past the payload grace window.
func broadcastRoute(ex clique.Exchanger, msgs []Message, relayRounds int) ([]Message, error) {
	n := ex.N()
	for k, m := range msgs {
		if m.Src != ex.ID() {
			return nil, fmt.Errorf("core: message (%d->%d) submitted by node %d", m.Src, m.Dst, ex.ID())
		}
		ex.Send((ex.ID()+k)%n, clique.Packet{clique.Word(m.Dst), clique.Word(m.Seq), m.Payload})
	}
	inbox, err := ex.Exchange()
	if err != nil {
		return nil, err
	}
	held := make([][]Message, n)
	for from, packets := range inbox {
		for _, p := range packets {
			if len(p) < relayWordsPerMessage {
				return nil, fmt.Errorf("core: malformed scattered message with %d words", len(p))
			}
			dst := int(p[0])
			if dst < 0 || dst >= n {
				return nil, fmt.Errorf("core: scattered destination %d out of range", dst)
			}
			held[dst] = append(held[dst], Message{Src: from, Dst: dst, Seq: int(p[1]), Payload: p[2]})
			if len(held[dst]) > relayRounds {
				return nil, fmt.Errorf("core: relay %d holds %d messages for node %d, broadcast plan allows %d",
					ex.ID(), len(held[dst]), dst, relayRounds)
			}
		}
	}
	var received []Message
	for r := 0; r < relayRounds; r++ {
		for dst, queue := range held {
			if r < len(queue) {
				m := queue[r]
				ex.Send(dst, clique.Packet{clique.Word(m.Src), clique.Word(m.Seq), m.Payload})
			}
		}
		inbox, err := ex.Exchange()
		if err != nil {
			return nil, err
		}
		for _, packets := range inbox {
			for _, p := range packets {
				if len(p) < relayWordsPerMessage {
					return nil, fmt.Errorf("core: malformed relayed message with %d words", len(p))
				}
				received = append(received, Message{Src: int(p[0]), Dst: ex.ID(), Seq: int(p[1]), Payload: p[2]})
			}
		}
	}
	sortMessages(received)
	return received, nil
}
