package core

import (
	"fmt"
	"reflect"
	"testing"

	"congestedclique/internal/clique"
)

// sparseTestInstances is the shape catalog the sparse-path parity tests sweep:
// every strategy the sparse executors cover plus the pipeline fallbacks, with
// ragged and inactive rows mixed in.
func sparseTestInstances(n int) map[string][][]Message {
	oneToMany := make([][]Message, n)
	for j := 0; j < 6*min(n, 8); j++ {
		oneToMany[0] = append(oneToMany[0], Message{Src: 0, Dst: 1 + j%4, Seq: j, Payload: clique.Word(j)})
	}
	ragged := make([][]Message, n/2) // rows beyond len(msgs) are empty
	for src := 0; src < len(ragged); src += 3 {
		for p := 0; p < 1+src%3; p++ {
			ragged[src] = append(ragged[src], Message{Src: src, Dst: (src*7 + p) % n, Seq: p, Payload: clique.Word(100*src + p)})
		}
	}
	return map[string][][]Message{
		"empty":       make([][]Message, n),
		"direct":      sparseInstance(n, 2, 1),
		"direct-full": sparseInstance(n, 3, DirectMaxMultiplicity),
		"broadcast":   oneToMany,
		"ragged":      ragged,
		"pipeline":    sparseInstance(n, n, 1),
	}
}

func TestSparseDemandRoundTrip(t *testing.T) {
	t.Parallel()
	const n = 48
	for name, msgs := range sparseTestInstances(n) {
		sd, err := NewSparseDemand(n, msgs)
		if err != nil {
			t.Fatalf("%s: NewSparseDemand: %v", name, err)
		}
		back := sd.Messages()
		for i := 0; i < n; i++ {
			var want []Message
			if i < len(msgs) {
				want = msgs[i]
			}
			if len(want) == 0 && len(back[i]) == 0 {
				continue
			}
			if !reflect.DeepEqual(back[i], want) {
				t.Fatalf("%s: row %d does not round-trip: got %v want %v", name, i, back[i], want)
			}
		}
		total := 0
		for _, row := range msgs {
			total += len(row)
		}
		if sd.Total() != total {
			t.Fatalf("%s: Total = %d, want %d", name, sd.Total(), total)
		}
	}
}

func TestSparseDemandRejectsMalformedRows(t *testing.T) {
	t.Parallel()
	const n = 8
	if _, err := NewSparseDemand(n, [][]Message{{{Src: 1, Dst: 2}}}); err == nil {
		t.Error("foreign Src accepted")
	}
	if _, err := NewSparseDemand(n, [][]Message{{{Src: 0, Dst: n}}}); err == nil {
		t.Error("out-of-range Dst accepted")
	}
}

func TestSparseFingerprintMatchesRouteFingerprint(t *testing.T) {
	t.Parallel()
	const n = 48
	for name, msgs := range sparseTestInstances(n) {
		sd, err := NewSparseDemand(n, msgs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got, want := sd.Fingerprint(), RouteFingerprint(n, msgs); got != want {
			t.Errorf("%s: sparse fingerprint %v != dense %v", name, got, want)
		}
	}
}

func TestPlanRouteSparseMatchesPlanRoute(t *testing.T) {
	t.Parallel()
	for _, n := range []int{8, 48, 90} {
		for name, msgs := range sparseTestInstances(n) {
			sd, err := NewSparseDemand(n, msgs)
			if err != nil {
				t.Fatalf("n=%d %s: %v", n, name, err)
			}
			got := PlanRouteSparse(sd)
			want := PlanRoute(n, msgs)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("n=%d %s: sparse plan %+v\n  != dense plan %+v", n, name, got, want)
			}
		}
	}
}

// runDenseAutoRoute executes AutoRoute on the blocking scheduler and returns
// the per-node outputs and run metrics.
func runDenseAutoRoute(t *testing.T, n int, msgs [][]Message, plan RoutePlan) ([][]Message, clique.Metrics) {
	t.Helper()
	nw, err := clique.New(n)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	outs := make([][]Message, n)
	err = nw.Run(func(nd *clique.Node) error {
		var row []Message
		if nd.ID() < len(msgs) {
			row = msgs[nd.ID()]
		}
		out, rErr := AutoRoute(nd, row, plan)
		if rErr != nil {
			return rErr
		}
		outs[nd.ID()] = out
		return nil
	})
	if err != nil {
		t.Fatalf("dense AutoRoute: %v", err)
	}
	return outs, nw.Metrics()
}

// runSparseRoute executes the sparse step-mode run and returns the per-node
// outputs and run metrics.
func runSparseRoute(t *testing.T, sd *SparseDemand, plan RoutePlan) ([][]Message, clique.Metrics) {
	t.Helper()
	n := sd.N()
	nw, err := clique.New(n)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	run, err := NewSparseRouteRun(sd, plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.RunRounds(run.Step); err != nil {
		t.Fatalf("sparse route run: %v", err)
	}
	outs := make([][]Message, n)
	for i := 0; i < n; i++ {
		outs[i] = run.Output(i)
	}
	return outs, nw.Metrics()
}

func TestSparseRouteRunMatchesDense(t *testing.T) {
	t.Parallel()
	for _, n := range []int{8, 48, 90} {
		for name, msgs := range sparseTestInstances(n) {
			for _, census := range []bool{false, true} {
				sd, err := NewSparseDemand(n, msgs)
				if err != nil {
					t.Fatalf("n=%d %s: %v", n, name, err)
				}
				plan := PlanRouteSparse(sd)
				if !SparseStepCapable(plan.Strategy) {
					continue // pipeline arm: blocking scheduler only
				}
				plan.Census = census
				if census {
					plan.CensusHasFP = true
					plan.CensusFP = sd.Fingerprint().Hash
				}
				label := fmt.Sprintf("n=%d/%s/census=%v", n, name, census)
				wantOut, wantM := runDenseAutoRoute(t, n, msgs, plan)
				gotOut, gotM := runSparseRoute(t, sd, plan)
				for i := 0; i < n; i++ {
					if len(wantOut[i]) == 0 && len(gotOut[i]) == 0 {
						continue
					}
					if !reflect.DeepEqual(gotOut[i], wantOut[i]) {
						t.Fatalf("%s: node %d outputs differ:\n sparse %v\n dense  %v", label, i, gotOut[i], wantOut[i])
					}
				}
				if gotM.Rounds != wantM.Rounds || gotM.TotalWords != wantM.TotalWords ||
					gotM.TotalMessages != wantM.TotalMessages ||
					gotM.MaxEdgeWords != wantM.MaxEdgeWords || gotM.MaxEdgeMessages != wantM.MaxEdgeMessages {
					t.Errorf("%s: metrics differ:\n sparse %+v\n dense  %+v", label, gotM, wantM)
				}
			}
		}
	}
}

// presortedKeysInstance builds rows that partition the global order: node i
// holds cnt(i) consecutive values, ascending across nodes.
func presortedKeysInstance(n int) [][]Key {
	keys := make([][]Key, n)
	v := int64(0)
	for i := 0; i < n; i++ {
		cnt := (i*7)%5 + 1
		if i%11 == 0 {
			cnt = 0 // inactive holders stay covered
		}
		for j := 0; j < cnt; j++ {
			keys[i] = append(keys[i], Key{Value: v, Origin: i, Seq: j})
			v += int64(1 + (i+j)%3)
		}
	}
	return keys
}

// runDenseAutoSort executes AutoSort on the blocking scheduler.
func runDenseAutoSort(t *testing.T, n int, keys [][]Key, plan SortPlan) ([]*SortResult, clique.Metrics) {
	t.Helper()
	nw, err := clique.New(n)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	results := make([]*SortResult, n)
	err = nw.Run(func(nd *clique.Node) error {
		var row []Key
		if nd.ID() < len(keys) {
			row = keys[nd.ID()]
		}
		res, sErr := AutoSort(nd, row, plan)
		if sErr != nil {
			return sErr
		}
		results[nd.ID()] = res
		return nil
	})
	if err != nil {
		t.Fatalf("dense AutoSort: %v", err)
	}
	return results, nw.Metrics()
}

func TestSparseSortRunMatchesDense(t *testing.T) {
	t.Parallel()
	for _, n := range []int{8, 48, 90} {
		for _, tc := range []struct {
			name string
			keys [][]Key
		}{
			{"empty", make([][]Key, n)},
			{"presorted", presortedKeysInstance(n)},
		} {
			for _, census := range []bool{false, true} {
				plan := PlanSort(n, tc.keys)
				if !SparseSortStepCapable(plan.Strategy) {
					t.Fatalf("n=%d %s: plan strategy %v not step-capable", n, tc.name, plan.Strategy)
				}
				plan.Census = census
				if census {
					if fp, ok := SortFingerprint(n, tc.keys); ok {
						plan.CensusHasFP = true
						plan.CensusFP = fp.Hash
					}
				}
				label := fmt.Sprintf("n=%d/%s/census=%v", n, tc.name, census)

				want, wantM := runDenseAutoSort(t, n, tc.keys, plan)

				nw, err := clique.New(n)
				if err != nil {
					t.Fatal(err)
				}
				run, err := NewSparseSortRun(n, tc.keys, plan)
				if err != nil {
					nw.Close()
					t.Fatal(err)
				}
				if err := nw.RunRounds(run.Step); err != nil {
					nw.Close()
					t.Fatalf("%s: sparse sort run: %v", label, err)
				}
				gotM := nw.Metrics()
				for i := 0; i < n; i++ {
					got := run.Result(i)
					if got == nil {
						t.Fatalf("%s: node %d has no result", label, i)
					}
					if got.Start != want[i].Start || got.Total != want[i].Total ||
						!(len(got.Batch) == 0 && len(want[i].Batch) == 0 || reflect.DeepEqual(got.Batch, want[i].Batch)) {
						t.Fatalf("%s: node %d results differ:\n sparse %+v\n dense  %+v", label, i, got, want[i])
					}
				}
				nw.Close()
				if gotM.Rounds != wantM.Rounds || gotM.TotalWords != wantM.TotalWords ||
					gotM.TotalMessages != wantM.TotalMessages ||
					gotM.MaxEdgeWords != wantM.MaxEdgeWords || gotM.MaxEdgeMessages != wantM.MaxEdgeMessages {
					t.Errorf("%s: metrics differ:\n sparse %+v\n dense  %+v", label, gotM, wantM)
				}
			}
		}
	}
}
