package core

import (
	"fmt"

	"congestedclique/internal/clique"
)

// This file implements the flat-frame wire layer: all logical model messages
// a node sends to one neighbor in one round are coalesced into a single
// physical packet (a frame), so the engine handles one packet per busy edge
// per round instead of one per message.
//
// Wire layout of a frame:
//
//	[count, len_1, msg_1 words..., len_2, msg_2 words..., ..., len_count, msg_count words...]
//
// count and the len_i are simulator bookkeeping, not model traffic: the
// frame is sent with clique.Exchanger.SendFramed(count, Σ len_i), so the
// per-edge word accounting (Stats.MaxEdgeWords, the O(log n)-bits-per-edge
// budget, strict bandwidth checks) charges exactly what count individually
// sent packets of the same contents would have cost.
//
// Ownership and lifetime rules:
//
//   - Frames are assembled by comm.flushFrames from the comm's staging log;
//     both buffers are owned by the comm and recycled every round. The
//     engine copies the words at the barrier, so staging is allocation free
//     in steady state.
//   - Decoded messages ([]clique.Word views produced by appendFrameMessages)
//     point into the engine's receive arena. They stay valid for
//     clique.PayloadGraceRounds further barriers of the instance; protocol
//     code must consume or copy them within that window (every constant-round
//     primitive in this package does).

// appendFrameMessages decodes a frame and appends each logical message (as a
// view into the frame's backing words) to dst. Truncated or otherwise
// malformed frames are rejected with an error, never a panic.
func appendFrameMessages(dst [][]clique.Word, frame clique.Packet) ([][]clique.Word, error) {
	if len(frame) < 1 {
		return dst, fmt.Errorf("core: empty frame")
	}
	count := int(frame[0])
	if count < 0 || count > len(frame)-1 {
		return dst, fmt.Errorf("core: frame claims %d messages in %d words", count, len(frame))
	}
	off := 1
	for i := 0; i < count; i++ {
		if off >= len(frame) {
			return dst, fmt.Errorf("core: frame message %d/%d missing its length slot", i, count)
		}
		l := int(frame[off])
		off++
		if l < 0 || l > len(frame)-off {
			return dst, fmt.Errorf("core: frame message %d/%d truncated (%d words claimed, %d left)", i, count, l, len(frame)-off)
		}
		dst = append(dst, frame[off:off+l:off+l])
		off += l
	}
	if off != len(frame) {
		return dst, fmt.Errorf("core: frame carries %d trailing words", len(frame)-off)
	}
	return dst, nil
}

// AppendFrame encodes the logical messages msgs into dst as one flat frame
// ([count, len_1, msg_1 words..., ...]) and returns the grown slice. It is the
// encoding twin of DecodeFrame, exported for the service wire layer
// (internal/service), which reuses the engine's frame layout for instance
// payloads and results on the network.
func AppendFrame(dst []clique.Word, msgs ...[]clique.Word) []clique.Word {
	dst = append(dst, clique.Word(len(msgs)))
	for _, m := range msgs {
		dst = append(dst, clique.Word(len(m)))
		dst = append(dst, m...)
	}
	return dst
}

// DecodeFrame decodes a flat frame into its logical messages, appending each
// (as a view into the frame's backing words) to dst. Truncated or otherwise
// malformed frames are rejected with an error, never a panic — the same
// decoder the engine's receive path runs on every delivered frame, exported
// for the service wire layer.
func DecodeFrame(dst [][]clique.Word, frame []clique.Word) ([][]clique.Word, error) {
	return appendFrameMessages(dst, frame)
}

// rxBuf is the decoded receive state of one comm round: the logical messages
// of every received frame, flattened in ascending sender order. It is owned
// by the comm and reused round over round; all slices are views into the
// engine's receive arena (see the lifetime rules above).
type rxBuf struct {
	msgs  [][]clique.Word
	start []int32 // msgs[start[s]:start[s+1]] are the messages of sender s
}

// all returns every received message in ascending sender order.
func (r *rxBuf) all() [][]clique.Word { return r.msgs }

// fromSender returns the messages received from the local sender index s.
func (r *rxBuf) fromSender(s int) [][]clique.Word {
	return r.msgs[r.start[s]:r.start[s+1]]
}

// single returns the unique message received from sender s, or nil if none
// arrived. Protocols whose invariant is "at most one message per edge per
// round" use it; a violation surfaces the first message.
func (r *rxBuf) single(s int) []clique.Word {
	ms := r.fromSender(s)
	if len(ms) == 0 {
		return nil
	}
	return ms[0]
}
