package core

import (
	"fmt"
	"math/rand"
	"testing"

	"congestedclique/internal/clique"
)

// buildRoutingInstance creates a routing instance for n nodes in which every
// node is source of exactly per messages and destination of exactly per
// messages, by overlaying per random permutations.
func buildRoutingInstance(n, per int, seed int64) [][]Message {
	rng := rand.New(rand.NewSource(seed))
	msgs := make([][]Message, n)
	for k := 0; k < per; k++ {
		perm := rng.Perm(n)
		for src, dst := range perm {
			msgs[src] = append(msgs[src], Message{
				Src:     src,
				Dst:     dst,
				Seq:     len(msgs[src]),
				Payload: clique.Word(src*1_000_000 + k*1_000 + dst),
			})
		}
	}
	return msgs
}

// buildSkewedInstance creates the adversarial instance in which node i sends
// all of its messages to node (i+1) mod n.
func buildSkewedInstance(n, per int) [][]Message {
	msgs := make([][]Message, n)
	for src := 0; src < n; src++ {
		dst := (src + 1) % n
		for k := 0; k < per; k++ {
			msgs[src] = append(msgs[src], Message{Src: src, Dst: dst, Seq: k, Payload: clique.Word(src*10_000 + k)})
		}
	}
	return msgs
}

// buildSetAdversarialInstance sends every message of the nodes in group g to
// nodes of group (g+1) mod sqrt(n); heavy inter-set traffic exercises the
// Algorithm 2 balancing.
func buildSetAdversarialInstance(n, per int) [][]Message {
	s := isqrt(n)
	msgs := make([][]Message, n)
	for src := 0; src < n; src++ {
		g := src / s
		tg := (g + 1) % s
		for k := 0; k < per; k++ {
			dst := tg*s + (src+k)%s
			msgs[src] = append(msgs[src], Message{Src: src, Dst: dst, Seq: k, Payload: clique.Word(src*10_000 + k)})
		}
	}
	return msgs
}

// runRouting executes the deterministic router on the given instance and
// checks exact delivery. It returns the execution metrics.
func runRouting(t *testing.T, msgs [][]Message, opts ...clique.Option) clique.Metrics {
	t.Helper()
	n := len(msgs)
	nw, err := clique.New(n, opts...)
	if err != nil {
		t.Fatal(err)
	}
	results := make([][]Message, n)
	err = nw.Run(func(nd *clique.Node) error {
		out, rErr := Route(nd, msgs[nd.ID()])
		if rErr != nil {
			return rErr
		}
		results[nd.ID()] = out
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	verifyDelivery(t, msgs, results)
	return nw.Metrics()
}

// verifyDelivery checks that the delivered messages are exactly the sent
// messages, node by node.
func verifyDelivery(t *testing.T, sent [][]Message, received [][]Message) {
	t.Helper()
	n := len(sent)
	want := make([]map[Message]int, n)
	for i := range want {
		want[i] = make(map[Message]int)
	}
	total := 0
	for _, msgs := range sent {
		for _, m := range msgs {
			want[m.Dst][m]++
			total++
		}
	}
	got := 0
	for dst := 0; dst < n; dst++ {
		for _, m := range received[dst] {
			if m.Dst != dst {
				t.Fatalf("node %d received message addressed to %d", dst, m.Dst)
			}
			if want[dst][m] == 0 {
				t.Fatalf("node %d received unexpected or duplicated message %+v", dst, m)
			}
			want[dst][m]--
			got++
		}
	}
	if got != total {
		t.Fatalf("delivered %d of %d messages", got, total)
	}
}

func TestRouteFullLoadPerfectSquares(t *testing.T) {
	t.Parallel()
	for _, n := range []int{16, 25, 36, 64, 100} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			t.Parallel()
			m := runRouting(t, buildRoutingInstance(n, n, int64(n)))
			if m.Rounds > 16 {
				t.Errorf("n=%d: %d rounds, Theorem 3.7 claims at most 16", n, m.Rounds)
			}
			if m.MaxEdgeWords > 16 {
				t.Errorf("n=%d: max edge words %d, expected a small constant", n, m.MaxEdgeWords)
			}
		})
	}
}

func TestRouteFullLoadNonSquares(t *testing.T) {
	t.Parallel()
	for _, n := range []int{12, 18, 20, 27, 40, 50} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			t.Parallel()
			m := runRouting(t, buildRoutingInstance(n, n, int64(n)*7))
			if m.Rounds > 16 {
				t.Errorf("n=%d: %d rounds, Theorem 3.7 claims at most 16", n, m.Rounds)
			}
			if m.MaxEdgeWords > 40 {
				t.Errorf("n=%d: max edge words %d, expected a small constant", n, m.MaxEdgeWords)
			}
		})
	}
}

func TestRouteTinyCliques(t *testing.T) {
	t.Parallel()
	for n := 1; n < 9; n++ {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			t.Parallel()
			m := runRouting(t, buildRoutingInstance(n, n, int64(n)*13))
			if m.Rounds > 16 {
				t.Errorf("n=%d: %d rounds", n, m.Rounds)
			}
		})
	}
}

func TestRouteSkewedInstances(t *testing.T) {
	t.Parallel()
	for _, n := range []int{16, 23, 36, 49} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			t.Parallel()
			m := runRouting(t, buildSkewedInstance(n, n))
			if m.Rounds > 16 {
				t.Errorf("n=%d skewed: %d rounds", n, m.Rounds)
			}
		})
	}
}

func TestRouteSetAdversarialInstances(t *testing.T) {
	t.Parallel()
	for _, n := range []int{16, 36, 64} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			t.Parallel()
			m := runRouting(t, buildSetAdversarialInstance(n, n))
			if m.Rounds > 16 {
				t.Errorf("n=%d set-adversarial: %d rounds", n, m.Rounds)
			}
		})
	}
}

func TestRoutePartialLoad(t *testing.T) {
	t.Parallel()
	// Fewer than n messages per node ("up to n" in Problem 3.1).
	for _, n := range []int{16, 25, 30} {
		for _, per := range []int{0, 1, 3, n / 2} {
			m := runRouting(t, buildRoutingInstance(n, per, int64(n*100+per)))
			if m.Rounds > 16 {
				t.Errorf("n=%d per=%d: %d rounds", n, per, m.Rounds)
			}
		}
	}
}

func TestRouteSelfMessages(t *testing.T) {
	t.Parallel()
	const n = 16
	msgs := make([][]Message, n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			msgs[i] = append(msgs[i], Message{Src: i, Dst: i, Seq: k, Payload: clique.Word(k)})
		}
	}
	m := runRouting(t, msgs)
	if m.Rounds > 16 {
		t.Errorf("self messages: %d rounds", m.Rounds)
	}
}

func TestRouteRejectsForeignSource(t *testing.T) {
	t.Parallel()
	nw, err := clique.New(4)
	if err != nil {
		t.Fatal(err)
	}
	err = nw.Run(func(nd *clique.Node) error {
		var mine []Message
		if nd.ID() == 0 {
			mine = []Message{{Src: 1, Dst: 2, Seq: 0, Payload: 7}}
		}
		_, rErr := Route(nd, mine)
		if nd.ID() == 0 {
			if rErr == nil {
				return fmt.Errorf("foreign source accepted")
			}
			return nil
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRouteRejectsInvalidDestination(t *testing.T) {
	t.Parallel()
	nw, err := clique.New(4)
	if err != nil {
		t.Fatal(err)
	}
	err = nw.Run(func(nd *clique.Node) error {
		var mine []Message
		if nd.ID() == 0 {
			mine = []Message{{Src: 0, Dst: 99, Seq: 0, Payload: 7}}
		}
		_, rErr := Route(nd, mine)
		if nd.ID() == 0 && rErr == nil {
			return fmt.Errorf("invalid destination accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRouteDeterministicRounds checks that the round count does not depend on
// the payload values, only on the instance shape — and records the exact
// numbers the paper derives (16 for n >= 9, 4 for tiny cliques).
func TestRouteDeterministicRounds(t *testing.T) {
	t.Parallel()
	m1 := runRouting(t, buildRoutingInstance(25, 25, 1))
	m2 := runRouting(t, buildRoutingInstance(25, 25, 2))
	if m1.Rounds != m2.Rounds {
		t.Fatalf("round count depends on the instance: %d vs %d", m1.Rounds, m2.Rounds)
	}
	if m1.Rounds != 16 {
		t.Fatalf("perfect-square full-load instance used %d rounds, algorithm schedule says 16", m1.Rounds)
	}
}

// TestRouteSharedCacheEquivalence verifies that the shared deterministic
// computation cache is purely an optimisation: results and round counts are
// identical with and without it.
func TestRouteSharedCacheEquivalence(t *testing.T) {
	t.Parallel()
	msgs := buildRoutingInstance(16, 16, 99)
	mCached := runRouting(t, msgs)
	mUncached := runRouting(t, msgs, clique.WithSharedCache(false))
	if mCached.Rounds != mUncached.Rounds {
		t.Fatalf("rounds differ with cache: %d vs %d", mCached.Rounds, mUncached.Rounds)
	}
	if mCached.TotalMessages != mUncached.TotalMessages {
		t.Fatalf("traffic differs with cache: %d vs %d", mCached.TotalMessages, mUncached.TotalMessages)
	}
}

func TestRouteStrictBandwidth(t *testing.T) {
	t.Parallel()
	// The wire format uses at most 6 words per packet and the schedule puts at
	// most 2 packets on an edge per round for square instances; enforce a
	// strict budget to catch regressions.
	msgs := buildRoutingInstance(36, 36, 5)
	runRouting(t, msgs, clique.WithStrictEdgeBudget(16))
}
