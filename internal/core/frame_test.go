package core

import (
	"bytes"
	"encoding/binary"
	"testing"

	"congestedclique/internal/clique"
)

// encodeFrameRef is the reference encoder for the frame wire layout
// ([count, len_1, msg_1..., ..., len_k, msg_k...]); comm.flushFrames must
// stay byte-compatible with it.
func encodeFrameRef(msgs [][]clique.Word) clique.Packet {
	frame := clique.Packet{clique.Word(len(msgs))}
	for _, m := range msgs {
		frame = append(frame, clique.Word(len(m)))
		frame = append(frame, m...)
	}
	return frame
}

// FuzzFrameRoundTrip checks that the frame codec round-trips arbitrary
// message batches, rejects every strict prefix of a valid frame (truncation
// can never pass silently) and never panics on arbitrary word soup.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{1, 0})
	f.Add([]byte{3, 1, 42, 2, 7, 7, 0})
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255, 1})
	f.Add(bytes.Repeat([]byte{5, 1, 2, 3}, 16))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Derive a message batch from the fuzz input: alternating length
		// nibbles and payload bytes.
		var msgs [][]clique.Word
		i := 0
		for i < len(data) && len(msgs) < 32 {
			l := int(data[i] % 9)
			i++
			var m []clique.Word
			for j := 0; j < l && i < len(data); j++ {
				m = append(m, clique.Word(int8(data[i])))
				i++
			}
			msgs = append(msgs, m)
		}
		frame := encodeFrameRef(msgs)

		// Round trip.
		out, err := appendFrameMessages(nil, frame)
		if err != nil {
			t.Fatalf("valid frame rejected: %v", err)
		}
		if len(out) != len(msgs) {
			t.Fatalf("decoded %d messages, encoded %d", len(out), len(msgs))
		}
		for k := range msgs {
			if len(out[k]) != len(msgs[k]) {
				t.Fatalf("message %d: decoded %d words, encoded %d", k, len(out[k]), len(msgs[k]))
			}
			for w := range msgs[k] {
				if out[k][w] != msgs[k][w] {
					t.Fatalf("message %d word %d: decoded %d, encoded %d", k, w, out[k][w], msgs[k][w])
				}
			}
		}

		// Every strict prefix must be rejected, not silently mis-decoded.
		for cut := 0; cut < len(frame); cut++ {
			if _, err := appendFrameMessages(nil, frame[:cut]); err == nil {
				t.Fatalf("truncated frame (%d of %d words) decoded without error", cut, len(frame))
			}
		}

		// Arbitrary word soup derived from the raw bytes must never panic.
		soup := make(clique.Packet, 0, (len(data)+7)/8)
		for o := 0; o < len(data); o += 8 {
			var buf [8]byte
			copy(buf[:], data[o:])
			soup = append(soup, clique.Word(binary.LittleEndian.Uint64(buf[:])))
		}
		if out, err := appendFrameMessages(nil, soup); err == nil {
			// A coincidentally valid frame must still satisfy the layout.
			total := 1
			for _, m := range out {
				total += 1 + len(m)
			}
			if total != len(soup) {
				t.Fatalf("soup decoded inconsistently: %d words accounted of %d", total, len(soup))
			}
		}
	})
}

// TestFrameStagingMatchesReference drives the comm staging path through a
// 2-node clique and checks the wire bytes against the reference encoder.
func TestFrameStagingMatchesReference(t *testing.T) {
	nw, err := clique.New(2)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]clique.Word{{7}, {1, 2, 3}, {}, {42, 43}}
	got := make([][][]clique.Word, 2)
	runErr := nw.Run(func(nd *clique.Node) error {
		c := fullComm(nd, "frame-test")
		defer c.release()
		if nd.ID() == 0 {
			for _, m := range want {
				c.send(1, m...)
			}
		}
		rx, err := c.exchange()
		if err != nil {
			return err
		}
		for _, m := range rx.fromSender(0) {
			got[nd.ID()] = append(got[nd.ID()], append([]clique.Word(nil), m...))
		}
		return nil
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	if len(got[1]) != len(want) {
		t.Fatalf("node 1 decoded %d messages, want %d", len(got[1]), len(want))
	}
	for i := range want {
		if len(got[1][i]) != len(want[i]) {
			t.Fatalf("message %d: got %v, want %v", i, got[1][i], want[i])
		}
		for j := range want[i] {
			if got[1][i][j] != want[i][j] {
				t.Fatalf("message %d: got %v, want %v", i, got[1][i], want[i])
			}
		}
	}
}
