package core

import (
	"fmt"
	"sort"

	"congestedclique/internal/clique"
)

// Message is one unit of the Information Distribution Task (Problem 3.1):
// node Src must deliver Payload to node Dst. Seq is the message's index in
// the source's input; together (Src, Dst, Seq) order messages
// lexicographically and make them distinguishable, as required by the paper.
type Message struct {
	Src     int
	Dst     int
	Seq     int
	Payload clique.Word
}

// Less orders messages lexicographically by (Src, Dst, Seq), the global order
// used by Problem 3.1.
func (m Message) Less(o Message) bool {
	if m.Src != o.Src {
		return m.Src < o.Src
	}
	if m.Dst != o.Dst {
		return m.Dst < o.Dst
	}
	return m.Seq < o.Seq
}

// messageWords is the wire size of an encoded Message.
const messageWords = 4

// encodeMessage packs a message into words: [dst, src, seq, payload].
func encodeMessage(m Message) []clique.Word {
	return []clique.Word{clique.Word(m.Dst), clique.Word(m.Src), clique.Word(m.Seq), m.Payload}
}

// decodeMessage unpacks a message encoded by encodeMessage.
func decodeMessage(w []clique.Word) (Message, error) {
	if len(w) < messageWords {
		return Message{}, fmt.Errorf("core: message payload too short: %d words", len(w))
	}
	return Message{Dst: int(w[0]), Src: int(w[1]), Seq: int(w[2]), Payload: w[3]}, nil
}

// Key is one unit of the sorting problem (Problem 4.1). Keys are made
// distinct by ordering them lexicographically by (Value, Origin, Seq), the
// paper's footnote-5 convention, so duplicate values are handled uniformly.
type Key struct {
	Value  int64
	Origin int
	Seq    int
}

// Less orders keys by (Value, Origin, Seq).
func (k Key) Less(o Key) bool {
	if k.Value != o.Value {
		return k.Value < o.Value
	}
	if k.Origin != o.Origin {
		return k.Origin < o.Origin
	}
	return k.Seq < o.Seq
}

// keyWords is the wire size of an encoded Key.
const keyWords = 3

func encodeKey(k Key) []clique.Word {
	return []clique.Word{k.Value, clique.Word(k.Origin), clique.Word(k.Seq)}
}

func decodeKey(w []clique.Word) (Key, error) {
	if len(w) < keyWords {
		return Key{}, fmt.Errorf("core: key payload too short: %d words", len(w))
	}
	return Key{Value: w[0], Origin: int(w[1]), Seq: int(w[2])}, nil
}

func sortKeys(ks []Key) {
	sort.Slice(ks, func(i, j int) bool { return ks[i].Less(ks[j]) })
}

// SortKeySlice sorts keys in the global order used by the sorting problem
// (ascending by value with the footnote-5 tie-break). It is exported for the
// verification and baseline packages.
func SortKeySlice(ks []Key) { sortKeys(ks) }

// SortMessageSlice sorts messages in the lexicographic order of Problem 3.1.
func SortMessageSlice(ms []Message) { sortMessages(ms) }

func sortMessages(ms []Message) {
	sort.Slice(ms, func(i, j int) bool { return ms[i].Less(ms[j]) })
}

// comm is the execution context of one protocol instance: the Exchanger of
// this physical node plus the (sorted) member list of the sub-clique the
// instance runs on. All algorithm code addresses nodes by their local index
// within the member list; relays for Corollary 3.3 are likewise drawn from
// the member list, so an instance never touches edges with both endpoints
// outside its members (the property that lets instances run concurrently).
type comm struct {
	ex      clique.Exchanger
	members []int
	local   map[int]int
	me      int // local index of this node, or -1 if it is not a member
	label   string
}

// newComm builds the context for an instance named label (labels scope the
// deterministic shared-computation cache) with the given members. Members
// must be sorted, distinct and valid node identifiers.
func newComm(ex clique.Exchanger, label string, members []int) (*comm, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("core: instance %q has no members", label)
	}
	local := make(map[int]int, len(members))
	for i, g := range members {
		if g < 0 || g >= ex.N() {
			return nil, fmt.Errorf("core: instance %q member %d out of range", label, g)
		}
		if i > 0 && members[i-1] >= g {
			return nil, fmt.Errorf("core: instance %q members not sorted/distinct at index %d", label, i)
		}
		local[g] = i
	}
	me := -1
	if idx, ok := local[ex.ID()]; ok {
		me = idx
	}
	return &comm{ex: ex, members: members, local: local, me: me, label: label}, nil
}

// fullComm is the common case of an instance spanning the whole clique.
func fullComm(ex clique.Exchanger, label string) *comm {
	members := make([]int, ex.N())
	for i := range members {
		members[i] = i
	}
	c, err := newComm(ex, label, members)
	if err != nil {
		// Cannot happen: the member list is valid by construction.
		panic(err)
	}
	return c
}

// size returns the number of members.
func (c *comm) size() int { return len(c.members) }

// isMember reports whether this node belongs to the instance.
func (c *comm) isMember() bool { return c.me >= 0 }

// global converts a local member index to a global node identifier.
func (c *comm) global(local int) int { return c.members[local] }

// localOf converts a global node identifier to a local index.
func (c *comm) localOf(global int) (int, bool) {
	idx, ok := c.local[global]
	return idx, ok
}

// send queues a packet for the member with the given local index.
func (c *comm) send(localTo int, p clique.Packet) {
	c.ex.Send(c.members[localTo], p)
}

// exchange runs one round barrier and returns the received packets re-indexed
// by local member index. Packets from non-members are ignored (well-formed
// instances never produce them).
func (c *comm) exchange() ([][]clique.Packet, error) {
	inbox, err := c.ex.Exchange()
	if err != nil {
		return nil, fmt.Errorf("core: instance %q exchange: %w", c.label, err)
	}
	out := make([][]clique.Packet, c.size())
	for from, packets := range inbox {
		if len(packets) == 0 {
			continue
		}
		idx, ok := c.local[from]
		if !ok {
			continue
		}
		out[idx] = packets
	}
	return out, nil
}

// shared runs a deterministic computation identically known to all members
// and memoises it under a label-scoped key.
func (c *comm) shared(key string, f func() interface{}) interface{} {
	return c.ex.SharedCompute(c.label+"/"+key, f)
}

// grouping splits the members of a comm into consecutive groups of equal size
// g: group i consists of local indices [i*g, (i+1)*g). The member count must
// be divisible by g.
type grouping struct {
	groupSize int
	numGroups int
}

func newGrouping(memberCount, groupSize int) (grouping, error) {
	if groupSize <= 0 || memberCount%groupSize != 0 {
		return grouping{}, fmt.Errorf("core: cannot split %d members into groups of %d", memberCount, groupSize)
	}
	return grouping{groupSize: groupSize, numGroups: memberCount / groupSize}, nil
}

// groupOf returns the group index of a local member index.
func (g grouping) groupOf(local int) int { return local / g.groupSize }

// indexInGroup returns the position of a local member index within its group.
func (g grouping) indexInGroup(local int) int { return local % g.groupSize }

// member returns the local index of the idx-th member of group grp.
func (g grouping) member(grp, idx int) int { return grp*g.groupSize + idx }

// isqrt returns the integer square root of n.
func isqrt(n int) int {
	if n < 0 {
		return 0
	}
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

// isPerfectSquare reports whether n is a perfect square.
func isPerfectSquare(n int) bool {
	s := isqrt(n)
	return s*s == n
}

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a, b int) int {
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}
