package core

import (
	"fmt"
	"slices"
	"sync"

	"congestedclique/internal/clique"
)

// Message is one unit of the Information Distribution Task (Problem 3.1):
// node Src must deliver Payload to node Dst. Seq is the message's index in
// the source's input; together (Src, Dst, Seq) order messages
// lexicographically and make them distinguishable, as required by the paper.
type Message struct {
	Src     int
	Dst     int
	Seq     int
	Payload clique.Word
}

// Less orders messages lexicographically by (Src, Dst, Seq), the global order
// used by Problem 3.1.
func (m Message) Less(o Message) bool {
	if m.Src != o.Src {
		return m.Src < o.Src
	}
	if m.Dst != o.Dst {
		return m.Dst < o.Dst
	}
	return m.Seq < o.Seq
}

// compareMessages is the three-way form of Message.Less used for sorting.
func compareMessages(a, b Message) int {
	if a.Src != b.Src {
		return a.Src - b.Src
	}
	if a.Dst != b.Dst {
		return a.Dst - b.Dst
	}
	return a.Seq - b.Seq
}

// Key is one unit of the sorting problem (Problem 4.1). Keys are made
// distinct by ordering them lexicographically by (Value, Origin, Seq), the
// paper's footnote-5 convention, so duplicate values are handled uniformly.
type Key struct {
	Value  int64
	Origin int
	Seq    int
}

// Less orders keys by (Value, Origin, Seq).
func (k Key) Less(o Key) bool {
	if k.Value != o.Value {
		return k.Value < o.Value
	}
	if k.Origin != o.Origin {
		return k.Origin < o.Origin
	}
	return k.Seq < o.Seq
}

// compareKeys is the three-way form of Key.Less used for sorting.
func compareKeys(a, b Key) int {
	switch {
	case a.Value < b.Value:
		return -1
	case a.Value > b.Value:
		return 1
	}
	if a.Origin != b.Origin {
		return a.Origin - b.Origin
	}
	return a.Seq - b.Seq
}

// keyWords is the wire size of an encoded Key.
const keyWords = 3

func encodeKey(k Key) []clique.Word {
	return []clique.Word{k.Value, clique.Word(k.Origin), clique.Word(k.Seq)}
}

func decodeKey(w []clique.Word) (Key, error) {
	if len(w) < keyWords {
		return Key{}, fmt.Errorf("core: key payload too short: %d words", len(w))
	}
	return Key{Value: w[0], Origin: int(w[1]), Seq: int(w[2])}, nil
}

func sortKeys(ks []Key) {
	slices.SortFunc(ks, compareKeys)
}

// SortKeySlice sorts keys in the global order used by the sorting problem
// (ascending by value with the footnote-5 tie-break). It is exported for the
// verification and baseline packages.
func SortKeySlice(ks []Key) { sortKeys(ks) }

// SortMessageSlice sorts messages in the lexicographic order of Problem 3.1.
func SortMessageSlice(ms []Message) { sortMessages(ms) }

func sortMessages(ms []Message) {
	slices.SortFunc(ms, compareMessages)
}

// step identifies a protocol step: name is a static literal used only in
// error messages (never concatenated on the hot path), key is the unique
// shared-cache identity of the step within its instance.
type step struct {
	name string
	key  skey
}

// sub derives the step for a named sub-phase.
func (s step) sub(name string, code uint8) step {
	return step{name: name, key: s.key.sub(code)}
}

// skey encodes a step's position in the (static) call tree as packed 5-bit
// codes, so shared-cache lookups inside round loops hash a single integer
// instead of formatting strings.
type skey uint64

func (k skey) sub(code uint8) skey { return k<<5 | skey(code) }

// rootStep is the entry point key of every protocol; uniqueness across
// concurrently running protocols comes from the comm label.
func rootStep(name string) step { return step{name: name, key: 1} }

// Step path codes (unique per call-site level, 1..31).
const (
	kcTiny uint8 = iota + 1
	kcSquare
	kcGeneral
	kcV1
	kcV2
	kcCorner
	kcCornerDeliver
	kcSetColoring
	kcA2Announce
	kcA2Plan
	kcA2Move
	kcS3Announce
	kcS3Plan
	kcS3Move
	kcS5
	kcAnnounce
	kcDeliver
	kcColor
	kcSamples
	kcCounts
	kcExchange
	kcSortTiny
	kcSortS3
	kcSortS6
	kcSortS7
	kcLowS5
)

// comm is the execution context of one protocol instance: the Exchanger of
// this physical node plus the (sorted) member list of the sub-clique the
// instance runs on. All algorithm code addresses nodes by their local index
// within the member list; relays for Corollary 3.3 are likewise drawn from
// the member list, so an instance never touches edges with both endpoints
// outside its members (the property that lets instances run concurrently).
//
// The comm owns the instance's flat-frame pipeline state: per-destination
// frame builders (flushed into one SendFramed packet per busy edge at every
// exchange), the decoded receive buffer, and a word arena backing re-encoded
// payloads. All of it is recycled round over round, so a steady-state
// protocol round performs no per-message allocation.
type comm struct {
	ex      clique.Exchanger
	members []int
	me      int // local index of this node, or -1 if it is not a member
	label   string

	// flatEx is non-nil when ex supports the flat receive path (both the
	// physical node and the Mux's virtual nodes do): delivery hands this comm
	// raw [from, len, payload...] records instead of assembling an Inbox.
	// Exchangers without the capability fall back to the boxed path.
	flatEx clique.FlatExchanger

	// tagEx is non-nil when ex is a passthrough virtual node: frames are
	// staged with frameTag as their leading word and handed over zero-copy via
	// SendTagged, and received flat records are shared by all instances on the
	// node, so this comm filters them by frameTag and strips it before
	// decoding.
	tagEx    clique.FrameTagger
	frameTag clique.Word

	// commScratch holds every reusable buffer of the instance. It is
	// acquired from a process-wide pool at newComm and returned by release,
	// so the hundreds of short-lived instances a protocol spawns (one per
	// node per call, plus sub-instances) do not cold-start their pipeline
	// buffers from zero capacity each time.
	*commScratch
}

// commScratch is the poolable buffer state of a comm. Releasing hands every
// buffer — including the arena — to the next acquirer, so release is only
// legal once the comm's results have been fully copied out of arena-backed
// parcels and scratch slices (protocol entry points release after converting
// to caller-owned values; sub-instances whose parcels flow upward, like the
// V1/V2/corner routers, are never released and simply fall to the garbage
// collector).
type commScratch struct {
	local []int32 // dense global id -> local index table, -1 for non-members

	// Outgoing staging state. Messages are appended to a single flat log
	// ([dst, len, payload...] records) during the round; flushFrames then
	// assembles one frame per busy destination in frameBuf and hands the
	// frames to the engine. Two flat buffers instead of per-destination ones
	// keep the cold-start cost of a fresh comm at O(1) allocations.
	stage      []clique.Word
	stageLenAt int // index of the open record's length slot
	stageDst   int // destination of the open record
	frameBuf   []clique.Word
	dstLoad    []uint64 // per-destination (frame words << 32 | messages) this round
	dstOff     []int32  // per-destination write cursor during assembly
	dstStart   []int32  // per-destination frame start during assembly
	dstTouched []int32  // destinations staged this round

	rx rxBuf // decoded inbound messages of the last exchange

	// arena backs item payloads re-encoded between pipeline hops. Growth is
	// append-only, so views stay valid across appends; arenaReset truncates
	// it (keeping capacity) at pipeline points where no views are live.
	arena []clique.Word

	// heldScratch and itemScratch are rotating buffers for the held/item
	// slices produced at every pipeline hop. The rotation depth covers the
	// maximum number of such buffers simultaneously alive in any pipeline
	// (current load, staged items, announcement items, delivery result).
	heldScratch [3][]held
	heldCursor  int
	itemScratch [4][]item
	itemCursor  int

	// rankScratch backs the two rankedKey accumulators of dealByRank (relayed
	// keys, then own keys); both are dead once the batch has been copied out.
	rankScratch [2][]rankedKey

	// posScratch maps a local member index to its position inside the group
	// currently being processed (-1 outside); groupPositions/releasePositions
	// maintain it so group lookups never hash.
	posScratch []int32
	// cursorScratch is a zeroed per-class counter slice handed out by cursors.
	cursorScratch []int

	// annRows and annOut back the per-sender result structure of
	// announceFixed: annOut's w buckets are carved out of the flat annRows
	// arena, so assembling an announcement result allocates nothing in steady
	// state. The structure is valid only until the comm's next announcement
	// (callers consume it immediately). annDemand/annDemandFlat likewise back
	// the uniform demand matrix every announcement hands to relayRoute, which
	// only reads it during the call.
	annRows       [][]clique.Word
	annOut        [][][]clique.Word
	annDemand     [][]int
	annDemandFlat []int
}

// uniformDemandMatrix returns a pooled w x w matrix with every cell set to
// u. It is only valid until the comm's next announcement.
func (c *comm) uniformDemandMatrix(w, u int) [][]int {
	if cap(c.annDemand) < w {
		c.annDemand = make([][]int, w)
	}
	m := c.annDemand[:w]
	if need := w * w; cap(c.annDemandFlat) < need {
		c.annDemandFlat = make([]int, need)
	}
	flat := c.annDemandFlat[:w*w]
	for i := range flat {
		flat[i] = u
	}
	for i := 0; i < w; i++ {
		m[i] = flat[i*w : (i+1)*w : (i+1)*w]
	}
	return m
}

var commScratchPool = sync.Pool{New: func() interface{} { return new(commScratch) }}

// acquireScratch readies a pooled scratch for an instance with the given
// member count on a clique of n nodes.
func acquireScratch(size, n int) *commScratch {
	s := commScratchPool.Get().(*commScratch)
	if cap(s.local) < n {
		s.local = make([]int32, n)
	}
	s.local = s.local[:n]
	for i := range s.local {
		s.local[i] = -1
	}
	if cap(s.dstLoad) < size {
		s.dstLoad = make([]uint64, size)
		s.dstOff = make([]int32, size)
		s.dstStart = make([]int32, size)
	}
	s.dstLoad = s.dstLoad[:size]
	s.dstOff = s.dstOff[:size]
	s.dstStart = s.dstStart[:size]
	// A released comm may have aborted mid-round (error paths), so the
	// per-destination accounting cannot be assumed clean.
	clear(s.dstLoad)
	s.dstTouched = s.dstTouched[:0]
	s.stage = s.stage[:0]
	s.arena = s.arena[:0]
	if cap(s.posScratch) < size {
		s.posScratch = make([]int32, size)
	}
	s.posScratch = s.posScratch[:size]
	for i := range s.posScratch {
		s.posScratch[i] = -1
	}
	s.heldCursor, s.itemCursor = 0, 0
	return s
}

// release returns the comm's scratch to the pool. It must only be called
// when the comm will neither send nor receive again; results that borrow the
// arena remain valid (see commScratch), but the caller must have stopped
// using rx views and held/item scratch slices.
func (c *comm) release() {
	s := c.commScratch
	if s == nil {
		return
	}
	c.commScratch = nil
	commScratchPool.Put(s)
}

// newComm builds the context for an instance named label (labels scope the
// deterministic shared-computation cache) with the given members. Members
// must be sorted, distinct and valid node identifiers.
func newComm(ex clique.Exchanger, label string, members []int) (*comm, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("core: instance %q has no members", label)
	}
	for i, g := range members {
		if g < 0 || g >= ex.N() {
			return nil, fmt.Errorf("core: instance %q member %d out of range", label, g)
		}
		if i > 0 && members[i-1] >= g {
			return nil, fmt.Errorf("core: instance %q members not sorted/distinct at index %d", label, i)
		}
	}
	scratch := acquireScratch(len(members), ex.N())
	for i, g := range members {
		scratch.local[g] = int32(i)
	}
	me := -1
	if idx := scratch.local[ex.ID()]; idx >= 0 {
		me = int(idx)
	}
	nd, _ := ex.(clique.FlatExchanger)
	c := &comm{
		ex:          ex,
		members:     members,
		me:          me,
		label:       label,
		flatEx:      nd,
		commScratch: scratch,
	}
	if ft, ok := ex.(clique.FrameTagger); ok {
		if tag, on := ft.FrameTag(); on {
			c.tagEx, c.frameTag = ft, tag
		}
	}
	return c, nil
}

// fullComm is the common case of an instance spanning the whole clique.
func fullComm(ex clique.Exchanger, label string) *comm {
	members := make([]int, ex.N())
	for i := range members {
		members[i] = i
	}
	c, err := newComm(ex, label, members)
	if err != nil {
		// Cannot happen: the member list is valid by construction.
		panic(err)
	}
	return c
}

// size returns the number of members.
func (c *comm) size() int { return len(c.members) }

// isMember reports whether this node belongs to the instance.
func (c *comm) isMember() bool { return c.me >= 0 }

// global converts a local member index to a global node identifier.
func (c *comm) global(local int) int { return c.members[local] }

// localOf converts a global node identifier to a local index.
func (c *comm) localOf(global int) (int, bool) {
	if global < 0 || global >= len(c.local) {
		return -1, false
	}
	idx := c.local[global]
	return int(idx), idx >= 0
}

// stageOpen starts a new logical message bound for the member with the given
// local index. Messages must be closed (stageClose) before the next open.
// On a tagged exchanger the record carries two extra header slots (tag and a
// count slot pre-set to 1) so that a destination's only message doubles as a
// complete tagged frame without any assembly copy.
func (c *comm) stageOpen(localTo int) {
	if c.tagEx != nil {
		c.stage = append(c.stage, clique.Word(localTo), c.frameTag, 1, 0)
	} else {
		c.stage = append(c.stage, clique.Word(localTo), 0)
	}
	c.stageLenAt = len(c.stage) - 1
	c.stageDst = localTo
}

// stageWords appends payload words to the open message.
func (c *comm) stageWords(ws ...clique.Word) {
	c.stage = append(c.stage, ws...)
}

// stageClose finishes the open message, fixing its length slot and the
// destination's frame accounting.
func (c *comm) stageClose() {
	l := uint64(len(c.stage) - c.stageLenAt - 1)
	c.stage[c.stageLenAt] = clique.Word(l)
	d := c.stageDst
	if c.dstLoad[d] == 0 {
		c.dstTouched = append(c.dstTouched, int32(d))
		// Remember the record start: if this stays the destination's only
		// message this round, flushFrames sends it straight from the log.
		hdr := 1
		if c.tagEx != nil {
			hdr = 3
		}
		c.dstStart[d] = int32(c.stageLenAt - hdr)
	}
	c.dstLoad[d] += (l+1)<<32 | 1 // payload plus the length slot, one message
}

// send stages one logical message for the member with the given local index.
func (c *comm) send(localTo int, ws ...clique.Word) {
	c.stageOpen(localTo)
	c.stageWords(ws...)
	c.stageClose()
}

// sendHeld stages one held parcel for the member with the given local index.
func (c *comm) sendHeld(localTo int, h held) {
	c.stageOpen(localTo)
	c.stageWords(clique.Word(h.dstLocal), clique.Word(h.interSet), clique.Word(h.src))
	c.stageWords(h.payload...)
	c.stageClose()
}

// flushFrames assembles the staging log into one frame per busy destination
// and hands the frames to the engine, accounted at their logical message
// count and model word cost. Both buffers are reused round over round; the
// engine copies the frame contents at the barrier, so overwriting them at
// the next flush (which happens only after the next Exchange has returned)
// is within the engine's buffer contract.
func (c *comm) flushFrames() {
	if len(c.dstTouched) == 0 {
		return
	}
	// Destinations with a single message are served straight from the
	// staging log: the record layout [dst, len, words...] doubles as the
	// frame [count=1, len, words...] once the dst slot is overwritten (on a
	// tagged exchanger the record [dst, tag, 1, len, words...] already ends
	// in a complete frame), so no assembly copy happens. The relay schedules
	// of Corollaries 3.3/3.4 spread traffic to one message per edge, making
	// this the common case.
	tagged := c.tagEx != nil
	hdrExtra := 0 // extra frame slots before the count slot (the tag)
	if tagged {
		hdrExtra = 1
	}
	total := 0
	multi := false
	for _, d := range c.dstTouched {
		if uint32(c.dstLoad[d]) > 1 {
			multi = true
			c.dstStart[d] = int32(total)
			c.dstOff[d] = int32(total + 1 + hdrExtra) // write cursor, past tag and count slots
			total += 1 + hdrExtra + int(c.dstLoad[d]>>32)
		}
	}
	if multi {
		if cap(c.frameBuf) < total {
			c.frameBuf = make([]clique.Word, total, total+total/2)
		} else {
			c.frameBuf = c.frameBuf[:total]
		}
		for i := 0; i < len(c.stage); {
			d := int(c.stage[i])
			l := int(c.stage[i+1+2*hdrExtra]) // length slot follows the record header
			if uint32(c.dstLoad[d]) > 1 {
				cur := int(c.dstOff[d])
				copy(c.frameBuf[cur:cur+1+l], c.stage[i+1+2*hdrExtra:i+2+2*hdrExtra+l])
				c.dstOff[d] = int32(cur + 1 + l)
			}
			i += 2 + 2*hdrExtra + l
		}
	}
	for _, d := range c.dstTouched {
		load := c.dstLoad[d]
		count := int(uint32(load))
		size := 1 + int(load>>32) // untagged frame size: count slot plus records
		start := int(c.dstStart[d])
		if count == 1 {
			if tagged {
				// stage[start:] is [dst, tag, 1, len, words...]: everything
				// after the dst slot is the finished tagged frame.
				frame := c.stage[start+1 : start+2+size : start+2+size]
				c.tagEx.SendTagged(c.members[d], frame, 1, size-2)
			} else {
				frame := c.stage[start : start+size : start+size]
				frame[0] = 1
				c.ex.SendFramed(c.members[d], frame, 1, size-2)
			}
		} else {
			if tagged {
				c.frameBuf[start] = c.frameTag
				c.frameBuf[start+1] = clique.Word(count)
				c.tagEx.SendTagged(c.members[d], c.frameBuf[start:start+1+size:start+1+size], count, size-1-count)
			} else {
				c.frameBuf[start] = clique.Word(count)
				c.ex.SendFramed(c.members[d], c.frameBuf[start:start+size:start+size], count, size-1-count)
			}
		}
		c.dstLoad[d] = 0
	}
	c.dstTouched = c.dstTouched[:0]
	c.stage = c.stage[:0]
}

// exchange flushes the staged frames, runs one round barrier and decodes
// everything received into the comm's reusable receive buffer. Frames from
// non-members are ignored (well-formed instances never produce them). The
// returned buffer and every message in it are only valid until the next
// exchange on this comm; message words follow the engine's payload grace
// rules (clique.PayloadGraceRounds).
func (c *comm) exchange() (*rxBuf, error) {
	c.flushFrames()
	rx := &c.rx
	rx.msgs = rx.msgs[:0]
	if cap(rx.start) < c.size()+1 {
		rx.start = make([]int32, c.size()+1)
	} else {
		rx.start = rx.start[:c.size()+1]
	}

	if nd := c.flatEx; nd != nil {
		// Flat path: decode the raw [from, len, payload...] records the
		// deliverer wrote into the receive arena. Records arrive in
		// ascending sender order, so the per-sender index is built in the
		// same sweep. On a tagged exchanger the inbox is shared by every
		// instance on the node: records of other instances are skipped by
		// tag, and this instance's records carry the tag as their first
		// payload word.
		flat, err := nd.ExchangeFlat()
		if err != nil {
			return nil, fmt.Errorf("core: instance %q exchange: %w", c.label, err)
		}
		tagged := c.tagEx != nil
		cur := 0
		for i := 0; i < len(flat); {
			if i+2 > len(flat) {
				return nil, fmt.Errorf("core: instance %q: truncated flat record", c.label)
			}
			from := int(flat[i])
			l := int(flat[i+1])
			if l < 0 || i+2+l > len(flat) {
				return nil, fmt.Errorf("core: instance %q: malformed flat record", c.label)
			}
			frame := clique.Packet(flat[i+2 : i+2+l : i+2+l])
			i += 2 + l
			if tagged {
				if l < 1 || frame[0] != c.frameTag {
					continue // another instance's record
				}
				frame = frame[1:]
				l--
			}
			if from < 0 || from >= len(c.local) {
				return nil, fmt.Errorf("core: instance %q: flat record from invalid node %d", c.label, from)
			}
			li := int(c.local[from])
			if li < 0 {
				continue // sender is not a member of this instance
			}
			for cur <= li {
				rx.start[cur] = int32(len(rx.msgs))
				cur++
			}
			// The single-message frame layout [1, len, words...] is by far the
			// most common (relay schedules spread to one message per edge), so
			// decode it without the general frame walk.
			if l >= 2 && frame[0] == 1 && int(frame[1]) == l-2 {
				rx.msgs = append(rx.msgs, frame[2:l:l])
				continue
			}
			rx.msgs, err = appendFrameMessages(rx.msgs, frame)
			if err != nil {
				return nil, fmt.Errorf("core: instance %q: %w", c.label, err)
			}
		}
		for ; cur <= c.size(); cur++ {
			rx.start[cur] = int32(len(rx.msgs))
		}
		return rx, nil
	}

	inbox, err := c.ex.Exchange()
	if err != nil {
		return nil, fmt.Errorf("core: instance %q exchange: %w", c.label, err)
	}
	for li, g := range c.members {
		rx.start[li] = int32(len(rx.msgs))
		for _, p := range inbox.From(g) {
			rx.msgs, err = appendFrameMessages(rx.msgs, p)
			if err != nil {
				return nil, fmt.Errorf("core: instance %q: %w", c.label, err)
			}
		}
	}
	rx.start[c.size()] = int32(len(rx.msgs))
	return rx, nil
}

// shared runs a deterministic computation identically known to all members
// and memoises it under the step's key. group discriminates concurrent
// groups executing the same step (-1 for instance-wide computations).
func (c *comm) shared(key skey, group int32, f func() interface{}) interface{} {
	return c.ex.SharedComputeKeyed(clique.SharedKey{Label: c.label, Path: uint64(key), Group: group}, f)
}

// arenaAppend copies ws into the instance arena and returns the stable view.
func (c *comm) arenaAppend(ws ...clique.Word) []clique.Word {
	n0 := len(c.arena)
	c.arena = append(c.arena, ws...)
	return c.arena[n0:len(c.arena):len(c.arena)]
}

// arenaHeld encodes a held parcel into the instance arena and returns the
// stable view of its wire form.
func (c *comm) arenaHeld(h held) []clique.Word {
	n0 := len(c.arena)
	c.arena = append(c.arena, clique.Word(h.dstLocal), clique.Word(h.interSet), clique.Word(h.src))
	c.arena = append(c.arena, h.payload...)
	return c.arena[n0:len(c.arena):len(c.arena)]
}

// arenaMark returns the current arena position; arenaView returns the words
// appended since a mark as a stable view.
func (c *comm) arenaMark() int { return len(c.arena) }

func (c *comm) arenaView(mark int) []clique.Word {
	return c.arena[mark:len(c.arena):len(c.arena)]
}

// arenaReset truncates the arena, keeping its capacity. Callers must ensure
// no views into the arena are still live — the safe points are right after a
// pipeline hop has decoded its delivery (all previously encoded payloads
// have been staged, copied into frames and delivered by then).
func (c *comm) arenaReset() { c.arena = c.arena[:0] }

// heldSlot hands out the next rotating held scratch buffer, emptied. The
// caller appends through the returned pointer (so the grown capacity is kept
// for the next rotation). Contents of the slot handed out len(heldScratch)
// rotations ago are overwritten — the pipelines above never keep a held
// slice alive that long.
func (c *comm) heldSlot() *[]held {
	c.heldCursor = (c.heldCursor + 1) % len(c.heldScratch)
	s := &c.heldScratch[c.heldCursor]
	*s = (*s)[:0]
	return s
}

// itemSlot is heldSlot for item slices.
func (c *comm) itemSlot() *[]item {
	c.itemCursor = (c.itemCursor + 1) % len(c.itemScratch)
	s := &c.itemScratch[c.itemCursor]
	*s = (*s)[:0]
	return s
}

// groupPositions fills the comm's dense position table for the given group
// (local member indices) and returns it; the caller must releasePositions
// with the same group when done. Nested use is not allowed.
func (c *comm) groupPositions(group []int) []int32 {
	for i, g := range group {
		c.posScratch[g] = int32(i)
	}
	return c.posScratch
}

func (c *comm) releasePositions(group []int) {
	for _, g := range group {
		c.posScratch[g] = -1
	}
}

// cursors returns a zeroed scratch slice of k counters, reused across calls.
func (c *comm) cursors(k int) []int {
	if cap(c.cursorScratch) < k {
		c.cursorScratch = make([]int, k)
	}
	c.cursorScratch = c.cursorScratch[:k]
	clear(c.cursorScratch)
	return c.cursorScratch
}

// grouping splits the members of a comm into consecutive groups of equal size
// g: group i consists of local indices [i*g, (i+1)*g). The member count must
// be divisible by g.
type grouping struct {
	groupSize int
	numGroups int
}

func newGrouping(memberCount, groupSize int) (grouping, error) {
	if groupSize <= 0 || memberCount%groupSize != 0 {
		return grouping{}, fmt.Errorf("core: cannot split %d members into groups of %d", memberCount, groupSize)
	}
	return grouping{groupSize: groupSize, numGroups: memberCount / groupSize}, nil
}

// groupOf returns the group index of a local member index.
func (g grouping) groupOf(local int) int { return local / g.groupSize }

// indexInGroup returns the position of a local member index within its group.
func (g grouping) indexInGroup(local int) int { return local % g.groupSize }

// member returns the local index of the idx-th member of group grp.
func (g grouping) member(grp, idx int) int { return grp*g.groupSize + idx }

// isqrt returns the integer square root of n.
func isqrt(n int) int {
	if n < 0 {
		return 0
	}
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

// isPerfectSquare reports whether n is a perfect square.
func isPerfectSquare(n int) bool {
	s := isqrt(n)
	return s*s == n
}

// makeIntMatrix returns an r-by-c zero matrix whose rows share one backing
// array (two allocations instead of r+1; round loops build many small
// matrices).
func makeIntMatrix(r, c int) [][]int {
	rows := make([][]int, r)
	backing := make([]int, r*c)
	for i := range rows {
		rows[i] = backing[i*c : (i+1)*c : (i+1)*c]
	}
	return rows
}

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a, b int) int {
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}
