package core

import (
	"fmt"
	"math/rand"
	"testing"

	"congestedclique/internal/clique"
)

// buildKeys generates per keys for every node according to a named
// distribution, deterministically from the seed.
func buildKeys(n, per int, distribution string, seed int64) [][]Key {
	rng := rand.New(rand.NewSource(seed))
	keys := make([][]Key, n)
	for i := 0; i < n; i++ {
		for k := 0; k < per; k++ {
			var v int64
			switch distribution {
			case "uniform":
				v = rng.Int63n(1 << 40)
			case "duplicates":
				v = int64(rng.Intn(7))
			case "clustered":
				v = int64(i)*1000 + int64(rng.Intn(10))
			case "sorted":
				v = int64(i*per + k)
			case "reverse":
				v = int64((n-i)*per - k)
			case "constant":
				v = 42
			default:
				panic("unknown distribution " + distribution)
			}
			keys[i] = append(keys[i], Key{Value: v, Origin: i, Seq: k})
		}
	}
	return keys
}

// runSorting executes Sort on every node and validates the global result.
func runSorting(t *testing.T, keys [][]Key, opts ...clique.Option) clique.Metrics {
	t.Helper()
	n := len(keys)
	nw, err := clique.New(n, opts...)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*SortResult, n)
	err = nw.Run(func(nd *clique.Node) error {
		res, sErr := Sort(nd, keys[nd.ID()])
		if sErr != nil {
			return sErr
		}
		results[nd.ID()] = res
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	verifySorted(t, keys, results)
	return nw.Metrics()
}

// verifySorted checks that the concatenation of all batches is exactly the
// multiset of input keys in globally sorted order, split contiguously.
func verifySorted(t *testing.T, input [][]Key, results []*SortResult) {
	t.Helper()
	var want []Key
	for _, ks := range input {
		want = append(want, ks...)
	}
	sortKeys(want)

	var got []Key
	expectedStart := 0
	for i, res := range results {
		if res == nil {
			t.Fatalf("node %d has no result", i)
		}
		if res.Total != len(want) {
			t.Fatalf("node %d reports total %d, want %d", i, res.Total, len(want))
		}
		if len(res.Batch) > 0 && res.Start != expectedStart {
			t.Fatalf("node %d batch starts at rank %d, want %d", i, res.Start, expectedStart)
		}
		expectedStart += len(res.Batch)
		got = append(got, res.Batch...)
	}
	if len(got) != len(want) {
		t.Fatalf("output has %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	// Batch sizes must be balanced: every node holds ceil(total/n) keys except
	// possibly the trailing nodes.
	n := len(results)
	perNode := (len(want) + n - 1) / n
	if perNode == 0 {
		perNode = 1
	}
	for i, res := range results {
		if len(res.Batch) > perNode {
			t.Fatalf("node %d holds %d keys, more than the balanced %d", i, len(res.Batch), perNode)
		}
	}
}

func TestSortFullLoadPerfectSquares(t *testing.T) {
	t.Parallel()
	for _, n := range []int{16, 25, 36, 64} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			t.Parallel()
			m := runSorting(t, buildKeys(n, n, "uniform", int64(n)))
			if m.Rounds > 37 {
				t.Errorf("n=%d: %d rounds, Theorem 4.5 claims at most 37", n, m.Rounds)
			}
			if m.MaxEdgeWords > 48 {
				t.Errorf("n=%d: max edge words %d, expected a small constant", n, m.MaxEdgeWords)
			}
		})
	}
}

func TestSortFullLoadNonSquares(t *testing.T) {
	t.Parallel()
	for _, n := range []int{12, 20, 30, 45} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			t.Parallel()
			m := runSorting(t, buildKeys(n, n, "uniform", int64(n)*3))
			if m.Rounds > 37 {
				t.Errorf("n=%d: %d rounds, Theorem 4.5 claims at most 37", n, m.Rounds)
			}
		})
	}
}

func TestSortDistributions(t *testing.T) {
	t.Parallel()
	for _, dist := range []string{"uniform", "duplicates", "clustered", "sorted", "reverse", "constant"} {
		dist := dist
		t.Run(dist, func(t *testing.T) {
			t.Parallel()
			m := runSorting(t, buildKeys(25, 25, dist, 7))
			if m.Rounds > 37 {
				t.Errorf("%s: %d rounds", dist, m.Rounds)
			}
		})
	}
}

func TestSortTinyCliques(t *testing.T) {
	t.Parallel()
	for n := 1; n < 9; n++ {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			t.Parallel()
			m := runSorting(t, buildKeys(n, n, "uniform", int64(n)*11))
			if m.Rounds > 37 {
				t.Errorf("n=%d: %d rounds", n, m.Rounds)
			}
		})
	}
}

func TestSortPartialLoad(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct{ n, per int }{{16, 1}, {16, 5}, {25, 0}, {25, 10}, {30, 7}} {
		tc := tc
		t.Run(fmt.Sprintf("n=%d_per=%d", tc.n, tc.per), func(t *testing.T) {
			t.Parallel()
			m := runSorting(t, buildKeys(tc.n, tc.per, "uniform", int64(tc.n*100+tc.per)))
			if m.Rounds > 37 {
				t.Errorf("n=%d per=%d: %d rounds", tc.n, tc.per, m.Rounds)
			}
		})
	}
}

func TestSortUnevenLoad(t *testing.T) {
	t.Parallel()
	// Some nodes contribute no keys at all, others the full n.
	const n = 25
	keys := buildKeys(n, n, "uniform", 5)
	for i := 0; i < n; i += 2 {
		keys[i] = nil
	}
	m := runSorting(t, keys)
	if m.Rounds > 37 {
		t.Errorf("uneven load: %d rounds", m.Rounds)
	}
}

func TestSortRoundsExactOnSquares(t *testing.T) {
	t.Parallel()
	m := runSorting(t, buildKeys(36, 36, "uniform", 123))
	if m.Rounds != 37 {
		t.Errorf("full-load perfect-square sort used %d rounds, the Algorithm 4 schedule says 37", m.Rounds)
	}
}

func TestSortRejectsTooManyKeys(t *testing.T) {
	t.Parallel()
	nw, err := clique.New(4)
	if err != nil {
		t.Fatal(err)
	}
	err = nw.Run(func(nd *clique.Node) error {
		var ks []Key
		if nd.ID() == 0 {
			for k := 0; k < 10; k++ {
				ks = append(ks, Key{Value: int64(k), Origin: 0, Seq: k})
			}
		}
		_, sErr := Sort(nd, ks)
		if nd.ID() == 0 && sErr == nil {
			return fmt.Errorf("oversized input accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSortRejectsForeignOrigin(t *testing.T) {
	t.Parallel()
	nw, err := clique.New(4)
	if err != nil {
		t.Fatal(err)
	}
	err = nw.Run(func(nd *clique.Node) error {
		var ks []Key
		if nd.ID() == 0 {
			ks = []Key{{Value: 1, Origin: 3, Seq: 0}}
		}
		_, sErr := Sort(nd, ks)
		if nd.ID() == 0 && sErr == nil {
			return fmt.Errorf("foreign origin accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSortSharedCacheEquivalence(t *testing.T) {
	t.Parallel()
	keys := buildKeys(16, 16, "uniform", 77)
	mCached := runSorting(t, keys)
	mUncached := runSorting(t, keys, clique.WithSharedCache(false))
	if mCached.Rounds != mUncached.Rounds {
		t.Fatalf("rounds differ with cache: %d vs %d", mCached.Rounds, mUncached.Rounds)
	}
	if mCached.TotalMessages != mUncached.TotalMessages {
		t.Fatalf("traffic differs with cache: %d vs %d", mCached.TotalMessages, mUncached.TotalMessages)
	}
}
