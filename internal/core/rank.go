package core

import (
	"fmt"

	"congestedclique/internal/clique"
)

// RankResult is what a node learns from the rank-in-union variant of the
// sorting problem (Corollary 4.6): for each of its input keys, the index of
// the key's value in the sorted sequence of distinct values present in the
// system (duplicate values share an index).
type RankResult struct {
	// Ranks[seq] is the distinct-value rank (0-based) of the input key with
	// sequence number seq.
	Ranks map[int]int
	// DistinctTotal is the number of distinct key values in the system.
	DistinctTotal int
}

// Rank implements Corollary 4.6. After sorting, one broadcast round
// establishes how batches share values at their boundaries, every node
// computes the distinct-value ranks of the keys it holds, and a routing
// instance (Theorem 3.7) returns each rank to the node whose input the key
// came from. The total is a constant number of rounds (37 + 1 + 16).
func Rank(ex clique.Exchanger, myKeys []Key) (*RankResult, error) {
	res, err := Sort(ex, myKeys)
	if err != nil {
		return nil, err
	}
	c := fullComm(ex, fmt.Sprintf("rank@r%d", ex.Round()))
	defer c.release()
	n := c.size()

	// One broadcast round: batch length, first value, last value and distinct
	// count of this node's batch.
	distinct := 0
	var first, last int64
	if len(res.Batch) > 0 {
		first = res.Batch[0].Value
		last = res.Batch[len(res.Batch)-1].Value
		distinct = 1
		for i := 1; i < len(res.Batch); i++ {
			if res.Batch[i].Value != res.Batch[i-1].Value {
				distinct++
			}
		}
	}
	for to := 0; to < n; to++ {
		c.send(to, clique.Word(len(res.Batch)), first, last, clique.Word(distinct))
	}
	rx, err := c.exchange()
	if err != nil {
		return nil, fmt.Errorf("core: rank broadcast: %w", err)
	}
	type batchInfo struct {
		length   int
		first    int64
		last     int64
		distinct int
	}
	infos := make([]batchInfo, n)
	for from := 0; from < n; from++ {
		p := rx.single(from)
		if len(p) < 4 {
			return nil, fmt.Errorf("core: rank broadcast: missing info from node %d", from)
		}
		infos[from] = batchInfo{length: int(p[0]), first: p[1], last: p[2], distinct: int(p[3])}
	}

	// Compute the distinct-value rank of the first value of every batch.
	startRank := make([]int, n)
	running := 0
	haveLast := false
	var lastValue int64
	for j := 0; j < n; j++ {
		if infos[j].length == 0 {
			startRank[j] = running
			continue
		}
		if haveLast && infos[j].first == lastValue {
			startRank[j] = running - 1
			running += infos[j].distinct - 1
		} else {
			startRank[j] = running
			running += infos[j].distinct
		}
		lastValue = infos[j].last
		haveLast = true
	}
	distinctTotal := running

	// Rank the keys of my batch and route (origin, seq, rank) back to the
	// owners using the deterministic router.
	rc := fullComm(ex, fmt.Sprintf("rankroute@r%d", ex.Round()))
	defer rc.release()
	parcels := make([]parcel, 0, len(res.Batch))
	rank := startRank[c.me]
	for i, k := range res.Batch {
		if i > 0 && res.Batch[i].Value != res.Batch[i-1].Value {
			rank++
		}
		parcels = append(parcels, parcel{
			Src:   ex.ID(),
			Dst:   k.Origin,
			Words: rc.arenaAppend(clique.Word(k.Seq), clique.Word(rank)),
		})
	}
	received, err := routeParcels(rc, parcels, rootStep("cor4.6"))
	if err != nil {
		return nil, fmt.Errorf("core: rank routing: %w", err)
	}
	out := &RankResult{Ranks: make(map[int]int, len(received)), DistinctTotal: distinctTotal}
	for _, p := range received {
		if len(p.Words) < 2 {
			return nil, fmt.Errorf("core: rank routing: malformed parcel")
		}
		out.Ranks[int(p.Words[0])] = int(p.Words[1])
	}
	if len(out.Ranks) != len(myKeys) {
		return nil, fmt.Errorf("core: node %d received %d ranks for %d input keys", ex.ID(), len(out.Ranks), len(myKeys))
	}
	return out, nil
}

// Select returns the key of global rank k (0-based) in the sorted order of
// all keys, at every node, using the sorting algorithm plus one broadcast
// round (the selection corollary of Section 4).
func Select(ex clique.Exchanger, myKeys []Key, k int) (Key, error) {
	res, err := Sort(ex, myKeys)
	if err != nil {
		return Key{}, err
	}
	if k < 0 || k >= res.Total {
		return Key{}, fmt.Errorf("core: selection rank %d out of range [0,%d)", k, res.Total)
	}
	c := fullComm(ex, fmt.Sprintf("select@r%d", ex.Round()))
	defer c.release()
	if k >= res.Start && k < res.Start+len(res.Batch) {
		key := res.Batch[k-res.Start]
		for to := 0; to < c.size(); to++ {
			c.send(to, key.Value, clique.Word(key.Origin), clique.Word(key.Seq))
		}
	}
	rx, err := c.exchange()
	if err != nil {
		return Key{}, fmt.Errorf("core: select broadcast: %w", err)
	}
	for _, p := range rx.all() {
		return decodeKey(p)
	}
	return Key{}, fmt.Errorf("core: select: no node held rank %d", k)
}

// Median returns the lower median key (rank floor((total-1)/2)).
func Median(ex clique.Exchanger, myKeys []Key) (Key, error) {
	// The total is not known before sorting, so Median runs Sort through
	// Select with a sentinel rank resolved after sorting. To keep every node
	// on the same schedule the rank is derived from the sort result itself.
	res, err := Sort(ex, myKeys)
	if err != nil {
		return Key{}, err
	}
	if res.Total == 0 {
		return Key{}, fmt.Errorf("core: median of empty input")
	}
	k := (res.Total - 1) / 2
	c := fullComm(ex, fmt.Sprintf("median@r%d", ex.Round()))
	defer c.release()
	if k >= res.Start && k < res.Start+len(res.Batch) {
		key := res.Batch[k-res.Start]
		for to := 0; to < c.size(); to++ {
			c.send(to, key.Value, clique.Word(key.Origin), clique.Word(key.Seq))
		}
	}
	rx, err := c.exchange()
	if err != nil {
		return Key{}, fmt.Errorf("core: median broadcast: %w", err)
	}
	for _, p := range rx.all() {
		return decodeKey(p)
	}
	return Key{}, fmt.Errorf("core: median: no node held rank %d", k)
}

// ModeResult is the outcome of the mode computation: the most frequent key
// value and its multiplicity.
type ModeResult struct {
	Value int64
	Count int
}

// Mode determines the most frequent key value in the system (a further
// corollary of the sorting result mentioned in Section 4). After sorting,
// every value's occurrences are contiguous across the batches, so one
// broadcast of each node's boundary runs and best interior run suffices.
// Ties are broken towards the smaller value.
func Mode(ex clique.Exchanger, myKeys []Key) (*ModeResult, error) {
	res, err := Sort(ex, myKeys)
	if err != nil {
		return nil, err
	}
	c := fullComm(ex, fmt.Sprintf("mode@r%d", ex.Round()))
	defer c.release()
	n := c.size()

	// Summarise my batch: prefix run, suffix run, best interior run.
	type summary struct {
		length               int
		firstValue           int64
		prefixLen            int
		lastValue            int64
		suffixLen            int
		bestMidValue         int64
		bestMidCount         int
		hasMid               bool
		prefixCoversAllBatch bool
	}
	var s summary
	s.length = len(res.Batch)
	if s.length > 0 {
		s.firstValue = res.Batch[0].Value
		s.prefixLen = 1
		for i := 1; i < s.length && res.Batch[i].Value == s.firstValue; i++ {
			s.prefixLen++
		}
		s.lastValue = res.Batch[s.length-1].Value
		s.suffixLen = 1
		for i := s.length - 2; i >= 0 && res.Batch[i].Value == s.lastValue; i-- {
			s.suffixLen++
		}
		s.prefixCoversAllBatch = s.prefixLen == s.length
		// Best run strictly inside (not touching either boundary run).
		i := s.prefixLen
		for i < s.length-s.suffixLen {
			j := i
			for j < s.length-s.suffixLen && res.Batch[j].Value == res.Batch[i].Value {
				j++
			}
			if !s.hasMid || j-i > s.bestMidCount || (j-i == s.bestMidCount && res.Batch[i].Value < s.bestMidValue) {
				s.bestMidValue = res.Batch[i].Value
				s.bestMidCount = j - i
				s.hasMid = true
			}
			i = j
		}
	}
	covers := clique.Word(0)
	if s.prefixCoversAllBatch {
		covers = 1
	}
	hasMid := clique.Word(0)
	if s.hasMid {
		hasMid = 1
	}
	for to := 0; to < n; to++ {
		c.send(to,
			clique.Word(s.length), s.firstValue, clique.Word(s.prefixLen),
			s.lastValue, clique.Word(s.suffixLen), s.bestMidValue, clique.Word(s.bestMidCount),
			covers, hasMid,
		)
	}
	rx, err := c.exchange()
	if err != nil {
		return nil, fmt.Errorf("core: mode broadcast: %w", err)
	}

	best := &ModeResult{}
	consider := func(value int64, count int) {
		if count > best.Count || (count == best.Count && count > 0 && value < best.Value) {
			best.Value = value
			best.Count = count
		}
	}
	var runValue int64
	runLen := 0
	for from := 0; from < n; from++ {
		p := rx.single(from)
		if len(p) < 9 {
			return nil, fmt.Errorf("core: mode broadcast: missing summary from node %d", from)
		}
		length := int(p[0])
		if length == 0 {
			continue
		}
		firstValue, prefixLen := p[1], int(p[2])
		lastValue, suffixLen := p[3], int(p[4])
		midValue, midCount := p[5], int(p[6])
		coversAll := p[7] == 1
		if p[8] == 1 {
			consider(midValue, midCount)
		}

		if runLen > 0 && runValue == firstValue {
			runLen += prefixLen
		} else {
			consider(runValue, runLen)
			runValue, runLen = firstValue, prefixLen
		}
		if !coversAll {
			consider(runValue, runLen)
			runValue, runLen = lastValue, suffixLen
		}
	}
	consider(runValue, runLen)
	if best.Count == 0 {
		return nil, fmt.Errorf("core: mode of empty input")
	}
	return best, nil
}
