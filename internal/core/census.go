package core

import (
	"fmt"

	"congestedclique/internal/clique"
)

// This file implements the planner census as a real charged protocol: the
// O(1)-round aggregation that, in a genuine congested clique, every
// AlgorithmAuto operation would spend before dispatching on a plan. By
// default the simulator computes the plan centrally and charges nothing
// (the goldens stay bit-identical); with WithChargedCensus — or implicitly
// with WithPlanCache, whose hit-rate claims must be net of planning cost —
// the census runs on the wire, its words and rounds land in the operation's
// Stats, and every node verifies the distributed verdict against the plan it
// was handed.
//
// Route census (3 rounds):
//
//	R1  transpose      node i -> node j: i's message count for j (1 word,
//	                   busy pairs only). Afterwards every node knows its
//	                   receive total; its send total, per-pair row maximum
//	                   and order-sensitive row hash are local.
//	R2  aggregate      node i -> node 0: [sendTotal, recvTotal, rowPairMax,
//	                   rowHash] (4 words).
//	R3  decide+spread  node 0 -> all: [strategy, relayRounds, fingerprint]
//	                   (3 words). Node 0 recomputes the dispatch from the
//	                   aggregates via routeStrategyFromCensus — the same
//	                   decision procedure as PlanRoute — and folds the row
//	                   hashes in node order into the instance fingerprint
//	                   (the identical fold RouteFingerprint performs
//	                   host-side). Every node checks the broadcast strategy
//	                   against its plan and, when the plan carries a cache
//	                   fingerprint, the broadcast fingerprint against it.
//
// One quantity travels on faith rather than being re-derived: the broadcast
// path's relay-round count is a function of the full (relay, destination)
// distribution, not of any O(1) per-node aggregate, so node 0 echoes the
// plan's value into the decision instead of recomputing it. Everything else
// of the verdict is derived from the wire.
//
// Sort census (2 rounds): the sorting verdict depends on value distribution
// properties (distinct count, duplicity, partition boundaries) that have no
// O(1)-word per-node summary, so the charged sort census is a fingerprint
// agreement: nodes send (count, row hash) to node 0, which folds the cache
// fingerprint and broadcasts it with the strategy echoed from the plan;
// every node verifies both. The costs of a full distributed verdict would be
// the §6.3 machinery itself — the honesty note in planner_sort.go spells
// this out.

// Census round and word costs, referenced by tests and docs.
const (
	// RouteCensusRounds is the round cost the charged route census adds to
	// every AlgorithmAuto Route call.
	RouteCensusRounds = 3
	// SortCensusRounds is the round cost of the charged sort census.
	SortCensusRounds = 2
)

// routeStrategyFromCensus replays PlanRoute's dispatch decision from the
// census aggregates. PlanRoute and this function must agree on every
// instance — a test sweeps the workload catalog to pin that — so the
// distributed verdict is the plan's verdict whenever the plan matches the
// instance.
func routeStrategyFromCensus(n, total, maxPairMult, activeSources, relayRounds int) RouteStrategy {
	switch {
	case total == 0:
		return StrategyEmpty
	case total > FastPathMaxTotal(n):
		return StrategyPipeline
	case maxPairMult <= DirectMaxMultiplicity:
		return StrategyDirect
	case activeSources > BroadcastSourceCap(n):
		return StrategyPipeline
	case 1+relayRounds <= BroadcastMaxRounds:
		return StrategyBroadcast
	default:
		return StrategyPipeline
	}
}

// runRouteCensus executes one node's part of the charged route census and
// verifies the distributed verdict against the plan. Any disagreement —
// strategy, relay rounds, or cache fingerprint — is an error: the plan does
// not match the instance the nodes are actually holding.
func runRouteCensus(ex clique.Exchanger, msgs []Message, plan RoutePlan) error {
	n := ex.N()

	// R1: transpose the demand counts so every node learns its receive total.
	cnt := make([]int, n)
	rowPairMax := 0
	for _, m := range msgs {
		if m.Dst < 0 || m.Dst >= n {
			return fmt.Errorf("core: census: destination %d out of range", m.Dst)
		}
		cnt[m.Dst]++
		if cnt[m.Dst] > rowPairMax {
			rowPairMax = cnt[m.Dst]
		}
	}
	// One backing buffer for all R1 sends: the engine copies payloads at
	// delivery, and the capacity-n pre-allocation means the views handed to
	// Send stay valid (append never reallocates).
	sendBuf := make([]clique.Word, 0, n)
	for dst, v := range cnt {
		if v > 0 {
			sendBuf = append(sendBuf, clique.Word(v))
			ex.Send(dst, clique.Packet(sendBuf[len(sendBuf)-1:]))
		}
	}
	inbox, err := ex.Exchange()
	if err != nil {
		return fmt.Errorf("core: census: %w", err)
	}
	recvTotal := 0
	for _, packets := range inbox {
		for _, p := range packets {
			if len(p) < 1 {
				return fmt.Errorf("core: census: malformed count message")
			}
			recvTotal += int(p[0])
		}
	}

	// R2: every node reports its aggregates to node 0. The row hash is the
	// order-sensitive FNV fold over this node's destination sequence — the
	// same function the host-side fingerprint uses per row.
	ex.Send(0, clique.Packet{
		clique.Word(len(msgs)),
		clique.Word(recvTotal),
		clique.Word(rowPairMax),
		clique.Word(routeRowHash(msgs)),
	})
	inbox, err = ex.Exchange()
	if err != nil {
		return fmt.Errorf("core: census: %w", err)
	}

	// R3: node 0 folds the fingerprint, recomputes the dispatch and
	// broadcasts the verdict.
	if ex.ID() == 0 {
		total, maxPair, activeSources := 0, 0, 0
		h := uint64(fnvOffset64)
		for from := 0; from < n; from++ {
			if len(inbox[from]) != 1 || len(inbox[from][0]) != 4 {
				return fmt.Errorf("core: census: node 0 missing aggregate from node %d", from)
			}
			p := inbox[from][0]
			sendTotal := int(p[0])
			total += sendTotal
			if sendTotal > 0 {
				activeSources++
			}
			if int(p[2]) > maxPair {
				maxPair = int(p[2])
			}
			h = foldRows(h, sendTotal, uint64(p[3]))
		}
		strategy := routeStrategyFromCensus(n, total, maxPair, activeSources, plan.relayRoundsCensus)
		verdict := clique.Packet{clique.Word(strategy), clique.Word(plan.relayRoundsCensus), clique.Word(h)}
		for to := 0; to < n; to++ {
			ex.Send(to, verdict)
		}
	}
	inbox, err = ex.Exchange()
	if err != nil {
		return fmt.Errorf("core: census: %w", err)
	}
	if len(inbox[0]) != 1 || len(inbox[0][0]) != 3 {
		return fmt.Errorf("core: census: node %d missing verdict broadcast", ex.ID())
	}
	verdict := inbox[0][0]
	if RouteStrategy(verdict[0]) != plan.Strategy {
		return fmt.Errorf("core: census: distributed verdict %v disagrees with plan %v at node %d",
			RouteStrategy(verdict[0]), plan.Strategy, ex.ID())
	}
	if int(verdict[1]) != plan.relayRoundsCensus {
		return fmt.Errorf("core: census: relay rounds %d disagree with plan %d", int(verdict[1]), plan.relayRoundsCensus)
	}
	if plan.CensusHasFP && uint64(verdict[2]) != plan.CensusFP {
		return fmt.Errorf("core: census: instance fingerprint %x disagrees with plan fingerprint %x at node %d",
			uint64(verdict[2]), plan.CensusFP, ex.ID())
	}
	return nil
}

// runSortCensus executes one node's part of the charged sort census: a
// two-round fingerprint agreement plus verdict broadcast (see the file
// comment for why the sort verdict itself is echoed, not re-derived).
func runSortCensus(ex clique.Exchanger, myKeys []Key, plan SortPlan) error {
	n := ex.N()

	// R1: every node reports (count, row hash) to node 0.
	ex.Send(0, clique.Packet{clique.Word(len(myKeys)), clique.Word(sortRowHash(myKeys))})
	inbox, err := ex.Exchange()
	if err != nil {
		return fmt.Errorf("core: sort census: %w", err)
	}

	// R2: node 0 folds and broadcasts [strategy, fingerprint].
	if ex.ID() == 0 {
		h := uint64(fnvOffset64)
		for from := 0; from < n; from++ {
			if len(inbox[from]) != 1 || len(inbox[from][0]) != 2 {
				return fmt.Errorf("core: sort census: node 0 missing aggregate from node %d", from)
			}
			p := inbox[from][0]
			h = foldRows(h, int(p[0]), uint64(p[1]))
		}
		verdict := clique.Packet{clique.Word(plan.Strategy), clique.Word(h)}
		for to := 0; to < n; to++ {
			ex.Send(to, verdict)
		}
	}
	inbox, err = ex.Exchange()
	if err != nil {
		return fmt.Errorf("core: sort census: %w", err)
	}
	if len(inbox[0]) != 1 || len(inbox[0][0]) != 2 {
		return fmt.Errorf("core: sort census: node %d missing verdict broadcast", ex.ID())
	}
	verdict := inbox[0][0]
	if SortStrategy(verdict[0]) != plan.Strategy {
		return fmt.Errorf("core: sort census: broadcast verdict %v disagrees with plan %v at node %d",
			SortStrategy(verdict[0]), plan.Strategy, ex.ID())
	}
	if plan.CensusHasFP && uint64(verdict[1]) != plan.CensusFP {
		return fmt.Errorf("core: sort census: instance fingerprint %x disagrees with plan fingerprint %x at node %d",
			uint64(verdict[1]), plan.CensusFP, ex.ID())
	}
	return nil
}
