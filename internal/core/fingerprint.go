package core

import (
	"container/list"
	"sync"
	"sync/atomic"

	"congestedclique/internal/clique"
)

// This file implements the cross-run plan cache and the demand fingerprints
// that key it. Real service traffic is temporally correlated: the same or
// near-same demand shapes recur on one session handle, yet every call replans
// and recolors from scratch (the engine's shared-computation cache is
// deliberately per-run — see clique.Network resetRun — because cached
// colorings depend on the instance data, not only on n). The plan cache makes
// reuse safe across runs by pairing a fast fingerprint with an exact
// validate-on-hit rule:
//
//   - The fingerprint is an order-sensitive FNV-1a fold of the per-source
//     destination sequence (for sorting, of the per-node value sequence).
//     Order sensitivity is load-bearing, not an implementation convenience:
//     the pipeline's balancing schedule assigns intermediate sets by each
//     parcel's submission-order unit index, so two instances with identical
//     (src, dst) multiplicity matrices but different within-row orders
//     execute different schedules. The fold is exactly the value the charged
//     census protocol (census.go) computes on the wire: node i contributes
//     (row length, row hash) and node 0 folds the pairs in node order.
//   - Validate-on-hit compares the instance's canonical representation (the
//     exact ordered destination respectively value sequence) word for word
//     against the cached entry's before anything cached is reused. A hash
//     collision or a drifted instance therefore can never produce a wrong
//     schedule: it is detected host-side, counted as an invalidation, and
//     the stale entry is evicted.
//
// The cache lives on the session handle (one instance shared by every engine
// of the pool), guarded by a mutex; entries are bounded by capacity with LRU
// eviction. What an entry stores — the planner verdict, the routeSquare
// announcement schedule (RouteSchedule) and the engine's shared-computation
// snapshot (colorings) — is immutable after Store, so concurrent hits share
// it without copying.

// FNV-1a parameters, folded over 64-bit words rather than bytes. The census
// protocol exchanges whole words, so hashing word-wise keeps the distributed
// and host-side computations trivially identical.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvFold(h, v uint64) uint64 { return (h ^ v) * fnvPrime64 }

// routeRowHash hashes one source's destination sequence in submission order.
// Every node can compute its own row hash locally, which is what the census
// protocol sends to node 0.
func routeRowHash(row []Message) uint64 {
	h := uint64(fnvOffset64)
	for _, m := range row {
		h = fnvFold(h, uint64(m.Dst))
	}
	return h
}

// sortRowHash hashes one node's value sequence in submission order.
func sortRowHash(row []Key) uint64 {
	h := uint64(fnvOffset64)
	for _, k := range row {
		h = fnvFold(h, uint64(k.Value))
	}
	return h
}

// foldRows combines per-row (length, hash) pairs in node order — the shared
// definition of the instance fingerprint used host-side (RouteFingerprint,
// SortFingerprint) and on the wire (node 0's fold in the census protocols).
func foldRows(h uint64, rowLen int, rowHash uint64) uint64 {
	return fnvFold(fnvFold(h, uint64(rowLen)), rowHash)
}

// fingerprintKind separates the route and sort key spaces of one cache.
type fingerprintKind uint8

const (
	fingerprintRoute fingerprintKind = 1
	fingerprintSort  fingerprintKind = 2
)

// Fingerprint identifies a demand shape for cache lookup: the operation kind,
// the clique size and the order-sensitive content hash. Equal fingerprints
// are a necessary but not sufficient condition for schedule reuse — the
// cache's validate-on-hit compares the full canonical sequence.
type Fingerprint struct {
	kind fingerprintKind
	n    int
	Hash uint64
}

// RouteFingerprint computes the routing-demand fingerprint of an instance:
// per-source row hashes over the ordered destination sequences, folded in
// node order. rows beyond len(msgs) are empty.
func RouteFingerprint(n int, msgs [][]Message) Fingerprint {
	h := uint64(fnvOffset64)
	for i := 0; i < n; i++ {
		var row []Message
		if i < len(msgs) {
			row = msgs[i]
		}
		h = foldRows(h, len(row), routeRowHash(row))
	}
	return Fingerprint{kind: fingerprintRoute, n: n, Hash: h}
}

// SortFingerprint computes the sorting-demand fingerprint of an instance.
// The second result reports cacheability: only canonically labelled keys
// (Origin = row, Seq = position — exactly what Sort and stageValues produce)
// are cached, because the pipeline's output depends on the labels and the
// canonical representation stores values only. Non-canonical instances
// (SortKeys callers carrying their own bookkeeping) bypass the cache.
func SortFingerprint(n int, keys [][]Key) (Fingerprint, bool) {
	h := uint64(fnvOffset64)
	for i := 0; i < n; i++ {
		var row []Key
		if i < len(keys) {
			row = keys[i]
		}
		for j, k := range row {
			if k.Origin != i || k.Seq != j {
				return Fingerprint{}, false
			}
		}
		h = foldRows(h, len(row), sortRowHash(row))
	}
	return Fingerprint{kind: fingerprintSort, n: n, Hash: h}, true
}

// planCacheEntry is one cached demand shape. The canonical representation
// (lens plus the flat dsts or vals sequence) is the validate-on-hit witness;
// everything else is the reusable schedule state. All fields are immutable
// after insertion.
type planCacheEntry struct {
	fp   Fingerprint
	lens []int32
	dsts []int32 // route: flat per-source destination sequence
	vals []int64 // sort: flat per-node value sequence

	routePlan RoutePlan
	sortPlan  SortPlan
	sched     *RouteSchedule
	shared    clique.SharedSnapshot
}

// RouteHit is the usable content of a validated route cache hit: the cached
// planner verdict, the announcement schedule (nil for non-pipeline
// strategies) and the engine shared-computation snapshot to seed the run
// with. The fields are shared and immutable; callers must not mutate them.
type RouteHit struct {
	Plan   RoutePlan
	Sched  *RouteSchedule
	Shared clique.SharedSnapshot
}

// SortHit is RouteHit for the sorting planner.
type SortHit struct {
	Plan   SortPlan
	Shared clique.SharedSnapshot
}

// PlanCache is the cross-run plan and schedule cache of one session handle:
// a bounded, LRU-evicted map from demand fingerprints to validated schedule
// state, shared by every engine of the handle's pool. All methods are safe
// for concurrent use.
type PlanCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[Fingerprint]*list.Element // values are *planCacheEntry inside lru
	lru      *list.List                    // front = most recently used

	hits          atomic.Int64
	misses        atomic.Int64
	invalidations atomic.Int64
}

// NewPlanCache builds a cache bounded to capacity entries (route and sort
// entries share the budget).
func NewPlanCache(capacity int) *PlanCache {
	if capacity < 1 {
		capacity = 1
	}
	return &PlanCache{
		capacity: capacity,
		entries:  make(map[Fingerprint]*list.Element, capacity),
		lru:      list.New(),
	}
}

// Counters returns the lifetime hit, miss and invalidation counts. An
// invalidation (fingerprint matched but the canonical sequence did not —
// a collision or a drifted instance) is also counted as a miss, so
// hits+misses equals the number of cacheable lookups.
func (pc *PlanCache) Counters() (hits, misses, invalidations int64) {
	return pc.hits.Load(), pc.misses.Load(), pc.invalidations.Load()
}

// LookupRoute fingerprints the staged instance and returns a validated hit,
// or nil on a miss. The returned fingerprint is reused by StoreRoute after a
// miss run completes.
func (pc *PlanCache) LookupRoute(n int, msgs [][]Message) (Fingerprint, *RouteHit) {
	fp := RouteFingerprint(n, msgs)
	e := pc.validatedEntry(fp, func(e *planCacheEntry) bool { return routeRepEqual(e, n, msgs) })
	if e == nil {
		return fp, nil
	}
	return fp, &RouteHit{Plan: e.routePlan, Sched: e.sched, Shared: e.shared}
}

// LookupSort is LookupRoute for sorting instances. cacheable is false when
// the keys are not canonically labelled; such lookups touch no counters and
// must not be stored.
func (pc *PlanCache) LookupSort(n int, keys [][]Key) (fp Fingerprint, hit *SortHit, cacheable bool) {
	fp, ok := SortFingerprint(n, keys)
	if !ok {
		return Fingerprint{}, nil, false
	}
	e := pc.validatedEntry(fp, func(e *planCacheEntry) bool { return sortRepEqual(e, n, keys) })
	if e == nil {
		return fp, nil, true
	}
	return fp, &SortHit{Plan: e.sortPlan, Shared: e.shared}, true
}

// validatedEntry resolves fp to its entry if and only if the canonical
// representation matches (validate-on-hit). A fingerprint match with a
// mismatched representation evicts the stale entry and counts as an
// invalidation plus a miss.
func (pc *PlanCache) validatedEntry(fp Fingerprint, same func(*planCacheEntry) bool) *planCacheEntry {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	el, ok := pc.entries[fp]
	if !ok {
		pc.misses.Add(1)
		return nil
	}
	e := el.Value.(*planCacheEntry)
	if !same(e) {
		delete(pc.entries, fp)
		pc.lru.Remove(el)
		pc.invalidations.Add(1)
		pc.misses.Add(1)
		return nil
	}
	pc.lru.MoveToFront(el)
	pc.hits.Add(1)
	return e
}

// StoreRoute inserts (or replaces) the entry for a completed miss run:
// the instance's canonical representation, the sanitized planner verdict,
// the captured announcement schedule (nil unless the pipeline ran and the
// capture completed) and the engine's shared-computation snapshot.
func (pc *PlanCache) StoreRoute(fp Fingerprint, n int, msgs [][]Message, plan RoutePlan, sched *RouteSchedule, shared clique.SharedSnapshot) {
	if sched != nil && !sched.complete() {
		sched = nil
	}
	e := &planCacheEntry{fp: fp, routePlan: sanitizeRoutePlan(plan), sched: sched, shared: shared}
	e.lens = make([]int32, n)
	total := 0
	for i := 0; i < n && i < len(msgs); i++ {
		e.lens[i] = int32(len(msgs[i]))
		total += len(msgs[i])
	}
	e.dsts = make([]int32, 0, total)
	for i := 0; i < n && i < len(msgs); i++ {
		for _, m := range msgs[i] {
			e.dsts = append(e.dsts, int32(m.Dst))
		}
	}
	pc.insert(fp, e)
}

// StoreSort is StoreRoute for sorting instances. The caller must only store
// lookups LookupSort reported cacheable.
func (pc *PlanCache) StoreSort(fp Fingerprint, n int, keys [][]Key, plan SortPlan, shared clique.SharedSnapshot) {
	e := &planCacheEntry{fp: fp, sortPlan: sanitizeSortPlan(plan), shared: shared}
	e.lens = make([]int32, n)
	total := 0
	for i := 0; i < n && i < len(keys); i++ {
		e.lens[i] = int32(len(keys[i]))
		total += len(keys[i])
	}
	e.vals = make([]int64, 0, total)
	for i := 0; i < n && i < len(keys); i++ {
		for _, k := range keys[i] {
			e.vals = append(e.vals, k.Value)
		}
	}
	pc.insert(fp, e)
}

func (pc *PlanCache) insert(fp Fingerprint, e *planCacheEntry) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.entries[fp]; ok {
		// Two concurrent misses on the same shape: the later store wins,
		// both are correct (same instance, same deterministic schedule).
		el.Value = e
		pc.lru.MoveToFront(el)
		return
	}
	pc.entries[fp] = pc.lru.PushFront(e)
	for pc.lru.Len() > pc.capacity {
		oldest := pc.lru.Back()
		delete(pc.entries, oldest.Value.(*planCacheEntry).fp)
		pc.lru.Remove(oldest)
	}
}

// Len returns the current entry count (for tests).
func (pc *PlanCache) Len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.lru.Len()
}

// routeRepEqual compares the cached canonical representation against the
// staged instance, exactly: same per-source row lengths, same ordered
// destination sequence.
func routeRepEqual(e *planCacheEntry, n int, msgs [][]Message) bool {
	if len(e.lens) != n {
		return false
	}
	k := 0
	for i := 0; i < n; i++ {
		var row []Message
		if i < len(msgs) {
			row = msgs[i]
		}
		if int(e.lens[i]) != len(row) {
			return false
		}
		for _, m := range row {
			if e.dsts[k] != int32(m.Dst) {
				return false
			}
			k++
		}
	}
	return k == len(e.dsts)
}

// sortRepEqual is routeRepEqual for value sequences.
func sortRepEqual(e *planCacheEntry, n int, keys [][]Key) bool {
	if len(e.lens) != n {
		return false
	}
	k := 0
	for i := 0; i < n; i++ {
		var row []Key
		if i < len(keys) {
			row = keys[i]
		}
		if int(e.lens[i]) != len(row) {
			return false
		}
		for _, key := range row {
			if e.vals[k] != key.Value {
				return false
			}
			k++
		}
	}
	return k == len(e.vals)
}

// sanitizeRoutePlan strips the per-run execution fields before a plan is
// stored: census arming and schedule pointers belong to one operation, not
// to the cached verdict.
func sanitizeRoutePlan(p RoutePlan) RoutePlan {
	p.Census = false
	p.CensusHasFP = false
	p.CensusFP = 0
	p.Sched = nil
	p.Capture = nil
	return p
}

// sanitizeSortPlan is sanitizeRoutePlan for sorting verdicts. The plan's
// Domain and StartRanks tables are shared with the cache entry — AutoSort
// only reads them.
func sanitizeSortPlan(p SortPlan) SortPlan {
	p.Census = false
	p.CensusHasFP = false
	p.CensusFP = 0
	return p
}
