package core

import (
	"fmt"
	"slices"
	"sort"

	"congestedclique/internal/clique"
)

// SortResult is what each node learns from the sorting algorithm: its batch
// of the globally sorted key sequence and the global rank of the batch's
// first key. Node i receives the i-th batch (Problem 4.1).
type SortResult struct {
	// Batch holds this node's portion of the globally sorted sequence, in
	// ascending order.
	Batch []Key
	// Start is the global rank (0-based) of Batch[0]; consecutive nodes hold
	// consecutive rank ranges.
	Start int
	// Total is the total number of keys in the system.
	Total int
}

// keysPerBundle is the number of keys packed into one routed parcel, the
// paper's "bundling a constant number of keys in each message".
const keysPerBundle = 2

// Sort is the per-node entry point of the deterministic sorting algorithm
// (Algorithm 4 / Theorem 4.5). Every node calls Sort with at most n keys; the
// result gives each node its batch of the global order. The schedule uses 37
// communication rounds:
//
//	Step 2   1 round    send selected keys to the first group
//	Step 3   8 rounds   Algorithm 3 on the selected keys (group 0)
//	Step 4   2 rounds   announce the global delimiters
//	Step 6  16 rounds   route every key to its bucket's group (Theorem 3.7),
//	                    with the bucket-size aggregation multiplexed on top
//	Step 7   8 rounds   Algorithm 3 inside every group concurrently
//	Step 8   2 rounds   redistribute by global rank
func Sort(ex clique.Exchanger, myKeys []Key) (*SortResult, error) {
	label := fmt.Sprintf("sort@r%d", ex.Round())
	c := fullComm(ex, label)
	defer c.release()
	n := c.size()
	if len(myKeys) > n {
		return nil, fmt.Errorf("core: node %d submitted %d keys, Problem 4.1 allows at most n=%d", ex.ID(), len(myKeys), n)
	}
	for _, k := range myKeys {
		if k.Origin != ex.ID() {
			return nil, fmt.Errorf("core: node %d submitted a key with origin %d", ex.ID(), k.Origin)
		}
	}
	if n == 1 {
		batch := append([]Key(nil), myKeys...)
		sortKeys(batch)
		return &SortResult{Batch: batch, Start: 0, Total: len(batch)}, nil
	}
	if n < routeTrivialThreshold {
		// Tiny cliques: a single application of Algorithm 3 over the whole
		// clique already sorts (the two-level structure of Algorithm 4 only
		// matters asymptotically).
		return sortTiny(c, myKeys)
	}
	return sortLarge(c, myKeys, label)
}

// sortTiny sorts a small clique with one invocation of Algorithm 3 over the
// whole member set, followed by the rank-balanced redistribution.
func sortTiny(c *comm, myKeys []Key) (*SortResult, error) {
	group := make([]int, c.size())
	for i := range group {
		group[i] = i
	}
	res, err := groupSort(c, group, myKeys, c.size(), rootStep("alg3.tiny").sub("tiny", kcSortTiny))
	if err != nil {
		return nil, err
	}
	myOffset := 0
	total := 0
	for i, sz := range res.bucketSizes {
		if i < c.me {
			myOffset += sz
		}
		total += sz
	}
	return dealByRank(c, res.myBucket, myOffset, total, "tiny.rank")
}

// sortLarge is Algorithm 4 proper.
func sortLarge(c *comm, myKeys []Key, label string) (*SortResult, error) {
	st := rootStep("alg4")
	n := c.size()
	s := isqrt(n) // group size (floor of sqrt(n))
	numGroups := ceilDiv(n, s)
	myGroup := c.me / s
	lo := myGroup * s
	myGroupMembers := make([]int, min(lo+s, n)-lo)
	for i := range myGroupMembers {
		myGroupMembers[i] = lo + i
	}

	// Step 1 (local): sort the input and select every sigma1-th key.
	input := append([]Key(nil), myKeys...)
	sortKeys(input)
	sigma1 := ceilDiv(n, s)
	selected := make([]Key, 0, len(input)/sigma1+1)
	for i := sigma1 - 1; i < len(input); i += sigma1 {
		selected = append(selected, input[i])
	}

	// Step 2 (1 round): the i-th selected key goes to node i (all of which
	// belong to the first group because at most s keys are selected).
	for i, k := range selected {
		c.send(i, k.Value, clique.Word(k.Origin), clique.Word(k.Seq))
	}
	rx, err := c.exchange()
	if err != nil {
		return nil, fmt.Errorf("alg4 step2: %w", err)
	}
	var samples []Key
	for _, p := range rx.all() {
		k, decErr := decodeKey(p)
		if decErr != nil {
			return nil, fmt.Errorf("alg4 step2: %w", decErr)
		}
		samples = append(samples, k)
	}

	// Step 3 (8 rounds): Algorithm 3 sorts the samples within group 0; all
	// other nodes participate as relays.
	var sampleGroup []int
	if myGroup == 0 {
		sampleGroup = myGroupMembers
	}
	sampleSort, err := groupSort(c, sampleGroup, samples, n, st.sub("s3", kcSortS3))
	if err != nil {
		return nil, fmt.Errorf("alg4 step3: %w", err)
	}

	// Step 4 (2 rounds): pick numGroups-1 delimiters (the g-quantiles of the
	// sorted samples) and make them globally known.
	heldDelims := make([]clique.Packet, numGroups-1)
	if myGroup == 0 {
		totalSamples := 0
		myOffset := 0
		for i, sz := range sampleSort.bucketSizes {
			if i < indexIn(sampleGroup, c.me) {
				myOffset += sz
			}
			totalSamples += sz
		}
		for k := 1; k < numGroups; k++ {
			rank := ceilDiv(k*totalSamples, numGroups) - 1 // 0-based rank of the k-th delimiter
			if rank < 0 {
				continue
			}
			if rank >= myOffset && rank < myOffset+len(sampleSort.myBucket) {
				heldDelims[k-1] = clique.Packet(encodeKey(sampleSort.myBucket[rank-myOffset]))
			}
		}
	}
	delimPackets, err := spreadBroadcast(c, heldDelims, numGroups-1)
	if err != nil {
		return nil, fmt.Errorf("alg4 step4: %w", err)
	}
	delims := make([]Key, 0, numGroups-1)
	for k := 0; k < numGroups-1; k++ {
		p := delimPackets[k]
		if p == nil {
			// Fewer samples than groups: missing delimiters collapse to the
			// previous one, which simply leaves some buckets empty.
			if len(delims) > 0 {
				delims = append(delims, delims[len(delims)-1])
				continue
			}
			delims = append(delims, Key{Value: -1 << 62})
			continue
		}
		k, decErr := decodeKey(p)
		if decErr != nil {
			return nil, fmt.Errorf("alg4 step4: %w", decErr)
		}
		delims = append(delims, k)
	}

	// Step 5 (local): split my input into buckets by the delimiters. Bucket j
	// receives the keys in (delims[j-1], delims[j]]; the last bucket is
	// unbounded above. The input is sorted and the delimiters are
	// non-decreasing (quantiles of a sorted sample, with missing slots
	// collapsing onto their predecessor), so bucket j is the contiguous range
	// input[bstart[j]:bstart[j+1]] found by binary search.
	bstart := make([]int, numGroups+1)
	for j := 1; j < numGroups; j++ {
		d := delims[j-1]
		bstart[j] = sort.Search(len(input), func(i int) bool { return d.Less(input[i]) })
	}
	bstart[numGroups] = len(input)

	// Step 6 (16 rounds): route every key to its bucket's group, spreading
	// each bucket evenly over the group members; concurrently aggregate the
	// global bucket sizes (2 rounds) on the multiplexer.
	var routedKeys []Key
	bucketSizes := make([]int64, numGroups)
	mux := clique.NewMux(c.ex)
	err = mux.Run(map[int]func(clique.Exchanger) error{
		1: func(ex clique.Exchanger) error {
			sub := fullCommOn(ex, c, label+"/s6")
			// routedKeys are value copies, so the sub-instance's buffers can
			// go back to the pool as soon as the program ends.
			defer sub.release()
			parcels := buildBucketParcels(sub, input, bstart, s, numGroups)
			received, rErr := routeParcels(sub, parcels, st.sub("s6.route", kcSortS6))
			if rErr != nil {
				return rErr
			}
			routedKeys, rErr = unbundleKeys(received)
			return rErr
		},
		2: func(ex clique.Exchanger) error {
			sub := fullCommOn(ex, c, label+"/s6agg")
			defer sub.release()
			contributions := make([]int64, numGroups)
			for j := 0; j < numGroups; j++ {
				contributions[j] = int64(bstart[j+1] - bstart[j])
			}
			sums, aErr := aggregateAndBroadcast(sub, 0, contributions, numGroups)
			if aErr != nil {
				return aErr
			}
			copy(bucketSizes, sums)
			return nil
		},
	})
	if err != nil {
		return nil, fmt.Errorf("alg4 step6: %w", err)
	}

	// Step 7 (8 rounds): Algorithm 3 inside every group concurrently sorts
	// the keys of that group's bucket.
	bucketSort, err := groupSort(c, myGroupMembers, routedKeys, 4*n, st.sub("s7", kcSortS7))
	if err != nil {
		return nil, fmt.Errorf("alg4 step7: %w", err)
	}

	// Step 8 (2 rounds): every node knows the global rank of each key it
	// holds (bucket offset + within-group offset + local position), so the
	// keys can be dealt to relays and forwarded to their final nodes.
	total := 0
	myStartRank := 0
	for j := 0; j < numGroups; j++ {
		if j < myGroup {
			myStartRank += int(bucketSizes[j])
		}
		total += int(bucketSizes[j])
	}
	for i, sz := range bucketSort.bucketSizes {
		if i < indexIn(myGroupMembers, c.me) {
			myStartRank += sz
		}
	}
	return dealByRank(c, bucketSort.myBucket, myStartRank, total, "alg4.s8")
}

// indexIn returns the position of x in the sorted slice members, or -1.
func indexIn(members []int, x int) int {
	for i, m := range members {
		if m == x {
			return i
		}
	}
	return -1
}

// buildBucketParcels bundles the keys of every bucket into parcels addressed
// to the members of the bucket's group, spreading each bucket evenly over the
// group and rotating the start member by the sender's identifier so the
// rounding excess does not pile up on the same member. Bucket j is the
// contiguous input range [bstart[j], bstart[j+1]) and its group occupies the
// nodes [j*s, min((j+1)*s, n)): key t of the bucket goes to member slot
// (t+me) mod w, so a slot's keys are the stride-w subsequence starting at
// (slot-me) mod w — no per-member staging is needed. The parcel payloads live
// in the comm's arena.
func buildBucketParcels(c *comm, input []Key, bstart []int, s, numGroups int) []parcel {
	n := c.size()
	me := c.me

	// Count the parcels so the slice is allocated exactly once.
	total := 0
	for j := 0; j < numGroups; j++ {
		cnt := bstart[j+1] - bstart[j]
		if cnt == 0 {
			continue
		}
		lo := j * s
		w := min(lo+s, n) - lo
		for slot := 0; slot < w; slot++ {
			t0 := ((slot-me)%w + w) % w
			if t0 < cnt {
				total += ceilDiv(ceilDiv(cnt-t0, w), keysPerBundle)
			}
		}
	}

	parcels := make([]parcel, 0, total)
	src := c.ex.ID()
	for j := 0; j < numGroups; j++ {
		b0 := bstart[j]
		cnt := bstart[j+1] - b0
		if cnt == 0 {
			continue
		}
		lo := j * s
		w := min(lo+s, n) - lo
		for slot := 0; slot < w; slot++ {
			t0 := ((slot-me)%w + w) % w
			for t := t0; t < cnt; t += w * keysPerBundle {
				bundled := ceilDiv(cnt-t, w)
				if bundled > keysPerBundle {
					bundled = keysPerBundle
				}
				mark := c.arenaMark()
				c.arena = append(c.arena, clique.Word(bundled))
				for u := 0; u < bundled; u++ {
					k := input[b0+t+u*w]
					c.arena = append(c.arena, k.Value, clique.Word(k.Origin), clique.Word(k.Seq))
				}
				parcels = append(parcels, parcel{Src: src, Dst: lo + slot, Words: c.arenaView(mark)})
			}
		}
	}
	return parcels
}

// unbundleKeys decodes the key bundles produced by buildBucketParcels. It
// validates and counts in a first sweep so the key slice is allocated exactly
// once.
func unbundleKeys(parcels []parcel) ([]Key, error) {
	total := 0
	for _, p := range parcels {
		if len(p.Words) < 1 {
			return nil, fmt.Errorf("core: empty key bundle")
		}
		count := int(p.Words[0])
		if count < 0 || len(p.Words) < 1+count*keyWords {
			return nil, fmt.Errorf("core: malformed key bundle (%d keys, %d words)", count, len(p.Words))
		}
		total += count
	}
	keys := make([]Key, 0, total)
	for _, p := range parcels {
		count := int(p.Words[0])
		for i := 0; i < count; i++ {
			k, err := decodeKey(p.Words[1+i*keyWords:])
			if err != nil {
				return nil, err
			}
			keys = append(keys, k)
		}
	}
	return keys, nil
}

// rankedKey pairs a key with its global rank during the final redistribution.
type rankedKey struct {
	rank int
	key  Key
}

// dealByRank implements the final redistribution (Algorithm 3/4, Step 8):
// this node holds a contiguous run of the globally sorted sequence starting
// at global rank start; afterwards node i holds ranks [i*perNode,
// (i+1)*perNode). Because every holder knows its keys' global ranks, two
// rounds suffice: keys are dealt round-robin over all nodes (with their rank
// attached) and every relay forwards each key to its final node.
func dealByRank(c *comm, run []Key, start, total int, context string) (*SortResult, error) {
	n := c.size()
	perNode := ceilDiv(total, n)
	if perNode == 0 {
		perNode = 1
	}

	// Round 1: deal (rank,key) pairs, bundled, round-robin over all nodes.
	const bundle = keysPerBundle
	packetIdx := 0
	for lo := 0; lo < len(run); lo += bundle {
		hi := min(lo+bundle, len(run))
		c.stageOpen((c.me + packetIdx) % n)
		c.stageWords(clique.Word(hi - lo))
		for t := lo; t < hi; t++ {
			k := run[t]
			c.stageWords(clique.Word(start+t), k.Value, clique.Word(k.Origin), clique.Word(k.Seq))
		}
		c.stageClose()
		packetIdx++
	}
	return dealDeliver(c, perNode, total, context)
}

// dealRanked is dealByRank for keys whose global ranks are not contiguous
// (the small-domain sorting arm, where a node's keys interleave with every
// other node's in the global order): the caller supplies each key's exact
// rank and the two relay rounds are otherwise identical.
func dealRanked(c *comm, ranked []rankedKey, total int, context string) (*SortResult, error) {
	n := c.size()
	perNode := ceilDiv(total, n)
	if perNode == 0 {
		perNode = 1
	}
	const bundle = keysPerBundle
	packetIdx := 0
	for lo := 0; lo < len(ranked); lo += bundle {
		hi := min(lo+bundle, len(ranked))
		c.stageOpen((c.me + packetIdx) % n)
		c.stageWords(clique.Word(hi - lo))
		for t := lo; t < hi; t++ {
			rk := ranked[t]
			c.stageWords(clique.Word(rk.rank), rk.key.Value, clique.Word(rk.key.Origin), clique.Word(rk.key.Seq))
		}
		c.stageClose()
		packetIdx++
	}
	return dealDeliver(c, perNode, total, context)
}

// dealDeliver finishes the two-round redistribution once round 1's ranked
// bundles are staged: exchange, forward every key to the node owning its
// rank range, and assemble the contiguous batch.
func dealDeliver(c *comm, perNode, total int, context string) (*SortResult, error) {
	n := c.size()
	rx, err := c.exchange()
	if err != nil {
		return nil, fmt.Errorf("%s deal: %w", context, err)
	}
	relayed := c.rankScratch[0][:0]
	for _, p := range rx.all() {
		if len(p) < 1 {
			continue
		}
		count := int(p[0])
		if count < 0 || len(p) < 1+count*(keyWords+1) {
			return nil, fmt.Errorf("%s deal: malformed ranked bundle", context)
		}
		for i := 0; i < count; i++ {
			base := 1 + i*(keyWords+1)
			k, decErr := decodeKey(p[base+1:])
			if decErr != nil {
				return nil, fmt.Errorf("%s deal: %w", context, decErr)
			}
			relayed = append(relayed, rankedKey{rank: int(p[base]), key: k})
		}
	}
	c.rankScratch[0] = relayed

	// Round 2: forward every key to the node owning its rank range.
	for _, rk := range relayed {
		dst := min(rk.rank/perNode, n-1)
		c.send(dst, clique.Word(rk.rank), rk.key.Value, clique.Word(rk.key.Origin), clique.Word(rk.key.Seq))
	}
	rx, err = c.exchange()
	if err != nil {
		return nil, fmt.Errorf("%s deliver: %w", context, err)
	}
	mine := c.rankScratch[1][:0]
	for _, p := range rx.all() {
		if len(p) < 1+keyWords {
			continue
		}
		k, decErr := decodeKey(p[1:])
		if decErr != nil {
			return nil, fmt.Errorf("%s deliver: %w", context, decErr)
		}
		mine = append(mine, rankedKey{rank: int(p[0]), key: k})
	}
	c.rankScratch[1] = mine
	slices.SortFunc(mine, func(a, b rankedKey) int { return a.rank - b.rank })

	res := &SortResult{Total: total}
	if len(mine) > 0 {
		res.Start = mine[0].rank
		res.Batch = make([]Key, 0, len(mine))
	} else {
		res.Start = min(c.me*perNode, total)
	}
	for i, rk := range mine {
		if i > 0 && mine[i-1].rank+1 != rk.rank {
			return nil, fmt.Errorf("%s deliver: node %d received non-contiguous ranks %d and %d", context, c.ex.ID(), mine[i-1].rank, rk.rank)
		}
		res.Batch = append(res.Batch, rk.key)
	}
	return res, nil
}
