package core

import (
	"fmt"
	"math/rand"
	"testing"

	"congestedclique/internal/clique"
)

func runSmallKeyCount(t *testing.T, n, domain int, values [][]int) (*SmallKeyResult, clique.Metrics) {
	t.Helper()
	nw, err := clique.New(n)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*SmallKeyResult, n)
	err = nw.Run(func(nd *clique.Node) error {
		res, sErr := SmallKeyCount(nd, values[nd.ID()], domain)
		if sErr != nil {
			return sErr
		}
		results[nd.ID()] = res
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		for v := 0; v < domain; v++ {
			if results[i].Counts[v] != results[0].Counts[v] {
				t.Fatalf("nodes 0 and %d disagree on count of %d", i, v)
			}
		}
	}
	return results[0], nw.Metrics()
}

func TestSmallKeyCountMatchesHistogram(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct{ n, domain, perNode int }{
		{64, 1, 64}, {100, 2, 100}, {256, 3, 256}, {256, 3, 10}, {400, 4, 0}, {1024, 8, 50},
	} {
		tc := tc
		t.Run(fmt.Sprintf("n=%d_K=%d", tc.n, tc.domain), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(tc.n*7 + tc.domain)))
			values := make([][]int, tc.n)
			want := make([]int64, tc.domain)
			for i := 0; i < tc.n; i++ {
				for k := 0; k < tc.perNode; k++ {
					v := rng.Intn(tc.domain)
					values[i] = append(values[i], v)
					want[v]++
				}
			}
			res, m := runSmallKeyCount(t, tc.n, tc.domain, values)
			for v := 0; v < tc.domain; v++ {
				if res.Counts[v] != want[v] {
					t.Fatalf("count of %d = %d, want %d", v, res.Counts[v], want[v])
				}
			}
			if m.Rounds != 2 {
				t.Errorf("small-key counting used %d rounds, Section 6.3 describes 2", m.Rounds)
			}
			if m.MaxEdgeWords > 2 {
				t.Errorf("small-key counting used %d words on an edge, messages should stay tiny", m.MaxEdgeWords)
			}
			if res.Total() != int64(tc.n*tc.perNode) {
				t.Errorf("total %d, want %d", res.Total(), tc.n*tc.perNode)
			}
		})
	}
}

func TestSmallKeyResultHelpers(t *testing.T) {
	t.Parallel()
	res := &SmallKeyResult{Counts: []int64{0, 5, 0, 3, 2}, Domain: 5}
	if got := res.DistinctRank(1); got != 0 {
		t.Fatalf("distinct rank of 1 = %d, want 0", got)
	}
	if got := res.DistinctRank(3); got != 1 {
		t.Fatalf("distinct rank of 3 = %d, want 1", got)
	}
	if got := res.DistinctRank(0); got != -1 {
		t.Fatalf("distinct rank of absent value = %d, want -1", got)
	}
	if got := res.DistinctRank(99); got != -1 {
		t.Fatalf("distinct rank outside domain = %d, want -1", got)
	}
	if got := res.Rank(3); got != 5 {
		t.Fatalf("rank of 3 = %d, want 5", got)
	}
	if got := res.Rank(100); got != 10 {
		t.Fatalf("rank beyond domain = %d, want 10", got)
	}
	v, c, ok := res.Mode()
	if !ok || v != 1 || c != 5 {
		t.Fatalf("mode = (%d,%d,%v), want (1,5,true)", v, c, ok)
	}
	empty := &SmallKeyResult{Counts: []int64{0, 0}, Domain: 2}
	if _, _, ok := empty.Mode(); ok {
		t.Fatal("mode of empty histogram should report absence")
	}
}

func TestSmallKeyCountRejectsBadInput(t *testing.T) {
	t.Parallel()
	nw, err := clique.New(16)
	if err != nil {
		t.Fatal(err)
	}
	err = nw.Run(func(nd *clique.Node) error {
		// Domain too large for n=16 (needs K*log^2 <= n).
		if _, sErr := SmallKeyCount(nd, nil, 10); sErr == nil {
			return fmt.Errorf("oversized domain accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	nw2, err := clique.New(64)
	if err != nil {
		t.Fatal(err)
	}
	err = nw2.Run(func(nd *clique.Node) error {
		if _, sErr := SmallKeyCount(nd, nil, 0); sErr == nil {
			return fmt.Errorf("zero domain accepted")
		}
		var vals []int
		if nd.ID() == 0 {
			vals = []int{5} // outside domain 1
		}
		if _, sErr := SmallKeyCount(nd, vals, 1); nd.ID() == 0 && sErr == nil {
			return fmt.Errorf("out-of-domain value accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
