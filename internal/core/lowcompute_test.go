package core

import (
	"fmt"
	"testing"

	"congestedclique/internal/clique"
)

// runLowComputeRouting mirrors runRouting but uses the Section 5 router.
func runLowComputeRouting(t *testing.T, msgs [][]Message, opts ...clique.Option) clique.Metrics {
	t.Helper()
	n := len(msgs)
	nw, err := clique.New(n, opts...)
	if err != nil {
		t.Fatal(err)
	}
	results := make([][]Message, n)
	err = nw.Run(func(nd *clique.Node) error {
		out, rErr := LowComputeRoute(nd, msgs[nd.ID()])
		if rErr != nil {
			return rErr
		}
		results[nd.ID()] = out
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	verifyDelivery(t, msgs, results)
	return nw.Metrics()
}

func TestLowComputeRouteFullLoad(t *testing.T) {
	t.Parallel()
	for _, n := range []int{16, 25, 36, 64, 100} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			t.Parallel()
			m := runLowComputeRouting(t, buildRoutingInstance(n, n, int64(n)*17))
			if m.Rounds > 12 {
				t.Errorf("n=%d: %d rounds, Theorem 5.4 claims at most 12", n, m.Rounds)
			}
			if m.MaxEdgeWords > 40 {
				t.Errorf("n=%d: max edge words %d, expected a small constant", n, m.MaxEdgeWords)
			}
		})
	}
}

func TestLowComputeRouteExactRounds(t *testing.T) {
	t.Parallel()
	m := runLowComputeRouting(t, buildRoutingInstance(49, 49, 3))
	if m.Rounds != 12 {
		t.Errorf("perfect-square full-load low-compute routing used %d rounds, schedule says 12", m.Rounds)
	}
}

func TestLowComputeRouteSkewedAndAdversarial(t *testing.T) {
	t.Parallel()
	for _, n := range []int{16, 36} {
		n := n
		t.Run(fmt.Sprintf("skewed_n=%d", n), func(t *testing.T) {
			t.Parallel()
			m := runLowComputeRouting(t, buildSkewedInstance(n, n))
			if m.Rounds > 12 {
				t.Errorf("skewed n=%d: %d rounds", n, m.Rounds)
			}
		})
		t.Run(fmt.Sprintf("setadv_n=%d", n), func(t *testing.T) {
			t.Parallel()
			m := runLowComputeRouting(t, buildSetAdversarialInstance(n, n))
			if m.Rounds > 12 {
				t.Errorf("set-adversarial n=%d: %d rounds", n, m.Rounds)
			}
		})
	}
}

func TestLowComputeRoutePartialLoad(t *testing.T) {
	t.Parallel()
	for _, per := range []int{0, 1, 7} {
		m := runLowComputeRouting(t, buildRoutingInstance(25, per, int64(per)*29))
		if m.Rounds > 12 {
			t.Errorf("per=%d: %d rounds", per, m.Rounds)
		}
	}
}

func TestLowComputeRouteFallbackNonSquare(t *testing.T) {
	t.Parallel()
	// Non-square clique sizes fall back to the Theorem 3.7 router (16 rounds).
	m := runLowComputeRouting(t, buildRoutingInstance(20, 20, 21))
	if m.Rounds > 16 {
		t.Errorf("non-square fallback: %d rounds", m.Rounds)
	}
}

// TestLowComputeStepsScaleNearLinearly checks the Theorem 5.4 computation
// claim: the self-reported per-node step count grows roughly linearly in n
// (within a generous constant), in contrast to the Θ(n^{3/2}) message-level
// bookkeeping a naive implementation of Algorithm 1 would need.
func TestLowComputeStepsScaleNearLinearly(t *testing.T) {
	t.Parallel()
	steps := map[int]int64{}
	for _, n := range []int{16, 64, 256} {
		nw, err := clique.New(n)
		if err != nil {
			t.Fatal(err)
		}
		msgs := buildRoutingInstance(n, n, int64(n))
		err = nw.Run(func(nd *clique.Node) error {
			_, rErr := LowComputeRoute(nd, msgs[nd.ID()])
			return rErr
		})
		if err != nil {
			t.Fatal(err)
		}
		steps[n] = nw.Metrics().MaxStepsPerNode
		if steps[n] == 0 {
			t.Fatalf("n=%d: no steps reported", n)
		}
	}
	// Quadrupling n should grow the step count by roughly 4x, certainly less
	// than 8x (which would indicate super-linear behaviour).
	if steps[64] > 8*steps[16] || steps[256] > 8*steps[64] {
		t.Errorf("per-node steps grow super-linearly: %v", steps)
	}
}

// TestLowComputeVersusStandardTraffic confirms the Section 5 trade-off: the
// 12-round variant never needs more rounds than the 16-round algorithm, and
// both deliver identical message sets.
func TestLowComputeVersusStandardTraffic(t *testing.T) {
	t.Parallel()
	msgs := buildRoutingInstance(36, 36, 11)
	mStd := runRouting(t, msgs)
	mLow := runLowComputeRouting(t, msgs)
	if mLow.Rounds >= mStd.Rounds {
		t.Errorf("low-compute rounds %d not below standard rounds %d", mLow.Rounds, mStd.Rounds)
	}
}
