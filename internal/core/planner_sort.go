package core

import (
	"fmt"
	"slices"

	"congestedclique/internal/clique"
)

// This file implements the demand-aware sorting planner, the sorting
// counterpart of PlanRoute (planner.go). The paper's Algorithm 4 pays a fixed
// 37-round schedule regardless of the instance's shape; PlanSort runs a
// central census of the staged keys and dispatches AlgorithmAuto sorts to
// the cheapest strategy that still produces exactly the Problem 4.1 output
// (the same batches as Sort, bit for bit):
//
//   - SortStrategyEmpty: no keys at all — zero rounds.
//   - SortStrategyPresorted: the rows already partition the global order
//     (node i's keys all precede node i+1's). Global ranks then follow from
//     the row sizes alone, so two rounds of rank-balanced redistribution
//     (the same dealByRank that ends Algorithm 4) replace the whole
//     pipeline. The gate accepts both truly pre-sorted rows and "near
//     sorted" ones that partition only after a free local sort.
//   - SortStrategySmallDomain: few distinct values (duplicate-heavy or a
//     tiny key domain). The Section 6.3 counting protocol (smallkeys.go)
//     yields the exact global histogram in two rounds; a per-origin prefix
//     piggybacked on its second round turns the histogram into exact global
//     ranks, and two dealByRank-style rounds deliver the batches — 4 rounds
//     total against the pipeline's 37.
//   - SortStrategyPipeline: everything else runs Algorithm 4 unchanged —
//     stats are bit-identical to calling Sort directly, which the
//     stats-invariant goldens pin.
//
// Honesty note on the model: PlanSort runs centrally, over the instance the
// simulator already holds, exactly like PlanRoute. In a real congested
// clique the same census is an O(1)-round aggregation: row sizes and row
// min/max spread via Corollary 3.3, and the distinct-value table of the
// small-domain arm is only consulted when it has at most n/log²n entries —
// the regime in which Section 6.3 itself assumes the domain is globally
// known. By default the simulator does not charge those words, exactly as it
// does not charge the deterministic schedule computations all nodes perform
// locally. Since PR 9 a charged sort census exists (census.go, armed by
// WithChargedCensus or implied by WithPlanCache): two rounds of fingerprint
// agreement plus a verdict broadcast. Unlike the route census it does not
// re-derive the verdict distributedly — the sorting verdict depends on value
// distribution properties with no O(1)-word per-node summary — so its charge
// is honest for agreement, while the verdict itself is echoed from the plan.
// The plan is a pure function of the instance, so every node dispatching on
// it agrees on the strategy.

// SortStrategy identifies the strategy the demand-aware sorting planner
// selected for a sorting instance.
type SortStrategy int

const (
	// SortStrategyPipeline is the paper's full Algorithm 4 (Theorem 4.5).
	SortStrategyPipeline SortStrategy = iota + 1
	// SortStrategyPresorted skips the pipeline when the rows already
	// partition the global order: two rank-balanced redistribution rounds.
	SortStrategyPresorted
	// SortStrategySmallDomain counts a small distinct-value domain with the
	// Section 6.3 protocol and delivers by exact rank: four rounds.
	SortStrategySmallDomain
	// SortStrategyEmpty is the degenerate no-key instance: zero rounds.
	SortStrategyEmpty
)

// String returns the strategy name as used in scenario tables and logs.
func (s SortStrategy) String() string {
	switch s {
	case SortStrategyPipeline:
		return "pipeline"
	case SortStrategyPresorted:
		return "presorted"
	case SortStrategySmallDomain:
		return "small-domain"
	case SortStrategyEmpty:
		return "empty"
	default:
		return fmt.Sprintf("sort-strategy(%d)", int(s))
	}
}

// SmallDomainDistinctCap is the small-domain gate: the Section 6.3 counting
// arm is feasible only when the number of distinct values K satisfies
// K * ceil(log2(n+1))^2 <= n (the protocol needs that many helper nodes), so
// the cap is n / ceil(log2(n+1))^2. A zero cap means the clique is too small
// for the counting arm at any domain size.
func SmallDomainDistinctCap(n int) int {
	bits := smallKeyBits(n)
	return n / (bits * bits)
}

// SortPlan is the sorting planner's verdict for one instance: the census it
// classified and the strategy every node dispatches on. Like RoutePlan it is
// a pure function of the instance, so all nodes executing it agree on the
// communication schedule without exchanging a word.
type SortPlan struct {
	// N is the clique size the plan was computed for.
	N int
	// Strategy is the selected sorting strategy.
	Strategy SortStrategy
	// Reason is a human-readable one-liner explaining the dispatch (surfaced
	// by cmd/cliquescen).
	Reason string

	// TotalKeys is the number of keys in the instance.
	TotalKeys int
	// MaxLoad is the largest per-node key count.
	MaxLoad int
	// ActiveHolders counts nodes holding at least one key.
	ActiveHolders int
	// LocallySorted reports that every row was submitted in ascending order.
	LocallySorted bool
	// Partitioned reports that the rows partition the global order: every key
	// of node i precedes every key of node j for i < j. It is the
	// SortStrategyPresorted gate (a free local sort makes a partitioned
	// instance fully sorted).
	Partitioned bool
	// DistinctValues is the number of distinct key values, censused only when
	// the instance failed the presorted gate and the clique admits the
	// small-domain arm; SmallDomainDistinctCap(n)+1 means "more than the
	// cap" (the census bails out early), and 0 means "not censused".
	DistinctValues int
	// MaxDuplicity is the largest multiplicity of one value; only exact when
	// the distinct-value census completed (DistinctValues <= cap).
	MaxDuplicity int

	// Domain is the sorted distinct-value table of the small-domain arm
	// (dense remap indices are positions in this slice); set only when
	// Strategy == SortStrategySmallDomain.
	Domain []int64
	// StartRanks has n+1 entries: StartRanks[i] is the global rank of node
	// i's first key and StartRanks[n] the total; set only when Strategy ==
	// SortStrategyPresorted.
	StartRanks []int

	// Census arms the charged sort census (census.go) for this execution;
	// CensusHasFP additionally carries the plan-cache fingerprint for
	// distributed agreement. Per-run execution state, never part of a
	// cached verdict.
	Census      bool
	CensusHasFP bool
	CensusFP    uint64
}

// Rounds returns the number of communication rounds the plan's strategy will
// use, or -1 for the pipeline (whose round count Sort reports itself).
func (p SortPlan) Rounds() int {
	switch p.Strategy {
	case SortStrategyEmpty:
		return 0
	case SortStrategyPresorted:
		return 2
	case SortStrategySmallDomain:
		return 4
	default:
		return -1
	}
}

// PlanSort classifies a sorting instance and selects the cheapest strategy
// that reproduces the Problem 4.1 output exactly. keys is indexed by node
// (rows beyond len(keys) are empty); the instance must already satisfy the
// Problem 4.1 shape (at most n keys per node, Origin matching the row) —
// the session layer validates before planning.
func PlanSort(n int, keys [][]Key) SortPlan {
	plan := SortPlan{N: n, LocallySorted: true, Partitioned: true}

	// Census pass: totals, loads, per-row sortedness and min/max under the
	// full key order (value with the footnote-5 tie-break), and the running
	// cross-row partition check.
	var runningMax Key
	havePrev := false
	for i := 0; i < n; i++ {
		var row []Key
		if i < len(keys) {
			row = keys[i]
		}
		if len(row) == 0 {
			continue
		}
		plan.ActiveHolders++
		plan.TotalKeys += len(row)
		if len(row) > plan.MaxLoad {
			plan.MaxLoad = len(row)
		}
		rowMin, rowMax := row[0], row[0]
		for j := 1; j < len(row); j++ {
			if compareKeys(row[j], row[j-1]) < 0 {
				plan.LocallySorted = false
			}
			if compareKeys(row[j], rowMin) < 0 {
				rowMin = row[j]
			}
			if compareKeys(row[j], rowMax) > 0 {
				rowMax = row[j]
			}
		}
		if havePrev && compareKeys(rowMin, runningMax) < 0 {
			plan.Partitioned = false
		}
		if !havePrev || compareKeys(rowMax, runningMax) > 0 {
			runningMax = rowMax
		}
		havePrev = true
	}

	if plan.TotalKeys == 0 {
		plan.Strategy = SortStrategyEmpty
		plan.Partitioned = false
		plan.Reason = "no keys"
		return plan
	}

	if plan.Partitioned {
		plan.Strategy = SortStrategyPresorted
		plan.StartRanks = make([]int, n+1)
		for i := 0; i < n; i++ {
			plan.StartRanks[i+1] = plan.StartRanks[i]
			if i < len(keys) {
				plan.StartRanks[i+1] += len(keys[i])
			}
		}
		if plan.LocallySorted {
			plan.Reason = "pre-sorted input: rows already hold consecutive runs of the global order, rank-balanced redistribution only"
		} else {
			plan.Reason = "near-sorted input: rows partition the global order after a free local sort, rank-balanced redistribution only"
		}
		return plan
	}

	// Small-domain census: count distinct values, bailing out as soon as the
	// count exceeds the Section 6.3 feasibility cap.
	distinctCap := SmallDomainDistinctCap(n)
	if distinctCap >= 1 {
		counts := make(map[int64]int, distinctCap+1)
		for i := 0; i < len(keys) && i < n; i++ {
			for _, k := range keys[i] {
				counts[k.Value]++
				if len(counts) > distinctCap {
					break
				}
			}
			if len(counts) > distinctCap {
				break
			}
		}
		if len(counts) <= distinctCap {
			plan.DistinctValues = len(counts)
			plan.Domain = make([]int64, 0, len(counts))
			for v, c := range counts {
				plan.Domain = append(plan.Domain, v)
				if c > plan.MaxDuplicity {
					plan.MaxDuplicity = c
				}
			}
			slices.Sort(plan.Domain)
			plan.Strategy = SortStrategySmallDomain
			plan.Reason = fmt.Sprintf("small key domain: %d distinct value(s) ≤ distinctCap %d, Section 6.3 counting + rank delivery in 4 rounds",
				plan.DistinctValues, distinctCap)
			return plan
		}
		plan.DistinctValues = distinctCap + 1
	}

	plan.Strategy = SortStrategyPipeline
	if distinctCap >= 1 {
		plan.Reason = fmt.Sprintf("general instance: more than %d distinct values and rows do not partition the global order", distinctCap)
	} else {
		plan.Reason = "general instance: clique too small for the counting arm and rows do not partition the global order"
	}
	return plan
}

// AutoSort executes one node's part of a planned sorting instance. Every
// node must pass the same plan (PlanSort of the same instance) and its own
// key row; the plan fixes the communication schedule, so no agreement rounds
// are needed. The output contract matches Sort exactly: node i's batch of
// the globally sorted sequence, identical to the Deterministic pipeline's
// bit for bit.
func AutoSort(ex clique.Exchanger, myKeys []Key, plan SortPlan) (*SortResult, error) {
	if plan.N != ex.N() {
		return nil, fmt.Errorf("core: sort plan computed for n=%d executed on n=%d", plan.N, ex.N())
	}
	if plan.Census && ex.N() > 1 {
		if err := runSortCensus(ex, myKeys, plan); err != nil {
			return nil, err
		}
	}
	if ex.N() == 1 {
		// Mirror Sort's single-node shortcut for every arm.
		batch := append([]Key(nil), myKeys...)
		sortKeys(batch)
		return &SortResult{Batch: batch, Start: 0, Total: len(batch)}, nil
	}
	switch plan.Strategy {
	case SortStrategyEmpty:
		if len(myKeys) != 0 {
			return nil, fmt.Errorf("core: empty sort plan but node %d holds %d keys", ex.ID(), len(myKeys))
		}
		return &SortResult{}, nil
	case SortStrategyPresorted:
		return presortedSort(ex, myKeys, plan)
	case SortStrategySmallDomain:
		return smallDomainSort(ex, myKeys, plan)
	case SortStrategyPipeline:
		return Sort(ex, myKeys)
	default:
		return nil, fmt.Errorf("core: unknown sort strategy %v", plan.Strategy)
	}
}

// presortedSort is the skip-redistribution arm: the plan certifies that the
// rows partition the global order, so after a free local sort this node's
// run occupies the contiguous global ranks starting at StartRanks[me] and
// the two dealByRank rounds of Algorithm 4's Step 8 finish the job alone.
func presortedSort(ex clique.Exchanger, myKeys []Key, plan SortPlan) (*SortResult, error) {
	c := fullComm(ex, fmt.Sprintf("presorted@r%d", ex.Round()))
	defer c.release()
	n := c.size()
	if len(plan.StartRanks) != n+1 {
		return nil, fmt.Errorf("core: presorted plan carries %d start ranks for n=%d", len(plan.StartRanks), n)
	}
	if got, want := len(myKeys), plan.StartRanks[c.me+1]-plan.StartRanks[c.me]; got != want {
		return nil, fmt.Errorf("core: presorted plan expected %d keys at node %d, got %d (plan does not match the instance)", want, ex.ID(), got)
	}
	run := append([]Key(nil), myKeys...)
	sortKeys(run)
	return dealByRank(c, run, plan.StartRanks[c.me], plan.StartRanks[n], "presorted.rank")
}

// smallDomainSort is the Section 6.3 arm: keys take at most
// SmallDomainDistinctCap(n) distinct values, listed in the plan's sorted
// Domain table. The counting protocol of smallkeys.go runs on the dense
// indices, with one extension: alongside the j-th bit of the global
// ones-count, each helper also returns the j-th bit of the per-origin prefix
// ones-count, so every node learns not only the global histogram but the
// number of equal-valued keys held by smaller origins — which pins the exact
// global rank of every local key (value rank + origin prefix + local
// sequence position, the same footnote-5 order the pipeline sorts by). Two
// dealRanked rounds then deliver the batches. 4 rounds total.
func smallDomainSort(ex clique.Exchanger, myKeys []Key, plan SortPlan) (*SortResult, error) {
	c := fullComm(ex, fmt.Sprintf("smallsort@r%d", ex.Round()))
	defer c.release()
	n := c.size()
	k := len(plan.Domain)
	if err := CheckSmallKeyDomain(n, k); err != nil {
		return nil, fmt.Errorf("core: small-domain sort: %w", err)
	}
	bits := smallKeyBits(n)
	helper := func(value, countBit, aggBit int) int {
		return value*bits*bits + countBit*bits + aggBit
	}

	// Local histogram over dense indices (positions in the Domain table).
	local := make([]int64, k)
	for _, key := range myKeys {
		v, ok := slices.BinarySearch(plan.Domain, key.Value)
		if !ok {
			return nil, fmt.Errorf("core: key value %d not in the plan's domain table (plan does not match the instance)", key.Value)
		}
		local[v]++
	}

	// Round 1: send the i-th bit of my count of value v to every helper of
	// (v, i) — identical to SmallKeyCount's first round.
	for v := 0; v < k; v++ {
		for i := 0; i < bits; i++ {
			bit := (local[v] >> uint(i)) & 1
			for j := 0; j < bits; j++ {
				c.send(helper(v, i, j), clique.Word(bit))
			}
		}
	}
	rx, err := c.exchange()
	if err != nil {
		return nil, fmt.Errorf("core: small-domain sort round 1: %w", err)
	}

	// Round 2: the helper of (v, i, j) returns to node a a two-word packet:
	// the j-th bit of the total ones-count (as in SmallKeyCount) and the
	// j-th bit of the number of ones among origins strictly below a.
	if c.me < k*bits*bits {
		myAggBit := c.me % bits
		var ones int64
		for b := 0; b < n; b++ {
			if p := rx.single(b); len(p) > 0 && p[0] == 1 {
				ones++
			}
		}
		var pref int64
		for b := 0; b < n; b++ {
			c.send(b, clique.Word((ones>>uint(myAggBit))&1), clique.Word((pref>>uint(myAggBit))&1))
			if p := rx.single(b); len(p) > 0 && p[0] == 1 {
				pref++
			}
		}
	}
	rx, err = c.exchange()
	if err != nil {
		return nil, fmt.Errorf("core: small-domain sort round 2: %w", err)
	}

	// Reconstruct the global histogram and my per-value origin prefixes.
	counts := make([]int64, k)
	prefix := make([]int64, k)
	for v := 0; v < k; v++ {
		for i := 0; i < bits; i++ {
			var ones, pref int64
			for j := 0; j < bits; j++ {
				p := rx.single(helper(v, i, j))
				if len(p) < 2 {
					return nil, fmt.Errorf("core: small-domain sort round 2: missing bits from helper of (%d,%d,%d)", v, i, j)
				}
				if p[0] == 1 {
					ones |= 1 << uint(j)
				}
				if p[1] == 1 {
					pref |= 1 << uint(j)
				}
			}
			counts[v] += ones << uint(i)
			prefix[v] += pref << uint(i)
		}
	}
	base := make([]int64, k+1)
	for v := 0; v < k; v++ {
		base[v+1] = base[v] + counts[v]
	}
	total := int(base[k])

	// Exact global rank of every local key: keys ordered by (Value, Origin,
	// Seq); within my own equal-value run the local sort already yields Seq
	// order (Origin is constant), so consecutive equal values count up.
	run := append([]Key(nil), myKeys...)
	sortKeys(run)
	ranked := make([]rankedKey, len(run))
	t := 0
	for i, key := range run {
		v, _ := slices.BinarySearch(plan.Domain, key.Value)
		if i > 0 && run[i-1].Value == key.Value {
			t++
		} else {
			t = 0
		}
		ranked[i] = rankedKey{rank: int(base[v]) + int(prefix[v]) + t, key: key}
	}
	return dealRanked(c, ranked, total, "smalldomain.rank")
}
