package core

import (
	"fmt"
	"sort"

	"congestedclique/internal/clique"
)

// groupSortResult is what a group member learns from Algorithm 3: its bucket
// of the group's sorted key sequence, the sizes of all buckets (so global
// offsets inside the group are known to every member), and the delimiters
// that defined the buckets.
type groupSortResult struct {
	myBucket    []Key
	bucketSizes []int
	delimiters  []Key
}

// groupSort implements Algorithm 3: the members of one group sort the union
// of their keys using only edges with at least one endpoint in the group
// (plus the shared relays of Corollary 3.3, which is what allows disjoint
// groups to run concurrently). Every member of the comm must call groupSort
// in the same round; nodes with a nil group participate as relays only.
//
// capacity is an upper bound on the number of keys any group member holds
// (the paper's "2n"); it determines the sampling stride. The round budget is
// 8: 2 (announce samples) + 2 (announce bucket counts) + 4 (Corollary 3.4
// key exchange). The paper's Step 8 (rebalancing to exactly equal batches) is
// provided separately by dealByRank, matching how Algorithm 4 skips it.
func groupSort(c *comm, group []int, myKeys []Key, capacity int, st step) (*groupSortResult, error) {
	m := c.size()
	w := len(group)

	var (
		sigma    int
		maxSel   int
		selected []Key
		input    []Key
		myIdx    = -1
	)
	if w > 0 {
		if len(myKeys) > capacity {
			return nil, fmt.Errorf("core: groupSort(%s): node %d holds %d keys, capacity %d", st.name, c.ex.ID(), len(myKeys), capacity)
		}
		myIdx = indexIn(group, c.me)
		if myIdx < 0 {
			return nil, fmt.Errorf("core: groupSort(%s): node %d not in its group", st.name, c.ex.ID())
		}
		// Step 1 (local): sort the input and select every sigma-th key. The
		// stride is chosen so that the group-wide number of samples is at
		// most m, keeping the announcement inside the Corollary 3.3 budget
		// (the paper's sigma = 2*sqrt(n) for w = sqrt(n), capacity = 2n,
		// m = n).
		input = append([]Key(nil), myKeys...)
		sortKeys(input)
		sigma = ceilDiv(w*capacity, m)
		if sigma < 1 {
			sigma = 1
		}
		maxSel = ceilDiv(capacity, sigma)
		selected = make([]Key, 0, len(input)/sigma+1)
		for i := sigma - 1; i < len(input); i += sigma {
			selected = append(selected, input[i])
		}
	}

	// Step 2 (2 rounds): announce the selected keys to every group member.
	// Payload: [valid, value, origin, seq], padded to maxSel entries so the
	// demand is uniform.
	var payloads [][]clique.Word
	if w > 0 {
		payloads = make([][]clique.Word, 0, maxSel)
		for _, k := range selected {
			payloads = append(payloads, c.arenaAppend(1, k.Value, clique.Word(k.Origin), clique.Word(k.Seq)))
		}
		for len(payloads) < maxSel {
			payloads = append(payloads, c.arenaAppend(0, 0, 0, 0))
		}
	}
	announced, err := announceFixed(c, group, payloads, maxSel, st.sub("samples", kcSamples))
	if err != nil {
		return nil, fmt.Errorf("core: groupSort(%s) step2: %w", st.name, err)
	}

	var delims []Key
	var bstart []int
	if w > 0 {
		// Step 3 (local): merge the samples and pick the w-quantiles as
		// delimiters.
		samples := make([]Key, 0, w*maxSel)
		for _, perSender := range announced {
			for _, p := range perSender {
				if len(p) < 1+keyWords || p[0] != 1 {
					continue
				}
				k, decErr := decodeKey(p[1:])
				if decErr != nil {
					return nil, fmt.Errorf("core: groupSort(%s) step3: %w", st.name, decErr)
				}
				samples = append(samples, k)
			}
		}
		sortKeys(samples)
		delims = make([]Key, 0, w-1)
		for j := 1; j < w; j++ {
			if len(samples) == 0 {
				break
			}
			rank := ceilDiv(j*len(samples), w) - 1
			if rank < 0 {
				rank = 0
			}
			delims = append(delims, samples[rank])
		}

		// Step 4 (local): split my input into buckets by the delimiters; the
		// last bucket is unbounded above. The input is sorted and the
		// delimiters are non-decreasing, so bucket j is the contiguous range
		// input[bstart[j]:bstart[j+1]] found by binary search (keys above the
		// last delimiter fall into bucket len(delims)).
		bstart = make([]int, w+1)
		for j := 1; j < w; j++ {
			if j-1 < len(delims) {
				d := delims[j-1]
				bstart[j] = sort.Search(len(input), func(i int) bool { return d.Less(input[i]) })
			} else {
				bstart[j] = len(input)
			}
		}
		bstart[w] = len(input)
	}

	// Step 5 (2 rounds): announce the bucket counts.
	var counts []int
	if w > 0 {
		counts = make([]int, w)
		for j := 0; j < w; j++ {
			counts[j] = bstart[j+1] - bstart[j]
		}
	}
	allCounts, err := announceIntVector(c, group, counts, st.sub("counts", kcCounts))
	if err != nil {
		return nil, fmt.Errorf("core: groupSort(%s) step5: %w", st.name, err)
	}

	// Step 6 (4 rounds): send bucket j to the j-th group member, bundling a
	// constant number of keys per message (Corollary 3.4).
	var items []item
	if w > 0 {
		slot := c.itemSlot()
		items = *slot
		for j := 0; j < w; j++ {
			bucket := input[bstart[j]:bstart[j+1]]
			for lo := 0; lo < len(bucket); lo += keysPerBundle {
				hi := min(lo+keysPerBundle, len(bucket))
				mark := c.arenaMark()
				c.arena = append(c.arena, clique.Word(hi-lo))
				for _, k := range bucket[lo:hi] {
					c.arena = append(c.arena, k.Value, clique.Word(k.Origin), clique.Word(k.Seq))
				}
				items = append(items, item{dst: group[j], words: c.arenaView(mark)})
			}
		}
		*slot = items
	}
	received, err := groupRouteUnknown(c, group, items, st.sub("exchange", kcExchange))
	if err != nil {
		return nil, fmt.Errorf("core: groupSort(%s) step6: %w", st.name, err)
	}
	// Everything this groupSort staged through the arena (sample payloads,
	// announcement items, key bundles) has been delivered; the received
	// bundles below are views into the engine's arena, not this one.
	c.arenaReset()

	if w == 0 {
		return &groupSortResult{}, nil
	}

	// Step 7 (local): sort the received keys; they form my bucket of the
	// group-wide order. The announced counts already pin the bucket size, so
	// the bucket is allocated exactly once.
	bucketSizes := make([]int, w)
	for j := 0; j < w; j++ {
		for a := 0; a < w; a++ {
			bucketSizes[j] += allCounts[a][j]
		}
	}
	myBucket := make([]Key, 0, bucketSizes[myIdx])
	for _, it := range received {
		if len(it.words) < 1 {
			return nil, fmt.Errorf("core: groupSort(%s) step7: empty bundle", st.name)
		}
		count := int(it.words[0])
		if count < 0 || len(it.words) < 1+count*keyWords {
			return nil, fmt.Errorf("core: groupSort(%s) step7: malformed bundle", st.name)
		}
		for i := 0; i < count; i++ {
			k, decErr := decodeKey(it.words[1+i*keyWords:])
			if decErr != nil {
				return nil, fmt.Errorf("core: groupSort(%s) step7: %w", st.name, decErr)
			}
			myBucket = append(myBucket, k)
		}
	}
	sortKeys(myBucket)
	if bucketSizes[myIdx] != len(myBucket) {
		return nil, fmt.Errorf("core: groupSort(%s): node %d received %d keys, announced bucket size %d",
			st.name, c.ex.ID(), len(myBucket), bucketSizes[myIdx])
	}
	return &groupSortResult{myBucket: myBucket, bucketSizes: bucketSizes, delimiters: delims}, nil
}
