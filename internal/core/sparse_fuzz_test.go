package core

import (
	"math/rand"
	"reflect"
	"testing"

	"congestedclique/internal/clique"
)

// fuzzSparseInstance generates a random Problem 3.1 instance (per-source and
// per-sink loads capped at n) from the fuzzed parameters.
func fuzzSparseInstance(seed int64, nRaw, perRaw uint8, concentrate, ragged bool) (int, [][]Message) {
	n := 8 + int(nRaw)%57 // 8..64
	per := int(perRaw) % (n + 1)
	rng := rand.New(rand.NewSource(seed))
	rows := n
	if ragged {
		rows = 1 + rng.Intn(n)
	}
	msgs := make([][]Message, rows)
	recv := make([]int, n)
	for src := 0; src < rows; src++ {
		count := rng.Intn(per + 1)
		for k := 0; k < count; k++ {
			dst := rng.Intn(n)
			if concentrate {
				dst = rng.Intn(1 + n/8)
			}
			if recv[dst] >= n {
				continue
			}
			recv[dst]++
			msgs[src] = append(msgs[src], Message{Src: src, Dst: dst, Seq: len(msgs[src]), Payload: clique.Word(rng.Int63n(1 << 40))})
		}
	}
	return n, msgs
}

// FuzzSparseRoundTrip checks that the sparse demand representation is
// lossless: rows round-trip exactly, totals agree, the fingerprint matches
// the dense RouteFingerprint and the sparse planner replays PlanRoute.
func FuzzSparseRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(16), uint8(4), false, false)
	f.Add(int64(2), uint8(9), uint8(0), false, true)
	f.Add(int64(3), uint8(25), uint8(12), true, false)
	f.Add(int64(4), uint8(31), uint8(200), true, true)
	f.Fuzz(func(t *testing.T, seed int64, nRaw, perRaw uint8, concentrate, ragged bool) {
		n, msgs := fuzzSparseInstance(seed, nRaw, perRaw, concentrate, ragged)
		sd, err := NewSparseDemand(n, msgs)
		if err != nil {
			t.Fatalf("NewSparseDemand: %v", err)
		}
		back := sd.Messages()
		total := 0
		for i := 0; i < n; i++ {
			var want []Message
			if i < len(msgs) {
				want = msgs[i]
			}
			total += len(want)
			if len(want) == 0 && len(back[i]) == 0 {
				continue
			}
			if !reflect.DeepEqual(back[i], want) {
				t.Fatalf("row %d does not round-trip: got %v want %v", i, back[i], want)
			}
		}
		if sd.Total() != total {
			t.Fatalf("Total = %d, want %d", sd.Total(), total)
		}
		if got, want := sd.Fingerprint(), RouteFingerprint(n, msgs); got != want {
			t.Fatalf("sparse fingerprint %v != dense %v", got, want)
		}
		if got, want := PlanRouteSparse(sd), PlanRoute(n, msgs); !reflect.DeepEqual(got, want) {
			t.Fatalf("sparse plan %+v != dense plan %+v", got, want)
		}
	})
}

// FuzzSparseRouteMatchesDense executes every sparse-served generated
// instance on both schedulers and requires bit-identical outputs and
// metrics.
func FuzzSparseRouteMatchesDense(f *testing.F) {
	f.Add(int64(1), uint8(16), uint8(2), false, false)
	f.Add(int64(2), uint8(9), uint8(1), false, true)
	f.Add(int64(3), uint8(25), uint8(30), true, false)
	f.Add(int64(4), uint8(31), uint8(3), true, true)
	f.Fuzz(func(t *testing.T, seed int64, nRaw, perRaw uint8, concentrate, ragged bool) {
		n, msgs := fuzzSparseInstance(seed, nRaw, perRaw, concentrate, ragged)
		sd, err := NewSparseDemand(n, msgs)
		if err != nil {
			t.Fatalf("NewSparseDemand: %v", err)
		}
		plan := PlanRouteSparse(sd)
		if !SparseStepCapable(plan.Strategy) {
			return // pipeline arm: blocking scheduler only
		}
		plan.Census = seed%2 == 0
		if plan.Census {
			plan.CensusHasFP = true
			plan.CensusFP = sd.Fingerprint().Hash
		}
		wantOut, wantM := runDenseAutoRoute(t, n, msgs, plan)
		gotOut, gotM := runSparseRoute(t, sd, plan)
		for i := 0; i < n; i++ {
			if len(wantOut[i]) == 0 && len(gotOut[i]) == 0 {
				continue
			}
			if !reflect.DeepEqual(gotOut[i], wantOut[i]) {
				t.Fatalf("strategy %v: node %d outputs differ:\n sparse %v\n dense  %v", plan.Strategy, i, gotOut[i], wantOut[i])
			}
		}
		if gotM.Rounds != wantM.Rounds || gotM.TotalWords != wantM.TotalWords ||
			gotM.TotalMessages != wantM.TotalMessages ||
			gotM.MaxEdgeWords != wantM.MaxEdgeWords || gotM.MaxEdgeMessages != wantM.MaxEdgeMessages {
			t.Fatalf("strategy %v: metrics differ:\n sparse %+v\n dense  %+v", plan.Strategy, gotM, wantM)
		}
	})
}
