package core

import (
	"fmt"

	"congestedclique/internal/bipartite"
	"congestedclique/internal/clique"
)

// item is one routable unit handled by the communication primitives: a
// destination (a local member index of the enclosing comm) plus a constant
// number of payload words. Items returned by the primitives borrow the
// engine's receive arena: they are valid for clique.PayloadGraceRounds
// further barriers and must be consumed or copied within that window.
type item struct {
	dst   int
	words []clique.Word
}

// relayRoute implements Corollary 3.3: two-round routing of items whose
// demand matrix is known to every member of the sending group.
//
// Every member of the comm must call relayRoute in the same round, because
// any member can serve as a relay. Nodes that do not belong to a sending
// group in this step pass a nil group; they participate purely as relays.
//
//   - group lists the local indices of this node's group (sorted ascending);
//     groups of different callers must be identical or disjoint.
//   - demand[a][b] is the number of items the a-th group member sends to the
//     b-th group member; it must be identical at every member of the group
//     and consistent with the items actually passed in mine.
//   - mine are this node's items; each destination must lie inside group.
//
// Following the proof of Corollary 3.3, the demand multigraph is edge-colored
// with d = max degree colors (König / Theorem 3.2); the item of color c is
// relayed through the comm member c mod size in the first round and forwarded
// to its destination in the second. When d exceeds the comm size (overloaded
// instances), relays carry ceil(d/size) items per edge, which only increases
// the constant number of words per edge.
func relayRoute(c *comm, group []int, demand [][]int, mine []item, st step) ([]item, error) {
	return relayRouteColored(c, group, demand, mine, st, false)
}

// relayRouteColored is relayRoute with a choice of schedule coloring: the
// exact König coloring (Theorem 3.2) or the greedy 2Δ-1 coloring of
// footnote 3, which Section 5 uses to keep local computation near-linear at
// the price of relays carrying up to two messages per edge.
func relayRouteColored(c *comm, group []int, demand [][]int, mine []item, st step, greedy bool) ([]item, error) {
	size := c.size()

	if len(group) > 0 {
		if len(mine) > 0 && c.me < 0 {
			return nil, fmt.Errorf("core: relayRoute(%s): non-member holds items", st.name)
		}
		pos := c.groupPositions(group)
		defer c.releasePositions(group)
		myIdx := -1
		if c.me >= 0 {
			myIdx = int(pos[c.me])
		}
		if myIdx < 0 {
			return nil, fmt.Errorf("core: relayRoute(%s): node %d not in its own group", st.name, c.ex.ID())
		}
		if len(demand) != len(group) {
			return nil, fmt.Errorf("core: relayRoute(%s): demand has %d rows for group of %d", st.name, len(demand), len(group))
		}

		// Count my items per destination position within the group; their
		// given order defines the canonical unit order of each demand cell at
		// the sender.
		counts := c.cursors(len(group))
		for _, it := range mine {
			b := int32(-1)
			if it.dst >= 0 && it.dst < size {
				b = pos[it.dst]
			}
			if b < 0 {
				return nil, fmt.Errorf("core: relayRoute(%s): item destination %d outside group", st.name, it.dst)
			}
			counts[b]++
		}
		for b := range counts {
			if counts[b] != demand[myIdx][b] {
				return nil, fmt.Errorf("core: relayRoute(%s): node %d holds %d items for group position %d, demand says %d",
					st.name, c.ex.ID(), counts[b], b, demand[myIdx][b])
			}
		}

		d := bipartite.MaxRowColSum(demand)
		if u := uniformDemand(demand); u > 0 {
			// Uniform demand (every announcement pattern): the König coloring
			// degenerates to the Latin-square layout of
			// bipartite.uniformDemandColoring — cell (i,j) owns the color
			// block ((i+j) mod w)*u — so the relay of unit k is computed
			// arithmetically, with no coloring object and no cache access.
			// The colors are identical to the ones ColorDemandMatrix and
			// ColorDemandGreedy would assign.
			w := len(group)
			clear(counts)
			for _, it := range mine {
				b := int(pos[it.dst])
				k := counts[b]
				counts[b]++
				color := ((myIdx+b)%w)*u + k
				c.stageOpen(color % size)
				c.stageWords(clique.Word(it.dst))
				c.stageWords(it.words...)
				c.stageClose()
			}
		} else if d > 0 {
			shared := c.shared(st.key.sub(kcColor), int32(group[0]), func() interface{} {
				var dc *bipartite.DemandColoring
				var err error
				if greedy {
					dc, err = bipartite.ColorDemandGreedy(demand)
				} else {
					dc, err = bipartite.ColorDemandMatrix(demand, d)
				}
				if err != nil {
					return err
				}
				return dc
			})
			dc, ok := shared.(*bipartite.DemandColoring)
			if !ok {
				return nil, fmt.Errorf("core: relayRoute(%s): coloring failed: %v", st.name, shared)
			}
			// The counts slice doubles as the per-cell unit cursor now that
			// the demand check is done.
			clear(counts)
			for _, it := range mine {
				b := int(pos[it.dst])
				k := counts[b]
				counts[b]++
				color, err := dc.ColorOfUnit(myIdx, b, k)
				if err != nil {
					return nil, fmt.Errorf("core: relayRoute(%s): %w", st.name, err)
				}
				c.stageOpen(color % size)
				c.stageWords(clique.Word(it.dst))
				c.stageWords(it.words...)
				c.stageClose()
			}
		}
	} else if len(mine) > 0 {
		return nil, fmt.Errorf("core: relayRoute(%s): items passed without a group", st.name)
	}

	// Round 1: items travel to their relays.
	rx, err := c.exchange()
	if err != nil {
		return nil, err
	}

	// Round 2: relays forward each item to its destination.
	for _, p := range rx.all() {
		if len(p) == 0 {
			continue
		}
		dst := int(p[0])
		if dst < 0 || dst >= size {
			return nil, fmt.Errorf("core: relayRoute(%s): relayed destination %d out of range", st.name, dst)
		}
		c.send(dst, p...)
	}
	rx, err = c.exchange()
	if err != nil {
		return nil, err
	}

	slot := c.itemSlot()
	received := *slot
	for _, p := range rx.all() {
		if len(p) == 0 {
			continue
		}
		received = append(received, item{dst: int(p[0]), words: p[1:]})
	}
	*slot = received
	return received, nil
}

// uniformDemand returns u > 0 if every cell of the square demand matrix
// holds exactly u, and 0 otherwise.
func uniformDemand(demand [][]int) int {
	u := demand[0][0]
	if u <= 0 {
		return 0
	}
	for _, row := range demand {
		for _, v := range row {
			if v != u {
				return 0
			}
		}
	}
	return u
}

// announceFixed implements the announcement pattern used throughout the
// paper ("each node in W announces ... to all nodes in W"): every group
// member sends the same number of payloads to every other group member, so
// the demand is uniform and known a priori, and Corollary 3.3 applies
// directly (2 rounds).
//
// perMember is the fixed number of payloads each member announces; callers
// pad with sentinel payloads when members have fewer real values. The return
// value lists, for each group position a, the payloads announced by that
// member (in unspecified order; payloads should carry their own indices when
// order matters). The returned word slices borrow the engine's receive arena
// (see item).
//
// Non-members pass a nil group and act as relays.
func announceFixed(c *comm, group []int, payloads [][]clique.Word, perMember int, st step) ([][][]clique.Word, error) {
	var mine []item
	var demand [][]int
	myIdx := -1
	if len(group) > 0 {
		for i, g := range group {
			if g == c.me {
				myIdx = i
				break
			}
		}
		if myIdx < 0 {
			return nil, fmt.Errorf("core: announceFixed(%s): node %d not in its group", st.name, c.ex.ID())
		}
		if len(payloads) != perMember {
			return nil, fmt.Errorf("core: announceFixed(%s): %d payloads, want %d", st.name, len(payloads), perMember)
		}
		demand = c.uniformDemandMatrix(len(group), perMember)
		// Each announced item is [myIdx, payload...]; the copies live in the
		// instance arena so no per-item allocation happens.
		slot := c.itemSlot()
		mine = *slot
		for _, dst := range group {
			for _, p := range payloads {
				mark := c.arenaMark()
				c.arena = append(c.arena, clique.Word(myIdx))
				c.arena = append(c.arena, p...)
				mine = append(mine, item{dst: dst, words: c.arenaView(mark)})
			}
		}
		*slot = mine
	}

	received, err := relayRoute(c, group, demand, mine, st)
	if err != nil {
		return nil, err
	}
	if len(group) == 0 {
		return nil, nil
	}
	// The result structure is carved from the comm's announcement scratch:
	// out's w buckets are fixed-capacity windows of the flat annRows arena
	// (every member announces exactly perMember items), so no per-bucket
	// growth allocation happens. The structure is only valid until the comm's
	// next announcement; both callers consume it immediately.
	w := len(group)
	rows := c.annRows
	if need := w * perMember; cap(rows) < need {
		rows = make([][]clique.Word, need)
		c.annRows = rows
	} else {
		rows = rows[:need]
	}
	out := c.annOut
	if cap(out) < w {
		out = make([][][]clique.Word, w)
		c.annOut = out
	} else {
		out = out[:w]
	}
	for a := 0; a < w; a++ {
		out[a] = rows[a*perMember : a*perMember : (a+1)*perMember]
	}
	for _, it := range received {
		if len(it.words) < 1 {
			return nil, fmt.Errorf("core: announceFixed(%s): malformed announcement", st.name)
		}
		a := int(it.words[0])
		if a < 0 || a >= len(group) {
			return nil, fmt.Errorf("core: announceFixed(%s): announcement from invalid group position %d", st.name, a)
		}
		if len(out[a]) == cap(out[a]) {
			return nil, fmt.Errorf("core: announceFixed(%s): member %d announced more than %d items", st.name, a, perMember)
		}
		out[a] = append(out[a], it.words[1:])
	}
	return out, nil
}

// announceIntVector announces one integer vector per group member to the
// whole group (Algorithm 2 Step 3, Corollary 3.5, Corollary 3.4 phase 1, ...).
// It returns all[a][t] = element t of the vector announced by group member a.
// The vector length must be identical at all members.
func announceIntVector(c *comm, group []int, vec []int, st step) ([][]int, error) {
	var payloads [][]clique.Word
	perMember := 0
	if len(group) > 0 {
		perMember = len(vec)
		payloads = make([][]clique.Word, 0, len(vec))
		for t, v := range vec {
			payloads = append(payloads, c.arenaAppend(clique.Word(t), clique.Word(v)))
		}
	}
	raw, err := announceFixed(c, group, payloads, perMember, st)
	if err != nil || len(group) == 0 {
		return nil, err
	}
	all := makeIntMatrix(len(group), len(vec))
	for a := range all {
		if len(raw[a]) != len(vec) {
			return nil, fmt.Errorf("core: announceIntVector(%s): member %d announced %d values, want %d", st.name, a, len(raw[a]), len(vec))
		}
		for _, p := range raw[a] {
			if len(p) < 2 {
				return nil, fmt.Errorf("core: announceIntVector(%s): malformed payload", st.name)
			}
			t := int(p[0])
			if t < 0 || t >= len(vec) {
				return nil, fmt.Errorf("core: announceIntVector(%s): index %d out of range", st.name, t)
			}
			all[a][t] = int(p[1])
		}
	}
	return all, nil
}

// groupRouteUnknown implements Corollary 3.4: four-round routing of items
// within a group when the demands are not known in advance. The first two
// rounds announce the per-destination counts (uniform demand, Corollary 3.3),
// which establishes the preconditions for delivering the items with another
// invocation of Corollary 3.3.
func groupRouteUnknown(c *comm, group []int, mine []item, st step) ([]item, error) {
	return groupRouteUnknownColored(c, group, mine, st, false)
}

// groupRouteUnknownColored is groupRouteUnknown with a choice of schedule
// coloring (see relayRouteColored).
func groupRouteUnknownColored(c *comm, group []int, mine []item, st step, greedy bool) ([]item, error) {
	w := len(group)
	var vec []int
	if w > 0 {
		pos := c.groupPositions(group)
		vec = make([]int, w)
		for _, it := range mine {
			b := int32(-1)
			if it.dst >= 0 && it.dst < c.size() {
				b = pos[it.dst]
			}
			if b < 0 {
				c.releasePositions(group)
				return nil, fmt.Errorf("core: groupRouteUnknown(%s): destination %d outside group", st.name, it.dst)
			}
			vec[b]++
		}
		c.releasePositions(group)
	}
	counts, err := announceIntVector(c, group, vec, st.sub("announce", kcAnnounce))
	if err != nil {
		return nil, err
	}
	var demand [][]int
	if w > 0 {
		demand = counts
	}
	return relayRouteColored(c, group, demand, mine, st.sub("deliver", kcDeliver), greedy)
}

// aggregateAndBroadcast makes slot sums globally known in two rounds: every
// member sends its contribution for slot k to the slot's aggregator (the
// member with local index k), the aggregator sums the contributions and
// broadcasts the result to all members. This is the pattern of Algorithm 2
// Step 1 and of the bucket-size aggregation used by the sorting pipeline.
//
// vals[b] is this node's contribution to slot base+b; every caller
// contributes a contiguous slot range (zero contributions included), which
// keeps the interface dense and allocation-free. numSlots must not exceed the
// comm size, so each member aggregates at most its own slot.
func aggregateAndBroadcast(c *comm, base int, vals []int64, numSlots int) ([]int64, error) {
	if !c.isMember() {
		return nil, fmt.Errorf("core: aggregateAndBroadcast: node %d is not a member", c.ex.ID())
	}
	for b, v := range vals {
		slot := base + b
		if slot < 0 || slot >= numSlots {
			return nil, fmt.Errorf("core: aggregateAndBroadcast: slot %d out of range", slot)
		}
		c.send(slot, clique.Word(slot), clique.Word(v))
	}
	rx, err := c.exchange()
	if err != nil {
		return nil, err
	}

	// Sum the contributions of the slot this node aggregates (its own index).
	var mySum int64
	for _, p := range rx.all() {
		if len(p) < 2 {
			continue
		}
		if slot := int(p[0]); slot != c.me || slot >= numSlots {
			return nil, fmt.Errorf("core: aggregateAndBroadcast: node %d received contribution for foreign slot %d", c.ex.ID(), int(p[0]))
		}
		mySum += int64(p[1])
	}
	if c.me < numSlots {
		for to := 0; to < c.size(); to++ {
			c.send(to, clique.Word(c.me), clique.Word(mySum))
		}
	}
	rx, err = c.exchange()
	if err != nil {
		return nil, err
	}
	out := make([]int64, numSlots)
	seen := c.cursors(numSlots)
	for _, p := range rx.all() {
		if len(p) < 2 {
			continue
		}
		slot := int(p[0])
		if slot < 0 || slot >= numSlots {
			return nil, fmt.Errorf("core: aggregateAndBroadcast: broadcast slot %d out of range", slot)
		}
		out[slot] = int64(p[1])
		seen[slot] = 1
	}
	for slot, ok := range seen {
		if ok == 0 {
			return nil, fmt.Errorf("core: aggregateAndBroadcast: slot %d never broadcast", slot)
		}
	}
	return out, nil
}

// spreadBroadcast makes a set of slot payloads globally known in two rounds:
// the holder of slot k sends it to member k mod size, which broadcasts it to
// everyone. held[k] is the payload of slot k at its (unique) holder, nil
// everywhere else. This is the delimiter announcement of Algorithm 4 Step 4.
// The returned payloads borrow the engine's receive arena (valid for the
// grace window); absent slots come back nil.
func spreadBroadcast(c *comm, held []clique.Packet, numSlots int) ([]clique.Packet, error) {
	if !c.isMember() {
		return nil, fmt.Errorf("core: spreadBroadcast: node %d is not a member", c.ex.ID())
	}
	size := c.size()
	for slot, payload := range held {
		if payload == nil {
			continue
		}
		if slot >= numSlots {
			return nil, fmt.Errorf("core: spreadBroadcast: slot %d out of range", slot)
		}
		c.stageOpen(slot % size)
		c.stageWords(clique.Word(slot))
		c.stageWords(payload...)
		c.stageClose()
	}
	rx, err := c.exchange()
	if err != nil {
		return nil, err
	}
	for _, p := range rx.all() {
		if len(p) < 1 {
			continue
		}
		slot := int(p[0])
		if slot%size != c.me {
			return nil, fmt.Errorf("core: spreadBroadcast: node %d relayed foreign slot %d", c.ex.ID(), slot)
		}
		for to := 0; to < size; to++ {
			c.send(to, p...)
		}
	}
	rx, err = c.exchange()
	if err != nil {
		return nil, err
	}
	out := make([]clique.Packet, numSlots)
	for _, p := range rx.all() {
		if len(p) < 1 {
			continue
		}
		slot := int(p[0])
		if slot < 0 || slot >= numSlots {
			return nil, fmt.Errorf("core: spreadBroadcast: broadcast slot %d out of range", slot)
		}
		out[slot] = clique.Packet(p[1:])
	}
	// Slots nobody held simply stay absent; callers decide whether that is an
	// error (the delimiter announcement of Algorithm 4 tolerates it when there
	// are fewer samples than groups).
	return out, nil
}

// balancePlan is the local redistribution pattern of Algorithm 1 Step 3 and
// Algorithm 2 Step 4: given how many items of each class every group member
// holds, it assigns each item a target member such that afterwards every
// member holds an (almost) equal number of items of every class. The
// assignment is derived from a König coloring of the member-by-class demand
// matrix: the item of color c moves to member c mod w (the paper's rule).
type balancePlan struct {
	coloring *bipartite.DemandColoring
	w        int
}

// newBalancePlan builds the plan from counts[a][t] = number of class-t items
// held by group member a. The matrix is squared up with zero rows/columns if
// the number of classes differs from the group size. group discriminates
// concurrent groups sharing the step key.
func newBalancePlan(c *comm, counts [][]int, w int, st step, group int32) (*balancePlan, error) {
	numClasses := 0
	for _, row := range counts {
		if len(row) > numClasses {
			numClasses = len(row)
		}
	}
	dim := len(counts)
	if numClasses > dim {
		dim = numClasses
	}
	square := makeIntMatrix(dim, dim)
	for i := range square {
		if i < len(counts) {
			copy(square[i], counts[i])
		}
	}
	d := bipartite.MaxRowColSum(square)
	if d == 0 {
		d = 1
	}
	shared := c.shared(st.key, group, func() interface{} {
		dc, err := bipartite.ColorDemandMatrix(square, d)
		if err != nil {
			return err
		}
		return dc
	})
	dc, ok := shared.(*bipartite.DemandColoring)
	if !ok {
		return nil, fmt.Errorf("core: balance plan (%s): %v", st.name, shared)
	}
	return &balancePlan{coloring: dc, w: w}, nil
}

// target returns the group position that the k-th class-t item of member a
// must move to.
func (p *balancePlan) target(a, t, k int) (int, error) {
	color, err := p.coloring.ColorOfUnit(a, t, k)
	if err != nil {
		return 0, err
	}
	return color % p.w, nil
}

// moveDemand returns the member-to-member demand matrix induced by the plan,
// which is what Corollary 3.3 needs to execute the redistribution. Instead
// of resolving every unit's color individually (O(units) coloring lookups),
// it walks each cell's color runs once: a run of consecutive colors spreads
// over the residues modulo w in full cycles plus one extra for the first
// span%w residues — the same arithmetic as countUnitsByResidue.
func (p *balancePlan) moveDemand(counts [][]int) ([][]int, error) {
	w := p.w
	demand := makeIntMatrix(w, w)
	for a := range counts {
		for t := range counts[a] {
			n := counts[a][t]
			if n == 0 {
				continue
			}
			row := demand[a]
			unit := 0
			for _, run := range p.coloring.Runs[a][t] {
				if unit >= n {
					break
				}
				span := run.Len
				if span > n-unit {
					span = n - unit
				}
				if full := span / w; full > 0 {
					for b := 0; b < w; b++ {
						row[b] += full
					}
				}
				for k := 0; k < span%w; k++ {
					row[(run.Start+k)%w]++
				}
				unit += span
			}
			if unit < n {
				return nil, fmt.Errorf("core: balance plan cell (%d,%d) has only %d units, need %d", a, t, unit, n)
			}
		}
	}
	return demand, nil
}
