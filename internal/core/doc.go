// Package core implements the algorithms of Lenzen, "Optimal Deterministic
// Routing and Sorting on the Congested Clique" (PODC 2013).
//
// The package provides, as functions executed by every node of a simulated
// congested clique (package internal/clique):
//
//   - the Information Distribution Task of Problem 3.1 solved by Algorithm 1
//     and Algorithm 2 in 16 rounds (Theorem 3.7), including the non-square-n
//     construction,
//   - the low-computation 12-round variant of Section 5 (Theorem 5.4),
//   - the sorting algorithm of Problem 4.1 solved by Algorithms 3 and 4 in 37
//     rounds (Theorem 4.5),
//   - the rank-in-union variant, selection and mode (Corollary 4.6),
//   - the small-key counting protocol of Section 6.3,
//   - the demand-aware routing planner (planner.go, not part of the paper):
//     PlanRoute classifies an instance and AutoRoute dispatches it to a
//     direct-send, scatter/broadcast or zero-round fast path when demand is
//     sparse or one-to-many, and to the unchanged Theorem 3.7 pipeline
//     otherwise. The dispatch rule is specified in ARCHITECTURE.md.
//
// The building blocks mirror the paper's structure: Corollary 3.3 (two-round
// routing with publicly known demands, relayRoute) and Corollary 3.4
// (four-round routing with unknown demands inside a group, groupRouteUnknown)
// are implemented once and reused by every algorithm, exactly as in the
// paper. All schedule computations (edge colorings of demand matrices) are
// deterministic, so nodes agree on them without communication.
//
// # Flat-frame wire format
//
// All communication goes through the comm type's flat-frame pipeline: every
// logical model message a node sends to one neighbor in one round is staged
// into a per-instance log and flushed as a single physical packet per busy
// edge, the frame
//
//	[count, len_1, msg_1 words..., ..., len_count, msg_count words...]
//
// The count and len_i words are simulator bookkeeping, not model traffic:
// frames are handed to the engine with SendFramed(count, Σ len_i), so all
// engine statistics (Stats.MaxEdgeWords, MaxEdgeMessages, TotalMessages,
// TotalWords, the strict bandwidth budget) are identical to sending the
// count messages as individual packets. Batching is an encoding, never an
// algorithmic change — the stats_invariants tests in the root package pin
// this against goldens captured from the per-parcel implementation.
//
// On physical nodes the receive side uses the engine's flat inbox
// (clique.Node.ExchangeFlat): delivery hands the round's traffic as raw
// [from, len, payload...] records which comm.exchange decodes in one sweep.
// Virtual nodes (clique.Mux instances) fall back to the boxed Inbox path.
//
// # Arena ownership and lifetime rules
//
// Three kinds of memory back the words protocol code touches; retaining a
// decoded slice beyond its window is a bug:
//
//   - Engine receive memory. Messages decoded from an exchange (rxBuf views,
//     relayRoute items, announceFixed payloads, spreadBroadcast packets)
//     point into the engine's receive arena. They are valid for
//     clique.PayloadGraceRounds further barriers of the instance that
//     received them; every constant-round primitive re-stages or decodes
//     them within that window. Concurrently multiplexed instances keep
//     advancing the physical barrier, so a sub-instance that finishes early
//     must not hand engine-backed views upward.
//
//   - Instance arena memory. comm.arenaAppend/arenaHeld copy words into the
//     instance-owned arena. Views stay valid across appends (growth is
//     append-only) until comm.release hands the arena to the pool; arenaReset
//     truncates it at pipeline points where no views are live. Parcels
//     returned by routeParcels are arena-backed for exactly this reason:
//     they outlive the engine's grace window, and the comm's creator
//     consumes them before releasing the comm.
//
//   - Staging memory. The staging log and frame buffer are recycled every
//     round; the engine copies frame contents at the barrier, so nothing may
//     retain them across an exchange.
//
// comm.release returns all of it to a process-wide pool; it is only legal
// once the instance's results have been copied into caller-owned values.
// Sub-instances whose arena-backed parcels flow upward (the V1/V2/corner
// routers of Theorem 3.7's decomposition) are never released and fall to the
// garbage collector instead.
package core
