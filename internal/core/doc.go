// Package core implements the algorithms of Lenzen, "Optimal Deterministic
// Routing and Sorting on the Congested Clique" (PODC 2013).
//
// The package provides, as functions executed by every node of a simulated
// congested clique (package internal/clique):
//
//   - the Information Distribution Task of Problem 3.1 solved by Algorithm 1
//     and Algorithm 2 in 16 rounds (Theorem 3.7), including the non-square-n
//     construction,
//   - the low-computation 12-round variant of Section 5 (Theorem 5.4),
//   - the sorting algorithm of Problem 4.1 solved by Algorithms 3 and 4 in 37
//     rounds (Theorem 4.5),
//   - the rank-in-union variant, selection and mode (Corollary 4.6),
//   - the small-key counting protocol of Section 6.3.
//
// The building blocks mirror the paper's structure: Corollary 3.3 (two-round
// routing with publicly known demands, relayRoute) and Corollary 3.4
// (four-round routing with unknown demands inside a group, groupRouteUnknown)
// are implemented once and reused by every algorithm, exactly as in the
// paper. All schedule computations (edge colorings of demand matrices) are
// deterministic, so nodes agree on them without communication.
package core
