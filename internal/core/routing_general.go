package core

import (
	"fmt"

	"congestedclique/internal/clique"
)

// routeGeneral implements the non-perfect-square case of Theorem 3.7. With
// s = floor(sqrt(m)) it considers
//
//	V1 = the first s^2 members,
//	V2 = the last  s^2 members,
//
// which overlap in the middle. Parcels with both endpoints in V1 are routed
// by Algorithm 1 on V1; parcels with both endpoints in V2 (and not already
// handled) are routed by Algorithm 1 on V2; the remaining "corner" parcels
// (one endpoint among the first m-s^2 members, the other among the last
// m-s^2) are routed by the paper's 6-round boundary procedure. The three
// instances run concurrently on the virtual multiplexer, so the total round
// count stays 16 while the per-edge load grows by a constant factor only —
// exactly the trade-off stated in the proof of Theorem 3.7.
func routeGeneral(c *comm, parcels []parcel, st step) ([]parcel, error) {
	m := c.size()
	s := isqrt(m)
	square := s * s
	r := m - square // size of V1\V2 and of V2\V1
	if r <= 0 || 2*square < m {
		return nil, fmt.Errorf("core: routeGeneral invariants violated for m=%d", m)
	}

	v1 := make([]int, square) // global ids of the first s^2 members
	v2 := make([]int, square) // global ids of the last  s^2 members
	for i := 0; i < square; i++ {
		v1[i] = c.global(i)
		v2[i] = c.global(r + i)
	}

	// Partition my parcels by sub-instance.
	var parcels1, parcels2, corner []parcel
	for _, p := range parcels {
		srcLocal := c.me
		dstLocal, _ := c.localOf(p.Dst)
		switch {
		case srcLocal < square && dstLocal < square:
			parcels1 = append(parcels1, p)
		case srcLocal >= r && dstLocal >= r:
			parcels2 = append(parcels2, p)
		default:
			corner = append(corner, p)
		}
	}

	const (
		instV1 = iota + 1
		instV2
		instCorner
	)

	var out1, out2, outCorner []parcel
	mux := clique.NewMux(c.ex)
	programs := map[int]func(clique.Exchanger) error{
		instCorner: func(ex clique.Exchanger) error {
			res, err := routeCorner(ex, c, r, square, corner, st.sub("corner", kcCorner))
			if err != nil {
				return err
			}
			outCorner = res
			return nil
		},
	}
	if c.me < square {
		programs[instV1] = func(ex clique.Exchanger) error {
			sub, err := newComm(ex, c.label+"/v1", v1)
			if err != nil {
				return err
			}
			res, err := routeSquare(sub, parcels1, st.sub("v1", kcV1), nil, nil)
			if err != nil {
				return err
			}
			out1 = res
			return nil
		}
	}
	if c.me >= r {
		programs[instV2] = func(ex clique.Exchanger) error {
			sub, err := newComm(ex, c.label+"/v2", v2)
			if err != nil {
				return err
			}
			res, err := routeSquare(sub, parcels2, st.sub("v2", kcV2), nil, nil)
			if err != nil {
				return err
			}
			out2 = res
			return nil
		}
	}
	if err := mux.Run(programs); err != nil {
		return nil, fmt.Errorf("%s: %w", st.name, err)
	}

	out := make([]parcel, 0, len(out1)+len(out2)+len(outCorner))
	out = append(out, out1...)
	out = append(out, out2...)
	out = append(out, outCorner...)
	return out, nil
}

// routeCorner is the 6-round boundary procedure from the proof of
// Theorem 3.7. It delivers the parcels whose source lies in V1\V2 and whose
// destination lies in V2\V1, or vice versa. parent is the enclosing comm
// (used to translate node identifiers); the procedure itself runs on all m
// members through the multiplexed Exchanger ex.
//
//	Round 1: every corner source spreads its corner parcels, one per node.
//	Round 2: every node forwards the parcels it relays, one per member of the
//	         corner set the parcel is destined to.
//	Rounds 3-6: Corollary 3.4 delivers inside V1\V2 and V2\V1 concurrently.
func routeCorner(ex clique.Exchanger, parent *comm, r, square int, corner []parcel, st step) ([]parcel, error) {
	sub := fullCommOn(ex, parent, parent.label+"/corner")
	m := sub.size()

	// Round 1: spread my corner parcels across all nodes.
	for j, p := range corner {
		dstLocal, ok := sub.localOf(p.Dst)
		if !ok {
			return nil, fmt.Errorf("%s: destination %d not a member", st.name, p.Dst)
		}
		sub.sendHeld(j%m, held{dstLocal: dstLocal, src: p.Src, payload: p.Words})
	}
	relayLoad, err := collectHeld(sub, st.name, "round1")
	if err != nil {
		return nil, err
	}

	// Round 2: deal the relayed parcels round-robin over the members of the
	// corner set they are destined to (V1\V2 occupies local indices [0,r),
	// V2\V1 occupies [square, m)).
	left, right := 0, 0
	for _, h := range relayLoad {
		switch {
		case h.dstLocal < r:
			sub.sendHeld(left%r, h)
			left++
		case h.dstLocal >= square:
			sub.sendHeld(square+right%r, h)
			right++
		default:
			return nil, fmt.Errorf("%s round2: corner parcel destined to overlap node %d", st.name, h.dstLocal)
		}
	}
	dealt, err := collectHeld(sub, st.name, "round2")
	if err != nil {
		return nil, err
	}

	// Rounds 3-6: Corollary 3.4 inside each corner set.
	var group []int
	switch {
	case sub.me < r:
		group = make([]int, r)
		for i := range group {
			group[i] = i
		}
	case sub.me >= square:
		group = make([]int, r)
		for i := range group {
			group[i] = square + i
		}
	}
	itemsSlot := sub.itemSlot()
	items := *itemsSlot
	for _, h := range dealt {
		items = append(items, item{dst: h.dstLocal, words: sub.arenaHeld(h)})
	}
	*itemsSlot = items
	if len(items) > 0 && group == nil {
		return nil, fmt.Errorf("%s round3: overlap node %d holds corner parcels", st.name, sub.ex.ID())
	}
	received, err := groupRouteUnknown(sub, group, items, st.sub("deliver", kcCornerDeliver))
	if err != nil {
		return nil, fmt.Errorf("%s rounds3-6: %w", st.name, err)
	}
	return heldItemsToParcels(sub, received, "corner deliver")
}

// fullCommOn rebuilds the parent's member universe on top of a (possibly
// virtual) Exchanger. The member lists are identical, only the communication
// surface differs.
func fullCommOn(ex clique.Exchanger, parent *comm, label string) *comm {
	c, err := newComm(ex, label, parent.members)
	if err != nil {
		// Cannot happen: the parent's member list is already validated.
		panic(err)
	}
	return c
}
