package core

import (
	"fmt"
	"slices"

	"congestedclique/internal/clique"
)

// This file implements the sparse step-mode executor for planned routing
// instances: the engine-driven (RunRounds) counterpart of AutoRoute for the
// strategies SparseStepCapable admits — empty, direct and broadcast — plus
// the charged route census. The wire behaviour is byte-identical to the
// blocking executors in planner.go and census.go: the same packets and frames
// on the same edges in the same rounds, the same SendFramed model accounting
// and the same error strings, so Stats and results match the dense path bit
// for bit wherever both run. What changes is memory: no per-node goroutine
// stack, no length-n per-node slice (directRoute's byDst, broadcastRoute's
// held, the census count array) — every node's state is proportional to its
// own traffic, and the run's only O(n) allocations are flat index tables.
//
// Round mapping. With the census armed, step rounds 0..2 carry the three
// census exchanges (R1 counts, R2 aggregates, R3 verdict) and the verdict is
// verified at the start of step round 3, which doubles as the strategy's
// round 0 — exactly the schedule the blocking path produces with its census
// exchanges followed by the strategy's own. Strategy rounds:
//
//	direct     round 0: frames out          round 1: decode, done
//	broadcast  round 0: scatter             round 1: build held, relay 0
//	           round 1+r: accumulate, relay r (r < RelayRounds)
//	           round 1+RelayRounds: accumulate, done
//	empty      round 0: done
type SparseRouteRun struct {
	n    int
	plan RoutePlan
	sd   *SparseDemand
	off  int // census rounds preceding the strategy phase

	// grouped mirrors sd.Entries with each row stably sorted by destination
	// (submission order preserved within a destination); built only when the
	// direct path or the census needs per-destination runs.
	grouped []SparseEntry

	nodes []sparseRouteNode
	outs  [][]Message
}

// sparseRouteNode is the per-node state of a run: census receive total and
// the broadcast path's held/received accumulators. All slices are sized by
// the node's own traffic.
type sparseRouteNode struct {
	recvTotal int

	held      []Message // broadcast: held messages, grouped by ascending dst
	heldStart []int32   // group boundaries into held
	received  []Message
	relayBuf  []clique.Word
}

// NewSparseRouteRun prepares a step-mode execution of plan over sd. The plan
// must be PlanRouteSparse (equivalently PlanRoute) of the same instance and
// its strategy must be SparseStepCapable.
func NewSparseRouteRun(sd *SparseDemand, plan RoutePlan) (*SparseRouteRun, error) {
	if !SparseStepCapable(plan.Strategy) {
		return nil, fmt.Errorf("core: sparse route: strategy %v requires the blocking scheduler", plan.Strategy)
	}
	if plan.N != sd.N() {
		return nil, fmt.Errorf("core: plan computed for n=%d executed on n=%d", plan.N, sd.N())
	}
	run := &SparseRouteRun{
		n:     sd.N(),
		plan:  plan,
		sd:    sd,
		nodes: make([]sparseRouteNode, sd.N()),
		outs:  make([][]Message, sd.N()),
	}
	if plan.Census {
		run.off = RouteCensusRounds
	}
	if plan.Census || plan.Strategy == StrategyDirect {
		run.grouped = make([]SparseEntry, len(sd.Entries))
		copy(run.grouped, sd.Entries)
		for r := range sd.Sources {
			seg := run.grouped[sd.RowStart[r]:sd.RowStart[r+1]]
			slices.SortStableFunc(seg, func(a, b SparseEntry) int { return int(a.Dst) - int(b.Dst) })
		}
	}
	return run, nil
}

// groupedRow returns node's entries sorted by destination (nil when the run
// did not need grouping or the node is inactive).
func (run *SparseRouteRun) groupedRow(node int) []SparseEntry {
	r := run.sd.rowOf[node]
	if r < 0 || run.grouped == nil {
		return nil
	}
	return run.grouped[run.sd.RowStart[r]:run.sd.RowStart[r+1]]
}

// Output returns the messages delivered to node (sorted by Src, Dst, Seq),
// valid after the run completes successfully.
func (run *SparseRouteRun) Output(node int) []Message { return run.outs[node] }

// Rounds returns the total step rounds the run will use (census included).
func (run *SparseRouteRun) Rounds() int { return run.off + run.plan.Rounds() }

// Step is the clique.StepFunc of the run: every node executes it once per
// round under RunRounds.
func (run *SparseRouteRun) Step(nd *clique.Node, round int, inbox clique.Inbox) (bool, error) {
	if round < run.off {
		return false, run.censusStep(nd, round, inbox)
	}
	if run.off > 0 && round == run.off {
		if err := run.censusVerify(nd, inbox); err != nil {
			return true, err
		}
	}
	sround := round - run.off
	switch run.plan.Strategy {
	case StrategyEmpty:
		if row := run.sd.Row(nd.ID()); len(row) != 0 {
			return true, fmt.Errorf("core: empty plan but node %d holds %d messages", nd.ID(), len(row))
		}
		return true, nil
	case StrategyDirect:
		return run.directStep(nd, sround, inbox)
	case StrategyBroadcast:
		return run.broadcastStep(nd, sround, inbox)
	default:
		return true, fmt.Errorf("core: unknown route strategy %v", run.plan.Strategy)
	}
}

// censusStep executes census rounds 0..2: the same three exchanges as
// runRouteCensus, with the per-destination counts read off the grouped row
// instead of a dense length-n array.
func (run *SparseRouteRun) censusStep(nd *clique.Node, round int, inbox clique.Inbox) error {
	n := run.n
	id := nd.ID()
	st := &run.nodes[id]
	switch round {
	case 0:
		// R1: transpose the demand counts, one word per busy destination.
		grouped := run.groupedRow(id)
		buf := make([]clique.Word, 0, len(grouped))
		for i := 0; i < len(grouped); {
			j := i
			for j < len(grouped) && grouped[j].Dst == grouped[i].Dst {
				j++
			}
			buf = append(buf, clique.Word(j-i))
			nd.Send(int(grouped[i].Dst), clique.Packet(buf[len(buf)-1:]))
			i = j
		}
	case 1:
		// Decode R1, report aggregates to node 0.
		for from := 0; from < len(inbox); from++ {
			for _, p := range inbox[from] {
				if len(p) < 1 {
					return fmt.Errorf("core: census: malformed count message")
				}
				st.recvTotal += int(p[0])
			}
		}
		grouped := run.groupedRow(id)
		rowPairMax := 0
		for i := 0; i < len(grouped); {
			j := i
			for j < len(grouped) && grouped[j].Dst == grouped[i].Dst {
				j++
			}
			if j-i > rowPairMax {
				rowPairMax = j - i
			}
			i = j
		}
		row := run.sd.Row(id)
		nd.Send(0, clique.Packet{
			clique.Word(len(row)),
			clique.Word(st.recvTotal),
			clique.Word(rowPairMax),
			clique.Word(sparseRowHash(row)),
		})
	case 2:
		// Node 0 folds the fingerprint, recomputes the dispatch and
		// broadcasts the verdict.
		if id != 0 {
			return nil
		}
		total, maxPair, activeSources := 0, 0, 0
		h := uint64(fnvOffset64)
		for from := 0; from < n; from++ {
			if from >= len(inbox) || len(inbox[from]) != 1 || len(inbox[from][0]) != 4 {
				return fmt.Errorf("core: census: node 0 missing aggregate from node %d", from)
			}
			p := inbox[from][0]
			sendTotal := int(p[0])
			total += sendTotal
			if sendTotal > 0 {
				activeSources++
			}
			if int(p[2]) > maxPair {
				maxPair = int(p[2])
			}
			h = foldRows(h, sendTotal, uint64(p[3]))
		}
		strategy := routeStrategyFromCensus(n, total, maxPair, activeSources, run.plan.relayRoundsCensus)
		verdict := clique.Packet{clique.Word(strategy), clique.Word(run.plan.relayRoundsCensus), clique.Word(h)}
		for to := 0; to < n; to++ {
			nd.Send(to, verdict)
		}
	}
	return nil
}

// censusVerify checks the broadcast verdict against the plan at step round 3,
// with the exact disagreement diagnostics of the blocking census.
func (run *SparseRouteRun) censusVerify(nd *clique.Node, inbox clique.Inbox) error {
	plan := run.plan
	if len(inbox) == 0 || len(inbox[0]) != 1 || len(inbox[0][0]) != 3 {
		return fmt.Errorf("core: census: node %d missing verdict broadcast", nd.ID())
	}
	verdict := inbox[0][0]
	if RouteStrategy(verdict[0]) != plan.Strategy {
		return fmt.Errorf("core: census: distributed verdict %v disagrees with plan %v at node %d",
			RouteStrategy(verdict[0]), plan.Strategy, nd.ID())
	}
	if int(verdict[1]) != plan.relayRoundsCensus {
		return fmt.Errorf("core: census: relay rounds %d disagree with plan %d", int(verdict[1]), plan.relayRoundsCensus)
	}
	if plan.CensusHasFP && uint64(verdict[2]) != plan.CensusFP {
		return fmt.Errorf("core: census: instance fingerprint %x disagrees with plan fingerprint %x at node %d",
			uint64(verdict[2]), plan.CensusFP, nd.ID())
	}
	return nil
}

// directStep is directRoute as a step program: one frame per busy
// (source, destination) pair in strategy round 0, decode in round 1.
func (run *SparseRouteRun) directStep(nd *clique.Node, sround int, inbox clique.Inbox) (bool, error) {
	id := nd.ID()
	switch sround {
	case 0:
		grouped := run.groupedRow(id)
		if len(grouped) == 0 {
			return false, nil
		}
		// One backing buffer for all frames: pre-sized exactly, so appends
		// never reallocate and the frame views handed to the engine stay
		// valid until delivery.
		buf := make([]clique.Word, 0, len(grouped)*directWordsPerMessage)
		for i := 0; i < len(grouped); {
			j := i
			for j < len(grouped) && grouped[j].Dst == grouped[i].Dst {
				j++
			}
			if j-i > DirectMaxMultiplicity {
				return true, fmt.Errorf("core: node %d holds %d messages for node %d, the direct plan allows %d",
					id, DirectMaxMultiplicity+1, int(grouped[i].Dst), DirectMaxMultiplicity)
			}
			pos := len(buf)
			for _, e := range grouped[i:j] {
				buf = append(buf, clique.Word(e.Seq), e.Payload)
			}
			frame := clique.Packet(buf[pos:len(buf):len(buf)])
			nd.SendFramed(int(grouped[i].Dst), frame, j-i, len(frame))
			i = j
		}
		return false, nil
	default:
		var received []Message
		for from := 0; from < len(inbox); from++ {
			for _, p := range inbox[from] {
				if len(p)%directWordsPerMessage != 0 {
					return true, fmt.Errorf("core: malformed direct frame with %d words", len(p))
				}
				for i := 0; i < len(p); i += directWordsPerMessage {
					received = append(received, Message{Src: from, Dst: id, Seq: int(p[i]), Payload: p[i+1]})
				}
			}
		}
		sortMessages(received)
		run.outs[id] = received
		return true, nil
	}
}

// broadcastStep is broadcastRoute as a step program: scatter in strategy
// round 0, held-group assembly plus the first relay round in round 1, then
// one relay round per step until RelayRounds are done.
func (run *SparseRouteRun) broadcastStep(nd *clique.Node, sround int, inbox clique.Inbox) (bool, error) {
	n := run.n
	id := nd.ID()
	st := &run.nodes[id]
	relayRounds := run.plan.RelayRounds
	switch {
	case sround == 0:
		row := run.sd.Row(id)
		if len(row) == 0 {
			return false, nil
		}
		buf := make([]clique.Word, 0, len(row)*relayWordsPerMessage)
		for k, e := range row {
			pos := len(buf)
			buf = append(buf, clique.Word(e.Dst), clique.Word(e.Seq), e.Payload)
			nd.Send((id+k)%n, clique.Packet(buf[pos:len(buf):len(buf)]))
		}
		return false, nil
	case sround == 1:
		// Assemble the held groups from the scatter round. A stable sort by
		// destination reproduces the dense path's per-destination append
		// order (ascending sender, packet order within a sender).
		for from := 0; from < len(inbox); from++ {
			for _, p := range inbox[from] {
				if len(p) < relayWordsPerMessage {
					return true, fmt.Errorf("core: malformed scattered message with %d words", len(p))
				}
				dst := int(p[0])
				if dst < 0 || dst >= n {
					return true, fmt.Errorf("core: scattered destination %d out of range", dst)
				}
				st.held = append(st.held, Message{Src: from, Dst: dst, Seq: int(p[1]), Payload: p[2]})
			}
		}
		slices.SortStableFunc(st.held, func(a, b Message) int { return a.Dst - b.Dst })
		st.heldStart = append(st.heldStart, 0)
		for i := 0; i < len(st.held); {
			j := i
			for j < len(st.held) && st.held[j].Dst == st.held[i].Dst {
				j++
			}
			if j-i > relayRounds {
				return true, fmt.Errorf("core: relay %d holds %d messages for node %d, broadcast plan allows %d",
					id, relayRounds+1, st.held[i].Dst, relayRounds)
			}
			st.heldStart = append(st.heldStart, int32(j))
			i = j
		}
		if relayRounds == 0 {
			run.outs[id] = nil
			return true, nil
		}
		st.relayBuf = make([]clique.Word, 0, relayWordsPerMessage*(len(st.heldStart)-1))
		run.relaySends(nd, st, 0)
		return false, nil
	default:
		r := sround - 2 // the relay round whose traffic this inbox carries
		for from := 0; from < len(inbox); from++ {
			for _, p := range inbox[from] {
				if len(p) < relayWordsPerMessage {
					return true, fmt.Errorf("core: malformed relayed message with %d words", len(p))
				}
				st.received = append(st.received, Message{Src: int(p[0]), Dst: id, Seq: int(p[1]), Payload: p[2]})
			}
		}
		if r+1 < relayRounds {
			run.relaySends(nd, st, r+1)
			return false, nil
		}
		sortMessages(st.received)
		run.outs[id] = st.received
		return true, nil
	}
}

// relaySends emits relay round r: for every held destination group (ascending
// dst) with more than r messages, the r-th one travels over the relay's own
// edge to the destination. The packet buffer is reused across relay rounds —
// the engine has copied the previous round's payloads at its delivery.
func (run *SparseRouteRun) relaySends(nd *clique.Node, st *sparseRouteNode, r int) {
	buf := st.relayBuf[:0]
	for g := 0; g+1 < len(st.heldStart); g++ {
		lo, hi := int(st.heldStart[g]), int(st.heldStart[g+1])
		if r < hi-lo {
			m := st.held[lo+r]
			pos := len(buf)
			buf = append(buf, clique.Word(m.Src), clique.Word(m.Seq), m.Payload)
			nd.Send(m.Dst, clique.Packet(buf[pos:len(buf):len(buf)]))
		}
	}
	st.relayBuf = buf
}
