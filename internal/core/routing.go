package core

import (
	"fmt"

	"congestedclique/internal/bipartite"
	"congestedclique/internal/clique"
)

// parcel is the unit of the Information Distribution Task in its general
// form: a constant number of payload words that must travel from Src to Dst
// (both global node identifiers). The paper's messages of O(log n) bits are
// parcels with a bounded number of words; the sorting pipeline reuses the
// same machinery to move bundles of keys.
//
// Parcel payloads returned by routeParcels borrow instance-owned or
// engine-owned memory (valid for the engine's payload grace window); callers
// consume or copy them immediately.
type parcel struct {
	Src   int
	Dst   int
	Words []clique.Word
}

// Route is the per-node entry point for the Information Distribution Task
// (Problem 3.1): every node calls Route with the messages it wants delivered
// and receives back the messages addressed to it. It implements Theorem 3.7:
// a deterministic solution in at most 16 communication rounds.
//
//   - If n is a perfect square, Algorithm 1 runs directly (16 rounds).
//   - If n is small (below routeTrivialThreshold), the whole clique is
//     treated as a single group of Corollary 3.4 (4 rounds).
//   - Otherwise the paper's V1/V2/V3 decomposition runs the two square
//     sub-instances and the 6-round boundary procedure concurrently through
//     the virtual multiplexer, so the total stays 16 rounds at the cost of a
//     constant-factor increase in message size.
func Route(ex clique.Exchanger, msgs []Message) ([]Message, error) {
	return routeWithSchedule(ex, msgs, nil, nil)
}

// routeWithSchedule is Route with an optional cached announcement schedule
// (executed instead of the announcement exchanges) or an optional capture
// target (filled during the announcement exchanges). See RouteSchedule.
func routeWithSchedule(ex clique.Exchanger, msgs []Message, sched, capture *RouteSchedule) ([]Message, error) {
	c := fullComm(ex, fmt.Sprintf("route@r%d", ex.Round()))
	defer c.release()
	parcels := make([]parcel, 0, len(msgs))
	for _, m := range msgs {
		parcels = append(parcels, parcel{Src: m.Src, Dst: m.Dst, Words: c.arenaAppend(clique.Word(m.Seq), m.Payload)})
	}
	received, err := routeParcelsSched(c, parcels, rootStep("thm3.7"), sched, capture)
	if err != nil {
		return nil, err
	}
	out := make([]Message, 0, len(received))
	for _, p := range received {
		if len(p.Words) < 2 {
			return nil, fmt.Errorf("core: malformed routed message with %d payload words", len(p.Words))
		}
		out = append(out, Message{Src: p.Src, Dst: p.Dst, Seq: int(p.Words[0]), Payload: p.Words[1]})
	}
	sortMessages(out)
	return out, nil
}

// routeTrivialThreshold is the clique size below which the V1/V2/V3
// decomposition degenerates; such instances are routed as a single
// Corollary 3.4 group instead.
const routeTrivialThreshold = 9

// routeParcels dispatches between the perfect-square algorithm, the
// tiny-clique fallback and the general decomposition. Every member of the
// comm must call it in the same round.
func routeParcels(c *comm, parcels []parcel, st step) ([]parcel, error) {
	return routeParcelsSched(c, parcels, st, nil, nil)
}

// routeParcelsSched is routeParcels with an optional cached or to-be-captured
// announcement schedule. Schedules only exist for the perfect-square
// algorithm (NewRouteScheduleCapture refuses other sizes); the other branches
// ignore them.
func routeParcelsSched(c *comm, parcels []parcel, st step, sched, capture *RouteSchedule) ([]parcel, error) {
	if err := validateParcels(c, parcels); err != nil {
		return nil, err
	}
	m := c.size()
	switch {
	case m == 1:
		return parcels, nil
	case m < routeTrivialThreshold:
		return routeTiny(c, parcels, st.sub("tiny", kcTiny))
	case isPerfectSquare(m):
		return routeSquare(c, parcels, st.sub("square", kcSquare), sched, capture)
	default:
		return routeGeneral(c, parcels, st.sub("general", kcGeneral))
	}
}

// validateParcels checks that every parcel source is this node and every
// destination is a member of the instance.
func validateParcels(c *comm, parcels []parcel) error {
	for _, p := range parcels {
		if p.Src != c.ex.ID() {
			return fmt.Errorf("core: parcel (%d->%d) submitted by node %d", p.Src, p.Dst, c.ex.ID())
		}
		if _, ok := c.localOf(p.Dst); !ok {
			return fmt.Errorf("core: parcel destination %d is not a member of instance %q", p.Dst, c.label)
		}
	}
	return nil
}

// held is a parcel in transit together with the bookkeeping Algorithm 2
// attaches to it: the destination as a local index of the enclosing comm and
// the intermediate set assigned by the set-level coloring.
//
// Wire layout: [dstLocal, interSet, src, payload...]. The payload borrows
// whatever buffer the parcel was decoded from (engine receive arena or
// instance arena); every pipeline hop re-stages it into fresh frames within
// the engine's grace window.
type held struct {
	dstLocal int
	interSet int
	src      int
	payload  []clique.Word
}

func decodeHeldParcel(w []clique.Word, c *comm) (held, error) {
	if len(w) < 3 {
		return held{}, fmt.Errorf("core: held parcel too short: %d words", len(w))
	}
	h := held{dstLocal: int(w[0]), interSet: int(w[1]), src: int(w[2]), payload: w[3:]}
	if h.dstLocal < 0 || h.dstLocal >= c.size() {
		return held{}, fmt.Errorf("core: held parcel destination %d out of range", h.dstLocal)
	}
	return h, nil
}

// toParcel converts a delivered held parcel to the caller-facing form. The
// payload is copied into the instance arena: delivered parcels must outlive
// the engine's payload grace window (concurrently multiplexed instances may
// keep completing rounds after this instance has finished, recycling the
// engine's receive buffers), and the arena is stable for the lifetime of the
// comm without per-parcel allocation.
func (h held) toParcel(c *comm) parcel {
	return parcel{Src: h.src, Dst: c.global(h.dstLocal), Words: c.arenaAppend(h.payload...)}
}

// routeTiny routes within a very small clique by treating all members as a
// single group of Corollary 3.4 (4 rounds). The announcement volume is |W|^2
// values, which is a constant because the clique size is bounded by
// routeTrivialThreshold.
func routeTiny(c *comm, parcels []parcel, st step) ([]parcel, error) {
	group := make([]int, c.size())
	for i := range group {
		group[i] = i
	}
	slot := c.itemSlot()
	items := *slot
	for _, p := range parcels {
		dstLocal, _ := c.localOf(p.Dst)
		items = append(items, item{dst: dstLocal, words: c.arenaHeld(held{dstLocal: dstLocal, src: p.Src, payload: p.Words})})
	}
	*slot = items
	received, err := groupRouteUnknown(c, group, items, st)
	if err != nil {
		return nil, err
	}
	return heldItemsToParcels(c, received, st.name)
}

func heldItemsToParcels(c *comm, items []item, context string) ([]parcel, error) {
	out := make([]parcel, 0, len(items))
	for _, it := range items {
		h, err := decodeHeldParcel(it.words, c)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", context, err)
		}
		if h.dstLocal != c.me {
			return nil, fmt.Errorf("%s: node %d received parcel for node %d", context, c.ex.ID(), c.global(h.dstLocal))
		}
		out = append(out, h.toParcel(c))
	}
	return out, nil
}

// RouteSchedule is the announcement state of one routeSquare execution: the
// set-level demand matrix of Algorithm 2 Step 1 and the three per-group
// count matrices the pipeline otherwise establishes by announcement
// exchanges (Algorithm 2 Step 3, Step 3 of Algorithm 1, and the Corollary
// 3.4 count announcement of Step 5). Everything else the pipeline computes —
// colorings, balance plans, per-parcel targets — is a deterministic local
// function of these matrices and the submission-order parcel sequence.
//
// A schedule captured from one execution can therefore drive a later
// execution of the *same* instance (same ordered per-source destination
// sequence — the plan cache's validate-on-hit guarantees this) with all four
// announcement exchanges skipped: 8 of the pipeline's 16 rounds. Order
// matters, not just the demand matrix: intermediate sets are assigned by
// submission-order unit index, so a reordered instance executes a different
// schedule — which is why the cache key hashes the ordered sequence.
//
// A seeded run still cross-checks the schedule against the instance at every
// step it uses it: each node compares its locally computed count row with
// the cached matrix row before sending a word, and relayRoute independently
// verifies items against demand, so a schedule that does not match the
// instance yields an error, never a misrouted parcel.
type RouteSchedule struct {
	// S is the group count/size (√m) the schedule was captured for.
	S int
	// SetDemand[a][b] is the Algorithm 2 Step 1 result: parcels held by set
	// a with destination in set b.
	SetDemand [][]int
	// A2Counts[g][a][b], S3Counts[g][a][b], S5Counts[g][a][b] are the
	// announcement results of group g: parcels held by group member a for
	// destination set b (A2, S3) respectively destination member b (S5).
	A2Counts [][][]int
	S3Counts [][][]int
	S5Counts [][][]int
}

// NewRouteScheduleCapture returns an empty schedule ready to be filled by a
// routeSquare execution on a clique of n nodes, or nil when n does not run
// the perfect-square algorithm (too small, or not a square — those paths
// have no capturable announcement schedule).
func NewRouteScheduleCapture(n int) *RouteSchedule {
	if n < routeTrivialThreshold {
		return nil
	}
	s := isqrt(n)
	if s*s != n {
		return nil
	}
	return &RouteSchedule{
		S:        s,
		A2Counts: make([][][]int, s),
		S3Counts: make([][][]int, s),
		S5Counts: make([][][]int, s),
	}
}

// complete reports whether every slot of the capture was filled (an errored
// or fast-pathed run leaves gaps; such captures are discarded, not stored).
func (rs *RouteSchedule) complete() bool {
	if rs == nil || rs.SetDemand == nil {
		return false
	}
	for g := 0; g < rs.S; g++ {
		if rs.A2Counts[g] == nil || rs.S3Counts[g] == nil || rs.S5Counts[g] == nil {
			return false
		}
	}
	return true
}

// checkScheduleRow verifies that this node's locally computed count vector
// matches its row of the cached announcement matrix — the validate-on-use
// backstop of a seeded run.
func checkScheduleRow(all [][]int, myIdx int, local []int, phase string) error {
	if myIdx >= len(all) || len(all[myIdx]) != len(local) {
		return fmt.Errorf("core: cached schedule shape mismatch at %s", phase)
	}
	for b, v := range local {
		if all[myIdx][b] != v {
			return fmt.Errorf("core: cached schedule does not match the instance at %s (position %d: have %d, schedule says %d)",
				phase, b, v, all[myIdx][b])
		}
	}
	return nil
}

// routeSquare is Algorithm 1 for a member count that is a perfect square.
// The step structure and round budget follow the paper exactly:
//
//	Step 2 (Algorithm 2)  7 rounds   balance load between the √m node sets
//	Step 3                4 rounds   balance by destination set inside each set
//	Step 4                1 round    move parcels to their destination sets
//	Step 5                4 rounds   deliver inside each destination set (Cor. 3.4)
//	                     -- total 16 rounds (Theorem 3.7)
//
// With a cached schedule (sched != nil) the four announcement exchanges are
// replaced by the cached matrices — 8 rounds total. With a capture target
// the announcement results are recorded into it: node 0 stores the global
// set-demand matrix and each group's member 0 stores that group's matrices,
// so the capture slots are written race-free and exactly once.
func routeSquare(c *comm, parcels []parcel, st step, sched, capture *RouteSchedule) ([]parcel, error) {
	m := c.size()
	s := isqrt(m)
	if s*s != m {
		return nil, fmt.Errorf("core: routeSquare called with non-square member count %d", m)
	}
	grp, err := newGrouping(m, s)
	if err != nil {
		return nil, err
	}
	myGroup := grp.groupOf(c.me)
	groupMembers := make([]int, s)
	for i := range groupMembers {
		groupMembers[i] = grp.member(myGroup, i)
	}
	myIdxInGroup := grp.indexInGroup(c.me)
	if sched != nil && sched.S != s {
		return nil, fmt.Errorf("%s: cached schedule for group size %d used on group size %d", st.name, sched.S, s)
	}

	loadSlot := c.heldSlot()
	load := *loadSlot
	for _, p := range parcels {
		dstLocal, _ := c.localOf(p.Dst)
		load = append(load, held{dstLocal: dstLocal, src: p.Src, payload: p.Words})
	}
	*loadSlot = load

	// ------------------------------------------------------------------
	// Step 2 of Algorithm 1, implemented by Algorithm 2 (7 rounds).
	// ------------------------------------------------------------------

	// Algorithm 2, Step 1 (2 rounds): every set learns, for every pair of
	// sets (A,B), how many parcels A holds with destination in B.
	cntSet := make([]int, s)
	for _, h := range load {
		cntSet[grp.groupOf(h.dstLocal)]++
	}
	var setDemand [][]int
	if sched != nil {
		// Seeded: the set-level demand is cached; the per-member cross-check
		// happens against A2Counts below (cntSet is exactly this node's row).
		setDemand = sched.SetDemand
	} else {
		contributions := make([]int64, s)
		for b, v := range cntSet {
			contributions[b] = int64(v)
		}
		tFlat, aggErr := aggregateAndBroadcast(c, myGroup*s, contributions, s*s)
		if aggErr != nil {
			return nil, fmt.Errorf("%s step2.1: %w", st.name, aggErr)
		}
		setDemand = makeIntMatrix(s, s)
		for a := 0; a < s; a++ {
			for b := 0; b < s; b++ {
				setDemand[a][b] = int(tFlat[a*s+b])
			}
		}
		if capture != nil && c.me == 0 {
			capture.SetDemand = setDemand
		}
	}

	// Algorithm 2, Step 2 (local): color the set-level multigraph; the parcel
	// of color col is (eventually) moved to set col mod s. This is the
	// exchange pattern all nodes agree on.
	dT := bipartite.MaxRowColSum(setDemand)
	var setColoring *bipartite.DemandColoring
	if dT > 0 {
		shared := c.shared(st.key.sub(kcSetColoring), -1, func() interface{} {
			dc, colErr := bipartite.ColorDemandMatrix(setDemand, dT)
			if colErr != nil {
				return colErr
			}
			return dc
		})
		var ok bool
		setColoring, ok = shared.(*bipartite.DemandColoring)
		if !ok {
			return nil, fmt.Errorf("%s step2.2: set coloring failed: %v", st.name, shared)
		}
	}

	// Algorithm 2, Step 3 (2 rounds): inside every set, members announce how
	// many parcels they hold per destination set, which pins down every
	// parcel's position in the set-level order and hence its color.
	var perMemberCnt [][]int
	if sched != nil {
		if err := checkScheduleRow(sched.A2Counts[myGroup], myIdxInGroup, cntSet, "step2.3"); err != nil {
			return nil, fmt.Errorf("%s: %w", st.name, err)
		}
		perMemberCnt = sched.A2Counts[myGroup]
	} else {
		perMemberCnt, err = announceIntVector(c, groupMembers, cntSet, st.sub("a2.announce", kcA2Announce))
		if err != nil {
			return nil, fmt.Errorf("%s step2.3: %w", st.name, err)
		}
		if capture != nil && myIdxInGroup == 0 {
			capture.A2Counts[myGroup] = perMemberCnt
		}
	}

	// Algorithm 2, Step 4 (local): derive each parcel's intermediate set and
	// compute the within-set balancing pattern so that afterwards every
	// member holds (almost) the same number of parcels per intermediate set.
	offsets := makeIntMatrix(s, s) // offsets[a][b]: first unit index of member a in cell (myGroup,b)
	for b := 0; b < s; b++ {
		run := 0
		for a := 0; a < s; a++ {
			offsets[a][b] = run
			run += perMemberCnt[a][b]
		}
	}
	// interCounts[a][t]: number of parcels of member a assigned to
	// intermediate set t; computable by every group member from the shared
	// coloring and the announced counts.
	interCounts := makeIntMatrix(s, s)
	byRes := make([]int, s)
	for a := 0; a < s; a++ {
		for b := 0; b < s; b++ {
			if perMemberCnt[a][b] == 0 || setColoring == nil {
				continue
			}
			if resErr := countUnitsByResidue(setColoring, myGroup, b, offsets[a][b], offsets[a][b]+perMemberCnt[a][b], s, byRes); resErr != nil {
				return nil, fmt.Errorf("%s step2.4: %w", st.name, resErr)
			}
			for t := 0; t < s; t++ {
				interCounts[a][t] += byRes[t]
			}
		}
	}
	// Assign my own parcels their intermediate sets.
	bucketCursor := make([]int, s)
	for i := range load {
		b := grp.groupOf(load[i].dstLocal)
		unit := offsets[myIdxInGroup][b] + bucketCursor[b]
		bucketCursor[b]++
		if setColoring == nil {
			load[i].interSet = 0
			continue
		}
		color, colErr := setColoring.ColorOfUnit(myGroup, b, unit)
		if colErr != nil {
			return nil, fmt.Errorf("%s step2.4: %w", st.name, colErr)
		}
		load[i].interSet = color % s
	}
	plan2, err := newBalancePlan(c, interCounts, s, st.sub("a2.plan", kcA2Plan), int32(myGroup))
	if err != nil {
		return nil, fmt.Errorf("%s step2.4: %w", st.name, err)
	}
	demand2, err := plan2.moveDemand(interCounts)
	if err != nil {
		return nil, fmt.Errorf("%s step2.4: %w", st.name, err)
	}

	// Algorithm 2, Step 5 (2 rounds): execute the within-set redistribution.
	classCursor := make([]int, s)
	items2Slot := c.itemSlot()
	items2 := *items2Slot
	for _, h := range load {
		k := classCursor[h.interSet]
		classCursor[h.interSet]++
		target, tErr := plan2.target(myIdxInGroup, h.interSet, k)
		if tErr != nil {
			return nil, fmt.Errorf("%s step2.5: %w", st.name, tErr)
		}
		items2 = append(items2, item{dst: grp.member(myGroup, target), words: c.arenaHeld(h)})
	}
	*items2Slot = items2
	received2, err := relayRoute(c, groupMembers, demand2, items2, st.sub("a2.move", kcA2Move))
	if err != nil {
		return nil, fmt.Errorf("%s step2.5: %w", st.name, err)
	}
	load, err = decodeHeldItems(c, received2)
	if err != nil {
		return nil, fmt.Errorf("%s step2.5: %w", st.name, err)
	}
	// All payloads encoded so far (the input parcels and the step-2.5 items)
	// have been copied into frames and delivered; their arena storage is dead.
	c.arenaReset()

	// Algorithm 2, Step 6 (1 round): every member now holds (almost) the same
	// number of parcels for each intermediate set and sends one of them to
	// each of that set's members. Parcels of one intermediate set are dealt
	// round-robin in held order, which matches the bucketed order.
	dealCursor := make([]int, s)
	for _, h := range load {
		k := dealCursor[h.interSet]
		dealCursor[h.interSet]++
		c.sendHeld(grp.member(h.interSet, k%s), h)
	}
	load, err = collectHeld(c, st.name, "step2.6")
	if err != nil {
		return nil, err
	}

	// ------------------------------------------------------------------
	// Step 3 of Algorithm 1 (4 rounds, Corollary 3.5): inside every set,
	// balance the held parcels by (final) destination set.
	// ------------------------------------------------------------------
	cnt3 := make([]int, s)
	for _, h := range load {
		cnt3[grp.groupOf(h.dstLocal)]++
	}
	var all3 [][]int
	if sched != nil {
		if err = checkScheduleRow(sched.S3Counts[myGroup], myIdxInGroup, cnt3, "step3"); err != nil {
			return nil, fmt.Errorf("%s: %w", st.name, err)
		}
		all3 = sched.S3Counts[myGroup]
	} else {
		all3, err = announceIntVector(c, groupMembers, cnt3, st.sub("s3.announce", kcS3Announce))
		if err != nil {
			return nil, fmt.Errorf("%s step3: %w", st.name, err)
		}
		if capture != nil && myIdxInGroup == 0 {
			capture.S3Counts[myGroup] = all3
		}
	}
	plan3, err := newBalancePlan(c, all3, s, st.sub("s3.plan", kcS3Plan), int32(myGroup))
	if err != nil {
		return nil, fmt.Errorf("%s step3: %w", st.name, err)
	}
	demand3, err := plan3.moveDemand(all3)
	if err != nil {
		return nil, fmt.Errorf("%s step3: %w", st.name, err)
	}
	cursor3 := make([]int, s)
	items3Slot := c.itemSlot()
	items3 := *items3Slot
	for _, h := range load {
		cls := grp.groupOf(h.dstLocal)
		k := cursor3[cls]
		cursor3[cls]++
		target, tErr := plan3.target(myIdxInGroup, cls, k)
		if tErr != nil {
			return nil, fmt.Errorf("%s step3: %w", st.name, tErr)
		}
		items3 = append(items3, item{dst: grp.member(myGroup, target), words: c.arenaHeld(h)})
	}
	*items3Slot = items3
	received3, err := relayRoute(c, groupMembers, demand3, items3, st.sub("s3.move", kcS3Move))
	if err != nil {
		return nil, fmt.Errorf("%s step3: %w", st.name, err)
	}
	load, err = decodeHeldItems(c, received3)
	if err != nil {
		return nil, fmt.Errorf("%s step3: %w", st.name, err)
	}
	c.arenaReset()

	// ------------------------------------------------------------------
	// Step 4 of Algorithm 1 (1 round): every member sends, for each
	// destination set, one of its parcels to each member of that set.
	// ------------------------------------------------------------------
	deal4 := make([]int, s)
	for _, h := range load {
		t := grp.groupOf(h.dstLocal)
		k := deal4[t]
		deal4[t]++
		c.sendHeld(grp.member(t, k%s), h)
	}
	load, err = collectHeld(c, st.name, "step4")
	if err != nil {
		return nil, err
	}

	// ------------------------------------------------------------------
	// Step 5 of Algorithm 1 (4 rounds, Corollary 3.4): deliver inside every
	// destination set.
	// ------------------------------------------------------------------
	items5Slot := c.itemSlot()
	items5 := *items5Slot
	for _, h := range load {
		if grp.groupOf(h.dstLocal) != myGroup {
			return nil, fmt.Errorf("%s step5: node %d holds a parcel for foreign set %d", st.name, c.ex.ID(), grp.groupOf(h.dstLocal))
		}
		items5 = append(items5, item{dst: h.dstLocal, words: c.arenaHeld(h)})
	}
	*items5Slot = items5
	st5 := st.sub("s5", kcS5)
	var received5 []item
	if sched == nil && capture == nil {
		received5, err = groupRouteUnknown(c, groupMembers, items5, st5)
	} else {
		// Open-coded groupRouteUnknown (Corollary 3.4) so the count
		// announcement can be served from (or recorded into) the schedule;
		// the step keys match groupRouteUnknown's exactly, so shared
		// colorings are interchangeable between captured and seeded runs.
		vec5 := make([]int, s)
		for _, it := range items5 {
			vec5[grp.indexInGroup(it.dst)]++
		}
		var counts5 [][]int
		if sched != nil {
			if err = checkScheduleRow(sched.S5Counts[myGroup], myIdxInGroup, vec5, "step5"); err != nil {
				return nil, fmt.Errorf("%s: %w", st.name, err)
			}
			counts5 = sched.S5Counts[myGroup]
		} else {
			counts5, err = announceIntVector(c, groupMembers, vec5, st5.sub("announce", kcAnnounce))
			if err != nil {
				return nil, fmt.Errorf("%s step5: %w", st.name, err)
			}
			if myIdxInGroup == 0 {
				capture.S5Counts[myGroup] = counts5
			}
		}
		received5, err = relayRouteColored(c, groupMembers, counts5, items5, st5.sub("deliver", kcDeliver), false)
	}
	if err != nil {
		return nil, fmt.Errorf("%s step5: %w", st.name, err)
	}
	return heldItemsToParcels(c, received5, "step5")
}

// decodeHeldItems converts relay-routed items back to held parcels (into a
// rotating scratch buffer of the comm).
func decodeHeldItems(c *comm, items []item) ([]held, error) {
	slot := c.heldSlot()
	out := *slot
	for _, it := range items {
		h, err := decodeHeldParcel(it.words, c)
		if err != nil {
			return nil, err
		}
		out = append(out, h)
	}
	*slot = out
	return out, nil
}

// collectHeld performs one exchange and decodes every received message as a
// held parcel (into a rotating scratch buffer of the comm).
func collectHeld(c *comm, context, phase string) ([]held, error) {
	rx, err := c.exchange()
	if err != nil {
		return nil, fmt.Errorf("%s %s: %w", context, phase, err)
	}
	slot := c.heldSlot()
	out := *slot
	for _, p := range rx.all() {
		h, decErr := decodeHeldParcel(p, c)
		if decErr != nil {
			return nil, fmt.Errorf("%s %s: %w", context, phase, decErr)
		}
		out = append(out, h)
	}
	*slot = out
	return out, nil
}

// countUnitsByResidue fills out[t] with how many of the units [lo,hi) of
// cell (row, col) receive a color congruent to t modulo s. out must have
// length s; it is a caller-owned scratch buffer so the s-by-s sweep of
// Algorithm 2 Step 4 does not allocate per cell.
func countUnitsByResidue(dc *bipartite.DemandColoring, row, col, lo, hi, s int, out []int) error {
	clear(out)
	if lo >= hi {
		return nil
	}
	unit := 0
	for _, run := range dc.Runs[row][col] {
		runLo, runHi := unit, unit+run.Len
		unit = runHi
		ovLo, ovHi := lo, hi
		if runLo > ovLo {
			ovLo = runLo
		}
		if runHi < ovHi {
			ovHi = runHi
		}
		if ovLo >= ovHi {
			continue
		}
		c0 := run.Start + (ovLo - runLo)
		c1 := run.Start + (ovHi - runLo)
		span := c1 - c0
		if full := span / s; full > 0 {
			for t := 0; t < s; t++ {
				out[t] += full
			}
		}
		for k := 0; k < span%s; k++ {
			out[(c0+k)%s]++
		}
	}
	if unit < hi {
		return fmt.Errorf("core: cell (%d,%d) has only %d units, need %d", row, col, unit, hi)
	}
	return nil
}
