package core

import (
	"fmt"

	"congestedclique/internal/clique"
)

// This file implements the sparse demand representation that carries a
// routing instance through planning, census and execution without any O(n²)
// structure. The dense [][]Message staging a session performs is already
// O(n + total) — row headers plus the messages themselves — but the protocol
// executors behind it were not: directRoute and broadcastRoute allocate a
// dense length-n per-node slice, the charged census keeps a length-n count
// array per node, and the blocking scheduler parks one goroutine per node.
// At n=16384 those per-node dense structures multiply out to gigabytes.
//
// SparseDemand replaces the row-of-slices view with a per-source adjacency:
// an ascending active-source list, row offsets, and one flat entry array of
// (dst, seq, payload) triples in submission order. Everything downstream —
// PlanRouteSparse, the sparse fingerprint, and the step-mode executors in
// sparse_route.go / sparse_sort.go — works off this single O(active + total)
// structure plus O(n) index tables, never a per-node dense array.
//
// Ownership and pooling rules (see ARCHITECTURE.md):
//
//   - A SparseDemand is immutable after NewSparseDemand and owns its backing
//     arrays; it borrows nothing from the caller's rows, so the session may
//     recycle its staging buffers while a run is in flight.
//   - PlanRouteSparse shares the plannerScratch pool with PlanRoute, so the
//     sparse and dense planners have identical allocation discipline and —
//     pinned by tests — produce identical RoutePlan verdicts, including the
//     Reason strings.
//   - The per-run executors allocate per-node state proportional to that
//     node's own traffic; the only O(n) allocations are flat index tables
//     (row-of pointers, result headers), never n×n.

// SparseEntry is one message of a sparse demand row: the destination, the
// caller's sequence number and the payload word. The source is implicit (the
// row the entry belongs to).
type SparseEntry struct {
	Dst     int32
	Seq     int32
	Payload clique.Word
}

// SparseDemand is the per-source adjacency form of a routing instance:
// Sources lists the active source nodes in ascending order, row i of the
// adjacency is Entries[RowStart[i]:RowStart[i+1]] in submission order.
type SparseDemand struct {
	// Sources lists the nodes holding at least one message, ascending.
	Sources []int32
	// RowStart has len(Sources)+1 offsets into Entries.
	RowStart []int32
	// Entries holds every message, grouped by source row, submission order
	// preserved within each row.
	Entries []SparseEntry

	n     int
	rowOf []int32 // node id -> row index, -1 for inactive nodes (O(n))
}

// NewSparseDemand converts a dense-row instance into its sparse form. msgs is
// indexed by source (rows beyond len(msgs) are empty); every message must
// carry the row's source and an in-range destination — the same Problem 3.1
// shape the session validator enforces.
func NewSparseDemand(n int, msgs [][]Message) (*SparseDemand, error) {
	sd := &SparseDemand{n: n, rowOf: make([]int32, n)}
	for i := range sd.rowOf {
		sd.rowOf[i] = -1
	}
	total := 0
	for src := 0; src < n && src < len(msgs); src++ {
		total += len(msgs[src])
	}
	sd.Entries = make([]SparseEntry, 0, total)
	for src := 0; src < n && src < len(msgs); src++ {
		row := msgs[src]
		if len(row) == 0 {
			continue
		}
		sd.rowOf[src] = int32(len(sd.Sources))
		sd.Sources = append(sd.Sources, int32(src))
		sd.RowStart = append(sd.RowStart, int32(len(sd.Entries)))
		for _, m := range row {
			if m.Src != src {
				return nil, fmt.Errorf("core: sparse demand: message (%d->%d) in row %d", m.Src, m.Dst, src)
			}
			if m.Dst < 0 || m.Dst >= n {
				return nil, fmt.Errorf("core: sparse demand: destination %d out of range (n=%d)", m.Dst, n)
			}
			sd.Entries = append(sd.Entries, SparseEntry{Dst: int32(m.Dst), Seq: int32(m.Seq), Payload: m.Payload})
		}
	}
	sd.RowStart = append(sd.RowStart, int32(len(sd.Entries)))
	return sd, nil
}

// N returns the clique size the demand was built for.
func (sd *SparseDemand) N() int { return sd.n }

// Total returns the number of messages in the instance.
func (sd *SparseDemand) Total() int { return len(sd.Entries) }

// Row returns node's entries in submission order (nil for inactive nodes).
func (sd *SparseDemand) Row(node int) []SparseEntry {
	r := sd.rowOf[node]
	if r < 0 {
		return nil
	}
	return sd.Entries[sd.RowStart[r]:sd.RowStart[r+1]]
}

// Messages reconstructs the dense-row form of the instance: msgs[i] holds
// node i's messages in submission order, with Src filled in. It is the
// round-trip twin of NewSparseDemand, used by the fuzz harness and by tests
// that cross-check the sparse path against the dense reference.
func (sd *SparseDemand) Messages() [][]Message {
	msgs := make([][]Message, sd.n)
	for r, src := range sd.Sources {
		row := sd.Entries[sd.RowStart[r]:sd.RowStart[r+1]]
		out := make([]Message, len(row))
		for j, e := range row {
			out[j] = Message{Src: int(src), Dst: int(e.Dst), Seq: int(e.Seq), Payload: e.Payload}
		}
		msgs[src] = out
	}
	return msgs
}

// sparseRowHash is routeRowHash over a sparse row: the order-sensitive FNV
// fold of the row's destination sequence.
func sparseRowHash(row []SparseEntry) uint64 {
	h := uint64(fnvOffset64)
	for _, e := range row {
		h = fnvFold(h, uint64(e.Dst))
	}
	return h
}

// Fingerprint computes the routing-demand fingerprint of the instance,
// identical to RouteFingerprint of the dense form: per-source row hashes
// folded in node order, empty rows included.
func (sd *SparseDemand) Fingerprint() Fingerprint {
	h := uint64(fnvOffset64)
	for i := 0; i < sd.n; i++ {
		row := sd.Row(i)
		h = foldRows(h, len(row), sparseRowHash(row))
	}
	return Fingerprint{kind: fingerprintRoute, n: sd.n, Hash: h}
}

// PlanRouteSparse is PlanRoute over the sparse representation: the identical
// census, the identical dispatch thresholds and the identical Reason strings,
// computed from the adjacency without materialising dense rows. Tests and the
// fuzz harness pin PlanRouteSparse(sd) == PlanRoute(n, sd.Messages()) for
// every instance.
func PlanRouteSparse(sd *SparseDemand) RoutePlan {
	n := sd.n
	sc := plannerScratchPool.Get().(*plannerScratch)
	defer plannerScratchPool.Put(sc)
	plan := RoutePlan{N: n}
	recv := sc.recvSlice(n)
	for r := range sd.Sources {
		row := sd.Entries[sd.RowStart[r]:sd.RowStart[r+1]]
		plan.ActiveSources++
		plan.TotalMessages += len(row)
		if len(row) > plan.MaxSendLoad {
			plan.MaxSendLoad = len(row)
		}
		for _, e := range row {
			recv[e.Dst]++
		}
	}
	for _, r := range recv {
		if r == 0 {
			continue
		}
		plan.ActiveSinks++
		if r > plan.MaxRecvLoad {
			plan.MaxRecvLoad = r
		}
	}

	if plan.TotalMessages == 0 {
		plan.Strategy = StrategyEmpty
		plan.Reason = "no messages"
		return plan
	}
	if plan.TotalMessages > FastPathMaxTotal(n) {
		plan.Strategy = StrategyPipeline
		plan.Reason = fmt.Sprintf("full-load regime: %d messages > n²/4 = %d", plan.TotalMessages, FastPathMaxTotal(n))
		return plan
	}

	sc.keys = sc.keys[:0]
	for r, src := range sd.Sources {
		for _, e := range sd.Entries[sd.RowStart[r]:sd.RowStart[r+1]] {
			sc.keys = append(sc.keys, uint64(src)*uint64(n)+uint64(e.Dst))
		}
	}
	plan.MaxPairMultiplicity = sc.maxRunOfSortedKeys()

	if plan.MaxPairMultiplicity <= DirectMaxMultiplicity {
		plan.Strategy = StrategyDirect
		plan.Reason = fmt.Sprintf("sparse demand: max pair multiplicity %d ≤ %d, one-frame direct send in a single round",
			plan.MaxPairMultiplicity, DirectMaxMultiplicity)
		return plan
	}

	if plan.ActiveSources > BroadcastSourceCap(n) {
		plan.Strategy = StrategyPipeline
		plan.Reason = fmt.Sprintf("skewed demand: max pair multiplicity %d exceeds the direct budget and %d sources exceed the broadcast cap %d",
			plan.MaxPairMultiplicity, plan.ActiveSources, BroadcastSourceCap(n))
		return plan
	}
	sc.keys = sc.keys[:0]
	for r, src := range sd.Sources {
		for k, e := range sd.Entries[sd.RowStart[r]:sd.RowStart[r+1]] {
			relay := (int(src) + k) % n
			sc.keys = append(sc.keys, uint64(relay)*uint64(n)+uint64(e.Dst))
		}
	}
	relayRounds := sc.maxRunOfSortedKeys()
	plan.relayRoundsCensus = relayRounds
	if 1+relayRounds <= BroadcastMaxRounds {
		plan.Strategy = StrategyBroadcast
		plan.RelayRounds = relayRounds
		plan.Reason = fmt.Sprintf("one-to-many demand: %d source(s), scatter + %d delivery round(s)",
			plan.ActiveSources, relayRounds)
		return plan
	}
	plan.Strategy = StrategyPipeline
	plan.Reason = fmt.Sprintf("skewed demand: max pair multiplicity %d exceeds the direct budget and scatter would need 1+%d rounds (cap %d)",
		plan.MaxPairMultiplicity, relayRounds, BroadcastMaxRounds)
	return plan
}

// SparseStepCapable reports whether a route strategy can execute on the
// engine-driven step scheduler without per-node dense buffers. The pipeline
// is excluded: its balancing machinery is the full-load design point, already
// measured on the blocking scheduler, and full load is inherently O(n²) data.
func SparseStepCapable(s RouteStrategy) bool {
	switch s {
	case StrategyEmpty, StrategyDirect, StrategyBroadcast:
		return true
	default:
		return false
	}
}

// SparseSortStepCapable is SparseStepCapable for sorting strategies: the
// empty and presorted arms run as step programs; the small-domain and
// pipeline arms keep the blocking scheduler.
func SparseSortStepCapable(s SortStrategy) bool {
	switch s {
	case SortStrategyEmpty, SortStrategyPresorted:
		return true
	default:
		return false
	}
}
