package core

import (
	"fmt"
	"slices"

	"congestedclique/internal/clique"
)

// LowComputeRoute is the per-node entry point for the Section 5 variant of
// the Information Distribution Task (Theorem 5.4): 12 communication rounds
// with O(n log n) local computation and memory per node. The savings over
// Algorithm 1 come from
//
//   - Lemma 5.1: the within-set balancing steps are replaced by an oblivious
//     two-round round-robin redistribution whose forwarding pattern is fixed
//     in advance, so no edge coloring (and no count announcement) is needed;
//     the price is that members hold up to 2√n instead of exactly √n
//     messages per set, which doubles the message size of the following
//     round,
//   - Lemma 5.3 / footnote 3: the remaining schedule colorings use the
//     greedy 2Δ-1 coloring instead of the exact König coloring,
//   - the set-level exchange pattern assigns intermediate sets by a local
//     proportional rule instead of the exact global coloring (see DESIGN.md
//     for the discussion of this substitution), which removes the need for
//     the Step 3 announcement of Algorithm 2.
//
// Round budget: 2 (set totals) + 2 (round-robin by intermediate set) +
// 1 (inter-set exchange) + 2 (round-robin by destination set) + 1 (move to
// destination sets) + 4 (Corollary 3.4 delivery) = 12.
//
// Local computation is self-reported through Exchanger.CountSteps so that
// the O(n log n) claim can be checked experimentally (experiment E3).
func LowComputeRoute(ex clique.Exchanger, msgs []Message) ([]Message, error) {
	c := fullComm(ex, fmt.Sprintf("lowroute@r%d", ex.Round()))
	defer c.release()
	n := c.size()
	if n == 1 {
		return msgs, nil
	}
	if !isPerfectSquare(n) || n < routeTrivialThreshold {
		// The non-square decomposition is identical to Theorem 3.7's and adds
		// nothing to the Section 5 analysis; small and non-square cliques fall
		// back to the standard router.
		return Route(ex, msgs)
	}
	parcels := make([]parcel, 0, len(msgs))
	for _, m := range msgs {
		parcels = append(parcels, parcel{Src: m.Src, Dst: m.Dst, Words: c.arenaAppend(clique.Word(m.Seq), m.Payload)})
	}
	received, err := lowComputeRouteParcels(c, parcels, rootStep("thm5.4"))
	if err != nil {
		return nil, err
	}
	out := make([]Message, 0, len(received))
	for _, p := range received {
		if len(p.Words) < 2 {
			return nil, fmt.Errorf("core: malformed routed message with %d payload words", len(p.Words))
		}
		out = append(out, Message{Src: p.Src, Dst: p.Dst, Seq: int(p.Words[0]), Payload: p.Words[1]})
	}
	sortMessages(out)
	return out, nil
}

// lowComputeRouteParcels is the 12-round schedule on a perfect-square comm.
func lowComputeRouteParcels(c *comm, parcels []parcel, st step) ([]parcel, error) {
	if err := validateParcels(c, parcels); err != nil {
		return nil, err
	}
	m := c.size()
	s := isqrt(m)
	grp, err := newGrouping(m, s)
	if err != nil {
		return nil, err
	}
	myGroup := grp.groupOf(c.me)
	myIdxInGroup := grp.indexInGroup(c.me)
	groupMembers := make([]int, s)
	for i := range groupMembers {
		groupMembers[i] = grp.member(myGroup, i)
	}

	loadSlot := c.heldSlot()
	load := *loadSlot
	for _, p := range parcels {
		dstLocal, _ := c.localOf(p.Dst)
		load = append(load, held{dstLocal: dstLocal, src: p.Src, payload: p.Words})
	}
	*loadSlot = load
	c.ex.CountSteps(len(load) + s*s)
	c.ex.ReportMemory(len(load)*6 + s*s)

	// --- Step 2 variant (Lemma 5.3), 5 rounds -------------------------------

	// (2 rounds) Every node learns the set-level totals T[A][B]; O(s^2) work.
	cntSet := make([]int, s)
	for _, h := range load {
		cntSet[grp.groupOf(h.dstLocal)]++
	}
	contributions := make([]int64, s)
	for b, v := range cntSet {
		contributions[b] = int64(v)
	}
	if _, err := aggregateAndBroadcast(c, myGroup*s, contributions, s*s); err != nil {
		return nil, fmt.Errorf("%s totals: %w", st.name, err)
	}
	c.ex.CountSteps(len(load) + s*s)

	// (local) Assign every message an intermediate set with the proportional
	// rotation rule: the j-th message a node holds for destination set B goes
	// to intermediate set (j + a + B) mod s, so every node splits its per-set
	// traffic evenly over the intermediate sets.
	perSetCursor := make([]int, s)
	for i := range load {
		b := grp.groupOf(load[i].dstLocal)
		j := perSetCursor[b]
		perSetCursor[b]++
		load[i].interSet = (j + myIdxInGroup + b) % s
	}
	c.ex.CountSteps(len(load))

	// (2 rounds) Oblivious round-robin redistribution within the set, keyed by
	// intermediate set (Corollary 5.2).
	load, err = roundRobinRedistribute(c, grp, load, func(h held) int { return h.interSet }, st.name)
	if err != nil {
		return nil, fmt.Errorf("%s inter-set balancing: %w", st.name, err)
	}
	// The input parcels' payloads have been copied into frames and delivered;
	// their arena storage is dead.
	c.arenaReset()
	c.ex.CountSteps(len(load))

	// (1 round) Inter-set exchange: for each intermediate set, send one held
	// message to each of its members (at most a constant number per edge
	// because of the previous balancing).
	dealInter := make([]int, s)
	for _, h := range load {
		k := dealInter[h.interSet]
		dealInter[h.interSet]++
		c.sendHeld(grp.member(h.interSet, k%s), h)
	}
	load, err = collectHeld(c, st.name, "exchange")
	if err != nil {
		return nil, err
	}
	c.ex.CountSteps(len(load))
	c.ex.ReportMemory(len(load) * 6)

	// --- Steps 3 and 4 via Lemma 5.1, 3 rounds -------------------------------

	// (2 rounds) Oblivious round-robin redistribution keyed by the final
	// destination set.
	load, err = roundRobinRedistribute(c, grp, load, func(h held) int { return grp.groupOf(h.dstLocal) }, st.name)
	if err != nil {
		return nil, fmt.Errorf("%s destination balancing: %w", st.name, err)
	}
	c.ex.CountSteps(len(load))

	// (1 round) Move every message to a member of its destination set, at most
	// two per edge (Lemma 5.1).
	dealDst := make([]int, s)
	for _, h := range load {
		t := grp.groupOf(h.dstLocal)
		k := dealDst[t]
		dealDst[t]++
		c.sendHeld(grp.member(t, k%s), h)
	}
	load, err = collectHeld(c, st.name, "step4")
	if err != nil {
		return nil, err
	}
	c.ex.CountSteps(len(load))

	// --- Step 5 (Corollary 3.4 with the greedy coloring), 4 rounds -----------
	itemsSlot := c.itemSlot()
	items := *itemsSlot
	for _, h := range load {
		if grp.groupOf(h.dstLocal) != myGroup {
			return nil, fmt.Errorf("%s step5: node %d holds a parcel for foreign set %d", st.name, c.ex.ID(), grp.groupOf(h.dstLocal))
		}
		items = append(items, item{dst: h.dstLocal, words: c.arenaHeld(h)})
	}
	*itemsSlot = items
	receivedItems, err := groupRouteUnknownColored(c, groupMembers, items, st.sub("s5", kcLowS5), true)
	if err != nil {
		return nil, fmt.Errorf("%s step5: %w", st.name, err)
	}
	c.ex.CountSteps(len(receivedItems))
	return heldItemsToParcels(c, receivedItems, "low-compute step5")
}

// roundRobinRedistribute is Lemma 5.1: every member of a set orders its held
// parcels by class, deals them round-robin over all nodes of the clique, and
// every relay forwards everything it received from the a-th member of a set
// to that set's ((a + relay) mod s)-th member. The pattern is oblivious (it
// does not depend on the message distribution), costs two rounds and O(load)
// computation, and guarantees that afterwards every member holds at most
// 2·load/s + s parcels of any class.
func roundRobinRedistribute(c *comm, grp grouping, load []held, classOf func(held) int, context string) ([]held, error) {
	m := c.size()
	s := grp.groupSize

	// Bucket-sort by class (O(load + s)).
	slices.SortStableFunc(load, func(a, b held) int { return classOf(a) - classOf(b) })

	// Round 1: deal the j-th parcel to node j mod m.
	for j, h := range load {
		c.sendHeld(j%m, h)
	}
	rx, err := c.exchange()
	if err != nil {
		return nil, fmt.Errorf("%s deal: %w", context, err)
	}

	// Round 2: forward everything received from the a-th member of set A to
	// member (a + myID) mod s of set A.
	for senderLocal := 0; senderLocal < c.size(); senderLocal++ {
		msgs := rx.fromSender(senderLocal)
		if len(msgs) == 0 {
			continue
		}
		a := grp.indexInGroup(senderLocal)
		target := grp.member(grp.groupOf(senderLocal), (a+c.me)%s)
		for _, p := range msgs {
			c.send(target, p...)
		}
	}
	return collectHeld(c, context, "forward")
}
