package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"congestedclique/internal/clique"
)

// sparseInstance builds an instance with per messages per node, each pair
// carrying mult copies, destinations spread so the per-pair multiplicity is
// exactly mult.
func sparseInstance(n, pairsPerNode, mult int) [][]Message {
	msgs := make([][]Message, n)
	for src := 0; src < n; src++ {
		for p := 0; p < pairsPerNode; p++ {
			dst := (src + 1 + p) % n
			for k := 0; k < mult; k++ {
				msgs[src] = append(msgs[src], Message{Src: src, Dst: dst, Seq: len(msgs[src]), Payload: clique.Word(src*10_000 + len(msgs[src]))})
			}
		}
	}
	return msgs
}

func TestPlanRouteClassification(t *testing.T) {
	t.Parallel()
	const n = 64
	cases := []struct {
		name string
		msgs [][]Message
		want RouteStrategy
	}{
		{"empty-nil", nil, StrategyEmpty},
		{"empty-rows", make([][]Message, n), StrategyEmpty},
		{"sparse-mult1", sparseInstance(n, 2, 1), StrategyDirect},
		{"sparse-at-direct-boundary", sparseInstance(n, 1, DirectMaxMultiplicity), StrategyDirect},
		{"sparse-past-direct-boundary", sparseInstance(n, 1, DirectMaxMultiplicity+1), StrategyPipeline},
		{"full-load-permutations", sparseInstance(n, n, 1), StrategyPipeline},
		{"one-to-many", func() [][]Message {
			msgs := make([][]Message, n)
			for j := 0; j < n; j++ {
				msgs[0] = append(msgs[0], Message{Src: 0, Dst: 1 + j%4, Seq: j, Payload: clique.Word(j)})
			}
			return msgs
		}(), StrategyBroadcast},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			plan := PlanRoute(n, tc.msgs)
			if plan.Strategy != tc.want {
				t.Fatalf("strategy = %v (%s), want %v", plan.Strategy, plan.Reason, tc.want)
			}
			if plan.Reason == "" {
				t.Error("plan has no reason")
			}
		})
	}
}

// TestPlanRouteBroadcastRejectedByRounds pins the second half of the
// broadcast gate: sources within the cap whose scatter schedule would need
// too many delivery rounds fall back to the pipeline, and the recorded
// reason says so (not that the source count was exceeded).
func TestPlanRouteBroadcastRejectedByRounds(t *testing.T) {
	t.Parallel()
	const n = 64
	// 8 sources (exactly BroadcastSourceCap(64)) each send 8 messages to the
	// same sink: multiplicity 8 rejects direct, and the overlapping scatter
	// ranges pile 8 messages for the sink onto one relay, so delivery would
	// need 1+8 > BroadcastMaxRounds rounds.
	msgs := make([][]Message, n)
	for src := 0; src < 8; src++ {
		for k := 0; k < 8; k++ {
			msgs[src] = append(msgs[src], Message{Src: src, Dst: 0, Seq: k, Payload: clique.Word(src*100 + k)})
		}
	}
	plan := PlanRoute(n, msgs)
	if plan.ActiveSources != BroadcastSourceCap(n) {
		t.Fatalf("test instance has %d sources, want the cap %d", plan.ActiveSources, BroadcastSourceCap(n))
	}
	if plan.Strategy != StrategyPipeline {
		t.Fatalf("strategy = %v (%s), want pipeline", plan.Strategy, plan.Reason)
	}
	if !strings.Contains(plan.Reason, "scatter") {
		t.Fatalf("reason %q should name the scatter-rounds rejection, not the source cap", plan.Reason)
	}
	// The instance still routes correctly through the pipeline arm.
	runPlanned(t, msgs)
}

// TestPlanRouteVolumeGate pins the full-load gate: exactly n²/4 total
// messages is still fast-path eligible, one more is not — even when the
// per-pair multiplicity would allow direct sending.
func TestPlanRouteVolumeGate(t *testing.T) {
	t.Parallel()
	const n = 16
	budget := FastPathMaxTotal(n)
	perNode := budget / n // n/4 pairs per node, multiplicity 1
	at := sparseInstance(n, perNode, 1)
	if got := PlanRoute(n, at); got.Strategy != StrategyDirect || got.TotalMessages != budget {
		t.Fatalf("at gate: %+v, want direct with %d messages", got, budget)
	}
	over := sparseInstance(n, perNode, 1)
	extra := Message{Src: 0, Dst: (0 + 1 + perNode) % n, Seq: len(over[0]), Payload: 1}
	over[0] = append(over[0], extra)
	if got := PlanRoute(n, over); got.Strategy != StrategyPipeline {
		t.Fatalf("over gate: %v (%s), want pipeline", got.Strategy, got.Reason)
	}
	if got := PlanRoute(n, over); got.MaxPairMultiplicity != 0 {
		t.Fatalf("multiplicity computed above the volume gate: %+v", got)
	}
}

// TestPlanRouteCensus spot-checks the census fields.
func TestPlanRouteCensus(t *testing.T) {
	t.Parallel()
	const n = 16
	msgs := make([][]Message, n)
	add := func(src, dst int) {
		msgs[src] = append(msgs[src], Message{Src: src, Dst: dst, Seq: len(msgs[src]), Payload: 1})
	}
	add(0, 3)
	add(0, 3)
	add(0, 5)
	add(7, 3)
	plan := PlanRoute(n, msgs)
	if plan.TotalMessages != 4 || plan.ActiveSources != 2 || plan.ActiveSinks != 2 ||
		plan.MaxSendLoad != 3 || plan.MaxRecvLoad != 3 || plan.MaxPairMultiplicity != 2 {
		t.Fatalf("census wrong: %+v", plan)
	}
	if plan.Strategy != StrategyDirect || plan.Rounds() != 1 {
		t.Fatalf("plan wrong: %+v", plan)
	}
}

// runPlanned executes AutoRoute with the instance's plan on a real engine
// and verifies exact delivery; it returns the metrics and the plan.
func runPlanned(t *testing.T, msgs [][]Message) (clique.Metrics, RoutePlan) {
	t.Helper()
	n := len(msgs)
	plan := PlanRoute(n, msgs)
	nw, err := clique.New(n)
	if err != nil {
		t.Fatal(err)
	}
	results := make([][]Message, n)
	err = nw.Run(func(nd *clique.Node) error {
		out, rErr := AutoRoute(nd, msgs[nd.ID()], plan)
		if rErr != nil {
			return rErr
		}
		results[nd.ID()] = out
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	verifyDelivery(t, msgs, results)
	return nw.Metrics(), plan
}

func TestDirectRouteDeliversExactly(t *testing.T) {
	t.Parallel()
	for _, mult := range []int{1, 2, DirectMaxMultiplicity} {
		mult := mult
		t.Run(fmt.Sprintf("mult=%d", mult), func(t *testing.T) {
			t.Parallel()
			msgs := sparseInstance(32, 2, mult)
			m, plan := runPlanned(t, msgs)
			if plan.Strategy != StrategyDirect {
				t.Fatalf("strategy %v, want direct", plan.Strategy)
			}
			if m.Rounds != 1 {
				t.Errorf("rounds = %d, want 1 (one-frame direct send)", m.Rounds)
			}
			// A pair's messages travel as one frame: the busiest edge carries
			// exactly mult messages of directWordsPerMessage words, within
			// the DirectFrameWords budget.
			if m.MaxEdgeWords != mult*directWordsPerMessage || m.MaxEdgeWords > DirectFrameWords {
				t.Errorf("max edge words = %d, want %d (<= %d)", m.MaxEdgeWords, mult*directWordsPerMessage, DirectFrameWords)
			}
			if m.MaxEdgeMessages != mult {
				t.Errorf("max edge messages = %d, want %d", m.MaxEdgeMessages, mult)
			}
			wantWords := int64(plan.TotalMessages * directWordsPerMessage)
			if m.TotalWords != wantWords {
				t.Errorf("total words = %d, want %d", m.TotalWords, wantWords)
			}
		})
	}
}

func TestBroadcastRouteDeliversExactly(t *testing.T) {
	t.Parallel()
	const n = 32
	// Node 0 multicasts n messages over 4 sinks: multiplicity n/4 is far
	// past the direct boundary, a single source passes the broadcast gate.
	msgs := make([][]Message, n)
	for j := 0; j < n; j++ {
		msgs[0] = append(msgs[0], Message{Src: 0, Dst: 1 + j%4, Seq: j, Payload: clique.Word(1000 + j)})
	}
	m, plan := runPlanned(t, msgs)
	if plan.Strategy != StrategyBroadcast {
		t.Fatalf("strategy %v (%s), want broadcast", plan.Strategy, plan.Reason)
	}
	if m.Rounds != 1+plan.RelayRounds {
		t.Errorf("rounds = %d, want %d", m.Rounds, 1+plan.RelayRounds)
	}
	if m.MaxEdgeWords > relayWordsPerMessage {
		t.Errorf("max edge words = %d, want <= %d", m.MaxEdgeWords, relayWordsPerMessage)
	}
	// Every message crosses exactly two edges of relayWordsPerMessage words.
	wantWords := int64(plan.TotalMessages * relayWordsPerMessage * 2)
	if m.TotalWords != wantWords {
		t.Errorf("total words = %d, want %d", m.TotalWords, wantWords)
	}
}

func TestEmptyPlanZeroRounds(t *testing.T) {
	t.Parallel()
	m, plan := runPlanned(t, make([][]Message, 16))
	if plan.Strategy != StrategyEmpty {
		t.Fatalf("strategy %v, want empty", plan.Strategy)
	}
	if m.Rounds != 0 || m.TotalWords != 0 {
		t.Errorf("empty instance cost rounds=%d words=%d, want zero", m.Rounds, m.TotalWords)
	}
}

// TestAutoRoutePipelineMatchesRoute pins that the pipeline fallback is the
// very same code path as Route: identical outputs and identical metrics on a
// full-load instance.
func TestAutoRoutePipelineMatchesRoute(t *testing.T) {
	t.Parallel()
	const n = 25
	msgs := buildRoutingInstance(n, n, 99)
	mAuto, plan := runPlanned(t, msgs)
	if plan.Strategy != StrategyPipeline {
		t.Fatalf("strategy %v, want pipeline", plan.Strategy)
	}
	mDet := runRouting(t, msgs)
	if mAuto.Rounds != mDet.Rounds || mAuto.MaxEdgeWords != mDet.MaxEdgeWords ||
		mAuto.MaxEdgeMessages != mDet.MaxEdgeMessages || mAuto.TotalMessages != mDet.TotalMessages ||
		mAuto.TotalWords != mDet.TotalWords {
		t.Fatalf("pipeline fallback metrics %+v diverge from Route %+v", mAuto, mDet)
	}
}

// TestAutoRoutePlanMismatch pins the defensive errors: a plan that does not
// match the instance fails the run instead of deadlocking or mis-delivering.
func TestAutoRoutePlanMismatch(t *testing.T) {
	t.Parallel()
	const n = 16
	msgs := sparseInstance(n, 1, DirectMaxMultiplicity+1)
	plan := PlanRoute(n, msgs)
	plan.Strategy = StrategyDirect // sabotage: the multiplicity exceeds the direct frame budget
	nw, err := clique.New(n)
	if err != nil {
		t.Fatal(err)
	}
	err = nw.Run(func(nd *clique.Node) error {
		_, rErr := AutoRoute(nd, msgs[nd.ID()], plan)
		return rErr
	})
	if err == nil {
		t.Fatal("mismatched direct plan did not fail")
	}
}

// TestPlanRouteRandomSparseAgainstRoute cross-checks AutoRoute against the
// deterministic router on random sparse instances spanning all strategies.
func TestPlanRouteRandomSparseAgainstRoute(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 8 + rng.Intn(25)
		msgs := make([][]Message, n)
		total := rng.Intn(FastPathMaxTotal(n) + 1)
		for k := 0; k < total; k++ {
			src := rng.Intn(n)
			if len(msgs[src]) >= n {
				continue
			}
			dst := rng.Intn(n)
			msgs[src] = append(msgs[src], Message{Src: src, Dst: dst, Seq: len(msgs[src]), Payload: clique.Word(rng.Int63n(1 << 40))})
		}
		// Clamp receive overloads by dropping from the busiest rows.
		recv := make([]int, n)
		for src := range msgs {
			kept := msgs[src][:0]
			for _, m := range msgs[src] {
				if recv[m.Dst] < n {
					recv[m.Dst]++
					m.Seq = len(kept)
					kept = append(kept, m)
				}
			}
			msgs[src] = kept
		}
		runPlanned(t, msgs)
	}
}
