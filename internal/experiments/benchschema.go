package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// This file is the single definition of the BENCH_protocol.json schema
// (congestedclique/bench-protocol/v1). Two tools write into the same file —
// cmd/cliquebench -protocol-json owns the protocol and concurrency sections,
// cmd/cliquescen owns the scenarios section — so the schema lives here and
// each tool preserves the other's sections when regenerating its own (see
// ReadProtocolDoc).

// ProtocolBench is one end-to-end protocol measurement: a full Route or Sort
// execution per op, allocations included.
type ProtocolBench struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	Iterations  int     `json:"iterations,omitempty"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Rounds      int     `json:"rounds,omitempty"`
	MaxEdgeW    int     `json:"max_edge_words,omitempty"`
	SpeedupVs   float64 `json:"speedup_vs_baseline,omitempty"`
	AllocRatio  float64 `json:"alloc_reduction_vs_baseline,omitempty"`
}

// ConcurrencyBench is one measured point of the engine-pool throughput
// sweep: k concurrent streams on one handle with a pool of k engines,
// measured by the shared internal/loadgen harness (the same measurement
// cmd/cliqueload performs interactively). Every operation's result is
// verified bit-identical to serial execution before it counts.
type ConcurrencyBench struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	K           int     `json:"k"`
	Streams     int     `json:"streams"`
	TotalOps    int     `json:"total_ops"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	P50Ms       float64 `json:"latency_p50_ms"`
	P99Ms       float64 `json:"latency_p99_ms"`
	SpeedupVsK1 float64 `json:"speedup_vs_k1,omitempty"`
	VerifiedOps int     `json:"verified_ops"`
}

// ConcurrencySection is the concurrency block of BENCH_protocol.json. The
// in-process engine shares one machine's memory bandwidth and every run
// already spawns one goroutine per node, so scaling with k is bounded by
// Cores/Gomaxprocs — the numbers are recorded as measured on this machine,
// not extrapolated.
type ConcurrencySection struct {
	Cores      int                `json:"cores"`
	Gomaxprocs int                `json:"gomaxprocs"`
	Note       string             `json:"note"`
	Route      []ConcurrencyBench `json:"route"`
	Sort       []ConcurrencyBench `json:"sort"`
}

// ScenarioBench is one row of the scenario catalog sweep: the demand-aware
// planner (AlgorithmAuto) run once on the named workload scenario, compared
// against the full deterministic pipeline on the same instance.
type ScenarioBench struct {
	Scenario string `json:"scenario"`
	N        int    `json:"n"`
	// Strategy is the planner's verdict (pipeline | direct | broadcast |
	// empty) with the plan's one-line reason alongside.
	Strategy string `json:"strategy"`
	Reason   string `json:"reason"`
	// Rounds/MaxEdgeWords/TotalMessages/TotalWords are the model-cost
	// statistics of the planned execution.
	Rounds        int   `json:"rounds"`
	MaxEdgeWords  int   `json:"max_edge_words"`
	TotalMessages int64 `json:"total_messages"`
	TotalWords    int64 `json:"total_words"`
	// PipelineTotalWords is the word cost of the deterministic pipeline on
	// the identical instance; WordsVsPipeline = PipelineTotalWords /
	// TotalWords (omitted when the planned execution moved zero words).
	PipelineTotalWords int64   `json:"pipeline_total_words"`
	WordsVsPipeline    float64 `json:"words_vs_pipeline,omitempty"`
	// NsPerOp/AllocsPerOp are wall-clock and allocation figures of the
	// planned execution (warm engine, one measured iteration by default).
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// RandomizedTotalWords/RandomizedRounds are the cost of the randomized
	// Valiant-style two-hop baseline on the identical instance (routing
	// scenarios only — the randomized sorting baseline is a different
	// algorithm family, not a per-scenario routing comparison);
	// WordsVsRandomized = RandomizedTotalWords / TotalWords.
	RandomizedTotalWords int64   `json:"randomized_total_words,omitempty"`
	RandomizedRounds     int     `json:"randomized_rounds,omitempty"`
	WordsVsRandomized    float64 `json:"words_vs_randomized,omitempty"`
	// Verified reports that the planned delivery was compared message by
	// message against the deterministic pipeline's and found identical.
	Verified bool `json:"verified"`
}

// ScenarioSection is the scenarios block of BENCH_protocol.json, written by
// cmd/cliquescen.
type ScenarioSection struct {
	Tool    string          `json:"tool"`
	Schema  string          `json:"schema"`
	N       int             `json:"n"`
	Seed    int64           `json:"seed"`
	Entries []ScenarioBench `json:"entries"`
}

// ServiceBench is one measured load run against a cliqued server over the
// wire protocol, produced by cmd/cliqueload -addr -protocol-json. Closed-loop
// rows ("closed") measure latency at a fixed client-concurrency level;
// open-loop rows ("open") hold an offered rate through saturation, where
// SheddedOps counts bounded-queue rejections (named errors, not failures —
// FailedOps stays the hard-failure count and must be zero for the shedding
// claim to hold).
type ServiceBench struct {
	Mode         string  `json:"mode"`
	Workload     string  `json:"workload"`
	Streams      int     `json:"streams"`
	Rate         float64 `json:"rate_ops_per_sec,omitempty"`
	OfferedOps   int     `json:"offered_ops"`
	SucceededOps int     `json:"succeeded_ops"`
	SheddedOps   int     `json:"shedded_ops"`
	FailedOps    int     `json:"failed_ops"`
	Retries      int64   `json:"retries"`
	// PlanCacheHits/PlanCacheMisses are the server-side plan-cache counter
	// deltas over the run (zero unless cliqued runs with -plan-cache).
	PlanCacheHits   int64   `json:"plan_cache_hits,omitempty"`
	PlanCacheMisses int64   `json:"plan_cache_misses,omitempty"`
	VerifiedOps     int     `json:"verified_ops"`
	OpsPerSec       float64 `json:"ops_per_sec"`
	P50Ms           float64 `json:"latency_p50_ms"`
	P99Ms           float64 `json:"latency_p99_ms"`
	P999Ms          float64 `json:"latency_p999_ms"`
	WallMs          float64 `json:"wall_ms"`
}

// ServiceSection is the service block of BENCH_protocol.json: the network
// front-end's throughput/latency profile as measured end to end by
// cmd/cliqueload -addr against a running cliqued. The server-side pool and
// queue configuration is recorded alongside so the rows are interpretable;
// runs merge by (mode, streams, rate) so the section can be regenerated one
// invocation at a time without losing the other rows.
type ServiceSection struct {
	Tool              string         `json:"tool"`
	Schema            string         `json:"schema"`
	N                 int            `json:"n"`
	ServerConcurrency int            `json:"server_concurrency"`
	QueueDepth        int            `json:"queue_depth"`
	BatchMaxOps       int            `json:"batch_max_ops"`
	Note              string         `json:"note"`
	Runs              []ServiceBench `json:"runs"`
}

// MergeServiceRun replaces the section row with the same (mode, streams,
// rate) key or appends a new one, keeping regeneration idempotent.
func (s *ServiceSection) MergeServiceRun(run ServiceBench) {
	for i, r := range s.Runs {
		if r.Mode == run.Mode && r.Streams == run.Streams && r.Rate == run.Rate {
			s.Runs[i] = run
			return
		}
	}
	s.Runs = append(s.Runs, run)
}

// TemporalBench is one measured temporal-scenario trace: a sequence of
// routing instances with bursty repetition, executed on one handle with the
// plan cache armed (census charged) versus one plain AlgorithmAuto handle,
// every step's delivery deep-compared between the two. The speedup is net:
// the cache side pays the census on every step and the capture on every
// miss.
type TemporalBench struct {
	Scenario string `json:"scenario"`
	N        int    `json:"n"`
	// Steps is the trace length; DistinctInstances of them are unique, so
	// Steps - DistinctInstances are expected cache hits.
	Steps             int    `json:"steps"`
	DistinctInstances int    `json:"distinct_instances"`
	Strategy          string `json:"strategy"`
	CacheHits         int64  `json:"cache_hits"`
	CacheMisses       int64  `json:"cache_misses"`
	// HitRate = CacheHits / (CacheHits + CacheMisses).
	HitRate float64 `json:"hit_rate"`
	// MissRounds/HitRounds are the per-op round costs observed on the cache
	// side (census included); CacheOffRounds is the plain planner's cost.
	CacheOffRounds int `json:"cache_off_rounds"`
	MissRounds     int `json:"miss_rounds"`
	HitRounds      int `json:"hit_rounds"`
	// CacheOffNsPerOp/CacheOnNsPerOp are amortized wall times over the whole
	// trace; NetSpeedup = CacheOffNsPerOp / CacheOnNsPerOp.
	CacheOffNsPerOp    int64   `json:"cache_off_ns_per_op"`
	CacheOnNsPerOp     int64   `json:"cache_on_ns_per_op"`
	NetSpeedup         float64 `json:"net_speedup"`
	CacheOffTotalWords int64   `json:"cache_off_total_words"`
	CacheOnTotalWords  int64   `json:"cache_on_total_words"`
	// Verified reports that every step's delivery on the cached handle was
	// compared message by message against the cache-off handle's.
	Verified bool `json:"verified"`
}

// TemporalSection is the temporal block of BENCH_protocol.json, written by
// cmd/cliquescen -temporal. Rows merge by (scenario, n) so the section can
// be regenerated one trace at a time.
type TemporalSection struct {
	Tool    string          `json:"tool"`
	Schema  string          `json:"schema"`
	Seed    int64           `json:"seed"`
	Note    string          `json:"note,omitempty"`
	Entries []TemporalBench `json:"entries"`
}

// MergeTemporalRun replaces the row with the same (scenario, n) key or
// appends a new one, keeping regeneration idempotent.
func (s *TemporalSection) MergeTemporalRun(run TemporalBench) {
	for i, r := range s.Entries {
		if r.Scenario == run.Scenario && r.N == run.N {
			s.Entries[i] = run
			return
		}
	}
	s.Entries = append(s.Entries, run)
}

// ScalingBench is one point of the scale-out frontier curve: a full
// protocol run (sparse demand, AlgorithmAuto, WithSparsePath) at one clique
// size, with wall time, allocation figures and the process peak RSS recorded
// alongside the model cost.
type ScalingBench struct {
	// Op names the measured operation: route-sparse, route-broadcast or
	// sort-presorted.
	Op string `json:"op"`
	N  int    `json:"n"`
	// Strategy is the planner verdict the run executed under.
	Strategy      string `json:"strategy"`
	Rounds        int    `json:"rounds"`
	TotalMessages int64  `json:"total_messages"`
	TotalWords    int64  `json:"total_words"`
	Iterations    int    `json:"iterations"`
	NsPerOp       int64  `json:"ns_per_op"`
	AllocsPerOp   int64  `json:"allocs_per_op"`
	BytesPerOp    int64  `json:"bytes_per_op"`
	// PeakRSSBytes is the process high-water resident set (VmHWM) sampled
	// right after this point's runs. It is monotone across the whole
	// invocation, so with sizes measured in ascending order it reads as
	// "peak RSS after completing size n".
	PeakRSSBytes int64 `json:"peak_rss_bytes,omitempty"`
	// Verified reports that the sparse-path delivery was compared element by
	// element against the dense scheduler on the identical instance (done at
	// every n where the dense path is affordable, n <= 1024).
	Verified bool `json:"verified"`
}

// ScalingSection is the scaling block of BENCH_protocol.json, written by
// cmd/cliquebench -scaling-json. Rows merge by (op, n) so the curve can be
// extended one size at a time.
type ScalingSection struct {
	Tool    string         `json:"tool"`
	Schema  string         `json:"schema"`
	Note    string         `json:"note"`
	Entries []ScalingBench `json:"entries"`
}

// MergeScalingRun replaces the row with the same (op, n) key or appends a
// new one, keeping regeneration idempotent.
func (s *ScalingSection) MergeScalingRun(run ScalingBench) {
	for i, r := range s.Entries {
		if r.Op == run.Op && r.N == run.N {
			s.Entries[i] = run
			return
		}
	}
	s.Entries = append(s.Entries, run)
}

// PeakRSSBytes returns the process's peak resident set size (VmHWM) in
// bytes, or 0 when the platform does not expose /proc/self/status.
func PeakRSSBytes() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// ProtocolDoc is the schema of BENCH_protocol.json.
type ProtocolDoc struct {
	Tool     string          `json:"tool"`
	Schema   string          `json:"schema"`
	MaxN     int             `json:"max_n"`
	Measured []ProtocolBench `json:"measured"`
	// SessionReuse measures the same workloads issued repeatedly on one
	// long-lived Clique handle (the session API): amortized ns/op and
	// allocs/op of the warm-engine path, comparable entry by entry with the
	// fresh-handle numbers in Measured.
	SessionReuse []ProtocolBench `json:"session_reuse,omitempty"`
	// Concurrency records the engine-pool throughput sweep (see
	// ConcurrencySection).
	Concurrency *ConcurrencySection `json:"concurrency,omitempty"`
	// Scenarios records the demand-aware planner's scenario catalog sweep
	// (see ScenarioSection); owned by cmd/cliquescen and preserved by
	// cmd/cliquebench.
	Scenarios *ScenarioSection `json:"scenarios,omitempty"`
	// Service records the network front-end's measured profile (see
	// ServiceSection); owned by cmd/cliqueload -addr -protocol-json and
	// preserved by the other writers.
	Service *ServiceSection `json:"service,omitempty"`
	// Temporal records the cross-run plan-cache profile on bursty instance
	// sequences (see TemporalSection); owned by cmd/cliquescen -temporal and
	// preserved by the other writers.
	Temporal *TemporalSection `json:"temporal,omitempty"`
	// Scaling records the sparse scale-out frontier curve (see
	// ScalingSection); owned by cmd/cliquebench -scaling-json and preserved
	// by the other writers.
	Scaling *ScalingSection `json:"scaling,omitempty"`
	// PreRefactorBaseline is the recorded per-parcel implementation the
	// flat-frame layer is compared against.
	PreRefactorBaseline []ProtocolBench `json:"pre_refactor_baseline"`
}

// OpMeasurement is one wall-clock/allocation measurement produced by
// MeasureOp, in per-operation units.
type OpMeasurement struct {
	NsPerOp     int64
	AllocsPerOp int64
	BytesPerOp  int64
}

// MeasureOp is the shared measurement discipline of cliquebench and
// cliquescen: run op iters times after a GC flush and report wall time and
// allocation figures per op. The caller is responsible for warming the op
// (pools, engine construction) before measuring; both BENCH_protocol.json
// producers use this one helper so their sections stay comparable.
func MeasureOp(iters int, op func() error) (OpMeasurement, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := op(); err != nil {
			return OpMeasurement{}, err
		}
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	return OpMeasurement{
		NsPerOp:     wall.Nanoseconds() / int64(iters),
		AllocsPerOp: int64(after.Mallocs-before.Mallocs) / int64(iters),
		BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / int64(iters),
	}, nil
}

// ReadProtocolDoc loads an existing BENCH_protocol.json so a tool can
// regenerate its own sections while preserving the others. A missing file
// returns an empty doc; a malformed one returns an error (overwriting a file
// that fails to parse would silently destroy the other tool's sections).
func ReadProtocolDoc(path string) (ProtocolDoc, error) {
	var doc ProtocolDoc
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return doc, nil
	}
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("experiments: %s exists but does not parse as bench-protocol JSON: %w", path, err)
	}
	return doc, nil
}

// WriteProtocolDoc writes the doc back with stable indentation.
func WriteProtocolDoc(path string, doc ProtocolDoc) error {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
