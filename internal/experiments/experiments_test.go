package experiments

import (
	"testing"

	"congestedclique/internal/workload"
)

func TestMeasureRoutingAllAlgorithms(t *testing.T) {
	t.Parallel()
	for _, alg := range RoutingAlgorithms() {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			t.Parallel()
			m, err := MeasureRouting(16, 16, workload.RoutingUniform, alg, 1)
			if err != nil {
				t.Fatal(err)
			}
			if m.Rounds == 0 || m.MaxEdgeWords == 0 {
				t.Fatalf("degenerate measurement: %+v", m)
			}
			if m.N != 16 || m.Algorithm != alg {
				t.Fatalf("measurement metadata wrong: %+v", m)
			}
		})
	}
	if _, err := MeasureRouting(16, 16, workload.RoutingUniform, "bogus", 1); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestMeasureSortingAndCorollaries(t *testing.T) {
	t.Parallel()
	m, err := MeasureSorting(16, 16, workload.KeysDuplicateHeavy, "deterministic", 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rounds > 37 {
		t.Fatalf("sorting took %d rounds", m.Rounds)
	}
	if _, err := MeasureSorting(16, 16, workload.KeysUniform, "bogus", 1); err == nil {
		t.Fatal("unknown sorting algorithm accepted")
	}
	if _, err := MeasureRank(16, 16, workload.KeysDuplicateHeavy, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := MeasureSelect(16, 16, workload.KeysUniform, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := MeasureMode(16, 16, workload.KeysDuplicateHeavy, 5); err != nil {
		t.Fatal(err)
	}
}

func TestMeasureSmallKeys(t *testing.T) {
	t.Parallel()
	m, err := MeasureSmallKeys(128, 128, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rounds != 2 {
		t.Fatalf("small keys used %d rounds", m.Rounds)
	}
}

func TestMeasureColoring(t *testing.T) {
	t.Parallel()
	for _, method := range []string{"exact", "greedy", "exact-expanded"} {
		m, err := MeasureColoring(8, 32, method, 1)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if m.Colors < 32 {
			t.Fatalf("%s: %d colors for degree 32", method, m.Colors)
		}
		if method != "greedy" && m.Colors != 32 {
			t.Fatalf("%s: exact methods must use exactly 32 colors, got %d", method, m.Colors)
		}
	}
	if _, err := MeasureColoring(8, 8, "bogus", 1); err == nil {
		t.Fatal("unknown coloring method accepted")
	}
}

func TestWorkloadDemandIsRegular(t *testing.T) {
	t.Parallel()
	d := workloadDemand(8, 5, 3)
	for i := 0; i < 8; i++ {
		rowSum, colSum := 0, 0
		for j := 0; j < 8; j++ {
			rowSum += d[i][j]
			colSum += d[j][i]
		}
		if rowSum != 5 || colSum != 5 {
			t.Fatalf("row/col %d sums %d/%d, want 5/5", i, rowSum, colSum)
		}
	}
}
