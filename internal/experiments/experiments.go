// Package experiments contains the measurement harness shared by
// cmd/cliquebench and the repository-level benchmarks. Every measurement
// verifies the protocol output before reporting numbers, so a reported round
// count always corresponds to a correct execution.
package experiments

import (
	"fmt"
	"time"

	"congestedclique/internal/baseline"
	"congestedclique/internal/bipartite"
	"congestedclique/internal/clique"
	"congestedclique/internal/core"
	"congestedclique/internal/verify"
	"congestedclique/internal/workload"
)

// Measurement is the outcome of one verified protocol execution.
type Measurement struct {
	N               int
	Load            int
	Workload        string
	Algorithm       string
	Rounds          int
	MaxEdgeWords    int
	MaxEdgeMessages int
	TotalWords      int64
	StepsPerNode    int64
	MemoryPerNode   int64
}

// RoutingAlgorithms lists the algorithm names accepted by MeasureRouting.
func RoutingAlgorithms() []string {
	return []string{"deterministic", "low-compute", "randomized", "naive-direct"}
}

// MeasureRouting runs one routing workload under the chosen algorithm,
// verifies the delivery and reports the cost.
func MeasureRouting(n, per int, pattern workload.RoutingPattern, algorithm string, seed int64) (*Measurement, error) {
	inst, err := workload.NewRoutingInstance(n, per, pattern, seed)
	if err != nil {
		return nil, err
	}
	nw, err := clique.New(n)
	if err != nil {
		return nil, err
	}
	defer nw.Close()
	results := make([][]core.Message, n)
	err = nw.Run(func(nd *clique.Node) error {
		var (
			out  []core.Message
			rErr error
		)
		switch algorithm {
		case "deterministic":
			out, rErr = core.Route(nd, inst.Msgs[nd.ID()])
		case "low-compute":
			out, rErr = core.LowComputeRoute(nd, inst.Msgs[nd.ID()])
		case "randomized":
			out, rErr = baseline.RandomizedRoute(nd, inst.Msgs[nd.ID()], seed)
		case "naive-direct":
			out, rErr = baseline.NaiveDirectRoute(nd, inst.Msgs[nd.ID()])
		default:
			rErr = fmt.Errorf("experiments: unknown routing algorithm %q", algorithm)
		}
		if rErr != nil {
			return rErr
		}
		results[nd.ID()] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := verify.Routing(inst.Msgs, results); err != nil {
		return nil, fmt.Errorf("experiments: routing output invalid: %w", err)
	}
	return fromMetrics(n, per, string(pattern), algorithm, nw.Metrics()), nil
}

// MeasureSorting runs one sorting workload (deterministic Algorithm 4 or the
// randomized sample-sort baseline), verifies the output and reports the cost.
func MeasureSorting(n, per int, dist workload.KeyDistribution, algorithm string, seed int64) (*Measurement, error) {
	inst, err := workload.NewSortingInstance(n, per, dist, seed)
	if err != nil {
		return nil, err
	}
	nw, err := clique.New(n)
	if err != nil {
		return nil, err
	}
	defer nw.Close()
	results := make([]*core.SortResult, n)
	err = nw.Run(func(nd *clique.Node) error {
		var (
			res  *core.SortResult
			sErr error
		)
		switch algorithm {
		case "deterministic":
			res, sErr = core.Sort(nd, inst.Keys[nd.ID()])
		case "randomized":
			res, sErr = baseline.RandomizedSampleSort(nd, inst.Keys[nd.ID()], seed)
		default:
			sErr = fmt.Errorf("experiments: unknown sorting algorithm %q", algorithm)
		}
		if sErr != nil {
			return sErr
		}
		results[nd.ID()] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := verify.Sorting(inst.Keys, results); err != nil {
		return nil, fmt.Errorf("experiments: sorting output invalid: %w", err)
	}
	return fromMetrics(n, per, string(dist), algorithm, nw.Metrics()), nil
}

// MeasureRank runs the Corollary 4.6 rank computation and verifies it.
func MeasureRank(n, per int, dist workload.KeyDistribution, seed int64) (*Measurement, error) {
	inst, err := workload.NewSortingInstance(n, per, dist, seed)
	if err != nil {
		return nil, err
	}
	nw, err := clique.New(n)
	if err != nil {
		return nil, err
	}
	defer nw.Close()
	results := make([]*core.RankResult, n)
	err = nw.Run(func(nd *clique.Node) error {
		res, rErr := core.Rank(nd, inst.Keys[nd.ID()])
		if rErr != nil {
			return rErr
		}
		results[nd.ID()] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := verify.Ranks(inst.Keys, results); err != nil {
		return nil, fmt.Errorf("experiments: rank output invalid: %w", err)
	}
	return fromMetrics(n, per, string(dist), "rank", nw.Metrics()), nil
}

// MeasureSelect runs the selection corollary (median).
func MeasureSelect(n, per int, dist workload.KeyDistribution, seed int64) (*Measurement, error) {
	inst, err := workload.NewSortingInstance(n, per, dist, seed)
	if err != nil {
		return nil, err
	}
	nw, err := clique.New(n)
	if err != nil {
		return nil, err
	}
	defer nw.Close()
	err = nw.Run(func(nd *clique.Node) error {
		_, mErr := core.Median(nd, inst.Keys[nd.ID()])
		return mErr
	})
	if err != nil {
		return nil, err
	}
	return fromMetrics(n, per, string(dist), "select-median", nw.Metrics()), nil
}

// MeasureMode runs the mode corollary.
func MeasureMode(n, per int, dist workload.KeyDistribution, seed int64) (*Measurement, error) {
	inst, err := workload.NewSortingInstance(n, per, dist, seed)
	if err != nil {
		return nil, err
	}
	nw, err := clique.New(n)
	if err != nil {
		return nil, err
	}
	defer nw.Close()
	err = nw.Run(func(nd *clique.Node) error {
		_, mErr := core.Mode(nd, inst.Keys[nd.ID()])
		return mErr
	})
	if err != nil {
		return nil, err
	}
	return fromMetrics(n, per, string(dist), "mode", nw.Metrics()), nil
}

// MeasureSmallKeys runs the Section 6.3 counting protocol and verifies it.
func MeasureSmallKeys(n, per, domain int, seed int64) (*Measurement, error) {
	values, err := workload.NewSmallKeyInstance(n, per, domain, seed)
	if err != nil {
		return nil, err
	}
	nw, err := clique.New(n)
	if err != nil {
		return nil, err
	}
	defer nw.Close()
	results := make([]*core.SmallKeyResult, n)
	err = nw.Run(func(nd *clique.Node) error {
		res, cErr := core.SmallKeyCount(nd, values[nd.ID()], domain)
		if cErr != nil {
			return cErr
		}
		results[nd.ID()] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := verify.Histogram(values, results[0]); err != nil {
		return nil, fmt.Errorf("experiments: histogram invalid: %w", err)
	}
	return fromMetrics(n, per, fmt.Sprintf("domain=%d", domain), "small-keys", nw.Metrics()), nil
}

func fromMetrics(n, per int, wl, algorithm string, m clique.Metrics) *Measurement {
	return &Measurement{
		N:               n,
		Load:            per,
		Workload:        wl,
		Algorithm:       algorithm,
		Rounds:          m.Rounds,
		MaxEdgeWords:    m.MaxEdgeWords,
		MaxEdgeMessages: m.MaxEdgeMessages,
		TotalWords:      m.TotalWords,
		StepsPerNode:    m.MaxStepsPerNode,
		MemoryPerNode:   m.MaxMemoryWordsPerNode,
	}
}

// ColoringMeasurement is the outcome of one edge-coloring micro-benchmark
// (experiment E8).
type ColoringMeasurement struct {
	Size     int
	Degree   int
	Method   string
	Colors   int
	Duration time.Duration
}

// MeasureColoring times one coloring method ("exact", "greedy" or
// "euler-expanded") on a pseudo-random d-regular demand matrix of the given
// size and validates the result.
func MeasureColoring(size, degree int, method string, seed int64) (*ColoringMeasurement, error) {
	demand := workloadDemand(size, degree, seed)
	start := time.Now()
	var (
		colors int
		err    error
	)
	switch method {
	case "exact":
		var dc *bipartite.DemandColoring
		dc, err = bipartite.ColorDemandMatrix(demand, bipartite.MaxRowColSum(demand))
		if err == nil {
			colors = dc.NumColors
			err = dc.Validate(demand)
		}
	case "greedy":
		var dc *bipartite.DemandColoring
		dc, err = bipartite.ColorDemandGreedy(demand)
		if err == nil {
			colors = dc.NumColors
			err = dc.Validate(demand)
		}
	case "exact-expanded":
		var g *bipartite.Multigraph
		g, err = bipartite.ExpandDemand(demand)
		if err == nil {
			var col *bipartite.Coloring
			col, err = bipartite.ColorExact(g)
			if err == nil {
				colors = col.NumColors
				err = col.Validate(g)
			}
		}
	default:
		return nil, fmt.Errorf("experiments: unknown coloring method %q", method)
	}
	if err != nil {
		return nil, err
	}
	return &ColoringMeasurement{Size: size, Degree: degree, Method: method, Colors: colors, Duration: time.Since(start)}, nil
}

// workloadDemand builds a pseudo-random doubly-d-regular demand matrix by
// overlaying d rotations.
func workloadDemand(size, degree int, seed int64) [][]int {
	demand := make([][]int, size)
	for i := range demand {
		demand[i] = make([]int, size)
	}
	state := uint64(seed)*2862933555777941757 + 3037000493
	for k := 0; k < degree; k++ {
		state = state*2862933555777941757 + 3037000493
		shift := int(state % uint64(size))
		for i := 0; i < size; i++ {
			demand[i][(i+shift)%size]++
		}
	}
	return demand
}
