package baseline

import (
	"fmt"
	"testing"

	"congestedclique/internal/clique"
	"congestedclique/internal/core"
	"congestedclique/internal/verify"
	"congestedclique/internal/workload"
)

func runBaselineRouting(t *testing.T, inst *workload.RoutingInstance, route func(clique.Exchanger, []core.Message) ([]core.Message, error)) clique.Metrics {
	t.Helper()
	nw, err := clique.New(inst.N)
	if err != nil {
		t.Fatal(err)
	}
	results := make([][]core.Message, inst.N)
	err = nw.Run(func(nd *clique.Node) error {
		out, rErr := route(nd, inst.Msgs[nd.ID()])
		if rErr != nil {
			return rErr
		}
		results[nd.ID()] = out
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Routing(inst.Msgs, results); err != nil {
		t.Fatal(err)
	}
	return nw.Metrics()
}

func TestNaiveDirectRouteUniform(t *testing.T) {
	t.Parallel()
	inst, err := workload.NewRoutingInstance(32, 32, workload.RoutingUniform, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := runBaselineRouting(t, inst, NaiveDirectRoute)
	if m.Rounds < 1 {
		t.Fatal("expected at least one round")
	}
}

func TestNaiveDirectRouteSkewedDegenerates(t *testing.T) {
	t.Parallel()
	const n = 32
	inst, err := workload.NewRoutingInstance(n, n, workload.RoutingSkewed, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := runBaselineRouting(t, inst, NaiveDirectRoute)
	// All n messages of a node share one destination, so direct delivery
	// needs n rounds (plus the agreement round) — the behaviour the paper's
	// algorithm avoids.
	if m.Rounds < n {
		t.Fatalf("skewed naive routing finished in %d rounds, expected at least %d", m.Rounds, n)
	}
}

func TestRandomizedRouteConstantRounds(t *testing.T) {
	t.Parallel()
	for _, pattern := range []workload.RoutingPattern{workload.RoutingUniform, workload.RoutingSkewed, workload.RoutingSetAdversarial} {
		pattern := pattern
		t.Run(string(pattern), func(t *testing.T) {
			t.Parallel()
			inst, err := workload.NewRoutingInstance(64, 64, pattern, 3)
			if err != nil {
				t.Fatal(err)
			}
			m := runBaselineRouting(t, inst, func(nd clique.Exchanger, msgs []core.Message) ([]core.Message, error) {
				return RandomizedRoute(nd, msgs, 42)
			})
			if m.Rounds > 12 {
				t.Errorf("%s: randomized routing took %d rounds, expected a small constant", pattern, m.Rounds)
			}
		})
	}
}

func TestRandomizedRouteRejectsOversizedInput(t *testing.T) {
	t.Parallel()
	nw, err := clique.New(4)
	if err != nil {
		t.Fatal(err)
	}
	err = nw.Run(func(nd *clique.Node) error {
		var msgs []core.Message
		if nd.ID() == 0 {
			for k := 0; k < 10; k++ {
				msgs = append(msgs, core.Message{Src: 0, Dst: 1, Seq: k})
			}
		}
		_, rErr := RandomizedRoute(nd, msgs, 7)
		if nd.ID() == 0 && rErr == nil {
			return fmt.Errorf("oversized input accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRandomizedSampleSort(t *testing.T) {
	t.Parallel()
	for _, dist := range []workload.KeyDistribution{workload.KeysUniform, workload.KeysDuplicateHeavy, workload.KeysPreSorted} {
		dist := dist
		t.Run(string(dist), func(t *testing.T) {
			t.Parallel()
			inst, err := workload.NewSortingInstance(36, 36, dist, 9)
			if err != nil {
				t.Fatal(err)
			}
			nw, err := clique.New(inst.N)
			if err != nil {
				t.Fatal(err)
			}
			results := make([]*core.SortResult, inst.N)
			err = nw.Run(func(nd *clique.Node) error {
				res, sErr := RandomizedSampleSort(nd, inst.Keys[nd.ID()], 99)
				if sErr != nil {
					return sErr
				}
				results[nd.ID()] = res
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := verify.Sorting(inst.Keys, results); err != nil {
				t.Fatal(err)
			}
			if nw.Metrics().Rounds > 20 {
				t.Errorf("randomized sample sort took %d rounds, expected a small constant", nw.Metrics().Rounds)
			}
		})
	}
}

func TestRandomizedFasterThanDeterministicShape(t *testing.T) {
	t.Parallel()
	// The introduction's comparison: the randomized routing runs in roughly
	// half the rounds of the deterministic 16-round bound on benign inputs.
	inst, err := workload.NewRoutingInstance(100, 100, workload.RoutingUniform, 11)
	if err != nil {
		t.Fatal(err)
	}
	mRand := runBaselineRouting(t, inst, func(nd clique.Exchanger, msgs []core.Message) ([]core.Message, error) {
		return RandomizedRoute(nd, msgs, 1)
	})
	mDet := runBaselineRouting(t, inst, func(nd clique.Exchanger, msgs []core.Message) ([]core.Message, error) {
		return core.Route(nd, msgs)
	})
	if mRand.Rounds >= mDet.Rounds {
		t.Errorf("randomized (%d rounds) not faster than deterministic (%d rounds)", mRand.Rounds, mDet.Rounds)
	}
}
