// Package baseline provides the comparison algorithms used by experiment E5:
//
//   - NaiveDirectRoute sends every message straight to its destination,
//     respecting the one-message-per-edge-per-round limit; on skewed
//     instances this needs up to n rounds, which is the motivation for the
//     paper's routing algorithm.
//   - RandomizedRoute is a two-phase Valiant-style router in the spirit of
//     the randomized algorithm of Lenzen & Wattenhofer (STOC 2011) that the
//     paper cites as prior work: messages travel through balanced random
//     intermediates and are then delivered, finishing in a small constant
//     number of rounds with high probability.
//   - RandomizedSampleSort is a splitter-sampling sorter in the spirit of
//     Patt-Shamir & Teplitsky (PODC 2011).
//
// These are stand-ins that reproduce the *shape* of the prior randomized
// results (constant rounds, roughly half the deterministic constants), not
// line-by-line reimplementations of those papers; see DESIGN.md.
package baseline

import (
	"fmt"
	"math/rand"
	"sort"

	"congestedclique/internal/clique"
	"congestedclique/internal/core"
)

// NaiveDirectRoute delivers messages directly over the source-destination
// edges. One round establishes the number of delivery rounds (the maximum
// multiplicity of any source-destination pair); the messages then flow one
// per edge per round. On uniform instances this is fast, on skewed instances
// it degenerates to Θ(n) rounds.
func NaiveDirectRoute(ex clique.Exchanger, msgs []core.Message) ([]core.Message, error) {
	n := ex.N()
	byDst := make([][]core.Message, n)
	myMax := 0
	for _, m := range msgs {
		if m.Dst < 0 || m.Dst >= n {
			return nil, fmt.Errorf("baseline: message destination %d out of range", m.Dst)
		}
		byDst[m.Dst] = append(byDst[m.Dst], m)
		if len(byDst[m.Dst]) > myMax {
			myMax = len(byDst[m.Dst])
		}
	}

	rounds, err := agreeOnMax(ex, myMax)
	if err != nil {
		return nil, err
	}

	var received []core.Message
	for r := 0; r < rounds; r++ {
		for dst := 0; dst < n; dst++ {
			if r < len(byDst[dst]) {
				m := byDst[dst][r]
				ex.Send(dst, clique.Packet{clique.Word(m.Src), clique.Word(m.Seq), m.Payload})
			}
		}
		inbox, exErr := ex.Exchange()
		if exErr != nil {
			return nil, exErr
		}
		for from, packets := range inbox {
			for _, p := range packets {
				if len(p) < 3 {
					return nil, fmt.Errorf("baseline: malformed direct message")
				}
				received = append(received, core.Message{Src: from, Dst: ex.ID(), Seq: int(p[1]), Payload: p[2]})
			}
		}
	}
	core.SortMessageSlice(received)
	return received, nil
}

// RandomizedRoute is the two-phase randomized router. Phase one spreads each
// node's messages over the clique through a random permutation of
// intermediates (one round, one message per edge). Phase two delivers the
// messages from the intermediates; the number of delivery rounds is the
// maximum number of messages any intermediate holds for a single destination,
// which is a small constant with high probability (the property the
// randomized prior work exploits). One extra round lets all nodes agree on
// that maximum.
func RandomizedRoute(ex clique.Exchanger, msgs []core.Message, seed int64) ([]core.Message, error) {
	n := ex.N()
	if len(msgs) > n {
		return nil, fmt.Errorf("baseline: randomized router handles at most n=%d messages per node, got %d", n, len(msgs))
	}
	rng := rand.New(rand.NewSource(seed ^ int64(ex.ID())*0x5851F42D4C957F2D))

	// Phase 1: send the j-th message (in random order) to intermediate j.
	perm := rng.Perm(len(msgs))
	for j, idx := range perm {
		m := msgs[idx]
		ex.Send(j, clique.Packet{clique.Word(m.Dst), clique.Word(m.Src), clique.Word(m.Seq), m.Payload})
	}
	inbox, err := ex.Exchange()
	if err != nil {
		return nil, err
	}
	byDst := make([][]clique.Packet, n)
	myMax := 0
	for _, packets := range inbox {
		for _, p := range packets {
			if len(p) < 4 {
				return nil, fmt.Errorf("baseline: malformed relayed message")
			}
			dst := int(p[0])
			if dst < 0 || dst >= n {
				return nil, fmt.Errorf("baseline: relayed destination %d out of range", dst)
			}
			// Cloned: these packets are re-sent up to `rounds` barriers later,
			// beyond the engine's payload grace window (clique.PayloadGraceRounds).
			byDst[dst] = append(byDst[dst], p.Clone())
			if len(byDst[dst]) > myMax {
				myMax = len(byDst[dst])
			}
		}
	}

	// Agree on the number of delivery rounds.
	rounds, err := agreeOnMax(ex, myMax)
	if err != nil {
		return nil, err
	}

	var received []core.Message
	for r := 0; r < rounds; r++ {
		for dst := 0; dst < n; dst++ {
			if r < len(byDst[dst]) {
				ex.Send(dst, byDst[dst][r])
			}
		}
		inbox, err = ex.Exchange()
		if err != nil {
			return nil, err
		}
		for _, packets := range inbox {
			for _, p := range packets {
				if len(p) < 4 {
					return nil, fmt.Errorf("baseline: malformed delivered message")
				}
				received = append(received, core.Message{Dst: int(p[0]), Src: int(p[1]), Seq: int(p[2]), Payload: p[3]})
			}
		}
	}
	core.SortMessageSlice(received)
	return received, nil
}

// agreeOnMax broadcasts a local value and returns the maximum over all nodes
// (one round).
func agreeOnMax(ex clique.Exchanger, mine int) (int, error) {
	n := ex.N()
	for to := 0; to < n; to++ {
		ex.Send(to, clique.Packet{clique.Word(mine)})
	}
	inbox, err := ex.Exchange()
	if err != nil {
		return 0, err
	}
	max := 0
	for _, packets := range inbox {
		for _, p := range packets {
			if len(p) > 0 && int(p[0]) > max {
				max = int(p[0])
			}
		}
	}
	return max, nil
}

// RandomizedSampleSort sorts with randomly sampled splitters: a constant
// number of random samples per node is made globally known, the quantiles of
// the samples become splitters, every key is routed to the node owning its
// splitter interval with the randomized router's two-phase scheme, and a
// final rank-based redistribution balances the batches exactly. With high
// probability every phase uses a constant number of rounds.
func RandomizedSampleSort(ex clique.Exchanger, keys []core.Key, seed int64) (*core.SortResult, error) {
	n := ex.N()
	if len(keys) > n {
		return nil, fmt.Errorf("baseline: sample sort handles at most n keys per node, got %d", len(keys))
	}
	rng := rand.New(rand.NewSource(seed ^ int64(ex.ID())*0x517CC1B727220A95))
	const samplesPerNode = 4

	// Round 1-2: make every node's samples globally known (send them to a
	// designated relay, the relay broadcasts a bundle).
	local := append([]core.Key(nil), keys...)
	core.SortKeySlice(local)
	var samples []core.Key
	for i := 0; i < samplesPerNode && len(local) > 0; i++ {
		samples = append(samples, local[rng.Intn(len(local))])
	}
	for i, s := range samples {
		ex.Send((ex.ID()*samplesPerNode+i)%n, clique.Packet{s.Value, clique.Word(s.Origin), clique.Word(s.Seq)})
	}
	inbox, err := ex.Exchange()
	if err != nil {
		return nil, err
	}
	var toRebroadcast []clique.Packet
	for _, packets := range inbox {
		toRebroadcast = append(toRebroadcast, packets...)
	}
	for to := 0; to < n; to++ {
		for _, p := range toRebroadcast {
			ex.Send(to, p)
		}
	}
	inbox, err = ex.Exchange()
	if err != nil {
		return nil, err
	}
	var allSamples []core.Key
	for _, packets := range inbox {
		for _, p := range packets {
			if len(p) >= 3 {
				allSamples = append(allSamples, core.Key{Value: p[0], Origin: int(p[1]), Seq: int(p[2])})
			}
		}
	}
	core.SortKeySlice(allSamples)
	splitters := make([]core.Key, 0, n-1)
	for j := 1; j < n; j++ {
		if len(allSamples) == 0 {
			break
		}
		idx := j * len(allSamples) / n
		if idx >= len(allSamples) {
			idx = len(allSamples) - 1
		}
		splitters = append(splitters, allSamples[idx])
	}

	// Route every key to the node owning its splitter interval, through a
	// random intermediate (two-phase, like RandomizedRoute, with bundling).
	target := func(k core.Key) int {
		j := sort.Search(len(splitters), func(i int) bool { return k.Less(splitters[i]) || k == splitters[i] })
		return j
	}
	perm := rng.Perm(len(local))
	for j, idx := range perm {
		k := local[idx]
		ex.Send(j%n, clique.Packet{clique.Word(target(k)), k.Value, clique.Word(k.Origin), clique.Word(k.Seq)})
	}
	inbox, err = ex.Exchange()
	if err != nil {
		return nil, err
	}
	byDst := make([][]clique.Packet, n)
	myMax := 0
	for _, packets := range inbox {
		for _, p := range packets {
			if len(p) < 4 {
				continue
			}
			dst := int(p[0])
			// Cloned: these packets are re-sent up to `rounds` barriers later,
			// beyond the engine's payload grace window (clique.PayloadGraceRounds).
			byDst[dst] = append(byDst[dst], p.Clone())
			if len(byDst[dst]) > myMax {
				myMax = len(byDst[dst])
			}
		}
	}
	rounds, err := agreeOnMax(ex, myMax)
	if err != nil {
		return nil, err
	}
	var bucket []core.Key
	for r := 0; r < rounds; r++ {
		for dst := 0; dst < n; dst++ {
			if r < len(byDst[dst]) {
				ex.Send(dst, byDst[dst][r])
			}
		}
		inbox, err = ex.Exchange()
		if err != nil {
			return nil, err
		}
		for _, packets := range inbox {
			for _, p := range packets {
				if len(p) >= 4 {
					bucket = append(bucket, core.Key{Value: p[1], Origin: int(p[2]), Seq: int(p[3])})
				}
			}
		}
	}
	core.SortKeySlice(bucket)

	// Make the bucket sizes globally known, then redistribute by global rank
	// (deal round-robin, forward to the rank's owner).
	sizes, err := agreeOnSizes(ex, len(bucket))
	if err != nil {
		return nil, err
	}
	start := 0
	total := 0
	for i, sz := range sizes {
		if i < ex.ID() {
			start += sz
		}
		total += sz
	}
	perNode := (total + n - 1) / n
	if perNode == 0 {
		perNode = 1
	}
	for t, k := range bucket {
		ex.Send((ex.ID()+t)%n, clique.Packet{clique.Word(start + t), k.Value, clique.Word(k.Origin), clique.Word(k.Seq)})
	}
	inbox, err = ex.Exchange()
	if err != nil {
		return nil, err
	}
	type ranked struct {
		rank int
		key  core.Key
	}
	var relayed []ranked
	for _, packets := range inbox {
		for _, p := range packets {
			if len(p) >= 4 {
				relayed = append(relayed, ranked{rank: int(p[0]), key: core.Key{Value: p[1], Origin: int(p[2]), Seq: int(p[3])}})
			}
		}
	}
	for _, rk := range relayed {
		dst := rk.rank / perNode
		if dst >= n {
			dst = n - 1
		}
		ex.Send(dst, clique.Packet{clique.Word(rk.rank), rk.key.Value, clique.Word(rk.key.Origin), clique.Word(rk.key.Seq)})
	}
	inbox, err = ex.Exchange()
	if err != nil {
		return nil, err
	}
	var mine []ranked
	for _, packets := range inbox {
		for _, p := range packets {
			if len(p) >= 4 {
				mine = append(mine, ranked{rank: int(p[0]), key: core.Key{Value: p[1], Origin: int(p[2]), Seq: int(p[3])}})
			}
		}
	}
	sort.Slice(mine, func(i, j int) bool { return mine[i].rank < mine[j].rank })
	res := &core.SortResult{Total: total}
	if len(mine) > 0 {
		res.Start = mine[0].rank
	} else {
		res.Start = minInt(ex.ID()*perNode, total)
	}
	for _, rk := range mine {
		res.Batch = append(res.Batch, rk.key)
	}
	return res, nil
}

// agreeOnSizes broadcasts a local size and returns every node's value.
func agreeOnSizes(ex clique.Exchanger, mine int) ([]int, error) {
	n := ex.N()
	for to := 0; to < n; to++ {
		ex.Send(to, clique.Packet{clique.Word(mine)})
	}
	inbox, err := ex.Exchange()
	if err != nil {
		return nil, err
	}
	sizes := make([]int, n)
	for from, packets := range inbox {
		for _, p := range packets {
			if len(p) > 0 {
				sizes[from] = int(p[0])
			}
		}
	}
	return sizes, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
