package verify

import (
	"testing"

	"congestedclique/internal/core"
)

func TestRoutingVerifier(t *testing.T) {
	t.Parallel()
	sent := [][]core.Message{
		{{Src: 0, Dst: 1, Seq: 0, Payload: 5}},
		{{Src: 1, Dst: 0, Seq: 0, Payload: 6}},
	}
	good := [][]core.Message{
		{{Src: 1, Dst: 0, Seq: 0, Payload: 6}},
		{{Src: 0, Dst: 1, Seq: 0, Payload: 5}},
	}
	if err := Routing(sent, good); err != nil {
		t.Fatal(err)
	}
	missing := [][]core.Message{nil, {{Src: 0, Dst: 1, Seq: 0, Payload: 5}}}
	if err := Routing(sent, missing); err == nil {
		t.Fatal("missing delivery accepted")
	}
	wrongNode := [][]core.Message{{{Src: 0, Dst: 1, Seq: 0, Payload: 5}}, nil}
	if err := Routing(sent, wrongNode); err == nil {
		t.Fatal("misdelivered message accepted")
	}
	duplicated := [][]core.Message{
		{{Src: 1, Dst: 0, Seq: 0, Payload: 6}, {Src: 1, Dst: 0, Seq: 0, Payload: 6}},
		{{Src: 0, Dst: 1, Seq: 0, Payload: 5}},
	}
	if err := Routing(sent, duplicated); err == nil {
		t.Fatal("duplicate delivery accepted")
	}
	if err := Routing(sent, [][]core.Message{nil}); err == nil {
		t.Fatal("wrong slot count accepted")
	}
}

func TestSortingVerifier(t *testing.T) {
	t.Parallel()
	input := [][]core.Key{
		{{Value: 5, Origin: 0, Seq: 0}, {Value: 1, Origin: 0, Seq: 1}},
		{{Value: 3, Origin: 1, Seq: 0}, {Value: 9, Origin: 1, Seq: 1}},
	}
	good := []*core.SortResult{
		{Batch: []core.Key{{Value: 1, Origin: 0, Seq: 1}, {Value: 3, Origin: 1, Seq: 0}}, Start: 0, Total: 4},
		{Batch: []core.Key{{Value: 5, Origin: 0, Seq: 0}, {Value: 9, Origin: 1, Seq: 1}}, Start: 2, Total: 4},
	}
	if err := Sorting(input, good); err != nil {
		t.Fatal(err)
	}
	badOrder := []*core.SortResult{
		{Batch: []core.Key{{Value: 3, Origin: 1, Seq: 0}, {Value: 1, Origin: 0, Seq: 1}}, Start: 0, Total: 4},
		good[1],
	}
	if err := Sorting(input, badOrder); err == nil {
		t.Fatal("unsorted output accepted")
	}
	badStart := []*core.SortResult{
		good[0],
		{Batch: good[1].Batch, Start: 3, Total: 4},
	}
	if err := Sorting(input, badStart); err == nil {
		t.Fatal("non-contiguous batches accepted")
	}
	badTotal := []*core.SortResult{
		good[0],
		{Batch: good[1].Batch, Start: 2, Total: 7},
	}
	if err := Sorting(input, badTotal); err == nil {
		t.Fatal("wrong total accepted")
	}
	if err := Sorting(input, []*core.SortResult{good[0], nil}); err == nil {
		t.Fatal("missing result accepted")
	}
}

func TestRanksVerifier(t *testing.T) {
	t.Parallel()
	input := [][]core.Key{
		{{Value: 10, Origin: 0, Seq: 0}, {Value: 20, Origin: 0, Seq: 1}},
		{{Value: 10, Origin: 1, Seq: 0}},
	}
	good := []*core.RankResult{
		{Ranks: map[int]int{0: 0, 1: 1}, DistinctTotal: 2},
		{Ranks: map[int]int{0: 0}, DistinctTotal: 2},
	}
	if err := Ranks(input, good); err != nil {
		t.Fatal(err)
	}
	bad := []*core.RankResult{
		{Ranks: map[int]int{0: 1, 1: 1}, DistinctTotal: 2},
		good[1],
	}
	if err := Ranks(input, bad); err == nil {
		t.Fatal("wrong rank accepted")
	}
	badTotal := []*core.RankResult{
		{Ranks: map[int]int{0: 0, 1: 1}, DistinctTotal: 5},
		good[1],
	}
	if err := Ranks(input, badTotal); err == nil {
		t.Fatal("wrong distinct total accepted")
	}
	missing := []*core.RankResult{
		{Ranks: map[int]int{0: 0}, DistinctTotal: 2},
		good[1],
	}
	if err := Ranks(input, missing); err == nil {
		t.Fatal("missing rank accepted")
	}
}

func TestHistogramVerifier(t *testing.T) {
	t.Parallel()
	values := [][]int{{0, 1, 1}, {1}}
	good := &core.SmallKeyResult{Counts: []int64{1, 3}, Domain: 2}
	if err := Histogram(values, good); err != nil {
		t.Fatal(err)
	}
	bad := &core.SmallKeyResult{Counts: []int64{2, 2}, Domain: 2}
	if err := Histogram(values, bad); err == nil {
		t.Fatal("wrong histogram accepted")
	}
	if err := Histogram(values, nil); err == nil {
		t.Fatal("nil histogram accepted")
	}
	outOfDomain := [][]int{{5}}
	if err := Histogram(outOfDomain, good); err == nil {
		t.Fatal("out-of-domain value accepted")
	}
}
