// Package verify checks the outputs of routing and sorting executions
// against their instances. The benchmark harness refuses to report a
// measurement whose output fails verification, so every number in
// EXPERIMENTS.md corresponds to a correct execution.
package verify

import (
	"fmt"

	"congestedclique/internal/core"
)

// Routing checks that delivered[i] is exactly the multiset of instance
// messages addressed to node i.
func Routing(sent [][]core.Message, delivered [][]core.Message) error {
	n := len(sent)
	if len(delivered) != n {
		return fmt.Errorf("verify: %d delivery slots for %d nodes", len(delivered), n)
	}
	want := make([]map[core.Message]int, n)
	for i := range want {
		want[i] = make(map[core.Message]int)
	}
	total := 0
	for _, msgs := range sent {
		for _, m := range msgs {
			if m.Dst < 0 || m.Dst >= n {
				return fmt.Errorf("verify: instance message with destination %d out of range", m.Dst)
			}
			want[m.Dst][m]++
			total++
		}
	}
	got := 0
	for dst := 0; dst < n; dst++ {
		for _, m := range delivered[dst] {
			if m.Dst != dst {
				return fmt.Errorf("verify: node %d received message addressed to %d", dst, m.Dst)
			}
			if want[dst][m] == 0 {
				return fmt.Errorf("verify: node %d received unexpected or duplicate message %+v", dst, m)
			}
			want[dst][m]--
			got++
		}
	}
	if got != total {
		return fmt.Errorf("verify: delivered %d of %d messages", got, total)
	}
	return nil
}

// Sorting checks that the batches form the globally sorted sequence of the
// input keys, split contiguously and balanced across nodes.
func Sorting(input [][]core.Key, results []*core.SortResult) error {
	var want []core.Key
	for _, ks := range input {
		want = append(want, ks...)
	}
	core.SortKeySlice(want)

	n := len(results)
	var got []core.Key
	next := 0
	for i, res := range results {
		if res == nil {
			return fmt.Errorf("verify: node %d has no sorting result", i)
		}
		if res.Total != len(want) {
			return fmt.Errorf("verify: node %d reports %d total keys, want %d", i, res.Total, len(want))
		}
		if len(res.Batch) > 0 && res.Start != next {
			return fmt.Errorf("verify: node %d batch starts at %d, want %d", i, res.Start, next)
		}
		next += len(res.Batch)
		got = append(got, res.Batch...)
	}
	if len(got) != len(want) {
		return fmt.Errorf("verify: output holds %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("verify: rank %d holds %+v, want %+v", i, got[i], want[i])
		}
	}
	perNode := (len(want) + n - 1) / n
	if perNode == 0 {
		perNode = 1
	}
	for i, res := range results {
		if len(res.Batch) > perNode {
			return fmt.Errorf("verify: node %d holds %d keys, exceeding the balanced %d", i, len(res.Batch), perNode)
		}
	}
	return nil
}

// Ranks checks the Corollary 4.6 output: every input key's reported rank must
// equal the rank of its value among the distinct values of the union.
func Ranks(input [][]core.Key, results []*core.RankResult) error {
	distinct := map[int64]bool{}
	for _, ks := range input {
		for _, k := range ks {
			distinct[k.Value] = true
		}
	}
	values := make([]int64, 0, len(distinct))
	for v := range distinct {
		values = append(values, v)
	}
	for i := 1; i < len(values); i++ {
		for j := i; j > 0 && values[j] < values[j-1]; j-- {
			values[j], values[j-1] = values[j-1], values[j]
		}
	}
	rankOf := make(map[int64]int, len(values))
	for i, v := range values {
		rankOf[v] = i
	}
	for i, ks := range input {
		res := results[i]
		if res == nil {
			return fmt.Errorf("verify: node %d has no rank result", i)
		}
		if res.DistinctTotal != len(values) {
			return fmt.Errorf("verify: node %d reports %d distinct values, want %d", i, res.DistinctTotal, len(values))
		}
		for _, k := range ks {
			got, ok := res.Ranks[k.Seq]
			if !ok {
				return fmt.Errorf("verify: node %d missing rank for key seq %d", i, k.Seq)
			}
			if got != rankOf[k.Value] {
				return fmt.Errorf("verify: node %d key %d (value %d) ranked %d, want %d", i, k.Seq, k.Value, got, rankOf[k.Value])
			}
		}
	}
	return nil
}

// Histogram checks the Section 6.3 output against the true histogram.
func Histogram(values [][]int, result *core.SmallKeyResult) error {
	if result == nil {
		return fmt.Errorf("verify: missing histogram result")
	}
	want := make([]int64, result.Domain)
	for _, vs := range values {
		for _, v := range vs {
			if v < 0 || v >= result.Domain {
				return fmt.Errorf("verify: value %d outside domain %d", v, result.Domain)
			}
			want[v]++
		}
	}
	for v := range want {
		if result.Counts[v] != want[v] {
			return fmt.Errorf("verify: count of %d is %d, want %d", v, result.Counts[v], want[v])
		}
	}
	return nil
}
