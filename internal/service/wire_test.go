package service

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"

	cc "congestedclique"

	"congestedclique/internal/clique"
)

func TestRequestRoundTrip(t *testing.T) {
	n := 8
	reqs := []*Request{
		{ID: 7, Op: OpRoute, Deadline: 250 * time.Millisecond, FaultCancelRound: -1,
			Msgs: [][]cc.Message{
				{{Src: 0, Dst: 3, Seq: 0, Payload: 42}, {Src: 0, Dst: 1, Seq: 1, Payload: -7}},
				{},
				{{Src: 2, Dst: 2, Seq: 0, Payload: 1 << 40}},
			}},
		{ID: 8, Op: OpSort, NoBatch: true, Retries: 2, RetryBackoff: time.Millisecond,
			FaultCancelRound: 5,
			Values:           [][]int64{{5, -1, 3}, {}, {9}}},
		{ID: 9, Op: OpSortKeys, FaultCancelRound: -1,
			Keys: [][]cc.Key{{{Value: 4, Origin: 0, Seq: 1}}, {{Value: -2, Origin: 1, Seq: 0}}}},
		{ID: 10, Op: OpSelectKth, Arg: 3, FaultCancelRound: -1,
			Values: [][]int64{{1, 2}, {3}}},
		{ID: 11, Op: OpCountSmallKeys, Arg: 16, FaultCancelRound: -1,
			Ints: [][]int{{1, 15, 0}, {3}}},
		{ID: 12, Op: OpPing, FaultCancelRound: -1},
		{ID: 13, Op: OpServerStats, FaultCancelRound: -1},
	}
	for _, want := range reqs {
		frame := encodeRequest(nil, want)
		got, err := decodeRequest(frame, n)
		if err != nil {
			t.Fatalf("decode %v: %v", want.Op, err)
		}
		normalizeReq(want)
		normalizeReq(got)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v round trip:\n got %+v\nwant %+v", want.Op, got, want)
		}
	}
}

// normalizeReq maps empty payload rows to a canonical form: the wire cannot
// distinguish nil from empty slices.
func normalizeReq(r *Request) {
	for i, row := range r.Msgs {
		if len(row) == 0 {
			r.Msgs[i] = []cc.Message{}
		}
	}
	for i, row := range r.Values {
		if len(row) == 0 {
			r.Values[i] = []int64{}
		}
	}
	for i, row := range r.Keys {
		if len(row) == 0 {
			r.Keys[i] = []cc.Key{}
		}
	}
	for i, row := range r.Ints {
		if len(row) == 0 {
			r.Ints[i] = []int{}
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	n := 4
	cases := []struct {
		op   Op
		resp *Response
	}{
		{OpRoute, &Response{ID: 1, Strategy: int64(cc.StrategyDirect), Route: &RouteReply{
			Strategy: cc.StrategyDirect,
			Delivered: [][]cc.Message{
				{{Src: 1, Dst: 0, Seq: 0, Payload: 5}},
				nil,
				{{Src: 0, Dst: 2, Seq: 1, Payload: -9}, {Src: 3, Dst: 2, Seq: 0, Payload: 8}},
				nil,
			}}}},
		{OpSort, &Response{ID: 2, Strategy: int64(cc.SortStrategyPresorted), Sort: &SortReply{
			Total:    3,
			Starts:   []int{0, 1, 3, 3},
			Batches:  [][]cc.Key{{{Value: 1, Origin: 2, Seq: 0}}, {{Value: 2, Origin: 0, Seq: 0}, {Value: 3, Origin: 1, Seq: 1}}, nil, nil},
			Strategy: cc.SortStrategyPresorted,
		}}},
		{OpRank, &Response{ID: 3, Rank: &RankReply{DistinctTotal: 2, Ranks: [][]int{{0, 1}, {}, {1}, {}}}}},
		{OpMedian, &Response{ID: 4, Key: &cc.Key{Value: 11, Origin: 2, Seq: 3}}},
		{OpMode, &Response{ID: 5, Mode: &ModeReply{Value: -3, Count: 9}}},
		{OpCountSmallKeys, &Response{ID: 6, Counts: []int64{0, 4, 1}}},
		{OpPing, &Response{ID: 7, PingN: n}},
		{OpServerStats, &Response{ID: 8, Stats: &StatsReply{
			N: n, MaxConcurrency: 2, QueueDepth: 8, BatchMaxOps: 4, Draining: true,
			Operations: 10, Rounds: 160, TotalMessages: 99, TotalWords: 400,
			Retries: 1, FailedOperations: 2, SheddedOps: 3, DrainRejected: 4,
			BatchedRuns: 5, BatchedOps: 6,
			PlanCacheHits: 7, PlanCacheMisses: 8, PlanCacheInvalidations: 9,
		}}},
		{OpRoute, &Response{ID: 9, Status: StatusOverloaded, Err: ErrOverloaded.Error()}},
		{OpSort, &Response{ID: 10, Status: StatusDraining, Err: ErrDraining.Error()}},
	}
	for _, tc := range cases {
		frame := encodeResponse(nil, tc.resp)
		got, err := decodeResponse(frame, tc.op, n)
		if err != nil {
			t.Fatalf("decode %v: %v", tc.op, err)
		}
		normalizeResp(tc.resp)
		normalizeResp(got)
		if !reflect.DeepEqual(got, tc.resp) {
			t.Errorf("%v round trip:\n got %+v\nwant %+v", tc.op, got, tc.resp)
		}
	}
}

func normalizeResp(r *Response) {
	if r.Route != nil {
		for i, row := range r.Route.Delivered {
			if len(row) == 0 {
				r.Route.Delivered[i] = nil
			}
		}
	}
	if r.Sort != nil {
		for i, row := range r.Sort.Batches {
			if len(row) == 0 {
				r.Sort.Batches[i] = nil
			}
		}
	}
	if r.Rank != nil {
		for i, row := range r.Rank.Ranks {
			if len(row) == 0 {
				r.Rank.Ranks[i] = nil
			}
		}
	}
}

func TestErrorStringRoundTrip(t *testing.T) {
	for _, s := range []string{"", "x", "exactly8", "a longer error message with details: n=64, op=route", strings.Repeat("y", 5000)} {
		resp := &Response{ID: 1, Status: StatusInternal, Err: s}
		frame := encodeResponse(nil, resp)
		got, err := decodeResponse(frame, OpRoute, 4)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		want := s
		if len(want) > (maxErrWords-1)*8 {
			want = want[:(maxErrWords-1)*8]
		}
		if got.Err != want {
			t.Errorf("error string %q came back %q", want, got.Err)
		}
	}
}

func TestDecodeRequestRejectsMalformed(t *testing.T) {
	n := 4
	valid := encodeRequest(nil, &Request{ID: 1, Op: OpRoute, FaultCancelRound: -1,
		Msgs: [][]cc.Message{{{Src: 0, Dst: 1, Seq: 0, Payload: 7}}}})
	if _, err := decodeRequest(valid, n); err != nil {
		t.Fatalf("valid frame rejected: %v", err)
	}
	mutate := func(f []clique.Word, at int, v clique.Word) []clique.Word {
		out := append([]clique.Word(nil), f...)
		out[at] = v
		return out
	}
	cases := map[string][]clique.Word{
		"empty":           {},
		"zero bodies":     {0},
		"bad magic":       mutate(valid, 2, 0xBAD),
		"bad version":     mutate(valid, 3, 99),
		"truncated":       valid[:len(valid)-1],
		"trailing words":  append(append([]clique.Word(nil), valid...), 0),
		"negative count":  mutate(valid, 0, -1),
		"oversized count": mutate(valid, 0, 1<<40),
		"short header":    {1, 2, wireMagic, wireVersion},
		"unknown op":      mutate(valid, 5, 77),
		"neg deadline":    mutate(valid, 6, -5),
		"fault too low":   mutate(valid, 9, -2),
		"row not triple":  mutate(valid, 12, 4),
	}
	for name, frame := range cases {
		if _, err := decodeRequest(frame, n); err == nil {
			t.Errorf("%s: malformed frame accepted", name)
		}
	}

	// Shape violations against n: more rows than nodes, more messages than n
	// in one row.
	tooManyRows := encodeRequest(nil, &Request{Op: OpSort, FaultCancelRound: -1,
		Values: [][]int64{{1}, {2}, {3}, {4}, {5}}})
	if _, err := decodeRequest(tooManyRows, n); err == nil {
		t.Error("request with more rows than nodes accepted")
	}
	wideRow := encodeRequest(nil, &Request{Op: OpSort, FaultCancelRound: -1,
		Values: [][]int64{{1, 2, 3, 4, 5}}})
	if _, err := decodeRequest(wideRow, n); err == nil {
		t.Error("request with more values than n in one row accepted")
	}
}

func TestReadFrameBoundsAllocation(t *testing.T) {
	// A frame declaring an enormous word count must be rejected from the
	// 8-byte prefix alone, before any allocation.
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], 1<<40)
	_, err := readFrame(bytes.NewReader(hdr[:]), wireLimitWords(64))
	if !errors.Is(err, errFrameTooLarge) {
		t.Fatalf("oversized frame: got %v, want errFrameTooLarge", err)
	}

	binary.BigEndian.PutUint64(hdr[:], 0)
	if _, err := readFrame(bytes.NewReader(hdr[:]), wireLimitWords(64)); err == nil {
		t.Fatal("empty frame accepted")
	}

	// Truncated body: prefix promises 4 words, stream ends after 1.
	buf := appendFrameBytes(nil, []clique.Word{3, 1, 0, 0})
	if _, err := readFrame(bytes.NewReader(buf[:16]), wireLimitWords(64)); err == nil {
		t.Fatal("truncated frame accepted")
	}

	// Clean EOF between frames is io.EOF verbatim.
	if _, err := readFrame(bytes.NewReader(nil), 16); err != io.EOF {
		t.Fatalf("empty stream: got %v, want io.EOF", err)
	}
}

// FuzzWireDecode fuzzes the service wire decoder end to end: arbitrary bytes
// go through the length-prefixed frame reader (with the server's allocation
// bound) and then through both the request and the response decoder.
// Whatever the input, the decoders must return an error or a value — never
// panic — and must reject oversized frames before allocating.
func FuzzWireDecode(f *testing.F) {
	const n = 16
	req := encodeRequest(nil, &Request{ID: 3, Op: OpRoute, FaultCancelRound: -1,
		Msgs: [][]cc.Message{{{Src: 0, Dst: 5, Seq: 0, Payload: 99}}, {{Src: 1, Dst: 0, Seq: 0, Payload: -1}}}})
	f.Add(appendFrameBytes(nil, req))
	resp := encodeResponse(nil, &Response{ID: 3, Strategy: int64(cc.StrategyDirect), Route: &RouteReply{
		Delivered: make([][]cc.Message, n), Strategy: cc.StrategyDirect}})
	f.Add(appendFrameBytes(nil, resp))
	f.Add(appendFrameBytes(nil, encodeResponse(nil, &Response{ID: 1, Status: StatusInternal, Err: "boom"})))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 3, 1, 2, 3})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := readFrame(bytes.NewReader(data), wireLimitWords(n))
		if err != nil {
			return
		}
		if len(frame) > wireLimitWords(n) {
			t.Fatalf("readFrame returned %d words above its %d limit", len(frame), wireLimitWords(n))
		}
		if req, err := decodeRequest(frame, n); err == nil {
			// Whatever decodes must re-encode to a decodable frame.
			if _, err := decodeRequest(encodeRequest(nil, req), n); err != nil {
				t.Fatalf("re-encoded request rejected: %v", err)
			}
		}
		for _, op := range []Op{OpRoute, OpSort, OpSortKeys, OpRank, OpSelectKth, OpMedian, OpMode, OpCountSmallKeys, OpPing, OpServerStats} {
			decodeResponse(frame, op, n) //nolint:errcheck // must not panic
		}
	})
}
