package service

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	cc "congestedclique"

	"congestedclique/internal/clique"
)

// Config parameterizes a Server. The zero value of every field selects a
// sensible default (see NewServer); only N is mandatory.
type Config struct {
	// N is the clique size every served instance must match.
	N int
	// MaxConcurrency bounds simultaneous engine runs (the session pool's
	// WithMaxConcurrency) and sets the worker count. Default 2.
	MaxConcurrency int
	// QueueDepth bounds the admission queue. A request arriving when the
	// queue is full is shed immediately with ErrOverloaded — the explicit
	// shed-over-queue policy: bounded memory and bounded queueing delay,
	// never unbounded buffering. Default 4×MaxConcurrency.
	QueueDepth int
	// BatchMaxOps caps how many compatible small Route requests one engine
	// run may serve. 1 disables batching. Default 1.
	BatchMaxOps int
	// BatchWait is how long a worker holding one batchable request waits for
	// companions before running (0 = opportunistic only: batch whatever is
	// already queued).
	BatchWait time.Duration
	// DefaultDeadline applies to requests that carry none (0 = unlimited).
	DefaultDeadline time.Duration
	// Retries and RetryBackoff are the transient-retry budget (WithRetry)
	// for requests that do not set their own.
	Retries      int
	RetryBackoff time.Duration
	// RoundDeadline, when > 0, arms the per-round watchdog on the handle.
	RoundDeadline time.Duration
	// Algorithm overrides the algorithm for every operation (0 = session
	// default).
	Algorithm cc.Algorithm
	// AllowFaultInjection permits requests to carry a FaultCancelRound
	// (chaos hook for faulted load runs). Off by default: a production
	// server must not let clients cancel engine rounds.
	AllowFaultInjection bool
	// PlanCacheCapacity, when > 0, arms the cross-run plan and schedule
	// cache on the handle (WithPlanCache): AlgorithmAuto requests carrying
	// demand the server has seen before reuse the validated plan, with the
	// census charged on the wire. 0 disables (the default).
	PlanCacheCapacity int
	// ChargedCensus arms the charged planner census (WithChargedCensus)
	// without the cache; implied by PlanCacheCapacity > 0.
	ChargedCensus bool
}

// Server is the network front-end: it accepts wire-protocol connections,
// admits requests through a bounded queue, and serves them on one pooled
// session handle. Create with NewServer, run with Serve, stop with Shutdown.
type Server struct {
	cfg Config
	cl  *cc.Clique

	queue   chan *pending
	workers sync.WaitGroup

	mu       sync.Mutex
	draining bool
	ln       net.Listener
	conns    map[net.Conn]struct{}
	served   bool

	// accepted tracks admitted-but-unfinished requests; Shutdown waits on it
	// before closing the queue.
	accepted sync.WaitGroup
	connWG   sync.WaitGroup

	shedded       atomic.Int64
	drainRejected atomic.Int64
	batchedRuns   atomic.Int64
	batchedOps    atomic.Int64

	shutdownOnce sync.Once
	shutdownErr  error
}

// pending is one admitted request awaiting a worker.
type pending struct {
	req      *Request
	conn     *serverConn
	admitted time.Time
	// deadline is the absolute deadline (zero = none), fixed at admission so
	// queueing time counts against the request's budget.
	deadline time.Time
}

// serverConn serializes response writes of one connection; workers finishing
// out of order interleave whole frames, never partial ones.
type serverConn struct {
	c     net.Conn
	mu    sync.Mutex
	frame []clique.Word
	buf   []byte
}

func (sc *serverConn) writeResponse(resp *Response) error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.frame = encodeResponse(sc.frame[:0], resp)
	sc.buf = appendFrameBytes(sc.buf[:0], sc.frame)
	_, err := sc.c.Write(sc.buf)
	return err
}

// NewServer builds a server and its pooled session handle.
func NewServer(cfg Config) (*Server, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("service: clique size %d, need at least 2", cfg.N)
	}
	if cfg.MaxConcurrency <= 0 {
		cfg.MaxConcurrency = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.MaxConcurrency
	}
	if cfg.BatchMaxOps <= 0 {
		cfg.BatchMaxOps = 1
	}
	if cfg.Retries < 0 || cfg.RetryBackoff < 0 {
		return nil, errors.New("service: negative retry configuration")
	}
	if cfg.PlanCacheCapacity < 0 {
		return nil, errors.New("service: negative plan-cache capacity")
	}
	opts := []cc.Option{cc.WithMaxConcurrency(cfg.MaxConcurrency)}
	if cfg.RoundDeadline > 0 {
		opts = append(opts, cc.WithRoundDeadline(cfg.RoundDeadline))
	}
	if cfg.PlanCacheCapacity > 0 {
		opts = append(opts, cc.WithPlanCache(cfg.PlanCacheCapacity))
	} else if cfg.ChargedCensus {
		opts = append(opts, cc.WithChargedCensus())
	}
	cl, err := cc.New(cfg.N, opts...)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		cl:    cl,
		queue: make(chan *pending, cfg.QueueDepth),
		conns: make(map[net.Conn]struct{}),
	}
	s.workers.Add(cfg.MaxConcurrency)
	for i := 0; i < cfg.MaxConcurrency; i++ {
		go s.worker()
	}
	return s, nil
}

// N returns the clique size the server serves.
func (s *Server) N() int { return s.cfg.N }

// Serve accepts connections on ln until Shutdown closes it. It returns nil
// on a drain-initiated stop and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return ErrDraining
	}
	s.ln = ln
	s.served = true
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			c.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go s.handleConn(c)
	}
}

// handleConn reads requests off one connection until EOF, a protocol error,
// or shutdown. Ping and ServerStats are answered inline (they must stay
// responsive under overload); everything else goes through admission.
func (s *Server) handleConn(c net.Conn) {
	defer s.connWG.Done()
	sc := &serverConn{c: c}
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
	}()
	limit := wireLimitWords(s.cfg.N)
	for {
		frame, err := readFrame(c, limit)
		if err != nil {
			// EOF and closed-connection errors end the session silently; a
			// malformed or oversized frame earns one last diagnostic (the
			// peer's framing is broken, so the ID is unknowable — 0).
			if errors.Is(err, errFrameTooLarge) {
				sc.writeResponse(&Response{Status: StatusInvalid, Err: err.Error()})
			}
			return
		}
		req, err := decodeRequest(frame, s.cfg.N)
		if err != nil {
			sc.writeResponse(&Response{Status: StatusInvalid, Err: err.Error()})
			return
		}
		switch req.Op {
		case OpPing:
			sc.writeResponse(&Response{ID: req.ID, PingN: s.cfg.N})
			continue
		case OpServerStats:
			st := s.Stats()
			sc.writeResponse(&Response{ID: req.ID, Stats: &st})
			continue
		}
		if req.FaultCancelRound >= 0 && !s.cfg.AllowFaultInjection {
			sc.writeResponse(&Response{ID: req.ID, Status: StatusUnsupported,
				Err: "service: fault injection disabled on this server"})
			continue
		}
		if rej := s.admit(req, sc); rej != nil {
			sc.writeResponse(rej)
		}
	}
}

// admit applies the drain check and the bounded-queue shed policy. It
// returns nil when the request was queued, or the rejection response.
func (s *Server) admit(req *Request, sc *serverConn) *Response {
	now := time.Now()
	p := &pending{req: req, conn: sc, admitted: now}
	d := req.Deadline
	if d == 0 {
		d = s.cfg.DefaultDeadline
	}
	if d > 0 {
		p.deadline = now.Add(d)
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.drainRejected.Add(1)
		return &Response{ID: req.ID, Status: StatusDraining, Err: ErrDraining.Error()}
	}
	// Add under the same lock that guards draining: Shutdown flips draining
	// before waiting, so every Add either precedes the Wait or is rejected.
	s.accepted.Add(1)
	s.mu.Unlock()
	select {
	case s.queue <- p:
		return nil
	default:
		s.accepted.Done()
		s.shedded.Add(1)
		return &Response{ID: req.ID, Status: StatusOverloaded, Err: ErrOverloaded.Error()}
	}
}

// worker pulls admitted requests and serves them, batching compatible Route
// requests when configured. carry holds a request pulled during batch
// collection that could not join the batch.
func (s *Server) worker() {
	defer s.workers.Done()
	var carry *pending
	for {
		var p *pending
		if carry != nil {
			p, carry = carry, nil
		} else {
			var ok bool
			p, ok = <-s.queue
			if !ok {
				return
			}
		}
		if s.cfg.BatchMaxOps > 1 && batchable(p) {
			var batch []*pending
			batch, carry = s.collectBatch(p)
			s.runBatch(batch)
			continue
		}
		s.finish(p, s.execute(p))
	}
}

// finish writes the response and releases the request's admission slot. A
// write error means the client is gone; the result is dropped.
func (s *Server) finish(p *pending, resp *Response) {
	p.conn.writeResponse(resp)
	s.accepted.Done()
}

// execute serves one request on the session handle, honoring its deadline
// and retry budget, and maps the outcome to a wire response.
func (s *Server) execute(p *pending) *Response {
	req := p.req
	ctx := context.Background()
	if !p.deadline.IsZero() {
		if !time.Now().Before(p.deadline) {
			return errResponse(req.ID, context.DeadlineExceeded)
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, p.deadline)
		defer cancel()
	}
	opts := s.opOptions(req)
	switch req.Op {
	case OpRoute:
		res, err := s.cl.Route(ctx, req.Msgs, opts...)
		if err != nil {
			return errResponse(req.ID, err)
		}
		return routeResponse(req.ID, res.Delivered, res.Strategy)
	case OpSort:
		res, err := s.cl.Sort(ctx, req.Values, opts...)
		if err != nil {
			return errResponse(req.ID, err)
		}
		return sortResponse(req.ID, res)
	case OpSortKeys:
		res, err := s.cl.SortKeys(ctx, req.Keys, opts...)
		if err != nil {
			return errResponse(req.ID, err)
		}
		return sortResponse(req.ID, res)
	case OpRank:
		res, err := s.cl.Rank(ctx, req.Values, opts...)
		if err != nil {
			return errResponse(req.ID, err)
		}
		return &Response{ID: req.ID, Rank: &RankReply{DistinctTotal: res.DistinctTotal, Ranks: res.Ranks}}
	case OpSelectKth:
		key, _, err := s.cl.SelectKth(ctx, req.Values, int(req.Arg), opts...)
		if err != nil {
			return errResponse(req.ID, err)
		}
		return &Response{ID: req.ID, Key: &key}
	case OpMedian:
		key, _, err := s.cl.Median(ctx, req.Values, opts...)
		if err != nil {
			return errResponse(req.ID, err)
		}
		return &Response{ID: req.ID, Key: &key}
	case OpMode:
		res, err := s.cl.Mode(ctx, req.Values, opts...)
		if err != nil {
			return errResponse(req.ID, err)
		}
		return &Response{ID: req.ID, Mode: &ModeReply{Value: res.Value, Count: int64(res.Count)}}
	case OpCountSmallKeys:
		res, err := s.cl.CountSmallKeys(ctx, req.Ints, int(req.Arg), opts...)
		if err != nil {
			return errResponse(req.ID, err)
		}
		return &Response{ID: req.ID, Counts: res.Counts}
	default:
		return &Response{ID: req.ID, Status: StatusUnsupported,
			Err: fmt.Sprintf("service: unsupported op %v", req.Op)}
	}
}

// opOptions assembles the session options of one request: algorithm
// override, retry budget (request's own, falling back to the server
// default), and — only when the server allows it — the injected fault.
func (s *Server) opOptions(req *Request) []cc.Option {
	var opts []cc.Option
	if s.cfg.Algorithm != 0 {
		opts = append(opts, cc.WithAlgorithm(s.cfg.Algorithm))
	}
	retries, backoff := req.Retries, req.RetryBackoff
	if retries == 0 {
		retries, backoff = s.cfg.Retries, s.cfg.RetryBackoff
	}
	if retries > 0 {
		opts = append(opts, cc.WithRetry(retries, backoff))
	}
	if req.FaultCancelRound >= 0 && s.cfg.AllowFaultInjection {
		opts = append(opts, cc.WithInjectedCancel(req.FaultCancelRound))
	}
	return opts
}

// errResponse maps a session error to its wire status.
func errResponse(id uint64, err error) *Response {
	st := StatusInternal
	switch {
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, cc.ErrRoundDeadline):
		st = StatusDeadlineExceeded
	case errors.Is(err, cc.ErrInvalidInstance):
		st = StatusInvalid
	case errors.Is(err, cc.ErrUnsupportedAlgorithm):
		st = StatusUnsupported
	case errors.Is(err, cc.ErrClosed):
		st = StatusDraining
	}
	return &Response{ID: id, Status: st, Err: err.Error()}
}

// routeResponse builds an OpRoute reply with every delivered row in the wire
// protocol's canonical (Src, Seq) order — the order is part of the protocol
// so that batched and unbatched executions of the same request are
// bit-identical on the wire.
func routeResponse(id uint64, delivered [][]cc.Message, strategy cc.RouteStrategy) *Response {
	rows := make([][]cc.Message, len(delivered))
	for i, row := range delivered {
		r := append([]cc.Message(nil), row...)
		canonicalizeRow(r)
		rows[i] = r
	}
	return &Response{ID: id, Strategy: int64(strategy), Route: &RouteReply{Delivered: rows, Strategy: strategy}}
}

// canonicalizeRow sorts one destination's delivered messages by (Src, Seq).
func canonicalizeRow(row []cc.Message) {
	sort.Slice(row, func(a, b int) bool {
		if row[a].Src != row[b].Src {
			return row[a].Src < row[b].Src
		}
		return row[a].Seq < row[b].Seq
	})
}

func sortResponse(id uint64, res *cc.SortResult) *Response {
	return &Response{ID: id, Strategy: int64(res.Strategy), Sort: &SortReply{
		Total:    res.Total,
		Starts:   res.Starts,
		Batches:  res.Batches,
		Strategy: res.Strategy,
	}}
}

// Stats snapshots the server's counters (answered inline for OpServerStats,
// so it stays reachable while the admission queue is full).
func (s *Server) Stats() StatsReply {
	cs := s.cl.CumulativeStats()
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	return StatsReply{
		N:                s.cfg.N,
		MaxConcurrency:   s.cfg.MaxConcurrency,
		QueueDepth:       s.cfg.QueueDepth,
		BatchMaxOps:      s.cfg.BatchMaxOps,
		Draining:         draining,
		Operations:       int64(cs.Operations),
		Rounds:           int64(cs.Rounds),
		TotalMessages:    cs.TotalMessages,
		TotalWords:       cs.TotalWords,
		Retries:          cs.Retries,
		FailedOperations: cs.FailedOperations,
		SheddedOps:       s.shedded.Load(),
		DrainRejected:    s.drainRejected.Load(),
		BatchedRuns:      s.batchedRuns.Load(),
		BatchedOps:       s.batchedOps.Load(),

		PlanCacheHits:          cs.PlanCacheHits,
		PlanCacheMisses:        cs.PlanCacheMisses,
		PlanCacheInvalidations: cs.PlanCacheInvalidations,
	}
}

// Shutdown drains the server gracefully: stop accepting (listener closed,
// late requests get ErrDraining), let every admitted request finish and its
// response reach the wire, then stop the workers, close the connections and
// the session handle. If ctx expires first the session handle is closed
// immediately — in-flight engine runs abort with ErrClosed — and ctx.Err()
// is returned after teardown.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutdownOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		ln := s.ln
		s.mu.Unlock()
		if ln != nil {
			ln.Close()
		}
		done := make(chan struct{})
		go func() {
			s.accepted.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			s.shutdownErr = ctx.Err()
			s.cl.Close()
			<-done
		}
		close(s.queue)
		s.workers.Wait()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		s.connWG.Wait()
		if err := s.cl.Close(); err != nil && !errors.Is(err, cc.ErrClosed) && s.shutdownErr == nil {
			s.shutdownErr = err
		}
	})
	return s.shutdownErr
}
