package service

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	cc "congestedclique"
)

// startServer launches a server on a loopback port and returns it with its
// address. Cleanup drains it (idempotent if the test already shut it down).
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

func dialT(t *testing.T, addr string) *Client {
	t.Helper()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// routeInstance builds a valid Route instance: perNode messages per source,
// destinations striped so no receiver exceeds its cap.
func routeInstance(n, perNode int, rng *rand.Rand) [][]cc.Message {
	msgs := make([][]cc.Message, n)
	for i := range msgs {
		row := make([]cc.Message, perNode)
		for j := range row {
			row[j] = cc.Message{Src: i, Dst: (i + j*7 + 1) % n, Seq: j, Payload: rng.Int63n(1 << 32)}
		}
		msgs[i] = row
	}
	return msgs
}

func valuesInstance(n, perNode int, rng *rand.Rand) [][]int64 {
	values := make([][]int64, n)
	for i := range values {
		row := make([]int64, perNode)
		for j := range row {
			row[j] = rng.Int63n(1000)
		}
		values[i] = row
	}
	return values
}

// goldenRoute runs the instance in-process and canonicalizes the delivery
// exactly as the wire protocol does.
func goldenRoute(t *testing.T, n int, msgs [][]cc.Message) [][]cc.Message {
	t.Helper()
	res, err := cc.Route(n, msgs)
	if err != nil {
		t.Fatalf("golden route: %v", err)
	}
	rows := make([][]cc.Message, len(res.Delivered))
	for i, row := range res.Delivered {
		if len(row) == 0 {
			continue
		}
		r := append([]cc.Message(nil), row...)
		canonicalizeRow(r)
		rows[i] = r
	}
	return rows
}

func normRows(rows [][]cc.Message) [][]cc.Message {
	out := make([][]cc.Message, len(rows))
	for i, r := range rows {
		if len(r) > 0 {
			out[i] = r
		}
	}
	return out
}

func normKeyRows(rows [][]cc.Key) [][]cc.Key {
	out := make([][]cc.Key, len(rows))
	for i, r := range rows {
		if len(r) > 0 {
			out[i] = r
		}
	}
	return out
}

// checkRouteGolden asserts a networked delivery is bit-identical to the
// in-process golden.
func checkRouteGolden(t *testing.T, got *RouteReply, golden [][]cc.Message) {
	t.Helper()
	if !reflect.DeepEqual(normRows(got.Delivered), normRows(golden)) {
		t.Fatalf("networked route delivery differs from in-process golden:\n got %v\nwant %v",
			got.Delivered, golden)
	}
}

func TestServiceEndToEndAllOps(t *testing.T) {
	const n = 16
	_, addr := startServer(t, Config{N: n, MaxConcurrency: 2})
	cl := dialT(t, addr)
	if cl.N() != n {
		t.Fatalf("handshake n=%d, want %d", cl.N(), n)
	}
	rng := rand.New(rand.NewSource(1))

	msgs := routeInstance(n, 3, rng)
	rep, err := cl.Route(msgs, nil)
	if err != nil {
		t.Fatalf("route: %v", err)
	}
	checkRouteGolden(t, rep, goldenRoute(t, n, msgs))

	values := valuesInstance(n, 4, rng)
	sortRep, err := cl.Sort(values, nil)
	if err != nil {
		t.Fatalf("sort: %v", err)
	}
	sortGold, err := cc.Sort(n, values)
	if err != nil {
		t.Fatalf("golden sort: %v", err)
	}
	if sortRep.Total != sortGold.Total || !reflect.DeepEqual(sortRep.Starts, sortGold.Starts) ||
		!reflect.DeepEqual(normKeyRows(sortRep.Batches), normKeyRows(sortGold.Batches)) {
		t.Fatalf("networked sort differs from golden:\n got %+v\nwant %+v", sortRep, sortGold)
	}

	keys := make([][]cc.Key, n)
	for i := range keys {
		keys[i] = []cc.Key{{Value: rng.Int63n(100), Origin: i, Seq: 0}, {Value: rng.Int63n(100), Origin: i, Seq: 1}}
	}
	skRep, err := cl.SortKeys(keys, nil)
	if err != nil {
		t.Fatalf("sortkeys: %v", err)
	}
	skGold, err := cc.SortKeys(n, keys)
	if err != nil {
		t.Fatalf("golden sortkeys: %v", err)
	}
	if skRep.Total != skGold.Total || !reflect.DeepEqual(normKeyRows(skRep.Batches), normKeyRows(skGold.Batches)) {
		t.Fatalf("networked sortkeys differs from golden")
	}

	rankRep, err := cl.Rank(values, nil)
	if err != nil {
		t.Fatalf("rank: %v", err)
	}
	rankGold, err := cc.Rank(n, values)
	if err != nil {
		t.Fatalf("golden rank: %v", err)
	}
	if rankRep.DistinctTotal != rankGold.DistinctTotal || !reflect.DeepEqual(rankRep.Ranks, rankGold.Ranks) {
		t.Fatalf("networked rank differs from golden:\n got %+v\nwant %+v", rankRep, rankGold)
	}

	k := 7
	kth, err := cl.SelectKth(values, k, nil)
	if err != nil {
		t.Fatalf("selectkth: %v", err)
	}
	kthGold, _, err := cc.SelectKth(n, values, k)
	if err != nil {
		t.Fatalf("golden selectkth: %v", err)
	}
	if kth != kthGold {
		t.Fatalf("networked selectkth %+v, golden %+v", kth, kthGold)
	}

	med, err := cl.Median(values, nil)
	if err != nil {
		t.Fatalf("median: %v", err)
	}
	medGold, _, err := cc.Median(n, values)
	if err != nil {
		t.Fatalf("golden median: %v", err)
	}
	if med != medGold {
		t.Fatalf("networked median %+v, golden %+v", med, medGold)
	}

	modeRep, err := cl.Mode(values, nil)
	if err != nil {
		t.Fatalf("mode: %v", err)
	}
	modeGold, err := cc.Mode(n, values)
	if err != nil {
		t.Fatalf("golden mode: %v", err)
	}
	if modeRep.Value != modeGold.Value || modeRep.Count != int64(modeGold.Count) {
		t.Fatalf("networked mode %+v, golden %+v", modeRep, modeGold)
	}

	if pn, err := cl.Ping(); err != nil || pn != n {
		t.Fatalf("ping: %d, %v", pn, err)
	}
	st, err := cl.ServerStats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.N != n || st.Operations == 0 {
		t.Fatalf("stats implausible: %+v", st)
	}
}

// TestCountSmallKeysOverWire lives apart from the other ops: the Section 6.3
// helper-node requirement (domain × log²n ≤ n) needs a larger clique.
func TestCountSmallKeysOverWire(t *testing.T) {
	const n, domain = 128, 2
	_, addr := startServer(t, Config{N: n})
	cl := dialT(t, addr)
	ints := make([][]int, n)
	for i := range ints {
		ints[i] = []int{i % domain, (i + 1) % domain, i % domain}
	}
	counts, err := cl.CountSmallKeys(ints, domain, nil)
	if err != nil {
		t.Fatalf("countsmallkeys: %v", err)
	}
	gold, err := cc.CountSmallKeys(n, ints, domain)
	if err != nil {
		t.Fatalf("golden countsmallkeys: %v", err)
	}
	if !reflect.DeepEqual(counts, gold.Counts) {
		t.Fatalf("networked histogram %v, golden %v", counts, gold.Counts)
	}
}

func TestInvalidInstanceStatus(t *testing.T) {
	const n = 8
	_, addr := startServer(t, Config{N: n})
	cl := dialT(t, addr)
	// Duplicate sequence numbers on one source: the session layer must
	// reject it and the client must surface StatusInvalid.
	msgs := [][]cc.Message{{
		{Src: 0, Dst: 1, Seq: 0, Payload: 1},
		{Src: 0, Dst: 2, Seq: 0, Payload: 2},
	}}
	_, err := cl.Route(msgs, nil)
	if err == nil {
		t.Fatal("duplicate-seq instance not rejected")
	}
	if !strings.Contains(err.Error(), StatusInvalid.String()) {
		t.Fatalf("duplicate-seq instance rejected with %v, want %v", err, StatusInvalid)
	}
	// The connection survives an invalid instance: the next call works.
	if _, err := cl.Ping(); err != nil {
		t.Fatalf("ping after invalid instance: %v", err)
	}
}

func TestMalformedFrameGetsDiagnosticAndClose(t *testing.T) {
	const n = 8
	_, addr := startServer(t, Config{N: n})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	// A structurally valid frame that is not a valid request: one body of
	// one word (no header).
	buf := appendFrameBytes(nil, []int64{1, 1, 99})
	if _, err := conn.Write(buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	frame, err := readFrame(conn, wireLimitWords(n))
	if err != nil {
		t.Fatalf("no diagnostic response: %v", err)
	}
	resp, err := decodeResponse(frame, OpPing, n)
	if err != nil {
		t.Fatalf("diagnostic undecodable: %v", err)
	}
	if resp.Status != StatusInvalid || resp.ID != 0 {
		t.Fatalf("diagnostic = %+v, want StatusInvalid with ID 0", resp)
	}
	// After the diagnostic the server hangs up.
	if _, err := readFrame(conn, wireLimitWords(n)); err == nil {
		t.Fatal("server kept the connection after a malformed frame")
	}
}

func TestOverloadShedsWithNamedError(t *testing.T) {
	const n = 16
	srv, addr := startServer(t, Config{N: n, MaxConcurrency: 1, QueueDepth: 1})
	cl := dialT(t, addr)
	rng := rand.New(rand.NewSource(2))
	msgs := routeInstance(n, 4, rng)
	golden := goldenRoute(t, n, msgs)

	const calls = 32
	var wg sync.WaitGroup
	var mu sync.Mutex
	var ok, shed int
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rep, err := cl.Route(msgs, nil)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				ok++
				checkRouteGolden(t, rep, golden)
			case errors.Is(err, ErrOverloaded):
				shed++
			default:
				t.Errorf("unexpected error under overload: %v", err)
			}
		}()
	}
	wg.Wait()
	if ok == 0 {
		t.Fatal("no request succeeded under overload")
	}
	if shed == 0 {
		t.Fatal("bounded queue never shed under 32 concurrent requests with queue depth 1")
	}
	st := srv.Stats()
	if st.SheddedOps != int64(shed) {
		t.Fatalf("server counted %d shed ops, clients saw %d", st.SheddedOps, shed)
	}
	if st.FailedOperations != 0 {
		t.Fatalf("engine reported %d failed operations; sheds must not reach the engine", st.FailedOperations)
	}
}

func TestBatchingBitIdenticalToUnbatched(t *testing.T) {
	const n = 16
	srv, addr := startServer(t, Config{N: n, MaxConcurrency: 1, QueueDepth: 32,
		BatchMaxOps: 8, BatchWait: 20 * time.Millisecond})
	cl := dialT(t, addr)
	rng := rand.New(rand.NewSource(3))

	// Eight distinct small instances, each with its own golden.
	const reqs = 8
	instances := make([][][]cc.Message, reqs)
	goldens := make([][][]cc.Message, reqs)
	for k := range instances {
		msgs := make([][]cc.Message, n)
		for i := 0; i < 3; i++ {
			src := (k*5 + i*3) % n
			msgs[src] = append(msgs[src], cc.Message{
				Src: src, Dst: rng.Intn(n), Seq: len(msgs[src]), Payload: rng.Int63n(1 << 30)})
		}
		instances[k] = msgs
		goldens[k] = goldenRoute(t, n, msgs)
	}

	var wg sync.WaitGroup
	for k := 0; k < reqs; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			rep, err := cl.Route(instances[k], nil)
			if err != nil {
				t.Errorf("batched route %d: %v", k, err)
				return
			}
			checkRouteGolden(t, rep, goldens[k])
		}(k)
	}
	wg.Wait()
	if st := srv.Stats(); st.BatchedRuns == 0 {
		t.Logf("note: no batch formed (timing); correctness still verified")
	} else {
		t.Logf("batched %d ops into %d runs", st.BatchedOps, st.BatchedRuns)
	}

	// NoBatch requests bypass merging and stay bit-identical too.
	rep, err := cl.Route(instances[0], &CallOpts{NoBatch: true})
	if err != nil {
		t.Fatalf("nobatch route: %v", err)
	}
	checkRouteGolden(t, rep, goldens[0])
}

// TestBatchFormsWhilePoolBusy pins the deterministic batching path: with one
// worker held busy by a NoBatch request, subsequent small requests pile up
// in the queue and must merge into one engine run.
func TestBatchFormsWhilePoolBusy(t *testing.T) {
	const n = 16
	srv, addr := startServer(t, Config{N: n, MaxConcurrency: 1, QueueDepth: 32,
		BatchMaxOps: 8, BatchWait: 50 * time.Millisecond})
	cl := dialT(t, addr)
	rng := rand.New(rand.NewSource(4))
	big := routeInstance(n, 4, rng)

	small := make([][][]cc.Message, 4)
	goldens := make([][][]cc.Message, 4)
	for k := range small {
		msgs := make([][]cc.Message, n)
		src := k % n
		msgs[src] = []cc.Message{{Src: src, Dst: (src + 1) % n, Seq: 0, Payload: int64(1000 + k)}}
		small[k] = msgs
		goldens[k] = goldenRoute(t, n, msgs)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := cl.Route(big, &CallOpts{NoBatch: true}); err != nil {
			t.Errorf("busy route: %v", err)
		}
	}()
	time.Sleep(10 * time.Millisecond) // let the busy op start executing
	for k := range small {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			rep, err := cl.Route(small[k], nil)
			if err != nil {
				t.Errorf("small route %d: %v", k, err)
				return
			}
			checkRouteGolden(t, rep, goldens[k])
		}(k)
	}
	wg.Wait()
	if st := srv.Stats(); st.BatchedRuns == 0 {
		t.Error("no batch formed despite a busy pool and waiting queue")
	}
}

func TestFaultInjectionRetryOverWire(t *testing.T) {
	const n = 16
	srv, addr := startServer(t, Config{N: n, AllowFaultInjection: true})
	cl := dialT(t, addr)
	rng := rand.New(rand.NewSource(5))
	msgs := routeInstance(n, 3, rng)
	golden := goldenRoute(t, n, msgs)

	// With a retry budget the injected cancellation (first attempt only) is
	// absorbed and the response is still bit-identical to the golden.
	rep, err := cl.Route(msgs, &CallOpts{InjectCancel: true, FaultCancelRound: 2, Retries: 1})
	if err != nil {
		t.Fatalf("faulted route with retry: %v", err)
	}
	checkRouteGolden(t, rep, golden)
	if st := srv.Stats(); st.Retries == 0 {
		t.Fatal("retry counter did not move after an injected fault")
	}

	// Without a retry budget the fault surfaces as an error.
	if _, err := cl.Route(msgs, &CallOpts{InjectCancel: true, FaultCancelRound: 2}); err == nil {
		t.Fatal("injected fault without retries succeeded")
	}
}

func TestFaultInjectionDisabledByDefault(t *testing.T) {
	const n = 8
	_, addr := startServer(t, Config{N: n})
	cl := dialT(t, addr)
	msgs := [][]cc.Message{{{Src: 0, Dst: 1, Seq: 0, Payload: 1}}}
	_, err := cl.Route(msgs, &CallOpts{InjectCancel: true, FaultCancelRound: 1, Retries: 1})
	if err == nil {
		t.Fatal("fault-carrying request accepted by a default server")
	}
}

func TestDeadlineExceededStatus(t *testing.T) {
	const n = 16
	_, addr := startServer(t, Config{N: n})
	cl := dialT(t, addr)
	rng := rand.New(rand.NewSource(6))
	msgs := routeInstance(n, 4, rng)
	// The wire carries deadlines at microsecond granularity; 1µs is the
	// smallest expressible budget and cannot cover an engine run.
	_, err := cl.Route(msgs, &CallOpts{Deadline: time.Microsecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("1µs deadline: got %v, want context.DeadlineExceeded", err)
	}
	// The handle survives; a sane deadline succeeds.
	if _, err := cl.Route(msgs, &CallOpts{Deadline: 30 * time.Second}); err != nil {
		t.Fatalf("route after deadline failure: %v", err)
	}
}

func TestConcurrentClientsMixedOps(t *testing.T) {
	const n = 16
	_, addr := startServer(t, Config{N: n, MaxConcurrency: 2, QueueDepth: 64,
		BatchMaxOps: 4})
	rng := rand.New(rand.NewSource(7))
	msgs := routeInstance(n, 3, rng)
	values := valuesInstance(n, 3, rng)
	routeGolden := goldenRoute(t, n, msgs)
	sortGolden, err := cc.Sort(n, values)
	if err != nil {
		t.Fatalf("golden sort: %v", err)
	}

	const clients = 4
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer cl.Close()
			for i := 0; i < 6; i++ {
				if i%2 == 0 {
					rep, err := cl.Route(msgs, nil)
					if err != nil {
						t.Errorf("route: %v", err)
						return
					}
					checkRouteGolden(t, rep, routeGolden)
				} else {
					rep, err := cl.Sort(values, nil)
					if err != nil {
						t.Errorf("sort: %v", err)
						return
					}
					if rep.Total != sortGolden.Total || !reflect.DeepEqual(normKeyRows(rep.Batches), normKeyRows(sortGolden.Batches)) {
						t.Errorf("sort result differs from golden")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
