// Package service is the network front-end of the congested-clique library:
// a long-running server (cmd/cliqued) exposing Route, Sort, SortKeys and the
// corollary operations over a length-prefixed binary wire protocol, and the
// matching client used by cmd/cliqueload's network mode and the tests.
//
// The wire protocol reuses the flat [count, len, msg...] frame encoding of
// internal/core (see core.AppendFrame / core.DecodeFrame): every request and
// response is one such frame, carried as a 64-bit word count followed by the
// frame's words in big-endian byte order. Instance payloads (message rows,
// value rows) and result payloads (delivered rows, sorted batches) are the
// frame's logical messages, so the same decoder discipline that protects the
// engine's receive path — truncated or malformed frames error, never panic —
// protects the network boundary (pinned by FuzzWireDecode).
//
// The server fronts one pooled session handle (congestedclique.New with
// WithMaxConcurrency): requests pass a bounded admission queue (shed-on-full
// with the named ErrOverloaded; see Config.QueueDepth), compatible small
// Route instances are batched into one engine run where the demand-aware
// planner permits, per-request deadlines ride the existing context plumbing,
// transient engine failures retry via WithRetry, and SIGTERM-style shutdown
// drains gracefully: accepting stops, in-flight requests complete
// bit-identically, late arrivals are rejected with the named ErrDraining.
//
// See docs/SERVICE.md for the wire format specification, the admission,
// batching and deadline semantics, and the SLO measurement methodology.
package service
