package service

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"
)

// TestGracefulDrainCompletesInFlight pins the drain contract: every request
// admitted before Shutdown completes with a result bit-identical to the
// in-process golden, requests arriving during the drain are rejected with
// the named ErrDraining, and the server tears down cleanly.
func TestGracefulDrainCompletesInFlight(t *testing.T) {
	// Non-square n: engine runs go through the slower Mux decomposition,
	// which keeps the drain window wide enough to probe reliably.
	const n = 48
	srv, err := NewServer(Config{N: n, MaxConcurrency: 1, QueueDepth: 64})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	rng := rand.New(rand.NewSource(8))
	msgs := routeInstance(n, 12, rng)
	golden := goldenRoute(t, n, msgs)

	// Queue up a backlog on the single worker. Wait for the first response
	// before draining so at least one request is provably in flight or done.
	const backlog = 32
	results := make(chan error, backlog)
	first := make(chan struct{})
	var firstOnce sync.Once
	var okOps, drained int
	for i := 0; i < backlog; i++ {
		go func() {
			rep, err := cl.Route(msgs, nil)
			if err == nil {
				checkRouteGolden(t, rep, golden)
			}
			firstOnce.Do(func() { close(first) })
			results <- err
		}()
	}
	<-first

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// While the drain runs, new requests on the live connection must be
	// rejected with the named drain error. The drain window is wide (a
	// backlog of engine runs on one worker), so probe until we see it.
	var sawDraining bool
	for probe := 0; probe < 200 && !sawDraining; probe++ {
		_, err := cl.Route(msgs, nil)
		switch {
		case errors.Is(err, ErrDraining):
			sawDraining = true
		case err == nil, errors.Is(err, ErrOverloaded):
			// Raced ahead of the drain flag (or the queue): admitted work
			// still completes correctly; keep probing.
			if err == nil {
				okOps++
			}
			time.Sleep(time.Millisecond)
		default:
			// Connection torn down: the drain finished before a probe
			// landed. Legal, but the test wants the window.
			t.Fatalf("probe failed with %v before observing ErrDraining", err)
		}
	}
	if !sawDraining {
		t.Fatal("never observed ErrDraining during the drain window")
	}

	for i := 0; i < backlog; i++ {
		err := <-results
		switch {
		case err == nil:
			okOps++
		case errors.Is(err, ErrDraining):
			drained++
		default:
			t.Errorf("backlog request failed with %v, want success or ErrDraining", err)
		}
	}
	if okOps == 0 {
		t.Fatal("no admitted request completed during the drain")
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve returned %v after drain, want nil", err)
	}
	t.Logf("drain: %d completed bit-identically, %d rejected with ErrDraining", okOps, drained)

	st := srv.Stats()
	if !st.Draining {
		t.Error("stats do not report draining after shutdown")
	}
	if st.FailedOperations != 0 {
		t.Errorf("engine failed %d operations during a graceful drain", st.FailedOperations)
	}

	// Post-drain: calls on the dead connection fail, new serves are refused.
	if _, err := cl.Route(msgs, nil); err == nil {
		t.Error("call succeeded after the server fully drained")
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	if err := srv.Serve(ln2); !errors.Is(err, ErrDraining) {
		t.Errorf("Serve after Shutdown returned %v, want ErrDraining", err)
	}
}

// TestShutdownIdleServer drains a server with nothing in flight.
func TestShutdownIdleServer(t *testing.T) {
	srv, err := NewServer(Config{N: 8})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	// Ping first: Shutdown racing Serve's listener registration would make
	// Serve return ErrDraining instead of the drain-initiated nil.
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if _, err := cl.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
	// Shutdown is idempotent.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// TestDrainUnderConcurrentClients stresses the drain path with several
// connections racing the shutdown — the -race target for the drain
// machinery. Every outcome must be a bit-identical success or a named
// rejection.
func TestDrainUnderConcurrentClients(t *testing.T) {
	const n = 16
	srv, err := NewServer(Config{N: n, MaxConcurrency: 2, QueueDepth: 16,
		BatchMaxOps: 4, BatchWait: time.Millisecond})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	rng := rand.New(rand.NewSource(9))
	msgs := routeInstance(n, 3, rng)
	golden := goldenRoute(t, n, msgs)

	const clients = 4
	started := make(chan struct{}, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := Dial(ln.Addr().String())
			if err != nil {
				t.Errorf("dial: %v", err)
				started <- struct{}{}
				return
			}
			defer cl.Close()
			for i := 0; i < 10; i++ {
				rep, err := cl.Route(msgs, nil)
				if i == 0 {
					started <- struct{}{}
				}
				if err != nil {
					// Once the drain begins every further call on this
					// connection is a rejection or a dead conn; stop.
					if errors.Is(err, ErrDraining) || errors.Is(err, ErrOverloaded) {
						continue
					}
					return
				}
				checkRouteGolden(t, rep, golden)
			}
		}()
	}
	for c := 0; c < clients; c++ {
		<-started
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
	if st := srv.Stats(); st.FailedOperations != 0 {
		t.Errorf("engine failed %d operations under drain race", st.FailedOperations)
	}
}
