package service

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"
)

// benchServer brings up a server on a loopback port and a connected client
// for the end-to-end benchmarks. Client and server share the process, so
// allocs/op covers the full round trip: request encode, frame transport,
// decode, engine run, response encode, decode.
func benchServer(b *testing.B, cfg Config) *Client {
	b.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		b.Fatalf("NewServer: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatalf("listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		b.Fatalf("dial: %v", err)
	}
	b.Cleanup(func() {
		cl.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			b.Errorf("shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			b.Errorf("serve: %v", err)
		}
	})
	return cl
}

// BenchmarkServiceRoute measures one full Route operation over the wire
// protocol against a loopback server, per clique size.
func BenchmarkServiceRoute(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cl := benchServer(b, Config{N: n, MaxConcurrency: 1})
			rng := rand.New(rand.NewSource(1))
			msgs := routeInstance(n, 4, rng)
			if _, err := cl.Route(msgs, nil); err != nil {
				b.Fatalf("warm route: %v", err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cl.Route(msgs, nil); err != nil {
					b.Fatalf("route: %v", err)
				}
			}
		})
	}
}

// BenchmarkServiceSort measures one full Sort operation over the wire
// protocol against a loopback server.
func BenchmarkServiceSort(b *testing.B) {
	for _, n := range []int{64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cl := benchServer(b, Config{N: n, MaxConcurrency: 1})
			rng := rand.New(rand.NewSource(2))
			values := valuesInstance(n, n, rng)
			if _, err := cl.Sort(values, nil); err != nil {
				b.Fatalf("warm sort: %v", err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cl.Sort(values, nil); err != nil {
					b.Fatalf("sort: %v", err)
				}
			}
		})
	}
}
