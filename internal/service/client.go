package service

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	cc "congestedclique"

	"congestedclique/internal/clique"
	"congestedclique/internal/core"
)

// Client is a wire-protocol client over one TCP connection. It is safe for
// concurrent use: calls in flight are multiplexed by request ID and demuxed
// by a single reader goroutine, so many goroutines can share one connection
// — the shape cmd/cliqueload's network mode relies on.
type Client struct {
	conn net.Conn
	n    int

	// wmu serializes the write path; the encode buffers are reused across
	// calls under it.
	wmu      sync.Mutex
	encFrame []clique.Word
	encBuf   []byte

	// pmu guards the pending demux table and the terminal read error.
	pmu     sync.Mutex
	nextID  uint64
	pending map[uint64]chan []clique.Word
	readErr error
	done    chan struct{}
	failed  sync.Once
}

// CallOpts carries the per-request options of one client call. The zero
// value means: no deadline, batching allowed, no fault, server-default
// retries.
type CallOpts struct {
	// Deadline is the request's relative deadline (0 = server default),
	// enforced server-side from the moment the request is read.
	Deadline time.Duration
	// NoBatch opts out of server-side batching.
	NoBatch bool
	// InjectCancel asks the server to inject a deterministic cancellation at
	// FaultCancelRound (requires a server started with fault injection
	// enabled; used by faulted load runs to exercise the retry path).
	InjectCancel     bool
	FaultCancelRound int
	// Retries and RetryBackoff override the server's transient-retry budget
	// for this request (0 retries = server default).
	Retries      int
	RetryBackoff time.Duration
}

// Dial connects to a cliqued server and performs the ping handshake, which
// carries back the server's clique size n — the bound the client uses to
// size its own frame-decode limit.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	cl := &Client{
		conn:    conn,
		pending: make(map[uint64]chan []clique.Word),
		done:    make(chan struct{}),
	}
	// Synchronous handshake before the reader starts: the ping reply is the
	// only frame the client accepts while it does not yet know n.
	cl.encFrame = encodeRequest(cl.encFrame, &Request{ID: 1, Op: OpPing, FaultCancelRound: -1})
	cl.encBuf = appendFrameBytes(cl.encBuf[:0], cl.encFrame)
	if _, err := conn.Write(cl.encBuf); err != nil {
		conn.Close()
		return nil, fmt.Errorf("service: handshake write: %w", err)
	}
	frame, err := readFrame(conn, handshakeLimitWords)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("service: handshake read: %w", err)
	}
	resp, err := decodeResponse(frame, OpPing, 0)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("service: handshake: %w", err)
	}
	if resp.Status != StatusOK || resp.PingN < 2 {
		conn.Close()
		return nil, fmt.Errorf("service: handshake rejected: %v %s", resp.Status, resp.Err)
	}
	cl.n = resp.PingN
	cl.nextID = 1
	go cl.readLoop()
	return cl, nil
}

// N returns the server's clique size, learned during the handshake.
func (cl *Client) N() int { return cl.n }

// Close tears down the connection; calls in flight fail.
func (cl *Client) Close() error {
	err := cl.conn.Close()
	cl.fail(errors.New("service: client closed"))
	return err
}

// readLoop demuxes response frames to their waiting calls by request ID.
func (cl *Client) readLoop() {
	limit := wireLimitWords(cl.n)
	for {
		frame, err := readFrame(cl.conn, limit)
		if err != nil {
			cl.fail(fmt.Errorf("service: connection lost: %w", err))
			return
		}
		id, err := peekResponseID(frame)
		if err != nil {
			cl.fail(err)
			return
		}
		cl.pmu.Lock()
		ch := cl.pending[id]
		delete(cl.pending, id)
		cl.pmu.Unlock()
		if ch != nil {
			ch <- frame
		}
		// Frames for unknown IDs (e.g. the server's last-gasp ID-0
		// diagnostic before closing a broken connection) are dropped; the
		// follow-up close surfaces the failure to every pending call.
	}
}

// peekResponseID validates a response frame's header and extracts its ID.
func peekResponseID(frame []clique.Word) (uint64, error) {
	bodies, err := core.DecodeFrame(nil, frame)
	if err != nil {
		return 0, fmt.Errorf("service: response frame: %w", err)
	}
	if len(bodies) == 0 || len(bodies[0]) != respHeaderWords {
		return 0, errors.New("service: response header missing or misshapen")
	}
	h := bodies[0]
	if h[0] != wireMagic || h[1] != wireVersion {
		return 0, fmt.Errorf("service: bad response magic/version %#x/%d", uint64(h[0]), h[1])
	}
	return uint64(h[2]), nil
}

// fail records the terminal error once and wakes every pending call.
func (cl *Client) fail(err error) {
	cl.failed.Do(func() {
		cl.pmu.Lock()
		cl.readErr = err
		cl.pending = nil
		cl.pmu.Unlock()
		close(cl.done)
		cl.conn.Close()
	})
}

// call sends one request and waits for its response frame.
func (cl *Client) call(req *Request) (*Response, error) {
	ch := make(chan []clique.Word, 1)
	cl.pmu.Lock()
	if cl.pending == nil {
		err := cl.readErr
		cl.pmu.Unlock()
		return nil, err
	}
	cl.nextID++
	req.ID = cl.nextID
	cl.pending[req.ID] = ch
	cl.pmu.Unlock()

	cl.wmu.Lock()
	cl.encFrame = encodeRequest(cl.encFrame, req)
	cl.encBuf = appendFrameBytes(cl.encBuf[:0], cl.encFrame)
	_, err := cl.conn.Write(cl.encBuf)
	cl.wmu.Unlock()
	if err != nil {
		cl.fail(fmt.Errorf("service: write: %w", err))
		return nil, err
	}

	select {
	case frame := <-ch:
		resp, err := decodeResponse(frame, req.Op, cl.n)
		if err != nil {
			cl.fail(err)
			return nil, err
		}
		if resp.Status != StatusOK {
			return resp, statusError(resp)
		}
		return resp, nil
	case <-cl.done:
		cl.pmu.Lock()
		err := cl.readErr
		cl.pmu.Unlock()
		return nil, err
	}
}

// statusError maps a non-OK response to a client-side error. Overload and
// drain rejections carry the package's named sentinels so callers can
// errors.Is on them; deadline failures wrap context.DeadlineExceeded.
func statusError(resp *Response) error {
	switch resp.Status {
	case StatusOverloaded:
		return ErrOverloaded
	case StatusDraining:
		return ErrDraining
	case StatusDeadlineExceeded:
		return fmt.Errorf("service: %w: %s", context.DeadlineExceeded, resp.Err)
	default:
		return fmt.Errorf("service: %v: %s", resp.Status, resp.Err)
	}
}

// newRequest translates CallOpts into a wire request.
func newRequest(op Op, o *CallOpts) *Request {
	req := &Request{Op: op, FaultCancelRound: -1}
	if o == nil {
		return req
	}
	req.Deadline = o.Deadline
	req.NoBatch = o.NoBatch
	if o.InjectCancel {
		req.FaultCancelRound = o.FaultCancelRound
	}
	req.Retries = o.Retries
	req.RetryBackoff = o.RetryBackoff
	return req
}

// Route solves the Information Distribution Task remotely. Delivered rows
// arrive in the wire protocol's canonical (Src, Seq) order.
func (cl *Client) Route(msgs [][]cc.Message, o *CallOpts) (*RouteReply, error) {
	req := newRequest(OpRoute, o)
	req.Msgs = msgs
	resp, err := cl.call(req)
	if err != nil {
		return nil, err
	}
	return resp.Route, nil
}

// Sort sorts plain values remotely.
func (cl *Client) Sort(values [][]int64, o *CallOpts) (*SortReply, error) {
	req := newRequest(OpSort, o)
	req.Values = values
	resp, err := cl.call(req)
	if err != nil {
		return nil, err
	}
	return resp.Sort, nil
}

// SortKeys sorts caller-labelled keys remotely.
func (cl *Client) SortKeys(keys [][]cc.Key, o *CallOpts) (*SortReply, error) {
	req := newRequest(OpSortKeys, o)
	req.Keys = keys
	resp, err := cl.call(req)
	if err != nil {
		return nil, err
	}
	return resp.Sort, nil
}

// Rank computes distinct-value ranks remotely.
func (cl *Client) Rank(values [][]int64, o *CallOpts) (*RankReply, error) {
	req := newRequest(OpRank, o)
	req.Values = values
	resp, err := cl.call(req)
	if err != nil {
		return nil, err
	}
	return resp.Rank, nil
}

// SelectKth selects the key of global rank k remotely.
func (cl *Client) SelectKth(values [][]int64, k int, o *CallOpts) (cc.Key, error) {
	req := newRequest(OpSelectKth, o)
	req.Values = values
	req.Arg = int64(k)
	resp, err := cl.call(req)
	if err != nil {
		return cc.Key{}, err
	}
	return *resp.Key, nil
}

// Median selects the lower median remotely.
func (cl *Client) Median(values [][]int64, o *CallOpts) (cc.Key, error) {
	req := newRequest(OpMedian, o)
	req.Values = values
	resp, err := cl.call(req)
	if err != nil {
		return cc.Key{}, err
	}
	return *resp.Key, nil
}

// Mode computes the most frequent value remotely.
func (cl *Client) Mode(values [][]int64, o *CallOpts) (*ModeReply, error) {
	req := newRequest(OpMode, o)
	req.Values = values
	resp, err := cl.call(req)
	if err != nil {
		return nil, err
	}
	return resp.Mode, nil
}

// CountSmallKeys counts keys of a small domain remotely.
func (cl *Client) CountSmallKeys(values [][]int, domain int, o *CallOpts) ([]int64, error) {
	req := newRequest(OpCountSmallKeys, o)
	req.Ints = values
	req.Arg = int64(domain)
	resp, err := cl.call(req)
	if err != nil {
		return nil, err
	}
	return resp.Counts, nil
}

// Ping round-trips the readiness probe and returns the server's clique size.
func (cl *Client) Ping() (int, error) {
	resp, err := cl.call(newRequest(OpPing, nil))
	if err != nil {
		return 0, err
	}
	return resp.PingN, nil
}

// ServerStats fetches the server's counter snapshot. It is answered inline
// by the connection reader, so it works even while the admission queue is
// full — cmd/cliqueload uses it to report server-side shed/retry counts.
func (cl *Client) ServerStats() (*StatsReply, error) {
	resp, err := cl.call(newRequest(OpServerStats, nil))
	if err != nil {
		return nil, err
	}
	return resp.Stats, nil
}
