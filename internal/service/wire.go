package service

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	cc "congestedclique"

	"congestedclique/internal/clique"
	"congestedclique/internal/core"
)

// The wire protocol: every request and response travels as one flat frame in
// the [count, len_1, msg_1 words..., ...] layout of internal/core, prefixed
// by a single 64-bit word count. All words are 64-bit big-endian; payload
// words are clique.Word (int64) values reinterpreted as uint64.
//
//	stream   = { u64 frameWords | frameWords × u64 }
//	frame    = [count, len_1, body_1..., ..., len_count, body_count...]
//
// body_1 is the header message; the remaining bodies are the operation's
// payload rows. Frames are decoded with core.DecodeFrame — the exact decoder
// the engine's receive path runs — so a truncated, oversized or otherwise
// malformed frame errors out without panicking or over-allocating
// (readFrame bounds the word count before allocating anything).

// wireMagic is the first header word of every frame ("CLQD"); it rejects
// peers speaking a different protocol before any payload is interpreted.
const wireMagic = 0x434C5144

// wireVersion is the protocol version; servers and clients reject frames
// carrying any other version.
const wireVersion = 1

// reqHeaderWords is the exact length of a request header body:
// [magic, version, reqID, op, deadlineMicros, arg, flags, faultCancelRound,
// retries, retryBackoffMicros].
const reqHeaderWords = 10

// respHeaderWords is the exact length of a response header body:
// [magic, version, reqID, status, strategy].
const respHeaderWords = 5

// flagNoBatch marks a request that opts out of server-side batching.
const flagNoBatch = 1 << 0

// maxErrWords bounds the error-string body of a response (the only
// variable-length body whose size is not derived from the clique size n).
const maxErrWords = 1 + 4096/8

// Op identifies the requested operation on the wire.
type Op uint8

// Wire operation codes. The numeric values are part of the protocol.
const (
	// OpRoute solves the Information Distribution Task (Problem 3.1).
	OpRoute Op = 1
	// OpSort sorts plain values (Problem 4.1).
	OpSort Op = 2
	// OpSortKeys sorts caller-labelled keys.
	OpSortKeys Op = 3
	// OpRank computes distinct-value ranks (Corollary 4.6).
	OpRank Op = 4
	// OpSelectKth selects the key of global rank k (request Arg = k).
	OpSelectKth Op = 5
	// OpMedian selects the lower median.
	OpMedian Op = 6
	// OpMode computes the most frequent value.
	OpMode Op = 7
	// OpCountSmallKeys counts keys of a small domain (request Arg = domain).
	OpCountSmallKeys Op = 8
	// OpPing is the readiness probe; its reply carries the server's clique
	// size so clients can size their response decode limit.
	OpPing Op = 9
	// OpServerStats returns the server's cumulative counters; it is answered
	// inline by the connection reader, so it stays reachable under overload.
	OpServerStats Op = 10
)

// String returns the operation name.
func (o Op) String() string {
	switch o {
	case OpRoute:
		return "route"
	case OpSort:
		return "sort"
	case OpSortKeys:
		return "sort-keys"
	case OpRank:
		return "rank"
	case OpSelectKth:
		return "select-kth"
	case OpMedian:
		return "median"
	case OpMode:
		return "mode"
	case OpCountSmallKeys:
		return "count-small-keys"
	case OpPing:
		return "ping"
	case OpServerStats:
		return "server-stats"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Status is the outcome code of a response.
type Status uint8

// Wire status codes. The numeric values are part of the protocol.
const (
	// StatusOK marks a successful operation; the response carries the result.
	StatusOK Status = 0
	// StatusInvalid reports a malformed instance or request (the session
	// layer's ErrInvalidInstance family, or a semantically unparseable
	// request body).
	StatusInvalid Status = 1
	// StatusOverloaded reports that the admission queue was full and the
	// request was shed without reaching an engine (client-side ErrOverloaded).
	StatusOverloaded Status = 2
	// StatusDraining reports that the server is shutting down and no longer
	// accepts work (client-side ErrDraining).
	StatusDraining Status = 3
	// StatusDeadlineExceeded reports that the request's deadline expired —
	// in the queue or mid-run (client-side error wraps
	// context.DeadlineExceeded).
	StatusDeadlineExceeded Status = 4
	// StatusUnsupported reports an operation or option the server refuses
	// (unknown op code, fault injection while disabled, ...).
	StatusUnsupported Status = 5
	// StatusInternal reports an engine or protocol failure after admission.
	StatusInternal Status = 6
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusInvalid:
		return "invalid"
	case StatusOverloaded:
		return "overloaded"
	case StatusDraining:
		return "draining"
	case StatusDeadlineExceeded:
		return "deadline-exceeded"
	case StatusUnsupported:
		return "unsupported"
	case StatusInternal:
		return "internal"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// ErrOverloaded is the named overload error: the server's bounded admission
// queue was full and the request was shed rather than queued. Clients see it
// wrapped in errors returned for StatusOverloaded responses.
var ErrOverloaded = errors.New("service: server overloaded, request shed (admission queue full)")

// ErrDraining is the named drain error: the server is shutting down, has
// stopped accepting new work and only finishes requests admitted before the
// drain began. Clients see it wrapped in errors returned for StatusDraining
// responses.
var ErrDraining = errors.New("service: server draining, new requests rejected")

// Request is the decoded form of one wire request.
type Request struct {
	// ID is the caller-chosen request identifier echoed by the response.
	ID uint64
	// Op selects the operation.
	Op Op
	// Deadline is the request's relative deadline (0 = none / server
	// default), counted from the moment the server reads the request.
	Deadline time.Duration
	// Arg is the operation argument: k for OpSelectKth, the domain for
	// OpCountSmallKeys, 0 otherwise.
	Arg int64
	// NoBatch opts the request out of server-side batching.
	NoBatch bool
	// FaultCancelRound, when >= 0, asks the server to inject a deterministic
	// cancellation at that round (WithInjectedCancel) — the chaos-testing
	// hook used by faulted load runs. Servers reject it unless fault
	// injection is explicitly enabled.
	FaultCancelRound int
	// Retries and RetryBackoff are the per-request transient-retry budget
	// (WithRetry); zero Retries falls back to the server's default.
	Retries      int
	RetryBackoff time.Duration

	// Exactly one payload field is set, matching Op.
	Msgs   [][]cc.Message // OpRoute
	Values [][]int64      // OpSort, OpRank, OpSelectKth, OpMedian, OpMode
	Keys   [][]cc.Key     // OpSortKeys
	Ints   [][]int        // OpCountSmallKeys
}

// RouteReply is the result payload of an OpRoute response.
type RouteReply struct {
	// Delivered lists, per node, the messages that reached it, in the
	// canonical (Src, Dst, Seq) order (the wire format's delivery order; see
	// docs/SERVICE.md).
	Delivered [][]cc.Message
	// Strategy is the planner's verdict for the run that served this request
	// (informational; a batched request reports the merged run's strategy).
	Strategy cc.RouteStrategy
}

// SortReply is the result payload of an OpSort / OpSortKeys response.
type SortReply struct {
	// Total is the global key count; Starts[i] and Batches[i] are node i's
	// slice of the global sorted order, exactly as in cc.SortResult.
	Total   int
	Starts  []int
	Batches [][]cc.Key
	// Strategy is the sorting planner's verdict (informational).
	Strategy cc.SortStrategy
}

// RankReply is the result payload of an OpRank response.
type RankReply struct {
	// DistinctTotal is the number of distinct values; Ranks mirrors the
	// input shape, exactly as in cc.RankResult.
	DistinctTotal int
	Ranks         [][]int
}

// ModeReply is the result payload of an OpMode response.
type ModeReply struct {
	// Value is the most frequent value, Count its multiplicity.
	Value int64
	Count int64
}

// StatsReply is the result payload of an OpServerStats response.
type StatsReply struct {
	// N and MaxConcurrency describe the server's session handle; QueueDepth
	// and BatchMaxOps its admission configuration.
	N              int
	MaxConcurrency int
	QueueDepth     int
	BatchMaxOps    int
	// Draining reports whether a graceful shutdown is in progress.
	Draining bool
	// Operations..FailedOperations mirror cc.CumulativeStats of the handle.
	Operations       int64
	Rounds           int64
	TotalMessages    int64
	TotalWords       int64
	Retries          int64
	FailedOperations int64
	// SheddedOps counts requests rejected by the full admission queue;
	// DrainRejected counts requests rejected because the server was
	// draining; BatchedRuns counts engine runs that served more than one
	// request, BatchedOps the requests they served.
	SheddedOps    int64
	DrainRejected int64
	BatchedRuns   int64
	BatchedOps    int64
	// PlanCacheHits..PlanCacheInvalidations mirror the handle's plan-cache
	// counters (all zero unless the server runs with a plan cache).
	PlanCacheHits          int64
	PlanCacheMisses        int64
	PlanCacheInvalidations int64
}

// Response is the decoded form of one wire response.
type Response struct {
	// ID echoes the request identifier.
	ID uint64
	// Status is the outcome; Err carries the error message for non-OK
	// statuses.
	Status Status
	Err    string
	// Strategy is the raw planner-strategy word from the header
	// (route or sort strategy code depending on the operation; 0 when the
	// planner was not consulted).
	Strategy int64

	// At most one result field is set, matching the request's Op.
	Route  *RouteReply
	Sort   *SortReply
	Rank   *RankReply
	Key    *cc.Key // OpSelectKth, OpMedian
	Mode   *ModeReply
	Counts []int64 // OpCountSmallKeys
	PingN  int     // OpPing: the server's clique size
	Stats  *StatsReply
}

// wireLimitWords bounds the frame size either side accepts for a clique of n
// nodes: the largest legal payload is a full-load routing instance or result
// (n rows of up to n messages at 3 words each), plus per-row length slots,
// headers and the error-string allowance.
func wireLimitWords(n int) int {
	return 3*n*n + 4*n + reqHeaderWords + maxErrWords + 16
}

// handshakeLimitWords bounds the frames exchanged before a client knows the
// server's n (the ping request and reply).
const handshakeLimitWords = reqHeaderWords + maxErrWords + 64

// errFrameTooLarge is wrapped by readFrame errors rejecting a frame whose
// declared word count exceeds the caller's limit; the frame is rejected
// before any allocation.
var errFrameTooLarge = errors.New("service: frame exceeds size limit")

// readFrame reads one length-prefixed frame, rejecting declared sizes above
// maxWords before allocating. io.EOF is returned verbatim when the stream
// ends cleanly between frames.
func readFrame(r io.Reader, maxWords int) ([]clique.Word, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("service: read frame length: %w", err)
	}
	words := binary.BigEndian.Uint64(hdr[:])
	if words == 0 {
		return nil, errors.New("service: empty frame")
	}
	if words > uint64(maxWords) {
		return nil, fmt.Errorf("%w: %d words, limit %d", errFrameTooLarge, words, maxWords)
	}
	buf := make([]byte, 8*int(words))
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("service: read frame body: %w", err)
	}
	frame := make([]clique.Word, int(words))
	for i := range frame {
		frame[i] = clique.Word(binary.BigEndian.Uint64(buf[8*i:]))
	}
	return frame, nil
}

// appendFrameBytes appends the wire form of frame (length prefix plus
// big-endian words) to dst and returns the grown slice.
func appendFrameBytes(dst []byte, frame []clique.Word) []byte {
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], uint64(len(frame)))
	dst = append(dst, hdr[:]...)
	for _, w := range frame {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(w))
		dst = append(dst, b[:]...)
	}
	return dst
}

// beginBody opens a new logical message in a frame under construction,
// returning the index of its length slot; endBody patches the slot once the
// body's words have been appended. Together they stream a frame in the
// core flat-frame layout without building per-body slices first.
func beginBody(frame []clique.Word) ([]clique.Word, int) {
	frame = append(frame, 0)
	return frame, len(frame) - 1
}

func endBody(frame []clique.Word, lenAt int) []clique.Word {
	frame[lenAt] = clique.Word(len(frame) - lenAt - 1)
	return frame
}

// appendStringBody appends an error-string body: [byteLen, packed UTF-8
// bytes, 8 per word]. Strings longer than the wire allowance are truncated.
func appendStringBody(frame []clique.Word, s string) []clique.Word {
	if len(s) > (maxErrWords-1)*8 {
		s = s[:(maxErrWords-1)*8]
	}
	var at int
	frame, at = beginBody(frame)
	frame = append(frame, clique.Word(len(s)))
	for i := 0; i < len(s); i += 8 {
		var w uint64
		for j := 0; j < 8 && i+j < len(s); j++ {
			w |= uint64(s[i+j]) << (8 * (7 - j))
		}
		frame = append(frame, clique.Word(w))
	}
	return endBody(frame, at)
}

// unpackString decodes an error-string body written by appendStringBody.
func unpackString(body []clique.Word) (string, error) {
	if len(body) < 1 {
		return "", errors.New("service: string body missing length")
	}
	n := int(body[0])
	if n < 0 || n > (len(body)-1)*8 {
		return "", fmt.Errorf("service: string body claims %d bytes in %d words", n, len(body)-1)
	}
	b := make([]byte, 0, n)
	for i := 0; len(b) < n; i++ {
		w := uint64(body[1+i])
		for j := 0; j < 8 && len(b) < n; j++ {
			b = append(b, byte(w>>(8*(7-j))))
		}
	}
	return string(b), nil
}

// encodeRequest appends the wire frame of req to dst (a reusable scratch) and
// returns it.
func encodeRequest(dst []clique.Word, req *Request) []clique.Word {
	frame := append(dst[:0], 0) // count slot, patched below
	bodies := 1
	var at int
	frame, at = beginBody(frame)
	fault := int64(req.FaultCancelRound)
	if req.FaultCancelRound < 0 {
		fault = -1
	}
	flags := clique.Word(0)
	if req.NoBatch {
		flags |= flagNoBatch
	}
	frame = append(frame,
		wireMagic, wireVersion, clique.Word(req.ID), clique.Word(req.Op),
		clique.Word(req.Deadline.Microseconds()), clique.Word(req.Arg), flags,
		clique.Word(fault), clique.Word(req.Retries), clique.Word(req.RetryBackoff.Microseconds()))
	frame = endBody(frame, at)

	appendRow := func(write func([]clique.Word) []clique.Word) {
		var lenAt int
		frame, lenAt = beginBody(frame)
		frame = write(frame)
		frame = endBody(frame, lenAt)
		bodies++
	}
	switch req.Op {
	case OpRoute:
		for _, row := range req.Msgs {
			row := row
			appendRow(func(f []clique.Word) []clique.Word {
				for _, m := range row {
					f = append(f, clique.Word(m.Dst), clique.Word(m.Seq), clique.Word(m.Payload))
				}
				return f
			})
		}
	case OpSortKeys:
		for _, row := range req.Keys {
			row := row
			appendRow(func(f []clique.Word) []clique.Word {
				for _, k := range row {
					f = append(f, clique.Word(k.Value), clique.Word(k.Origin), clique.Word(k.Seq))
				}
				return f
			})
		}
	case OpSort, OpRank, OpSelectKth, OpMedian, OpMode:
		for _, row := range req.Values {
			row := row
			appendRow(func(f []clique.Word) []clique.Word {
				for _, v := range row {
					f = append(f, clique.Word(v))
				}
				return f
			})
		}
	case OpCountSmallKeys:
		for _, row := range req.Ints {
			row := row
			appendRow(func(f []clique.Word) []clique.Word {
				for _, v := range row {
					f = append(f, clique.Word(v))
				}
				return f
			})
		}
	}
	frame[0] = clique.Word(bodies)
	return frame
}

// decodeRequest parses a request frame for a clique of n nodes. Every
// structural violation — wrong magic or version, short header, row counts or
// shapes that cannot belong to a legal instance — errors out; nothing here
// panics or allocates beyond the (already size-capped) frame's own footprint.
func decodeRequest(frame []clique.Word, n int) (*Request, error) {
	bodies, err := core.DecodeFrame(nil, frame)
	if err != nil {
		return nil, fmt.Errorf("service: request frame: %w", err)
	}
	if len(bodies) == 0 {
		return nil, errors.New("service: request frame has no header")
	}
	h := bodies[0]
	if len(h) != reqHeaderWords {
		return nil, fmt.Errorf("service: request header has %d words, want %d", len(h), reqHeaderWords)
	}
	if h[0] != wireMagic {
		return nil, fmt.Errorf("service: bad magic %#x", uint64(h[0]))
	}
	if h[1] != wireVersion {
		return nil, fmt.Errorf("service: protocol version %d, want %d", h[1], wireVersion)
	}
	req := &Request{
		ID:               uint64(h[2]),
		Op:               Op(h[3]),
		Arg:              int64(h[5]),
		NoBatch:          h[6]&flagNoBatch != 0,
		FaultCancelRound: int(h[7]),
	}
	if h[4] < 0 || h[8] < 0 || h[9] < 0 {
		return nil, errors.New("service: negative deadline or retry field")
	}
	req.Deadline = time.Duration(h[4]) * time.Microsecond
	req.Retries = int(h[8])
	req.RetryBackoff = time.Duration(h[9]) * time.Microsecond
	if req.FaultCancelRound < -1 {
		return nil, fmt.Errorf("service: fault round %d out of range", req.FaultCancelRound)
	}

	rows := bodies[1:]
	if len(rows) > n {
		return nil, fmt.Errorf("service: request carries %d rows for a clique of %d nodes", len(rows), n)
	}
	switch req.Op {
	case OpRoute:
		req.Msgs = make([][]cc.Message, len(rows))
		for i, row := range rows {
			if len(row)%3 != 0 {
				return nil, fmt.Errorf("service: route row %d has %d words, not a multiple of 3", i, len(row))
			}
			if len(row)/3 > n {
				return nil, fmt.Errorf("service: route row %d carries %d messages, more than n=%d", i, len(row)/3, n)
			}
			ms := make([]cc.Message, len(row)/3)
			for j := range ms {
				ms[j] = cc.Message{Src: i, Dst: int(row[3*j]), Seq: int(row[3*j+1]), Payload: int64(row[3*j+2])}
			}
			req.Msgs[i] = ms
		}
	case OpSortKeys:
		req.Keys = make([][]cc.Key, len(rows))
		for i, row := range rows {
			if len(row)%3 != 0 {
				return nil, fmt.Errorf("service: key row %d has %d words, not a multiple of 3", i, len(row))
			}
			if len(row)/3 > n {
				return nil, fmt.Errorf("service: key row %d carries %d keys, more than n=%d", i, len(row)/3, n)
			}
			ks := make([]cc.Key, len(row)/3)
			for j := range ks {
				ks[j] = cc.Key{Value: int64(row[3*j]), Origin: int(row[3*j+1]), Seq: int(row[3*j+2])}
			}
			req.Keys[i] = ks
		}
	case OpSort, OpRank, OpSelectKth, OpMedian, OpMode:
		req.Values = make([][]int64, len(rows))
		for i, row := range rows {
			if len(row) > n {
				return nil, fmt.Errorf("service: value row %d carries %d values, more than n=%d", i, len(row), n)
			}
			vs := make([]int64, len(row))
			for j, w := range row {
				vs[j] = int64(w)
			}
			req.Values[i] = vs
		}
	case OpCountSmallKeys:
		req.Ints = make([][]int, len(rows))
		for i, row := range rows {
			if len(row) > n {
				return nil, fmt.Errorf("service: key row %d carries %d keys, more than n=%d", i, len(row), n)
			}
			vs := make([]int, len(row))
			for j, w := range row {
				vs[j] = int(w)
			}
			req.Ints[i] = vs
		}
	case OpPing, OpServerStats:
		if len(rows) != 0 {
			return nil, fmt.Errorf("service: %v request carries %d payload rows, want none", req.Op, len(rows))
		}
	default:
		return nil, fmt.Errorf("service: unknown op code %d", int(req.Op))
	}
	return req, nil
}

// encodeResponse appends the wire frame of resp to dst (a reusable scratch)
// and returns it.
func encodeResponse(dst []clique.Word, resp *Response) []clique.Word {
	frame := append(dst[:0], 0)
	bodies := 1
	var at int
	frame, at = beginBody(frame)
	frame = append(frame, wireMagic, wireVersion, clique.Word(resp.ID),
		clique.Word(resp.Status), clique.Word(resp.Strategy))
	frame = endBody(frame, at)

	if resp.Status != StatusOK {
		frame = appendStringBody(frame, resp.Err)
		frame[0] = 2
		return frame
	}

	appendRow := func(write func([]clique.Word) []clique.Word) {
		var lenAt int
		frame, lenAt = beginBody(frame)
		frame = write(frame)
		frame = endBody(frame, lenAt)
		bodies++
	}
	switch {
	case resp.Route != nil:
		for _, row := range resp.Route.Delivered {
			row := row
			appendRow(func(f []clique.Word) []clique.Word {
				for _, m := range row {
					f = append(f, clique.Word(m.Src), clique.Word(m.Seq), clique.Word(m.Payload))
				}
				return f
			})
		}
	case resp.Sort != nil:
		s := resp.Sort
		appendRow(func(f []clique.Word) []clique.Word {
			return append(f, clique.Word(s.Total))
		})
		for i := range s.Batches {
			i := i
			appendRow(func(f []clique.Word) []clique.Word {
				f = append(f, clique.Word(s.Starts[i]))
				for _, k := range s.Batches[i] {
					f = append(f, clique.Word(k.Value), clique.Word(k.Origin), clique.Word(k.Seq))
				}
				return f
			})
		}
	case resp.Rank != nil:
		r := resp.Rank
		appendRow(func(f []clique.Word) []clique.Word {
			return append(f, clique.Word(r.DistinctTotal))
		})
		for _, row := range r.Ranks {
			row := row
			appendRow(func(f []clique.Word) []clique.Word {
				for _, v := range row {
					f = append(f, clique.Word(v))
				}
				return f
			})
		}
	case resp.Key != nil:
		k := *resp.Key
		appendRow(func(f []clique.Word) []clique.Word {
			return append(f, clique.Word(k.Value), clique.Word(k.Origin), clique.Word(k.Seq))
		})
	case resp.Mode != nil:
		m := resp.Mode
		appendRow(func(f []clique.Word) []clique.Word {
			return append(f, clique.Word(m.Value), clique.Word(m.Count))
		})
	case resp.Counts != nil:
		appendRow(func(f []clique.Word) []clique.Word {
			for _, v := range resp.Counts {
				f = append(f, clique.Word(v))
			}
			return f
		})
	case resp.Stats != nil:
		st := resp.Stats
		appendRow(func(f []clique.Word) []clique.Word {
			draining := clique.Word(0)
			if st.Draining {
				draining = 1
			}
			return append(f,
				clique.Word(st.N), clique.Word(st.MaxConcurrency),
				clique.Word(st.QueueDepth), clique.Word(st.BatchMaxOps), draining,
				clique.Word(st.Operations), clique.Word(st.Rounds),
				clique.Word(st.TotalMessages), clique.Word(st.TotalWords),
				clique.Word(st.Retries), clique.Word(st.FailedOperations),
				clique.Word(st.SheddedOps), clique.Word(st.DrainRejected),
				clique.Word(st.BatchedRuns), clique.Word(st.BatchedOps),
				clique.Word(st.PlanCacheHits), clique.Word(st.PlanCacheMisses),
				clique.Word(st.PlanCacheInvalidations))
		})
	default:
		// OpPing replies carry the clique size in PingN.
		appendRow(func(f []clique.Word) []clique.Word {
			return append(f, clique.Word(resp.PingN))
		})
	}
	frame[0] = clique.Word(bodies)
	return frame
}

// statsReplyWords is the exact body length of an OpServerStats reply.
const statsReplyWords = 18

// decodeResponse parses a response frame; op is the operation of the request
// it answers (responses do not repeat the op on the wire — the caller matches
// them by request ID). n bounds the result shape.
func decodeResponse(frame []clique.Word, op Op, n int) (*Response, error) {
	bodies, err := core.DecodeFrame(nil, frame)
	if err != nil {
		return nil, fmt.Errorf("service: response frame: %w", err)
	}
	if len(bodies) == 0 {
		return nil, errors.New("service: response frame has no header")
	}
	h := bodies[0]
	if len(h) != respHeaderWords {
		return nil, fmt.Errorf("service: response header has %d words, want %d", len(h), respHeaderWords)
	}
	if h[0] != wireMagic {
		return nil, fmt.Errorf("service: bad magic %#x", uint64(h[0]))
	}
	if h[1] != wireVersion {
		return nil, fmt.Errorf("service: protocol version %d, want %d", h[1], wireVersion)
	}
	resp := &Response{ID: uint64(h[2]), Status: Status(h[3]), Strategy: int64(h[4])}
	rows := bodies[1:]
	if resp.Status != StatusOK {
		if len(rows) != 1 {
			return nil, fmt.Errorf("service: error response carries %d bodies, want 1", len(rows))
		}
		msg, err := unpackString(rows[0])
		if err != nil {
			return nil, err
		}
		resp.Err = msg
		return resp, nil
	}

	switch op {
	case OpRoute:
		if len(rows) != n {
			return nil, fmt.Errorf("service: route response carries %d rows, want n=%d", len(rows), n)
		}
		rep := &RouteReply{Delivered: make([][]cc.Message, n), Strategy: cc.RouteStrategy(resp.Strategy)}
		for i, row := range rows {
			if len(row)%3 != 0 {
				return nil, fmt.Errorf("service: route response row %d has %d words, not a multiple of 3", i, len(row))
			}
			if len(row) == 0 {
				continue
			}
			ms := make([]cc.Message, len(row)/3)
			for j := range ms {
				ms[j] = cc.Message{Src: int(row[3*j]), Dst: i, Seq: int(row[3*j+1]), Payload: int64(row[3*j+2])}
			}
			rep.Delivered[i] = ms
		}
		resp.Route = rep
	case OpSort, OpSortKeys:
		if len(rows) != n+1 {
			return nil, fmt.Errorf("service: sort response carries %d rows, want n+1=%d", len(rows), n+1)
		}
		if len(rows[0]) != 1 {
			return nil, fmt.Errorf("service: sort response total row has %d words, want 1", len(rows[0]))
		}
		rep := &SortReply{
			Total:    int(rows[0][0]),
			Starts:   make([]int, n),
			Batches:  make([][]cc.Key, n),
			Strategy: cc.SortStrategy(resp.Strategy),
		}
		for i, row := range rows[1:] {
			if len(row) < 1 || (len(row)-1)%3 != 0 {
				return nil, fmt.Errorf("service: sort response batch %d has %d words, want 1+3k", i, len(row))
			}
			rep.Starts[i] = int(row[0])
			if len(row) == 1 {
				continue
			}
			ks := make([]cc.Key, (len(row)-1)/3)
			for j := range ks {
				ks[j] = cc.Key{Value: int64(row[1+3*j]), Origin: int(row[2+3*j]), Seq: int(row[3+3*j])}
			}
			rep.Batches[i] = ks
		}
		resp.Sort = rep
	case OpRank:
		if len(rows) < 1 {
			return nil, errors.New("service: rank response missing total row")
		}
		if len(rows[0]) != 1 {
			return nil, fmt.Errorf("service: rank response total row has %d words, want 1", len(rows[0]))
		}
		rep := &RankReply{DistinctTotal: int(rows[0][0]), Ranks: make([][]int, len(rows)-1)}
		for i, row := range rows[1:] {
			rs := make([]int, len(row))
			for j, w := range row {
				rs[j] = int(w)
			}
			rep.Ranks[i] = rs
		}
		resp.Rank = rep
	case OpSelectKth, OpMedian:
		if len(rows) != 1 || len(rows[0]) != 3 {
			return nil, errors.New("service: selection response must carry one 3-word row")
		}
		resp.Key = &cc.Key{Value: int64(rows[0][0]), Origin: int(rows[0][1]), Seq: int(rows[0][2])}
	case OpMode:
		if len(rows) != 1 || len(rows[0]) != 2 {
			return nil, errors.New("service: mode response must carry one 2-word row")
		}
		resp.Mode = &ModeReply{Value: int64(rows[0][0]), Count: int64(rows[0][1])}
	case OpCountSmallKeys:
		if len(rows) != 1 {
			return nil, fmt.Errorf("service: histogram response carries %d rows, want 1", len(rows))
		}
		counts := make([]int64, len(rows[0]))
		for j, w := range rows[0] {
			counts[j] = int64(w)
		}
		resp.Counts = counts
	case OpPing:
		if len(rows) != 1 || len(rows[0]) != 1 {
			return nil, errors.New("service: ping response must carry one 1-word row")
		}
		resp.PingN = int(rows[0][0])
	case OpServerStats:
		if len(rows) != 1 || len(rows[0]) != statsReplyWords {
			return nil, fmt.Errorf("service: stats response shape invalid")
		}
		r := rows[0]
		resp.Stats = &StatsReply{
			N: int(r[0]), MaxConcurrency: int(r[1]), QueueDepth: int(r[2]),
			BatchMaxOps: int(r[3]), Draining: r[4] != 0,
			Operations: int64(r[5]), Rounds: int64(r[6]), TotalMessages: int64(r[7]),
			TotalWords: int64(r[8]), Retries: int64(r[9]), FailedOperations: int64(r[10]),
			SheddedOps: int64(r[11]), DrainRejected: int64(r[12]),
			BatchedRuns: int64(r[13]), BatchedOps: int64(r[14]),
			PlanCacheHits: int64(r[15]), PlanCacheMisses: int64(r[16]),
			PlanCacheInvalidations: int64(r[17]),
		}
	default:
		return nil, fmt.Errorf("service: unknown op %d decoding response", int(op))
	}
	return resp, nil
}
