package service

import (
	"context"
	"time"

	cc "congestedclique"

	"congestedclique/internal/core"
)

// Server-side batching merges several small Route requests into one engine
// run when the demand-aware planner would still pick a sub-pipeline strategy
// for the merged instance. Each request's messages keep their source rows;
// sequence numbers are densely remapped per source so merged messages stay
// distinguishable, and a reverse reference table splits the merged delivery
// back into per-request results with the original sequence numbers restored.
// Combined with the canonical (Src, Seq) response order, a batched request's
// response is bit-identical to what an unbatched run would have produced.

// batchable reports whether a request may join a merged Route run: Route
// only, not opted out, not carrying an injected fault (a fault must hit
// exactly the run of the request that asked for it), and with per-source
// sequence numbers the session layer would accept. The last check keeps the
// batched and unbatched paths indistinguishable: merging remaps sequence
// numbers, which would otherwise let a duplicate-Seq instance — rejected
// with ErrInvalidInstance when run alone — slip through inside a batch.
func batchable(p *pending) bool {
	return p.req.Op == OpRoute && !p.req.NoBatch && p.req.FaultCancelRound < 0 &&
		seqsUnique(p.req.Msgs)
}

// seqsUnique reports whether every source row uses distinct sequence
// numbers (the session validator's per-row rule).
func seqsUnique(msgs [][]cc.Message) bool {
	for _, row := range msgs {
		if len(row) < 2 {
			continue
		}
		seen := make(map[int]struct{}, len(row))
		for _, m := range row {
			if _, dup := seen[m.Seq]; dup {
				return false
			}
			seen[m.Seq] = struct{}{}
		}
	}
	return true
}

// batchLoad is the per-source and per-destination message count of a
// request, used to keep a merged instance inside the engine's per-row caps.
type batchLoad struct {
	src []int
	dst []int
}

func newBatchLoad(n int) *batchLoad {
	return &batchLoad{src: make([]int, n), dst: make([]int, n)}
}

// add merges p's load, or reports false (leaving the load unchanged) if any
// per-source or per-destination count would exceed n — the engine's validity
// cap for a single Route instance.
func (l *batchLoad) add(p *pending, n int) bool {
	for i, row := range p.req.Msgs {
		if l.src[i]+len(row) > n {
			return false
		}
		for _, m := range row {
			if m.Dst < 0 || m.Dst >= n || l.dst[m.Dst]+1 > n {
				return false
			}
		}
	}
	for i, row := range p.req.Msgs {
		l.src[i] += len(row)
		for _, m := range row {
			l.dst[m.Dst]++
		}
	}
	return true
}

// collectBatch gathers further batchable requests behind first, up to
// BatchMaxOps and the merged-load caps, waiting at most BatchWait for
// stragglers. It returns the batch and, when a pulled request could not
// join, that request as the worker's carry.
func (s *Server) collectBatch(first *pending) (batch []*pending, carry *pending) {
	n := s.cfg.N
	load := newBatchLoad(n)
	load.add(first, n)
	batch = []*pending{first}
	var waitCh <-chan time.Time
	if s.cfg.BatchWait > 0 {
		t := time.NewTimer(s.cfg.BatchWait)
		defer t.Stop()
		waitCh = t.C
	}
	for len(batch) < s.cfg.BatchMaxOps {
		var p *pending
		var ok bool
		if waitCh != nil {
			select {
			case p, ok = <-s.queue:
			case <-waitCh:
				return batch, nil
			}
		} else {
			select {
			case p, ok = <-s.queue:
			default:
				return batch, nil
			}
		}
		if !ok {
			return batch, nil
		}
		if !batchable(p) || !load.add(p, n) {
			return batch, p
		}
		batch = append(batch, p)
	}
	return batch, nil
}

// seqRef locates one merged message's origin: request batch[k], original
// sequence number seq.
type seqRef struct {
	k   int
	seq int
}

// runBatch serves a collected batch. Singleton batches take the ordinary
// path. A merged instance the planner would push into the full-load pipeline
// is not worth fusing — the pipeline's cost is the full 16 rounds either
// way — so the batch falls back to individual runs; so does a batch whose
// merged run fails, keeping per-request deadlines and error mapping exact.
func (s *Server) runBatch(batch []*pending) {
	// Requests whose deadline already passed while queued fail now and drop
	// out of the merge.
	live := batch[:0]
	for _, p := range batch {
		if !p.deadline.IsZero() && !time.Now().Before(p.deadline) {
			s.finish(p, errResponse(p.req.ID, context.DeadlineExceeded))
			continue
		}
		live = append(live, p)
	}
	batch = live
	if len(batch) == 0 {
		return
	}
	if len(batch) == 1 {
		s.finish(batch[0], s.execute(batch[0]))
		return
	}

	n := s.cfg.N
	merged := make([][]cc.Message, n)
	refs := make([][]seqRef, n)
	planIn := make([][]core.Message, n)
	for k, p := range batch {
		for i, row := range p.req.Msgs {
			for _, m := range row {
				seq := len(refs[i])
				refs[i] = append(refs[i], seqRef{k: k, seq: m.Seq})
				merged[i] = append(merged[i], cc.Message{Src: i, Dst: m.Dst, Seq: seq, Payload: m.Payload})
				planIn[i] = append(planIn[i], core.Message{Src: i, Dst: m.Dst, Seq: seq, Payload: m.Payload})
			}
		}
	}
	if plan := core.PlanRoute(n, planIn); plan.Strategy == core.StrategyPipeline {
		for _, p := range batch {
			s.finish(p, s.execute(p))
		}
		return
	}

	// The merged run races the earliest member deadline; on any failure each
	// member re-runs individually under its own deadline, so a tight
	// deadline on one request cannot fail its batchmates.
	ctx := context.Background()
	var earliest time.Time
	for _, p := range batch {
		if !p.deadline.IsZero() && (earliest.IsZero() || p.deadline.Before(earliest)) {
			earliest = p.deadline
		}
	}
	var cancel context.CancelFunc
	if !earliest.IsZero() {
		ctx, cancel = context.WithDeadline(ctx, earliest)
		defer cancel()
	}
	var opts []cc.Option
	if s.cfg.Algorithm != 0 {
		opts = append(opts, cc.WithAlgorithm(s.cfg.Algorithm))
	}
	if s.cfg.Retries > 0 {
		opts = append(opts, cc.WithRetry(s.cfg.Retries, s.cfg.RetryBackoff))
	}
	res, err := s.cl.Route(ctx, merged, opts...)
	if err != nil {
		for _, p := range batch {
			s.finish(p, s.execute(p))
		}
		return
	}
	s.batchedRuns.Add(1)
	s.batchedOps.Add(int64(len(batch)))

	// Split the merged delivery: each delivered message's (Src, Seq) keys
	// the reference table back to its request and original sequence number.
	perReq := make([][][]cc.Message, len(batch))
	for k := range perReq {
		perReq[k] = make([][]cc.Message, n)
	}
	for dst, row := range res.Delivered {
		for _, m := range row {
			ref := refs[m.Src][m.Seq]
			perReq[ref.k][dst] = append(perReq[ref.k][dst],
				cc.Message{Src: m.Src, Dst: dst, Seq: ref.seq, Payload: m.Payload})
		}
	}
	for k, p := range batch {
		resp := &Response{ID: p.req.ID, Strategy: int64(res.Strategy),
			Route: &RouteReply{Delivered: perReq[k], Strategy: res.Strategy}}
		for _, row := range perReq[k] {
			canonicalizeRow(row)
		}
		s.finish(p, resp)
	}
}
