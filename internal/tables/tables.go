// Package tables renders the experiment results as aligned text tables, the
// format recorded in EXPERIMENTS.md and printed by cmd/cliquebench, with
// optional markdown and JSON renderings (the latter feeds the CI benchmark
// artifact).
package tables

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table with a caption.
type Table struct {
	Caption string     `json:"caption"`
	Header  []string   `json:"header"`
	Rows    [][]string `json:"rows"`
}

// New creates a table with the given caption and column headers.
func New(caption string, header ...string) *Table {
	return &Table{Caption: caption, Header: header}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		row[i] = fmt.Sprintf("%v", v)
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}

	var b strings.Builder
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			fmt.Fprintf(&b, "  %-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Document is a JSON-serialisable bundle of tables plus provenance, the
// schema of the benchmark artifacts uploaded by CI (BENCH_ci.json).
type Document struct {
	// Tool identifies the producer (e.g. "cliquebench").
	Tool string `json:"tool"`
	// Args records the relevant producer configuration (flag values).
	Args map[string]string `json:"args,omitempty"`
	// Tables holds every emitted table in emission order.
	Tables []*Table `json:"tables"`
}

// JSON renders the document as indented JSON.
func (d *Document) JSON() ([]byte, error) {
	return json.MarshalIndent(d, "", "  ")
}

// Markdown renders the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Caption != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Caption)
	}
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, r := range t.Rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	return b.String()
}
