package tables

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTableString(t *testing.T) {
	t.Parallel()
	tb := New("Example table", "n", "rounds", "claim")
	tb.AddRow(16, 16, "<= 16")
	tb.AddRow(1024, 16, "<= 16")
	out := tb.String()
	if !strings.Contains(out, "Example table") {
		t.Fatal("caption missing")
	}
	if !strings.Contains(out, "1024") || !strings.Contains(out, "<= 16") {
		t.Fatalf("row content missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines (caption, header, separator, 2 rows), got %d:\n%s", len(lines), out)
	}
}

func TestTableMarkdown(t *testing.T) {
	t.Parallel()
	tb := New("Caption", "a", "b")
	tb.AddRow("x", 1)
	md := tb.Markdown()
	if !strings.Contains(md, "| a | b |") || !strings.Contains(md, "| x | 1 |") || !strings.Contains(md, "| --- | --- |") {
		t.Fatalf("unexpected markdown:\n%s", md)
	}
}

func TestTableRaggedRows(t *testing.T) {
	t.Parallel()
	tb := New("", "a", "b")
	tb.AddRow("only-one")
	tb.AddRow("x", "y", "extra")
	out := tb.String()
	if !strings.Contains(out, "extra") {
		t.Fatalf("extra column dropped:\n%s", out)
	}
}

func TestDocumentJSON(t *testing.T) {
	t.Parallel()
	tb := New("Caption", "a", "b")
	tb.AddRow("x", 1)
	doc := &Document{
		Tool:   "cliquebench",
		Args:   map[string]string{"max-n": "25"},
		Tables: []*Table{tb},
	}
	data, err := doc.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Document
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Tool != "cliquebench" || back.Args["max-n"] != "25" {
		t.Fatalf("round trip lost provenance: %+v", back)
	}
	if len(back.Tables) != 1 || back.Tables[0].Caption != "Caption" ||
		len(back.Tables[0].Rows) != 1 || back.Tables[0].Rows[0][1] != "1" {
		t.Fatalf("round trip lost table content: %+v", back.Tables)
	}
}
