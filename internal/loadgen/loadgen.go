// Package loadgen drives concurrent operation streams against one pooled
// congestedclique session handle and reports aggregate throughput and
// latency percentiles. It is the measurement core shared by cmd/cliqueload
// (the interactive load generator) and cmd/cliquebench (which records the
// concurrency section of BENCH_protocol.json), so the committed numbers and
// the ad-hoc tool always measure the same workload the same way.
package loadgen

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"time"

	cc "congestedclique"

	"congestedclique/internal/workload"
)

// Config describes one load run.
type Config struct {
	// N is the clique size.
	N int
	// Concurrency is the handle's engine-pool size (WithMaxConcurrency).
	Concurrency int
	// Streams is the number of concurrent caller goroutines; each issues
	// OpsPerStream operations back to back.
	Streams      int
	OpsPerStream int
	// Workload selects the operation mix: "route", "sort", or "mixed"
	// (alternating route/sort per operation).
	Workload string
	// Verify cross-checks results bit for bit against a serial golden run.
	// Verification happens in a separate pass over the same stream/op count
	// BEFORE the measured pass, so the reported throughput and latencies
	// never include comparison time — verified numbers stay honest.
	Verify bool
	// FaultEvery, when positive, issues every FaultEvery-th operation of each
	// stream with an injected cancellation at round 1 (a deterministic
	// transient fault). Without retries those operations fail and are counted
	// per stream; with Retries > 0 they recover and must still verify against
	// the golden.
	FaultEvery int
	// Retries and RetryBackoff configure WithRetry on the injected-fault
	// operations (fault-free operations run without a retry budget, keeping
	// the common path identical to a plain load run).
	Retries      int
	RetryBackoff time.Duration
}

// Result is the outcome of one load run.
type Result struct {
	Config
	// Cores and Gomaxprocs snapshot the machine the run executed on —
	// in-process engine scaling is bounded by both, so throughput numbers
	// are meaningless without them.
	Cores      int
	Gomaxprocs int
	TotalOps   int
	Wall       time.Duration
	// OpsPerSec is aggregate completed operations per second of wall time.
	OpsPerSec float64
	// P50, P90, P99 and P999 are latency percentiles over all successful
	// operations.
	P50, P90, P99, P999 time.Duration
	// Verified is the number of operations whose results were cross-checked
	// against the serial golden in the verification pass (0 when
	// Config.Verify is off). The measured pass runs the same operation count
	// again without comparisons.
	Verified int
	// SucceededOps and FailedOps split TotalOps for the measured pass: an
	// operation error no longer aborts the measured window — it is counted
	// against its stream and the stream keeps issuing operations. OpsPerSec
	// and the latency percentiles cover successful operations only.
	SucceededOps int
	FailedOps    int
	// StreamErrors is the per-stream failed-operation count of the measured
	// pass (always Streams entries).
	StreamErrors []int
	// FirstError is the first operation error observed in the measured pass
	// (stream order, then op order), "" when every operation succeeded.
	FirstError string
	// Retries is the number of transparent re-runs WithRetry performed during
	// the measured pass (from the handle's CumulativeStats; in network mode,
	// from the server's stats counters).
	Retries int64
	// SheddedOps counts operations rejected by the server's bounded
	// admission queue (ErrOverloaded) in the measured pass. Always 0 for
	// in-process runs, which have no admission queue. Shed operations are
	// not FailedOps: shedding is the overload policy working as designed.
	SheddedOps int
	// PlanCacheHits and PlanCacheMisses are the server-side plan-cache
	// counter deltas over the measured pass (network mode only, and only
	// nonzero when the server runs with -plan-cache).
	PlanCacheHits   int64
	PlanCacheMisses int64
}

// golden holds the serial reference results of the run's workloads.
type golden struct {
	route  *cc.RouteResult
	sorted *cc.SortResult
}

// RouteWorkload returns the deterministic full-load routing instance used by
// every load run at size n (the same instance the protocol benchmarks and
// the stats-invariant goldens measure).
func RouteWorkload(n int) [][]cc.Message {
	msgs, err := cc.NewUniformMessages(workload.ProtocolBenchRoute(n))
	if err != nil {
		panic(err)
	}
	return msgs
}

// SortWorkload returns the deterministic full-load sorting instance at size n.
func SortWorkload(n int) [][]int64 {
	return workload.ProtocolBenchSortValues(n)
}

// Run executes the configured load against a fresh pooled handle and reports
// the aggregate. The context cancels in-flight operations.
func Run(ctx context.Context, cfg Config) (Result, error) {
	if cfg.N < 1 {
		return Result{}, fmt.Errorf("loadgen: clique size must be positive, got %d", cfg.N)
	}
	if cfg.Concurrency < 1 || cfg.Streams < 1 || cfg.OpsPerStream < 1 {
		return Result{}, fmt.Errorf("loadgen: concurrency, streams and ops must be positive (got k=%d, streams=%d, ops=%d)",
			cfg.Concurrency, cfg.Streams, cfg.OpsPerStream)
	}
	if cfg.FaultEvery < 0 || cfg.Retries < 0 {
		return Result{}, fmt.Errorf("loadgen: fault interval and retries must be non-negative (got every=%d, retries=%d)",
			cfg.FaultEvery, cfg.Retries)
	}
	wantRoute := cfg.Workload == "route" || cfg.Workload == "mixed"
	wantSort := cfg.Workload == "sort" || cfg.Workload == "mixed"
	if !wantRoute && !wantSort {
		return Result{}, fmt.Errorf("loadgen: unknown workload %q (route, sort, mixed)", cfg.Workload)
	}

	var msgs [][]cc.Message
	var values [][]int64
	var g golden
	serial, err := cc.New(cfg.N)
	if err != nil {
		return Result{}, err
	}
	// The serial handle establishes the golden results every concurrent
	// result is compared against (and warms the process-wide buffer pools,
	// so the measured run starts from the steady state a service sees).
	if wantRoute {
		msgs = RouteWorkload(cfg.N)
		if g.route, err = serial.Route(ctx, msgs); err != nil {
			serial.Close()
			return Result{}, fmt.Errorf("loadgen: serial route golden: %w", err)
		}
	}
	if wantSort {
		values = SortWorkload(cfg.N)
		if g.sorted, err = serial.Sort(ctx, values); err != nil {
			serial.Close()
			return Result{}, fmt.Errorf("loadgen: serial sort golden: %w", err)
		}
	}
	if err := serial.Close(); err != nil {
		return Result{}, err
	}

	cl, err := cc.New(cfg.N, cc.WithMaxConcurrency(cfg.Concurrency))
	if err != nil {
		return Result{}, err
	}
	defer cl.Close()

	totalOps := cfg.Streams * cfg.OpsPerStream

	// Injected-fault operations carry their own option set: a deterministic
	// cancellation at round 1, plus the configured retry budget.
	var faultOpts []cc.Option
	if cfg.FaultEvery > 0 {
		faultOpts = append(faultOpts, cc.WithInjectedCancel(1))
		if cfg.Retries > 0 {
			faultOpts = append(faultOpts, cc.WithRetry(cfg.Retries, cfg.RetryBackoff))
		}
	}

	// pass drives Streams concurrent goroutines of OpsPerStream operations
	// each against the pooled handle. An operation error is counted against
	// its stream and the stream moves on — the window is never aborted — but
	// a verification MISMATCH (verify set, result diverging from the serial
	// golden) fails the whole run: it means a successful operation returned
	// wrong data, which no error budget excuses. With latencies non-nil the
	// per-op durations of successful operations are recorded.
	pass := func(latencies []time.Duration, ok []bool, verify bool) (time.Duration, []int, int, string, error) {
		streamErrs := make([]int, cfg.Streams)
		firstErrs := make([]string, cfg.Streams)
		mismatches := make([]error, cfg.Streams)
		verifiedBy := make([]int, cfg.Streams)
		var wg sync.WaitGroup
		start := time.Now()
		for s := 0; s < cfg.Streams; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				for op := 0; op < cfg.OpsPerStream; op++ {
					doRoute := wantRoute && (!wantSort || (s+op)%2 == 0)
					var opts []cc.Option
					if cfg.FaultEvery > 0 && (op+1)%cfg.FaultEvery == 0 {
						opts = faultOpts
					}
					opStart := time.Now()
					var routed *cc.RouteResult
					var sorted *cc.SortResult
					var err error
					if doRoute {
						routed, err = cl.Route(ctx, msgs, opts...)
					} else {
						sorted, err = cl.Sort(ctx, values, opts...)
					}
					if err != nil {
						streamErrs[s]++
						if firstErrs[s] == "" {
							firstErrs[s] = fmt.Sprintf("stream %d op %d: %v", s, op, err)
						}
						continue
					}
					if latencies != nil {
						latencies[s*cfg.OpsPerStream+op] = time.Since(opStart)
						ok[s*cfg.OpsPerStream+op] = true
					}
					if verify {
						var vErr error
						if doRoute {
							vErr = g.checkRoute(routed)
						} else {
							vErr = g.checkSort(sorted)
						}
						if vErr != nil {
							mismatches[s] = fmt.Errorf("stream %d op %d: %w", s, op, vErr)
							return
						}
						verifiedBy[s]++
					}
				}
			}(s)
		}
		wg.Wait()
		wall := time.Since(start)
		for _, err := range mismatches {
			if err != nil {
				return wall, nil, 0, "", err
			}
		}
		verified := 0
		firstErr := ""
		for s := 0; s < cfg.Streams; s++ {
			verified += verifiedBy[s]
			if firstErr == "" && firstErrs[s] != "" {
				firstErr = firstErrs[s]
			}
		}
		return wall, streamErrs, verified, firstErr, nil
	}

	// Verification pass first (results checked, nothing measured), then the
	// measured pass with no comparison work inside the timed window.
	verified := 0
	if cfg.Verify {
		var err error
		if _, _, verified, _, err = pass(nil, nil, true); err != nil {
			return Result{}, err
		}
	}
	retryBase := cl.CumulativeStats().Retries
	latencies := make([]time.Duration, totalOps)
	okOps := make([]bool, totalOps)
	wall, streamErrs, _, firstErr, err := pass(latencies, okOps, false)
	if err != nil {
		return Result{}, err
	}
	retries := cl.CumulativeStats().Retries - retryBase

	// Percentiles and throughput speak for successful operations only.
	succeeded := latencies[:0]
	for i, d := range latencies {
		if okOps[i] {
			succeeded = append(succeeded, d)
		}
	}
	failed := 0
	for _, c := range streamErrs {
		failed += c
	}
	slices.Sort(succeeded)
	res := Result{
		Config:       cfg,
		Cores:        runtime.NumCPU(),
		Gomaxprocs:   runtime.GOMAXPROCS(0),
		TotalOps:     totalOps,
		Wall:         wall,
		OpsPerSec:    float64(len(succeeded)) / wall.Seconds(),
		P50:          percentile(succeeded, 50),
		P90:          percentile(succeeded, 90),
		P99:          percentile(succeeded, 99),
		P999:         permille(succeeded, 999),
		Verified:     verified,
		SucceededOps: len(succeeded),
		FailedOps:    failed,
		StreamErrors: streamErrs,
		FirstError:   firstErr,
		Retries:      retries,
	}
	return res, nil
}

// percentile returns the p-th percentile of sorted latencies (nearest-rank).
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (p*len(sorted) + 99) / 100
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

// permille returns the p-th permille (p999 = 99.9th percentile) of sorted
// latencies, nearest-rank like percentile.
func permille(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (p*len(sorted) + 999) / 1000
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

// checkRoute deep-compares a concurrent Route result against the serial
// golden: stats and every delivered message must match bit for bit.
func (g *golden) checkRoute(res *cc.RouteResult) error {
	if res.Stats != g.route.Stats {
		return fmt.Errorf("route stats %+v diverge from serial %+v", res.Stats, g.route.Stats)
	}
	if len(res.Delivered) != len(g.route.Delivered) {
		return fmt.Errorf("delivered to %d nodes, serial %d", len(res.Delivered), len(g.route.Delivered))
	}
	for i := range res.Delivered {
		if len(res.Delivered[i]) != len(g.route.Delivered[i]) {
			return fmt.Errorf("node %d received %d messages, serial %d", i, len(res.Delivered[i]), len(g.route.Delivered[i]))
		}
		for j := range res.Delivered[i] {
			if res.Delivered[i][j] != g.route.Delivered[i][j] {
				return fmt.Errorf("delivery diverged from serial at node %d message %d", i, j)
			}
		}
	}
	return nil
}

// checkSort deep-compares a concurrent Sort result against the serial golden.
func (g *golden) checkSort(res *cc.SortResult) error {
	if res.Stats != g.sorted.Stats || res.Total != g.sorted.Total {
		return fmt.Errorf("sort stats %+v/total %d diverge from serial %+v/%d", res.Stats, res.Total, g.sorted.Stats, g.sorted.Total)
	}
	for i := range res.Batches {
		if res.Starts[i] != g.sorted.Starts[i] || len(res.Batches[i]) != len(g.sorted.Batches[i]) {
			return fmt.Errorf("batch %d shape diverged from serial", i)
		}
		for j := range res.Batches[i] {
			if res.Batches[i][j] != g.sorted.Batches[i][j] {
				return fmt.Errorf("sorted key diverged from serial at batch %d index %d", i, j)
			}
		}
	}
	return nil
}
