package loadgen

import (
	"context"
	"testing"
	"time"
)

// TestRunMixedVerified drives a small verified mixed load end to end: every
// operation must succeed, verify against the serial golden, and be counted.
func TestRunMixedVerified(t *testing.T) {
	cfg := Config{N: 16, Concurrency: 2, Streams: 4, OpsPerStream: 2, Workload: "mixed", Verify: true}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOps != 8 || res.Verified != 8 {
		t.Fatalf("TotalOps=%d Verified=%d, want 8/8", res.TotalOps, res.Verified)
	}
	if res.OpsPerSec <= 0 || res.Wall <= 0 {
		t.Fatalf("throughput not measured: %+v", res)
	}
	if res.P50 <= 0 || res.P99 < res.P50 {
		t.Fatalf("latency percentiles inconsistent: p50=%v p99=%v", res.P50, res.P99)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	for _, cfg := range []Config{
		{N: 0, Concurrency: 1, Streams: 1, OpsPerStream: 1, Workload: "route"},
		{N: 8, Concurrency: 0, Streams: 1, OpsPerStream: 1, Workload: "route"},
		{N: 8, Concurrency: 1, Streams: 1, OpsPerStream: 1, Workload: "nope"},
	} {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Fatalf("config %+v accepted, want error", cfg)
		}
	}
}

func TestPercentile(t *testing.T) {
	lat := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		p    int
		want time.Duration
	}{{50, 5}, {90, 9}, {99, 10}, {100, 10}} {
		if got := percentile(lat, tc.p); got != tc.want {
			t.Fatalf("percentile(%d) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Fatalf("percentile(empty) = %v, want 0", got)
	}
}
