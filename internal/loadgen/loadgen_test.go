package loadgen

import (
	"context"
	"testing"
	"time"
)

// TestRunMixedVerified drives a small verified mixed load end to end: every
// operation must succeed, verify against the serial golden, and be counted.
func TestRunMixedVerified(t *testing.T) {
	cfg := Config{N: 16, Concurrency: 2, Streams: 4, OpsPerStream: 2, Workload: "mixed", Verify: true}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOps != 8 || res.Verified != 8 {
		t.Fatalf("TotalOps=%d Verified=%d, want 8/8", res.TotalOps, res.Verified)
	}
	if res.OpsPerSec <= 0 || res.Wall <= 0 {
		t.Fatalf("throughput not measured: %+v", res)
	}
	if res.P50 <= 0 || res.P99 < res.P50 {
		t.Fatalf("latency percentiles inconsistent: p50=%v p99=%v", res.P50, res.P99)
	}
}

// TestRunRecordsStreamErrors injects a deterministic fault into every 2nd op
// of each stream with no retry budget: the measured window must complete with
// the failures counted per stream instead of aborting, and the percentiles
// must speak for the successful operations only.
func TestRunRecordsStreamErrors(t *testing.T) {
	cfg := Config{N: 16, Concurrency: 2, Streams: 2, OpsPerStream: 4, Workload: "route", FaultEvery: 2}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOps != 8 || res.FailedOps != 4 || res.SucceededOps != 4 {
		t.Fatalf("TotalOps=%d FailedOps=%d SucceededOps=%d, want 8/4/4", res.TotalOps, res.FailedOps, res.SucceededOps)
	}
	if len(res.StreamErrors) != 2 || res.StreamErrors[0] != 2 || res.StreamErrors[1] != 2 {
		t.Fatalf("StreamErrors = %v, want [2 2]", res.StreamErrors)
	}
	if res.FirstError == "" {
		t.Fatal("FirstError empty with failed operations")
	}
	if res.P50 <= 0 {
		t.Fatalf("percentiles must cover the successful ops: p50=%v", res.P50)
	}
}

// TestRunRetriesRecoverInjectedFaults gives the injected-fault operations a
// retry budget: every operation must recover (the fault plan is consumed by
// the first attempt), verify bit-identical to the serial golden, and the
// retry count must surface in the result.
func TestRunRetriesRecoverInjectedFaults(t *testing.T) {
	cfg := Config{N: 16, Concurrency: 2, Streams: 2, OpsPerStream: 4, Workload: "mixed", Verify: true, FaultEvery: 2, Retries: 1}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedOps != 0 || res.SucceededOps != 8 {
		t.Fatalf("FailedOps=%d SucceededOps=%d, want 0/8", res.FailedOps, res.SucceededOps)
	}
	if res.Verified != 8 {
		t.Fatalf("Verified=%d, want 8", res.Verified)
	}
	// 2 faulted ops per stream in the measured pass, one retry each.
	if res.Retries != 4 {
		t.Fatalf("Retries=%d, want 4", res.Retries)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	for _, cfg := range []Config{
		{N: 0, Concurrency: 1, Streams: 1, OpsPerStream: 1, Workload: "route"},
		{N: 8, Concurrency: 0, Streams: 1, OpsPerStream: 1, Workload: "route"},
		{N: 8, Concurrency: 1, Streams: 1, OpsPerStream: 1, Workload: "nope"},
		{N: 8, Concurrency: 1, Streams: 1, OpsPerStream: 1, Workload: "route", FaultEvery: -1},
		{N: 8, Concurrency: 1, Streams: 1, OpsPerStream: 1, Workload: "route", Retries: -1},
	} {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Fatalf("config %+v accepted, want error", cfg)
		}
	}
}

func TestPercentile(t *testing.T) {
	lat := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		p    int
		want time.Duration
	}{{50, 5}, {90, 9}, {99, 10}, {100, 10}} {
		if got := percentile(lat, tc.p); got != tc.want {
			t.Fatalf("percentile(%d) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Fatalf("percentile(empty) = %v, want 0", got)
	}
}
