package loadgen

import (
	"context"
	"net"
	"testing"
	"time"

	"congestedclique/internal/service"
)

// startServiceServer brings up a cliqued-equivalent server on a loopback
// port for the network-transport tests.
func startServiceServer(t *testing.T, cfg service.Config) string {
	t.Helper()
	srv, err := service.NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return ln.Addr().String()
}

func TestRunNetworkClosedLoopVerified(t *testing.T) {
	const n = 16
	addr := startServiceServer(t, service.Config{N: n, MaxConcurrency: 2, QueueDepth: 32})
	res, err := RunNetwork(context.Background(), NetworkConfig{
		Config: Config{N: n, Concurrency: 2, Streams: 3, OpsPerStream: 4, Workload: "mixed", Verify: true},
		Addr:   addr,
	})
	if err != nil {
		t.Fatalf("RunNetwork: %v", err)
	}
	if res.Verified != 3*4 {
		t.Errorf("verified %d ops, want %d", res.Verified, 12)
	}
	if res.SucceededOps != 12 || res.FailedOps != 0 || res.SheddedOps != 0 {
		t.Errorf("ok/failed/shed = %d/%d/%d, want 12/0/0", res.SucceededOps, res.FailedOps, res.SheddedOps)
	}
	if res.OpsPerSec <= 0 || res.P50 <= 0 || res.P999 < res.P50 {
		t.Errorf("implausible aggregates: %+v", res)
	}
}

func TestRunNetworkFaultedRetries(t *testing.T) {
	const n = 16
	addr := startServiceServer(t, service.Config{N: n, MaxConcurrency: 2, QueueDepth: 32,
		AllowFaultInjection: true})
	res, err := RunNetwork(context.Background(), NetworkConfig{
		Config: Config{N: n, Concurrency: 2, Streams: 2, OpsPerStream: 4, Workload: "route",
			Verify: true, FaultEvery: 2, Retries: 1},
		Addr: addr,
	})
	if err != nil {
		t.Fatalf("RunNetwork: %v", err)
	}
	if res.FailedOps != 0 {
		t.Errorf("faulted ops failed despite retry budget: %d (first: %s)", res.FailedOps, res.FirstError)
	}
	if res.Retries == 0 {
		t.Error("server-side retry counter did not move")
	}
}

func TestRunNetworkOpenLoopOverload(t *testing.T) {
	const n = 16
	// A deliberately tiny server: one engine, queue depth 1, so an offered
	// rate far above capacity must shed — with every accepted result still
	// verifying against the golden (issue() verifies in open-loop mode).
	addr := startServiceServer(t, service.Config{N: n, MaxConcurrency: 1, QueueDepth: 1})
	res, err := RunNetwork(context.Background(), NetworkConfig{
		Config:   Config{N: n, Concurrency: 1, Streams: 4, Workload: "route", Verify: false},
		Addr:     addr,
		Rate:     2000,
		Duration: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("RunNetwork: %v", err)
	}
	if res.SucceededOps == 0 {
		t.Fatal("no operation succeeded in the open-loop window")
	}
	if res.SheddedOps == 0 {
		t.Fatal("offered 2000/s against queue depth 1 and nothing was shed")
	}
	if res.FailedOps != 0 {
		t.Errorf("open-loop overload produced %d hard failures (first: %s)", res.FailedOps, res.FirstError)
	}
	t.Logf("open loop: offered %d, ok %d, shed %d, p50=%v p999=%v",
		res.TotalOps, res.SucceededOps, res.SheddedOps, res.P50, res.P999)
}

func TestRunNetworkRejectsMismatchedN(t *testing.T) {
	addr := startServiceServer(t, service.Config{N: 8})
	_, err := RunNetwork(context.Background(), NetworkConfig{
		Config: Config{N: 16, Concurrency: 1, Streams: 1, OpsPerStream: 1, Workload: "route"},
		Addr:   addr,
	})
	if err == nil {
		t.Fatal("n mismatch between run and server not rejected")
	}
}
