package loadgen

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"slices"
	"sync"
	"time"

	cc "congestedclique"

	"congestedclique/internal/service"
)

// NetworkConfig describes one load run against a remote cliqued server
// (cmd/cliqueload's -addr mode). The embedded Config keeps the same stream
// and workload vocabulary as the in-process runs, so in-process and service
// numbers stay directly comparable.
type NetworkConfig struct {
	Config
	// Addr is the server address ("host:port"). The server's clique size
	// (learned in the handshake) must match Config.N.
	Addr string
	// Rate, when positive, switches the measured pass to open loop: the
	// driver offers Rate operations per second for Duration regardless of
	// completions — the only honest way to measure a server past
	// saturation, where a closed loop would self-throttle. Streams then
	// sets the connection-pool size, not a caller count.
	Rate float64
	// Duration bounds the open-loop measured window (default 5s).
	Duration time.Duration
	// OpDeadline, when positive, attaches a per-request deadline to every
	// measured operation.
	OpDeadline time.Duration
}

// netGolden holds the serial in-process reference results in the wire
// protocol's canonical form; every networked response is compared against
// it bit for bit.
type netGolden struct {
	route [][]cc.Message
	sort  *cc.SortResult
}

func (g *netGolden) checkRoute(rep *service.RouteReply) error {
	if rep == nil {
		return errors.New("nil route reply")
	}
	if len(rep.Delivered) != len(g.route) {
		return fmt.Errorf("delivered to %d nodes, golden %d", len(rep.Delivered), len(g.route))
	}
	for i := range rep.Delivered {
		if len(rep.Delivered[i]) == 0 && len(g.route[i]) == 0 {
			continue
		}
		if !reflect.DeepEqual(rep.Delivered[i], g.route[i]) {
			return fmt.Errorf("delivery diverged from in-process golden at node %d", i)
		}
	}
	return nil
}

func (g *netGolden) checkSort(rep *service.SortReply) error {
	if rep == nil {
		return errors.New("nil sort reply")
	}
	if rep.Total != g.sort.Total {
		return fmt.Errorf("sorted total %d, golden %d", rep.Total, g.sort.Total)
	}
	if !reflect.DeepEqual(rep.Starts, g.sort.Starts) {
		return errors.New("sorted starts diverged from in-process golden")
	}
	for i := range rep.Batches {
		if len(rep.Batches[i]) == 0 && len(g.sort.Batches[i]) == 0 {
			continue
		}
		if !reflect.DeepEqual(rep.Batches[i], g.sort.Batches[i]) {
			return fmt.Errorf("sorted batch %d diverged from in-process golden", i)
		}
	}
	return nil
}

// RunNetwork executes the configured load against a cliqued server and
// reports the aggregate. The verification discipline mirrors Run: a closed
// verification pass precedes the measurement, and in open-loop mode —
// where the whole point is overload, so shed responses are expected — every
// successful in-window response is additionally verified against the
// golden, pinning "bounded-queue shedding with zero incorrect results".
func RunNetwork(ctx context.Context, cfg NetworkConfig) (Result, error) {
	if cfg.Addr == "" {
		return Result{}, errors.New("loadgen: network run needs an address")
	}
	if cfg.N < 1 || cfg.Streams < 1 {
		return Result{}, fmt.Errorf("loadgen: clique size and streams must be positive (got n=%d, streams=%d)", cfg.N, cfg.Streams)
	}
	if cfg.Rate == 0 && cfg.OpsPerStream < 1 {
		return Result{}, fmt.Errorf("loadgen: closed-loop network run needs positive ops per stream, got %d", cfg.OpsPerStream)
	}
	if cfg.Rate < 0 || cfg.Duration < 0 || cfg.FaultEvery < 0 || cfg.Retries < 0 {
		return Result{}, errors.New("loadgen: negative rate, duration, fault interval or retries")
	}
	if cfg.Rate > 0 && cfg.Duration == 0 {
		cfg.Duration = 5 * time.Second
	}
	wantRoute := cfg.Workload == "route" || cfg.Workload == "mixed"
	wantSort := cfg.Workload == "sort" || cfg.Workload == "mixed"
	if !wantRoute && !wantSort {
		return Result{}, fmt.Errorf("loadgen: unknown workload %q (route, sort, mixed)", cfg.Workload)
	}

	// In-process serial goldens, canonicalized exactly as the wire protocol
	// canonicalizes its responses.
	var msgs [][]cc.Message
	var values [][]int64
	var g netGolden
	serial, err := cc.New(cfg.N)
	if err != nil {
		return Result{}, err
	}
	if wantRoute {
		msgs = RouteWorkload(cfg.N)
		res, err := serial.Route(ctx, msgs)
		if err != nil {
			serial.Close()
			return Result{}, fmt.Errorf("loadgen: serial route golden: %w", err)
		}
		g.route = canonicalRoute(res.Delivered)
	}
	if wantSort {
		values = SortWorkload(cfg.N)
		if g.sort, err = serial.Sort(ctx, values); err != nil {
			serial.Close()
			return Result{}, fmt.Errorf("loadgen: serial sort golden: %w", err)
		}
	}
	if err := serial.Close(); err != nil {
		return Result{}, err
	}

	clients := make([]*service.Client, cfg.Streams)
	for i := range clients {
		cl, err := service.Dial(cfg.Addr)
		if err != nil {
			for _, c := range clients[:i] {
				c.Close()
			}
			return Result{}, fmt.Errorf("loadgen: dial %s: %w", cfg.Addr, err)
		}
		if cl.N() != cfg.N {
			cl.Close()
			for _, c := range clients[:i] {
				c.Close()
			}
			return Result{}, fmt.Errorf("loadgen: server at %s serves n=%d, run configured for n=%d", cfg.Addr, cl.N(), cfg.N)
		}
		clients[i] = cl
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	// issue runs one operation through a client and verifies it when asked.
	// It reports (verified-success, shed, error).
	issue := func(cl *service.Client, doRoute, faulted, verify bool) (bool, bool, error) {
		opts := &service.CallOpts{Deadline: cfg.OpDeadline}
		if faulted {
			opts.InjectCancel = true
			opts.FaultCancelRound = 1
			opts.Retries = cfg.Retries
			opts.RetryBackoff = cfg.RetryBackoff
		}
		if doRoute {
			rep, err := cl.Route(msgs, opts)
			if err != nil {
				return false, errors.Is(err, service.ErrOverloaded), err
			}
			if verify {
				if err := g.checkRoute(rep); err != nil {
					return false, false, fmt.Errorf("%w: %v", errMismatch, err)
				}
			}
			return true, false, nil
		}
		rep, err := cl.Sort(values, opts)
		if err != nil {
			return false, errors.Is(err, service.ErrOverloaded), err
		}
		if verify {
			if err := g.checkSort(rep); err != nil {
				return false, false, fmt.Errorf("%w: %v", errMismatch, err)
			}
		}
		return true, false, nil
	}

	// Verification pass: closed loop, every response compared. A shed here
	// only happens if the server is already overloaded by someone else;
	// count it and move on, mismatches abort.
	verified := 0
	if cfg.Verify {
		ops := cfg.OpsPerStream
		if ops < 1 {
			ops = 1
		}
		var wg sync.WaitGroup
		verifiedBy := make([]int, cfg.Streams)
		mismatches := make([]error, cfg.Streams)
		for s := 0; s < cfg.Streams; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				for op := 0; op < ops; op++ {
					doRoute := wantRoute && (!wantSort || (s+op)%2 == 0)
					faulted := cfg.FaultEvery > 0 && (op+1)%cfg.FaultEvery == 0
					okOp, _, err := issue(clients[s], doRoute, faulted, true)
					if errors.Is(err, errMismatch) {
						mismatches[s] = fmt.Errorf("stream %d op %d: %w", s, op, err)
						return
					}
					if okOp {
						verifiedBy[s]++
					}
				}
			}(s)
		}
		wg.Wait()
		for _, err := range mismatches {
			if err != nil {
				return Result{}, err
			}
		}
		for _, v := range verifiedBy {
			verified += v
		}
	}

	// Server-side retry counter, sampled around the measured window.
	statsBefore, err := clients[0].ServerStats()
	if err != nil {
		return Result{}, fmt.Errorf("loadgen: server stats: %w", err)
	}

	var res Result
	if cfg.Rate > 0 {
		res, err = runOpenLoop(cfg, clients, issue, wantRoute, wantSort)
	} else {
		res, err = runClosedLoop(cfg, clients, issue, wantRoute, wantSort)
	}
	if err != nil {
		return Result{}, err
	}
	statsAfter, err := clients[0].ServerStats()
	if err != nil {
		return Result{}, fmt.Errorf("loadgen: server stats: %w", err)
	}
	res.Retries = statsAfter.Retries - statsBefore.Retries
	res.PlanCacheHits = statsAfter.PlanCacheHits - statsBefore.PlanCacheHits
	res.PlanCacheMisses = statsAfter.PlanCacheMisses - statsBefore.PlanCacheMisses
	res.Verified = verified
	return res, nil
}

// canonicalRoute deep-copies a delivery and sorts every row by (Src, Seq) —
// the wire protocol's canonical response order.
func canonicalRoute(delivered [][]cc.Message) [][]cc.Message {
	rows := make([][]cc.Message, len(delivered))
	for i, row := range delivered {
		if len(row) == 0 {
			continue
		}
		r := append([]cc.Message(nil), row...)
		slices.SortFunc(r, func(a, b cc.Message) int {
			if a.Src != b.Src {
				return a.Src - b.Src
			}
			return a.Seq - b.Seq
		})
		rows[i] = r
	}
	return rows
}

type issueFunc func(cl *service.Client, doRoute, faulted, verify bool) (bool, bool, error)

// errMismatch marks a verification failure: a successful response whose
// content diverged from the in-process golden. It always aborts the run.
var errMismatch = errors.New("loadgen: response diverged from in-process golden")

// runClosedLoop is the network twin of the in-process measured pass:
// Streams goroutines, one connection each, OpsPerStream back-to-back ops.
// Responses are not verified inside the timed window (the verification pass
// already ran); latencies cover successful operations only.
func runClosedLoop(cfg NetworkConfig, clients []*service.Client, issue issueFunc, wantRoute, wantSort bool) (Result, error) {
	totalOps := cfg.Streams * cfg.OpsPerStream
	latencies := make([]time.Duration, totalOps)
	okOps := make([]bool, totalOps)
	streamErrs := make([]int, cfg.Streams)
	firstErrs := make([]string, cfg.Streams)
	shedBy := make([]int, cfg.Streams)
	var wg sync.WaitGroup
	start := time.Now()
	for s := 0; s < cfg.Streams; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for op := 0; op < cfg.OpsPerStream; op++ {
				doRoute := wantRoute && (!wantSort || (s+op)%2 == 0)
				faulted := cfg.FaultEvery > 0 && (op+1)%cfg.FaultEvery == 0
				opStart := time.Now()
				okOp, shed, err := issue(clients[s], doRoute, faulted, false)
				switch {
				case okOp:
					latencies[s*cfg.OpsPerStream+op] = time.Since(opStart)
					okOps[s*cfg.OpsPerStream+op] = true
				case shed:
					shedBy[s]++
				default:
					streamErrs[s]++
					if firstErrs[s] == "" {
						firstErrs[s] = fmt.Sprintf("stream %d op %d: %v", s, op, err)
					}
				}
			}
		}(s)
	}
	wg.Wait()
	wall := time.Since(start)
	return assembleNetResult(cfg, wall, latencies, okOps, streamErrs, firstErrs, shedBy), nil
}

// runOpenLoop offers cfg.Rate operations per second for cfg.Duration,
// dispatching each operation in its own goroutine round-robin across the
// connection pool — completions never gate arrivals, so the offered load
// holds through saturation. Every successful response is verified.
func runOpenLoop(cfg NetworkConfig, clients []*service.Client, issue issueFunc, wantRoute, wantSort bool) (Result, error) {
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	if interval <= 0 {
		return Result{}, fmt.Errorf("loadgen: rate %.0f/s too high to schedule", cfg.Rate)
	}
	var mu sync.Mutex
	var latencies []time.Duration
	streamErrs := make([]int, cfg.Streams)
	firstErrs := make([]string, cfg.Streams)
	shedBy := make([]int, cfg.Streams)
	var mismatch error
	var wg sync.WaitGroup

	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	stop := time.NewTimer(cfg.Duration)
	defer stop.Stop()
	start := time.Now()
	offered := 0
loop:
	for {
		select {
		case <-stop.C:
			break loop
		case <-ticker.C:
			op := offered
			offered++
			s := op % cfg.Streams
			wg.Add(1)
			go func(op, s int) {
				defer wg.Done()
				doRoute := wantRoute && (!wantSort || op%2 == 0)
				faulted := cfg.FaultEvery > 0 && (op+1)%cfg.FaultEvery == 0
				opStart := time.Now()
				okOp, shed, err := issue(clients[s], doRoute, faulted, true)
				mu.Lock()
				defer mu.Unlock()
				switch {
				case okOp:
					latencies = append(latencies, time.Since(opStart))
				case shed:
					shedBy[s]++
				case errors.Is(err, errMismatch):
					if mismatch == nil {
						mismatch = fmt.Errorf("open-loop op %d: %w", op, err)
					}
				default:
					streamErrs[s]++
					if firstErrs[s] == "" {
						firstErrs[s] = fmt.Sprintf("op %d (conn %d): %v", op, s, err)
					}
				}
			}(op, s)
		}
	}
	wg.Wait()
	wall := time.Since(start)
	if mismatch != nil {
		return Result{}, mismatch
	}

	okOps := make([]bool, len(latencies))
	for i := range okOps {
		okOps[i] = true
	}
	res := assembleNetResult(cfg, wall, latencies, okOps, streamErrs, firstErrs, shedBy)
	res.TotalOps = offered
	return res, nil
}

// assembleNetResult folds per-stream tallies into a Result.
func assembleNetResult(cfg NetworkConfig, wall time.Duration, latencies []time.Duration, okOps []bool, streamErrs []int, firstErrs []string, shedBy []int) Result {
	succeeded := make([]time.Duration, 0, len(latencies))
	for i, d := range latencies {
		if okOps[i] {
			succeeded = append(succeeded, d)
		}
	}
	failed, shed := 0, 0
	firstErr := ""
	for s := range streamErrs {
		failed += streamErrs[s]
		shed += shedBy[s]
		if firstErr == "" && firstErrs[s] != "" {
			firstErr = firstErrs[s]
		}
	}
	slices.Sort(succeeded)
	return Result{
		Config:       cfg.Config,
		Cores:        runtime.NumCPU(),
		Gomaxprocs:   runtime.GOMAXPROCS(0),
		TotalOps:     len(latencies),
		Wall:         wall,
		OpsPerSec:    float64(len(succeeded)) / wall.Seconds(),
		P50:          percentile(succeeded, 50),
		P90:          percentile(succeeded, 90),
		P99:          percentile(succeeded, 99),
		P999:         permille(succeeded, 999),
		SucceededOps: len(succeeded),
		FailedOps:    failed,
		StreamErrors: streamErrs,
		FirstError:   firstErr,
		SheddedOps:   shed,
	}
}
