package clique

import "sync"

// Word is the unit of message payload. The congested-clique model allows a
// constant number of integers that are polynomially bounded in n per message;
// a Word holds one such integer.
type Word = int64

// Packet is a single message sent along one directed edge in one round. Its
// length must stay bounded by a constant (independent of n) for an algorithm
// to respect the O(log n) bits-per-edge budget of the model.
//
// Lifetimes: the engine copies sent payloads during delivery, so a sender may
// reuse its buffer as soon as its next Exchange returns. Received packets are
// engine-owned views into per-receiver arenas. The Inbox structure and the
// packet headers stay valid until the receiver's next Exchange call; the
// payload words stay valid for PayloadGraceRounds further barriers, so a
// received packet may be forwarded verbatim within that window (this covers
// the paper's constant-round primitives, which re-send received words after
// at most two intervening announcement rounds). Callers that retain packet
// contents beyond the grace window must Clone them. All received views
// expire, at the latest, when Run or RunRounds returns: the engine's
// delivery buffers are pooled across Network instances, so a future Network
// may recycle them — node programs must copy anything that outlives the run.
type Packet []Word

// Clone returns an independent copy of the packet. Packets received from
// Exchange share backing storage with the engine (see the Packet lifetime
// rules), so callers that retain packet contents across rounds must clone
// them.
func (p Packet) Clone() Packet {
	if p == nil {
		return nil
	}
	out := make(Packet, len(p))
	copy(out, p)
	return out
}

// pendingPacket is a packet queued by a node for delivery at the next round
// barrier. count and model carry the frame accounting (see Node.SendFramed):
// a plain Send queues one logical message whose model cost is its length,
// while a framed send coalesces count logical messages whose model cost
// excludes the frame's bookkeeping words.
type pendingPacket struct {
	to    int
	data  Packet
	count int32
	model int32
}

// wordBufPool recycles word buffers used to build packet payloads whose
// lifetime ends at a known barrier (the engine copies payloads during
// delivery, so a sender-side buffer is free once the sender's Exchange has
// returned). The Mux carves all of a round's tagged packets out of one pooled
// buffer, so steady-state virtual rounds allocate nothing.
var wordBufPool = sync.Pool{
	New: func() interface{} {
		b := make([]Word, 0, 256)
		return &b
	},
}

// acquireWords returns an empty word buffer from the pool.
func acquireWords() *[]Word {
	b := wordBufPool.Get().(*[]Word)
	*b = (*b)[:0]
	return b
}

// releaseWords returns a buffer to the pool. The caller must not touch any
// memory carved from it afterwards.
func releaseWords(b *[]Word) {
	wordBufPool.Put(b)
}

// Inbox holds everything a node received in one round, indexed by sender.
// Inbox[s] is the list of packets sent by node s this round (nil if none).
type Inbox [][]Packet

// From returns the packets received from sender s. It is a convenience
// accessor that tolerates a short or nil inbox.
func (in Inbox) From(s int) []Packet {
	if s < 0 || s >= len(in) {
		return nil
	}
	return in[s]
}

// Single returns the unique packet received from sender s, or nil if none was
// received. It is used by protocols whose invariant is "at most one packet
// per edge per round"; if the invariant is violated the first packet is
// returned (the violation itself surfaces through the engine's metrics or the
// strict bandwidth cap).
func (in Inbox) Single(s int) Packet {
	ps := in.From(s)
	if len(ps) == 0 {
		return nil
	}
	return ps[0]
}

// Count returns the total number of packets in the inbox.
func (in Inbox) Count() int {
	total := 0
	for _, ps := range in {
		total += len(ps)
	}
	return total
}

// Words returns the total number of words in the inbox.
func (in Inbox) Words() int {
	total := 0
	for _, ps := range in {
		for _, p := range ps {
			total += len(p)
		}
	}
	return total
}
