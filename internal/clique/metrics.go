package clique

// RoundStats aggregates the traffic of a single synchronous round.
type RoundStats struct {
	// Messages is the number of packets delivered in the round.
	Messages int
	// Words is the total number of words delivered in the round.
	Words int
	// MaxEdgeWords is the maximum number of words carried by any single
	// directed edge in the round. The congested-clique model requires this to
	// stay O(log n) bits, i.e. a small constant number of words.
	MaxEdgeWords int
	// MaxEdgeMessages is the maximum number of packets carried by any single
	// directed edge in the round.
	MaxEdgeMessages int
	// MaxNodeSentWords is the maximum number of words sent by any single node
	// in the round (at most n times the edge budget).
	MaxNodeSentWords int
	// MaxNodeRecvWords is the maximum number of words received by any single
	// node in the round.
	MaxNodeRecvWords int
	// Dropped is the number of logical messages (frames count as their
	// message count, see SendFramed) addressed to nodes whose program had
	// already returned when the round was delivered.
	Dropped int
}

// Metrics aggregates the observable cost of one protocol execution (one
// Run/RunRounds call). These are exactly the quantities the paper's bounds
// are stated in: rounds, per-edge bandwidth, and (self-reported) local
// computation and memory. On a multi-run Network the metrics are per-run:
// they reset when the next run starts; Network.CumulativeMetrics keeps the
// across-run totals.
type Metrics struct {
	// Rounds is the number of completed round barriers.
	Rounds int
	// PerRound holds one entry per completed round.
	PerRound []RoundStats
	// TotalMessages is the total number of packets delivered.
	TotalMessages int64
	// TotalWords is the total number of words delivered.
	TotalWords int64
	// MaxEdgeWords is the maximum over all rounds of RoundStats.MaxEdgeWords.
	MaxEdgeWords int
	// MaxEdgeMessages is the maximum over all rounds of
	// RoundStats.MaxEdgeMessages.
	MaxEdgeMessages int
	// MaxStepsPerNode is the maximum number of self-reported local computation
	// steps over all nodes (see Node.CountSteps). Zero unless the protocol
	// instruments itself.
	MaxStepsPerNode int64
	// MaxMemoryWordsPerNode is the maximum self-reported resident word count
	// over all nodes (see Node.ReportMemory). Zero unless instrumented.
	MaxMemoryWordsPerNode int64
	// DroppedToDeparted counts logical messages addressed to nodes whose
	// program had already returned. Well-formed protocols never produce such
	// messages.
	DroppedToDeparted int
}

// merge folds a completed round into the running totals.
func (m *Metrics) merge(rs RoundStats) {
	m.Rounds++
	m.PerRound = append(m.PerRound, rs)
	m.TotalMessages += int64(rs.Messages)
	m.TotalWords += int64(rs.Words)
	if rs.MaxEdgeWords > m.MaxEdgeWords {
		m.MaxEdgeWords = rs.MaxEdgeWords
	}
	if rs.MaxEdgeMessages > m.MaxEdgeMessages {
		m.MaxEdgeMessages = rs.MaxEdgeMessages
	}
	m.DroppedToDeparted += rs.Dropped
}

// clone returns a deep copy so callers cannot mutate engine state.
func (m *Metrics) clone() Metrics {
	out := *m
	out.PerRound = make([]RoundStats, len(m.PerRound))
	copy(out.PerRound, m.PerRound)
	return out
}

// Cumulative aggregates the cost of every successfully completed run on one
// Network (the session view): totals are summed across runs, maxima are
// taken over runs. Runs that failed or were cancelled are not counted —
// their per-run Metrics remain readable until the next run starts, but they
// never enter the aggregate.
type Cumulative struct {
	// Runs is the number of Run/RunRounds calls that completed without error.
	Runs int
	// Rounds is the total number of round barriers across all runs.
	Rounds int
	// TotalMessages and TotalWords sum the traffic of all runs.
	TotalMessages int64
	TotalWords    int64
	// MaxEdgeWords and MaxEdgeMessages are maxima over all rounds of all runs.
	MaxEdgeWords    int
	MaxEdgeMessages int
	// MaxStepsPerNode and MaxMemoryWordsPerNode are maxima over all runs.
	MaxStepsPerNode       int64
	MaxMemoryWordsPerNode int64
	// DroppedToDeparted sums Metrics.DroppedToDeparted across runs.
	DroppedToDeparted int
}

// Merge folds another aggregate into c — the cross-engine combination rule
// of the session layer's engine pool: totals and counts are summed, maxima
// are taken. Merging is associative and commutative, so the session
// aggregate is independent of which engine served which operation.
func (c *Cumulative) Merge(o Cumulative) {
	c.Runs += o.Runs
	c.Rounds += o.Rounds
	c.TotalMessages += o.TotalMessages
	c.TotalWords += o.TotalWords
	if o.MaxEdgeWords > c.MaxEdgeWords {
		c.MaxEdgeWords = o.MaxEdgeWords
	}
	if o.MaxEdgeMessages > c.MaxEdgeMessages {
		c.MaxEdgeMessages = o.MaxEdgeMessages
	}
	if o.MaxStepsPerNode > c.MaxStepsPerNode {
		c.MaxStepsPerNode = o.MaxStepsPerNode
	}
	if o.MaxMemoryWordsPerNode > c.MaxMemoryWordsPerNode {
		c.MaxMemoryWordsPerNode = o.MaxMemoryWordsPerNode
	}
	c.DroppedToDeparted += o.DroppedToDeparted
}

// accumulate folds one completed run's metrics into the session totals.
func (c *Cumulative) accumulate(m Metrics) {
	c.Runs++
	c.Rounds += m.Rounds
	c.TotalMessages += m.TotalMessages
	c.TotalWords += m.TotalWords
	if m.MaxEdgeWords > c.MaxEdgeWords {
		c.MaxEdgeWords = m.MaxEdgeWords
	}
	if m.MaxEdgeMessages > c.MaxEdgeMessages {
		c.MaxEdgeMessages = m.MaxEdgeMessages
	}
	if m.MaxStepsPerNode > c.MaxStepsPerNode {
		c.MaxStepsPerNode = m.MaxStepsPerNode
	}
	if m.MaxMemoryWordsPerNode > c.MaxMemoryWordsPerNode {
		c.MaxMemoryWordsPerNode = m.MaxMemoryWordsPerNode
	}
	c.DroppedToDeparted += m.DroppedToDeparted
}
