package clique

import (
	"errors"
	"fmt"
	"hash/fnv"
	"reflect"
	"sync"
	"testing"
)

// pw is a deterministic per-(round, from, to, k) payload word.
func pw(round, from, to, k int) Word {
	return Word(round*1000003 + from*10007 + to*101 + k)
}

// TestDeliveryExactness drives several rounds of irregular traffic (multiple
// packets per edge, varying lengths, silent senders) and verifies every inbox
// word-for-word against the closed form of the workload.
func TestDeliveryExactness(t *testing.T) {
	t.Parallel()
	const n = 24
	const rounds = 9
	nw, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	// Node i sends, in round r, to destinations (i*j+r)%n for j=0..(i%5), a
	// packet of length 1+(i+j+r)%4 with known words; duplicates per edge
	// happen naturally.
	dests := func(r, i int) []int {
		var ds []int
		for j := 0; j <= i%5; j++ {
			ds = append(ds, (i*j+r)%n)
		}
		return ds
	}
	mkPacket := func(r, from, j, to int) Packet {
		p := make(Packet, 1+(from+j+r)%4)
		for k := range p {
			p[k] = pw(r, from, to, k) + Word(j)
		}
		return p
	}
	err = nw.Run(func(nd *Node) error {
		for r := 0; r < rounds; r++ {
			for j, to := range dests(r, nd.ID()) {
				nd.Send(to, mkPacket(r, nd.ID(), j, to))
			}
			inbox, err := nd.Exchange()
			if err != nil {
				return err
			}
			for f := 0; f < n; f++ {
				var want []Packet
				for j, to := range dests(r, f) {
					if to == nd.ID() {
						want = append(want, mkPacket(r, f, j, to))
					}
				}
				got := inbox.From(f)
				if len(got) != len(want) {
					return fmt.Errorf("r=%d node %d from %d: got %d packets want %d", r, nd.ID(), f, len(got), len(want))
				}
				for x := range want {
					if !reflect.DeepEqual(got[x], want[x]) {
						return fmt.Errorf("r=%d node %d from %d pkt %d: got %v want %v", r, nd.ID(), f, x, got[x], want[x])
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentStress exercises the barrier under -race at n=128 with
// irregular traffic, staggered departures and a concurrent metrics reader.
func TestConcurrentStress(t *testing.T) {
	t.Parallel()
	const n = 128
	nw, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = nw.Metrics()
				_ = nw.Rounds()
			}
		}
	}()
	err = nw.Run(func(nd *Node) error {
		// Node i runs 1 + i%7 rounds, spraying traffic each round at nodes
		// that are provably still alive (node j departs after round j%7).
		myRounds := 1 + nd.ID()%7
		for r := 0; r < myRounds; r++ {
			for to := 0; to < n; to++ {
				if r < 1+to%7 {
					nd.Send(to, Packet{Word(nd.ID()), Word(r)})
				}
			}
			inbox, err := nd.Exchange()
			if err != nil {
				return err
			}
			for f := 0; f < n; f++ {
				for _, p := range inbox.From(f) {
					if int(p[0]) != f || int(p[1]) != r {
						return fmt.Errorf("node %d round %d: bad packet %v from %d", nd.ID(), r, p, f)
					}
				}
			}
		}
		return nil
	})
	close(stop)
	readers.Wait()
	if err != nil {
		t.Fatal(err)
	}
	m := nw.Metrics()
	if m.DroppedToDeparted != 0 {
		t.Fatalf("traffic to live nodes only, but %d packets dropped", m.DroppedToDeparted)
	}
}

// TestPanicMidRoundRecovery kills one node between barriers while every other
// node is already parked; the run must neither deadlock nor strand a node,
// the panic must surface as the run's root-cause error, and the survivors
// must abort at their next barrier instead of finishing rounds with a
// silently missing member. The engine stays usable afterwards.
func TestPanicMidRoundRecovery(t *testing.T) {
	t.Parallel()
	const n = 8
	nw, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	program := func(nd *Node) error {
		for r := 0; r < 3; r++ {
			if nd.ID() == 3 && r == 1 {
				panic("mid-round failure")
			}
			nd.Send((nd.ID()+r)%n, Packet{Word(r)})
			if _, err := nd.Exchange(); err != nil {
				return err
			}
		}
		return nil
	}
	err = nw.Run(program)
	if err == nil || !contains(err.Error(), "node 3 panicked") {
		t.Fatalf("want node 3 panic error, got %v", err)
	}
	// The crash is broadcast before the barrier releases, so the survivors
	// fail out of round 1 rather than completing all 3 rounds without node 3.
	if got := nw.Rounds(); got >= 3 {
		t.Fatalf("rounds = %d, want < 3 (crash fails the run fast)", got)
	}
	// A failed run must not poison the engine: the same program without the
	// crashing node completes all rounds on the same Network.
	err = nw.Run(func(nd *Node) error {
		for r := 0; r < 3; r++ {
			nd.Send((nd.ID()+r)%n, Packet{Word(r)})
			if _, err := nd.Exchange(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run after crash: %v", err)
	}
	if got := nw.Rounds(); got != 3 {
		t.Fatalf("rounds after recovery = %d, want 3", got)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// workloadDigest runs a fixed seeded workload and digests every inbox the
// nodes observe plus the final metrics.
func workloadDigest(t *testing.T, opts ...Option) (uint64, Metrics) {
	t.Helper()
	const n = 32
	const rounds = 6
	nw, err := New(n, opts...)
	if err != nil {
		t.Fatal(err)
	}
	digests := make([]uint64, n)
	err = nw.Run(func(nd *Node) error {
		h := fnv.New64a()
		state := uint64(nd.ID()*2654435761 + 12345)
		for r := 0; r < rounds; r++ {
			k := int(state % 5)
			for j := 0; j < k; j++ {
				state = state*6364136223846793005 + 1442695040888963407
				to := int(state % n)
				nd.Send(to, Packet{Word(state >> 32), Word(r)})
			}
			inbox, err := nd.Exchange()
			if err != nil {
				return err
			}
			for f := 0; f < n; f++ {
				for _, p := range inbox.From(f) {
					fmt.Fprintf(h, "%d/%d/%d/%v;", r, nd.ID(), f, p)
				}
			}
			state = state*6364136223846793005 + 1442695040888963407
		}
		digests[nd.ID()] = h.Sum64()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	for _, d := range digests {
		fmt.Fprintf(h, "%d;", d)
	}
	return h.Sum64(), nw.Metrics()
}

// TestDeterministicReplay runs the same seeded workload twice and requires
// identical inbox contents and identical metrics.
func TestDeterministicReplay(t *testing.T) {
	t.Parallel()
	d1, m1 := workloadDigest(t)
	d2, m2 := workloadDigest(t)
	if d1 != d2 {
		t.Fatalf("inbox digests differ across replays: %x vs %x", d1, d2)
	}
	if !reflect.DeepEqual(m1, m2) {
		t.Fatalf("metrics differ across replays:\n%+v\n%+v", m1, m2)
	}
	// The bound on compute concurrency must not change observable behaviour.
	d3, m3 := workloadDigest(t, WithWorkers(3))
	if d3 != d1 || !reflect.DeepEqual(m3, m1) {
		t.Fatal("WithWorkers changed the observable execution")
	}
}

// TestDeterministicErrorReporting: the error of the lowest failing node id is
// returned even when a higher node fails earlier in wall-clock time.
func TestDeterministicErrorReporting(t *testing.T) {
	t.Parallel()
	nw, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	errOf := func(id int) error { return fmt.Errorf("node-%d-failed", id) }
	err = nw.Run(func(nd *Node) error {
		switch nd.ID() {
		case 6: // fails immediately
			return errOf(6)
		case 2: // fails two rounds later
			for r := 0; r < 2; r++ {
				if _, err := nd.Exchange(); err != nil {
					return err
				}
			}
			return errOf(2)
		default:
			for r := 0; r < 3; r++ {
				if _, err := nd.Exchange(); err != nil {
					return err
				}
			}
			return nil
		}
	})
	if err == nil || err.Error() != "node-2-failed" {
		t.Fatalf("want node-2-failed (lowest failing id), got %v", err)
	}
}

// TestSameRoundForwarding documents the contract that a packet received this
// round may be re-sent without cloning.
func TestSameRoundForwarding(t *testing.T) {
	t.Parallel()
	const n = 10
	nw, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	err = nw.Run(func(nd *Node) error {
		// Round 0: node i sends a tagged packet to i+1; round 1: the receiver
		// forwards the received packet, un-cloned, another hop.
		nd.Send((nd.ID()+1)%n, Packet{Word(nd.ID()), 42})
		inbox, err := nd.Exchange()
		if err != nil {
			return err
		}
		p := inbox.Single((nd.ID() - 1 + n) % n)
		nd.Send((nd.ID()+1)%n, p)
		inbox, err = nd.Exchange()
		if err != nil {
			return err
		}
		q := inbox.Single((nd.ID() - 1 + n) % n)
		want := Word((nd.ID() - 2 + n) % n)
		if q == nil || q[0] != want || q[1] != 42 {
			return fmt.Errorf("node %d: forwarded packet %v, want [%d 42]", nd.ID(), q, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunRoundsAllToAll checks the worker-pool scheduler end to end and that
// its metrics and delivery are identical for every worker count.
func TestRunRoundsAllToAll(t *testing.T) {
	t.Parallel()
	const n = 64
	const rounds = 4
	run := func(workers int) (Metrics, uint64) {
		nw, err := New(n, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		digests := make([]uint64, n)
		err = nw.RunRounds(func(nd *Node, round int, inbox Inbox) (bool, error) {
			h := fnv.New64a()
			if round > 0 {
				count := 0
				for f := 0; f < n; f++ {
					for _, p := range inbox.From(f) {
						if int(p[0]) != f || int(p[1]) != round-1 {
							return true, fmt.Errorf("node %d round %d: bad packet %v from %d", nd.ID(), round, p, f)
						}
						count++
					}
				}
				if count != n {
					return true, fmt.Errorf("node %d round %d: %d packets, want %d", nd.ID(), round, count, n)
				}
				fmt.Fprintf(h, "%d/%d/%d;", nd.ID(), round, count)
				digests[nd.ID()] ^= h.Sum64()
			}
			if round == rounds {
				return true, nil
			}
			for to := 0; to < n; to++ {
				nd.Send(to, Packet{Word(nd.ID()), Word(round)})
			}
			return false, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		h := fnv.New64a()
		for _, d := range digests {
			fmt.Fprintf(h, "%d;", d)
		}
		return nw.Metrics(), h.Sum64()
	}
	m1, d1 := run(1)
	m8, d8 := run(8)
	m0, d0 := run(0) // GOMAXPROCS
	if m1.Rounds != rounds || m1.TotalMessages != int64(n*n*rounds) {
		t.Fatalf("unexpected metrics: %+v", m1)
	}
	if d1 != d8 || d1 != d0 || !reflect.DeepEqual(m1, m8) || !reflect.DeepEqual(m1, m0) {
		t.Fatal("RunRounds execution depends on worker count")
	}
}

// TestRunRoundsPanicAndError: a panicking step surfaces as that node's error,
// lowest failing id wins, and the run terminates.
func TestRunRoundsPanicAndError(t *testing.T) {
	t.Parallel()
	nw, err := New(16, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	err = nw.RunRounds(func(nd *Node, round int, inbox Inbox) (bool, error) {
		if round == 2 {
			switch nd.ID() {
			case 9:
				panic("step blew up")
			case 11:
				return true, errors.New("step failed")
			}
		}
		return round == 3, nil
	})
	if err == nil || !contains(err.Error(), "node 9 panicked") {
		t.Fatalf("want node 9 panic (lowest failing id), got %v", err)
	}
}

// TestRunRoundsStaggeredDeparture: nodes retire at different rounds, final
// sends are delivered, and packets to departed nodes are dropped and counted.
func TestRunRoundsStaggeredDeparture(t *testing.T) {
	t.Parallel()
	const n = 12
	nw, err := New(n, WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]int, n)
	err = nw.RunRounds(func(nd *Node, round int, inbox Inbox) (bool, error) {
		got[nd.ID()] += inbox.Count()
		// Everyone pings node 1 every round it participates in; node i
		// departs after its step in round i (node 0 immediately).
		nd.Send(1, Packet{Word(nd.ID())})
		return round == nd.ID(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 sees round 0's pings in its round-1 step (n packets, including
	// the one from node 0, whose final sends are delivered) and then departs;
	// it can never receive its own final round's traffic.
	if got[1] != n {
		t.Fatalf("node 1 received %d packets, want %d", got[1], n)
	}
	m := nw.Metrics()
	// Rounds 1..n-2 are delivered with node 1 already departed; round r still
	// has nodes r..n-1 stepping (node r sends its final ping), so n-r pings
	// are dropped per round. Round n-1's send is never delivered at all: the
	// last node's departure empties the clique and delivery is skipped.
	want := 0
	for r := 1; r <= n-2; r++ {
		want += n - r
	}
	if m.DroppedToDeparted != want {
		t.Fatalf("dropped = %d, want %d", m.DroppedToDeparted, want)
	}
	// A second run on the same Network starts from a clean departure state.
	if err := nw.RunRounds(func(nd *Node, round int, inbox Inbox) (bool, error) { return true, nil }); err != nil {
		t.Fatalf("second run on the same network: %v", err)
	}
	if m := nw.Metrics(); m.DroppedToDeparted != 0 {
		t.Fatalf("departure state leaked into second run: %+v", m)
	}
}

// TestRunRoundsExchangeForbidden: the blocking barrier is not available from
// inside a step program.
func TestRunRoundsExchangeForbidden(t *testing.T) {
	t.Parallel()
	nw, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	err = nw.RunRounds(func(nd *Node, round int, inbox Inbox) (bool, error) {
		_, err := nd.Exchange()
		if err == nil {
			return true, errors.New("Exchange should fail in RunRounds mode")
		}
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWithWorkersValidation rejects negative worker counts.
func TestWithWorkersValidation(t *testing.T) {
	t.Parallel()
	if _, err := New(4, WithWorkers(-1)); err == nil {
		t.Fatal("negative worker count should fail")
	}
}

// TestWithWorkersBlockingRun: bounded compute concurrency on the blocking API
// delivers exactly the same traffic.
func TestWithWorkersBlockingRun(t *testing.T) {
	t.Parallel()
	const n = 64
	nw, err := New(n, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	err = nw.Run(func(nd *Node) error {
		for r := 0; r < 3; r++ {
			nd.Broadcast(Packet{Word(nd.ID())})
			inbox, err := nd.Exchange()
			if err != nil {
				return err
			}
			if inbox.Count() != n {
				return fmt.Errorf("node %d round %d: %d packets, want %d", nd.ID(), r, inbox.Count(), n)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m := nw.Metrics(); m.TotalMessages != int64(3*n*n) {
		t.Fatalf("total messages = %d, want %d", m.TotalMessages, 3*n*n)
	}
}

// TestStrictBudgetWakesStragglers: after a budget violation, nodes that were
// still computing (not yet parked) must not deadlock on a dead barrier.
func TestStrictBudgetWakesStragglers(t *testing.T) {
	t.Parallel()
	const n = 6
	nw, err := New(n, WithStrictEdgeBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	err = nw.Run(func(nd *Node) error {
		for r := 0; r < 4; r++ {
			if nd.ID() == 0 && r == 1 {
				nd.Send(1, Packet{1, 2, 3}) // violates the 1-word budget
			} else {
				nd.Send((nd.ID()+1)%n, Packet{1})
			}
			if _, err := nd.Exchange(); err != nil {
				return err
			}
		}
		return nil
	})
	if !errors.Is(err, ErrBandwidthExceeded) {
		t.Fatalf("want ErrBandwidthExceeded, got %v", err)
	}
}
