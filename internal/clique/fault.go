package clique

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"time"
)

// ErrFaultInjected is wrapped by every error produced by a FaultPlan: injected
// node panics, and injected cancellations at a barrier turn-over. Stalls do
// not wrap it by themselves (a stall only delays a node); a stall long enough
// to trip the round watchdog surfaces as ErrRoundDeadline instead.
var ErrFaultInjected = errors.New("injected fault")

// ErrRoundDeadline is wrapped by the error the round watchdog
// (WithRoundDeadline) records when a round fails to turn over within the
// configured deadline. The error names the nodes that had not arrived at the
// barrier when the watchdog fired.
var ErrRoundDeadline = errors.New("round deadline exceeded")

// FaultKind selects the behaviour a Fault injects.
type FaultKind uint8

const (
	// FaultPanic makes the chosen node panic when it reaches the barrier of
	// the chosen round, exercising the engine's panic-recovery and
	// complete-on-behalf paths exactly as a real node crash would.
	FaultPanic FaultKind = iota + 1
	// FaultStall delays the chosen node for Stall before it arrives at the
	// barrier of the chosen round. The sleep is interruptible: if the run
	// fails in the meantime (for example because the round watchdog fired),
	// the stalled node wakes immediately and observes the failure.
	FaultStall
	// FaultCancel fails the run at the exact turn-over of the chosen round:
	// the last arrival releases the barrier with an injected-cancellation
	// failure instead of delivering, the deterministic analogue of a context
	// cancellation landing between arrival and delivery.
	FaultCancel
)

// String returns the kind's scenario-table name.
func (k FaultKind) String() string {
	switch k {
	case FaultPanic:
		return "panic"
	case FaultStall:
		return "stall"
	case FaultCancel:
		return "cancel"
	default:
		return fmt.Sprintf("FaultKind(%d)", uint8(k))
	}
}

// Fault is one scheduled fault of a FaultPlan. Node is the targeted node id
// (ignored by FaultCancel, which acts on the round's deliverer whoever that
// is), Round is the barrier the fault triggers at (the node's Round() value
// when it arrives), and Stall is the injected delay of a FaultStall.
type Fault struct {
	Kind  FaultKind
	Node  int
	Round int
	Stall time.Duration
}

// FaultPlan is a per-run schedule of deterministic faults. A plan is armed on
// a Network with SetFaultPlan and consumed by the next run — blocking
// (Run/RunContext) or engine-driven (RunRounds/RunRoundsContext); it never
// carries over to later runs, which is what lets a session-level retry re-run
// the same operation fault-free on the same engine. Because every fault fires
// at an exact (node, round) coordinate of a deterministic execution, chaos
// runs replay bit-identically: the same plan on the same instance produces
// the same error, and a plan whose faults are all absorbed (stalls shorter
// than the round deadline) produces results bit-identical to a fault-free
// run.
//
// On the engine-driven scheduler the coordinates keep their meaning: a panic
// fault departs the node before its step of the chosen round runs, a stall
// delays the node's step, and a cancellation lands at the round's turn-over
// before delivery.
type FaultPlan struct {
	Faults []Fault
}

// Validate checks the plan against a clique of n nodes: kinds must be known,
// rounds non-negative, panic/stall targets in [0, n), and stall durations
// positive.
func (p *FaultPlan) Validate(n int) error {
	if p == nil {
		return nil
	}
	for i, f := range p.Faults {
		if f.Round < 0 {
			return fmt.Errorf("clique: fault %d: negative round %d", i, f.Round)
		}
		switch f.Kind {
		case FaultPanic:
			if f.Node < 0 || f.Node >= n {
				return fmt.Errorf("clique: fault %d: panic target node %d out of range (n=%d)", i, f.Node, n)
			}
		case FaultStall:
			if f.Node < 0 || f.Node >= n {
				return fmt.Errorf("clique: fault %d: stall target node %d out of range (n=%d)", i, f.Node, n)
			}
			if f.Stall <= 0 {
				return fmt.Errorf("clique: fault %d: stall duration must be positive, got %v", i, f.Stall)
			}
		case FaultCancel:
		default:
			return fmt.Errorf("clique: fault %d: unknown kind %d", i, f.Kind)
		}
	}
	return nil
}

// at returns the first panic or stall fault scheduled for node at round, or
// nil.
func (p *FaultPlan) at(node, round int) *Fault {
	if p == nil {
		return nil
	}
	for i := range p.Faults {
		f := &p.Faults[i]
		if f.Kind != FaultCancel && f.Node == node && f.Round == round {
			return f
		}
	}
	return nil
}

// cancelAt reports whether the plan cancels the run at round's turn-over.
func (p *FaultPlan) cancelAt(round int) bool {
	if p == nil {
		return false
	}
	for i := range p.Faults {
		if p.Faults[i].Kind == FaultCancel && p.Faults[i].Round == round {
			return true
		}
	}
	return false
}

// hasStall reports whether the plan contains any stall fault, which is what
// decides whether the run allocates the failure-broadcast channel that makes
// stalls interruptible.
func (p *FaultPlan) hasStall() bool {
	if p == nil {
		return false
	}
	for i := range p.Faults {
		if p.Faults[i].Kind == FaultStall {
			return true
		}
	}
	return false
}

// SetFaultPlan arms plan for this Network's next run (blocking or
// engine-driven). The plan is consumed by that run and cleared: later runs on
// the same Network execute fault-free unless a new plan is armed. Passing nil
// (or an empty plan) disarms. SetFaultPlan must be called by the same
// goroutine that starts the run, between runs.
func (nw *Network) SetFaultPlan(p *FaultPlan) {
	if p != nil && len(p.Faults) == 0 {
		p = nil
	}
	nw.pendingFaults = p
}

// injectedPanic is the value an injected FaultPanic panics with, so the run
// scheduler's recovery can tell an injected crash from a genuine one and wrap
// ErrFaultInjected with the exact (node, round) coordinate.
type injectedPanic struct {
	node, round int
}

// nodePanicError converts a recovered panic value into the node's error,
// preserving the ErrFaultInjected identity of injected crashes.
func nodePanicError(id int, r interface{}) error {
	if ip, ok := r.(*injectedPanic); ok {
		return fmt.Errorf("clique: node %d panicked in round %d: %w", ip.node, ip.round, ErrFaultInjected)
	}
	return fmt.Errorf("clique: node %d panicked: %v", id, r)
}

// setFailure records err as the run's engine failure if none is recorded yet
// and, on the recording call only, closes the run's failure-broadcast channel
// (when one exists) so interruptible waits — injected stalls — wake
// immediately instead of sleeping out their full duration.
func (nw *Network) setFailure(err error) {
	if nw.fail.CompareAndSwap(nil, &failure{err: err}) {
		if ch := nw.failCh; ch != nil {
			close(ch)
		}
	}
}

// stallNode sleeps for d or until the run fails, whichever comes first. It
// runs on the stalled node's goroutine before the node arrives at the
// barrier, so a stall shorter than any configured round deadline only delays
// the round; a longer one is cut short the moment the watchdog records the
// deadline failure.
func (nw *Network) stallNode(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	if ch := nw.failCh; ch != nil {
		select {
		case <-t.C:
		case <-ch:
		}
		return
	}
	<-t.C
}

// departedArrival marks a node that has left the run in the arrival tracker,
// so the watchdog never names a finished node as holding up a round.
const departedArrival = int32(math.MaxInt32)

// noteArrival records that node id reached the barrier of round r (or, with
// departed, left the run) for the watchdog's diagnostics. It is a single
// atomic store on the arrival path and only runs when a round deadline is
// configured.
func (nw *Network) noteArrival(id, r int, departed bool) {
	if nw.arrivals == nil {
		return
	}
	if departed {
		nw.arrivals[id].Store(departedArrival)
		return
	}
	nw.arrivals[id].Store(int32(r) + 1)
}

// startWatchdogRun prepares the round watchdog for one blocking run: it
// resets the arrival tracker and kicks the persistent watchdog goroutine
// (started lazily on the first deadline-enabled run, reused for every later
// one — a fault-free warm run allocates nothing for the watchdog). No-op
// unless WithRoundDeadline is configured.
func (nw *Network) startWatchdogRun() bool {
	if nw.cfg.roundDeadline <= 0 {
		return false
	}
	if nw.arrivals == nil {
		nw.arrivals = make([]atomic.Int32, nw.n)
	}
	for i := range nw.arrivals {
		nw.arrivals[i].Store(0)
	}
	if !nw.wdStarted {
		nw.wdKick = make(chan struct{})
		nw.wdHalt = make(chan struct{})
		nw.wdAck = make(chan struct{})
		nw.wdStarted = true
		go nw.watchdogLoop()
	}
	nw.wdKick <- struct{}{}
	return true
}

// stopWatchdogRun halts the watchdog for the current run and waits until it
// acknowledges, so a fire can never land in a later run's failure slot.
func (nw *Network) stopWatchdogRun() {
	nw.wdHalt <- struct{}{}
	<-nw.wdAck
}

// closeWatchdog terminates the persistent watchdog goroutine; called by
// Close, which holds the run latch, so no run is in flight.
func (nw *Network) closeWatchdog() {
	if nw.wdStarted {
		close(nw.wdKick)
		nw.wdStarted = false
	}
}

// watchdogLoop is the persistent round watchdog. Between a kick and its halt
// it polls the round counter on a reusable timer; when the counter stops
// advancing for the configured deadline it records an ErrRoundDeadline
// failure naming the unarrived nodes and releases the current barrier
// generation, so parked nodes (and interruptible stalls) observe the failure
// instead of hanging. Polling granularity is deadline/8, clamped below at
// 50µs, so a fire lands within ~1.125× the deadline.
func (nw *Network) watchdogLoop() {
	d := nw.cfg.roundDeadline
	tick := d / 8
	if tick < 50*time.Microsecond {
		tick = 50 * time.Microsecond
	}
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for range nw.wdKick {
		lastRound := nw.round.Load()
		deadline := time.Now().Add(d)
		running := true
		for running {
			timer.Reset(tick)
			select {
			case <-nw.wdHalt:
				if !timer.Stop() {
					<-timer.C
				}
				running = false
			case <-timer.C:
				if r := nw.round.Load(); r != lastRound {
					lastRound = r
					deadline = time.Now().Add(d)
					continue
				}
				if time.Now().Before(deadline) {
					continue
				}
				nw.watchdogFire(int(lastRound), d)
				<-nw.wdHalt
				running = false
			}
		}
		nw.wdAck <- struct{}{}
	}
}

// watchdogFire converts a missed round deadline into a run failure. If the
// run is already failing it only re-releases the barrier (idempotent);
// otherwise it records a diagnostic naming the unarrived nodes and releases
// the current generation so every parked node wakes and observes the error.
func (nw *Network) watchdogFire(round int, d time.Duration) {
	if nw.fail.Load() == nil {
		var waiting []int
		for i := range nw.arrivals {
			if a := nw.arrivals[i].Load(); a != int32(round)+1 && a != departedArrival {
				waiting = append(waiting, i)
			}
		}
		nw.setFailure(fmt.Errorf("clique: round %d did not turn over within %v: waiting on %d of %d nodes (%s): %w",
			round, d, len(waiting), nw.n, fmtNodeList(waiting), ErrRoundDeadline))
	}
	nw.gen.Load().release()
}

// fmtNodeList renders a node-id list for watchdog diagnostics, truncated
// after eight entries so a mass stall stays readable.
func fmtNodeList(ids []int) string {
	if len(ids) == 0 {
		return "none"
	}
	var b strings.Builder
	b.WriteString("nodes ")
	for i, id := range ids {
		if i == 8 {
			fmt.Fprintf(&b, ", … %d more", len(ids)-i)
			break
		}
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", id)
	}
	return b.String()
}
