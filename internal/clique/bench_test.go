package clique

import (
	"fmt"
	"testing"
)

// benchEngineSizes are the clique sizes the engine benchmarks sweep. They are
// chosen so that the barrier cost (small n) and the delivery cost (large n)
// are both visible.
var benchEngineSizes = []int{64, 256, 1024}

// BenchmarkRoundBarrier measures pure round-turnover throughput: n nodes
// exchanging empty rounds. One benchmark op is one completed round of the
// whole clique, so allocs/op is allocations per round across all n nodes.
func BenchmarkRoundBarrier(b *testing.B) {
	for _, n := range benchEngineSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			nw, err := New(n, WithPerRoundStats(false))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			err = nw.Run(func(nd *Node) error {
				for i := 0; i < b.N; i++ {
					if _, err := nd.Exchange(); err != nil {
						return err
					}
				}
				return nil
			})
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkAllToAll measures full-mesh delivery: every node sends one
// one-word packet to every node each round (n^2 packets per round). One op is
// one round.
func BenchmarkAllToAll(b *testing.B) {
	for _, n := range benchEngineSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			nw, err := New(n, WithPerRoundStats(false))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			err = nw.Run(func(nd *Node) error {
				payload := Packet{Word(nd.ID())}
				for i := 0; i < b.N; i++ {
					for to := 0; to < nd.N(); to++ {
						nd.Send(to, payload)
					}
					inbox, err := nd.Exchange()
					if err != nil {
						return err
					}
					if inbox.Count() != nd.N() {
						return fmt.Errorf("node %d received %d packets, want %d", nd.ID(), inbox.Count(), nd.N())
					}
				}
				return nil
			})
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkAllToAllRunRounds measures full-mesh delivery under the
// worker-pool scheduler (n logical nodes multiplexed onto GOMAXPROCS
// goroutines). One op is one round.
func BenchmarkAllToAllRunRounds(b *testing.B) {
	for _, n := range benchEngineSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			nw, err := New(n, WithPerRoundStats(false))
			if err != nil {
				b.Fatal(err)
			}
			rounds := b.N
			b.ReportAllocs()
			b.ResetTimer()
			err = nw.RunRounds(func(nd *Node, round int, inbox Inbox) (bool, error) {
				if round > 0 && inbox.Count() != nd.N() {
					return true, fmt.Errorf("node %d received %d packets, want %d", nd.ID(), inbox.Count(), nd.N())
				}
				if round == rounds {
					return true, nil
				}
				payload := Packet{Word(nd.ID())}
				for to := 0; to < nd.N(); to++ {
					nd.Send(to, payload)
				}
				return false, nil
			})
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkSparseExchange measures the common light-traffic round: each node
// sends a single packet to one neighbour. One op is one round.
func BenchmarkSparseExchange(b *testing.B) {
	for _, n := range benchEngineSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			nw, err := New(n, WithPerRoundStats(false))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			err = nw.Run(func(nd *Node) error {
				payload := Packet{Word(nd.ID())}
				to := (nd.ID() + 1) % nd.N()
				for i := 0; i < b.N; i++ {
					nd.Send(to, payload)
					if _, err := nd.Exchange(); err != nil {
						return err
					}
				}
				return nil
			})
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}
