package clique

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// chaosProgram is a small deterministic multi-round workload: every node
// relays a rolling checksum around the clique for rounds rounds and records
// its final value in sums. It is the golden against which fault runs are
// compared.
func chaosProgram(rounds int, sums []int64) func(*Node) error {
	return func(nd *Node) error {
		acc := int64(nd.ID() + 1)
		for r := 0; r < rounds; r++ {
			to := (nd.ID() + r + 1) % nd.N()
			nd.Send(to, Packet{Word(acc)})
			inbox, err := nd.Exchange()
			if err != nil {
				return err
			}
			for from, pkts := range inbox {
				for _, p := range pkts {
					acc += int64(from+1) * int64(p[0])
				}
			}
		}
		sums[nd.ID()] = acc
		return nil
	}
}

func runChaosGolden(t *testing.T, nw *Network, n, rounds int) []int64 {
	t.Helper()
	sums := make([]int64, n)
	if err := nw.Run(chaosProgram(rounds, sums)); err != nil {
		t.Fatalf("fault-free run failed: %v", err)
	}
	return sums
}

func TestInjectedPanicDeterministic(t *testing.T) {
	const n, rounds = 8, 5
	nw, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()

	var msgs []string
	for i := 0; i < 3; i++ {
		nw.SetFaultPlan(&FaultPlan{Faults: []Fault{{Kind: FaultPanic, Node: 3, Round: 2}}})
		sums := make([]int64, n)
		err := nw.Run(chaosProgram(rounds, sums))
		if err == nil {
			t.Fatal("injected panic did not fail the run")
		}
		if !errors.Is(err, ErrFaultInjected) {
			t.Fatalf("error does not wrap ErrFaultInjected: %v", err)
		}
		for _, want := range []string{"node 3", "round 2"} {
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("error %q does not name %q", err, want)
			}
		}
		msgs = append(msgs, err.Error())
	}
	for _, m := range msgs[1:] {
		if m != msgs[0] {
			t.Fatalf("injected panic not deterministic: %q vs %q", msgs[0], m)
		}
	}

	// The plan was consumed: the engine must be fault-free and fully usable.
	golden := runChaosGolden(t, nw, n, rounds)
	again := runChaosGolden(t, nw, n, rounds)
	for i := range golden {
		if golden[i] != again[i] {
			t.Fatalf("node %d: fault-free replay diverged: %d vs %d", i, golden[i], again[i])
		}
	}
}

func TestInjectedStallIsAbsorbed(t *testing.T) {
	const n, rounds = 6, 4
	nw, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()

	golden := runChaosGolden(t, nw, n, rounds)

	nw.SetFaultPlan(&FaultPlan{Faults: []Fault{{Kind: FaultStall, Node: 2, Round: 1, Stall: 20 * time.Millisecond}}})
	sums := make([]int64, n)
	if err := nw.Run(chaosProgram(rounds, sums)); err != nil {
		t.Fatalf("stalled run failed: %v", err)
	}
	for i := range golden {
		if sums[i] != golden[i] {
			t.Fatalf("node %d: stalled run diverged from golden: %d vs %d", i, sums[i], golden[i])
		}
	}
}

func TestInjectedStallAbsorbedUnderRoundDeadline(t *testing.T) {
	const n, rounds = 6, 4
	nw, err := New(n, WithRoundDeadline(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()

	golden := runChaosGolden(t, nw, n, rounds)
	nw.SetFaultPlan(&FaultPlan{Faults: []Fault{{Kind: FaultStall, Node: 1, Round: 2, Stall: 10 * time.Millisecond}}})
	sums := make([]int64, n)
	if err := nw.Run(chaosProgram(rounds, sums)); err != nil {
		t.Fatalf("stalled run under generous deadline failed: %v", err)
	}
	for i := range golden {
		if sums[i] != golden[i] {
			t.Fatalf("node %d: diverged from golden: %d vs %d", i, sums[i], golden[i])
		}
	}
}

func TestWatchdogConvertsStallIntoDeadlineFailure(t *testing.T) {
	const n, rounds = 6, 4
	nw, err := New(n, WithRoundDeadline(40*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()

	// The stall is far longer than the deadline; the watchdog must fail the
	// run promptly and the interruptible stall must not sleep out its full
	// duration.
	nw.SetFaultPlan(&FaultPlan{Faults: []Fault{{Kind: FaultStall, Node: 4, Round: 1, Stall: 30 * time.Second}}})
	sums := make([]int64, n)
	start := time.Now()
	err = nw.Run(chaosProgram(rounds, sums))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("watchdog did not fail the stalled run")
	}
	if !errors.Is(err, ErrRoundDeadline) {
		t.Fatalf("error does not wrap ErrRoundDeadline: %v", err)
	}
	for _, want := range []string{"round 1", "nodes 4"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("watchdog diagnostic %q does not name %q", err, want)
		}
	}
	if elapsed > 5*time.Second {
		t.Fatalf("stalled run took %v; the watchdog fire did not interrupt the stall", elapsed)
	}

	// Engine stays usable and bit-identical after the failure.
	golden := runChaosGolden(t, nw, n, rounds)
	if golden[0] == 0 {
		t.Fatal("golden checksum unexpectedly zero")
	}
}

func TestInjectedCancelAtTurnOver(t *testing.T) {
	const n, rounds = 8, 5
	nw, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()

	var msgs []string
	for i := 0; i < 2; i++ {
		nw.SetFaultPlan(&FaultPlan{Faults: []Fault{{Kind: FaultCancel, Round: 1}}})
		sums := make([]int64, n)
		err := nw.Run(chaosProgram(rounds, sums))
		if err == nil {
			t.Fatal("injected cancellation did not fail the run")
		}
		if !errors.Is(err, ErrFaultInjected) {
			t.Fatalf("error does not wrap ErrFaultInjected: %v", err)
		}
		if !strings.Contains(err.Error(), "round 1 turn-over") {
			t.Fatalf("error %q does not name the turn-over round", err)
		}
		msgs = append(msgs, err.Error())
	}
	if msgs[0] != msgs[1] {
		t.Fatalf("injected cancellation not deterministic: %q vs %q", msgs[0], msgs[1])
	}
	runChaosGolden(t, nw, n, rounds)
}

// chaosStepProgram is chaosProgram for the engine-driven scheduler: the same
// rolling-checksum relay, expressed as a StepFunc. Sends of round r arrive in
// the inbox of round r+1, so the final accumulation happens in round `rounds`
// with no sends — producing checksums identical to the blocking program's.
func chaosStepProgram(rounds int, sums []int64) StepFunc {
	accs := make([]int64, len(sums))
	return func(nd *Node, round int, inbox Inbox) (bool, error) {
		id := nd.ID()
		if round == 0 {
			accs[id] = int64(id + 1)
		}
		for from := 0; from < len(inbox); from++ {
			for _, p := range inbox[from] {
				accs[id] += int64(from+1) * int64(p[0])
			}
		}
		if round == rounds {
			sums[id] = accs[id]
			return true, nil
		}
		nd.Send((id+round+1)%nd.N(), Packet{Word(accs[id])})
		return false, nil
	}
}

func runStepChaosGolden(t *testing.T, nw *Network, n, rounds int) []int64 {
	t.Helper()
	sums := make([]int64, n)
	if err := nw.RunRounds(chaosStepProgram(rounds, sums)); err != nil {
		t.Fatalf("fault-free step run failed: %v", err)
	}
	return sums
}

func TestRunRoundsInjectedPanic(t *testing.T) {
	const n, rounds = 8, 5
	nw, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()

	var msgs []string
	for i := 0; i < 3; i++ {
		nw.SetFaultPlan(&FaultPlan{Faults: []Fault{{Kind: FaultPanic, Node: 3, Round: 2}}})
		sums := make([]int64, n)
		err := nw.RunRounds(chaosStepProgram(rounds, sums))
		if err == nil {
			t.Fatal("injected panic did not fail the step run")
		}
		if !errors.Is(err, ErrFaultInjected) {
			t.Fatalf("error does not wrap ErrFaultInjected: %v", err)
		}
		for _, want := range []string{"node 3", "round 2"} {
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("error %q does not name %q", err, want)
			}
		}
		msgs = append(msgs, err.Error())
	}
	for _, m := range msgs[1:] {
		if m != msgs[0] {
			t.Fatalf("injected step panic not deterministic: %q vs %q", msgs[0], m)
		}
	}

	// The plan was consumed: later step runs are fault-free and bit-identical.
	golden := runStepChaosGolden(t, nw, n, rounds)
	again := runStepChaosGolden(t, nw, n, rounds)
	for i := range golden {
		if golden[i] != again[i] {
			t.Fatalf("node %d: fault-free step replay diverged: %d vs %d", i, golden[i], again[i])
		}
	}
}

func TestRunRoundsStallAbsorbed(t *testing.T) {
	const n, rounds = 6, 4
	nw, err := New(n, WithRoundDeadline(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()

	golden := runStepChaosGolden(t, nw, n, rounds)
	nw.SetFaultPlan(&FaultPlan{Faults: []Fault{{Kind: FaultStall, Node: 2, Round: 1, Stall: 20 * time.Millisecond}}})
	sums := make([]int64, n)
	if err := nw.RunRounds(chaosStepProgram(rounds, sums)); err != nil {
		t.Fatalf("stalled step run failed: %v", err)
	}
	for i := range golden {
		if sums[i] != golden[i] {
			t.Fatalf("node %d: stalled step run diverged from golden: %d vs %d", i, sums[i], golden[i])
		}
	}
}

func TestRunRoundsWatchdogFailsLongStall(t *testing.T) {
	const n, rounds = 6, 4
	nw, err := New(n, WithRoundDeadline(40*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()

	nw.SetFaultPlan(&FaultPlan{Faults: []Fault{{Kind: FaultStall, Node: 4, Round: 1, Stall: 30 * time.Second}}})
	sums := make([]int64, n)
	start := time.Now()
	err = nw.RunRounds(chaosStepProgram(rounds, sums))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("watchdog did not fail the stalled step run")
	}
	if !errors.Is(err, ErrRoundDeadline) {
		t.Fatalf("error does not wrap ErrRoundDeadline: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("stalled step run took %v; the watchdog fire did not interrupt the stall", elapsed)
	}

	// Engine stays usable and deterministic after the failure.
	golden := runStepChaosGolden(t, nw, n, rounds)
	again := runStepChaosGolden(t, nw, n, rounds)
	for i := range golden {
		if golden[i] != again[i] {
			t.Fatalf("node %d: post-failure step replay diverged", i)
		}
	}
}

func TestRunRoundsInjectedCancel(t *testing.T) {
	const n, rounds = 8, 5
	nw, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()

	var msgs []string
	for i := 0; i < 2; i++ {
		nw.SetFaultPlan(&FaultPlan{Faults: []Fault{{Kind: FaultCancel, Round: 1}}})
		sums := make([]int64, n)
		err := nw.RunRounds(chaosStepProgram(rounds, sums))
		if err == nil {
			t.Fatal("injected cancellation did not fail the step run")
		}
		if !errors.Is(err, ErrFaultInjected) {
			t.Fatalf("error does not wrap ErrFaultInjected: %v", err)
		}
		if !strings.Contains(err.Error(), "round 1 turn-over") {
			t.Fatalf("error %q does not name the turn-over round", err)
		}
		msgs = append(msgs, err.Error())
	}
	if msgs[0] != msgs[1] {
		t.Fatalf("injected step cancellation not deterministic: %q vs %q", msgs[0], msgs[1])
	}
	runStepChaosGolden(t, nw, n, rounds)
}

func TestFaultPlanValidate(t *testing.T) {
	cases := []struct {
		fault Fault
		ok    bool
	}{
		{Fault{Kind: FaultPanic, Node: 0, Round: 0}, true},
		{Fault{Kind: FaultPanic, Node: 8, Round: 0}, false},
		{Fault{Kind: FaultPanic, Node: -1, Round: 0}, false},
		{Fault{Kind: FaultPanic, Node: 0, Round: -1}, false},
		{Fault{Kind: FaultStall, Node: 3, Round: 2, Stall: time.Millisecond}, true},
		{Fault{Kind: FaultStall, Node: 3, Round: 2}, false},
		{Fault{Kind: FaultCancel, Round: 4}, true},
		{Fault{Kind: FaultKind(99), Round: 0}, false},
	}
	for i, c := range cases {
		plan := &FaultPlan{Faults: []Fault{c.fault}}
		err := plan.Validate(8)
		if c.ok && err != nil {
			t.Errorf("case %d: unexpected validation error: %v", i, err)
		}
		if !c.ok && err == nil {
			t.Errorf("case %d: invalid fault %+v passed validation", i, c.fault)
		}
	}
	if err := (*FaultPlan)(nil).Validate(8); err != nil {
		t.Errorf("nil plan must validate: %v", err)
	}
}

// TestFailurePathDoesNotPoisonPooledBuffers pins the buffer audit: a run that
// fails between outbox publication and delivery (here via an injected
// cancellation at the turn-over) must not return netBuffers to the pool with
// pendingPacket entries still referencing caller-owned payload memory.
func TestFailurePathDoesNotPoisonPooledBuffers(t *testing.T) {
	const n = 4
	nw, err := New(n)
	if err != nil {
		t.Fatal(err)
	}

	payload := make(Packet, 64)
	for i := range payload {
		payload[i] = Word(i)
	}
	nw.SetFaultPlan(&FaultPlan{Faults: []Fault{{Kind: FaultCancel, Round: 0}}})
	err = nw.Run(func(nd *Node) error {
		for to := 0; to < nd.N(); to++ {
			nd.Send(to, payload)
		}
		_, err := nd.Exchange()
		return err
	})
	if !errors.Is(err, ErrFaultInjected) {
		t.Fatalf("expected injected cancellation, got %v", err)
	}

	// Snapshot the published-but-undelivered outbox arrays and the buffer
	// set, then Close (which pools the buffers): every outbox slot must be
	// nilled and every backing array cleared of packet references.
	b := nw.buffers
	var backing [][]pendingPacket
	for i := 0; i < n; i++ {
		if out := nw.outboxes[i]; out != nil {
			backing = append(backing, out[:cap(out)])
		}
	}
	if len(backing) == 0 {
		t.Fatal("test setup: no published outboxes survived the cancelled run")
	}
	if err := nw.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if b.outboxes[i] != nil {
			t.Fatalf("pooled netBuffers.outboxes[%d] still set after Close", i)
		}
		if b.inboxes[i] != nil {
			t.Fatalf("pooled netBuffers.inboxes[%d] still set after Close", i)
		}
	}
	for ai, arr := range backing {
		for pi := range arr {
			if arr[pi].data != nil {
				t.Fatalf("outbox array %d entry %d still references payload after Close", ai, pi)
			}
		}
	}
}

// TestWatchdogNoGoroutineLeak is the goleak-style assertion: deadline-enabled
// runs (including a watchdog fire) must leave no goroutines behind once the
// Network is closed.
func TestWatchdogNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	nw, err := New(6, WithRoundDeadline(30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	sums := make([]int64, 6)
	for i := 0; i < 3; i++ {
		if err := nw.Run(chaosProgram(3, sums)); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	nw.SetFaultPlan(&FaultPlan{Faults: []Fault{{Kind: FaultStall, Node: 0, Round: 0, Stall: 10 * time.Second}}})
	if err := nw.Run(chaosProgram(3, sums)); !errors.Is(err, ErrRoundDeadline) {
		t.Fatalf("expected deadline failure, got %v", err)
	}
	if err := nw.Close(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after close", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWatchdogManyCleanRuns exercises the kick/halt handshake across many
// consecutive runs on one deadline-enabled engine, mixing fault-free runs
// with injected failures; no run may hang and the engine must stay usable.
func TestWatchdogManyCleanRuns(t *testing.T) {
	const n, rounds = 5, 3
	nw, err := New(n, WithRoundDeadline(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()

	sums := make([]int64, n)
	for i := 0; i < 50; i++ {
		if i%7 == 3 {
			nw.SetFaultPlan(&FaultPlan{Faults: []Fault{{Kind: FaultPanic, Node: i % n, Round: i % rounds}}})
			if err := nw.Run(chaosProgram(rounds, sums)); !errors.Is(err, ErrFaultInjected) {
				t.Fatalf("run %d: expected injected fault, got %v", i, err)
			}
			continue
		}
		if err := nw.Run(chaosProgram(rounds, sums)); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
}

func TestFaultKindString(t *testing.T) {
	for kind, want := range map[FaultKind]string{
		FaultPanic:    "panic",
		FaultStall:    "stall",
		FaultCancel:   "cancel",
		FaultKind(42): "FaultKind(42)",
	} {
		if got := kind.String(); got != want {
			t.Errorf("FaultKind(%d).String() = %q, want %q", kind, got, want)
		}
	}
}

func TestWatchdogDiagnosticListTruncation(t *testing.T) {
	if got := fmtNodeList(nil); got != "none" {
		t.Errorf("empty list rendered as %q", got)
	}
	ids := make([]int, 12)
	for i := range ids {
		ids[i] = i
	}
	got := fmtNodeList(ids)
	if !strings.Contains(got, "… 4 more") {
		t.Errorf("long list not truncated: %q", got)
	}
	if got2 := fmtNodeList([]int{3, 9}); got2 != "nodes 3, 9" {
		t.Errorf("short list rendered as %q", got2)
	}
}

// TestConcurrentFaultEngines runs several fault-injected engines at once to
// give the race detector surface area over the watchdog, the stall wake-up
// and the idempotent barrier release.
func TestConcurrentFaultEngines(t *testing.T) {
	const n, rounds = 5, 4
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			done <- func() error {
				nw, err := New(n, WithRoundDeadline(30*time.Millisecond))
				if err != nil {
					return err
				}
				defer nw.Close()
				sums := make([]int64, n)
				for i := 0; i < 10; i++ {
					switch (g + i) % 3 {
					case 0:
						nw.SetFaultPlan(&FaultPlan{Faults: []Fault{{Kind: FaultStall, Node: i % n, Round: i % rounds, Stall: 10 * time.Second}}})
						if err := nw.Run(chaosProgram(rounds, sums)); !errors.Is(err, ErrRoundDeadline) {
							return fmt.Errorf("iter %d: expected deadline failure, got %v", i, err)
						}
					case 1:
						nw.SetFaultPlan(&FaultPlan{Faults: []Fault{{Kind: FaultCancel, Round: i % rounds}}})
						if err := nw.Run(chaosProgram(rounds, sums)); !errors.Is(err, ErrFaultInjected) {
							return fmt.Errorf("iter %d: expected injected fault, got %v", i, err)
						}
					default:
						if err := nw.Run(chaosProgram(rounds, sums)); err != nil {
							return fmt.Errorf("iter %d: clean run failed: %v", i, err)
						}
					}
				}
				return nil
			}()
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}
