package clique

// Tests for the multi-run engine lifecycle backing the public session API:
// repeated runs on one Network, per-run state scoping, and context
// cancellation that releases every parked node.

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// TestRunContextCancelMidRun cancels the context from inside a node program
// while every node is still looping on the barrier. The run must fail with an
// error wrapping context.Canceled on every node, no goroutine may stay
// parked, and the Network must remain usable for a follow-up run.
func TestRunContextCancelMidRun(t *testing.T) {
	t.Parallel()
	const n = 16
	nw, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err = nw.RunContext(ctx, func(nd *Node) error {
		for r := 0; r < 1_000_000; r++ {
			if nd.ID() == 0 && r == 3 {
				cancel()
			}
			nd.Send((nd.ID()+1)%n, Packet{Word(r)})
			if _, err := nd.Exchange(); err != nil {
				return err
			}
		}
		return errors.New("round loop ran to completion despite cancellation")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("run error = %v, want one wrapping context.Canceled", err)
	}

	// The engine must have recovered: a fresh run on the same Network works.
	if err := nw.Run(func(nd *Node) error {
		nd.Broadcast(Packet{Word(nd.ID())})
		_, err := nd.Exchange()
		return err
	}); err != nil {
		t.Fatalf("run after cancelled run: %v", err)
	}
	if m := nw.Metrics(); m.Rounds != 1 {
		t.Fatalf("metrics not reset after cancelled run: %+v", m)
	}
}

// TestRunContextPreCancelled verifies a context that is already over fails
// the run before any node program starts, and leaves the Network reusable.
func TestRunContextPreCancelled(t *testing.T) {
	t.Parallel()
	nw, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var started atomic.Bool
	err = nw.RunContext(ctx, func(nd *Node) error {
		started.Store(true)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("run error = %v, want one wrapping context.Canceled", err)
	}
	if started.Load() {
		t.Fatal("node program ran despite pre-cancelled context")
	}
	if err := nw.Run(func(nd *Node) error { return nil }); err != nil {
		t.Fatalf("run after pre-cancelled run: %v", err)
	}
}

// TestRunRoundsContextCancel cancels mid-run in engine-driven scheduling
// mode; the round loop must stop promptly and report the cancellation.
func TestRunRoundsContextCancel(t *testing.T) {
	t.Parallel()
	const n = 32
	nw, err := New(n, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err = nw.RunRoundsContext(ctx, func(nd *Node, round int, inbox Inbox) (bool, error) {
		if nd.ID() == 0 && round == 2 {
			cancel()
		}
		nd.Send((nd.ID()+round)%n, Packet{Word(round)})
		return false, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("run error = %v, want one wrapping context.Canceled", err)
	}
	if err := nw.RunRounds(func(nd *Node, round int, inbox Inbox) (bool, error) {
		return round >= 1, nil
	}); err != nil {
		t.Fatalf("RunRounds after cancelled run: %v", err)
	}
}

// TestMixedRunModesReuse alternates blocking Run and engine-driven RunRounds
// on one Network: the segment-mode delivery state of RunRounds must not leak
// into the following blocking run, and metrics must match a fresh Network's.
func TestMixedRunModesReuse(t *testing.T) {
	t.Parallel()
	const n = 12
	nw, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()

	blocking := func(nd *Node) error {
		nd.Broadcast(Packet{Word(nd.ID()), Word(7)})
		inbox, err := nd.Exchange()
		if err != nil {
			return err
		}
		if inbox.Count() != n {
			return fmt.Errorf("node %d received %d packets, want %d", nd.ID(), inbox.Count(), n)
		}
		return nil
	}
	stepped := func(nd *Node, round int, inbox Inbox) (bool, error) {
		if round == 0 {
			nd.Broadcast(Packet{Word(nd.ID()), Word(7)})
			return false, nil
		}
		if inbox.Count() != n {
			return true, fmt.Errorf("node %d received %d packets, want %d", nd.ID(), inbox.Count(), n)
		}
		return true, nil
	}

	if err := nw.Run(blocking); err != nil {
		t.Fatal(err)
	}
	blockingMetrics := nw.Metrics()
	if err := nw.RunRounds(stepped); err != nil {
		t.Fatal(err)
	}
	if err := nw.Run(blocking); err != nil {
		t.Fatal(err)
	}
	again := nw.Metrics()
	if blockingMetrics.TotalWords != again.TotalWords || blockingMetrics.MaxEdgeWords != again.MaxEdgeWords {
		t.Fatalf("blocking run after RunRounds produced different metrics: %+v vs %+v", blockingMetrics, again)
	}
	if cum := nw.CumulativeMetrics(); cum.Runs != 3 {
		t.Fatalf("cumulative runs = %d, want 3", cum.Runs)
	}
}

// TestSharedCacheScopedPerRun pins the correctness rule that makes engine
// reuse safe: the shared-computation cache memoises colorings of the current
// run's demand matrices, which depend on the instance data, so a second run
// must recompute rather than observe the first run's values.
func TestSharedCacheScopedPerRun(t *testing.T) {
	t.Parallel()
	const n = 8
	nw, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	var calls atomic.Int64
	program := func(nd *Node) error {
		v := nd.SharedCompute("schedule", func() interface{} {
			return calls.Add(1)
		})
		if v.(int64) < 1 {
			return fmt.Errorf("unexpected shared value %v", v)
		}
		return nil
	}
	if err := nw.Run(program); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("first run computed %d times, want 1", got)
	}
	if err := nw.Run(program); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("second run must recompute (cache is per-run): %d total computations, want 2", got)
	}
}

// TestStrictBudgetFailureThenReuse drives a run into an engine-level strict
// budget failure and checks the next run on the same Network starts clean.
func TestStrictBudgetFailureThenReuse(t *testing.T) {
	t.Parallel()
	const n = 6
	nw, err := New(n, WithStrictEdgeBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	err = nw.Run(func(nd *Node) error {
		nd.Send((nd.ID()+1)%n, Packet{1, 2, 3})
		_, err := nd.Exchange()
		return err
	})
	if !errors.Is(err, ErrBandwidthExceeded) {
		t.Fatalf("want bandwidth violation, got %v", err)
	}
	if err := nw.Run(func(nd *Node) error {
		nd.Send((nd.ID()+1)%n, Packet{1})
		_, err := nd.Exchange()
		return err
	}); err != nil {
		t.Fatalf("run after budget failure: %v", err)
	}
}
