package clique

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Mux multiplexes several logical protocol instances onto one physical node.
// All active instances advance in lockstep: one virtual round of every active
// instance corresponds to exactly one physical round of the underlying node.
// Packets are tagged with their instance identifier (one extra word) so that
// the receiving Mux can demultiplex them; this is the implementation of the
// paper's "run the instances in parallel, increasing the message size by a
// constant factor".
//
// The Mux is used by the non-square-n routing construction of Theorem 3.7
// (two square sub-instances plus the 6-round boundary procedure run in
// parallel) and by the sorting pipeline (piggybacking the bucket-size
// aggregation on the Step-6 routing rounds).
//
// Allocation behaviour: instances queue their sends locally (no lock per
// send). When the Mux runs directly on the engine ("passthrough" mode), the
// instances are FrameTaggers: senders that build the tag into their frames
// (SendTagged) are forwarded without any copy, and flat receivers share the
// engine's raw FlatInbox, filtering records by tag themselves — the round's
// traffic is never copied inside the Mux at all. Sends through the plain
// Send/SendFramed path are tagged by copying into a per-instance buffer that
// is truncated (and kept) once the engine has copied the round's payloads;
// boxed receivers get recycled Inbox structures. A Mux stacked on another
// Mux's virtual node cannot share inboxes this way (records then carry the
// outer tag), so it falls back to copy-tagging and demultiplexing into
// per-instance ring buffers.
type Mux struct {
	nd Exchanger

	// passthrough is true when nd supports the flat path and is not itself
	// tagged: tagged frames and the shared flat inbox travel through the Mux
	// untouched. Fixed at construction.
	passthrough bool
	// ndTag is the tag of the underlying exchanger when it is itself a tagged
	// virtual node (a stacked Mux): received records must be filtered by it
	// and stripped before demultiplexing by this Mux's own instance tags.
	ndTag    Word
	ndTagged bool

	mu      sync.Mutex
	cond    *sync.Cond
	active  int
	arrived int
	round   int
	failed  error
	// rawFlat is the engine's flat inbox of the round that just completed,
	// shared by all flat instances in passthrough mode. Views stay valid under
	// the engine's payload grace window, so overwriting it each round is safe.
	rawFlat FlatInbox
	// pending holds tagged packets handed over by instances that closed with
	// sends still queued; they are delivered at the next physical round.
	pending []pendingPacket
	// retired holds the tagged-payload buffers backing pending: they must
	// survive until the engine has copied the packets at the next barrier.
	retired []*[]Word
	// inboxes[instance] is the demultiplexed boxed inbox of the round that
	// just completed (flat instances receive through their own ring instead).
	inboxes map[int]Inbox
	vnodes  map[int]*VNode
	// order lists the registered virtual nodes in ascending instance order:
	// queued sends are forwarded to the physical node in this (deterministic)
	// order at every barrier.
	order []*VNode
	// byID is the dense instance-id -> virtual-node table used by the demux
	// hot loop (instance identifiers are small in every use).
	byID []*VNode
	// boxFree recycles instance inboxes retired by VNode.Exchange.
	boxFree []Inbox
}

// NewMux wraps a physical (or itself virtual) node. Instances are registered
// with Instance before any of them starts exchanging.
func NewMux(nd Exchanger) *Mux {
	m := &Mux{
		nd:      nd,
		inboxes: make(map[int]Inbox),
		vnodes:  make(map[int]*VNode),
	}
	if _, ok := nd.(FlatExchanger); ok {
		if ft, okT := nd.(FrameTagger); okT {
			if tag, on := ft.FrameTag(); on {
				m.ndTag, m.ndTagged = tag, true
			}
		}
		m.passthrough = !m.ndTagged
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// runFailer is implemented by exchangers that can record a root-cause
// failure for their whole run: *Node forwards to Network.setFailure, *VNode
// recurses down its own Mux. Mux.fail uses it to propagate an instance
// panic to the physical network, so peer nodes parked at the engine barrier
// fail fast instead of deadlocking on the crashed node's missing arrival.
type runFailer interface {
	failRun(err error)
}

// failRun implements runFailer: the panic becomes the run's engine failure,
// waking parked peers with the root cause at their next exchange.
func (nd *Node) failRun(err error) {
	nd.nw.setFailure(err)
}

// failRun implements runFailer for stacked Muxes by cascading the failure
// down to the underlying exchanger.
func (v *VNode) failRun(err error) {
	v.mux.fail(err)
}

// fail records err as the Mux's failure (first writer wins), wakes every
// instance parked at the Mux barrier, and propagates the failure to the
// underlying exchanger so the physical run fails as a whole. Callers must
// NOT hold m.mu.
func (m *Mux) fail(err error) {
	if f, ok := m.nd.(runFailer); ok {
		f.failRun(err)
	}
	m.mu.Lock()
	if m.failed == nil {
		m.failed = err
	}
	m.cond.Broadcast()
	m.mu.Unlock()
}

// Instance registers a new virtual node for the logical instance with the
// given identifier. Identifiers must be non-negative and unique per Mux, and
// identical across all physical nodes participating in the same logical
// instance.
func (m *Mux) Instance(id int) (*VNode, error) {
	if id < 0 {
		return nil, fmt.Errorf("clique: instance id must be non-negative, got %d", id)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.vnodes[id]; ok {
		return nil, fmt.Errorf("clique: instance %d registered twice", id)
	}
	vn := &VNode{mux: m, instance: id}
	m.vnodes[id] = vn
	m.order = append(m.order, vn)
	sort.Slice(m.order, func(a, b int) bool { return m.order[a].instance < m.order[b].instance })
	for id >= len(m.byID) {
		m.byID = append(m.byID, nil)
	}
	m.byID[id] = vn
	m.active++
	return vn, nil
}

// Run is a convenience helper: it registers one instance per program (with
// instance identifiers equal to the map keys), runs each program in its own
// goroutine on its virtual node, and waits for all of them. It returns the
// error of the lowest-numbered failing slot, mirroring Network.Run's
// deterministic error rule.
func (m *Mux) Run(programs map[int]func(Exchanger) error) error {
	vnodes := make(map[int]*VNode, len(programs))
	ids := make([]int, 0, len(programs))
	for id := range programs {
		ids = append(ids, id)
	}
	// Sorted so that the first-failing-slot scan below is the lowest failing
	// instance id, independent of map iteration order.
	sort.Ints(ids)
	for _, id := range ids {
		vn, err := m.Instance(id)
		if err != nil {
			return err
		}
		vnodes[id] = vn
	}
	errs := make([]error, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(slot, id int) {
			defer wg.Done()
			vn := vnodes[id]
			defer vn.Close()
			defer func() {
				if r := recover(); r != nil {
					if _, injected := r.(*injectedPanic); injected {
						errs[slot] = nodePanicError(vn.ID(), r)
					} else {
						errs[slot] = fmt.Errorf("clique: instance %d panicked: %v", id, r)
					}
					// Same fail-fast rule as Network.RunContext: a panic is a
					// crash of the whole run, not of one instance. Without the
					// broadcast the physical barrier would wait forever for
					// this node's exchange (the panic may have fired inside
					// deliverLocked, before the physical arrival), deadlocking
					// every other physical node.
					m.fail(errs[slot])
				}
			}()
			errs[slot] = programs[id](vn)
		}(i, id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failed
}

// VNode is the virtual node handed to one logical instance. It implements
// Exchanger (and FlatExchanger) by delegating identity, instrumentation and
// shared computation to the underlying physical node and by funnelling
// communication through the Mux barrier.
type VNode struct {
	mux      *Mux
	instance int
	round    int
	closed   bool
	// pending queues this instance's sends between barriers. It is written by
	// the instance goroutine without holding the Mux lock: the writes are
	// published to the delivering goroutine by the mutex acquisition when the
	// instance arrives at the barrier.
	pending []pendingPacket
	// tagBuf is the pooled buffer this instance's tagged payloads are carved
	// from. Growth is append-only, so earlier carved views stay valid when
	// the backing array is reallocated.
	tagBuf *[]Word
	// tagHint remembers the previous round's tagged volume so a freshly
	// acquired tagBuf can be sized in one step instead of re-running the
	// geometric growth every round.
	tagHint int
	// prevBox is the boxed inbox handed out last round, recycled at the next
	// exchange.
	prevBox Inbox
	// wantFlat is the receive mode the instance requested for the round being
	// delivered (set at every barrier arrival).
	wantFlat bool
	// flatRing cycles the per-round flat record buffers handed out by
	// ExchangeFlat, mirroring the engine's payload ring so received payload
	// views stay valid for PayloadGraceRounds further exchanges. The buffers
	// are pooled: acquired on first use, returned when the instance closes.
	flatRing [payloadRingDepth]*[]Word
	flatSlot int
	// flatHint remembers the flat volume of a recent round so a freshly
	// acquired ring buffer can be sized in one step (pooled buffers arrive
	// with arbitrary, often tiny, capacity).
	flatHint int
}

var (
	_ Exchanger     = (*VNode)(nil)
	_ FlatExchanger = (*VNode)(nil)
	_ FrameTagger   = (*VNode)(nil)
)

// FrameTag implements FrameTagger: in passthrough mode the instance
// identifier is the frame tag, and senders/receivers that honour it skip the
// Mux's internal copies entirely. On a stacked Mux (the underlying exchanger
// is itself tagged) ok is false and the copy-tagging fallback applies.
func (v *VNode) FrameTag() (Word, bool) {
	return Word(v.instance), v.mux.passthrough
}

// SendTagged queues one pre-tagged frame without copying it. data[0] must be
// this instance's tag; the frame must stay valid until this instance's next
// exchange returns (the engine copies it at the barrier inside that call).
// The accounted cost adds one tag word per logical message, identical to what
// SendFramed charges for the tag it prepends.
func (v *VNode) SendTagged(to int, data Packet, count, modelWords int) {
	if !v.mux.passthrough {
		panic(fmt.Sprintf("clique: SendTagged on instance %d of a stacked Mux (node %d)", v.instance, v.ID()))
	}
	if to < 0 || to >= v.N() {
		panic(fmt.Sprintf("clique: instance %d on node %d sent to invalid destination %d (n=%d)",
			v.instance, v.ID(), to, v.N()))
	}
	if count < 1 || modelWords < 0 {
		panic(fmt.Sprintf("clique: instance %d on node %d tagged send with count %d, model %d",
			v.instance, v.ID(), count, modelWords))
	}
	if len(data) == 0 || data[0] != Word(v.instance) {
		panic(fmt.Sprintf("clique: instance %d on node %d tagged send without its tag", v.instance, v.ID()))
	}
	v.pending = append(v.pending, pendingPacket{to: to, data: data, count: int32(count), model: int32(modelWords + count)})
}

// ID returns the physical node identifier.
func (v *VNode) ID() int { return v.mux.nd.ID() }

// N returns the clique size.
func (v *VNode) N() int { return v.mux.nd.N() }

// Round returns the number of virtual rounds completed by this instance.
func (v *VNode) Round() int { return v.round }

// CountSteps delegates to the physical node.
func (v *VNode) CountSteps(k int) { v.mux.nd.CountSteps(k) }

// ReportMemory delegates to the physical node.
func (v *VNode) ReportMemory(words int) { v.mux.nd.ReportMemory(words) }

// SharedCompute delegates to the physical node.
func (v *VNode) SharedCompute(key string, f func() interface{}) interface{} {
	return v.mux.nd.SharedCompute(key, f)
}

// SharedComputeKeyed delegates to the physical node.
func (v *VNode) SharedComputeKeyed(key SharedKey, f func() interface{}) interface{} {
	return v.mux.nd.SharedComputeKeyed(key, f)
}

// Send queues a packet for delivery within this instance. The packet is
// tagged with the instance identifier (one extra word on the wire); the
// tagged copy is carved from a pooled buffer that is released once the
// engine has copied the round's payloads at the physical barrier.
func (v *VNode) Send(to int, data Packet) {
	v.SendFramed(to, data, 1, len(data))
}

// SendFramed queues one physical packet carrying count logical messages (see
// Exchanger). The instance tag the Mux adds is per-message overhead in the
// unbatched model, so the accounted cost forwarded to the physical node is
// modelWords plus one tag word per logical message — exactly what count
// individually tagged packets would have cost. The packet is queued locally
// (no Mux lock) and handed to the physical node at this instance's next
// barrier arrival.
func (v *VNode) SendFramed(to int, data Packet, count, modelWords int) {
	if to < 0 || to >= v.N() {
		panic(fmt.Sprintf("clique: instance %d on node %d sent to invalid destination %d (n=%d)",
			v.instance, v.ID(), to, v.N()))
	}
	if count < 1 || modelWords < 0 {
		panic(fmt.Sprintf("clique: instance %d on node %d framed send with count %d, model %d",
			v.instance, v.ID(), count, modelWords))
	}
	if v.tagBuf == nil {
		v.tagBuf = acquireWords()
		if cap(*v.tagBuf) < v.tagHint {
			*v.tagBuf = make([]Word, 0, v.tagHint+v.tagHint/4)
		}
	}
	buf := *v.tagBuf
	pos := len(buf)
	buf = append(buf, Word(v.instance))
	buf = append(buf, data...)
	*v.tagBuf = buf
	tagged := buf[pos:len(buf):len(buf)]
	v.pending = append(v.pending, pendingPacket{to: to, data: tagged, count: int32(count), model: int32(modelWords + count)})
}

// Exchange advances this instance by one round. It blocks until every other
// active instance on the same physical node has also reached its barrier;
// the last instance to arrive performs the physical exchange and
// demultiplexes the received packets by instance tag. The returned Inbox is
// engine-owned and valid until this instance's next Exchange call.
func (v *VNode) Exchange() (Inbox, error) {
	m := v.mux
	// Deferred so a panic inside the physical exchange (an injected fault, a
	// delivery panic) does not leave the Mux lock held: Run's recovery must be
	// able to take it to broadcast the failure.
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := v.barrierLocked(false); err != nil {
		return nil, err
	}
	inbox := m.inboxes[v.instance]
	delete(m.inboxes, v.instance)
	if inbox == nil {
		inbox = m.getBoxLocked()
	}
	v.round++
	v.prevBox = inbox
	return inbox, nil
}

// ExchangeFlat is Exchange for the flat receive path. In passthrough mode it
// returns the engine's raw round inbox, shared by all instances: records keep
// their leading tag word, and the caller filters by FrameTag (this is what
// makes the receive path copy-free). On a stacked Mux the records are instead
// demultiplexed into a per-instance ring buffer with the tag already
// stripped. Either way the records arrive in ascending physical-sender order
// and payload views stay valid for PayloadGraceRounds further exchanges of
// this instance.
func (v *VNode) ExchangeFlat() (FlatInbox, error) {
	m := v.mux
	// Deferred for the same panic-safety reason as Exchange.
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := v.barrierLocked(true); err != nil {
		return nil, err
	}
	var flat FlatInbox
	if m.passthrough {
		flat = m.rawFlat
	} else if buf := v.flatRing[v.flatSlot]; buf != nil {
		flat = FlatInbox(*buf)
	}
	v.round++
	return flat, nil
}

// barrierLocked retires last round's receive buffers, publishes the receive
// mode, arrives at the Mux barrier and waits for the round to turn over.
// Callers must hold m.mu and check the returned error before reading any
// per-round state.
func (v *VNode) barrierLocked(flat bool) error {
	m := v.mux
	if v.closed {
		return errors.New("clique: Exchange called on closed virtual node")
	}
	if m.failed != nil {
		return m.failed
	}
	// Retire last round's boxed inbox into the recycle list and rotate the
	// flat ring: the slot about to be rewritten is the one filled
	// payloadRingDepth exchanges ago, which is exactly the engine's grace
	// window.
	if v.prevBox != nil {
		clear(v.prevBox)
		m.boxFree = append(m.boxFree, v.prevBox)
		v.prevBox = nil
	}
	v.wantFlat = flat
	if flat && !m.passthrough {
		v.flatSlot = (v.flatSlot + 1) % payloadRingDepth
		if buf := v.flatRing[v.flatSlot]; buf != nil {
			if len(*buf) > v.flatHint {
				v.flatHint = len(*buf)
			}
			*buf = (*buf)[:0]
		}
	}
	generation := m.round
	m.arrived++
	if m.arrived == m.active {
		m.deliverLocked()
	} else {
		for m.round == generation && m.failed == nil {
			m.cond.Wait()
		}
	}
	return m.failed
}

// Close removes the instance from the Mux barrier. It must be called exactly
// once when the instance's program has finished (Mux.Run does this
// automatically). Closing may complete a round on behalf of the remaining
// instances.
func (v *VNode) Close() {
	m := v.mux
	m.mu.Lock()
	defer m.mu.Unlock()
	if v.closed {
		return
	}
	v.closed = true
	m.active--
	// Hand over sends queued since the last barrier (normally none): they are
	// delivered at the next physical round, so their payloads must survive
	// until the engine has copied them. The instance's own buffers (tag
	// buffer, or the sender's frame storage for SendTagged) die with the
	// program, so the payloads are copied into a buffer retired after the
	// next physical exchange.
	if len(v.pending) > 0 {
		buf := acquireWords()
		for _, pp := range v.pending {
			*buf = append(*buf, pp.data...)
		}
		off := 0
		for i := range v.pending {
			l := len(v.pending[i].data)
			v.pending[i].data = (*buf)[off : off+l : off+l]
			off += l
		}
		m.retired = append(m.retired, buf)
		m.pending = append(m.pending, v.pending...)
		v.pending = nil
	}
	if v.tagBuf != nil {
		releaseWords(v.tagBuf)
		v.tagBuf = nil
	}
	// The program has returned, so nothing can read this instance's flat ring
	// anymore; the buffers go back to the pool for the next Mux.
	for i, bp := range v.flatRing {
		if bp != nil {
			releaseWords(bp)
			v.flatRing[i] = nil
		}
	}
	if m.active > 0 && m.arrived == m.active && m.failed == nil {
		m.deliverLocked()
	}
	if m.active == 0 {
		m.cond.Broadcast()
	}
}

// getBoxLocked returns a cleared instance inbox, recycled if possible.
// Callers must hold m.mu.
func (m *Mux) getBoxLocked() Inbox {
	if k := len(m.boxFree); k > 0 {
		box := m.boxFree[k-1]
		m.boxFree[k-1] = nil
		m.boxFree = m.boxFree[:k-1]
		return box
	}
	return make(Inbox, m.nd.N())
}

// deliverLocked performs one physical exchange on behalf of all active
// instances and distributes the result. Callers must hold m.mu.
//
// The physical Exchange blocks on the network-wide barrier; holding m.mu
// while blocked is safe because every other goroutine that could need the
// lock is an instance of this same Mux, and all of them are already parked at
// the Mux barrier (m.arrived == m.active) or closed.
func (m *Mux) deliverLocked() {
	// Forward the queued sends in ascending instance order. Each instance's
	// internal send order is preserved; the interleaving between instances is
	// not observable (each instance only ever reads its own records, and the
	// per-round edge accounting is order-independent).
	for _, v := range m.order {
		for _, pp := range v.pending {
			m.nd.SendFramed(pp.to, pp.data, int(pp.count), int(pp.model))
		}
		v.pending = v.pending[:0]
	}
	for _, pp := range m.pending {
		m.nd.SendFramed(pp.to, pp.data, int(pp.count), int(pp.model))
	}
	m.pending = m.pending[:0]

	// Prefer the engine's flat receive path when the underlying node supports
	// it: delivery is one append per packet and the demux below reads the
	// records directly. The receive representation is invisible to the model
	// accounting, so the choice cannot change any statistic.
	var (
		inbox Inbox
		flat  FlatInbox
		err   error
	)
	fe, useFlat := m.nd.(FlatExchanger)
	if useFlat {
		flat, err = fe.ExchangeFlat()
	} else {
		inbox, err = m.nd.Exchange()
	}
	// The engine has copied all payloads at the barrier, so the round's
	// tagged-packet buffers can be truncated in place even on error. The
	// buffer stays attached to its instance — per-round traffic is near
	// constant, so after the first round no tagging allocation happens at all.
	for _, v := range m.order {
		if v.tagBuf != nil {
			*v.tagBuf = (*v.tagBuf)[:0]
		}
	}
	for i, b := range m.retired {
		releaseWords(b)
		m.retired[i] = nil
	}
	m.retired = m.retired[:0]
	if err != nil {
		m.failed = err
		m.cond.Broadcast()
		return
	}

	if useFlat {
		if m.passthrough {
			// Flat instances read the shared raw inbox directly (filtering by
			// their own tag), so the demux scan is only needed when some
			// instance asked for a boxed round.
			m.rawFlat = flat
			boxed := false
			for _, v := range m.order {
				if !v.closed && !v.wantFlat {
					boxed = true
					break
				}
			}
			if !boxed {
				m.round++
				m.arrived = 0
				m.cond.Broadcast()
				return
			}
		}
		for i := 0; i < len(flat); {
			from := int(flat[i])
			l := int(flat[i+1])
			p := Packet(flat[i+2 : i+2+l : i+2+l])
			i += 2 + l
			if m.ndTagged {
				// Stacked Mux: records carry the underlying virtual node's tag.
				if len(p) == 0 || p[0] != m.ndTag {
					continue
				}
				p = p[1:]
			}
			m.demuxLocked(from, p)
		}
	} else {
		for from, packets := range inbox {
			for _, p := range packets {
				m.demuxLocked(from, p)
			}
		}
	}

	m.round++
	m.arrived = 0
	m.cond.Broadcast()
}

// demuxLocked routes one received tagged packet to its instance, in the
// receive representation that instance asked for this round. Packets for
// unknown or closed instances are dropped (nothing could ever read them).
func (m *Mux) demuxLocked(from int, p Packet) {
	if len(p) == 0 {
		return
	}
	instance := int(p[0])
	var v *VNode
	if instance >= 0 && instance < len(m.byID) {
		v = m.byID[instance]
	}
	if v == nil || v.closed {
		return
	}
	if v.wantFlat {
		if m.passthrough {
			// The instance reads the shared raw inbox; nothing to copy here.
			return
		}
		// Stacked Mux: demultiplex into the instance's ring buffer. Flat
		// records are appended in physical delivery order, which is ascending
		// by sender (see FlatInbox); stripping the tag shortens the payload by
		// one word.
		bp := v.flatRing[v.flatSlot]
		if bp == nil {
			bp = acquireWords()
			if cap(*bp) < v.flatHint {
				*bp = make([]Word, 0, v.flatHint+v.flatHint/8)
			}
			v.flatRing[v.flatSlot] = bp
		}
		buf := append(*bp, Word(from), Word(len(p)-1))
		buf = append(buf, p[1:]...)
		*bp = buf
		return
	}
	box, ok := m.inboxes[instance]
	if !ok {
		box = m.getBoxLocked()
		m.inboxes[instance] = box
	}
	box[from] = append(box[from], p[1:])
}
