package clique

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Mux multiplexes several logical protocol instances onto one physical node.
// All active instances advance in lockstep: one virtual round of every active
// instance corresponds to exactly one physical round of the underlying node.
// Packets are tagged with their instance identifier (one extra word) so that
// the receiving Mux can demultiplex them; this is the implementation of the
// paper's "run the instances in parallel, increasing the message size by a
// constant factor".
//
// The Mux is used by the non-square-n routing construction of Theorem 3.7
// (two square sub-instances plus the 6-round boundary procedure run in
// parallel) and by the sorting pipeline (piggybacking the bucket-size
// aggregation on the Step-6 routing rounds).
//
// Allocation behaviour: all tagged payloads of one physical round are carved
// out of a single pooled word buffer (released once the engine has copied
// them at the barrier), and the demultiplexed per-instance inboxes are
// recycled round over round, so steady-state virtual rounds allocate nothing.
type Mux struct {
	nd Exchanger

	mu      sync.Mutex
	cond    *sync.Cond
	active  int
	arrived int
	round   int
	failed  error
	// pending accumulates tagged packets queued by all instances this round.
	pending []pendingPacket
	// tagBuf is the pooled buffer the round's tagged payloads are carved
	// from. Growth is append-only, so earlier carved views stay valid when
	// the backing array is reallocated.
	tagBuf *[]Word
	// inboxes[instance] is the demultiplexed inbox of the round that just
	// completed.
	inboxes map[int]Inbox
	vnodes  map[int]*VNode
	// boxFree recycles instance inboxes retired by VNode.Exchange.
	boxFree []Inbox
}

// NewMux wraps a physical (or itself virtual) node. Instances are registered
// with Instance before any of them starts exchanging.
func NewMux(nd Exchanger) *Mux {
	m := &Mux{
		nd:      nd,
		inboxes: make(map[int]Inbox),
		vnodes:  make(map[int]*VNode),
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Instance registers a new virtual node for the logical instance with the
// given identifier. Identifiers must be non-negative and unique per Mux, and
// identical across all physical nodes participating in the same logical
// instance.
func (m *Mux) Instance(id int) (*VNode, error) {
	if id < 0 {
		return nil, fmt.Errorf("clique: instance id must be non-negative, got %d", id)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.vnodes[id]; ok {
		return nil, fmt.Errorf("clique: instance %d registered twice", id)
	}
	vn := &VNode{mux: m, instance: id}
	m.vnodes[id] = vn
	m.active++
	return vn, nil
}

// Run is a convenience helper: it registers one instance per program (with
// instance identifiers equal to the map keys), runs each program in its own
// goroutine on its virtual node, and waits for all of them. It returns the
// error of the lowest-numbered failing slot, mirroring Network.Run's
// deterministic error rule.
func (m *Mux) Run(programs map[int]func(Exchanger) error) error {
	vnodes := make(map[int]*VNode, len(programs))
	ids := make([]int, 0, len(programs))
	for id := range programs {
		ids = append(ids, id)
	}
	// Sorted so that the first-failing-slot scan below is the lowest failing
	// instance id, independent of map iteration order.
	sort.Ints(ids)
	for _, id := range ids {
		vn, err := m.Instance(id)
		if err != nil {
			return err
		}
		vnodes[id] = vn
	}
	errs := make([]error, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(slot, id int) {
			defer wg.Done()
			vn := vnodes[id]
			defer vn.Close()
			defer func() {
				if r := recover(); r != nil {
					errs[slot] = fmt.Errorf("clique: instance %d panicked: %v", id, r)
				}
			}()
			errs[slot] = programs[id](vn)
		}(i, id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failed
}

// VNode is the virtual node handed to one logical instance. It implements
// Exchanger by delegating identity, instrumentation and shared computation to
// the underlying physical node and by funnelling communication through the
// Mux barrier.
type VNode struct {
	mux      *Mux
	instance int
	round    int
	closed   bool
	// prevBox is the inbox handed out last round, recycled at the next
	// Exchange.
	prevBox Inbox
}

var _ Exchanger = (*VNode)(nil)

// ID returns the physical node identifier.
func (v *VNode) ID() int { return v.mux.nd.ID() }

// N returns the clique size.
func (v *VNode) N() int { return v.mux.nd.N() }

// Round returns the number of virtual rounds completed by this instance.
func (v *VNode) Round() int { return v.round }

// CountSteps delegates to the physical node.
func (v *VNode) CountSteps(k int) { v.mux.nd.CountSteps(k) }

// ReportMemory delegates to the physical node.
func (v *VNode) ReportMemory(words int) { v.mux.nd.ReportMemory(words) }

// SharedCompute delegates to the physical node.
func (v *VNode) SharedCompute(key string, f func() interface{}) interface{} {
	return v.mux.nd.SharedCompute(key, f)
}

// SharedComputeKeyed delegates to the physical node.
func (v *VNode) SharedComputeKeyed(key SharedKey, f func() interface{}) interface{} {
	return v.mux.nd.SharedComputeKeyed(key, f)
}

// Send queues a packet for delivery within this instance. The packet is
// tagged with the instance identifier (one extra word on the wire); the
// tagged copy is carved from a pooled buffer that is released once the
// engine has copied the round's payloads at the physical barrier.
func (v *VNode) Send(to int, data Packet) {
	v.SendFramed(to, data, 1, len(data))
}

// SendFramed queues one physical packet carrying count logical messages (see
// Exchanger). The instance tag the Mux adds is per-message overhead in the
// unbatched model, so the accounted cost forwarded to the physical node is
// modelWords plus one tag word per logical message — exactly what count
// individually tagged packets would have cost.
func (v *VNode) SendFramed(to int, data Packet, count, modelWords int) {
	if to < 0 || to >= v.N() {
		panic(fmt.Sprintf("clique: instance %d on node %d sent to invalid destination %d (n=%d)",
			v.instance, v.ID(), to, v.N()))
	}
	if count < 1 || modelWords < 0 {
		panic(fmt.Sprintf("clique: instance %d on node %d framed send with count %d, model %d",
			v.instance, v.ID(), count, modelWords))
	}
	m := v.mux
	m.mu.Lock()
	if m.tagBuf == nil {
		m.tagBuf = acquireWords()
	}
	buf := *m.tagBuf
	pos := len(buf)
	buf = append(buf, Word(v.instance))
	buf = append(buf, data...)
	*m.tagBuf = buf
	tagged := buf[pos:len(buf):len(buf)]
	m.pending = append(m.pending, pendingPacket{to: to, data: tagged, count: int32(count), model: int32(modelWords + count)})
	m.mu.Unlock()
}

// Exchange advances this instance by one round. It blocks until every other
// active instance on the same physical node has also reached its barrier;
// the last instance to arrive performs the physical exchange and
// demultiplexes the received packets by instance tag. The returned Inbox is
// engine-owned and valid until this instance's next Exchange call.
func (v *VNode) Exchange() (Inbox, error) {
	m := v.mux
	m.mu.Lock()
	if v.closed {
		m.mu.Unlock()
		return nil, errors.New("clique: Exchange called on closed virtual node")
	}
	if m.failed != nil {
		err := m.failed
		m.mu.Unlock()
		return nil, err
	}
	// Retire last round's inbox into the recycle list.
	if v.prevBox != nil {
		clear(v.prevBox)
		m.boxFree = append(m.boxFree, v.prevBox)
		v.prevBox = nil
	}
	generation := m.round
	m.arrived++
	if m.arrived == m.active {
		m.deliverLocked()
	} else {
		for m.round == generation && m.failed == nil {
			m.cond.Wait()
		}
	}
	if m.failed != nil {
		err := m.failed
		m.mu.Unlock()
		return nil, err
	}
	inbox := m.inboxes[v.instance]
	delete(m.inboxes, v.instance)
	if inbox == nil {
		inbox = m.getBoxLocked()
	}
	m.mu.Unlock()

	v.round++
	v.prevBox = inbox
	return inbox, nil
}

// Close removes the instance from the Mux barrier. It must be called exactly
// once when the instance's program has finished (Mux.Run does this
// automatically). Closing may complete a round on behalf of the remaining
// instances.
func (v *VNode) Close() {
	m := v.mux
	m.mu.Lock()
	defer m.mu.Unlock()
	if v.closed {
		return
	}
	v.closed = true
	m.active--
	if m.active > 0 && m.arrived == m.active && m.failed == nil {
		m.deliverLocked()
	}
	if m.active == 0 {
		m.cond.Broadcast()
	}
}

// getBoxLocked returns a cleared instance inbox, recycled if possible.
// Callers must hold m.mu.
func (m *Mux) getBoxLocked() Inbox {
	if k := len(m.boxFree); k > 0 {
		box := m.boxFree[k-1]
		m.boxFree[k-1] = nil
		m.boxFree = m.boxFree[:k-1]
		return box
	}
	return make(Inbox, m.nd.N())
}

// deliverLocked performs one physical exchange on behalf of all active
// instances and distributes the result. Callers must hold m.mu.
//
// The physical Exchange blocks on the network-wide barrier; holding m.mu
// while blocked is safe because every other goroutine that could need the
// lock is an instance of this same Mux, and all of them are already parked at
// the Mux barrier (m.arrived == m.active) or closed.
func (m *Mux) deliverLocked() {
	for _, pp := range m.pending {
		m.nd.SendFramed(pp.to, pp.data, int(pp.count), int(pp.model))
	}
	m.pending = m.pending[:0]

	inbox, err := m.nd.Exchange()
	// The engine has copied all payloads at the barrier, so the round's
	// tagged-packet buffer can be recycled even on error.
	if m.tagBuf != nil {
		releaseWords(m.tagBuf)
		m.tagBuf = nil
	}
	if err != nil {
		m.failed = err
		m.cond.Broadcast()
		return
	}

	for from, packets := range inbox {
		for _, p := range packets {
			if len(p) == 0 {
				continue
			}
			instance := int(p[0])
			box, ok := m.inboxes[instance]
			if !ok {
				box = m.getBoxLocked()
				m.inboxes[instance] = box
			}
			box[from] = append(box[from], p[1:])
		}
	}

	m.round++
	m.arrived = 0
	m.cond.Broadcast()
}
