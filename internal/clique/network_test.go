package clique

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestNewRejectsBadArguments(t *testing.T) {
	t.Parallel()
	if _, err := New(0); err == nil {
		t.Fatal("New(0) should fail")
	}
	if _, err := New(-3); err == nil {
		t.Fatal("New(-3) should fail")
	}
	if _, err := New(4, WithStrictEdgeBudget(0)); err == nil {
		t.Fatal("zero strict budget should fail")
	}
	if _, err := New(4, WithStrictEdgeBudget(-1)); err == nil {
		t.Fatal("negative strict budget should fail")
	}
}

func TestSingleRoundAllToAll(t *testing.T) {
	t.Parallel()
	const n = 8
	nw, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	err = nw.Run(func(nd *Node) error {
		for to := 0; to < n; to++ {
			nd.Send(to, Packet{Word(nd.ID()*100 + to)})
		}
		inbox, err := nd.Exchange()
		if err != nil {
			return err
		}
		for from := 0; from < n; from++ {
			p := inbox.Single(from)
			if p == nil {
				return fmt.Errorf("node %d missing packet from %d", nd.ID(), from)
			}
			want := Word(from*100 + nd.ID())
			if p[0] != want {
				return fmt.Errorf("node %d got %d from %d, want %d", nd.ID(), p[0], from, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	m := nw.Metrics()
	if m.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", m.Rounds)
	}
	if m.TotalMessages != n*n {
		t.Fatalf("messages = %d, want %d", m.TotalMessages, n*n)
	}
	if m.MaxEdgeWords != 1 {
		t.Fatalf("max edge words = %d, want 1", m.MaxEdgeWords)
	}
}

func TestMultiRoundRelay(t *testing.T) {
	t.Parallel()
	const n = 6
	nw, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	// Round 1: node i sends its id to node (i+1) mod n.
	// Round 2: forward what was received to (i+2) mod n of the original sender.
	err = nw.Run(func(nd *Node) error {
		n := nd.N()
		nd.Send((nd.ID()+1)%n, Packet{Word(nd.ID())})
		inbox, err := nd.Exchange()
		if err != nil {
			return err
		}
		var got Packet
		for from := 0; from < n; from++ {
			if p := inbox.Single(from); p != nil {
				got = p
			}
		}
		if got == nil {
			return fmt.Errorf("node %d received nothing in round 1", nd.ID())
		}
		orig := int(got[0])
		nd.Send((orig+2)%n, Packet{got[0]})
		inbox, err = nd.Exchange()
		if err != nil {
			return err
		}
		count := 0
		for from := 0; from < n; from++ {
			for _, p := range inbox.From(from) {
				count++
				if int(p[0]) != (nd.ID()-2+n)%n {
					return fmt.Errorf("node %d got relayed id %d, want %d", nd.ID(), p[0], (nd.ID()-2+n)%n)
				}
			}
		}
		if count != 1 {
			return fmt.Errorf("node %d received %d packets in round 2, want 1", nd.ID(), count)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := nw.Rounds(); got != 2 {
		t.Fatalf("rounds = %d, want 2", got)
	}
}

func TestStrictEdgeBudgetViolation(t *testing.T) {
	t.Parallel()
	nw, err := New(4, WithStrictEdgeBudget(2))
	if err != nil {
		t.Fatal(err)
	}
	err = nw.Run(func(nd *Node) error {
		if nd.ID() == 0 {
			nd.Send(1, Packet{1, 2, 3}) // three words on one edge, budget two
		}
		_, err := nd.Exchange()
		return err
	})
	if !errors.Is(err, ErrBandwidthExceeded) {
		t.Fatalf("want ErrBandwidthExceeded, got %v", err)
	}
}

func TestStrictEdgeBudgetCountsMultiplePackets(t *testing.T) {
	t.Parallel()
	nw, err := New(4, WithStrictEdgeBudget(2))
	if err != nil {
		t.Fatal(err)
	}
	err = nw.Run(func(nd *Node) error {
		if nd.ID() == 0 {
			nd.Send(1, Packet{1, 2})
			nd.Send(1, Packet{3})
		}
		_, err := nd.Exchange()
		return err
	})
	if !errors.Is(err, ErrBandwidthExceeded) {
		t.Fatalf("want ErrBandwidthExceeded for aggregated edge load, got %v", err)
	}
}

func TestNodesFinishingAtDifferentRounds(t *testing.T) {
	t.Parallel()
	const n = 10
	nw, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	var lastRoundTraffic atomic.Int64
	err = nw.Run(func(nd *Node) error {
		// Node i runs i+1 rounds; in each round it pings node 0 unless node 0
		// may already have departed.
		for r := 0; r <= nd.ID(); r++ {
			if nd.ID() != 0 && r == 0 {
				nd.Send(0, Packet{Word(nd.ID())})
			}
			inbox, err := nd.Exchange()
			if err != nil {
				return err
			}
			if nd.ID() == 0 && r == 0 {
				lastRoundTraffic.Store(int64(inbox.Count()))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := lastRoundTraffic.Load(); got != n-1 {
		t.Fatalf("node 0 received %d packets in round 0, want %d", got, n-1)
	}
	if got := nw.Rounds(); got != n {
		t.Fatalf("rounds = %d, want %d (slowest node)", got, n)
	}
}

func TestNodeErrorPropagates(t *testing.T) {
	t.Parallel()
	sentinel := errors.New("boom")
	nw, err := New(5)
	if err != nil {
		t.Fatal(err)
	}
	err = nw.Run(func(nd *Node) error {
		if nd.ID() == 3 {
			return sentinel
		}
		_, err := nd.Exchange()
		return err
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("want sentinel error, got %v", err)
	}
}

func TestNodePanicIsConvertedToError(t *testing.T) {
	t.Parallel()
	nw, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	err = nw.Run(func(nd *Node) error {
		if nd.ID() == 2 {
			panic("unexpected")
		}
		_, err := nd.Exchange()
		return err
	})
	if err == nil {
		t.Fatal("want error from panicking node")
	}
}

func TestRunReuseAndClose(t *testing.T) {
	t.Parallel()
	nw, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	program := func(nd *Node) error {
		nd.Broadcast(Packet{Word(nd.ID())})
		inbox, err := nd.Exchange()
		if err != nil {
			return err
		}
		if inbox.Count() != 3 {
			return fmt.Errorf("node %d received %d packets, want 3", nd.ID(), inbox.Count())
		}
		return nil
	}
	if err := nw.Run(program); err != nil {
		t.Fatal(err)
	}
	first := nw.Metrics()
	if err := nw.Run(program); err != nil {
		t.Fatalf("second run on the same Network: %v", err)
	}
	second := nw.Metrics()
	if first.Rounds != second.Rounds || first.TotalMessages != second.TotalMessages ||
		first.TotalWords != second.TotalWords || first.MaxEdgeWords != second.MaxEdgeWords {
		t.Fatalf("per-run metrics differ across identical runs: %+v vs %+v", first, second)
	}
	cum := nw.CumulativeMetrics()
	if cum.Runs != 2 || cum.Rounds != first.Rounds*2 || cum.TotalWords != first.TotalWords*2 {
		t.Fatalf("cumulative metrics wrong: %+v", cum)
	}
	if err := nw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := nw.Close(); err != nil {
		t.Fatalf("Close must be idempotent: %v", err)
	}
	if err := nw.Run(program); err == nil {
		t.Fatal("Run after Close should fail")
	}
}

func TestBroadcast(t *testing.T) {
	t.Parallel()
	const n = 7
	nw, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	err = nw.Run(func(nd *Node) error {
		nd.Broadcast(Packet{Word(nd.ID())})
		inbox, err := nd.Exchange()
		if err != nil {
			return err
		}
		if inbox.Count() != n {
			return fmt.Errorf("node %d received %d packets, want %d", nd.ID(), inbox.Count(), n)
		}
		for from := 0; from < n; from++ {
			if p := inbox.Single(from); p == nil || int(p[0]) != from {
				return fmt.Errorf("node %d bad broadcast from %d: %v", nd.ID(), from, p)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStepAndMemoryAccounting(t *testing.T) {
	t.Parallel()
	nw, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	err = nw.Run(func(nd *Node) error {
		nd.CountSteps(10 * (nd.ID() + 1))
		nd.CountSteps(-5) // ignored
		nd.ReportMemory(100 * (nd.ID() + 1))
		nd.ReportMemory(1) // smaller value does not lower the max
		_, err := nd.Exchange()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	m := nw.Metrics()
	if m.MaxStepsPerNode != 40 {
		t.Fatalf("max steps = %d, want 40", m.MaxStepsPerNode)
	}
	if m.MaxMemoryWordsPerNode != 400 {
		t.Fatalf("max memory = %d, want 400", m.MaxMemoryWordsPerNode)
	}
	steps := nw.StepsPerNode()
	if steps[0] != 10 || steps[3] != 40 {
		t.Fatalf("per-node steps wrong: %v", steps)
	}
}

func TestSharedComputeCaching(t *testing.T) {
	t.Parallel()
	const n = 16
	nw, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	err = nw.Run(func(nd *Node) error {
		v := nd.SharedCompute("answer", func() interface{} {
			calls.Add(1)
			return 42
		})
		if v.(int) != 42 {
			return fmt.Errorf("unexpected shared value %v", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Racing nodes may compute the value more than once, but the cache should
	// prevent anything close to n computations in the common case; with the
	// cache disabled every node computes it.
	if calls.Load() > int64(n) {
		t.Fatalf("shared compute called %d times, more than n=%d", calls.Load(), n)
	}

	nw2, err := New(n, WithSharedCache(false))
	if err != nil {
		t.Fatal(err)
	}
	var calls2 atomic.Int64
	err = nw2.Run(func(nd *Node) error {
		nd.SharedCompute("answer", func() interface{} {
			calls2.Add(1)
			return 42
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls2.Load() != n {
		t.Fatalf("with cache disabled, want %d computations, got %d", n, calls2.Load())
	}
}

func TestMetricsPerRoundStats(t *testing.T) {
	t.Parallel()
	const n = 5
	nw, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	err = nw.Run(func(nd *Node) error {
		// Round 1: everyone sends 2 words to node 0.
		nd.Send(0, Packet{1, 2})
		if _, err := nd.Exchange(); err != nil {
			return err
		}
		// Round 2: only node 0 sends, 3 words to each node.
		if nd.ID() == 0 {
			for to := 0; to < n; to++ {
				nd.Send(to, Packet{1, 2, 3})
			}
		}
		_, err := nd.Exchange()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	m := nw.Metrics()
	if m.Rounds != 2 || len(m.PerRound) != 2 {
		t.Fatalf("rounds = %d, per-round entries = %d", m.Rounds, len(m.PerRound))
	}
	r1, r2 := m.PerRound[0], m.PerRound[1]
	if r1.Messages != n || r1.Words != 2*n || r1.MaxNodeRecvWords != 2*n || r1.MaxEdgeWords != 2 {
		t.Fatalf("round 1 stats wrong: %+v", r1)
	}
	if r2.Messages != n || r2.Words != 3*n || r2.MaxNodeSentWords != 3*n || r2.MaxEdgeWords != 3 {
		t.Fatalf("round 2 stats wrong: %+v", r2)
	}
	if m.MaxEdgeWords != 3 {
		t.Fatalf("overall max edge words = %d, want 3", m.MaxEdgeWords)
	}
}

func TestSendToInvalidDestinationPanics(t *testing.T) {
	t.Parallel()
	nw, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	err = nw.Run(func(nd *Node) error {
		if nd.ID() == 0 {
			nd.Send(7, Packet{1})
		}
		_, err := nd.Exchange()
		return err
	})
	if err == nil {
		t.Fatal("sending to an invalid destination should surface an error via panic recovery")
	}
}

func TestInboxHelpers(t *testing.T) {
	t.Parallel()
	var in Inbox
	if in.Count() != 0 || in.Words() != 0 || in.Single(3) != nil || in.From(1) != nil {
		t.Fatal("nil inbox helpers misbehave")
	}
	in = Inbox{nil, {Packet{1, 2}}, {Packet{3}, Packet{4, 5, 6}}}
	if in.Count() != 3 {
		t.Fatalf("count = %d, want 3", in.Count())
	}
	if in.Words() != 6 {
		t.Fatalf("words = %d, want 6", in.Words())
	}
	if p := in.Single(2); p == nil || p[0] != 3 {
		t.Fatalf("single(2) = %v", p)
	}
	if in.Single(0) != nil {
		t.Fatal("single(0) should be nil")
	}
	if in.From(10) != nil {
		t.Fatal("From out of range should be nil")
	}
}

func TestPacketClone(t *testing.T) {
	t.Parallel()
	var nilPacket Packet
	if nilPacket.Clone() != nil {
		t.Fatal("clone of nil should be nil")
	}
	p := Packet{1, 2, 3}
	q := p.Clone()
	q[0] = 99
	if p[0] != 1 {
		t.Fatal("clone shares storage")
	}
}
