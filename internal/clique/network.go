package clique

import (
	"errors"
	"fmt"
	"sync"
)

// ErrBandwidthExceeded is wrapped by the error returned when a strict edge
// budget (WithStrictEdgeBudget) is violated.
var ErrBandwidthExceeded = errors.New("per-edge bandwidth budget exceeded")

// Exchanger is the communication surface node programs are written against.
// It is implemented by *Node (a physical clique node) and by *VNode (a
// virtual node multiplexing one logical protocol instance onto a physical
// node, see Mux).
type Exchanger interface {
	// ID returns the node's identifier in 0..N()-1.
	ID() int
	// N returns the number of nodes in the clique.
	N() int
	// Round returns the number of round barriers this node has completed.
	Round() int
	// Send queues one packet for delivery to node to at the next barrier.
	// Sending to oneself is allowed (and used by the algorithms to keep the
	// presentation uniform, matching the paper's convention).
	Send(to int, data Packet)
	// Exchange blocks until every active node has reached the barrier, then
	// returns everything this node received in the round, indexed by sender.
	Exchange() (Inbox, error)
	// CountSteps adds k to this node's self-reported local-computation step
	// counter (Section 5 accounting). It is a no-op for k <= 0.
	CountSteps(k int)
	// ReportMemory records a self-reported resident memory footprint in words;
	// the per-node maximum is kept (Section 5 accounting).
	ReportMemory(words int)
	// SharedCompute returns the result of f, memoising it under key when the
	// shared deterministic-computation cache is enabled. Every node calling
	// SharedCompute with the same key must supply a function computing the
	// same (deterministic) value; the cache only removes redundant
	// recomputation in the simulator, it does not communicate.
	SharedCompute(key string, f func() interface{}) interface{}
}

// Network is an in-process simulation of a congested clique of n nodes.
type Network struct {
	n   int
	cfg config

	mu      sync.Mutex
	cond    *sync.Cond
	started bool
	active  int
	arrived int
	round   int
	failed  error

	// outboxes[i] holds the packets queued by node i in the current round.
	outboxes [][]pendingPacket
	// inboxes[i] is what node i received in the round that just completed.
	inboxes []Inbox
	// departed[i] reports that node i's program has returned.
	departed []bool

	// scratch buffers reused by the delivery step.
	recvWords []int
	edgeWords map[edge]int
	edgeMsgs  map[edge]int

	metrics Metrics

	sharedMu sync.Mutex
	shared   map[string]interface{}

	stepsMu sync.Mutex
	steps   map[int]int64
	memory  map[int]int64
}

type edge struct{ from, to int }

// New creates a congested clique with n >= 1 nodes.
func New(n int, opts ...Option) (*Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("clique: need at least one node, got %d", n)
	}
	cfg := defaultConfig()
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	nw := &Network{
		n:         n,
		cfg:       cfg,
		active:    0,
		outboxes:  make([][]pendingPacket, n),
		inboxes:   make([]Inbox, n),
		departed:  make([]bool, n),
		recvWords: make([]int, n),
		edgeWords: make(map[edge]int),
		edgeMsgs:  make(map[edge]int),
		shared:    make(map[string]interface{}),
		steps:     make(map[int]int64),
		memory:    make(map[int]int64),
	}
	nw.cond = sync.NewCond(&nw.mu)
	return nw, nil
}

// N returns the number of nodes.
func (nw *Network) N() int { return nw.n }

// Metrics returns a copy of the execution metrics collected so far. It is
// normally called after Run has returned.
func (nw *Network) Metrics() Metrics {
	nw.mu.Lock()
	m := nw.metrics.clone()
	nw.mu.Unlock()

	nw.stepsMu.Lock()
	for _, s := range nw.steps {
		if s > m.MaxStepsPerNode {
			m.MaxStepsPerNode = s
		}
	}
	for _, w := range nw.memory {
		if w > m.MaxMemoryWordsPerNode {
			m.MaxMemoryWordsPerNode = w
		}
	}
	nw.stepsMu.Unlock()
	return m
}

// Rounds returns the number of completed rounds.
func (nw *Network) Rounds() int {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.round
}

// StepsPerNode returns the self-reported computation steps of every node.
func (nw *Network) StepsPerNode() map[int]int64 {
	nw.stepsMu.Lock()
	defer nw.stepsMu.Unlock()
	out := make(map[int]int64, len(nw.steps))
	for id, s := range nw.steps {
		out[id] = s
	}
	return out
}

// Run executes program once per node, each in its own goroutine, and waits
// for all of them to return. It returns the first error produced by any node
// program, a bandwidth violation, or nil. Run may only be called once per
// Network.
func (nw *Network) Run(program func(*Node) error) error {
	nw.mu.Lock()
	if nw.started {
		nw.mu.Unlock()
		return errors.New("clique: Network.Run called twice")
	}
	nw.started = true
	nw.active = nw.n
	nw.mu.Unlock()

	errs := make([]error, nw.n)
	var wg sync.WaitGroup
	for i := 0; i < nw.n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			nd := &Node{nw: nw, id: id}
			defer nw.leave(nd)
			defer func() {
				if r := recover(); r != nil {
					errs[id] = fmt.Errorf("clique: node %d panicked: %v", id, r)
				}
			}()
			errs[id] = program(nd)
		}(i)
	}
	wg.Wait()

	nw.mu.Lock()
	failed := nw.failed
	nw.mu.Unlock()

	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return failed
}

// Node is one physical node of the clique. A Node must only be used from the
// goroutine running its program.
type Node struct {
	nw       *Network
	id       int
	pending  []pendingPacket
	round    int
	departed bool
	steps    int64
	memory   int64
}

var _ Exchanger = (*Node)(nil)

// ID returns the node identifier (0-based).
func (nd *Node) ID() int { return nd.id }

// N returns the clique size.
func (nd *Node) N() int { return nd.nw.n }

// Round returns the number of rounds this node has completed.
func (nd *Node) Round() int { return nd.round }

// Send queues a packet for node to; it is delivered at the next Exchange.
func (nd *Node) Send(to int, data Packet) {
	if to < 0 || to >= nd.nw.n {
		panic(fmt.Sprintf("clique: node %d sent to invalid destination %d (n=%d)", nd.id, to, nd.nw.n))
	}
	nd.pending = append(nd.pending, pendingPacket{to: to, data: data})
}

// Broadcast queues the same packet for every node, including the sender.
func (nd *Node) Broadcast(data Packet) {
	for to := 0; to < nd.nw.n; to++ {
		nd.Send(to, data)
	}
}

// CountSteps adds k self-reported computation steps.
func (nd *Node) CountSteps(k int) {
	if k > 0 {
		nd.steps += int64(k)
	}
}

// ReportMemory records a self-reported resident word count; the maximum over
// the execution is kept.
func (nd *Node) ReportMemory(words int) {
	if int64(words) > nd.memory {
		nd.memory = int64(words)
	}
}

// SharedCompute memoises a deterministic computation across nodes (see
// Exchanger).
func (nd *Node) SharedCompute(key string, f func() interface{}) interface{} {
	if !nd.nw.cfg.sharedCache {
		return f()
	}
	nw := nd.nw
	nw.sharedMu.Lock()
	if v, ok := nw.shared[key]; ok {
		nw.sharedMu.Unlock()
		return v
	}
	nw.sharedMu.Unlock()
	// Compute outside the lock: colorings can be expensive and the value is
	// deterministic, so racing computations produce identical results.
	v := f()
	nw.sharedMu.Lock()
	if prev, ok := nw.shared[key]; ok {
		v = prev
	} else {
		nw.shared[key] = v
	}
	nw.sharedMu.Unlock()
	return v
}

// Exchange implements the synchronous round barrier.
func (nd *Node) Exchange() (Inbox, error) {
	nw := nd.nw
	nw.mu.Lock()
	if nw.failed != nil {
		err := nw.failed
		nw.mu.Unlock()
		return nil, err
	}
	if nd.departed {
		nw.mu.Unlock()
		return nil, errors.New("clique: Exchange called after node program returned")
	}

	// Publish this node's outbox.
	nw.outboxes[nd.id] = nd.pending
	nd.pending = nil

	generation := nw.round
	nw.arrived++
	if nw.arrived == nw.active {
		nw.deliverLocked()
	} else {
		for nw.round == generation && nw.failed == nil {
			nw.cond.Wait()
		}
	}
	if nw.failed != nil {
		err := nw.failed
		nw.mu.Unlock()
		return nil, err
	}
	inbox := nw.inboxes[nd.id]
	nw.inboxes[nd.id] = nil
	nw.mu.Unlock()

	nd.round++
	return inbox, nil
}

// leave removes a node from the barrier once its program has returned. If the
// node was the last one every other active node was waiting on, the round is
// completed on its behalf.
func (nw *Network) leave(nd *Node) {
	nw.stepsMu.Lock()
	nw.steps[nd.id] = nd.steps
	nw.memory[nd.id] = nd.memory
	nw.stepsMu.Unlock()

	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nd.departed {
		return
	}
	nd.departed = true
	nw.departed[nd.id] = true
	nw.active--
	if nw.active > 0 && nw.arrived == nw.active && nw.failed == nil {
		nw.deliverLocked()
	}
	if nw.active == 0 {
		nw.cond.Broadcast()
	}
}

// deliverLocked completes the current round: it moves every queued packet
// into the destination inbox, computes the round statistics, and wakes up all
// waiting nodes. Callers must hold nw.mu.
func (nw *Network) deliverLocked() {
	stats := RoundStats{}
	for i := range nw.recvWords {
		nw.recvWords[i] = 0
	}
	clear(nw.edgeWords)
	clear(nw.edgeMsgs)

	for from := 0; from < nw.n; from++ {
		out := nw.outboxes[from]
		if len(out) == 0 {
			continue
		}
		sentWords := 0
		for _, pp := range out {
			if nw.departed[pp.to] {
				nw.metrics.DroppedToDeparted++
				continue
			}
			if nw.inboxes[pp.to] == nil {
				nw.inboxes[pp.to] = make(Inbox, nw.n)
			}
			nw.inboxes[pp.to][from] = append(nw.inboxes[pp.to][from], pp.data)

			w := len(pp.data)
			stats.Messages++
			stats.Words += w
			sentWords += w
			nw.recvWords[pp.to] += w
			e := edge{from: from, to: pp.to}
			nw.edgeWords[e] += w
			nw.edgeMsgs[e]++
		}
		if sentWords > stats.MaxNodeSentWords {
			stats.MaxNodeSentWords = sentWords
		}
		nw.outboxes[from] = nil
	}
	for _, w := range nw.recvWords {
		if w > stats.MaxNodeRecvWords {
			stats.MaxNodeRecvWords = w
		}
	}
	var worstEdge edge
	for e, w := range nw.edgeWords {
		if w > stats.MaxEdgeWords {
			stats.MaxEdgeWords = w
			worstEdge = e
		}
	}
	for _, c := range nw.edgeMsgs {
		if c > stats.MaxEdgeMessages {
			stats.MaxEdgeMessages = c
		}
	}

	if nw.cfg.maxWordsPerEdge > 0 && stats.MaxEdgeWords > nw.cfg.maxWordsPerEdge {
		nw.failed = fmt.Errorf("clique: round %d: edge %d->%d carried %d words, budget %d: %w",
			nw.round, worstEdge.from, worstEdge.to, stats.MaxEdgeWords, nw.cfg.maxWordsPerEdge, ErrBandwidthExceeded)
	}

	if nw.cfg.recordPerRound {
		nw.metrics.merge(stats)
	} else {
		saved := nw.metrics.PerRound
		nw.metrics.merge(stats)
		nw.metrics.PerRound = saved
	}

	nw.round++
	nw.arrived = 0
	nw.cond.Broadcast()
}
