package clique

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrBandwidthExceeded is wrapped by the error returned when a strict edge
// budget (WithStrictEdgeBudget) is violated.
var ErrBandwidthExceeded = errors.New("per-edge bandwidth budget exceeded")

// Exchanger is the communication surface node programs are written against.
// It is implemented by *Node (a physical clique node) and by *VNode (a
// virtual node multiplexing one logical protocol instance onto a physical
// node, see Mux).
type Exchanger interface {
	// ID returns the node's identifier in 0..N()-1.
	ID() int
	// N returns the number of nodes in the clique.
	N() int
	// Round returns the number of round barriers this node has completed.
	Round() int
	// Send queues one packet for delivery to node to at the next barrier.
	// Sending to oneself is allowed (and used by the algorithms to keep the
	// presentation uniform, matching the paper's convention).
	Send(to int, data Packet)
	// SendFramed queues one physical packet that carries count logical model
	// messages totalling modelWords payload words. The engine delivers all
	// len(data) words but charges only modelWords (plus any per-message
	// overhead the transport itself adds, such as the Mux instance tag)
	// against the per-edge accounting, and counts count messages. This is the
	// accounting hook of the flat-frame protocol layer: a frame's few words
	// of length bookkeeping are simulator framing, not model traffic, so
	// batching must not change Stats.MaxEdgeWords. Send(to, data) is
	// equivalent to SendFramed(to, data, 1, len(data)).
	SendFramed(to int, data Packet, count, modelWords int)
	// Exchange blocks until every active node has reached the barrier, then
	// returns everything this node received in the round, indexed by sender.
	Exchange() (Inbox, error)
	// CountSteps adds k to this node's self-reported local-computation step
	// counter (Section 5 accounting). It is a no-op for k <= 0.
	CountSteps(k int)
	// ReportMemory records a self-reported resident memory footprint in words;
	// the per-node maximum is kept (Section 5 accounting).
	ReportMemory(words int)
	// SharedCompute returns the result of f, memoising it under key when the
	// shared deterministic-computation cache is enabled. Every node calling
	// SharedCompute with the same key must supply a function computing the
	// same (deterministic) value; the cache only removes redundant
	// recomputation in the simulator, it does not communicate.
	SharedCompute(key string, f func() interface{}) interface{}
	// SharedComputeKeyed is SharedCompute with a structured key, so protocol
	// round loops can address the cache without building strings.
	SharedComputeKeyed(key SharedKey, f func() interface{}) interface{}
}

// FlatExchanger is implemented by exchangers that additionally offer the flat
// receive path: ExchangeFlat returns the round's traffic as raw [from, len,
// payload...] records instead of an assembled Inbox. Both the physical Node
// and the Mux's VNode implement it, so the flat-frame protocol layer can use
// the cheap receive representation whether it runs directly on the engine or
// multiplexed on a virtual node.
type FlatExchanger interface {
	Exchanger
	// ExchangeFlat is Exchange returning the round's packets as a FlatInbox.
	ExchangeFlat() (FlatInbox, error)
}

// FrameTagger is implemented by exchangers whose wire frames carry a leading
// instance-tag word — the Mux's virtual nodes when they run directly on the
// engine. A sender that can build the tag into its frames avoids the copy
// SendFramed would otherwise make to prepend it, and a receiver reading the
// (shared) FlatInbox of such an exchanger must filter records by the tag and
// strip it before decoding. FrameTag reports ok == false when the exchanger
// does not use tagged frames this way (a physical node, or a virtual node
// whose underlying exchanger is itself tagged); callers then fall back to
// SendFramed and receive pre-demultiplexed, untagged records.
type FrameTagger interface {
	// FrameTag returns the tag word senders must place in data[0] of
	// SendTagged frames and receivers must filter ExchangeFlat records by.
	FrameTag() (tag Word, ok bool)
	// SendTagged queues one pre-tagged frame (data[0] must equal the tag).
	// Accounting matches SendFramed plus one tag word per logical message,
	// exactly as if the exchanger had prepended the tag itself. The frame
	// must stay valid until the sender's next exchange on this instance
	// returns; instances must not close with tagged sends still queued.
	SendTagged(to int, data Packet, count, modelWords int)
}

// SharedKey identifies one shared deterministic computation without string
// formatting: Label scopes the protocol instance, Path encodes the
// algorithm's call path as packed step codes, and Group discriminates
// concurrent groups of the same step (-1 when the step is instance-wide).
type SharedKey struct {
	Label string
	Path  uint64
	Group int32
}

// generation is one epoch of the round barrier. Nodes that arrive before the
// round is complete park on done; the round's deliverer closes it after
// swapping outboxes into inboxes, which both wakes the waiters and publishes
// (in the memory-model sense) everything the delivery phase wrote.
type generation struct {
	done     chan struct{}
	released atomic.Bool
}

// release closes done exactly once. The barrier has two legitimate releasers
// — the round's deliverer (or a failing node completing the round on a
// straggler's behalf) and the round watchdog — and they may race, so every
// close of a generation goes through this CAS.
func (g *generation) release() {
	if g.released.CompareAndSwap(false, true) {
		close(g.done)
	}
}

// failure boxes the first engine-level error so it can live in an
// atomic.Pointer.
type failure struct{ err error }

// inboxSeg is one contiguous run of a receiver's header arena holding the
// packets of a single sender (worker-pool mode only).
type inboxSeg struct {
	from       int32
	start, end int32
}

// activeOne is the increment of the live-node half of Network.state.
const activeOne = uint64(1) << 32

// recvScratch is the per-receiver round state of the deliverer: the sender
// of the receiver's currently open header-arena segment, the segment start,
// and the words received so far this round.
type recvScratch struct {
	lastFrom int32
	segStart int32
	words    int32
}

// payloadRingDepth is the number of per-receiver payload arenas cycled
// through by delivery. Words received in round r are only overwritten when
// round r+payloadRingDepth is delivered, so received payloads stay readable
// for payloadGraceRounds further barriers — enough for the paper's
// constant-round primitives (for example Corollary 3.4: two announcement
// rounds before re-sending received words) to re-send received words without
// cloning. Retention beyond the grace window requires Packet.Clone.
const payloadRingDepth = 4

// PayloadGraceRounds is the number of additional Exchange calls a received
// packet's words are guaranteed to stay valid for (see payloadRingDepth).
const PayloadGraceRounds = payloadRingDepth - 1

func stateParts(s uint64) (active, arrived uint32) {
	return uint32(s >> 32), uint32(s)
}

// Network is an in-process simulation of a congested clique of n nodes.
//
// The execution engine is a sharded two-phase design. During the compute
// phase every node appends to a private outbox with no synchronisation at
// all. At the barrier a node publishes its outbox into its own slot and
// arrives with a single atomic add on state, which packs the number of live
// nodes (high 32 bits) and the number of arrived nodes (low 32 bits); the
// arrival that makes the two halves equal elects that goroutine the round's
// deliverer. Delivery therefore runs while every other live node is parked on
// the current generation's channel, so it swaps outboxes into inboxes and
// computes the round statistics without holding any lock, and no lock is ever
// held, contended or otherwise, while a node computes.
//
// Delivery copies payload words into per-receiver arenas cycled on a
// payloadRingDepth-round ring (so received words stay valid for
// PayloadGraceRounds further barriers and can be re-sent without cloning),
// and tracks per-edge load in dense per-node scratch slices: O(1) per packet
// with no hashing and no per-round allocation in steady state.
type Network struct {
	n   int
	cfg config

	// buffers is the pooled delivery state backing the slices below; it is
	// owned by the Network across runs and returned to the pool by Close.
	buffers *netBuffers

	// running doubles as the mutual-exclusion latch for Run/RunRounds/Close:
	// at most one of them holds it at a time, so a Network supports an
	// unbounded sequence of runs but never two concurrently. closed marks the
	// Network permanently unusable once Close has released the buffers.
	running atomic.Bool
	closed  atomic.Bool
	// runs counts completed calls to Run/RunRounds; the per-run state reset
	// happens lazily at the start of every run after the first.
	runs int

	state atomic.Uint64
	gen   atomic.Pointer[generation]
	round atomic.Int64
	fail  atomic.Pointer[failure]

	// outboxes[i] is published by node i when it arrives at the barrier and
	// consumed (and nilled) by the deliverer.
	outboxes [][]pendingPacket
	// inboxes[i] is set by the deliverer iff node i received traffic this
	// round; the owner consumes and nils it after the barrier.
	inboxes  []Inbox
	departed []bool
	// flat[i] is published by node i alongside its outbox: true when the node
	// called ExchangeFlat for this round, making delivery write its traffic
	// as flat [from, len, payload...] records into the word arena instead of
	// building an Inbox (no header arena, no backbone, no segment tracking).
	flat []bool

	// Per-receiver delivery buffers, reused round over round. backbone[t] is
	// the Inbox handed to node t and hdrArena[t] holds the packet headers;
	// both are retired (cleared or resliced, keeping capacity) by the owning
	// node when it next arrives at the barrier. wordArena[r%payloadRingDepth][t]
	// holds the payload words copied for node t in round r; the ring keeps
	// received words valid for PayloadGraceRounds further barriers. Growth is
	// append-only, so views created before a reallocation stay valid.
	backbone  []Inbox
	hdrArena  [][]Packet
	wordArena [payloadRingDepth][][]Word

	// Deliverer scratch, indexed densely by node id. destLoad packs the
	// per-edge (words, messages) load of the sender currently being scanned
	// (reset via edgeTouch); recv packs the per-receiver round state into one
	// cache line per receiver (reset via recvTouch) — the delivery loop's
	// per-packet cost is dominated by these random accesses.
	destLoad  []uint64
	recv      []recvScratch
	edgeTouch []int32
	recvTouch []int32
	// setFrom[t] lists the backbone entries populated for receiver t this
	// round, so retire clears O(traffic) entries instead of all n.
	setFrom [][]int32

	// Worker-pool mode (RunRounds). An inbox there is only alive during one
	// step call, so instead of a persistent n-entry backbone per receiver
	// (Θ(n²) memory), delivery records per-receiver segment lists and each
	// worker materialises them into its own scratch backbone just for the
	// step call: O(traffic + workers·n) memory. segs is non-nil exactly in
	// worker-pool mode.
	segs [][]inboxSeg

	// sem, when non-nil, bounds the number of concurrently computing node
	// goroutines in Run (see WithWorkers).
	sem chan struct{}

	// Fault injection and round watchdog (see fault.go). pendingFaults is
	// armed by SetFaultPlan and consumed into faults by the next beginRun;
	// failCh, allocated only for runs whose plan contains a stall, is closed
	// by the first failure so injected stalls are interruptible. arrivals is
	// the watchdog's per-node barrier-arrival tracker (allocated once, on the
	// first deadline-enabled run); the wd* channels drive the persistent
	// watchdog goroutine, which exists from the first such run until Close.
	pendingFaults *FaultPlan
	faults        *FaultPlan

	// pendingSeed is a shared-computation snapshot armed by ArmSharedSeed
	// and consumed by the next beginRun: its entries pre-populate sharedK
	// after resetRun has cleared it, so a validated plan-cache hit can reuse
	// colorings without weakening the per-run scoping invariant (the seed is
	// applied once, for exactly the run it was armed for).
	pendingSeed SharedSnapshot
	failCh      chan struct{}
	arrivals    []atomic.Int32
	wdKick      chan struct{}
	wdHalt      chan struct{}
	wdAck       chan struct{}
	wdStarted   bool

	metricsMu sync.Mutex
	metrics   Metrics
	cum       Cumulative

	sharedMu sync.Mutex
	shared   map[string]interface{}
	sharedK  map[SharedKey]interface{}

	stepsMu sync.Mutex
	steps   map[int]int64
	memory  map[int]int64
}

// netBuffers is the recyclable delivery state of a Network. The per-receiver
// arenas — the dominant allocation of a fresh Network — are owned by the
// Network for its whole multi-run lifetime and returned to the pool by
// Close, so both one-shot calls (handle per call, closed immediately) and
// long-lived sessions amortise them. Recycling is what bounds the documented
// packet lifetime: once the next run starts (or Close returns), the arenas
// may be overwritten.
type netBuffers struct {
	n         int
	outboxes  [][]pendingPacket
	inboxes   []Inbox
	departed  []bool
	flat      []bool
	backbone  []Inbox
	hdrArena  [][]Packet
	wordArena [payloadRingDepth][][]Word
	recv      []recvScratch
	destLoad  []uint64
	edgeTouch []int32
	recvTouch []int32
	setFrom   [][]int32
	// nodes and pending recycle the per-run node state of the blocking Run
	// path: the Node structs themselves and each node's outbox backing array
	// (cleared of packet references at leave so no payload memory is
	// retained), so a run on a warm engine allocates neither.
	nodes   []Node
	pending [][]pendingPacket
}

var netBufPool = sync.Pool{New: func() interface{} { return new(netBuffers) }}

// acquireNetBuffers returns a buffer set for n nodes, reallocating the dense
// arrays only when the pooled set is too small.
func acquireNetBuffers(n int) *netBuffers {
	b := netBufPool.Get().(*netBuffers)
	if b.n < n {
		b.outboxes = make([][]pendingPacket, n)
		b.inboxes = make([]Inbox, n)
		b.departed = make([]bool, n)
		b.flat = make([]bool, n)
		b.backbone = make([]Inbox, n)
		b.hdrArena = make([][]Packet, n)
		for p := range b.wordArena {
			b.wordArena[p] = make([][]Word, n)
		}
		b.recv = make([]recvScratch, n)
		b.destLoad = make([]uint64, n)
		b.setFrom = make([][]int32, n)
		b.nodes = make([]Node, n)
		b.pending = make([][]pendingPacket, n)
		b.n = n
	}
	for i := 0; i < n; i++ {
		b.recv[i].lastFrom = -1
		b.recv[i].words = 0
		b.departed[i] = false
		b.flat[i] = false
		b.destLoad[i] = 0
		b.outboxes[i] = nil
		b.inboxes[i] = nil
		// Inner backbones are sized for the network that created them; one
		// inherited from a smaller network must not be indexed by a larger
		// one (delivery would index backbone[to][from] out of range).
		if len(b.backbone[i]) < n {
			b.backbone[i] = nil
		}
	}
	return b
}

// releaseBuffers cleans the delivery state left over from the final rounds
// (whose inboxes were never retired by the departed nodes) and returns it to
// the pool. It is called by Close; after this point any packet views
// previously handed out may be overwritten by a future Network.
func (nw *Network) releaseBuffers() {
	b := nw.buffers
	if b == nil {
		return
	}
	nw.buffers = nil
	n := nw.n
	for t := 0; t < n; t++ {
		if bb := b.backbone[t]; bb != nil {
			for _, f := range b.setFrom[t] {
				bb[f] = nil
			}
			b.setFrom[t] = b.setFrom[t][:0]
		}
		// A run that failed between publish and delivery (injected
		// cancellation, watchdog fire, delivery panic) leaves published
		// outboxes unconsumed; their pendingPacket entries reference
		// caller-owned payload memory, which a pooled buffer set must never
		// pin. Clear the full backing arrays, not just the live prefixes.
		if out := b.outboxes[t]; out != nil {
			clear(out[:cap(out)])
			b.outboxes[t] = nil
		}
		b.inboxes[t] = nil
		ha := b.hdrArena[t]
		clear(ha[:cap(ha)])
		b.hdrArena[t] = ha[:0]
		for p := range b.wordArena {
			if b.wordArena[p][t] != nil {
				b.wordArena[p][t] = b.wordArena[p][t][:0]
			}
		}
	}
	b.edgeTouch = nw.edgeTouch[:0]
	b.recvTouch = nw.recvTouch[:0]
	netBufPool.Put(b)
}

// New creates a congested clique with n >= 1 nodes. The Network supports an
// unbounded sequence of (non-overlapping) Run/RunRounds calls; call Close
// when done to return its pooled delivery buffers.
func New(n int, opts ...Option) (*Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("clique: need at least one node, got %d", n)
	}
	cfg := defaultConfig()
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	b := acquireNetBuffers(n)
	nw := &Network{
		n:         n,
		cfg:       cfg,
		buffers:   b,
		outboxes:  b.outboxes,
		inboxes:   b.inboxes,
		departed:  b.departed,
		flat:      b.flat,
		backbone:  b.backbone,
		hdrArena:  b.hdrArena,
		wordArena: b.wordArena,
		recv:      b.recv,
		destLoad:  b.destLoad,
		edgeTouch: b.edgeTouch,
		recvTouch: b.recvTouch,
		setFrom:   b.setFrom,
		shared:    make(map[string]interface{}),
		sharedK:   make(map[SharedKey]interface{}),
		steps:     make(map[int]int64),
		memory:    make(map[int]int64),
	}
	nw.gen.Store(&generation{done: make(chan struct{})})
	return nw, nil
}

// N returns the number of nodes.
func (nw *Network) N() int { return nw.n }

// beginRun takes the run latch and, for every run after the first, resets the
// per-run engine state. It fails when another run is in flight or the Network
// has been closed.
func (nw *Network) beginRun() error {
	if !nw.running.CompareAndSwap(false, true) {
		return errors.New("clique: Run called while another run is in progress")
	}
	if nw.closed.Load() {
		nw.running.Store(false)
		return errors.New("clique: Run called on closed Network")
	}
	if nw.runs > 0 {
		nw.resetRun()
	}
	nw.runs++
	// Consume the armed fault plan (if any): it applies to this run only.
	// The failure-broadcast channel is allocated only when the plan stalls a
	// node, keeping the fault-free path allocation-free.
	nw.faults = nw.pendingFaults
	nw.pendingFaults = nil
	nw.failCh = nil
	if nw.faults.hasStall() {
		nw.failCh = make(chan struct{})
	}
	// Apply the armed shared-computation seed (if any) after resetRun has
	// cleared the cache: the seed belongs to exactly this run.
	if nw.pendingSeed.keyed != nil {
		nw.sharedMu.Lock()
		for k, v := range nw.pendingSeed.keyed {
			nw.sharedK[k] = v
		}
		nw.sharedMu.Unlock()
		nw.pendingSeed = SharedSnapshot{}
	}
	return nil
}

// endRun releases the run latch and, if the run completed without error,
// folds its metrics into the cumulative totals — failed or cancelled runs
// are not counted as completed operations (their per-run Metrics stay
// readable until the next run starts, but the session aggregate only speaks
// for runs that finished). completed is false for error returns.
func (nw *Network) endRun(completed bool) {
	if completed {
		m := nw.Metrics()
		nw.metricsMu.Lock()
		nw.cum.accumulate(m)
		nw.metricsMu.Unlock()
	}
	nw.running.Store(false)
}

// resetRun restores every piece of per-run state — barrier generation and
// arrival counter, failure slot, round counter, metrics, delivery arenas,
// shared-computation cache and step accounting — so the next run starts from
// the same state a fresh Network would, while keeping the allocated capacity
// of every buffer and map. The shared cache must not survive a run: the
// memoised values are colorings of this run's demand matrices, which depend
// on the instance data, not only on n. The one sanctioned way to carry
// values across runs is ArmSharedSeed, which re-populates the cleared cache
// for exactly one run — and only after the session's plan cache has verified
// the new run executes the identical instance (validate-on-hit).
func (nw *Network) resetRun() {
	b := nw.buffers
	for t := 0; t < nw.n; t++ {
		if bb := b.backbone[t]; bb != nil {
			for _, f := range b.setFrom[t] {
				bb[f] = nil
			}
			b.setFrom[t] = b.setFrom[t][:0]
		}
		b.hdrArena[t] = b.hdrArena[t][:0]
		for p := range b.wordArena {
			if b.wordArena[p][t] != nil {
				b.wordArena[p][t] = b.wordArena[p][t][:0]
			}
		}
		b.recv[t].lastFrom = -1
		b.recv[t].words = 0
		b.departed[t] = false
		b.flat[t] = false
		b.destLoad[t] = 0
		b.outboxes[t] = nil
		b.inboxes[t] = nil
	}
	nw.edgeTouch = nw.edgeTouch[:0]
	nw.recvTouch = nw.recvTouch[:0]
	nw.segs = nil
	nw.sem = nil
	nw.round.Store(0)
	nw.fail.Store(nil)
	nw.gen.Store(&generation{done: make(chan struct{})})

	nw.sharedMu.Lock()
	clear(nw.shared)
	clear(nw.sharedK)
	nw.sharedMu.Unlock()

	nw.stepsMu.Lock()
	clear(nw.steps)
	clear(nw.memory)
	nw.stepsMu.Unlock()

	nw.metricsMu.Lock()
	nw.metrics = Metrics{PerRound: nw.metrics.PerRound[:0]}
	nw.metricsMu.Unlock()
}

// Close releases the Network's pooled delivery buffers and marks it unusable.
// It must not be called while a run is in progress. Close is idempotent; any
// packet views handed out by previous runs expire at the latest here (a
// future Network may recycle the buffers).
func (nw *Network) Close() error {
	if !nw.running.CompareAndSwap(false, true) {
		return errors.New("clique: Close called while a run is in progress")
	}
	defer nw.running.Store(false)
	if nw.closed.Load() {
		return nil
	}
	nw.closed.Store(true)
	nw.closeWatchdog()
	nw.releaseBuffers()
	return nil
}

// Metrics returns a copy of the execution metrics of the current (or most
// recently completed) run. It is normally called after Run has returned and
// before the next run starts; the per-run metrics reset at the start of
// every run. Use CumulativeMetrics for the across-run session totals.
func (nw *Network) Metrics() Metrics {
	nw.metricsMu.Lock()
	m := nw.metrics.clone()
	nw.metricsMu.Unlock()

	nw.stepsMu.Lock()
	for _, s := range nw.steps {
		if s > m.MaxStepsPerNode {
			m.MaxStepsPerNode = s
		}
	}
	for _, w := range nw.memory {
		if w > m.MaxMemoryWordsPerNode {
			m.MaxMemoryWordsPerNode = w
		}
	}
	nw.stepsMu.Unlock()
	return m
}

// CumulativeMetrics returns the aggregated cost of every successfully
// completed run on this Network: totals summed across runs, maxima taken
// over runs. A run in progress is not included until it completes, and runs
// that failed or were cancelled are never counted.
func (nw *Network) CumulativeMetrics() Cumulative {
	nw.metricsMu.Lock()
	defer nw.metricsMu.Unlock()
	return nw.cum
}

// Rounds returns the number of completed rounds of the current run.
func (nw *Network) Rounds() int { return int(nw.round.Load()) }

// StepsPerNode returns the self-reported computation steps of every node.
func (nw *Network) StepsPerNode() map[int]int64 {
	nw.stepsMu.Lock()
	defer nw.stepsMu.Unlock()
	out := make(map[int]int64, len(nw.steps))
	for id, s := range nw.steps {
		out[id] = s
	}
	return out
}

// Run executes program once per node, each in its own goroutine, and waits
// for all of them to return. It is equivalent to RunContext with a background
// context.
func (nw *Network) Run(program func(*Node) error) error {
	return nw.RunContext(context.Background(), program)
}

// RunContext executes program once per node, each in its own goroutine, and
// waits for all of them to return. A Network supports an unbounded sequence
// of runs (this is what the public session API builds on): each run starts
// from a fully reset engine while reusing the delivery arenas, the metric
// buffers and the cache maps of the previous one. Two runs must not overlap;
// a concurrent call fails immediately. Call Close when done with the Network
// to return its buffers to the pool.
//
// Cancelling ctx fails the run deterministically through the same path as a
// hardened delivery failure: the cancellation is recorded as the engine
// failure, the next barrier turn-over wakes every parked node instead of
// delivering, and all node programs observe an error wrapping ctx.Err() from
// their pending Exchange. No node is left stranded, and the Network remains
// usable for further runs afterwards.
//
// With WithRoundDeadline(d) a round watchdog additionally monitors barrier
// progress: a round that fails to turn over within d fails the run through
// the same release path with an error wrapping ErrRoundDeadline that names
// the unarrived nodes, instead of hanging the barrier forever. A fault plan
// armed with SetFaultPlan is consumed by this run (see FaultPlan).
//
// Error reporting is deterministic: if any node program returns an error (or
// panics, which is converted to an error), the error of the lowest-numbered
// failing node wins, regardless of the temporal order in which nodes failed.
// An engine-level failure (such as a strict edge-budget violation or a
// context cancellation) is returned only if no node program reported an
// error itself.
//
// A node panic — injected or real — fails the whole run fast: the crash is
// recorded as the run's root-cause failure before the crashed node's barrier
// slot is released, so every surviving node observes the "node X panicked"
// error at its next Exchange instead of continuing rounds with a silently
// missing member and failing later with a secondary protocol error. A node
// program that returns normally before its peers, by contrast, is a graceful
// departure: the others keep running.
//
// When WithWorkers(k) is set with 0 < k < n, at most k node goroutines
// compute concurrently; nodes parked at the round barrier release their slot.
// All n goroutines still exist (the blocking Exchange API requires a stack
// per node); use RunRounds to run n logical nodes on k goroutines.
func (nw *Network) RunContext(ctx context.Context, program func(*Node) error) error {
	if err := nw.beginRun(); err != nil {
		return err
	}
	completed := false
	defer func() { nw.endRun(completed) }()
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("clique: run cancelled: %w", err)
	}
	nw.state.Store(uint64(nw.n) << 32)
	if k := nw.cfg.workers; k > 0 && k < nw.n {
		nw.sem = make(chan struct{}, k)
		for i := 0; i < k; i++ {
			nw.sem <- struct{}{}
		}
	}

	// The watcher is reaped synchronously before the run returns: a
	// cancellation that races with run completion must either land in this
	// run's failure slot or nowhere, never in a later run's. The round
	// watchdog (when WithRoundDeadline is set) follows the same discipline
	// via its halt handshake.
	var stop chan struct{}
	var watch sync.WaitGroup
	if done := ctx.Done(); done != nil {
		stop = make(chan struct{})
		watch.Add(1)
		go func() {
			defer watch.Done()
			select {
			case <-done:
				nw.setFailure(fmt.Errorf("clique: run cancelled: %w", ctx.Err()))
			case <-stop:
			}
		}()
	}
	watching := nw.startWatchdogRun()

	errs := make([]error, nw.n)
	var wg sync.WaitGroup
	for i := 0; i < nw.n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Node structs and outbox backing arrays are recycled across
			// runs (see netBuffers.nodes); leave clears the packet
			// references when the node retires.
			nd := &nw.buffers.nodes[id]
			*nd = Node{nw: nw, id: id, pending: nw.buffers.pending[id]}
			if nw.sem != nil {
				<-nw.sem
				// A node outside the barrier always holds its compute slot, so
				// the unconditional release below is balanced.
				defer func() { nw.sem <- struct{}{} }()
			}
			defer nw.leave(nd)
			defer func() {
				if r := recover(); r != nil {
					errs[id] = nodePanicError(id, r)
					// A panic is a crash, not a retirement: record it as the
					// run's root-cause failure before leave releases the
					// barrier, so peers observe "node X panicked" at their
					// next Exchange instead of failing later with secondary
					// protocol errors about the silently missing member.
					nw.setFailure(errs[id])
				}
			}()
			errs[id] = program(nd)
		}(i)
	}
	wg.Wait()
	if watching {
		nw.stopWatchdogRun()
	}
	if stop != nil {
		close(stop)
		watch.Wait()
	}
	err := nw.firstError(errs)
	completed = err == nil
	return err
}

// firstError implements the documented deterministic error rule: lowest
// failing node id first, engine failure only if no program failed.
func (nw *Network) firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if f := nw.fail.Load(); f != nil {
		return f.err
	}
	return nil
}

// StepFunc is one node's program in the engine-driven scheduling mode of
// RunRounds. It is invoked once per round; inbox holds what the node received
// at the end of the previous round (nil in round 0) and is only valid for the
// duration of the call. Packets queued with nd.Send during the call are
// delivered at the end of the round. Returning done = true retires the node:
// its final sends are still delivered to nodes that remain active, but the
// retired node itself can no longer receive — packets addressed to it in its
// final round or later are dropped (and counted in DroppedToDeparted), since
// there is no future step call to hand them to. If every remaining node
// retires in the same round, that round's sends are discarded without
// delivery or accounting (mirroring the blocking API, where packets queued
// by a program that returns without exchanging are never published).
type StepFunc func(nd *Node, round int, inbox Inbox) (done bool, err error)

// RunRounds executes step for every node in synchronous rounds on a bounded
// pool of k worker goroutines (WithWorkers; defaults to GOMAXPROCS), instead
// of one goroutine per node as Run does. This is the scheduler to use for
// very large cliques: n >= 10^4 logical nodes run on a handful of goroutines
// with no parked stacks. Within a round each worker sweeps a contiguous shard
// of nodes; delivery and metrics are identical to Run, and executions are
// deterministic for any worker count. Like Run, it may be called repeatedly
// on one Network (never concurrently).
//
// Error reporting follows the same rule as Run: the lowest failing node id
// wins; an engine-level failure is returned only if no step failed. Node
// methods other than Exchange work as usual inside step; Exchange returns an
// error because the engine itself drives the barrier.
func (nw *Network) RunRounds(step StepFunc) error {
	return nw.RunRoundsContext(context.Background(), step)
}

// RunRoundsContext is RunRounds with cancellation: the engine-driven round
// loop checks ctx between rounds and fails the run with an error wrapping
// ctx.Err() as soon as a cancellation is observed (the current round's
// compute phase finishes first; no worker is left stranded).
func (nw *Network) RunRoundsContext(ctx context.Context, step StepFunc) error {
	if err := nw.beginRun(); err != nil {
		return err
	}
	completed := false
	defer func() { nw.endRun(completed) }()
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("clique: run cancelled: %w", err)
	}
	k := nw.cfg.workers
	if k <= 0 {
		k = runtime.GOMAXPROCS(0)
	}
	if k > nw.n {
		k = nw.n
	}

	nodes := make([]*Node, nw.n)
	for i := range nodes {
		nodes[i] = &Node{nw: nw, id: i, stepMode: true}
	}
	errs := make([]error, nw.n)
	nw.segs = make([][]inboxSeg, nw.n) // switches delivery to segment mode
	watching := nw.startWatchdogRun()

	type ack struct {
		left   int
		failed bool
	}
	starts := make([]chan int, k)
	acks := make(chan ack, k)
	var workers sync.WaitGroup
	for w := 0; w < k; w++ {
		starts[w] = make(chan int, 1)
		lo, hi := w*nw.n/k, (w+1)*nw.n/k
		workers.Add(1)
		go func(startCh chan int, lo, hi int) {
			defer workers.Done()
			// scratch holds the materialised inbox of the node currently
			// stepping; entries are cleared again right after the step call.
			scratch := make(Inbox, nw.n)
			for round := range startCh {
				var a ack
				for id := lo; id < hi; id++ {
					nd := nodes[id]
					if nd.departed {
						continue
					}
					if f := nw.faults.at(id, round); f != nil {
						switch f.Kind {
						case FaultPanic:
							// The injected crash surfaces exactly like a panic
							// inside step would: the node departs with the
							// fault-coordinate error and the round is never
							// delivered.
							errs[id] = nodePanicError(id, &injectedPanic{node: id, round: round})
							nw.setFailure(errs[id])
							a.failed = true
							nd.departed = true
							nw.departed[id] = true
							nw.noteArrival(id, 0, true)
							a.left++
							continue
						case FaultStall:
							nw.stallNode(f.Stall)
						}
					}
					var inbox Inbox
					if segs := nw.segs[id]; len(segs) > 0 {
						ha := nw.hdrArena[id]
						for _, s := range segs {
							scratch[s.from] = ha[s.start:s.end:s.end]
						}
						inbox = scratch
					}
					if nd.reclaim != nil {
						nd.pending = nd.reclaim[:0]
						nd.reclaim = nil
					}
					done, err := runStep(step, nd, round, inbox)
					if segs := nw.segs[id]; len(segs) > 0 {
						for _, s := range segs {
							scratch[s.from] = nil
						}
						nw.segs[id] = segs[:0]
					}
					nd.retire()
					nd.reclaim = nd.pending
					nw.outboxes[id] = nd.pending
					nd.pending = nil
					nd.round++
					if err != nil {
						errs[id] = err
						a.failed = true
						done = true
					}
					if done {
						nd.departed = true
						nw.departed[id] = true
						nw.noteArrival(id, 0, true)
						a.left++
					} else {
						nw.noteArrival(id, round, false)
					}
				}
				acks <- a
			}
		}(starts[w], lo, hi)
	}

	remaining := nw.n
	for round := 0; remaining > 0; round++ {
		if err := ctx.Err(); err != nil {
			nw.setFailure(fmt.Errorf("clique: run cancelled: %w", err))
			break
		}
		for _, ch := range starts {
			ch <- round
		}
		anyFailed := false
		for range starts {
			a := <-acks
			remaining -= a.left
			anyFailed = anyFailed || a.failed
		}
		if anyFailed {
			break
		}
		if remaining == 0 {
			// The final sends have no live receivers left; there is nothing
			// to deliver or account.
			break
		}
		if nw.faults.cancelAt(round) {
			// The injected cancellation lands at the exact turn-over, before
			// delivery — the same coordinate the blocking barrier uses.
			nw.setFailure(fmt.Errorf("clique: run cancelled at round %d turn-over: %w", round, ErrFaultInjected))
			break
		}
		nw.deliverRound()
		if nw.fail.Load() != nil {
			break
		}
	}
	for _, ch := range starts {
		close(ch)
	}
	workers.Wait()
	if watching {
		nw.stopWatchdogRun()
	}

	nw.stepsMu.Lock()
	for _, nd := range nodes {
		nw.steps[nd.id] = nd.steps
		nw.memory[nd.id] = nd.memory
	}
	nw.stepsMu.Unlock()

	err := nw.firstError(errs)
	completed = err == nil
	return err
}

// runStep invokes step with panic recovery, so one node's panic surfaces as
// that node's error instead of tearing down the whole process.
func runStep(step StepFunc, nd *Node, round int, inbox Inbox) (done bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			done, err = true, fmt.Errorf("clique: node %d panicked in round %d: %v", nd.id, round, r)
		}
	}()
	return step(nd, round, inbox)
}

// Node is one physical node of the clique. A Node must only be used from the
// goroutine running its program.
type Node struct {
	nw       *Network
	id       int
	round    int
	departed bool
	stepMode bool
	pending  []pendingPacket
	reclaim  []pendingPacket
	steps    int64
	memory   int64
}

var _ Exchanger = (*Node)(nil)

// ID returns the node identifier (0-based).
func (nd *Node) ID() int { return nd.id }

// N returns the clique size.
func (nd *Node) N() int { return nd.nw.n }

// Round returns the number of rounds this node has completed.
func (nd *Node) Round() int { return nd.round }

// Send queues a packet for node to; it is delivered at the next barrier. The
// engine copies the payload during delivery, so the caller may reuse or
// recycle data after its next Exchange returns, and a packet received this
// round may be forwarded verbatim without cloning.
func (nd *Node) Send(to int, data Packet) {
	if to < 0 || to >= nd.nw.n {
		panic(fmt.Sprintf("clique: node %d sent to invalid destination %d (n=%d)", nd.id, to, nd.nw.n))
	}
	nd.pending = append(nd.pending, pendingPacket{to: to, data: data, count: 1, model: int32(len(data))})
}

// SendFramed queues one physical packet carrying count logical messages with
// a total model cost of modelWords words (see Exchanger).
func (nd *Node) SendFramed(to int, data Packet, count, modelWords int) {
	if to < 0 || to >= nd.nw.n {
		panic(fmt.Sprintf("clique: node %d sent to invalid destination %d (n=%d)", nd.id, to, nd.nw.n))
	}
	// The model cost may exceed len(data): stacked transports (nested Mux
	// layers) charge per-message tag overhead that the frame carries only
	// once physically.
	if count < 1 || modelWords < 0 {
		panic(fmt.Sprintf("clique: node %d framed send with count %d, model %d", nd.id, count, modelWords))
	}
	nd.pending = append(nd.pending, pendingPacket{to: to, data: data, count: int32(count), model: int32(modelWords)})
}

// Broadcast queues the same packet for every node, including the sender.
func (nd *Node) Broadcast(data Packet) {
	for to := 0; to < nd.nw.n; to++ {
		nd.Send(to, data)
	}
}

// CountSteps adds k self-reported computation steps.
func (nd *Node) CountSteps(k int) {
	if k > 0 {
		nd.steps += int64(k)
	}
}

// ReportMemory records a self-reported resident word count; the maximum over
// the execution is kept.
func (nd *Node) ReportMemory(words int) {
	if int64(words) > nd.memory {
		nd.memory = int64(words)
	}
}

// SharedSnapshot is an immutable copy of a run's keyed shared-computation
// cache (colorings, balance plans), taken by CaptureShared after a run and
// re-applied to a later run by ArmSharedSeed. Snapshots may be shared across
// engines and goroutines: the map is never mutated after capture and the
// values it holds are the engine's memoised deterministic computations,
// which every consumer treats as read-only.
type SharedSnapshot struct {
	keyed map[SharedKey]interface{}
}

// Len returns the number of captured entries (for tests and introspection).
func (s SharedSnapshot) Len() int { return len(s.keyed) }

// CaptureShared copies the keyed shared-computation cache of the engine's
// most recent run. Memoised error values are skipped — a snapshot must only
// carry reusable results. Call it between runs (after RunContext returns).
func (nw *Network) CaptureShared() SharedSnapshot {
	nw.sharedMu.Lock()
	defer nw.sharedMu.Unlock()
	if len(nw.sharedK) == 0 {
		return SharedSnapshot{}
	}
	m := make(map[SharedKey]interface{}, len(nw.sharedK))
	for k, v := range nw.sharedK {
		if _, isErr := v.(error); isErr {
			continue
		}
		m[k] = v
	}
	return SharedSnapshot{keyed: m}
}

// ArmSharedSeed arms snap for this Network's next run: beginRun applies it
// after clearing the per-run cache, so exactly one run starts with the
// snapshot's entries pre-memoised. Passing an empty SharedSnapshot disarms.
// Like SetFaultPlan it must be called by the goroutine that starts the run,
// between runs. The caller is responsible for only seeding a run that
// executes the identical instance the snapshot was captured from — the
// session's plan cache establishes that via validate-on-hit.
func (nw *Network) ArmSharedSeed(snap SharedSnapshot) {
	nw.pendingSeed = snap
}

// SharedCompute memoises a deterministic computation across nodes (see
// Exchanger).
func (nd *Node) SharedCompute(key string, f func() interface{}) interface{} {
	if !nd.nw.cfg.sharedCache {
		return f()
	}
	nw := nd.nw
	nw.sharedMu.Lock()
	if v, ok := nw.shared[key]; ok {
		nw.sharedMu.Unlock()
		return v
	}
	nw.sharedMu.Unlock()
	// Compute outside the lock: colorings can be expensive and the value is
	// deterministic, so racing computations produce identical results.
	v := f()
	nw.sharedMu.Lock()
	if prev, ok := nw.shared[key]; ok {
		v = prev
	} else {
		nw.shared[key] = v
	}
	nw.sharedMu.Unlock()
	return v
}

// SharedComputeKeyed memoises a deterministic computation under a structured
// key (see Exchanger).
func (nd *Node) SharedComputeKeyed(key SharedKey, f func() interface{}) interface{} {
	if !nd.nw.cfg.sharedCache {
		return f()
	}
	nw := nd.nw
	nw.sharedMu.Lock()
	if v, ok := nw.sharedK[key]; ok {
		nw.sharedMu.Unlock()
		return v
	}
	nw.sharedMu.Unlock()
	// Compute outside the lock: colorings can be expensive and the value is
	// deterministic, so racing computations produce identical results.
	v := f()
	nw.sharedMu.Lock()
	if prev, ok := nw.sharedK[key]; ok {
		v = prev
	} else {
		nw.sharedK[key] = v
	}
	nw.sharedMu.Unlock()
	return v
}

// retire recycles the receive buffers handed out with this node's previous
// inbox. The node owns its slots until it arrives at the barrier, so no
// synchronisation is needed. Only the word arena about to be written this
// round is resliced, which is what keeps recently received payloads valid
// for PayloadGraceRounds barriers (same-round forwarding and the
// constant-round re-send patterns of the primitives).
func (nd *Node) retire() {
	nw := nd.nw
	if bb := nw.backbone[nd.id]; bb != nil {
		for _, f := range nw.setFrom[nd.id] {
			bb[f] = nil
		}
		nw.setFrom[nd.id] = nw.setFrom[nd.id][:0]
	}
	nw.hdrArena[nd.id] = nw.hdrArena[nd.id][:0]
	p := nd.round % payloadRingDepth
	nw.wordArena[p][nd.id] = nw.wordArena[p][nd.id][:0]
}

// Exchange implements the synchronous round barrier (see the Network type
// documentation for the two-phase design). The returned Inbox and the packets
// inside it are engine-owned: they are valid until this node's next Exchange
// call, at which point their buffers are recycled.
func (nd *Node) Exchange() (Inbox, error) {
	if err := nd.exchangeBarrier(false); err != nil {
		return nil, err
	}
	inbox := nd.nw.inboxes[nd.id]
	nd.nw.inboxes[nd.id] = nil
	return inbox, nil
}

// FlatInbox is the flat receive representation of one round: a sequence of
// [from, len, payload...] records, one per physical packet, in ascending
// sender order. The words are engine-owned views into the receive arena and
// follow the same lifetime rules as Inbox packets (valid until the node's
// next exchange, payloads for PayloadGraceRounds further barriers).
type FlatInbox []Word

// ExchangeFlat is Exchange for receivers that want the round's traffic as a
// FlatInbox. Skipping the Inbox assembly (header arena, backbone, segment
// tracking) makes delivery one append per packet; it is the receive path of
// the flat-frame protocol layer, which decodes the records directly.
func (nd *Node) ExchangeFlat() (FlatInbox, error) {
	// The round the packets were delivered in is nd.round before
	// exchangeBarrier increments it.
	slot := nd.round % payloadRingDepth
	if err := nd.exchangeBarrier(true); err != nil {
		return nil, err
	}
	return FlatInbox(nd.nw.wordArena[slot][nd.id]), nil
}

// exchangeBarrier publishes the node's outbox and receive mode, arrives at
// the round barrier (delivering the round if it is the last arrival), and
// returns once the round has turned over.
func (nd *Node) exchangeBarrier(flat bool) error {
	nw := nd.nw
	if nd.stepMode {
		return errors.New("clique: Exchange is driven by the engine in RunRounds mode")
	}
	if f := nw.fail.Load(); f != nil {
		return f.err
	}
	if nd.departed {
		return errors.New("clique: Exchange called after node program returned")
	}

	// Injected faults fire here, at the exact (node, round) coordinate of
	// the node's barrier arrival: a panic crashes the node before it
	// publishes (its queued sends are lost, like a real crash), a stall
	// delays the arrival.
	if f := nw.faults.at(nd.id, nd.round); f != nil {
		switch f.Kind {
		case FaultPanic:
			panic(&injectedPanic{node: nd.id, round: nd.round})
		case FaultStall:
			nw.stallNode(f.Stall)
			if f := nw.fail.Load(); f != nil {
				return f.err
			}
		}
	}

	nd.retire()

	// Publish the outbox and receive mode; the slots are not read until
	// every node has arrived.
	published := nd.pending
	nw.outboxes[nd.id] = published
	nw.flat[nd.id] = flat
	nd.pending = nil

	// The generation must be loaded before arriving: the round cannot turn
	// over before our arrival is counted, so g is this round's epoch.
	g := nw.gen.Load()
	if nw.sem != nil {
		nw.sem <- struct{}{} // release the compute slot while parked
	}
	nw.noteArrival(nd.id, nd.round, false)
	active, arrived := stateParts(nw.state.Add(1))
	if arrived == active {
		if nw.fail.Load() == nil {
			nw.deliver(g)
		} else {
			g.release() // free stragglers; the run is already failed
		}
	} else {
		<-g.done
	}
	if nw.sem != nil {
		<-nw.sem
	}

	if f := nw.fail.Load(); f != nil {
		return f.err
	}
	nd.pending = published[:0]
	nd.round++
	return nil
}

// leave removes a node from the barrier once its program has returned. If the
// node was the last one every other live node was waiting on, the round is
// completed (or, after a failure, the barrier released) on its behalf.
func (nw *Network) leave(nd *Node) {
	nw.stepsMu.Lock()
	nw.steps[nd.id] = nd.steps
	nw.memory[nd.id] = nd.memory
	nw.stepsMu.Unlock()

	// Hand the outbox backing array back for the next run, dropping every
	// packet reference so pooled buffers never retain payload memory. By this
	// point the array is no longer shared: a published outbox is consumed by
	// delivery before the publishing Exchange returns, and after a failure
	// nothing delivers again before the reset.
	if b := nw.buffers; b != nil {
		p := nd.pending[:cap(nd.pending)]
		clear(p)
		b.pending[nd.id] = p[:0]
		nd.pending = nil
	}

	if nd.departed {
		return
	}
	nd.departed = true
	nw.departed[nd.id] = true

	g := nw.gen.Load()
	nw.noteArrival(nd.id, 0, true)
	active, arrived := stateParts(nw.state.Add(^activeOne + 1))
	if active > 0 && arrived == active {
		if nw.fail.Load() == nil {
			nw.deliver(g)
		} else {
			g.release()
		}
	}
}

// deliver completes the current round and advances the barrier: delivery,
// arrival reset, generation swap, wake-up. It runs on exactly one goroutine
// per round while every other live node is parked, so plain loads and stores
// are safe; the closing of g.done publishes everything written here.
func (nw *Network) deliver(g *generation) {
	// A delivery panic must not strand the nodes parked on this generation:
	// convert it to an engine failure, turn the barrier over and wake
	// everyone (they will observe the failure), then re-panic so the
	// deliverer's own node reports the error through the usual recovery.
	defer func() {
		if r := recover(); r != nil {
			nw.setFailure(fmt.Errorf("clique: delivery panicked: %v", r))
			nw.state.Store(nw.state.Load() >> 32 << 32)
			nw.gen.Store(&generation{done: make(chan struct{})})
			g.release()
			panic(r)
		}
	}()
	// An injected cancellation fails the run at this exact turn-over: the
	// barrier is released without delivering the round, the deterministic
	// analogue of a context cancellation landing between the last arrival
	// and delivery.
	if round := int(nw.round.Load()); nw.faults.cancelAt(round) {
		nw.setFailure(fmt.Errorf("clique: run cancelled at round %d turn-over: %w", round, ErrFaultInjected))
		nw.state.Store(nw.state.Load() >> 32 << 32)
		nw.gen.Store(&generation{done: make(chan struct{})})
		g.release()
		return
	}
	nw.deliverRound()
	nw.state.Store(nw.state.Load() >> 32 << 32)
	nw.gen.Store(&generation{done: make(chan struct{})})
	g.release()
}

// deliverRound swaps every published outbox into the destination inboxes and
// folds the round statistics into the metrics. Per-edge and per-node loads
// are tracked in dense scratch slices — O(1) per packet, no hashing — and
// payloads are copied into per-receiver arenas that are reused round over
// round, so a steady-state round allocates nothing.
func (nw *Network) deliverRound() {
	round := int(nw.round.Load())
	arena := nw.wordArena[round%payloadRingDepth]
	var prevArena [][]Word
	if round > 0 {
		prevArena = nw.wordArena[(round-1)%payloadRingDepth]
	}
	var stats RoundStats
	var worstFrom, worstTo int

	// Hoisted views of the dense scratch state: the per-packet loop below is
	// the engine's hottest path and runs on a single goroutine per round, so
	// keeping these in locals (written back at the end) saves a pointer chase
	// per access.
	departed := nw.departed
	flat := nw.flat
	recv := nw.recv
	hdrArenas := nw.hdrArena
	destLoad := nw.destLoad
	edgeTouch := nw.edgeTouch
	recvTouch := nw.recvTouch
	segMode := nw.segs != nil

	for from := 0; from < nw.n; from++ {
		out := nw.outboxes[from]
		if len(out) == 0 {
			continue
		}
		nw.outboxes[from] = nil
		sentWords := 0
		for i := range out {
			pp := &out[i]
			to := pp.to
			if departed[to] {
				stats.Dropped += int(pp.count)
				continue
			}
			// All statistics are kept in model currency: a framed packet counts
			// as pp.count logical messages of pp.model total words, so batching
			// logical messages into frames never changes the reported per-edge
			// load (only the physically copied len(pp.data) words include the
			// frame bookkeeping).
			w := int(pp.model)

			// Copy the payload into the receiver's word arena and append the
			// header to its header arena. Growth is append-only, so views
			// created before a reallocation keep reading valid memory. A ring
			// slot touched for the first time is presized from the previous
			// round's volume, skipping the geometric growth re-runs in the
			// first payloadRingDepth rounds.
			wa := arena[to]
			if wa == nil && prevArena != nil {
				if prev := len(prevArena[to]); prev > 0 {
					wa = make([]Word, 0, prev+prev/4)
				}
			}

			rs := &recv[to]
			if flat[to] {
				// Flat receiver: one [from, len, payload...] record appended
				// to the word arena is the entire delivery — no header arena,
				// no backbone, no segments.
				wa = append(wa, Word(from), Word(len(pp.data)))
				wa = append(wa, pp.data...)
				arena[to] = wa
				if rs.lastFrom == -1 {
					recvTouch = append(recvTouch, int32(to))
					rs.lastFrom = -2 // touched, but no open segment
				}
				if destLoad[to] == 0 {
					edgeTouch = append(edgeTouch, int32(to))
				}
				destLoad[to] += uint64(w)<<32 | uint64(uint32(pp.count))
				rs.words += int32(w)
				sentWords += w
				stats.Messages += int(pp.count)
				stats.Words += w
				continue
			}

			pos := len(wa)
			wa = append(wa, pp.data...)
			arena[to] = wa
			data := wa[pos:len(wa):len(wa)]
			ha := hdrArenas[to]
			// Senders are scanned in ascending order, so the packets of one
			// sender form a contiguous segment of the receiver's header arena;
			// a sender change closes the previous segment.
			if rs.lastFrom != int32(from) {
				if rs.lastFrom == -1 { // first packet for `to` this round
					recvTouch = append(recvTouch, int32(to))
					if !segMode {
						if nw.backbone[to] == nil {
							nw.backbone[to] = make(Inbox, nw.n)
						}
						nw.inboxes[to] = nw.backbone[to]
					}
				} else if segMode {
					nw.segs[to] = append(nw.segs[to], inboxSeg{from: rs.lastFrom, start: rs.segStart, end: int32(len(ha))})
				} else {
					nw.backbone[to][rs.lastFrom] = ha[rs.segStart:len(ha):len(ha)]
					nw.setFrom[to] = append(nw.setFrom[to], rs.lastFrom)
				}
				rs.lastFrom = int32(from)
				rs.segStart = int32(len(ha))
			}
			hdrArenas[to] = append(ha, data)

			if destLoad[to] == 0 {
				edgeTouch = append(edgeTouch, int32(to))
			}
			destLoad[to] += uint64(w)<<32 | uint64(uint32(pp.count))
			rs.words += int32(w)
			sentWords += w
			stats.Messages += int(pp.count)
			stats.Words += w
		}
		if sentWords > stats.MaxNodeSentWords {
			stats.MaxNodeSentWords = sentWords
		}
		for _, t := range edgeTouch {
			load := destLoad[t]
			if w := int(load >> 32); w > stats.MaxEdgeWords {
				stats.MaxEdgeWords = w
				worstFrom, worstTo = from, int(t)
			}
			if c := int(uint32(load)); c > stats.MaxEdgeMessages {
				stats.MaxEdgeMessages = c
			}
			destLoad[t] = 0
		}
		edgeTouch = edgeTouch[:0]
	}
	nw.edgeTouch = edgeTouch

	for _, t := range recvTouch {
		nw.flushSegment(int(t))
		rs := &recv[t]
		rs.lastFrom = -1
		if w := int(rs.words); w > stats.MaxNodeRecvWords {
			stats.MaxNodeRecvWords = w
		}
		rs.words = 0
	}
	nw.recvTouch = recvTouch[:0]

	if nw.cfg.maxWordsPerEdge > 0 && stats.MaxEdgeWords > nw.cfg.maxWordsPerEdge {
		nw.setFailure(fmt.Errorf(
			"clique: round %d: edge %d->%d carried %d words, budget %d: %w",
			round, worstFrom, worstTo, stats.MaxEdgeWords, nw.cfg.maxWordsPerEdge, ErrBandwidthExceeded))
	}

	nw.metricsMu.Lock()
	if nw.cfg.recordPerRound {
		nw.metrics.merge(stats)
	} else {
		saved := nw.metrics.PerRound
		nw.metrics.merge(stats)
		nw.metrics.PerRound = saved
	}
	nw.metricsMu.Unlock()

	nw.round.Store(int64(round + 1))
}

// flushSegment closes the receiver's current header-arena segment, exposing
// it as the inbox entry of the sender that produced it (directly in the
// receiver's backbone, or as a segment record in worker-pool mode).
func (nw *Network) flushSegment(to int) {
	lf := nw.recv[to].lastFrom
	if lf < 0 {
		return
	}
	ha := nw.hdrArena[to]
	if nw.segs != nil {
		nw.segs[to] = append(nw.segs[to], inboxSeg{from: lf, start: nw.recv[to].segStart, end: int32(len(ha))})
		return
	}
	nw.backbone[to][lf] = ha[nw.recv[to].segStart:len(ha):len(ha)]
	nw.setFrom[to] = append(nw.setFrom[to], lf)
}
