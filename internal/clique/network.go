package clique

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrBandwidthExceeded is wrapped by the error returned when a strict edge
// budget (WithStrictEdgeBudget) is violated.
var ErrBandwidthExceeded = errors.New("per-edge bandwidth budget exceeded")

// Exchanger is the communication surface node programs are written against.
// It is implemented by *Node (a physical clique node) and by *VNode (a
// virtual node multiplexing one logical protocol instance onto a physical
// node, see Mux).
type Exchanger interface {
	// ID returns the node's identifier in 0..N()-1.
	ID() int
	// N returns the number of nodes in the clique.
	N() int
	// Round returns the number of round barriers this node has completed.
	Round() int
	// Send queues one packet for delivery to node to at the next barrier.
	// Sending to oneself is allowed (and used by the algorithms to keep the
	// presentation uniform, matching the paper's convention).
	Send(to int, data Packet)
	// Exchange blocks until every active node has reached the barrier, then
	// returns everything this node received in the round, indexed by sender.
	Exchange() (Inbox, error)
	// CountSteps adds k to this node's self-reported local-computation step
	// counter (Section 5 accounting). It is a no-op for k <= 0.
	CountSteps(k int)
	// ReportMemory records a self-reported resident memory footprint in words;
	// the per-node maximum is kept (Section 5 accounting).
	ReportMemory(words int)
	// SharedCompute returns the result of f, memoising it under key when the
	// shared deterministic-computation cache is enabled. Every node calling
	// SharedCompute with the same key must supply a function computing the
	// same (deterministic) value; the cache only removes redundant
	// recomputation in the simulator, it does not communicate.
	SharedCompute(key string, f func() interface{}) interface{}
}

// generation is one epoch of the round barrier. Nodes that arrive before the
// round is complete park on done; the round's deliverer closes it after
// swapping outboxes into inboxes, which both wakes the waiters and publishes
// (in the memory-model sense) everything the delivery phase wrote.
type generation struct {
	done chan struct{}
}

// failure boxes the first engine-level error so it can live in an
// atomic.Pointer.
type failure struct{ err error }

// inboxSeg is one contiguous run of a receiver's header arena holding the
// packets of a single sender (worker-pool mode only).
type inboxSeg struct {
	from       int32
	start, end int32
}

// activeOne is the increment of the live-node half of Network.state.
const activeOne = uint64(1) << 32

// payloadRingDepth is the number of per-receiver payload arenas cycled
// through by delivery. Words received in round r are only overwritten when
// round r+payloadRingDepth is delivered, so received payloads stay readable
// for payloadGraceRounds further barriers — enough for the paper's
// constant-round primitives (for example Corollary 3.4: two announcement
// rounds before re-sending received words) to re-send received words without
// cloning. Retention beyond the grace window requires Packet.Clone.
const payloadRingDepth = 4

// PayloadGraceRounds is the number of additional Exchange calls a received
// packet's words are guaranteed to stay valid for (see payloadRingDepth).
const PayloadGraceRounds = payloadRingDepth - 1

func stateParts(s uint64) (active, arrived uint32) {
	return uint32(s >> 32), uint32(s)
}

// Network is an in-process simulation of a congested clique of n nodes.
//
// The execution engine is a sharded two-phase design. During the compute
// phase every node appends to a private outbox with no synchronisation at
// all. At the barrier a node publishes its outbox into its own slot and
// arrives with a single atomic add on state, which packs the number of live
// nodes (high 32 bits) and the number of arrived nodes (low 32 bits); the
// arrival that makes the two halves equal elects that goroutine the round's
// deliverer. Delivery therefore runs while every other live node is parked on
// the current generation's channel, so it swaps outboxes into inboxes and
// computes the round statistics without holding any lock, and no lock is ever
// held, contended or otherwise, while a node computes.
//
// Delivery copies payload words into per-receiver arenas cycled on a
// payloadRingDepth-round ring (so received words stay valid for
// PayloadGraceRounds further barriers and can be re-sent without cloning),
// and tracks per-edge load in dense per-node scratch slices: O(1) per packet
// with no hashing and no per-round allocation in steady state.
type Network struct {
	n   int
	cfg config

	started atomic.Bool

	state atomic.Uint64
	gen   atomic.Pointer[generation]
	round atomic.Int64
	fail  atomic.Pointer[failure]

	// outboxes[i] is published by node i when it arrives at the barrier and
	// consumed (and nilled) by the deliverer.
	outboxes [][]pendingPacket
	// inboxes[i] is set by the deliverer iff node i received traffic this
	// round; the owner consumes and nils it after the barrier.
	inboxes  []Inbox
	departed []bool

	// Per-receiver delivery buffers, reused round over round. backbone[t] is
	// the Inbox handed to node t and hdrArena[t] holds the packet headers;
	// both are retired (cleared or resliced, keeping capacity) by the owning
	// node when it next arrives at the barrier. wordArena[r%payloadRingDepth][t]
	// holds the payload words copied for node t in round r; the ring keeps
	// received words valid for PayloadGraceRounds further barriers. Growth is
	// append-only, so views created before a reallocation stay valid.
	backbone  []Inbox
	hdrArena  [][]Packet
	wordArena [payloadRingDepth][][]Word

	// Deliverer scratch, indexed densely by node id. destWords/destMsgs hold
	// the per-edge load of the sender currently being scanned (reset via
	// edgeTouch); recvWords, lastFrom and segStart hold per-receiver state for
	// the whole round (reset via recvTouch).
	destWords []int
	destMsgs  []int
	recvWords []int
	lastFrom  []int32
	segStart  []int32
	edgeTouch []int32
	recvTouch []int32
	// setFrom[t] lists the backbone entries populated for receiver t this
	// round, so retire clears O(traffic) entries instead of all n.
	setFrom [][]int32

	// Worker-pool mode (RunRounds). An inbox there is only alive during one
	// step call, so instead of a persistent n-entry backbone per receiver
	// (Θ(n²) memory), delivery records per-receiver segment lists and each
	// worker materialises them into its own scratch backbone just for the
	// step call: O(traffic + workers·n) memory. segs is non-nil exactly in
	// worker-pool mode.
	segs [][]inboxSeg

	// sem, when non-nil, bounds the number of concurrently computing node
	// goroutines in Run (see WithWorkers).
	sem chan struct{}

	metricsMu sync.Mutex
	metrics   Metrics

	sharedMu sync.Mutex
	shared   map[string]interface{}

	stepsMu sync.Mutex
	steps   map[int]int64
	memory  map[int]int64
}

// New creates a congested clique with n >= 1 nodes.
func New(n int, opts ...Option) (*Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("clique: need at least one node, got %d", n)
	}
	cfg := defaultConfig()
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	nw := &Network{
		n:         n,
		cfg:       cfg,
		outboxes:  make([][]pendingPacket, n),
		inboxes:   make([]Inbox, n),
		departed:  make([]bool, n),
		backbone:  make([]Inbox, n),
		hdrArena:  make([][]Packet, n),
		destWords: make([]int, n),
		destMsgs:  make([]int, n),
		recvWords: make([]int, n),
		lastFrom:  make([]int32, n),
		segStart:  make([]int32, n),
		setFrom:   make([][]int32, n),
		shared:    make(map[string]interface{}),
		steps:     make(map[int]int64),
		memory:    make(map[int]int64),
	}
	for p := range nw.wordArena {
		nw.wordArena[p] = make([][]Word, n)
	}
	for i := range nw.lastFrom {
		nw.lastFrom[i] = -1
	}
	nw.gen.Store(&generation{done: make(chan struct{})})
	return nw, nil
}

// N returns the number of nodes.
func (nw *Network) N() int { return nw.n }

// Metrics returns a copy of the execution metrics collected so far. It is
// normally called after Run has returned.
func (nw *Network) Metrics() Metrics {
	nw.metricsMu.Lock()
	m := nw.metrics.clone()
	nw.metricsMu.Unlock()

	nw.stepsMu.Lock()
	for _, s := range nw.steps {
		if s > m.MaxStepsPerNode {
			m.MaxStepsPerNode = s
		}
	}
	for _, w := range nw.memory {
		if w > m.MaxMemoryWordsPerNode {
			m.MaxMemoryWordsPerNode = w
		}
	}
	nw.stepsMu.Unlock()
	return m
}

// Rounds returns the number of completed rounds.
func (nw *Network) Rounds() int { return int(nw.round.Load()) }

// StepsPerNode returns the self-reported computation steps of every node.
func (nw *Network) StepsPerNode() map[int]int64 {
	nw.stepsMu.Lock()
	defer nw.stepsMu.Unlock()
	out := make(map[int]int64, len(nw.steps))
	for id, s := range nw.steps {
		out[id] = s
	}
	return out
}

// Run executes program once per node, each in its own goroutine, and waits
// for all of them to return. Run may only be called once per Network (this
// also covers RunRounds).
//
// Error reporting is deterministic: if any node program returns an error (or
// panics, which is converted to an error), Run returns the error of the
// lowest-numbered failing node, regardless of the temporal order in which
// nodes failed. An engine-level failure (such as a strict edge-budget
// violation) is returned only if no node program reported an error itself.
//
// When WithWorkers(k) is set with 0 < k < n, at most k node goroutines
// compute concurrently; nodes parked at the round barrier release their slot.
// All n goroutines still exist (the blocking Exchange API requires a stack
// per node); use RunRounds to run n logical nodes on k goroutines.
func (nw *Network) Run(program func(*Node) error) error {
	if !nw.started.CompareAndSwap(false, true) {
		return errors.New("clique: Network.Run called twice")
	}
	nw.state.Store(uint64(nw.n) << 32)
	if k := nw.cfg.workers; k > 0 && k < nw.n {
		nw.sem = make(chan struct{}, k)
		for i := 0; i < k; i++ {
			nw.sem <- struct{}{}
		}
	}

	errs := make([]error, nw.n)
	var wg sync.WaitGroup
	for i := 0; i < nw.n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			nd := &Node{nw: nw, id: id}
			if nw.sem != nil {
				<-nw.sem
				// A node outside the barrier always holds its compute slot, so
				// the unconditional release below is balanced.
				defer func() { nw.sem <- struct{}{} }()
			}
			defer nw.leave(nd)
			defer func() {
				if r := recover(); r != nil {
					errs[id] = fmt.Errorf("clique: node %d panicked: %v", id, r)
				}
			}()
			errs[id] = program(nd)
		}(i)
	}
	wg.Wait()
	return nw.firstError(errs)
}

// firstError implements the documented deterministic error rule: lowest
// failing node id first, engine failure only if no program failed.
func (nw *Network) firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if f := nw.fail.Load(); f != nil {
		return f.err
	}
	return nil
}

// StepFunc is one node's program in the engine-driven scheduling mode of
// RunRounds. It is invoked once per round; inbox holds what the node received
// at the end of the previous round (nil in round 0) and is only valid for the
// duration of the call. Packets queued with nd.Send during the call are
// delivered at the end of the round. Returning done = true retires the node:
// its final sends are still delivered to nodes that remain active, but the
// retired node itself can no longer receive — packets addressed to it in its
// final round or later are dropped (and counted in DroppedToDeparted), since
// there is no future step call to hand them to. If every remaining node
// retires in the same round, that round's sends are discarded without
// delivery or accounting (mirroring the blocking API, where packets queued
// by a program that returns without exchanging are never published).
type StepFunc func(nd *Node, round int, inbox Inbox) (done bool, err error)

// RunRounds executes step for every node in synchronous rounds on a bounded
// pool of k worker goroutines (WithWorkers; defaults to GOMAXPROCS), instead
// of one goroutine per node as Run does. This is the scheduler to use for
// very large cliques: n >= 10^4 logical nodes run on a handful of goroutines
// with no parked stacks. Within a round each worker sweeps a contiguous shard
// of nodes; delivery and metrics are identical to Run, and executions are
// deterministic for any worker count.
//
// Error reporting follows the same rule as Run: the lowest failing node id
// wins; an engine-level failure is returned only if no step failed. Node
// methods other than Exchange work as usual inside step; Exchange returns an
// error because the engine itself drives the barrier.
func (nw *Network) RunRounds(step StepFunc) error {
	if !nw.started.CompareAndSwap(false, true) {
		return errors.New("clique: Network.Run called twice")
	}
	k := nw.cfg.workers
	if k <= 0 {
		k = runtime.GOMAXPROCS(0)
	}
	if k > nw.n {
		k = nw.n
	}

	nodes := make([]*Node, nw.n)
	for i := range nodes {
		nodes[i] = &Node{nw: nw, id: i, stepMode: true}
	}
	errs := make([]error, nw.n)
	nw.segs = make([][]inboxSeg, nw.n) // switches delivery to segment mode

	type ack struct {
		left   int
		failed bool
	}
	starts := make([]chan int, k)
	acks := make(chan ack, k)
	var workers sync.WaitGroup
	for w := 0; w < k; w++ {
		starts[w] = make(chan int, 1)
		lo, hi := w*nw.n/k, (w+1)*nw.n/k
		workers.Add(1)
		go func(startCh chan int, lo, hi int) {
			defer workers.Done()
			// scratch holds the materialised inbox of the node currently
			// stepping; entries are cleared again right after the step call.
			scratch := make(Inbox, nw.n)
			for round := range startCh {
				var a ack
				for id := lo; id < hi; id++ {
					nd := nodes[id]
					if nd.departed {
						continue
					}
					var inbox Inbox
					if segs := nw.segs[id]; len(segs) > 0 {
						ha := nw.hdrArena[id]
						for _, s := range segs {
							scratch[s.from] = ha[s.start:s.end:s.end]
						}
						inbox = scratch
					}
					if nd.reclaim != nil {
						nd.pending = nd.reclaim[:0]
						nd.reclaim = nil
					}
					done, err := runStep(step, nd, round, inbox)
					if segs := nw.segs[id]; len(segs) > 0 {
						for _, s := range segs {
							scratch[s.from] = nil
						}
						nw.segs[id] = segs[:0]
					}
					nd.retire()
					nd.reclaim = nd.pending
					nw.outboxes[id] = nd.pending
					nd.pending = nil
					nd.round++
					if err != nil {
						errs[id] = err
						a.failed = true
						done = true
					}
					if done {
						nd.departed = true
						nw.departed[id] = true
						a.left++
					}
				}
				acks <- a
			}
		}(starts[w], lo, hi)
	}

	remaining := nw.n
	for round := 0; remaining > 0; round++ {
		for _, ch := range starts {
			ch <- round
		}
		anyFailed := false
		for range starts {
			a := <-acks
			remaining -= a.left
			anyFailed = anyFailed || a.failed
		}
		if anyFailed {
			break
		}
		if remaining == 0 {
			// The final sends have no live receivers left; there is nothing
			// to deliver or account.
			break
		}
		nw.deliverRound()
		if nw.fail.Load() != nil {
			break
		}
	}
	for _, ch := range starts {
		close(ch)
	}
	workers.Wait()

	nw.stepsMu.Lock()
	for _, nd := range nodes {
		nw.steps[nd.id] = nd.steps
		nw.memory[nd.id] = nd.memory
	}
	nw.stepsMu.Unlock()

	return nw.firstError(errs)
}

// runStep invokes step with panic recovery, so one node's panic surfaces as
// that node's error instead of tearing down the whole process.
func runStep(step StepFunc, nd *Node, round int, inbox Inbox) (done bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			done, err = true, fmt.Errorf("clique: node %d panicked in round %d: %v", nd.id, round, r)
		}
	}()
	return step(nd, round, inbox)
}

// Node is one physical node of the clique. A Node must only be used from the
// goroutine running its program.
type Node struct {
	nw       *Network
	id       int
	round    int
	departed bool
	stepMode bool
	pending  []pendingPacket
	reclaim  []pendingPacket
	steps    int64
	memory   int64
}

var _ Exchanger = (*Node)(nil)

// ID returns the node identifier (0-based).
func (nd *Node) ID() int { return nd.id }

// N returns the clique size.
func (nd *Node) N() int { return nd.nw.n }

// Round returns the number of rounds this node has completed.
func (nd *Node) Round() int { return nd.round }

// Send queues a packet for node to; it is delivered at the next barrier. The
// engine copies the payload during delivery, so the caller may reuse or
// recycle data after its next Exchange returns, and a packet received this
// round may be forwarded verbatim without cloning.
func (nd *Node) Send(to int, data Packet) {
	if to < 0 || to >= nd.nw.n {
		panic(fmt.Sprintf("clique: node %d sent to invalid destination %d (n=%d)", nd.id, to, nd.nw.n))
	}
	nd.pending = append(nd.pending, pendingPacket{to: to, data: data})
}

// Broadcast queues the same packet for every node, including the sender.
func (nd *Node) Broadcast(data Packet) {
	for to := 0; to < nd.nw.n; to++ {
		nd.Send(to, data)
	}
}

// CountSteps adds k self-reported computation steps.
func (nd *Node) CountSteps(k int) {
	if k > 0 {
		nd.steps += int64(k)
	}
}

// ReportMemory records a self-reported resident word count; the maximum over
// the execution is kept.
func (nd *Node) ReportMemory(words int) {
	if int64(words) > nd.memory {
		nd.memory = int64(words)
	}
}

// SharedCompute memoises a deterministic computation across nodes (see
// Exchanger).
func (nd *Node) SharedCompute(key string, f func() interface{}) interface{} {
	if !nd.nw.cfg.sharedCache {
		return f()
	}
	nw := nd.nw
	nw.sharedMu.Lock()
	if v, ok := nw.shared[key]; ok {
		nw.sharedMu.Unlock()
		return v
	}
	nw.sharedMu.Unlock()
	// Compute outside the lock: colorings can be expensive and the value is
	// deterministic, so racing computations produce identical results.
	v := f()
	nw.sharedMu.Lock()
	if prev, ok := nw.shared[key]; ok {
		v = prev
	} else {
		nw.shared[key] = v
	}
	nw.sharedMu.Unlock()
	return v
}

// retire recycles the receive buffers handed out with this node's previous
// inbox. The node owns its slots until it arrives at the barrier, so no
// synchronisation is needed. Only the word arena about to be written this
// round is resliced, which is what keeps recently received payloads valid
// for PayloadGraceRounds barriers (same-round forwarding and the
// constant-round re-send patterns of the primitives).
func (nd *Node) retire() {
	nw := nd.nw
	if bb := nw.backbone[nd.id]; bb != nil {
		for _, f := range nw.setFrom[nd.id] {
			bb[f] = nil
		}
		nw.setFrom[nd.id] = nw.setFrom[nd.id][:0]
	}
	nw.hdrArena[nd.id] = nw.hdrArena[nd.id][:0]
	p := nd.round % payloadRingDepth
	nw.wordArena[p][nd.id] = nw.wordArena[p][nd.id][:0]
}

// Exchange implements the synchronous round barrier (see the Network type
// documentation for the two-phase design). The returned Inbox and the packets
// inside it are engine-owned: they are valid until this node's next Exchange
// call, at which point their buffers are recycled.
func (nd *Node) Exchange() (Inbox, error) {
	nw := nd.nw
	if nd.stepMode {
		return nil, errors.New("clique: Exchange is driven by the engine in RunRounds mode")
	}
	if f := nw.fail.Load(); f != nil {
		return nil, f.err
	}
	if nd.departed {
		return nil, errors.New("clique: Exchange called after node program returned")
	}

	nd.retire()

	// Publish the outbox; the slot is not read until every node has arrived.
	published := nd.pending
	nw.outboxes[nd.id] = published
	nd.pending = nil

	// The generation must be loaded before arriving: the round cannot turn
	// over before our arrival is counted, so g is this round's epoch.
	g := nw.gen.Load()
	if nw.sem != nil {
		nw.sem <- struct{}{} // release the compute slot while parked
	}
	active, arrived := stateParts(nw.state.Add(1))
	if arrived == active {
		if nw.fail.Load() == nil {
			nw.deliver(g)
		} else {
			close(g.done) // free stragglers; the run is already failed
		}
	} else {
		<-g.done
	}
	if nw.sem != nil {
		<-nw.sem
	}

	if f := nw.fail.Load(); f != nil {
		return nil, f.err
	}
	inbox := nw.inboxes[nd.id]
	nw.inboxes[nd.id] = nil
	nd.pending = published[:0]
	nd.round++
	return inbox, nil
}

// leave removes a node from the barrier once its program has returned. If the
// node was the last one every other live node was waiting on, the round is
// completed (or, after a failure, the barrier released) on its behalf.
func (nw *Network) leave(nd *Node) {
	nw.stepsMu.Lock()
	nw.steps[nd.id] = nd.steps
	nw.memory[nd.id] = nd.memory
	nw.stepsMu.Unlock()

	if nd.departed {
		return
	}
	nd.departed = true
	nw.departed[nd.id] = true

	g := nw.gen.Load()
	active, arrived := stateParts(nw.state.Add(^activeOne + 1))
	if active > 0 && arrived == active {
		if nw.fail.Load() == nil {
			nw.deliver(g)
		} else {
			close(g.done)
		}
	}
}

// deliver completes the current round and advances the barrier: delivery,
// arrival reset, generation swap, wake-up. It runs on exactly one goroutine
// per round while every other live node is parked, so plain loads and stores
// are safe; the closing of g.done publishes everything written here.
func (nw *Network) deliver(g *generation) {
	nw.deliverRound()
	nw.state.Store(nw.state.Load() >> 32 << 32)
	nw.gen.Store(&generation{done: make(chan struct{})})
	close(g.done)
}

// deliverRound swaps every published outbox into the destination inboxes and
// folds the round statistics into the metrics. Per-edge and per-node loads
// are tracked in dense scratch slices — O(1) per packet, no hashing — and
// payloads are copied into per-receiver arenas that are reused round over
// round, so a steady-state round allocates nothing.
func (nw *Network) deliverRound() {
	round := int(nw.round.Load())
	arena := nw.wordArena[round%payloadRingDepth]
	var stats RoundStats
	var worstFrom, worstTo int

	for from := 0; from < nw.n; from++ {
		out := nw.outboxes[from]
		if len(out) == 0 {
			continue
		}
		nw.outboxes[from] = nil
		sentWords := 0
		for _, pp := range out {
			to := pp.to
			if nw.departed[to] {
				stats.Dropped++
				continue
			}
			w := len(pp.data)

			// Copy the payload into the receiver's word arena and append the
			// header to its header arena. Growth is append-only, so views
			// created before a reallocation keep reading valid memory.
			wa := arena[to]
			pos := len(wa)
			wa = append(wa, pp.data...)
			arena[to] = wa
			data := wa[pos : pos+w : pos+w]

			if nw.lastFrom[to] == -1 { // first packet for `to` this round
				nw.recvTouch = append(nw.recvTouch, int32(to))
				if nw.segs == nil {
					if nw.backbone[to] == nil {
						nw.backbone[to] = make(Inbox, nw.n)
					}
					nw.inboxes[to] = nw.backbone[to]
				}
			}
			// Senders are scanned in ascending order, so the packets of one
			// sender form a contiguous segment of the receiver's header arena;
			// a sender change closes the previous segment.
			if nw.lastFrom[to] != int32(from) {
				nw.flushSegment(to)
				nw.lastFrom[to] = int32(from)
				nw.segStart[to] = int32(len(nw.hdrArena[to]))
			}
			nw.hdrArena[to] = append(nw.hdrArena[to], data)

			if nw.destWords[to] == 0 && nw.destMsgs[to] == 0 {
				nw.edgeTouch = append(nw.edgeTouch, int32(to))
			}
			nw.destWords[to] += w
			nw.destMsgs[to]++
			nw.recvWords[to] += w
			sentWords += w
			stats.Messages++
			stats.Words += w
		}
		if sentWords > stats.MaxNodeSentWords {
			stats.MaxNodeSentWords = sentWords
		}
		for _, t := range nw.edgeTouch {
			if w := nw.destWords[t]; w > stats.MaxEdgeWords {
				stats.MaxEdgeWords = w
				worstFrom, worstTo = from, int(t)
			}
			if c := nw.destMsgs[t]; c > stats.MaxEdgeMessages {
				stats.MaxEdgeMessages = c
			}
			nw.destWords[t] = 0
			nw.destMsgs[t] = 0
		}
		nw.edgeTouch = nw.edgeTouch[:0]
	}

	for _, t := range nw.recvTouch {
		nw.flushSegment(int(t))
		nw.lastFrom[t] = -1
		if w := nw.recvWords[t]; w > stats.MaxNodeRecvWords {
			stats.MaxNodeRecvWords = w
		}
		nw.recvWords[t] = 0
	}
	nw.recvTouch = nw.recvTouch[:0]

	if nw.cfg.maxWordsPerEdge > 0 && stats.MaxEdgeWords > nw.cfg.maxWordsPerEdge {
		nw.fail.CompareAndSwap(nil, &failure{err: fmt.Errorf(
			"clique: round %d: edge %d->%d carried %d words, budget %d: %w",
			round, worstFrom, worstTo, stats.MaxEdgeWords, nw.cfg.maxWordsPerEdge, ErrBandwidthExceeded)})
	}

	nw.metricsMu.Lock()
	if nw.cfg.recordPerRound {
		nw.metrics.merge(stats)
	} else {
		saved := nw.metrics.PerRound
		nw.metrics.merge(stats)
		nw.metrics.PerRound = saved
	}
	nw.metricsMu.Unlock()

	nw.round.Store(int64(round + 1))
}

// flushSegment closes the receiver's current header-arena segment, exposing
// it as the inbox entry of the sender that produced it (directly in the
// receiver's backbone, or as a segment record in worker-pool mode).
func (nw *Network) flushSegment(to int) {
	lf := nw.lastFrom[to]
	if lf < 0 {
		return
	}
	ha := nw.hdrArena[to]
	if nw.segs != nil {
		nw.segs[to] = append(nw.segs[to], inboxSeg{from: lf, start: nw.segStart[to], end: int32(len(ha))})
		return
	}
	nw.backbone[to][lf] = ha[nw.segStart[to]:len(ha):len(ha)]
	nw.setFrom[to] = append(nw.setFrom[to], lf)
}
