package clique

import "testing"

// TestCumulativeMerge pins the cross-engine combination rule the session
// layer's engine pool relies on: counts and totals sum, maxima take the
// larger side, and merging is commutative.
func TestCumulativeMerge(t *testing.T) {
	a := Cumulative{
		Runs: 2, Rounds: 20, TotalMessages: 100, TotalWords: 400,
		MaxEdgeWords: 7, MaxEdgeMessages: 3, MaxStepsPerNode: 50,
		MaxMemoryWordsPerNode: 128, DroppedToDeparted: 1,
	}
	b := Cumulative{
		Runs: 3, Rounds: 30, TotalMessages: 50, TotalWords: 900,
		MaxEdgeWords: 5, MaxEdgeMessages: 9, MaxStepsPerNode: 10,
		MaxMemoryWordsPerNode: 512, DroppedToDeparted: 2,
	}
	want := Cumulative{
		Runs: 5, Rounds: 50, TotalMessages: 150, TotalWords: 1300,
		MaxEdgeWords: 7, MaxEdgeMessages: 9, MaxStepsPerNode: 50,
		MaxMemoryWordsPerNode: 512, DroppedToDeparted: 3,
	}
	ab := a
	ab.Merge(b)
	if ab != want {
		t.Fatalf("a.Merge(b) = %+v, want %+v", ab, want)
	}
	ba := b
	ba.Merge(a)
	if ba != want {
		t.Fatalf("merge is not commutative: b.Merge(a) = %+v, want %+v", ba, want)
	}
	// Merging the zero value is the identity.
	id := a
	id.Merge(Cumulative{})
	if id != a {
		t.Fatalf("merging the zero value changed the aggregate: %+v", id)
	}
}

// TestCumulativeMergeMatchesSequentialRuns checks Merge against the ground
// truth: two engines each accumulating runs merge to the same aggregate one
// engine accumulating all four runs would report.
func TestCumulativeMergeMatchesSequentialRuns(t *testing.T) {
	mk := func(rounds int, words int64, maxEdge int) Metrics {
		return Metrics{Rounds: rounds, TotalWords: words, TotalMessages: words / 2, MaxEdgeWords: maxEdge}
	}
	runs := []Metrics{mk(4, 100, 3), mk(8, 60, 9), mk(2, 10, 1), mk(6, 300, 5)}

	var one Cumulative
	for _, m := range runs {
		one.accumulate(m)
	}
	var left, right Cumulative
	left.accumulate(runs[0])
	left.accumulate(runs[2])
	right.accumulate(runs[1])
	right.accumulate(runs[3])
	left.Merge(right)
	if left != one {
		t.Fatalf("split accumulation merged to %+v, single engine %+v", left, one)
	}
}
