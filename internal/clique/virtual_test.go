package clique

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestMuxTwoInstancesLockstep runs two logical all-to-all protocols of
// different lengths on the same physical clique and checks that both see only
// their own traffic and that the physical round count equals the length of
// the longer instance.
func TestMuxTwoInstancesLockstep(t *testing.T) {
	t.Parallel()
	const (
		n          = 6
		shortRound = 2
		longRound  = 5
	)
	nw, err := New(n)
	if err != nil {
		t.Fatal(err)
	}

	allToAll := func(rounds int, tagBase Word) func(Exchanger) error {
		return func(ex Exchanger) error {
			for r := 0; r < rounds; r++ {
				for to := 0; to < ex.N(); to++ {
					ex.Send(to, Packet{tagBase + Word(r), Word(ex.ID())})
				}
				inbox, err := ex.Exchange()
				if err != nil {
					return err
				}
				for from := 0; from < ex.N(); from++ {
					ps := inbox.From(from)
					if len(ps) != 1 {
						return fmt.Errorf("instance %d node %d round %d: %d packets from %d, want 1",
							tagBase, ex.ID(), r, len(ps), from)
					}
					if ps[0][0] != tagBase+Word(r) || int(ps[0][1]) != from {
						return fmt.Errorf("instance %d node %d round %d: bad packet %v from %d",
							tagBase, ex.ID(), r, ps[0], from)
					}
				}
			}
			return nil
		}
	}

	err = nw.Run(func(nd *Node) error {
		mux := NewMux(nd)
		return mux.Run(map[int]func(Exchanger) error{
			0: allToAll(shortRound, 1000),
			1: allToAll(longRound, 2000),
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := nw.Rounds(); got != longRound {
		t.Fatalf("physical rounds = %d, want %d", got, longRound)
	}
	// Each physical packet carries one extra tag word.
	m := nw.Metrics()
	if m.MaxEdgeWords < 3 {
		t.Fatalf("expected tagged packets of >=3 words, max edge words = %d", m.MaxEdgeWords)
	}
}

// TestMuxSubsetInstance runs an instance that only exists on half the nodes
// next to a global instance, mirroring how the non-square-n routing
// construction uses the multiplexer.
func TestMuxSubsetInstance(t *testing.T) {
	t.Parallel()
	const n = 8
	nw, err := New(n)
	if err != nil {
		t.Fatal(err)
	}

	globalProgram := func(ex Exchanger) error {
		for r := 0; r < 3; r++ {
			ex.Send((ex.ID()+1)%ex.N(), Packet{Word(ex.ID())})
			inbox, err := ex.Exchange()
			if err != nil {
				return err
			}
			want := (ex.ID() - 1 + ex.N()) % ex.N()
			if p := inbox.Single(want); p == nil || int(p[0]) != want {
				return fmt.Errorf("global instance node %d round %d: bad packet from %d: %v", ex.ID(), r, want, p)
			}
		}
		return nil
	}
	// The subset instance only involves nodes 0..3 and exchanges within them.
	subsetProgram := func(ex Exchanger) error {
		for r := 0; r < 5; r++ {
			for to := 0; to < 4; to++ {
				ex.Send(to, Packet{Word(100 + ex.ID())})
			}
			inbox, err := ex.Exchange()
			if err != nil {
				return err
			}
			count := 0
			for from := 0; from < ex.N(); from++ {
				for _, p := range inbox.From(from) {
					count++
					if int(p[0]) != 100+from || from >= 4 {
						return fmt.Errorf("subset node %d: unexpected packet %v from %d", ex.ID(), p, from)
					}
				}
			}
			if count != 4 {
				return fmt.Errorf("subset node %d round %d received %d packets, want 4", ex.ID(), r, count)
			}
		}
		return nil
	}

	err = nw.Run(func(nd *Node) error {
		mux := NewMux(nd)
		programs := map[int]func(Exchanger) error{0: globalProgram}
		if nd.ID() < 4 {
			programs[1] = subsetProgram
		}
		return mux.Run(programs)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Nodes 0..3 run 5 rounds (the longer of 3 and 5); nodes 4..7 run 3.
	if got := nw.Rounds(); got != 5 {
		t.Fatalf("physical rounds = %d, want 5", got)
	}
}

func TestMuxInstanceValidation(t *testing.T) {
	t.Parallel()
	nw, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	err = nw.Run(func(nd *Node) error {
		mux := NewMux(nd)
		if _, err := mux.Instance(-1); err == nil {
			return fmt.Errorf("negative instance id accepted")
		}
		if _, err := mux.Instance(1); err != nil {
			return err
		}
		if _, err := mux.Instance(1); err == nil {
			return fmt.Errorf("duplicate instance id accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMuxPropagatesInstanceError(t *testing.T) {
	t.Parallel()
	nw, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	err = nw.Run(func(nd *Node) error {
		mux := NewMux(nd)
		return mux.Run(map[int]func(Exchanger) error{
			0: func(ex Exchanger) error {
				if ex.ID() == 1 {
					return fmt.Errorf("instance failure on node %d", ex.ID())
				}
				return nil
			},
		})
	})
	if err == nil {
		t.Fatal("expected instance error to propagate")
	}
}

// TestMuxPanicFailsRunFast pins the fail-fast rule on the multiplexed path:
// a panic inside a Mux instance — whether injected by the engine's fault
// plan mid physical exchange, or raised by the instance program itself —
// must fail the whole run with the panic as root cause. Before the fix, the
// Mux's recovery downgraded the panic to a graceful instance error without
// broadcasting a failure, so peer nodes deadlocked at the physical barrier
// waiting for the crashed node's exchange (the bug only reproduces on the
// Mux path, which square-n routing never takes).
func TestMuxPanicFailsRunFast(t *testing.T) {
	t.Parallel()
	const n, rounds = 4, 4

	muxProgram := func(sums []int64, boom func(ex Exchanger, r int)) func(*Node) error {
		relay := func(base Word) func(Exchanger) error {
			return func(ex Exchanger) error {
				acc := int64(base) * int64(ex.ID()+1)
				for r := 0; r < rounds; r++ {
					if boom != nil {
						boom(ex, r)
					}
					ex.Send((ex.ID()+r+1)%ex.N(), Packet{base, Word(ex.ID())})
					inbox, err := ex.Exchange()
					if err != nil {
						return err
					}
					for from := 0; from < ex.N(); from++ {
						for _, p := range inbox.From(from) {
							acc += int64(p[0]) * int64(p[1]+1)
						}
					}
				}
				if sums != nil {
					sums[ex.ID()] += acc
				}
				return nil
			}
		}
		return func(nd *Node) error {
			mux := NewMux(nd)
			return mux.Run(map[int]func(Exchanger) error{
				0: relay(1000),
				1: relay(2000),
			})
		}
	}

	for name, tc := range map[string]struct {
		arm  func(nw *Network)
		boom func(ex Exchanger, r int)
		want string
	}{
		"injected-mid-exchange": {
			arm: func(nw *Network) {
				nw.SetFaultPlan(&FaultPlan{Faults: []Fault{{Kind: FaultPanic, Node: 2, Round: 1}}})
			},
			want: "node 2 panicked in round 1",
		},
		"instance-program-panic": {
			boom: func(ex Exchanger, r int) {
				if ex.ID() == 2 && r == 1 {
					panic("instance bug")
				}
			},
			want: "panicked",
		},
	} {
		t.Run(name, func(t *testing.T) {
			nw, err := New(n)
			if err != nil {
				t.Fatal(err)
			}
			defer nw.Close()
			golden := make([]int64, n)
			if err := nw.Run(muxProgram(golden, nil)); err != nil {
				t.Fatalf("fault-free run failed: %v", err)
			}

			if tc.arm != nil {
				tc.arm(nw)
			}
			err = nw.Run(muxProgram(nil, tc.boom))
			if err == nil {
				t.Fatal("panicked run reported success")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name the panic root cause %q", err, tc.want)
			}
			if tc.arm != nil && !errors.Is(err, ErrFaultInjected) {
				t.Fatalf("injected panic lost its ErrFaultInjected identity: %v", err)
			}

			// A failed multiplexed run must not poison the engine.
			again := make([]int64, n)
			if err := nw.Run(muxProgram(again, nil)); err != nil {
				t.Fatalf("clean run after mux panic failed: %v", err)
			}
			for i := range golden {
				if golden[i] != again[i] {
					t.Fatalf("node %d: post-panic run diverged: %d != %d", i, again[i], golden[i])
				}
			}
		})
	}
}

func TestVNodeDelegation(t *testing.T) {
	t.Parallel()
	nw, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	err = nw.Run(func(nd *Node) error {
		mux := NewMux(nd)
		return mux.Run(map[int]func(Exchanger) error{
			7: func(ex Exchanger) error {
				if ex.ID() != nd.ID() || ex.N() != nd.N() {
					return fmt.Errorf("identity not delegated")
				}
				ex.CountSteps(5)
				ex.ReportMemory(11)
				v := ex.SharedCompute("k", func() interface{} { return "v" })
				if v.(string) != "v" {
					return fmt.Errorf("shared compute not delegated")
				}
				if ex.Round() != 0 {
					return fmt.Errorf("round should start at 0")
				}
				return nil
			},
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	m := nw.Metrics()
	if m.MaxStepsPerNode != 5 || m.MaxMemoryWordsPerNode != 11 {
		t.Fatalf("instrumentation not delegated: %+v", m)
	}
}
