// Package clique implements the congested-clique execution substrate used by
// every algorithm in this repository.
//
// The model (Section 2 of Lenzen, PODC 2013) is a fully connected system of n
// nodes with unique identifiers, computing in synchronous rounds. In each
// round every node performs arbitrary local computation and sends one message
// of O(log n) bits along each of its n-1 incident edges (nodes also "send to
// themselves" for uniformity). The package simulates this model in-process:
//
//   - one goroutine per node executes the node program (Network.Run), or n
//     logical nodes are multiplexed onto a bounded pool of k worker
//     goroutines (Network.RunRounds with WithWorkers) for very large cliques,
//   - Exchange() is the synchronous round barrier,
//   - messages are slices of 64-bit words; the O(log n)-bit budget of the
//     model corresponds to a small constant number of words per directed edge
//     per round, which the engine records (and can enforce strictly),
//   - per-round metrics capture message counts, word counts and the maximum
//     load on any directed edge, the observables the paper's bounds speak to.
//
// # Execution engine
//
// The engine is a sharded two-phase design built for scale. During the
// compute phase each node appends to a private outbox with no synchronisation
// at all. Arriving at the barrier is a single atomic add on a packed
// (live, arrived) counter; the arrival that equalises the two halves is
// elected the round's deliverer and runs the delivery phase while every other
// live node is parked on the current generation's channel — so delivery holds
// no lock, and no lock is ever contended while nodes compute. Per-edge and
// per-node loads are accounted in dense scratch slices (O(1) per packet, no
// hashing), payloads are copied into per-receiver arenas reused round over
// round, and sender-side buffers (for example the Mux's tagged packets) are
// recycled through a sync.Pool, so a steady-state round allocates nothing
// beyond the generation channel.
//
// Executions are deterministic: delivery scans senders in ascending id order
// and node programs see identical inboxes and metrics on every run of the
// same workload, for every worker count.
//
// # Sessions
//
// One Network supports an unbounded sequence of (non-overlapping) runs —
// the substrate of the public session API. Every run after the first starts
// from a fully reset engine (barrier generation, round counter, metrics,
// arenas, strict-budget accounting, step accounting, shared-computation
// cache) while retaining the allocated capacity of every buffer, Node
// struct and outbox array, so a run on a warm engine performs no
// construction work. The shared cache is deliberately scoped per run: the
// memoised values are colorings of the run's demand matrices, which depend
// on the instance data, not only on n. Metrics is the per-run view and
// CumulativeMetrics the across-run aggregate; Close releases the pooled
// delivery buffers.
//
// RunContext and RunRoundsContext accept a context: a cancellation is
// recorded as the engine failure and the next barrier turn-over wakes every
// parked node with the error instead of delivering, exactly like a hardened
// delivery panic — no goroutine is ever stranded, and the Network remains
// usable for further runs.
//
// # Engine-local vs shared state (concurrent Networks)
//
// Multiple Networks may run concurrently in one process (the public session
// API pools them behind one handle). The locality rules:
//
//   - Engine-local, by ownership: the netBuffers delivery state (arenas,
//     backbones, outboxes, Node structs) is checked out of the process-wide
//     netBufPool at New and owned exclusively by that Network until Close —
//     two live Networks never share a buffer set. The shared-computation
//     cache, metrics, cumulative totals and step accounting are plain fields
//     of the Network, guarded by its own mutexes.
//   - Shared, by design: netBufPool itself, wordBufPool (sender-side packet
//     buffers; released only after delivery has copied the payload) and the
//     protocol layer's comm-scratch pool are process-wide sync.Pools. They
//     exchange only quiescent buffers — a buffer is either owned by exactly
//     one run or sitting in the pool — so concurrent Networks recycle
//     through them without coordination beyond the Pool's own.
//
// Nothing else is process-global; running k Networks costs k times the
// engine-local state plus whatever the pools currently cache.
//
// Node programs are written against the Exchanger interface so that the same
// algorithm code can run either directly on a physical Node or on a virtual
// node provided by a Mux, which multiplexes several logical protocol
// instances onto one physical node in lockstep rounds (used by the
// non-square-n construction of Theorem 3.7 and by the sorting pipeline).
package clique
