// Package clique implements the congested-clique execution substrate used by
// every algorithm in this repository.
//
// The model (Section 2 of Lenzen, PODC 2013) is a fully connected system of n
// nodes with unique identifiers, computing in synchronous rounds. In each
// round every node performs arbitrary local computation and sends one message
// of O(log n) bits along each of its n-1 incident edges (nodes also "send to
// themselves" for uniformity). The package simulates this model in-process:
//
//   - one goroutine per node executes the node program,
//   - Exchange() is the synchronous round barrier,
//   - messages are slices of 64-bit words; the O(log n)-bit budget of the
//     model corresponds to a small constant number of words per directed edge
//     per round, which the engine records (and can enforce strictly),
//   - per-round metrics capture message counts, word counts and the maximum
//     load on any directed edge, the observables the paper's bounds speak to.
//
// Node programs are written against the Exchanger interface so that the same
// algorithm code can run either directly on a physical Node or on a virtual
// node provided by a Mux, which multiplexes several logical protocol
// instances onto one physical node in lockstep rounds (used by the
// non-square-n construction of Theorem 3.7 and by the sorting pipeline).
package clique
