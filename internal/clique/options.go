package clique

import "fmt"

// config holds the tunable behaviour of a Network. It is populated through
// functional options so the zero configuration stays usable.
type config struct {
	// maxWordsPerEdge, when positive, makes the engine fail the run as soon as
	// any directed edge carries more than this many words in a single round.
	// Zero disables strict enforcement (loads are still recorded in Metrics).
	maxWordsPerEdge int
	// sharedCache enables the deterministic shared-computation cache exposed
	// through Exchanger.SharedCompute. Disabling it makes every node perform
	// the computation itself, which changes nothing observable except
	// simulator wall-clock time.
	sharedCache bool
	// recordPerRound controls whether Metrics.PerRound is populated. Disabling
	// it saves memory for very long executions.
	recordPerRound bool
}

func defaultConfig() config {
	return config{
		maxWordsPerEdge: 0,
		sharedCache:     true,
		recordPerRound:  true,
	}
}

// Option customises a Network.
type Option func(*config) error

// WithStrictEdgeBudget makes the network fail the execution if any directed
// edge ever carries more than words words in one round. This is how tests
// assert that an algorithm respects the O(log n)-bits-per-edge model.
func WithStrictEdgeBudget(words int) Option {
	return func(c *config) error {
		if words <= 0 {
			return fmt.Errorf("clique: strict edge budget must be positive, got %d", words)
		}
		c.maxWordsPerEdge = words
		return nil
	}
}

// WithSharedCache enables or disables the deterministic shared-computation
// cache (see Exchanger.SharedCompute). It is enabled by default.
func WithSharedCache(enabled bool) Option {
	return func(c *config) error {
		c.sharedCache = enabled
		return nil
	}
}

// WithPerRoundStats enables or disables per-round statistics retention. It is
// enabled by default.
func WithPerRoundStats(enabled bool) Option {
	return func(c *config) error {
		c.recordPerRound = enabled
		return nil
	}
}
