package clique

import "fmt"

// config holds the tunable behaviour of a Network. It is populated through
// functional options so the zero configuration stays usable.
type config struct {
	// maxWordsPerEdge, when positive, makes the engine fail the run as soon as
	// any directed edge carries more than this many words in a single round.
	// Zero disables strict enforcement (loads are still recorded in Metrics).
	maxWordsPerEdge int
	// sharedCache enables the deterministic shared-computation cache exposed
	// through Exchanger.SharedCompute. Disabling it makes every node perform
	// the computation itself, which changes nothing observable except
	// simulator wall-clock time.
	sharedCache bool
	// recordPerRound controls whether Metrics.PerRound is populated. Disabling
	// it saves memory for very long executions.
	recordPerRound bool
	// workers bounds scheduling concurrency. For Network.RunRounds it is the
	// size of the worker pool that n logical nodes are multiplexed onto
	// (0 = GOMAXPROCS). For Network.Run it bounds, when 0 < workers < n, how
	// many node goroutines compute concurrently.
	workers int
}

func defaultConfig() config {
	return config{
		maxWordsPerEdge: 0,
		sharedCache:     true,
		recordPerRound:  true,
		workers:         0,
	}
}

// Option customises a Network.
type Option func(*config) error

// WithStrictEdgeBudget makes the network fail the execution if any directed
// edge ever carries more than words words in one round. This is how tests
// assert that an algorithm respects the O(log n)-bits-per-edge model.
func WithStrictEdgeBudget(words int) Option {
	return func(c *config) error {
		if words <= 0 {
			return fmt.Errorf("clique: strict edge budget must be positive, got %d", words)
		}
		c.maxWordsPerEdge = words
		return nil
	}
}

// WithWorkers bounds scheduling concurrency to k goroutines. With RunRounds,
// the n logical nodes are multiplexed onto a pool of k workers (k = 0 picks
// GOMAXPROCS), so very large cliques run without one parked goroutine per
// node. With the blocking Run API, 0 < k < n additionally bounds how many of
// the n node goroutines compute at once; nodes parked at the round barrier
// do not count. Executions are deterministic for every choice of k.
func WithWorkers(k int) Option {
	return func(c *config) error {
		if k < 0 {
			return fmt.Errorf("clique: worker count must be non-negative, got %d", k)
		}
		c.workers = k
		return nil
	}
}

// WithSharedCache enables or disables the deterministic shared-computation
// cache (see Exchanger.SharedCompute). It is enabled by default.
func WithSharedCache(enabled bool) Option {
	return func(c *config) error {
		c.sharedCache = enabled
		return nil
	}
}

// WithPerRoundStats enables or disables per-round statistics retention. It is
// enabled by default.
func WithPerRoundStats(enabled bool) Option {
	return func(c *config) error {
		c.recordPerRound = enabled
		return nil
	}
}
