package clique

import (
	"fmt"
	"time"
)

// config holds the tunable behaviour of a Network. It is populated through
// functional options so the zero configuration stays usable.
type config struct {
	// maxWordsPerEdge, when positive, makes the engine fail the run as soon as
	// any directed edge carries more than this many words in a single round.
	// Zero disables strict enforcement (loads are still recorded in Metrics).
	maxWordsPerEdge int
	// sharedCache enables the deterministic shared-computation cache exposed
	// through Exchanger.SharedCompute. Disabling it makes every node perform
	// the computation itself, which changes nothing observable except
	// simulator wall-clock time.
	sharedCache bool
	// recordPerRound controls whether Metrics.PerRound is populated. Disabling
	// it saves memory for very long executions.
	recordPerRound bool
	// workers bounds scheduling concurrency. For Network.RunRounds it is the
	// size of the worker pool that n logical nodes are multiplexed onto
	// (0 = GOMAXPROCS). For Network.Run it bounds, when 0 < workers < n, how
	// many node goroutines compute concurrently.
	workers int
	// roundDeadline, when positive, arms the round watchdog of the blocking
	// Run path: a round that fails to turn over within this duration fails
	// the run with an error wrapping ErrRoundDeadline naming the unarrived
	// nodes. Zero disables the watchdog.
	roundDeadline time.Duration
}

func defaultConfig() config {
	return config{
		maxWordsPerEdge: 0,
		sharedCache:     true,
		recordPerRound:  true,
		workers:         0,
	}
}

// Option customises a Network.
type Option func(*config) error

// WithStrictEdgeBudget makes the network fail the execution if any directed
// edge ever carries more than words words in one round. This is how tests
// assert that an algorithm respects the O(log n)-bits-per-edge model.
func WithStrictEdgeBudget(words int) Option {
	return func(c *config) error {
		if words <= 0 {
			return fmt.Errorf("clique: strict edge budget must be positive, got %d", words)
		}
		c.maxWordsPerEdge = words
		return nil
	}
}

// WithWorkers bounds scheduling concurrency to k goroutines. With RunRounds,
// the n logical nodes are multiplexed onto a pool of k workers (k = 0 picks
// GOMAXPROCS), so very large cliques run without one parked goroutine per
// node. With the blocking Run API, 0 < k < n additionally bounds how many of
// the n node goroutines compute at once; nodes parked at the round barrier
// do not count. Executions are deterministic for every choice of k.
func WithWorkers(k int) Option {
	return func(c *config) error {
		if k < 0 {
			return fmt.Errorf("clique: worker count must be non-negative, got %d", k)
		}
		c.workers = k
		return nil
	}
}

// WithRoundDeadline arms the round watchdog: if a round of a blocking run
// (Run/RunContext) fails to turn over within d, the run fails with an error
// wrapping ErrRoundDeadline that names the nodes that had not arrived at the
// barrier, instead of hanging forever on a stalled or wedged node. Parked
// nodes and injected stalls are woken immediately; a node blocked inside its
// own compute phase cannot be reaped (goroutines are not killable) but the
// run's error reporting no longer waits on it reaching the barrier. d must
// exceed the longest legitimate round (compute plus delivery) of the
// workload, or healthy slow rounds will be reported as failures. The
// watchdog is a wall-clock mechanism: whether a run that straddles the
// deadline fails is timing-dependent, unlike injected faults, which are
// deterministic. RunRounds is engine-driven and does not use the watchdog.
func WithRoundDeadline(d time.Duration) Option {
	return func(c *config) error {
		if d <= 0 {
			return fmt.Errorf("clique: round deadline must be positive, got %v", d)
		}
		c.roundDeadline = d
		return nil
	}
}

// WithSharedCache enables or disables the deterministic shared-computation
// cache (see Exchanger.SharedCompute). It is enabled by default.
func WithSharedCache(enabled bool) Option {
	return func(c *config) error {
		c.sharedCache = enabled
		return nil
	}
}

// WithPerRoundStats enables or disables per-round statistics retention. It is
// enabled by default.
func WithPerRoundStats(enabled bool) Option {
	return func(c *config) error {
		c.recordPerRound = enabled
		return nil
	}
}
