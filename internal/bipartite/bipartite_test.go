package bipartite

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// buildRegular constructs a pseudo-random d-regular bipartite multigraph on
// s+s vertices by overlaying d random permutations.
func buildRegular(t *testing.T, s, d int, seed int64) *Multigraph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, err := NewMultigraph(s, s)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < d; k++ {
		perm := rng.Perm(s)
		for u, v := range perm {
			g.AddEdge(u, v)
		}
	}
	return g
}

func TestNewMultigraphValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewMultigraph(0, 3); err == nil {
		t.Fatal("zero left side accepted")
	}
	if _, err := NewMultigraph(3, -1); err == nil {
		t.Fatal("negative right side accepted")
	}
}

func TestDegreesAndRegularity(t *testing.T) {
	t.Parallel()
	g := buildRegular(t, 5, 3, 1)
	left, right := g.Degrees()
	for i, d := range left {
		if d != 3 {
			t.Fatalf("left vertex %d degree %d, want 3", i, d)
		}
	}
	for i, d := range right {
		if d != 3 {
			t.Fatalf("right vertex %d degree %d, want 3", i, d)
		}
	}
	if !g.IsRegular(3) {
		t.Fatal("graph should be 3-regular")
	}
	if g.IsRegular(2) {
		t.Fatal("graph should not be 2-regular")
	}
	if g.MaxDegree() != 3 {
		t.Fatalf("max degree %d, want 3", g.MaxDegree())
	}
}

func TestColorExactOnRegularGraphs(t *testing.T) {
	t.Parallel()
	cases := []struct {
		s, d int
	}{
		{1, 1}, {2, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 2}, {6, 7}, {8, 8}, {10, 13}, {16, 16}, {32, 9},
	}
	for _, tc := range cases {
		g := buildRegular(t, tc.s, tc.d, int64(tc.s*100+tc.d))
		col, err := ColorExact(g)
		if err != nil {
			t.Fatalf("s=%d d=%d: %v", tc.s, tc.d, err)
		}
		if col.NumColors != tc.d {
			t.Fatalf("s=%d d=%d: used %d colors, want exactly d (König)", tc.s, tc.d, col.NumColors)
		}
		if err := col.Validate(g); err != nil {
			t.Fatalf("s=%d d=%d: invalid coloring: %v", tc.s, tc.d, err)
		}
	}
}

func TestColorExactOnIrregularGraph(t *testing.T) {
	t.Parallel()
	g, err := NewMultigraph(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// A lopsided graph: vertex 0 has degree 5 (with parallel edges), others less.
	edges := []Edge{{0, 0}, {0, 0}, {0, 1}, {0, 2}, {0, 3}, {1, 1}, {1, 0}, {2, 2}, {3, 3}, {3, 0}}
	for _, e := range edges {
		g.AddEdge(e.U, e.V)
	}
	col, err := ColorExact(g)
	if err != nil {
		t.Fatal(err)
	}
	if col.NumColors != g.MaxDegree() {
		t.Fatalf("colors %d, want max degree %d", col.NumColors, g.MaxDegree())
	}
	if err := col.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestColorExactEmptyGraph(t *testing.T) {
	t.Parallel()
	g, err := NewMultigraph(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	col, err := ColorExact(g)
	if err != nil {
		t.Fatal(err)
	}
	if col.NumColors != 0 || len(col.Colors) != 0 {
		t.Fatalf("empty graph coloring: %+v", col)
	}
}

func TestColorGreedyBound(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct{ s, d int }{{3, 2}, {5, 5}, {8, 6}, {16, 10}} {
		g := buildRegular(t, tc.s, tc.d, int64(tc.s*7+tc.d))
		col := ColorGreedy(g)
		if col.NumColors > 2*tc.d-1 {
			t.Fatalf("greedy used %d colors, bound is %d", col.NumColors, 2*tc.d-1)
		}
		if err := col.Validate(g); err != nil {
			t.Fatal(err)
		}
	}
}

func TestColorEulerSplit(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct{ s, d int }{{2, 2}, {4, 4}, {5, 8}, {8, 16}, {16, 4}} {
		g := buildRegular(t, tc.s, tc.d, int64(tc.s*13+tc.d))
		col, err := ColorEulerSplit(g)
		if err != nil {
			t.Fatalf("s=%d d=%d: %v", tc.s, tc.d, err)
		}
		if col.NumColors != tc.d {
			t.Fatalf("s=%d d=%d: %d colors", tc.s, tc.d, col.NumColors)
		}
		if err := col.Validate(g); err != nil {
			t.Fatalf("s=%d d=%d: %v", tc.s, tc.d, err)
		}
	}
}

func TestColorEulerSplitRejectsIrregularAndOddDegree(t *testing.T) {
	t.Parallel()
	g, _ := NewMultigraph(2, 2)
	g.AddEdge(0, 0)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	if _, err := ColorEulerSplit(g); !errors.Is(err, ErrNotBipartiteRegular) {
		t.Fatalf("want ErrNotBipartiteRegular, got %v", err)
	}
	g3 := buildRegular(t, 4, 3, 3)
	if _, err := ColorEulerSplit(g3); err == nil {
		t.Fatal("odd degree should be rejected")
	}
}

func TestColoringValidateCatchesBadColorings(t *testing.T) {
	t.Parallel()
	g, _ := NewMultigraph(2, 2)
	g.AddEdge(0, 0)
	g.AddEdge(0, 1)
	bad := &Coloring{Colors: []int{0, 0}, NumColors: 2}
	if err := bad.Validate(g); err == nil {
		t.Fatal("shared left vertex with same color should be invalid")
	}
	tooFew := &Coloring{Colors: []int{0}, NumColors: 2}
	if err := tooFew.Validate(g); err == nil {
		t.Fatal("length mismatch should be invalid")
	}
	outOfRange := &Coloring{Colors: []int{0, 5}, NumColors: 2}
	if err := outOfRange.Validate(g); err == nil {
		t.Fatal("out-of-range color should be invalid")
	}
}

// TestColorExactPropertyRandomRegular is a property-based check: for random
// regular multigraphs, ColorExact always yields a proper coloring with
// exactly d colors (König's theorem).
func TestColorExactPropertyRandomRegular(t *testing.T) {
	t.Parallel()
	f := func(sRaw, dRaw uint8, seed int64) bool {
		s := int(sRaw)%12 + 1
		d := int(dRaw)%12 + 1
		rng := rand.New(rand.NewSource(seed))
		g, err := NewMultigraph(s, s)
		if err != nil {
			return false
		}
		for k := 0; k < d; k++ {
			perm := rng.Perm(s)
			for u, v := range perm {
				g.AddEdge(u, v)
			}
		}
		col, err := ColorExact(g)
		if err != nil {
			return false
		}
		return col.NumColors == d && col.Validate(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestColorExactPropertyArbitraryBipartite checks the Δ-coloring property on
// arbitrary (not necessarily regular) random bipartite multigraphs.
func TestColorExactPropertyArbitraryBipartite(t *testing.T) {
	t.Parallel()
	f := func(lRaw, rRaw, mRaw uint8, seed int64) bool {
		l := int(lRaw)%10 + 1
		r := int(rRaw)%10 + 1
		m := int(mRaw) % 60
		rng := rand.New(rand.NewSource(seed))
		g, err := NewMultigraph(l, r)
		if err != nil {
			return false
		}
		for k := 0; k < m; k++ {
			g.AddEdge(rng.Intn(l), rng.Intn(r))
		}
		col, err := ColorExact(g)
		if err != nil {
			return false
		}
		return col.NumColors == g.MaxDegree() && col.Validate(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g, _ := NewMultigraph(2, 2)
	g.AddEdge(2, 0)
}
