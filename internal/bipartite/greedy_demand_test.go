package bipartite

import (
	"testing"
	"testing/quick"
)

func TestColorDemandGreedyBalanced(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct{ s, d int }{{1, 1}, {2, 3}, {4, 4}, {8, 20}, {16, 16}, {32, 40}} {
		demand := randomBalancedDemand(tc.s, tc.d, int64(tc.s*997+tc.d))
		dc, err := ColorDemandGreedy(demand)
		if err != nil {
			t.Fatalf("s=%d d=%d: %v", tc.s, tc.d, err)
		}
		if dc.NumColors > 2*tc.d-1 {
			t.Fatalf("s=%d d=%d: %d colors exceeds greedy bound %d", tc.s, tc.d, dc.NumColors, 2*tc.d-1)
		}
		if err := dc.Validate(demand); err != nil {
			t.Fatalf("s=%d d=%d: %v", tc.s, tc.d, err)
		}
	}
}

func TestColorDemandGreedyBounded(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct{ s, d int }{{3, 4}, {5, 7}, {8, 12}, {16, 40}} {
		demand := randomBoundedDemand(tc.s, tc.d, int64(tc.s*13+tc.d))
		dc, err := ColorDemandGreedy(demand)
		if err != nil {
			t.Fatalf("s=%d d=%d: %v", tc.s, tc.d, err)
		}
		if err := dc.Validate(demand); err != nil {
			t.Fatalf("s=%d d=%d: %v", tc.s, tc.d, err)
		}
	}
}

func TestColorDemandGreedyErrors(t *testing.T) {
	t.Parallel()
	if _, err := ColorDemandGreedy(nil); err == nil {
		t.Fatal("empty demand accepted")
	}
	if _, err := ColorDemandGreedy([][]int{{1, 0}}); err == nil {
		t.Fatal("non-square demand accepted")
	}
	dc, err := ColorDemandGreedy([][]int{{0, 0}, {0, 0}})
	if err != nil || dc.NumColors != 0 {
		t.Fatalf("zero demand should color trivially, got %v %v", dc, err)
	}
}

func TestUniformDemandShortcut(t *testing.T) {
	t.Parallel()
	// A constant matrix must be colored with exactly n*u colors (perfectly
	// tight) by both colorers, via the Latin-square shortcut.
	const n, u = 5, 3
	demand := make([][]int, n)
	for i := range demand {
		demand[i] = make([]int, n)
		for j := range demand[i] {
			demand[i][j] = u
		}
	}
	exact, err := ColorDemandMatrix(demand, n*u)
	if err != nil {
		t.Fatal(err)
	}
	if exact.NumColors != n*u {
		t.Fatalf("exact coloring uses %d colors, want %d", exact.NumColors, n*u)
	}
	if err := exact.Validate(demand); err != nil {
		t.Fatal(err)
	}
	greedy, err := ColorDemandGreedy(demand)
	if err != nil {
		t.Fatal(err)
	}
	if greedy.NumColors != n*u {
		t.Fatalf("greedy coloring uses %d colors, want %d (uniform shortcut)", greedy.NumColors, n*u)
	}
	if err := greedy.Validate(demand); err != nil {
		t.Fatal(err)
	}
}

// TestColorDemandGreedyProperty: the greedy coloring is always proper and
// never uses more than 2Δ-1 colors.
func TestColorDemandGreedyProperty(t *testing.T) {
	t.Parallel()
	f := func(sRaw, dRaw uint8, seed int64) bool {
		s := int(sRaw)%10 + 1
		d := int(dRaw)%15 + 1
		demand := randomBoundedDemand(s, d, seed)
		dc, err := ColorDemandGreedy(demand)
		if err != nil {
			return false
		}
		delta := MaxRowColSum(demand)
		bound := 2*delta - 1
		if delta == 0 {
			bound = 0
		}
		// The uniform shortcut may use fewer colors than the general bound.
		return dc.NumColors <= maxInt(bound, delta) && dc.Validate(demand) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestFreeSetRemove(t *testing.T) {
	t.Parallel()
	f := newFreeSet(10)
	f.remove(3, 4) // free: [0,3) [7,10)
	if len(f.intervals) != 2 || f.intervals[0] != (ColorRun{0, 3}) || f.intervals[1] != (ColorRun{7, 3}) {
		t.Fatalf("unexpected intervals %v", f.intervals)
	}
	f.remove(0, 1) // free: [1,3) [7,10)
	f.remove(8, 1) // free: [1,3) [7,8) [9,10)
	if len(f.intervals) != 3 {
		t.Fatalf("unexpected intervals %v", f.intervals)
	}
	f.remove(0, 10)
	if len(f.intervals) != 0 {
		t.Fatalf("expected empty, got %v", f.intervals)
	}
}
