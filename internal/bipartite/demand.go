package bipartite

import (
	"fmt"
	"sync"
)

// A demand matrix D is the compact form of a bipartite multigraph: D[i][j]
// parallel edges connect left vertex i to right vertex j. The paper's routing
// primitives all operate on such matrices ("node i holds D[i][j] messages for
// node j"), so coloring them directly — without expanding every parallel
// edge — is both faster and closer to the per-node computation bounds of
// Section 5.

// ColorRun is a contiguous block of colors assigned to one cell of a demand
// matrix: colors Start, Start+1, ..., Start+Len-1.
type ColorRun struct {
	Start int
	Len   int
}

// DemandColoring is a proper edge coloring of the multigraph described by a
// demand matrix, in run-length form. Runs[i][j] lists the color blocks given
// to the D[i][j] units of cell (i,j); the total length of the runs equals
// D[i][j], and no color appears twice in any row or column.
type DemandColoring struct {
	NumColors int
	Runs      [][][]ColorRun
}

// ColorOfUnit returns the color of the k-th unit (0-based) of cell (i,j).
func (dc *DemandColoring) ColorOfUnit(i, j, k int) (int, error) {
	rem := k
	for _, run := range dc.Runs[i][j] {
		if rem < run.Len {
			return run.Start + rem, nil
		}
		rem -= run.Len
	}
	return 0, fmt.Errorf("bipartite: cell (%d,%d) has no unit %d", i, j, k)
}

// Validate checks that dc is a proper coloring of demand.
func (dc *DemandColoring) Validate(demand [][]int) error {
	rows := len(demand)
	if rows == 0 {
		return nil
	}
	cols := len(demand[0])
	rowSeen := make([]map[int]bool, rows)
	colSeen := make([]map[int]bool, cols)
	for i := range rowSeen {
		rowSeen[i] = make(map[int]bool)
	}
	for j := range colSeen {
		colSeen[j] = make(map[int]bool)
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			total := 0
			for _, run := range dc.Runs[i][j] {
				if run.Len <= 0 {
					return fmt.Errorf("bipartite: cell (%d,%d) has non-positive run", i, j)
				}
				total += run.Len
				for c := run.Start; c < run.Start+run.Len; c++ {
					if c < 0 || c >= dc.NumColors {
						return fmt.Errorf("bipartite: cell (%d,%d) uses color %d outside [0,%d)", i, j, c, dc.NumColors)
					}
					if rowSeen[i][c] {
						return fmt.Errorf("bipartite: color %d repeated in row %d", c, i)
					}
					rowSeen[i][c] = true
					if colSeen[j][c] {
						return fmt.Errorf("bipartite: color %d repeated in column %d", c, j)
					}
					colSeen[j][c] = true
				}
			}
			if total != demand[i][j] {
				return fmt.Errorf("bipartite: cell (%d,%d) colored %d units, demand %d", i, j, total, demand[i][j])
			}
		}
	}
	return nil
}

// RowColSums returns the row sums and column sums of a demand matrix.
func RowColSums(demand [][]int) (rows, cols []int) {
	r := len(demand)
	if r == 0 {
		return nil, nil
	}
	c := len(demand[0])
	rows = make([]int, r)
	cols = make([]int, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			rows[i] += demand[i][j]
			cols[j] += demand[i][j]
		}
	}
	return rows, cols
}

// MaxRowColSum returns the maximum over all row sums and column sums, i.e.
// the maximum degree of the corresponding multigraph. It allocates nothing:
// it sits on the per-relay hot path of the protocol layer, where the
// RowColSums slices would be the only per-call garbage.
func MaxRowColSum(demand [][]int) int {
	r := len(demand)
	if r == 0 {
		return 0
	}
	max := 0
	cols := 0
	for _, row := range demand {
		s := 0
		for _, v := range row {
			s += v
		}
		if s > max {
			max = s
		}
		if len(row) > cols {
			cols = len(row)
		}
	}
	for j := 0; j < cols; j++ {
		s := 0
		for _, row := range demand {
			if j < len(row) {
				s += row[j]
			}
		}
		if s > max {
			max = s
		}
	}
	return max
}

// PadToRegular returns a copy of demand with dummy demand added so that every
// row sum and every column sum equals exactly d. The paper pads "at most"
// demands to exact regularity so König's theorem applies; dummy units are
// never transmitted. It returns an error if some row or column already
// exceeds d or if the matrix is not square enough to absorb the padding
// (padding a matrix to d-regularity is always possible when it is
// rectangular with max(rows,cols) compatible; for the square matrices used by
// the algorithms it always succeeds).
func PadToRegular(demand [][]int, d int) ([][]int, error) {
	r := len(demand)
	if r == 0 {
		return nil, fmt.Errorf("bipartite: empty demand matrix")
	}
	c := len(demand[0])
	rows, cols := RowColSums(demand)
	totalRowDeficit := 0
	for i, v := range rows {
		if v > d {
			return nil, fmt.Errorf("bipartite: row %d sum %d exceeds target degree %d", i, v, d)
		}
		totalRowDeficit += d - v
	}
	totalColDeficit := 0
	for j, v := range cols {
		if v > d {
			return nil, fmt.Errorf("bipartite: column %d sum %d exceeds target degree %d", j, v, d)
		}
		totalColDeficit += d - v
	}
	if totalRowDeficit != totalColDeficit {
		// Row and column deficits can only differ if the matrix is not
		// square; the algorithms only pad square matrices.
		return nil, fmt.Errorf("bipartite: cannot pad %dx%d matrix to %d-regular (row deficit %d, column deficit %d)",
			r, c, d, totalRowDeficit, totalColDeficit)
	}

	out := make([][]int, r)
	for i := range out {
		out[i] = make([]int, c)
		copy(out[i], demand[i])
	}
	// Classic northwest-corner style filling: repeatedly add as much dummy
	// demand as possible to a (deficient row, deficient column) pair.
	i, j := 0, 0
	rowDef := make([]int, r)
	colDef := make([]int, c)
	for k := range rows {
		rowDef[k] = d - rows[k]
	}
	for k := range cols {
		colDef[k] = d - cols[k]
	}
	for i < r && j < c {
		if rowDef[i] == 0 {
			i++
			continue
		}
		if colDef[j] == 0 {
			j++
			continue
		}
		add := rowDef[i]
		if colDef[j] < add {
			add = colDef[j]
		}
		out[i][j] += add
		rowDef[i] -= add
		colDef[j] -= add
	}
	for k := range rowDef {
		if rowDef[k] != 0 {
			return nil, fmt.Errorf("bipartite: padding failed, row %d still deficient by %d", k, rowDef[k])
		}
	}
	for k := range colDef {
		if colDef[k] != 0 {
			return nil, fmt.Errorf("bipartite: padding failed, column %d still deficient by %d", k, colDef[k])
		}
	}
	return out, nil
}

// ColorDemandMatrix computes a proper d-edge-coloring of the multigraph
// described by demand, where d must be at least the maximum row/column sum.
// The matrix is first padded to exact d-regularity (Theorem 3.2 requires
// regularity); the coloring of the padded matrix is then restricted to the
// real demand.
//
// The construction peels perfect matchings off the padded matrix: by Hall's
// theorem the support of a doubly-d'-regular non-negative matrix always
// contains a perfect matching; peeling the minimum multiplicity t along such
// a matching assigns a block of t colors to every matched cell and leaves a
// (d'-t)-regular matrix. At least one cell reaches zero per iteration, so at
// most rows*cols matchings are computed. This is the run-length analogue of
// decomposing a regular bipartite multigraph into perfect matchings.
func ColorDemandMatrix(demand [][]int, d int) (*DemandColoring, error) {
	r := len(demand)
	if r == 0 {
		return nil, fmt.Errorf("bipartite: empty demand matrix")
	}
	c := len(demand[0])
	if r != c {
		return nil, fmt.Errorf("bipartite: demand matrix must be square, got %dx%d", r, c)
	}
	if max := MaxRowColSum(demand); max > d {
		return nil, fmt.Errorf("bipartite: demand degree %d exceeds requested colors %d", max, d)
	}
	if u := uniformDemandColoring(demand); u != nil && u.NumColors <= d {
		return u, nil
	}

	sc := demandScratchPool.Get().(*demandScratch)
	defer demandScratchPool.Put(sc)
	dc, err := colorDemandScratch(sc, demand, r, d)
	if err != nil {
		return nil, err
	}
	return dc, nil
}

// demandScratch holds the reusable intermediate state of colorDemandScratch.
// Pooling it keeps ColorDemandMatrix down to the four allocations that make
// up the returned DemandColoring; the coloring itself sits on the protocol
// hot path (every non-uniform relay step colors a fresh demand matrix).
type demandScratch struct {
	work     []int     // n*n flattened padded working copy
	rowDef   []int     // per-row padding deficit
	colDef   []int     // per-column padding deficit
	matchRow []int     // Kuhn's: row -> col
	matchCol []int     // Kuhn's: col -> row
	events   []peelRun // per-matching color runs, in peel order
	counts   []int32   // per-cell surviving run count, then fill cursor

	// adjBuf/adjLen hold per-row adjacency lists of the support (columns with
	// strictly positive work, ascending): row i occupies adjBuf[i*n : i*n +
	// adjLen[i]]. Maintained incrementally as peeling zeroes cells, so Kuhn's
	// scans touch only the support instead of all n columns per row.
	adjBuf []int32
	adjLen []int32
	// visitStamp/gen replace the per-row visited-flag clear of Kuhn's
	// algorithm: column j counts as visited when visitStamp[j] == gen, and
	// bumping gen unvisits every column at once. gen survives reset — a fresh
	// (zeroed) stamp slice is always "all unvisited" for any gen >= 1.
	visitStamp []int64
	gen        int64
}

// peelRun records that peeling assigned the colors [start, start+len) to the
// flattened cell index cell. Events for one cell appear in increasing color
// order because colors are handed out monotonically.
type peelRun struct {
	cell  int32
	start int32
	len   int32
}

var demandScratchPool = sync.Pool{New: func() any { return new(demandScratch) }}

func (sc *demandScratch) reset(n int) {
	cells := n * n
	if cap(sc.work) < cells {
		sc.work = make([]int, cells)
		sc.counts = make([]int32, cells)
	}
	sc.work = sc.work[:cells]
	sc.counts = sc.counts[:cells]
	if cap(sc.rowDef) < n {
		sc.rowDef = make([]int, n)
		sc.colDef = make([]int, n)
		sc.matchRow = make([]int, n)
		sc.matchCol = make([]int, n)
		sc.visitStamp = make([]int64, n)
	}
	sc.rowDef = sc.rowDef[:n]
	sc.colDef = sc.colDef[:n]
	sc.matchRow = sc.matchRow[:n]
	sc.matchCol = sc.matchCol[:n]
	sc.visitStamp = sc.visitStamp[:n]
	if cap(sc.adjBuf) < cells {
		sc.adjBuf = make([]int32, cells)
		sc.adjLen = make([]int32, n)
	}
	sc.adjBuf = sc.adjBuf[:cells]
	sc.adjLen = sc.adjLen[:n]
	sc.events = sc.events[:0]
}

// colorDemandScratch is the general (non-uniform) arm of ColorDemandMatrix.
// It pads, peels, and trims entirely inside sc, then compacts the surviving
// runs into an exact-size DemandColoring. The peeling order, the
// northwest-corner padding, and Kuhn's column scan are identical to the
// original nested-slice implementation, so the returned coloring — which
// downstream relay steps turn into concrete send schedules pinned by the
// stats goldens — is bit-identical.
func colorDemandScratch(sc *demandScratch, demand [][]int, n, d int) (*DemandColoring, error) {
	sc.reset(n)

	// Pad to exact d-regularity in place (northwest-corner fill), as in
	// PadToRegular but writing straight into the flat working copy.
	for i := 0; i < n; i++ {
		s := 0
		row := demand[i]
		copy(sc.work[i*n:(i+1)*n], row)
		for _, v := range row {
			s += v
		}
		if s > d {
			return nil, fmt.Errorf("bipartite: row %d sum %d exceeds target degree %d", i, s, d)
		}
		sc.rowDef[i] = d - s
	}
	for j := 0; j < n; j++ {
		s := 0
		for i := 0; i < n; i++ {
			s += sc.work[i*n+j]
		}
		if s > d {
			return nil, fmt.Errorf("bipartite: column %d sum %d exceeds target degree %d", j, s, d)
		}
		sc.colDef[j] = d - s
	}
	for i, j := 0, 0; i < n && j < n; {
		if sc.rowDef[i] == 0 {
			i++
			continue
		}
		if sc.colDef[j] == 0 {
			j++
			continue
		}
		add := sc.rowDef[i]
		if sc.colDef[j] < add {
			add = sc.colDef[j]
		}
		sc.work[i*n+j] += add
		sc.rowDef[i] -= add
		sc.colDef[j] -= add
	}
	for i := 0; i < n; i++ {
		if sc.rowDef[i] != 0 {
			return nil, fmt.Errorf("bipartite: padding failed, row %d still deficient by %d", i, sc.rowDef[i])
		}
	}

	// Build the support adjacency lists (ascending column order, exactly the
	// positive cells) that Kuhn's scans below walk instead of full rows.
	for i := 0; i < n; i++ {
		l := 0
		row := sc.work[i*n : (i+1)*n]
		for j, v := range row {
			if v > 0 {
				sc.adjBuf[i*n+l] = int32(j)
				l++
			}
		}
		sc.adjLen[i] = int32(l)
	}

	// Peel perfect matchings, logging each assigned run instead of growing
	// per-cell slices.
	remaining := d
	nextColor := 0
	for remaining > 0 {
		if err := sc.perfectMatching(n, remaining); err != nil {
			return nil, err
		}
		t := remaining
		for i := 0; i < n; i++ {
			if v := sc.work[i*n+sc.matchRow[i]]; v < t {
				t = v
			}
		}
		if t <= 0 {
			return nil, fmt.Errorf("bipartite: internal error: matching with zero capacity")
		}
		for i := 0; i < n; i++ {
			j := sc.matchRow[i]
			sc.work[i*n+j] -= t
			sc.events = append(sc.events, peelRun{cell: int32(i*n + j), start: int32(nextColor), len: int32(t)})
			if sc.work[i*n+j] == 0 {
				sc.removeAdj(n, i, j)
			}
		}
		nextColor += t
		remaining -= t
	}

	// Trim each cell to its real demand (padding beyond demand[i][j] is dummy
	// and never transmitted; a cell's events are in increasing color order, so
	// the first demand[i][j] colored units are exactly the real ones). First
	// pass counts surviving runs per cell; sc.work is reused to track the
	// remaining real need.
	for i := 0; i < n; i++ {
		copy(sc.work[i*n:(i+1)*n], demand[i])
	}
	for i := range sc.counts {
		sc.counts[i] = 0
	}
	totalRuns := 0
	for _, ev := range sc.events {
		if sc.work[ev.cell] <= 0 {
			continue
		}
		sc.counts[ev.cell]++
		totalRuns++
		sc.work[ev.cell] -= int(ev.len)
	}
	for cell, need := range sc.work {
		if need > 0 {
			return nil, fmt.Errorf("bipartite: cell (%d,%d) under-colored by %d", cell/n, cell%n, need)
		}
	}

	// Compact into exact-size result storage: one flat ColorRun backing array
	// carved into per-cell slices. sc.counts becomes the per-cell fill cursor.
	backing := make([]ColorRun, totalRuns)
	cells := make([][]ColorRun, n*n)
	off := 0
	for cell, cnt := range sc.counts {
		if cnt == 0 {
			continue
		}
		cells[cell] = backing[off : off : off+int(cnt)]
		off += int(cnt)
	}
	for i := 0; i < n; i++ {
		copy(sc.work[i*n:(i+1)*n], demand[i])
	}
	for _, ev := range sc.events {
		need := sc.work[ev.cell]
		if need <= 0 {
			continue
		}
		take := int(ev.len)
		if take > need {
			take = need
		}
		cells[ev.cell] = append(cells[ev.cell], ColorRun{Start: int(ev.start), Len: take})
		sc.work[ev.cell] = need - take
	}
	runs := make([][][]ColorRun, n)
	for i := range runs {
		runs[i] = cells[i*n : (i+1)*n : (i+1)*n]
	}
	return &DemandColoring{NumColors: d, Runs: runs}, nil
}

// perfectMatching finds a perfect matching in the bipartite graph whose edges
// are the strictly positive cells of sc.work (materialised as the adjacency
// lists in sc.adjBuf), using Kuhn's augmenting-path algorithm; the result is
// left in sc.matchRow. The adjacency lists enumerate the support in ascending
// column order — the same columns, in the same order, the original full-row
// scan visited after skipping zeros — keeping the peel sequence, and with it
// the final coloring, deterministic and unchanged.
func (sc *demandScratch) perfectMatching(n, remaining int) error {
	for i := 0; i < n; i++ {
		sc.matchRow[i] = -1
		sc.matchCol[i] = -1
	}
	for i := 0; i < n; i++ {
		sc.gen++
		if !sc.augment(n, i) {
			return fmt.Errorf("bipartite: demand coloring failed with %d colors remaining: %w", remaining,
				fmt.Errorf("bipartite: no perfect matching on support (row %d unmatched); matrix is not doubly balanced", i))
		}
	}
	return nil
}

// augment searches for an augmenting path from row i over the support
// adjacency lists (Kuhn's algorithm inner step). A column is visited for the
// current source row when its stamp equals sc.gen.
func (sc *demandScratch) augment(n, i int) bool {
	row := sc.adjBuf[i*n : i*n+int(sc.adjLen[i])]
	for _, jj := range row {
		j := int(jj)
		if sc.visitStamp[j] == sc.gen {
			continue
		}
		sc.visitStamp[j] = sc.gen
		if sc.matchCol[j] == -1 || sc.augment(n, sc.matchCol[j]) {
			sc.matchRow[i] = j
			sc.matchCol[j] = i
			return true
		}
	}
	return false
}

// removeAdj deletes column j from row i's support adjacency list (the cell
// has reached zero). The list is ascending, so the position is found by
// binary search and the tail shifted left.
func (sc *demandScratch) removeAdj(n, i, j int) {
	l := int(sc.adjLen[i])
	row := sc.adjBuf[i*n : i*n+l]
	lo, hi := 0, l
	for lo < hi {
		mid := (lo + hi) / 2
		if int(row[mid]) < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < l && int(row[lo]) == j {
		copy(row[lo:], row[lo+1:])
		sc.adjLen[i] = int32(l - 1)
	}
}

// ExpandDemand converts a demand matrix into an explicit multigraph, mainly
// for cross-checking the run-length coloring against ColorExact in tests.
func ExpandDemand(demand [][]int) (*Multigraph, error) {
	r := len(demand)
	if r == 0 {
		return nil, fmt.Errorf("bipartite: empty demand matrix")
	}
	c := len(demand[0])
	g, err := NewMultigraph(r, c)
	if err != nil {
		return nil, err
	}
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			for k := 0; k < demand[i][j]; k++ {
				g.AddEdge(i, j)
			}
		}
	}
	return g, nil
}
