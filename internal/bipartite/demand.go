package bipartite

import (
	"fmt"
)

// A demand matrix D is the compact form of a bipartite multigraph: D[i][j]
// parallel edges connect left vertex i to right vertex j. The paper's routing
// primitives all operate on such matrices ("node i holds D[i][j] messages for
// node j"), so coloring them directly — without expanding every parallel
// edge — is both faster and closer to the per-node computation bounds of
// Section 5.

// ColorRun is a contiguous block of colors assigned to one cell of a demand
// matrix: colors Start, Start+1, ..., Start+Len-1.
type ColorRun struct {
	Start int
	Len   int
}

// DemandColoring is a proper edge coloring of the multigraph described by a
// demand matrix, in run-length form. Runs[i][j] lists the color blocks given
// to the D[i][j] units of cell (i,j); the total length of the runs equals
// D[i][j], and no color appears twice in any row or column.
type DemandColoring struct {
	NumColors int
	Runs      [][][]ColorRun
}

// ColorOfUnit returns the color of the k-th unit (0-based) of cell (i,j).
func (dc *DemandColoring) ColorOfUnit(i, j, k int) (int, error) {
	rem := k
	for _, run := range dc.Runs[i][j] {
		if rem < run.Len {
			return run.Start + rem, nil
		}
		rem -= run.Len
	}
	return 0, fmt.Errorf("bipartite: cell (%d,%d) has no unit %d", i, j, k)
}

// Validate checks that dc is a proper coloring of demand.
func (dc *DemandColoring) Validate(demand [][]int) error {
	rows := len(demand)
	if rows == 0 {
		return nil
	}
	cols := len(demand[0])
	rowSeen := make([]map[int]bool, rows)
	colSeen := make([]map[int]bool, cols)
	for i := range rowSeen {
		rowSeen[i] = make(map[int]bool)
	}
	for j := range colSeen {
		colSeen[j] = make(map[int]bool)
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			total := 0
			for _, run := range dc.Runs[i][j] {
				if run.Len <= 0 {
					return fmt.Errorf("bipartite: cell (%d,%d) has non-positive run", i, j)
				}
				total += run.Len
				for c := run.Start; c < run.Start+run.Len; c++ {
					if c < 0 || c >= dc.NumColors {
						return fmt.Errorf("bipartite: cell (%d,%d) uses color %d outside [0,%d)", i, j, c, dc.NumColors)
					}
					if rowSeen[i][c] {
						return fmt.Errorf("bipartite: color %d repeated in row %d", c, i)
					}
					rowSeen[i][c] = true
					if colSeen[j][c] {
						return fmt.Errorf("bipartite: color %d repeated in column %d", c, j)
					}
					colSeen[j][c] = true
				}
			}
			if total != demand[i][j] {
				return fmt.Errorf("bipartite: cell (%d,%d) colored %d units, demand %d", i, j, total, demand[i][j])
			}
		}
	}
	return nil
}

// RowColSums returns the row sums and column sums of a demand matrix.
func RowColSums(demand [][]int) (rows, cols []int) {
	r := len(demand)
	if r == 0 {
		return nil, nil
	}
	c := len(demand[0])
	rows = make([]int, r)
	cols = make([]int, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			rows[i] += demand[i][j]
			cols[j] += demand[i][j]
		}
	}
	return rows, cols
}

// MaxRowColSum returns the maximum over all row sums and column sums, i.e.
// the maximum degree of the corresponding multigraph. It allocates nothing:
// it sits on the per-relay hot path of the protocol layer, where the
// RowColSums slices would be the only per-call garbage.
func MaxRowColSum(demand [][]int) int {
	r := len(demand)
	if r == 0 {
		return 0
	}
	max := 0
	cols := 0
	for _, row := range demand {
		s := 0
		for _, v := range row {
			s += v
		}
		if s > max {
			max = s
		}
		if len(row) > cols {
			cols = len(row)
		}
	}
	for j := 0; j < cols; j++ {
		s := 0
		for _, row := range demand {
			if j < len(row) {
				s += row[j]
			}
		}
		if s > max {
			max = s
		}
	}
	return max
}

// PadToRegular returns a copy of demand with dummy demand added so that every
// row sum and every column sum equals exactly d. The paper pads "at most"
// demands to exact regularity so König's theorem applies; dummy units are
// never transmitted. It returns an error if some row or column already
// exceeds d or if the matrix is not square enough to absorb the padding
// (padding a matrix to d-regularity is always possible when it is
// rectangular with max(rows,cols) compatible; for the square matrices used by
// the algorithms it always succeeds).
func PadToRegular(demand [][]int, d int) ([][]int, error) {
	r := len(demand)
	if r == 0 {
		return nil, fmt.Errorf("bipartite: empty demand matrix")
	}
	c := len(demand[0])
	rows, cols := RowColSums(demand)
	totalRowDeficit := 0
	for i, v := range rows {
		if v > d {
			return nil, fmt.Errorf("bipartite: row %d sum %d exceeds target degree %d", i, v, d)
		}
		totalRowDeficit += d - v
	}
	totalColDeficit := 0
	for j, v := range cols {
		if v > d {
			return nil, fmt.Errorf("bipartite: column %d sum %d exceeds target degree %d", j, v, d)
		}
		totalColDeficit += d - v
	}
	if totalRowDeficit != totalColDeficit {
		// Row and column deficits can only differ if the matrix is not
		// square; the algorithms only pad square matrices.
		return nil, fmt.Errorf("bipartite: cannot pad %dx%d matrix to %d-regular (row deficit %d, column deficit %d)",
			r, c, d, totalRowDeficit, totalColDeficit)
	}

	out := make([][]int, r)
	for i := range out {
		out[i] = make([]int, c)
		copy(out[i], demand[i])
	}
	// Classic northwest-corner style filling: repeatedly add as much dummy
	// demand as possible to a (deficient row, deficient column) pair.
	i, j := 0, 0
	rowDef := make([]int, r)
	colDef := make([]int, c)
	for k := range rows {
		rowDef[k] = d - rows[k]
	}
	for k := range cols {
		colDef[k] = d - cols[k]
	}
	for i < r && j < c {
		if rowDef[i] == 0 {
			i++
			continue
		}
		if colDef[j] == 0 {
			j++
			continue
		}
		add := rowDef[i]
		if colDef[j] < add {
			add = colDef[j]
		}
		out[i][j] += add
		rowDef[i] -= add
		colDef[j] -= add
	}
	for k := range rowDef {
		if rowDef[k] != 0 {
			return nil, fmt.Errorf("bipartite: padding failed, row %d still deficient by %d", k, rowDef[k])
		}
	}
	for k := range colDef {
		if colDef[k] != 0 {
			return nil, fmt.Errorf("bipartite: padding failed, column %d still deficient by %d", k, colDef[k])
		}
	}
	return out, nil
}

// ColorDemandMatrix computes a proper d-edge-coloring of the multigraph
// described by demand, where d must be at least the maximum row/column sum.
// The matrix is first padded to exact d-regularity (Theorem 3.2 requires
// regularity); the coloring of the padded matrix is then restricted to the
// real demand.
//
// The construction peels perfect matchings off the padded matrix: by Hall's
// theorem the support of a doubly-d'-regular non-negative matrix always
// contains a perfect matching; peeling the minimum multiplicity t along such
// a matching assigns a block of t colors to every matched cell and leaves a
// (d'-t)-regular matrix. At least one cell reaches zero per iteration, so at
// most rows*cols matchings are computed. This is the run-length analogue of
// decomposing a regular bipartite multigraph into perfect matchings.
func ColorDemandMatrix(demand [][]int, d int) (*DemandColoring, error) {
	r := len(demand)
	if r == 0 {
		return nil, fmt.Errorf("bipartite: empty demand matrix")
	}
	c := len(demand[0])
	if r != c {
		return nil, fmt.Errorf("bipartite: demand matrix must be square, got %dx%d", r, c)
	}
	if max := MaxRowColSum(demand); max > d {
		return nil, fmt.Errorf("bipartite: demand degree %d exceeds requested colors %d", max, d)
	}
	if u := uniformDemandColoring(demand); u != nil && u.NumColors <= d {
		return u, nil
	}

	padded, err := PadToRegular(demand, d)
	if err != nil {
		return nil, err
	}

	runs := make([][][]ColorRun, r)
	for i := range runs {
		runs[i] = make([][]ColorRun, c)
	}
	remaining := d
	nextColor := 0
	work := make([][]int, r)
	for i := range work {
		work[i] = make([]int, c)
		copy(work[i], padded[i])
	}

	for remaining > 0 {
		match, err := perfectMatchingOnSupport(work)
		if err != nil {
			return nil, fmt.Errorf("bipartite: demand coloring failed with %d colors remaining: %w", remaining, err)
		}
		t := remaining
		for i, j := range match {
			if work[i][j] < t {
				t = work[i][j]
			}
		}
		if t <= 0 {
			return nil, fmt.Errorf("bipartite: internal error: matching with zero capacity")
		}
		for i, j := range match {
			work[i][j] -= t
			// Only record runs for real demand; padding beyond demand[i][j]
			// is dummy and never transmitted. A cell's runs are recorded in
			// increasing color order, so the first demand[i][j] colored units
			// are exactly the real ones.
			runs[i][j] = append(runs[i][j], ColorRun{Start: nextColor, Len: t})
		}
		nextColor += t
		remaining -= t
	}

	// Trim each cell's runs to its real demand (drop the dummy suffix).
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			need := demand[i][j]
			var trimmed []ColorRun
			for _, run := range runs[i][j] {
				if need <= 0 {
					break
				}
				take := run.Len
				if take > need {
					take = need
				}
				trimmed = append(trimmed, ColorRun{Start: run.Start, Len: take})
				need -= take
			}
			if need > 0 {
				return nil, fmt.Errorf("bipartite: cell (%d,%d) under-colored by %d", i, j, need)
			}
			runs[i][j] = trimmed
		}
	}

	return &DemandColoring{NumColors: d, Runs: runs}, nil
}

// perfectMatchingOnSupport finds a perfect matching in the bipartite graph
// whose edges are the strictly positive cells of work, using Kuhn's
// augmenting-path algorithm. It returns match[i] = j for every row i.
func perfectMatchingOnSupport(work [][]int) ([]int, error) {
	n := len(work)
	matchRow := make([]int, n) // row -> col
	matchCol := make([]int, n) // col -> row
	for i := range matchRow {
		matchRow[i] = -1
		matchCol[i] = -1
	}
	visited := make([]bool, n)

	var augment func(i int) bool
	augment = func(i int) bool {
		for j := 0; j < n; j++ {
			if work[i][j] <= 0 || visited[j] {
				continue
			}
			visited[j] = true
			if matchCol[j] == -1 || augment(matchCol[j]) {
				matchRow[i] = j
				matchCol[j] = i
				return true
			}
		}
		return false
	}

	for i := 0; i < n; i++ {
		for k := range visited {
			visited[k] = false
		}
		if !augment(i) {
			return nil, fmt.Errorf("bipartite: no perfect matching on support (row %d unmatched); matrix is not doubly balanced", i)
		}
	}
	return matchRow, nil
}

// ExpandDemand converts a demand matrix into an explicit multigraph, mainly
// for cross-checking the run-length coloring against ColorExact in tests.
func ExpandDemand(demand [][]int) (*Multigraph, error) {
	r := len(demand)
	if r == 0 {
		return nil, fmt.Errorf("bipartite: empty demand matrix")
	}
	c := len(demand[0])
	g, err := NewMultigraph(r, c)
	if err != nil {
		return nil, err
	}
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			for k := 0; k < demand[i][j]; k++ {
				g.AddEdge(i, j)
			}
		}
	}
	return g, nil
}
