package bipartite

import "fmt"

// uniformDemandColoring recognises the common special case of a constant
// demand matrix (every cell holds exactly u units, as in the announcement
// patterns of Corollaries 3.3/3.4) and colors it with a Latin-square layout:
// cell (i,j) receives the color block ((i+j) mod n)*u .. +u. This avoids any
// matching computation for the patterns that are known a priori.
func uniformDemandColoring(demand [][]int) *DemandColoring {
	n := len(demand)
	if n == 0 {
		return nil
	}
	u := demand[0][0]
	for i := 0; i < n; i++ {
		if len(demand[i]) != n {
			return nil
		}
		for j := 0; j < n; j++ {
			if demand[i][j] != u {
				return nil
			}
		}
	}
	if u == 0 {
		return nil
	}
	// Three flat backing arrays instead of 1+n+n^2 allocations: the routing
	// layer builds one of these per announcement step per group.
	runs := make([][][]ColorRun, n)
	cells := make([][]ColorRun, n*n)
	backing := make([]ColorRun, n*n)
	for i := range runs {
		runs[i] = cells[i*n : (i+1)*n : (i+1)*n]
		for j := range runs[i] {
			backing[i*n+j] = ColorRun{Start: ((i + j) % n) * u, Len: u}
			runs[i][j] = backing[i*n+j : i*n+j+1 : i*n+j+1]
		}
	}
	return &DemandColoring{NumColors: n * u, Runs: runs}
}

// ColorDemandGreedy colors the multigraph described by a square demand
// matrix with at most 2Δ-1 colors, where Δ is the maximum row/column sum,
// using the greedy strategy of the paper's footnote 3 / Section 5. Compared
// to ColorDemandMatrix it needs no matching computations — the work is
// proportional to the number of non-zero cells plus the number of color-run
// fragments — at the price of up to twice as many colors, which the routing
// layer absorbs by letting relays carry two messages per edge.
func ColorDemandGreedy(demand [][]int) (*DemandColoring, error) {
	r := len(demand)
	if r == 0 {
		return nil, fmt.Errorf("bipartite: empty demand matrix")
	}
	c := len(demand[0])
	if r != c {
		return nil, fmt.Errorf("bipartite: demand matrix must be square, got %dx%d", r, c)
	}
	if u := uniformDemandColoring(demand); u != nil {
		return u, nil
	}
	delta := MaxRowColSum(demand)
	if delta == 0 {
		return &DemandColoring{NumColors: 0, Runs: emptyRuns(r, c)}, nil
	}
	numColors := 2*delta - 1

	rowFree := make([]*freeSet, r)
	colFree := make([]*freeSet, c)
	for i := range rowFree {
		rowFree[i] = newFreeSet(numColors)
	}
	for j := range colFree {
		colFree[j] = newFreeSet(numColors)
	}

	runs := make([][][]ColorRun, r)
	for i := range runs {
		runs[i] = make([][]ColorRun, c)
	}
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			need := demand[i][j]
			if need == 0 {
				continue
			}
			assigned, err := takeCommon(rowFree[i], colFree[j], need)
			if err != nil {
				return nil, fmt.Errorf("bipartite: greedy coloring cell (%d,%d): %w", i, j, err)
			}
			runs[i][j] = assigned
		}
	}
	return &DemandColoring{NumColors: numColors, Runs: runs}, nil
}

func emptyRuns(r, c int) [][][]ColorRun {
	runs := make([][][]ColorRun, r)
	for i := range runs {
		runs[i] = make([][]ColorRun, c)
	}
	return runs
}

// freeSet is an ordered list of disjoint free color intervals.
type freeSet struct {
	intervals []ColorRun
}

func newFreeSet(numColors int) *freeSet {
	return &freeSet{intervals: []ColorRun{{Start: 0, Len: numColors}}}
}

// takeCommon removes `need` colors present in both free sets and returns them
// as runs. The greedy bound guarantees enough common colors exist as long as
// both sets stem from a matrix with degree at most Δ and 2Δ-1 colors.
func takeCommon(a, b *freeSet, need int) ([]ColorRun, error) {
	var taken []ColorRun
	ai, bi := 0, 0
	for need > 0 && ai < len(a.intervals) && bi < len(b.intervals) {
		ra, rb := a.intervals[ai], b.intervals[bi]
		lo := ra.Start
		if rb.Start > lo {
			lo = rb.Start
		}
		hiA := ra.Start + ra.Len
		hiB := rb.Start + rb.Len
		hi := hiA
		if hiB < hi {
			hi = hiB
		}
		if lo >= hi {
			if hiA <= hiB {
				ai++
			} else {
				bi++
			}
			continue
		}
		take := hi - lo
		if take > need {
			take = need
		}
		taken = append(taken, ColorRun{Start: lo, Len: take})
		need -= take
		a.remove(lo, take)
		b.remove(lo, take)
		// Removal may have shifted interval indices; restart the scan from the
		// beginning of whichever list is shorter. The lists stay short (a few
		// fragments), so this does not change the asymptotics.
		ai, bi = 0, 0
	}
	if need > 0 {
		return nil, fmt.Errorf("ran out of common free colors (still need %d)", need)
	}
	return taken, nil
}

// remove deletes the color range [start, start+length) from the free set.
func (f *freeSet) remove(start, length int) {
	end := start + length
	var out []ColorRun
	for _, iv := range f.intervals {
		ivEnd := iv.Start + iv.Len
		if ivEnd <= start || iv.Start >= end {
			out = append(out, iv)
			continue
		}
		if iv.Start < start {
			out = append(out, ColorRun{Start: iv.Start, Len: start - iv.Start})
		}
		if ivEnd > end {
			out = append(out, ColorRun{Start: end, Len: ivEnd - end})
		}
	}
	f.intervals = out
}
