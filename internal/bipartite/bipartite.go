// Package bipartite provides the combinatorial substrate of the paper's
// routing primitives: edge colorings of bipartite multigraphs.
//
// Theorem 3.2 (König's line coloring theorem) states that every d-regular
// bipartite multigraph decomposes into d perfect matchings, i.e. admits a
// proper edge coloring with exactly d colors. Corollary 3.3 of the paper
// turns such a coloring into a two-round routing schedule; almost every step
// of Algorithms 1-4 reduces to computing such a coloring on public data.
//
// The package implements
//
//   - ColorExact: a proper Δ-edge-coloring of any bipartite multigraph
//     (alternating-path / fan-free algorithm, the constructive proof of
//     König's theorem),
//   - ColorGreedy: the 2Δ-1 coloring of footnote 3, used by the
//     low-computation variant of Section 5,
//   - ColorEulerSplit: the divide-and-conquer coloring based on Euler
//     partitions (fast path when Δ is a power of two, and the building block
//     of the Cole-Ost-Schirra style recursion),
//   - demand-matrix helpers (PadToRegular, FromDemand) that turn the paper's
//     "each node sends at most X messages" statements into exactly regular
//     multigraphs by adding dummy demand.
//
// All algorithms are deterministic: every node of the simulated clique that
// runs them on the same input obtains the same coloring, which is what lets
// the nodes agree on a routing schedule without communication.
package bipartite

import (
	"errors"
	"fmt"
)

// Edge is one (multi-)edge of a bipartite multigraph. U indexes the left
// side, V the right side (both 0-based).
type Edge struct {
	U int
	V int
}

// Multigraph is a bipartite multigraph with NL left vertices and NR right
// vertices. Parallel edges are represented by repeated entries in Edges.
type Multigraph struct {
	NL    int
	NR    int
	Edges []Edge
}

// NewMultigraph validates the vertex counts and returns an empty multigraph.
func NewMultigraph(nl, nr int) (*Multigraph, error) {
	if nl <= 0 || nr <= 0 {
		return nil, fmt.Errorf("bipartite: sides must be positive, got %d and %d", nl, nr)
	}
	return &Multigraph{NL: nl, NR: nr}, nil
}

// AddEdge appends one edge. It panics on out-of-range endpoints; callers
// construct graphs from internally validated data.
func (g *Multigraph) AddEdge(u, v int) {
	if u < 0 || u >= g.NL || v < 0 || v >= g.NR {
		panic(fmt.Sprintf("bipartite: edge (%d,%d) out of range (%dx%d)", u, v, g.NL, g.NR))
	}
	g.Edges = append(g.Edges, Edge{U: u, V: v})
}

// Degrees returns the left and right degree sequences.
func (g *Multigraph) Degrees() (left, right []int) {
	left = make([]int, g.NL)
	right = make([]int, g.NR)
	for _, e := range g.Edges {
		left[e.U]++
		right[e.V]++
	}
	return left, right
}

// MaxDegree returns the maximum vertex degree Δ.
func (g *Multigraph) MaxDegree() int {
	left, right := g.Degrees()
	max := 0
	for _, d := range left {
		if d > max {
			max = d
		}
	}
	for _, d := range right {
		if d > max {
			max = d
		}
	}
	return max
}

// IsRegular reports whether every vertex on both sides has degree exactly d.
func (g *Multigraph) IsRegular(d int) bool {
	left, right := g.Degrees()
	for _, x := range left {
		if x != d {
			return false
		}
	}
	for _, x := range right {
		if x != d {
			return false
		}
	}
	return true
}

// Coloring is a proper edge coloring: Colors[i] is the color of Edges[i],
// colors are 0-based and NumColors is the number of colors used.
type Coloring struct {
	Colors    []int
	NumColors int
}

// Validate checks that the coloring is proper for g (no two edges sharing a
// vertex have the same color) and uses colors in [0, NumColors).
func (c *Coloring) Validate(g *Multigraph) error {
	if len(c.Colors) != len(g.Edges) {
		return fmt.Errorf("bipartite: coloring has %d entries for %d edges", len(c.Colors), len(g.Edges))
	}
	seenL := make(map[[2]int]int)
	seenR := make(map[[2]int]int)
	for i, e := range g.Edges {
		col := c.Colors[i]
		if col < 0 || col >= c.NumColors {
			return fmt.Errorf("bipartite: edge %d has color %d outside [0,%d)", i, col, c.NumColors)
		}
		ku := [2]int{e.U, col}
		if j, ok := seenL[ku]; ok {
			return fmt.Errorf("bipartite: edges %d and %d share left vertex %d and color %d", j, i, e.U, col)
		}
		seenL[ku] = i
		kv := [2]int{e.V, col}
		if j, ok := seenR[kv]; ok {
			return fmt.Errorf("bipartite: edges %d and %d share right vertex %d and color %d", j, i, e.V, col)
		}
		seenR[kv] = i
	}
	return nil
}

// ErrNotBipartiteRegular is returned by colorings that require regularity.
var ErrNotBipartiteRegular = errors.New("bipartite: multigraph is not regular")

// ColorExact computes a proper edge coloring of g with exactly Δ colors,
// where Δ is the maximum degree. This is the constructive form of König's
// line coloring theorem (Theorem 3.2 of the paper): for d-regular multigraphs
// the color classes are d perfect matchings.
//
// The algorithm inserts edges one at a time. For edge (u,v) it picks a color
// a free at u and a color b free at v; if a == b the edge is colored a,
// otherwise the alternating a/b path starting at v is flipped, freeing a at v
// so the edge can be colored a. Each insertion touches O(NL+NR) edges, giving
// O(|E|·(NL+NR)) worst-case time, which is ample for the simulator and, more
// importantly, deterministic.
func ColorExact(g *Multigraph) (*Coloring, error) {
	delta := g.MaxDegree()
	if delta == 0 {
		return &Coloring{Colors: []int{}, NumColors: 0}, nil
	}
	m := len(g.Edges)
	colors := make([]int, m)
	for i := range colors {
		colors[i] = -1
	}

	// colorAtL[u*delta+c] / colorAtR[v*delta+c] hold the edge index currently
	// colored c at that vertex, or -1.
	colorAtL := make([]int, g.NL*delta)
	colorAtR := make([]int, g.NR*delta)
	for i := range colorAtL {
		colorAtL[i] = -1
	}
	for i := range colorAtR {
		colorAtR[i] = -1
	}

	freeColor := func(table []int, vertex int) int {
		base := vertex * delta
		for c := 0; c < delta; c++ {
			if table[base+c] == -1 {
				return c
			}
		}
		return -1
	}

	for i, e := range g.Edges {
		a := freeColor(colorAtL, e.U)
		b := freeColor(colorAtR, e.V)
		if a == -1 || b == -1 {
			return nil, fmt.Errorf("bipartite: no free color at edge %d=(%d,%d); max degree computed as %d", i, e.U, e.V, delta)
		}
		if a != b {
			// Flip the alternating a/b path starting at v on the right side.
			// The path alternates edges colored a (entering from the right)
			// and b (entering from the left); it cannot return to u or v, so
			// after flipping, color a becomes free at v.
			flipAlternating(g, colors, colorAtL, colorAtR, delta, e.V, a, b)
		}
		colors[i] = a
		colorAtL[e.U*delta+a] = i
		colorAtR[e.V*delta+a] = i
	}
	return &Coloring{Colors: colors, NumColors: delta}, nil
}

// flipAlternating swaps colors a and b along the maximal alternating path
// that starts at right-vertex v with an edge of color a.
func flipAlternating(g *Multigraph, colors, colorAtL, colorAtR []int, delta, v, a, b int) {
	// Walk the path first, collecting edge indices, then flip. Walking and
	// flipping in one pass is possible but subtler; clarity wins here.
	var path []int
	side := 1 // 1 = currently at a right vertex looking for color a; 0 = left vertex looking for color b
	curR := v
	curL := -1
	want := a
	for {
		var idx int
		if side == 1 {
			idx = colorAtR[curR*delta+want]
		} else {
			idx = colorAtL[curL*delta+want]
		}
		if idx == -1 {
			break
		}
		path = append(path, idx)
		e := g.Edges[idx]
		if side == 1 {
			curL = e.U
			side = 0
		} else {
			curR = e.V
			side = 1
		}
		if want == a {
			want = b
		} else {
			want = a
		}
	}
	for _, idx := range path {
		e := g.Edges[idx]
		old := colors[idx]
		var next int
		if old == a {
			next = b
		} else {
			next = a
		}
		// Clear old registrations.
		if colorAtL[e.U*delta+old] == idx {
			colorAtL[e.U*delta+old] = -1
		}
		if colorAtR[e.V*delta+old] == idx {
			colorAtR[e.V*delta+old] = -1
		}
		colors[idx] = next
	}
	for _, idx := range path {
		e := g.Edges[idx]
		colorAtL[e.U*delta+colors[idx]] = idx
		colorAtR[e.V*delta+colors[idx]] = idx
	}
}

// ColorGreedy colors the edges greedily with at most 2Δ-1 colors in
// O(|E|·Δ) time (footnote 3 of the paper). The resulting color classes are
// matchings but there are up to twice as many of them, which the
// low-computation routing of Section 5 absorbs by doubling message size.
func ColorGreedy(g *Multigraph) *Coloring {
	delta := g.MaxDegree()
	if delta == 0 {
		return &Coloring{Colors: []int{}, NumColors: 0}
	}
	numColors := 2*delta - 1
	colors := make([]int, len(g.Edges))
	usedL := make([]bool, g.NL*numColors)
	usedR := make([]bool, g.NR*numColors)
	for i, e := range g.Edges {
		c := 0
		for ; c < numColors; c++ {
			if !usedL[e.U*numColors+c] && !usedR[e.V*numColors+c] {
				break
			}
		}
		// c < numColors always holds: at most delta-1 colors are blocked at
		// each endpoint, so at most 2delta-2 in total.
		colors[i] = c
		usedL[e.U*numColors+c] = true
		usedR[e.V*numColors+c] = true
	}
	return &Coloring{Colors: colors, NumColors: numColors}
}

// ColorEulerSplit colors a d-regular bipartite multigraph with exactly d
// colors when d is a power of two, by repeatedly splitting the graph into two
// d/2-regular halves along Euler circuits. It returns ErrNotBipartiteRegular
// if the graph is not regular and an error if d is not a power of two; the
// caller falls back to ColorExact in that case. It exists both as a faster
// path for the common power-of-two instances and as an independent oracle for
// cross-checking ColorExact in tests.
func ColorEulerSplit(g *Multigraph) (*Coloring, error) {
	d := g.MaxDegree()
	if d == 0 {
		return &Coloring{Colors: []int{}, NumColors: 0}, nil
	}
	if !g.IsRegular(d) {
		return nil, ErrNotBipartiteRegular
	}
	if d&(d-1) != 0 {
		return nil, fmt.Errorf("bipartite: euler-split coloring needs a power-of-two degree, got %d", d)
	}
	colors := make([]int, len(g.Edges))
	idx := make([]int, len(g.Edges))
	for i := range idx {
		idx[i] = i
	}
	eulerColor(g, idx, 0, d, colors)
	return &Coloring{Colors: colors, NumColors: d}, nil
}

// eulerColor assigns colors [base, base+d) to the sub-multigraph formed by
// the edges in idx, which is d-regular by induction.
func eulerColor(g *Multigraph, idx []int, base, d int, colors []int) {
	if d == 1 {
		for _, i := range idx {
			colors[i] = base
		}
		return
	}
	half0, half1 := eulerSplit(g, idx)
	eulerColor(g, half0, base, d/2, colors)
	eulerColor(g, half1, base+d/2, d/2, colors)
}

// eulerSplit partitions the edges in idx into two halves such that every
// vertex keeps exactly half of its degree in each part. It walks Euler
// circuits (every vertex has even degree) and alternates the circuit edges
// between the two parts.
func eulerSplit(g *Multigraph, idx []int) (part0, part1 []int) {
	// Build adjacency of the sub-multigraph: for each vertex, the incident
	// edge indices. Left vertices occupy [0,NL), right vertices [NL,NL+NR).
	nv := g.NL + g.NR
	adj := make([][]int, nv)
	for _, i := range idx {
		e := g.Edges[i]
		adj[e.U] = append(adj[e.U], i)
		adj[g.NL+e.V] = append(adj[g.NL+e.V], i)
	}
	usedEdge := make(map[int]bool, len(idx))
	cursor := make([]int, nv)
	part0 = make([]int, 0, (len(idx)+1)/2)
	part1 = make([]int, 0, (len(idx)+1)/2)

	other := func(edgeIdx, vertex int) int {
		e := g.Edges[edgeIdx]
		if vertex < g.NL {
			return g.NL + e.V
		}
		return e.U
	}

	for _, start := range idx {
		if usedEdge[start] {
			continue
		}
		// Walk a circuit starting from the left endpoint of this edge.
		v := g.Edges[start].U
		parity := 0
		for {
			var next = -1
			for cursor[v] < len(adj[v]) {
				cand := adj[v][cursor[v]]
				if !usedEdge[cand] {
					next = cand
					break
				}
				cursor[v]++
			}
			if next == -1 {
				break
			}
			usedEdge[next] = true
			if parity == 0 {
				part0 = append(part0, next)
			} else {
				part1 = append(part1, next)
			}
			parity ^= 1
			v = other(next, v)
		}
	}
	return part0, part1
}
