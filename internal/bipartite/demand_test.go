package bipartite

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomBalancedDemand builds a square demand matrix whose row and column
// sums all equal exactly d, by overlaying d random permutation matrices.
func randomBalancedDemand(s, d int, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	m := make([][]int, s)
	for i := range m {
		m[i] = make([]int, s)
	}
	for k := 0; k < d; k++ {
		perm := rng.Perm(s)
		for i, j := range perm {
			m[i][j]++
		}
	}
	return m
}

// randomBoundedDemand builds a square demand matrix whose row and column sums
// are all at most d.
func randomBoundedDemand(s, d int, seed int64) [][]int {
	m := randomBalancedDemand(s, d, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	for i := range m {
		for j := range m[i] {
			if m[i][j] > 0 && rng.Intn(3) == 0 {
				m[i][j] -= rng.Intn(m[i][j] + 1)
			}
		}
	}
	return m
}

func TestRowColSums(t *testing.T) {
	t.Parallel()
	d := [][]int{{1, 2}, {3, 4}}
	rows, cols := RowColSums(d)
	if rows[0] != 3 || rows[1] != 7 || cols[0] != 4 || cols[1] != 6 {
		t.Fatalf("sums wrong: rows=%v cols=%v", rows, cols)
	}
	if MaxRowColSum(d) != 7 {
		t.Fatalf("max sum = %d, want 7", MaxRowColSum(d))
	}
	r, c := RowColSums(nil)
	if r != nil || c != nil {
		t.Fatal("nil matrix should give nil sums")
	}
}

func TestPadToRegular(t *testing.T) {
	t.Parallel()
	d := [][]int{
		{2, 0, 1},
		{0, 1, 0},
		{1, 1, 1},
	}
	padded, err := PadToRegular(d, 5)
	if err != nil {
		t.Fatal(err)
	}
	rows, cols := RowColSums(padded)
	for i, v := range rows {
		if v != 5 {
			t.Fatalf("row %d sum %d, want 5", i, v)
		}
	}
	for j, v := range cols {
		if v != 5 {
			t.Fatalf("col %d sum %d, want 5", j, v)
		}
	}
	// Padding never removes demand.
	for i := range d {
		for j := range d[i] {
			if padded[i][j] < d[i][j] {
				t.Fatalf("padding reduced cell (%d,%d)", i, j)
			}
		}
	}
	// Original is untouched.
	if d[0][0] != 2 {
		t.Fatal("PadToRegular mutated its input")
	}
}

func TestPadToRegularErrors(t *testing.T) {
	t.Parallel()
	if _, err := PadToRegular(nil, 3); err == nil {
		t.Fatal("empty matrix accepted")
	}
	if _, err := PadToRegular([][]int{{4}}, 3); err == nil {
		t.Fatal("row sum above target accepted")
	}
	if _, err := PadToRegular([][]int{{0, 0}, {4, 0}}, 3); err == nil {
		t.Fatal("column sum above target accepted")
	}
}

func TestColorDemandMatrixExactBalanced(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct{ s, d int }{{1, 1}, {2, 3}, {4, 4}, {8, 20}, {16, 16}, {32, 33}} {
		demand := randomBalancedDemand(tc.s, tc.d, int64(tc.s*1000+tc.d))
		dc, err := ColorDemandMatrix(demand, tc.d)
		if err != nil {
			t.Fatalf("s=%d d=%d: %v", tc.s, tc.d, err)
		}
		if dc.NumColors != tc.d {
			t.Fatalf("s=%d d=%d: %d colors", tc.s, tc.d, dc.NumColors)
		}
		if err := dc.Validate(demand); err != nil {
			t.Fatalf("s=%d d=%d: %v", tc.s, tc.d, err)
		}
	}
}

func TestColorDemandMatrixBounded(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct{ s, d int }{{3, 4}, {5, 7}, {8, 12}, {16, 40}} {
		demand := randomBoundedDemand(tc.s, tc.d, int64(tc.s*31+tc.d))
		dc, err := ColorDemandMatrix(demand, tc.d)
		if err != nil {
			t.Fatalf("s=%d d=%d: %v", tc.s, tc.d, err)
		}
		if err := dc.Validate(demand); err != nil {
			t.Fatalf("s=%d d=%d: %v", tc.s, tc.d, err)
		}
	}
}

func TestColorDemandMatrixErrors(t *testing.T) {
	t.Parallel()
	if _, err := ColorDemandMatrix(nil, 2); err == nil {
		t.Fatal("empty demand accepted")
	}
	if _, err := ColorDemandMatrix([][]int{{1, 0}}, 2); err == nil {
		t.Fatal("non-square demand accepted")
	}
	if _, err := ColorDemandMatrix([][]int{{3}}, 2); err == nil {
		t.Fatal("demand exceeding color budget accepted")
	}
}

func TestColorOfUnit(t *testing.T) {
	t.Parallel()
	demand := [][]int{
		{2, 1},
		{1, 2},
	}
	dc, err := ColorDemandMatrix(demand, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Every unit maps to a distinct color within its row and column.
	type rc struct{ row, col, color int }
	seen := map[rc]bool{}
	for i := range demand {
		for j := range demand[i] {
			for k := 0; k < demand[i][j]; k++ {
				c, err := dc.ColorOfUnit(i, j, k)
				if err != nil {
					t.Fatal(err)
				}
				if seen[rc{i, -1, c}] || seen[rc{-1, j, c}] {
					t.Fatalf("color %d repeated in row %d or column %d", c, i, j)
				}
				seen[rc{i, -1, c}] = true
				seen[rc{-1, j, c}] = true
			}
		}
	}
	if _, err := dc.ColorOfUnit(0, 0, 5); err == nil {
		t.Fatal("out-of-range unit accepted")
	}
}

func TestExpandDemandMatchesColoring(t *testing.T) {
	t.Parallel()
	demand := randomBalancedDemand(6, 9, 42)
	g, err := ExpandDemand(demand)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Edges) != 6*9 {
		t.Fatalf("expanded edges = %d, want %d", len(g.Edges), 6*9)
	}
	if !g.IsRegular(9) {
		t.Fatal("expanded graph should be 9-regular")
	}
	// Cross-check: the expanded graph colored by ColorExact and the demand
	// matrix colored by ColorDemandMatrix both use exactly 9 colors.
	ce, err := ColorExact(g)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := ColorDemandMatrix(demand, 9)
	if err != nil {
		t.Fatal(err)
	}
	if ce.NumColors != cd.NumColors {
		t.Fatalf("exact coloring %d colors, demand coloring %d colors", ce.NumColors, cd.NumColors)
	}
	if _, err := ExpandDemand(nil); err == nil {
		t.Fatal("empty demand accepted")
	}
}

// TestColorDemandMatrixProperty is the property-based analogue of König's
// theorem on the demand-matrix representation: any doubly-bounded matrix can
// be properly colored with max(row,col) colors.
func TestColorDemandMatrixProperty(t *testing.T) {
	t.Parallel()
	f := func(sRaw, dRaw uint8, seed int64) bool {
		s := int(sRaw)%10 + 1
		d := int(dRaw)%15 + 1
		demand := randomBoundedDemand(s, d, seed)
		need := MaxRowColSum(demand)
		if need == 0 {
			need = 1
		}
		dc, err := ColorDemandMatrix(demand, need)
		if err != nil {
			return false
		}
		return dc.Validate(demand) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}
