package congestedclique

// Tests for the demand-aware sorting planner (AlgorithmAuto) at the public
// API level: the classification surfaced through SortResult.Strategy, the
// bit-identical-batches guarantee of every planner arm against the
// deterministic pipeline, the fast arms' round advantage, and a fuzzer
// comparing planned sorts against Algorithm 4 across workload shapes.

import (
	"fmt"
	"math/rand"
	"testing"
)

// sortBatchesEqual deep-compares two sort results' batches, starts and
// totals.
func sortBatchesEqual(t *testing.T, label string, got, want *SortResult) {
	t.Helper()
	if got.Total != want.Total {
		t.Fatalf("%s: total = %d, want %d", label, got.Total, want.Total)
	}
	if len(got.Batches) != len(want.Batches) {
		t.Fatalf("%s: %d batches, want %d", label, len(got.Batches), len(want.Batches))
	}
	for i := range want.Batches {
		if got.Starts[i] != want.Starts[i] || len(got.Batches[i]) != len(want.Batches[i]) {
			t.Fatalf("%s: node %d got start=%d len=%d, want start=%d len=%d",
				label, i, got.Starts[i], len(got.Batches[i]), want.Starts[i], len(want.Batches[i]))
		}
		for j := range want.Batches[i] {
			if got.Batches[i][j] != want.Batches[i][j] {
				t.Fatalf("%s: node %d batch[%d] = %+v, want %+v",
					label, i, j, got.Batches[i][j], want.Batches[i][j])
			}
		}
	}
}

// autoVsDeterministicSort runs the same instance under both algorithms and
// checks the batches agree bit for bit, returning both results.
func autoVsDeterministicSort(t *testing.T, label string, n int, values [][]int64) (auto, det *SortResult) {
	t.Helper()
	auto, err := Sort(n, values, WithAlgorithm(AlgorithmAuto))
	if err != nil {
		t.Fatal(err)
	}
	det, err = Sort(n, values)
	if err != nil {
		t.Fatal(err)
	}
	sortBatchesEqual(t, label, auto, det)
	return auto, det
}

// TestAutoSortEmptyInstance pins the degenerate edge: a sort with no keys
// costs zero rounds and zero words under the planner.
func TestAutoSortEmptyInstance(t *testing.T) {
	t.Parallel()
	for _, values := range [][][]int64{nil, make([][]int64, 16), {{}, {}}} {
		res, err := Sort(16, values, WithAlgorithm(AlgorithmAuto))
		if err != nil {
			t.Fatal(err)
		}
		if res.Strategy != SortStrategyEmpty {
			t.Fatalf("strategy = %v, want empty", res.Strategy)
		}
		if res.Stats.Rounds != 0 || res.Stats.TotalWords != 0 || res.Stats.TotalMessages != 0 {
			t.Fatalf("empty sort cost %+v, want all-zero", res.Stats)
		}
		if res.Total != 0 {
			t.Fatalf("empty sort total = %d", res.Total)
		}
	}
}

// TestAutoSortPresorted pins the skip-redistribution arm: block-sorted input
// finishes in two rounds with batches identical to the pipeline's.
func TestAutoSortPresorted(t *testing.T) {
	t.Parallel()
	const n, per = 32, 8
	values := make([][]int64, n)
	for i := 0; i < n; i++ {
		for k := 0; k < per; k++ {
			values[i] = append(values[i], int64(i*per+k))
		}
	}
	auto, det := autoVsDeterministicSort(t, "presorted", n, values)
	if auto.Strategy != SortStrategyPresorted {
		t.Fatalf("strategy = %v, want presorted", auto.Strategy)
	}
	if auto.Stats.Rounds != 2 {
		t.Fatalf("presorted arm took %d rounds, want 2", auto.Stats.Rounds)
	}
	if det.Strategy != 0 {
		t.Fatalf("deterministic run reports strategy %v, want unplanned", det.Strategy)
	}
	if auto.Stats.TotalWords >= det.Stats.TotalWords {
		t.Fatalf("presorted arm moved %d words, pipeline %d — no advantage",
			auto.Stats.TotalWords, det.Stats.TotalWords)
	}
}

// TestAutoSortNearSorted pins the near-sorted acceptance: rows that
// partition the global order only after a local sort still take the
// two-round arm.
func TestAutoSortNearSorted(t *testing.T) {
	t.Parallel()
	const n, per = 32, 8
	rng := rand.New(rand.NewSource(11))
	values := make([][]int64, n)
	for i := 0; i < n; i++ {
		row := make([]int64, per)
		for k := 0; k < per; k++ {
			row[k] = int64(i*per + k)
		}
		rng.Shuffle(per, func(a, b int) { row[a], row[b] = row[b], row[a] })
		values[i] = row
	}
	auto, _ := autoVsDeterministicSort(t, "near-sorted", n, values)
	if auto.Strategy != SortStrategyPresorted {
		t.Fatalf("strategy = %v, want presorted", auto.Strategy)
	}
	if auto.Stats.Rounds != 2 {
		t.Fatalf("near-sorted arm took %d rounds, want 2", auto.Stats.Rounds)
	}
}

// TestAutoSortSmallDomain pins the Section 6.3 counting arm: a
// duplicate-heavy instance over a tiny domain finishes in four rounds with
// the pipeline's exact batches.
func TestAutoSortSmallDomain(t *testing.T) {
	t.Parallel()
	const n, per = 256, 4
	values := make([][]int64, n)
	for i := 0; i < n; i++ {
		for k := 0; k < per; k++ {
			values[i] = append(values[i], int64((i+k)%3))
		}
	}
	auto, _ := autoVsDeterministicSort(t, "small-domain", n, values)
	if auto.Strategy != SortStrategySmallDomain {
		t.Fatalf("strategy = %v, want small-domain", auto.Strategy)
	}
	if auto.Stats.Rounds != 4 {
		t.Fatalf("small-domain arm took %d rounds, want 4", auto.Stats.Rounds)
	}
}

// TestAutoSortStrategyStrings pins the public enum's names as printed in
// scenario tables.
func TestAutoSortStrategyStrings(t *testing.T) {
	t.Parallel()
	for s, want := range map[SortStrategy]string{
		0:                       "unplanned",
		SortStrategyPipeline:    "pipeline",
		SortStrategyPresorted:   "presorted",
		SortStrategySmallDomain: "small-domain",
		SortStrategyEmpty:       "empty",
	} {
		if got := s.String(); got != want {
			t.Fatalf("SortStrategy(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}

// FuzzAutoSortMatchesDeterministic generates random instances across the
// workload shapes (wide uniform, tiny domains, sorted and reverse blocks,
// per-node clusters, all-equal) and checks that AlgorithmAuto produces
// exactly the pipeline's batches, whatever strategy the planner picked.
func FuzzAutoSortMatchesDeterministic(f *testing.F) {
	f.Add(int64(1), uint8(16), uint8(4), uint8(0))
	f.Add(int64(2), uint8(9), uint8(0), uint8(1))
	f.Add(int64(3), uint8(25), uint8(12), uint8(2))
	f.Add(int64(4), uint8(31), uint8(200), uint8(3))
	f.Add(int64(5), uint8(20), uint8(6), uint8(4))
	f.Add(int64(6), uint8(13), uint8(3), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, perRaw, modeRaw uint8) {
		n := 8 + int(nRaw)%25 // 8..32
		per := int(perRaw) % (n + 1)
		mode := int(modeRaw) % 6
		rng := rand.New(rand.NewSource(seed))
		values := make([][]int64, n)
		for i := 0; i < n; i++ {
			count := rng.Intn(per + 1)
			for k := 0; k < count; k++ {
				var v int64
				switch mode {
				case 0:
					v = rng.Int63n(1 << 40)
				case 1:
					v = int64(rng.Intn(3)) // tiny domain, mostly still > cap at these n
				case 2:
					v = int64(i*per + k) // sorted blocks (ragged rows may overlap)
				case 3:
					v = int64((n-i)*per - k)
				case 4:
					v = int64(i)*1000 + int64(rng.Intn(10))
				case 5:
					v = 42
				}
				values[i] = append(values[i], v)
			}
		}
		auto, err := Sort(n, values, WithAlgorithm(AlgorithmAuto))
		if err != nil {
			t.Fatal(err)
		}
		det, err := Sort(n, values)
		if err != nil {
			t.Fatal(err)
		}
		sortBatchesEqual(t, fmt.Sprintf("n=%d mode=%d strategy=%v", n, mode, auto.Strategy), auto, det)
	})
}
