package congestedclique

// Protocol-layer end-to-end benchmarks: one full Route respectively Sort
// execution per iteration, with allocations reported. These are the numbers
// tracked by BENCH_protocol.json (cmd/cliquebench -protocol-json) and guarded
// against regression by cmd/benchguard in CI.

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"congestedclique/internal/workload"
)

// benchProtocolSizes are the clique sizes the protocol benchmarks run at.
var benchProtocolSizes = []int{64, 256, 1024}

// benchRouteWorkload is the deterministic all-to-all instance: every node
// sends one message to every node (the paper's full-load Problem 3.1). The
// definition is shared with cliquebench -protocol-json so the recorded
// before/after numbers always measure the same workload.
func benchRouteWorkload(n int) [][]Message {
	msgs, err := NewUniformMessages(workload.ProtocolBenchRoute(n))
	if err != nil {
		panic(err)
	}
	return msgs
}

// benchSortWorkload is the deterministic full-load sorting instance (shared
// with cliquebench -protocol-json, see benchRouteWorkload).
func benchSortWorkload(n int) [][]int64 {
	return workload.ProtocolBenchSortValues(n)
}

func BenchmarkRoute(b *testing.B) {
	for _, n := range benchProtocolSizes {
		msgs := benchRouteWorkload(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := Route(n, msgs)
				if err != nil {
					b.Fatal(err)
				}
				if res.Stats.Rounds > 16 {
					b.Fatalf("measured %d rounds, Theorem 3.7 claims <= 16", res.Stats.Rounds)
				}
			}
		})
	}
}

func BenchmarkSort(b *testing.B) {
	for _, n := range benchProtocolSizes {
		values := benchSortWorkload(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := Sort(n, values)
				if err != nil {
					b.Fatal(err)
				}
				if res.Stats.Rounds > 37 {
					b.Fatalf("measured %d rounds, Theorem 4.5 claims <= 37", res.Stats.Rounds)
				}
			}
		})
	}
}

// BenchmarkRouteReuse measures the session path: the same full-load routing
// instance issued repeatedly on one long-lived Clique handle. Comparing with
// BenchmarkRoute (a fresh one-shot handle per op) isolates the amortization
// the session API provides; cmd/benchguard holds both to their committed
// allocs/op baselines.
func BenchmarkRouteReuse(b *testing.B) {
	ctx := context.Background()
	for _, n := range benchProtocolSizes {
		msgs := benchRouteWorkload(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cl, err := New(n)
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := cl.Route(ctx, msgs)
				if err != nil {
					b.Fatal(err)
				}
				if res.Stats.Rounds > 16 {
					b.Fatalf("measured %d rounds, Theorem 3.7 claims <= 16", res.Stats.Rounds)
				}
			}
		})
	}
}

// BenchmarkRouteParallel measures the engine pool: the full-load routing
// instance issued from GOMAXPROCS concurrent goroutines against ONE handle
// with WithMaxConcurrency(GOMAXPROCS). Compare ns/op with
// BenchmarkRouteReuse to see the aggregate speedup concurrency buys on this
// machine (bounded by cores — the engine already runs one goroutine per
// node); allocs/op are guarded by cmd/benchguard like the serial entries.
func BenchmarkRouteParallel(b *testing.B) {
	ctx := context.Background()
	for _, n := range []int{64, 256} {
		msgs := benchRouteWorkload(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cl, err := New(n, WithMaxConcurrency(runtime.GOMAXPROCS(0)))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					res, err := cl.Route(ctx, msgs)
					if err != nil {
						b.Fatal(err)
					}
					if res.Stats.Rounds > 16 {
						b.Fatalf("measured %d rounds, Theorem 3.7 claims <= 16", res.Stats.Rounds)
					}
				}
			})
			b.StopTimer()
			if err := cl.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkSortParallel is BenchmarkRouteParallel for the sorting pipeline.
func BenchmarkSortParallel(b *testing.B) {
	ctx := context.Background()
	for _, n := range []int{64, 256} {
		values := benchSortWorkload(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cl, err := New(n, WithMaxConcurrency(runtime.GOMAXPROCS(0)))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					res, err := cl.Sort(ctx, values)
					if err != nil {
						b.Fatal(err)
					}
					if res.Stats.Rounds > 37 {
						b.Fatalf("measured %d rounds, Theorem 4.5 claims <= 37", res.Stats.Rounds)
					}
				}
			})
			b.StopTimer()
			if err := cl.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkSortReuse is BenchmarkRouteReuse for the sorting pipeline.
func BenchmarkSortReuse(b *testing.B) {
	ctx := context.Background()
	for _, n := range benchProtocolSizes {
		values := benchSortWorkload(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cl, err := New(n)
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := cl.Sort(ctx, values)
				if err != nil {
					b.Fatal(err)
				}
				if res.Stats.Rounds > 37 {
					b.Fatalf("measured %d rounds, Theorem 4.5 claims <= 37", res.Stats.Rounds)
				}
			}
		})
	}
}

// BenchmarkRouteWatchdog is BenchmarkRouteReuse with the round watchdog
// armed (WithRoundDeadline). The deadline is far above any legitimate round,
// so it never fires; the benchmark exists to guard the watchdog's fault-free
// overhead — it must add zero allocs/op to a warm Route (the watchdog
// goroutine, its timer and the arrival markers are allocated once per handle
// and reused across runs), and cmd/benchguard holds it to the same baseline
// discipline as the unwatched entries.
func BenchmarkRouteWatchdog(b *testing.B) {
	ctx := context.Background()
	for _, n := range []int{64, 256} {
		msgs := benchRouteWorkload(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cl, err := New(n, WithRoundDeadline(5*time.Minute))
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := cl.Route(ctx, msgs)
				if err != nil {
					b.Fatal(err)
				}
				if res.Stats.Rounds > 16 {
					b.Fatalf("measured %d rounds, Theorem 3.7 claims <= 16", res.Stats.Rounds)
				}
			}
		})
	}
}

// BenchmarkRouteCachedHit measures the validated cache-hit path: the same
// full-load routing instance issued repeatedly on one AlgorithmAuto handle
// built with WithPlanCache. The warm-up call outside the timer pays the one
// miss (planning + census + capture); every timed iteration then hits —
// fingerprint lookup, exact demand validation, charged census, and the run
// itself with the announcement rounds elided where the cached schedule
// applies. No round-count assertion here: the charged census adds wire
// rounds by design, so Theorem 3.7's 16-round bound is not the contract on
// this path (see docs/PERFORMANCE.md, "Temporal caching"). cmd/benchguard
// holds allocs/op at or below the warm BenchmarkRouteReuse numbers — a hit
// must never allocate more than the uncached warm path it replaces.
func BenchmarkRouteCachedHit(b *testing.B) {
	ctx := context.Background()
	for _, n := range []int{64, 256} {
		msgs := benchRouteWorkload(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cl, err := New(n, WithAlgorithm(AlgorithmAuto), WithPlanCache(4))
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			if _, err := cl.Route(ctx, msgs); err != nil { // the single miss
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cl.Route(ctx, msgs); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			cs := cl.CumulativeStats()
			if cs.PlanCacheMisses != 1 || cs.PlanCacheHits != int64(b.N) {
				b.Fatalf("expected 1 miss and %d hits, got %d misses / %d hits",
					b.N, cs.PlanCacheMisses, cs.PlanCacheHits)
			}
		})
	}
}

// BenchmarkSortCachedHit is BenchmarkRouteCachedHit for the sorting
// pipeline. Sort hits skip the planner and fingerprint recomputation but by
// design elide no protocol rounds (the merge schedule is data-dependent), so
// the win is compute-side; allocs/op must still sit at or below the warm
// BenchmarkSortReuse numbers.
func BenchmarkSortCachedHit(b *testing.B) {
	ctx := context.Background()
	for _, n := range []int{64, 256} {
		values := benchSortWorkload(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cl, err := New(n, WithAlgorithm(AlgorithmAuto), WithPlanCache(4))
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			if _, err := cl.Sort(ctx, values); err != nil { // the single miss
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cl.Sort(ctx, values); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			cs := cl.CumulativeStats()
			if cs.PlanCacheMisses != 1 || cs.PlanCacheHits != int64(b.N) {
				b.Fatalf("expected 1 miss and %d hits, got %d misses / %d hits",
					b.N, cs.PlanCacheMisses, cs.PlanCacheHits)
			}
		})
	}
}

// BenchmarkSparseRoute measures the sparse demand path end to end: the
// O(n)-message frontier instance (workload.ScaleSparseRoute) issued
// repeatedly on one long-lived WithSparsePath handle, planned by
// AlgorithmAuto and executed by the step executors. cmd/benchguard holds
// allocs/op to the committed baseline, so a dense O(n²) structure creeping
// back into the sparse pipeline is caught at small n long before the
// frontier guard would see it at n=16384.
func BenchmarkSparseRoute(b *testing.B) {
	ctx := context.Background()
	for _, n := range []int{64, 256} {
		ri, err := workload.ScaleSparseRoute(n, 1)
		if err != nil {
			b.Fatal(err)
		}
		msgs := instanceMessages(ri)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cl, err := New(n, WithSparsePath())
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := cl.Route(ctx, msgs, WithAlgorithm(AlgorithmAuto))
				if err != nil {
					b.Fatal(err)
				}
				if res.Strategy != StrategyDirect {
					b.Fatalf("strategy %v, want direct", res.Strategy)
				}
			}
		})
	}
}

// BenchmarkSparseSort is BenchmarkSparseRoute for the sorting pipeline: the
// presorted O(n)-key frontier instance on the sparse step executors.
func BenchmarkSparseSort(b *testing.B) {
	ctx := context.Background()
	for _, n := range []int{64, 256} {
		values := workload.ScalePresortedValues(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cl, err := New(n, WithSparsePath())
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := cl.Sort(ctx, values, WithAlgorithm(AlgorithmAuto))
				if err != nil {
					b.Fatal(err)
				}
				if res.Strategy != SortStrategyPresorted {
					b.Fatalf("strategy %v, want presorted", res.Strategy)
				}
			}
		})
	}
}

// BenchmarkSortWatchdog is BenchmarkRouteWatchdog for the sorting pipeline.
func BenchmarkSortWatchdog(b *testing.B) {
	ctx := context.Background()
	for _, n := range []int{64, 256} {
		values := benchSortWorkload(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cl, err := New(n, WithRoundDeadline(5*time.Minute))
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := cl.Sort(ctx, values)
				if err != nil {
					b.Fatal(err)
				}
				if res.Stats.Rounds > 37 {
					b.Fatalf("measured %d rounds, Theorem 4.5 claims <= 37", res.Stats.Rounds)
				}
			}
		})
	}
}
