// Package congestedclique is a library implementation of
//
//	Christoph Lenzen,
//	"Optimal Deterministic Routing and Sorting on the Congested Clique",
//	PODC 2013 (arXiv:1207.1852).
//
// It simulates a congested clique of n nodes — a fully connected synchronous
// network in which every directed edge carries O(log n) bits per round — and
// provides the paper's deterministic constant-round algorithms on top of it:
//
//   - Route: the Information Distribution Task (every node sends and receives
//     up to n messages) in at most 16 rounds (Theorem 3.7), or in 12 rounds
//     with near-linear local computation (Theorem 5.4),
//   - Sort: sorting n keys per node so that node i learns the i-th batch of
//     the global order, in 37 rounds (Theorem 4.5),
//   - Rank, SelectKth, Median, Mode: the rank-in-union variant and its
//     corollaries (Corollary 4.6),
//   - CountSmallKeys: the two-round counting protocol for keys of o(log n)
//     bits (Section 6.3),
//   - randomized and naive baselines for comparison (the algorithms the
//     paper's introduction compares against).
//
// Every call builds an in-process clique, runs the per-node protocol with one
// goroutine per node, verifies nothing exceeds the bandwidth model, and
// returns both the protocol output and the execution statistics (rounds,
// per-edge words, traffic) that the paper's bounds are stated in.
package congestedclique

import (
	"errors"
	"fmt"

	"congestedclique/internal/clique"
	"congestedclique/internal/core"
)

// Message is one unit of the Information Distribution Task: Payload must
// travel from node Src to node Dst. Seq distinguishes messages with the same
// endpoints; (Src, Dst, Seq) must be unique per message.
type Message struct {
	Src     int
	Dst     int
	Seq     int
	Payload int64
}

// Key is one key of the sorting problem. Origin and Seq identify the key's
// position in the input (they are assigned by the library when sorting plain
// values) and break ties between equal values.
type Key struct {
	Value  int64
	Origin int
	Seq    int
}

// Algorithm selects which routing/sorting algorithm an operation uses.
type Algorithm int

const (
	// Deterministic is the paper's main contribution: 16-round routing
	// (Theorem 3.7) and 37-round sorting (Theorem 4.5).
	Deterministic Algorithm = iota + 1
	// LowCompute is the Section 5 routing variant: 12 rounds with O(n log n)
	// local computation and memory (Theorem 5.4). Sorting falls back to the
	// deterministic algorithm.
	LowCompute
	// Randomized is the Valiant-style randomized comparison algorithm in the
	// spirit of the prior work the paper cites ([7] for routing, [12] for
	// sorting).
	Randomized
	// NaiveDirect delivers every message straight over its source-destination
	// edge; it needs up to n rounds on skewed instances and exists as the
	// motivating baseline.
	NaiveDirect
)

// String returns the algorithm name.
func (a Algorithm) String() string {
	switch a {
	case Deterministic:
		return "deterministic"
	case LowCompute:
		return "low-compute"
	case Randomized:
		return "randomized"
	case NaiveDirect:
		return "naive-direct"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

// ErrInvalidInstance is wrapped by errors reporting malformed problem
// instances (out-of-range destinations, too many messages per node, ...).
var ErrInvalidInstance = errors.New("congestedclique: invalid instance")

// Stats summarises the cost of one protocol execution in the congested
// clique's own currency.
type Stats struct {
	// Rounds is the number of synchronous communication rounds used.
	Rounds int
	// MaxEdgeWords is the largest number of 64-bit words carried by any
	// directed edge in any single round; the model requires this to stay a
	// constant independent of n.
	MaxEdgeWords int
	// MaxEdgeMessages is the largest number of packets on any edge per round.
	MaxEdgeMessages int
	// TotalMessages and TotalWords aggregate all traffic of the execution.
	TotalMessages int64
	TotalWords    int64
	// MaxStepsPerNode is the largest self-reported local computation count
	// (only populated by the LowCompute algorithm).
	MaxStepsPerNode int64
	// MaxMemoryWordsPerNode is the largest self-reported resident memory in
	// words (only populated by the LowCompute algorithm).
	MaxMemoryWordsPerNode int64
}

func statsFromMetrics(m clique.Metrics) Stats {
	return Stats{
		Rounds:                m.Rounds,
		MaxEdgeWords:          m.MaxEdgeWords,
		MaxEdgeMessages:       m.MaxEdgeMessages,
		TotalMessages:         m.TotalMessages,
		TotalWords:            m.TotalWords,
		MaxStepsPerNode:       m.MaxStepsPerNode,
		MaxMemoryWordsPerNode: m.MaxMemoryWordsPerNode,
	}
}

// config collects the functional options of the public entry points.
type config struct {
	algorithm    Algorithm
	seed         int64
	strictBudget int
	sharedCache  bool
}

func defaultConfig() config {
	return config{algorithm: Deterministic, seed: 1, sharedCache: true}
}

// Option customises a library call.
type Option func(*config) error

// WithAlgorithm selects the algorithm (default Deterministic).
func WithAlgorithm(a Algorithm) Option {
	return func(c *config) error {
		switch a {
		case Deterministic, LowCompute, Randomized, NaiveDirect:
			c.algorithm = a
			return nil
		default:
			return fmt.Errorf("congestedclique: unknown algorithm %d", int(a))
		}
	}
}

// WithSeed sets the seed used by the randomized algorithms (default 1). The
// deterministic algorithms ignore it.
func WithSeed(seed int64) Option {
	return func(c *config) error {
		c.seed = seed
		return nil
	}
}

// WithStrictBandwidth makes the execution fail if any directed edge ever
// carries more than words 64-bit words in one round. Use it to assert that a
// workload respects the O(log n)-bits-per-edge model.
func WithStrictBandwidth(words int) Option {
	return func(c *config) error {
		if words <= 0 {
			return fmt.Errorf("congestedclique: strict bandwidth must be positive, got %d", words)
		}
		c.strictBudget = words
		return nil
	}
}

// WithSharedScheduleCache enables or disables the simulator's deterministic
// shared-computation cache (enabled by default). Disabling it makes every
// node recompute the public schedule colorings itself; results are identical,
// only simulation wall-clock time changes.
func WithSharedScheduleCache(enabled bool) Option {
	return func(c *config) error {
		c.sharedCache = enabled
		return nil
	}
}

func buildNetwork(n int, cfg config) (*clique.Network, error) {
	opts := []clique.Option{clique.WithSharedCache(cfg.sharedCache)}
	if cfg.strictBudget > 0 {
		opts = append(opts, clique.WithStrictEdgeBudget(cfg.strictBudget))
	}
	return clique.New(n, opts...)
}

func applyOptions(opts []Option) (config, error) {
	cfg := defaultConfig()
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}

func toCoreMessage(m Message) core.Message {
	return core.Message{Src: m.Src, Dst: m.Dst, Seq: m.Seq, Payload: clique.Word(m.Payload)}
}

func fromCoreMessage(m core.Message) Message {
	return Message{Src: m.Src, Dst: m.Dst, Seq: m.Seq, Payload: int64(m.Payload)}
}

func toCoreKey(k Key) core.Key {
	return core.Key{Value: k.Value, Origin: k.Origin, Seq: k.Seq}
}

func fromCoreKey(k core.Key) Key {
	return Key{Value: k.Value, Origin: k.Origin, Seq: k.Seq}
}
