// Package congestedclique is a library implementation of
//
//	Christoph Lenzen,
//	"Optimal Deterministic Routing and Sorting on the Congested Clique",
//	PODC 2013 (arXiv:1207.1852).
//
// It simulates a congested clique of n nodes — a fully connected synchronous
// network in which every directed edge carries O(log n) bits per round — and
// provides the paper's deterministic constant-round algorithms on top of it:
//
//   - Route: the Information Distribution Task (every node sends and receives
//     up to n messages) in at most 16 rounds (Theorem 3.7), or in 12 rounds
//     with near-linear local computation (Theorem 5.4),
//   - Sort: sorting n keys per node so that node i learns the i-th batch of
//     the global order, in 37 rounds (Theorem 4.5),
//   - Rank, SelectKth, Median, Mode: the rank-in-union variant and its
//     corollaries (Corollary 4.6),
//   - CountSmallKeys: the two-round counting protocol for keys of o(log n)
//     bits (Section 6.3),
//   - randomized and naive baselines for comparison (the algorithms the
//     paper's introduction compares against),
//   - a demand-aware routing planner (AlgorithmAuto): Route calls classify
//     their instance and dispatch sparse, one-to-many and empty demand to
//     fast paths instead of the full pipeline, reporting the choice in
//     RouteResult.Strategy.
//
// # Session API
//
// The primary entry point is the Clique session handle: New(n, opts...)
// builds the simulated clique once — n nodes, delivery arenas, metric
// buffers — and its methods (Route, Sort, SortKeys, Rank, SelectKth, Median,
// Mode, CountSmallKeys) run an unbounded stream of operations on that one
// engine. Every method takes a context.Context: cancelling it fails the
// in-flight operation deterministically (every node observes an error
// wrapping ctx.Err(); none is left parked at the round barrier) and leaves
// the handle usable for further calls.
//
// Handle lifetime and ownership: a Clique owns a pool of engines until
// Close, which waits for in-flight operations to drain and then releases
// the pooled delivery buffers; operations on a closed handle fail with
// ErrClosed. Methods are safe for concurrent use. By default operations
// serialize on a single engine; New(n, WithMaxConcurrency(k)) lets up to k
// independent operations run in parallel on one handle, each on its own
// engine checked out of a lazily-grown pool, with results bit-identical to
// serial execution. Each operation runs the per-node protocol with one
// goroutine per node, verifies nothing exceeds the bandwidth model, and
// returns both the protocol output and the execution statistics (rounds,
// per-edge words, traffic) that the paper's bounds are stated in;
// CumulativeStats aggregates them across the handle's lifetime, merged over
// the engine pool.
//
// Options split by scope: engine shape — WithStrictBandwidth,
// WithSharedScheduleCache, WithWorkers, WithMaxConcurrency — is fixed per
// handle and must be passed to New, while WithAlgorithm and WithSeed may be
// passed either to New (as the handle's defaults) or to an individual call.
// Passing a handle-scoped option to a call returns an error.
//
// All returned results (delivered messages, sorted batches, statistics) are
// plain values owned by the caller; no result aliases engine memory, so
// results stay valid across later calls on the same handle and after Close.
// (This differs from the internal engine layer, where received packet views
// expire when the run they were delivered in ends.)
//
// The package-level functions of the same names are one-shot conveniences:
// each builds a throwaway handle, runs the single operation with a background
// context, and closes the handle again. Results and statistics are identical
// to the session path bit for bit.
package congestedclique

import (
	"errors"
	"fmt"
	"slices"
	"time"

	"congestedclique/internal/clique"
	"congestedclique/internal/core"
)

// Message is one unit of the Information Distribution Task: Payload must
// travel from node Src to node Dst. Seq distinguishes messages with the same
// endpoints; (Src, Dst, Seq) must be unique per message.
type Message struct {
	Src     int
	Dst     int
	Seq     int
	Payload int64
}

// Key is one key of the sorting problem. Origin and Seq identify the key's
// position in the input (they are assigned by the library when sorting plain
// values) and break ties between equal values.
type Key struct {
	Value  int64
	Origin int
	Seq    int
}

// Algorithm selects which routing/sorting algorithm an operation uses.
type Algorithm int

const (
	// Deterministic is the paper's main contribution: 16-round routing
	// (Theorem 3.7) and 37-round sorting (Theorem 4.5).
	Deterministic Algorithm = iota + 1
	// LowCompute is the Section 5 routing variant: 12 rounds with O(n log n)
	// local computation and memory (Theorem 5.4). The paper gives no
	// low-computation sorting algorithm, so Sort and SortKeys under
	// LowCompute run the deterministic 37-round sorter — a documented
	// fallback, not an error, because the output and statistics are exactly
	// the Deterministic ones.
	LowCompute
	// Randomized is the Valiant-style randomized comparison algorithm in the
	// spirit of the prior work the paper cites ([7] for routing, [12] for
	// sorting).
	Randomized
	// NaiveDirect delivers every message straight over its source-destination
	// edge; it needs up to n rounds on skewed instances and exists as the
	// motivating baseline. It is routing-only: Sort and SortKeys reject it
	// with ErrUnsupportedAlgorithm (there is no naive-direct sorter to fall
	// back to, and silently running a different algorithm would misreport
	// what was measured).
	NaiveDirect
	// AlgorithmAuto is the demand-aware planner: each Route, Sort or
	// SortKeys call classifies its instance and dispatches to the cheapest
	// strategy that still produces the contractual output. Route instances
	// (total messages, per-pair multiplicity, source skew) divert to a
	// direct-send fast path, a scatter/relay path for one-to-many demand, or
	// a zero-round path for empty instances; Sort instances (pre-sortedness,
	// distinct-value census) divert to a two-round rank redistribution when
	// the rows already partition the global order, or to the Section 6.3
	// counting protocol when the distinct values fit its feasibility bound.
	// Everything else runs the full deterministic pipeline, with statistics
	// bit-identical to Deterministic. RouteResult.Strategy and
	// SortResult.Strategy report the choice; see ARCHITECTURE.md for the
	// dispatch rules. The sorting-based corollary operations (Rank,
	// SelectKth, Median, Mode, CountSmallKeys) under AlgorithmAuto run the
	// deterministic implementations, exactly like LowCompute.
	AlgorithmAuto
)

// String returns the algorithm name.
func (a Algorithm) String() string {
	switch a {
	case Deterministic:
		return "deterministic"
	case LowCompute:
		return "low-compute"
	case Randomized:
		return "randomized"
	case NaiveDirect:
		return "naive-direct"
	case AlgorithmAuto:
		return "auto"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

// RouteStrategy identifies the delivery strategy the demand-aware planner
// (AlgorithmAuto) selected for one Route execution. The zero value means the
// planner was not consulted — the operation ran under an explicitly chosen
// algorithm.
type RouteStrategy int

const (
	// StrategyPipeline is the paper's full Theorem 3.7 balancing pipeline,
	// selected for full-load and heavily skewed instances. When the planner
	// picks it, statistics are bit-identical to Deterministic.
	StrategyPipeline RouteStrategy = iota + 1
	// StrategyDirect delivers every message over its own source-destination
	// edge; the planner picks it when the largest per-(source,destination)
	// load fits one frame and total demand is below the full-load regime.
	StrategyDirect
	// StrategyBroadcast scatters the messages of few sources across all
	// nodes in one round and delivers from the relays; the planner picks it
	// for one-to-many (broadcast/multicast) demand.
	StrategyBroadcast
	// StrategyEmpty is the degenerate no-traffic instance: zero rounds.
	StrategyEmpty
)

// String returns the strategy name as printed by cmd/cliquescen.
func (s RouteStrategy) String() string {
	switch s {
	case StrategyPipeline:
		return "pipeline"
	case StrategyDirect:
		return "direct"
	case StrategyBroadcast:
		return "broadcast"
	case StrategyEmpty:
		return "empty"
	case 0:
		return "unplanned"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// strategyFromCore maps the planner's internal verdict to the public enum.
func strategyFromCore(s core.RouteStrategy) RouteStrategy {
	switch s {
	case core.StrategyPipeline:
		return StrategyPipeline
	case core.StrategyDirect:
		return StrategyDirect
	case core.StrategyBroadcast:
		return StrategyBroadcast
	case core.StrategyEmpty:
		return StrategyEmpty
	default:
		return 0
	}
}

// SortStrategy identifies the strategy the demand-aware sorting planner
// (AlgorithmAuto) selected for one Sort or SortKeys execution. The zero
// value means the planner was not consulted — the operation ran under an
// explicitly chosen algorithm.
type SortStrategy int

const (
	// SortStrategyPipeline is the paper's full 37-round Algorithm 4
	// (Theorem 4.5), selected for general instances. When the planner picks
	// it, statistics are bit-identical to Deterministic.
	SortStrategyPipeline SortStrategy = iota + 1
	// SortStrategyPresorted skips the pipeline when the input rows already
	// partition the global order (node i's keys all precede node i+1's,
	// possibly after a free local sort): two rank-balanced redistribution
	// rounds produce the contractual batches.
	SortStrategyPresorted
	// SortStrategySmallDomain handles duplicate-heavy instances whose
	// distinct values fit the Section 6.3 feasibility bound: the two-round
	// counting protocol plus a per-origin prefix pins every key's exact
	// global rank, and two delivery rounds finish — four rounds total.
	SortStrategySmallDomain
	// SortStrategyEmpty is the degenerate no-key instance: zero rounds.
	SortStrategyEmpty
)

// String returns the strategy name as printed by cmd/cliquescen.
func (s SortStrategy) String() string {
	switch s {
	case SortStrategyPipeline:
		return "pipeline"
	case SortStrategyPresorted:
		return "presorted"
	case SortStrategySmallDomain:
		return "small-domain"
	case SortStrategyEmpty:
		return "empty"
	case 0:
		return "unplanned"
	default:
		return fmt.Sprintf("sort-strategy(%d)", int(s))
	}
}

// sortStrategyFromCore maps the sorting planner's internal verdict to the
// public enum.
func sortStrategyFromCore(s core.SortStrategy) SortStrategy {
	switch s {
	case core.SortStrategyPipeline:
		return SortStrategyPipeline
	case core.SortStrategyPresorted:
		return SortStrategyPresorted
	case core.SortStrategySmallDomain:
		return SortStrategySmallDomain
	case core.SortStrategyEmpty:
		return SortStrategyEmpty
	default:
		return 0
	}
}

// ErrInvalidInstance is wrapped by errors reporting malformed problem
// instances (out-of-range destinations, too many messages per node, ...).
var ErrInvalidInstance = errors.New("congestedclique: invalid instance")

// ErrUnsupportedAlgorithm is wrapped by errors reporting an Algorithm that
// has no implementation for the requested operation (for example NaiveDirect
// sorting).
var ErrUnsupportedAlgorithm = errors.New("congestedclique: unsupported algorithm")

// ErrClosed is wrapped by errors reporting an operation on a Clique handle
// whose Close method has already been called.
var ErrClosed = errors.New("congestedclique: clique handle closed")

// ErrBandwidthExceeded is wrapped by errors reporting that an execution
// under WithStrictBandwidth sent more words over a directed edge in one
// round than the configured budget.
var ErrBandwidthExceeded = clique.ErrBandwidthExceeded

// ErrTransient classifies failures that a re-run of the same operation on a
// fresh engine can be expected to recover from: injected faults
// (ErrFaultInjected) and missed round deadlines (ErrRoundDeadline). Errors
// returned by the session layer satisfy errors.Is(err, ErrTransient) exactly
// for this family; WithRetry re-runs an operation only on transient
// failures. Permanent errors — validation failures, ErrClosed,
// ErrUnsupportedAlgorithm, ErrBandwidthExceeded, protocol errors and caller
// context cancellations — are never retried: re-running them would either
// fail identically or paper over a cancellation the caller asked for. See
// docs/RESILIENCE.md for the full taxonomy.
var ErrTransient = errors.New("congestedclique: transient failure")

// ErrRoundDeadline is wrapped by errors reporting that a round failed to
// turn over within the WithRoundDeadline budget; the message names the nodes
// that had not arrived at the barrier. It is part of the ErrTransient family.
var ErrRoundDeadline = clique.ErrRoundDeadline

// ErrFaultInjected is wrapped by errors produced by the fault-injection
// options (WithInjectedPanic, WithInjectedCancel); the message names the
// faulty node and round. It is part of the ErrTransient family.
var ErrFaultInjected = clique.ErrFaultInjected

// transientError marks an error as retryable without disturbing the rest of
// its chain: errors.Is sees ErrTransient through the Is hook and every
// underlying sentinel (ErrFaultInjected, ErrRoundDeadline, ...) through
// Unwrap.
type transientError struct{ err error }

func (t *transientError) Error() string { return t.err.Error() }

func (t *transientError) Unwrap() error { return t.err }

// Is reports the ErrTransient identity.
func (t *transientError) Is(target error) bool { return target == ErrTransient }

// classifyTransient wraps err in the ErrTransient marker when it belongs to
// the transient family (see ErrTransient), and returns it unchanged
// otherwise.
func classifyTransient(err error) error {
	if errors.Is(err, clique.ErrFaultInjected) || errors.Is(err, clique.ErrRoundDeadline) {
		return &transientError{err: err}
	}
	return err
}

// Stats summarises the cost of one protocol execution in the congested
// clique's own currency.
type Stats struct {
	// Rounds is the number of synchronous communication rounds used.
	Rounds int
	// MaxEdgeWords is the largest number of 64-bit words carried by any
	// directed edge in any single round; the model requires this to stay a
	// constant independent of n.
	MaxEdgeWords int
	// MaxEdgeMessages is the largest number of packets on any edge per round.
	MaxEdgeMessages int
	// TotalMessages and TotalWords aggregate all traffic of the execution.
	TotalMessages int64
	TotalWords    int64
	// MaxStepsPerNode is the largest self-reported local computation count
	// (only populated by the LowCompute algorithm).
	MaxStepsPerNode int64
	// MaxMemoryWordsPerNode is the largest self-reported resident memory in
	// words (only populated by the LowCompute algorithm).
	MaxMemoryWordsPerNode int64
}

// CumulativeStats aggregates the cost of every operation that completed
// successfully on one Clique handle: totals are summed across operations,
// maxima are taken over operations. Operations that returned an error
// (including cancelled ones) are not counted in the traffic aggregates — a
// retried operation that eventually succeeds contributes only its successful
// attempt. The Retries and FailedOperations counters track the failure side
// of the ledger.
type CumulativeStats struct {
	// Operations is the number of protocol executions that completed without
	// error.
	Operations int
	// Rounds is the total number of synchronous rounds across all operations.
	Rounds int
	// MaxEdgeWords and MaxEdgeMessages are maxima over all rounds of all
	// operations.
	MaxEdgeWords    int
	MaxEdgeMessages int
	// TotalMessages and TotalWords sum the traffic of all operations.
	TotalMessages int64
	TotalWords    int64
	// Retries counts re-run attempts made under WithRetry across the
	// handle's lifetime (a retried operation that succeeds on its second
	// attempt adds one here and one to Operations).
	Retries int64
	// FailedOperations counts operations that passed validation but
	// ultimately returned an error — after exhausting any retry budget.
	// Rejected calls (malformed instances, handle-scoped options passed per
	// call) are not counted; they never reached an engine.
	FailedOperations int64
	// PlanCacheHits, PlanCacheMisses and PlanCacheInvalidations report the
	// WithPlanCache ledger: hits are lookups whose fingerprint matched AND
	// whose canonical demand sequence compared equal (validate-on-hit);
	// invalidations are fingerprint matches whose sequence did not compare
	// equal — a drifted instance or a hash collision — which evict the stale
	// entry and are also counted as misses. All zero unless the handle was
	// built with WithPlanCache.
	PlanCacheHits          int64
	PlanCacheMisses        int64
	PlanCacheInvalidations int64
}

func statsFromCumulative(c clique.Cumulative) CumulativeStats {
	return CumulativeStats{
		Operations:      c.Runs,
		Rounds:          c.Rounds,
		MaxEdgeWords:    c.MaxEdgeWords,
		MaxEdgeMessages: c.MaxEdgeMessages,
		TotalMessages:   c.TotalMessages,
		TotalWords:      c.TotalWords,
	}
}

func statsFromMetrics(m clique.Metrics) Stats {
	return Stats{
		Rounds:                m.Rounds,
		MaxEdgeWords:          m.MaxEdgeWords,
		MaxEdgeMessages:       m.MaxEdgeMessages,
		TotalMessages:         m.TotalMessages,
		TotalWords:            m.TotalWords,
		MaxStepsPerNode:       m.MaxStepsPerNode,
		MaxMemoryWordsPerNode: m.MaxMemoryWordsPerNode,
	}
}

// config collects the functional options of the public entry points.
// algorithm and seed are call-scoped (a handle holds defaults, an individual
// call may override them); strictBudget, sharedCache and workers shape the
// engine and are handle-scoped.
type config struct {
	algorithm      Algorithm
	seed           int64
	strictBudget   int
	sharedCache    bool
	workers        int
	maxConcurrency int
	// roundDeadline arms the engine's round watchdog (WithRoundDeadline);
	// handle-scoped because it shapes every engine of the pool.
	roundDeadline time.Duration
	// retries and retryBackoff are the WithRetry budget: up to retries
	// re-runs after a transient failure, sleeping backoff, 2·backoff,
	// 4·backoff, ... between attempts. Call-scoped.
	retries      int
	retryBackoff time.Duration
	// faults is the call's injected fault schedule (WithInjectedPanic,
	// WithInjectedStall, WithInjectedCancel). It is applied to the first
	// attempt of an operation only, so a WithRetry re-run executes
	// fault-free. Call-scoped; a handle default injects into every
	// operation's first attempt (chaos soak testing).
	faults []clique.Fault
	// planCacheCap enables the cross-run plan cache with the given entry
	// capacity (WithPlanCache; 0 = off). Handle-scoped: the cache lives on
	// the handle and is shared by every engine of the pool.
	planCacheCap int
	// census arms the charged planner census on every AlgorithmAuto
	// operation (WithChargedCensus; also implied by planCacheCap > 0).
	// Handle-scoped.
	census bool
	// sparsePath routes AlgorithmAuto operations whose plan admits it
	// through the sparse step-mode executors (WithSparsePath).
	// Handle-scoped.
	sparsePath bool
	// handleScoped is set to the option's name by every handle-scoped option
	// so that per-call application can reject it with a useful message. It is
	// reset before call options are applied and ignored by New.
	handleScoped string
}

func defaultConfig() config {
	return config{algorithm: Deterministic, seed: 1, sharedCache: true, maxConcurrency: 1}
}

// Option customises a Clique handle or (for call-scoped options) an
// individual operation. WithAlgorithm and WithSeed may be passed to New or
// to any call; WithStrictBandwidth, WithSharedScheduleCache and WithWorkers
// configure the engine and are accepted by New only.
type Option func(*config) error

// WithAlgorithm selects the algorithm (default Deterministic). It may be
// passed to New (handle default) or to an individual call.
func WithAlgorithm(a Algorithm) Option {
	return func(c *config) error {
		switch a {
		case Deterministic, LowCompute, Randomized, NaiveDirect, AlgorithmAuto:
			c.algorithm = a
			return nil
		default:
			return fmt.Errorf("congestedclique: unknown algorithm %d", int(a))
		}
	}
}

// WithSeed sets the seed used by the randomized algorithms (default 1). The
// deterministic algorithms ignore it. It may be passed to New (handle
// default) or to an individual call.
func WithSeed(seed int64) Option {
	return func(c *config) error {
		c.seed = seed
		return nil
	}
}

// WithStrictBandwidth makes every execution fail if any directed edge ever
// carries more than words 64-bit words in one round. Use it to assert that a
// workload respects the O(log n)-bits-per-edge model. Handle-scoped: pass it
// to New.
func WithStrictBandwidth(words int) Option {
	return func(c *config) error {
		if words <= 0 {
			return fmt.Errorf("congestedclique: strict bandwidth must be positive, got %d", words)
		}
		c.strictBudget = words
		c.handleScoped = "WithStrictBandwidth"
		return nil
	}
}

// WithSharedScheduleCache enables or disables the simulator's deterministic
// shared-computation cache (enabled by default). Disabling it makes every
// node recompute the public schedule colorings itself; results are identical,
// only simulation wall-clock time changes. Handle-scoped: pass it to New.
func WithSharedScheduleCache(enabled bool) Option {
	return func(c *config) error {
		c.sharedCache = enabled
		c.handleScoped = "WithSharedScheduleCache"
		return nil
	}
}

// WithWorkers bounds how many of the n node goroutines compute concurrently
// (0, the default, means unbounded; see the engine's scheduling notes).
// Executions are deterministic for every worker count. Handle-scoped: pass
// it to New.
func WithWorkers(k int) Option {
	return func(c *config) error {
		if k < 0 {
			return fmt.Errorf("congestedclique: worker count must be non-negative, got %d", k)
		}
		c.workers = k
		c.handleScoped = "WithWorkers"
		return nil
	}
}

// WithMaxConcurrency lets up to k independent operations execute in parallel
// on one Clique handle, backed by a lazily-grown pool of up to k engines
// (default 1: operations serialize, the behaviour of earlier versions).
// Results are bit-identical to serial execution for every k; each engine
// costs roughly what a k=1 handle costs (delivery arenas, staging buffers —
// O(n²) words under full load), so memory grows linearly in the concurrency
// actually used. Within one engine a run already spawns one goroutine per
// node, so aggregate throughput saturates near k × n runnable goroutines —
// keep k at or below GOMAXPROCS/streams of genuinely overlapping callers.
// Handle-scoped: pass it to New.
func WithMaxConcurrency(k int) Option {
	return func(c *config) error {
		if k < 1 {
			return fmt.Errorf("congestedclique: max concurrency must be at least 1, got %d", k)
		}
		c.maxConcurrency = k
		c.handleScoped = "WithMaxConcurrency"
		return nil
	}
}

// WithPlanCache enables the handle's cross-run plan and schedule cache
// (default: off) with capacity entries, evicted least-recently-used. The
// cache applies to AlgorithmAuto operations only (the planner produces the
// cached verdicts; explicitly chosen algorithms bypass it silently) and is
// shared by every engine of the handle's pool.
//
// A cache entry stores the planner verdict, the pipeline's announcement
// schedule and the engine's schedule colorings, keyed by an order-sensitive
// fingerprint of the staged demand; on a hit the exact demand sequence is
// compared word for word before anything cached is reused
// (validate-on-hit), so a drifted instance or a hash collision is counted
// as an invalidation and replanned — a wrong schedule can never be
// executed. Validated pipeline hits skip the planner, the colorings and all
// four announcement exchanges (16 rounds become 8); sorting hits skip the
// planner and the colorings. SortKeys instances carrying caller-assigned
// Origin/Seq labels bypass the cache (the canonical representation stores
// values only).
//
// Honest accounting: WithPlanCache implies the charged census of
// WithChargedCensus on every AlgorithmAuto operation, so the rounds and
// words that establish plan agreement and carry the fingerprint are on the
// wire and in the Stats — cache advantage is reported net of planning cost.
// The hit/miss/invalidation ledger is surfaced in CumulativeStats. Memory
// is bounded by capacity: a full-load n=256 route entry (demand sequence +
// schedule + colorings) is on the order of one megabyte. Handle-scoped:
// pass it to New.
func WithPlanCache(capacity int) Option {
	return func(c *config) error {
		if capacity < 1 {
			return fmt.Errorf("congestedclique: plan cache capacity must be at least 1, got %d", capacity)
		}
		c.planCacheCap = capacity
		c.handleScoped = "WithPlanCache"
		return nil
	}
}

// WithChargedCensus arms the planner census as a real charged protocol on
// every AlgorithmAuto operation of the handle: the O(1)-round aggregation
// that establishes the plan distributedly — by default computed centrally
// and charged nothing, keeping goldens bit-identical — runs on the wire
// (three rounds for Route, two for Sort), its words and rounds land in the
// operation's Stats, and every node verifies the distributed verdict
// against its plan. See internal/core/census.go for the protocol and its
// one documented on-faith quantity. Implied by WithPlanCache.
// Handle-scoped: pass it to New.
func WithChargedCensus() Option {
	return func(c *config) error {
		c.census = true
		c.handleScoped = "WithChargedCensus"
		return nil
	}
}

// WithSparsePath executes AlgorithmAuto operations on the sparse scale-out
// path whenever the plan admits it: the instance is converted to a
// per-source adjacency (internal/core.SparseDemand), planned without dense
// matrices, and — for the empty, direct and broadcast routing strategies and
// the empty and presorted sorting strategies — executed as a step program on
// the engine-driven worker-pool scheduler, so no per-node goroutine stack or
// length-n per-node buffer exists. Results, stats, and the charged census
// wire format are bit-identical to the default path on every instance both
// can run; plans the sparse executors do not cover (the full-load pipeline
// arms) fall back to the blocking path transparently. This is the switch
// that takes Route and Sort to n in the tens of thousands on sparse
// instances (see docs/PERFORMANCE.md, "Scaling curve"). Handle-scoped: pass
// it to New.
func WithSparsePath() Option {
	return func(c *config) error {
		c.sparsePath = true
		c.handleScoped = "WithSparsePath"
		return nil
	}
}

// Census round costs charged to every AlgorithmAuto operation when the
// census runs on the wire (WithChargedCensus, or implied by WithPlanCache).
const (
	// RouteCensusRounds is the round cost the charged census adds to Route.
	RouteCensusRounds = core.RouteCensusRounds
	// SortCensusRounds is the round cost the charged census adds to Sort.
	SortCensusRounds = core.SortCensusRounds
)

// WithRoundDeadline arms a round watchdog on every engine of the handle: if
// any round of an operation fails to turn over within d, the operation fails
// with an error wrapping ErrRoundDeadline (part of the ErrTransient family)
// that names the unarrived nodes, instead of hanging the round barrier
// forever on a stalled node. d must comfortably exceed the longest
// legitimate round of the workload — the watchdog is a wall-clock safety
// net, so whether a run straddling the deadline fails is timing-dependent.
// It adds no allocations to fault-free operations. Handle-scoped: pass it to
// New. See docs/RESILIENCE.md for guidance on choosing d.
func WithRoundDeadline(d time.Duration) Option {
	return func(c *config) error {
		if d <= 0 {
			return fmt.Errorf("congestedclique: round deadline must be positive, got %v", d)
		}
		c.roundDeadline = d
		c.handleScoped = "WithRoundDeadline"
		return nil
	}
}

// WithRetry gives an operation a transparent retry budget: after a failure
// in the ErrTransient family (injected fault, missed round deadline) the
// operation re-runs on a fresh engine checked out of the pool, up to n more
// times, sleeping backoff before the first retry and doubling it before each
// further one (exponential backoff; backoff may be zero for immediate
// retries). Permanent errors and caller context cancellations are returned
// immediately. A successful retry is invisible in the result — outputs are
// bit-identical to a fault-free run, and CumulativeStats traffic counts only
// the successful attempt — but is counted in CumulativeStats.Retries.
// Injected faults apply to the first attempt only, so a retried chaos run
// recovers deterministically. May be passed to New (handle default) or to an
// individual call.
func WithRetry(n int, backoff time.Duration) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("congestedclique: retry count must be non-negative, got %d", n)
		}
		if backoff < 0 {
			return fmt.Errorf("congestedclique: retry backoff must be non-negative, got %v", backoff)
		}
		c.retries = n
		c.retryBackoff = backoff
		return nil
	}
}

// WithInjectedPanic schedules a deterministic chaos fault: the chosen node
// panics when it reaches the barrier of the chosen round (its sends for that
// round are lost, exactly like a real crash), and the operation fails with
// an error wrapping ErrFaultInjected naming the node and round. The fault
// applies to the operation's first attempt only — a WithRetry re-run
// executes fault-free. May be passed to a call or, for chaos soaks, to New;
// multiple injection options combine into one fault plan. The node id is
// validated against the handle's n when the operation runs.
func WithInjectedPanic(node, round int) Option {
	return func(c *config) error {
		if round < 0 {
			return fmt.Errorf("congestedclique: injected panic round must be non-negative, got %d", round)
		}
		c.faults = append(slices.Clip(c.faults), clique.Fault{Kind: clique.FaultPanic, Node: node, Round: round})
		return nil
	}
}

// WithInjectedStall schedules a deterministic chaos fault: the chosen node
// is delayed by d before arriving at the barrier of the chosen round. A
// stall by itself only slows the operation down (results stay bit-identical
// to a fault-free run); combined with WithRoundDeadline, a stall longer than
// the deadline is converted into an ErrRoundDeadline failure, and the
// stalled node is woken immediately rather than sleeping out d. First
// attempt only, like WithInjectedPanic.
func WithInjectedStall(node, round int, d time.Duration) Option {
	return func(c *config) error {
		if round < 0 {
			return fmt.Errorf("congestedclique: injected stall round must be non-negative, got %d", round)
		}
		if d <= 0 {
			return fmt.Errorf("congestedclique: injected stall duration must be positive, got %v", d)
		}
		c.faults = append(slices.Clip(c.faults), clique.Fault{Kind: clique.FaultStall, Node: node, Round: round, Stall: d})
		return nil
	}
}

// WithInjectedCancel schedules a deterministic chaos fault: the operation is
// cancelled at the exact turn-over of the chosen round — after every node
// has arrived at the barrier, instead of delivering — failing with an error
// wrapping ErrFaultInjected. This is the deterministic analogue of a context
// cancellation landing mid-operation, and exercises the same
// barrier-release path. First attempt only, like WithInjectedPanic.
func WithInjectedCancel(round int) Option {
	return func(c *config) error {
		if round < 0 {
			return fmt.Errorf("congestedclique: injected cancel round must be non-negative, got %d", round)
		}
		c.faults = append(slices.Clip(c.faults), clique.Fault{Kind: clique.FaultCancel, Node: -1, Round: round})
		return nil
	}
}

func buildNetwork(n int, cfg config) (*clique.Network, error) {
	opts := []clique.Option{clique.WithSharedCache(cfg.sharedCache)}
	if cfg.strictBudget > 0 {
		opts = append(opts, clique.WithStrictEdgeBudget(cfg.strictBudget))
	}
	if cfg.workers > 0 {
		opts = append(opts, clique.WithWorkers(cfg.workers))
	}
	if cfg.roundDeadline > 0 {
		opts = append(opts, clique.WithRoundDeadline(cfg.roundDeadline))
	}
	return clique.New(n, opts...)
}

func applyOptions(opts []Option) (config, error) {
	cfg := defaultConfig()
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}

// applyCallOptions layers per-call options over the handle's defaults,
// rejecting handle-scoped ones.
func applyCallOptions(base config, opts []Option) (config, error) {
	cfg := base
	cfg.handleScoped = ""
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return cfg, err
		}
		if cfg.handleScoped != "" {
			return cfg, fmt.Errorf("congestedclique: %s is handle-scoped; pass it to New, not to an individual call", cfg.handleScoped)
		}
	}
	return cfg, nil
}

func toCoreMessage(m Message) core.Message {
	return core.Message{Src: m.Src, Dst: m.Dst, Seq: m.Seq, Payload: clique.Word(m.Payload)}
}

func fromCoreMessage(m core.Message) Message {
	return Message{Src: m.Src, Dst: m.Dst, Seq: m.Seq, Payload: int64(m.Payload)}
}

func toCoreKey(k Key) core.Key {
	return core.Key{Value: k.Value, Origin: k.Origin, Seq: k.Seq}
}

func fromCoreKey(k core.Key) Key {
	return Key{Value: k.Value, Origin: k.Origin, Seq: k.Seq}
}
