package congestedclique

// Tests for the session API semantics: handle reuse produces bit-identical
// statistics, handles are independent under concurrency, context
// cancellation aborts without stranding the barrier, closed handles fail
// cleanly, and the option scope split is enforced.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestSessionReuseStatsBitIdentical runs the golden full-load workloads
// repeatedly (and interleaved with other operations) on one handle and
// checks every run's statistics against a fresh one-shot call.
func TestSessionReuseStatsBitIdentical(t *testing.T) {
	t.Parallel()
	const n = 64
	ctx := context.Background()
	msgs := benchRouteWorkload(n)
	values := benchSortWorkload(n)

	oneShotRoute, err := Route(n, msgs)
	if err != nil {
		t.Fatal(err)
	}
	oneShotSort, err := Sort(n, values)
	if err != nil {
		t.Fatal(err)
	}

	cl, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for round := 0; round < 3; round++ {
		res, err := cl.Route(ctx, msgs)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if res.Stats != oneShotRoute.Stats {
			t.Fatalf("round %d: session Route stats %+v differ from one-shot %+v", round, res.Stats, oneShotRoute.Stats)
		}
		sorted, err := cl.Sort(ctx, values)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if sorted.Stats != oneShotSort.Stats {
			t.Fatalf("round %d: session Sort stats %+v differ from one-shot %+v", round, sorted.Stats, oneShotSort.Stats)
		}
		// Results, not just stats, must be identical.
		for i := range res.Delivered {
			if len(res.Delivered[i]) != len(oneShotRoute.Delivered[i]) {
				t.Fatalf("round %d: node %d received %d messages, one-shot %d", round, i, len(res.Delivered[i]), len(oneShotRoute.Delivered[i]))
			}
			for j := range res.Delivered[i] {
				if res.Delivered[i][j] != oneShotRoute.Delivered[i][j] {
					t.Fatalf("round %d: delivery diverged at node %d message %d", round, i, j)
				}
			}
		}
	}
	cum := cl.CumulativeStats()
	if cum.Operations != 6 {
		t.Fatalf("cumulative operations = %d, want 6", cum.Operations)
	}
	wantWords := 3 * (oneShotRoute.Stats.TotalWords + oneShotSort.Stats.TotalWords)
	if cum.TotalWords != wantWords {
		t.Fatalf("cumulative words = %d, want %d", cum.TotalWords, wantWords)
	}
}

// TestSessionMixedOperations exercises every method of one handle in
// sequence, ensuring no operation leaks state into the next.
func TestSessionMixedOperations(t *testing.T) {
	t.Parallel()
	const n = 128 // large enough for the Section 6.3 helper-node requirement
	ctx := context.Background()
	cl, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	values := make([][]int64, n)
	codes := make([][]int, n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			values[i] = append(values[i], int64((i*7+k*3)%11))
		}
		codes[i] = []int{i % 2}
	}

	if _, err := cl.Route(ctx, benchRouteWorkload(n)); err != nil {
		t.Fatal(err)
	}
	sorted, err := cl.Sort(ctx, values)
	if err != nil {
		t.Fatal(err)
	}
	if sorted.Total != n*n {
		t.Fatalf("sorted %d keys, want %d", sorted.Total, n*n)
	}
	if _, err := cl.Rank(ctx, values); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.SelectKth(ctx, values, 5); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Median(ctx, values); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Mode(ctx, values); err != nil {
		t.Fatal(err)
	}
	hist, err := cl.CountSmallKeys(ctx, codes, 2)
	if err != nil {
		t.Fatal(err)
	}
	if hist.Counts[0]+hist.Counts[1] != int64(n) {
		t.Fatalf("histogram counted %d keys, want %d", hist.Counts[0]+hist.Counts[1], n)
	}
	if cum := cl.CumulativeStats(); cum.Operations != 7 {
		t.Fatalf("cumulative operations = %d, want 7", cum.Operations)
	}
}

// TestSessionConcurrentHandles runs independent handles from concurrent
// goroutines (the intended scaling pattern) under -race and checks each
// produces the golden deterministic stats.
func TestSessionConcurrentHandles(t *testing.T) {
	t.Parallel()
	const n = 25
	const handles = 4
	ctx := context.Background()
	msgs := benchRouteWorkload(n)
	want, err := Route(n, msgs)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, handles)
	for h := 0; h < handles; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			cl, err := New(n)
			if err != nil {
				errs[h] = err
				return
			}
			defer cl.Close()
			for round := 0; round < 3; round++ {
				res, err := cl.Route(ctx, msgs)
				if err != nil {
					errs[h] = err
					return
				}
				if res.Stats != want.Stats {
					errs[h] = fmt.Errorf("handle %d round %d: stats %+v, want %+v", h, round, res.Stats, want.Stats)
					return
				}
			}
		}(h)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestSessionSerializesSharedHandle verifies a single handle used from many
// goroutines stays correct (operations serialize internally).
func TestSessionSerializesSharedHandle(t *testing.T) {
	t.Parallel()
	const n = 16
	ctx := context.Background()
	msgs := benchRouteWorkload(n)
	want, err := Route(n, msgs)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 2; round++ {
				res, err := cl.Route(ctx, msgs)
				if err != nil {
					errs[g] = err
					return
				}
				if res.Stats != want.Stats {
					errs[g] = fmt.Errorf("goroutine %d: stats diverged", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if cum := cl.CumulativeStats(); cum.Operations != 8 {
		t.Fatalf("cumulative operations = %d, want 8", cum.Operations)
	}
}

// TestSessionContextCancellation cancels an in-flight Route shortly after it
// starts: the call must return an error wrapping context.Canceled without
// stranding any node, and the handle must produce golden results afterwards.
func TestSessionContextCancellation(t *testing.T) {
	t.Parallel()
	const n = 256 // large enough that the run is mid-flight when cancel lands
	msgs := benchRouteWorkload(n)
	cl, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	if _, err := cl.Route(ctx, msgs); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Route returned %v, want an error wrapping context.Canceled", err)
	}

	// The handle recovered: a fresh context produces the golden stats.
	want, err := Route(n, msgs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Route(context.Background(), msgs)
	if err != nil {
		t.Fatalf("Route after cancellation: %v", err)
	}
	if res.Stats != want.Stats {
		t.Fatalf("stats after cancellation %+v, want %+v", res.Stats, want.Stats)
	}
	// Only the successful operation counts toward the session aggregate.
	if cum := cl.CumulativeStats(); cum.Operations != 1 || cum.TotalWords != want.Stats.TotalWords {
		t.Fatalf("cancelled run leaked into cumulative stats: %+v", cum)
	}
}

// TestSessionPreCancelledContext: a context that is already over fails fast.
func TestSessionPreCancelledContext(t *testing.T) {
	t.Parallel()
	cl, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cl.Route(ctx, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Route returned %v", err)
	}
	if _, err := cl.Route(context.Background(), nil); err != nil {
		t.Fatalf("Route after pre-cancelled call: %v", err)
	}
}

// TestSessionUseAfterClose: every method fails with ErrClosed, Close is
// idempotent. The clique is large enough (domain 2 needs n >= 128, Section
// 6.3) that every call below is well-formed — input validation runs before
// the pool checkout, so a malformed call would report its validation error
// instead of exercising the ErrClosed path.
func TestSessionUseAfterClose(t *testing.T) {
	t.Parallel()
	cl, err := New(128)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := cl.Route(ctx, nil); err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := cl.Route(ctx, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Route after Close returned %v, want ErrClosed", err)
	}
	if _, err := cl.Sort(ctx, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sort after Close returned %v, want ErrClosed", err)
	}
	if _, err := cl.CountSmallKeys(ctx, nil, 2); !errors.Is(err, ErrClosed) {
		t.Fatalf("CountSmallKeys after Close returned %v, want ErrClosed", err)
	}
}

// TestHandleScopedOptionRejectedPerCall: engine-shaping options are accepted
// by New but rejected by individual calls.
func TestHandleScopedOptionRejectedPerCall(t *testing.T) {
	t.Parallel()
	ctx := context.Background()
	cl, err := New(8, WithStrictBandwidth(64), WithWorkers(2), WithSharedScheduleCache(true))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for _, opt := range []Option{WithStrictBandwidth(16), WithSharedScheduleCache(false), WithWorkers(4)} {
		if _, err := cl.Route(ctx, nil, opt); err == nil {
			t.Fatal("handle-scoped option accepted by a call")
		}
	}
	// Call-scoped options work per call and override handle defaults.
	if _, err := cl.Route(ctx, nil, WithAlgorithm(LowCompute), WithSeed(7)); err != nil {
		t.Fatalf("call-scoped options rejected: %v", err)
	}
}

// TestSortAlgorithmFallbackAndRejection pins the documented Sort behaviour:
// LowCompute falls back to the deterministic sorter bit for bit, NaiveDirect
// is rejected with ErrUnsupportedAlgorithm through both API styles.
func TestSortAlgorithmFallbackAndRejection(t *testing.T) {
	t.Parallel()
	const n = 16
	values := benchSortWorkload(n)

	det, err := Sort(n, values)
	if err != nil {
		t.Fatal(err)
	}
	lc, err := Sort(n, values, WithAlgorithm(LowCompute))
	if err != nil {
		t.Fatalf("LowCompute sorting must fall back to deterministic: %v", err)
	}
	if lc.Stats != det.Stats {
		t.Fatalf("LowCompute fallback stats %+v differ from deterministic %+v", lc.Stats, det.Stats)
	}

	if _, err := Sort(n, values, WithAlgorithm(NaiveDirect)); !errors.Is(err, ErrUnsupportedAlgorithm) {
		t.Fatalf("NaiveDirect Sort returned %v, want ErrUnsupportedAlgorithm", err)
	}
	if _, err := SortKeys(n, nil, WithAlgorithm(NaiveDirect)); !errors.Is(err, ErrUnsupportedAlgorithm) {
		t.Fatalf("NaiveDirect SortKeys returned %v, want ErrUnsupportedAlgorithm", err)
	}
	cl, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	if _, err := cl.Sort(ctx, values, WithAlgorithm(NaiveDirect)); !errors.Is(err, ErrUnsupportedAlgorithm) {
		t.Fatalf("session NaiveDirect Sort returned %v, want ErrUnsupportedAlgorithm", err)
	}

	// The sorting-based corollaries follow the same rule: no silent
	// fallback for algorithms that have no implementation there.
	for _, alg := range []Algorithm{Randomized, NaiveDirect} {
		if _, err := cl.Rank(ctx, values, WithAlgorithm(alg)); !errors.Is(err, ErrUnsupportedAlgorithm) {
			t.Fatalf("Rank with %v returned %v, want ErrUnsupportedAlgorithm", alg, err)
		}
		if _, _, err := cl.Median(ctx, values, WithAlgorithm(alg)); !errors.Is(err, ErrUnsupportedAlgorithm) {
			t.Fatalf("Median with %v returned %v, want ErrUnsupportedAlgorithm", alg, err)
		}
		if _, err := cl.Mode(ctx, values, WithAlgorithm(alg)); !errors.Is(err, ErrUnsupportedAlgorithm) {
			t.Fatalf("Mode with %v returned %v, want ErrUnsupportedAlgorithm", alg, err)
		}
	}
	// LowCompute falls back to deterministic for the corollaries, like Sort.
	if _, _, err := cl.Median(ctx, values, WithAlgorithm(LowCompute)); err != nil {
		t.Fatalf("Median under LowCompute fallback: %v", err)
	}
}

// TestRouteValidationSeqPaths exercises both sequence-dedup paths of the
// allocation-free validator: the dense bitmap window and the sorted
// fallback for out-of-window sequence numbers.
func TestRouteValidationSeqPaths(t *testing.T) {
	t.Parallel()
	// In-window duplicate (bitmap path).
	dup := [][]Message{{{Src: 0, Dst: 1, Seq: 0}, {Src: 0, Dst: 2, Seq: 0}}}
	if _, err := Route(4, dup); !errors.Is(err, ErrInvalidInstance) {
		t.Fatalf("bitmap path missed duplicate: %v", err)
	}
	// Out-of-window duplicates (sorted path): seqs far outside [0, len).
	dup = [][]Message{{{Src: 0, Dst: 1, Seq: 1 << 20}, {Src: 0, Dst: 2, Seq: 1 << 20}}}
	if _, err := Route(4, dup); !errors.Is(err, ErrInvalidInstance) {
		t.Fatalf("sorted path missed duplicate: %v", err)
	}
	// Mixed in/out of window, all distinct (including negatives): valid.
	ok := [][]Message{{
		{Src: 0, Dst: 1, Seq: -5},
		{Src: 0, Dst: 2, Seq: 0},
		{Src: 0, Dst: 3, Seq: 99999},
	}}
	if _, err := Route(4, ok); err != nil {
		t.Fatalf("distinct mixed seqs rejected: %v", err)
	}
	// Repeated validation on one handle must stay correct (scratch reuse).
	cl, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := cl.Route(ctx, ok); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if _, err := cl.Route(ctx, dup); !errors.Is(err, ErrInvalidInstance) {
			t.Fatalf("iteration %d: duplicate accepted after scratch reuse: %v", i, err)
		}
	}
}
