// Command topk computes distributed order statistics over measurements that
// are scattered across a clique of nodes: the median, the 99th-percentile
// latency and the top-k largest values, all through the deterministic sorting
// algorithm (Theorem 4.5) and its selection corollary (Section 4).
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"

	"congestedclique"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Print(err)
		os.Exit(1)
	}
}

func run() error {
	const (
		n    = 36 // nodes
		topK = 10
	)
	rng := rand.New(rand.NewSource(2024))

	// Every node holds n latency samples (microseconds) from its shard of a
	// fleet; a few nodes observe pathological outliers.
	values := make([][]int64, n)
	var all []int64
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			v := 100 + rng.Int63n(900)
			if i%7 == 0 && k%9 == 0 {
				v = 10_000 + rng.Int63n(50_000) // tail latency spikes
			}
			values[i] = append(values[i], v)
			all = append(all, v)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	total := len(all)
	ctx := context.Background()

	// All three order statistics run on one session handle.
	cl, err := congestedclique.New(n)
	if err != nil {
		return fmt.Errorf("building the clique: %w", err)
	}
	defer cl.Close()

	// Median via the selection corollary.
	median, stats, err := cl.Median(ctx, values)
	if err != nil {
		return fmt.Errorf("median: %w", err)
	}
	fmt.Printf("median latency: %dus (reference %dus), %d rounds\n", median.Value, all[(total-1)/2], stats.Rounds)

	// 99th percentile via SelectKth.
	p99rank := (total * 99) / 100
	p99, stats, err := cl.SelectKth(ctx, values, p99rank)
	if err != nil {
		return fmt.Errorf("p99: %w", err)
	}
	fmt.Printf("p99 latency:    %dus (reference %dus), %d rounds\n", p99.Value, all[p99rank], stats.Rounds)

	// Top-k: sort once, read the tail batches.
	sorted, err := cl.Sort(ctx, values)
	if err != nil {
		return fmt.Errorf("sort: %w", err)
	}
	var top []int64
	for i := n - 1; i >= 0 && len(top) < topK; i-- {
		batch := sorted.Batches[i]
		for j := len(batch) - 1; j >= 0 && len(top) < topK; j-- {
			top = append(top, batch[j].Value)
		}
	}
	fmt.Printf("top-%d outliers (descending, via %d-round sort):\n  %v\n", topK, sorted.Stats.Rounds, top)
	for i := 0; i < topK; i++ {
		if top[i] != all[total-1-i] {
			return fmt.Errorf("top-%d mismatch at position %d: %d vs %d", topK, i, top[i], all[total-1-i])
		}
	}
	fmt.Println("all order statistics match the centralised reference")
	return nil
}
