// Command quickstart demonstrates the two headline operations of the library
// on a small congested clique: routing a full all-to-all message load in 16
// rounds (Theorem 3.7) and sorting n keys per node in 37 rounds
// (Theorem 4.5).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	congestedclique "congestedclique"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Print(err)
		os.Exit(1)
	}
}

func run() error {
	const n = 64 // a perfect square keeps the schedule at the paper's exact constants
	rng := rand.New(rand.NewSource(42))

	// --- Routing: every node sends one message to every node. -------------
	msgs := make([][]congestedclique.Message, n)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			msgs[src] = append(msgs[src], congestedclique.Message{
				Src:     src,
				Dst:     dst,
				Seq:     dst,
				Payload: int64(src*1000 + dst),
			})
		}
	}
	routed, err := congestedclique.Route(n, msgs)
	if err != nil {
		return fmt.Errorf("routing failed: %w", err)
	}
	fmt.Printf("routing:  n=%d  problem messages=%d  wire packets=%d  rounds=%d (paper: <= 16)  max edge words/round=%d\n",
		n, n*n, routed.Stats.TotalMessages, routed.Stats.Rounds, routed.Stats.MaxEdgeWords)
	fmt.Printf("          node 7 received %d messages, first payload %d\n",
		len(routed.Delivered[7]), routed.Delivered[7][0].Payload)

	// --- Sorting: every node contributes n random keys. --------------------
	values := make([][]int64, n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			values[i] = append(values[i], rng.Int63n(1_000_000))
		}
	}
	sorted, err := congestedclique.Sort(n, values)
	if err != nil {
		return fmt.Errorf("sorting failed: %w", err)
	}
	first := sorted.Batches[0]
	last := sorted.Batches[n-1]
	fmt.Printf("sorting:  n=%d  keys=%d  rounds=%d (paper: <= 37)\n", n, sorted.Total, sorted.Stats.Rounds)
	fmt.Printf("          node 0 holds ranks [%d,%d) starting with %d; node %d ends with %d\n",
		sorted.Starts[0], sorted.Starts[0]+len(first), first[0].Value, n-1, last[len(last)-1].Value)
	return nil
}
