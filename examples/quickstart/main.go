// Command quickstart demonstrates the two headline operations of the library
// on a small congested clique: routing a full all-to-all message load in 16
// rounds (Theorem 3.7) and sorting n keys per node in 37 rounds
// (Theorem 4.5). It shows both API styles: the session handle
// (congestedclique.New + methods), which amortizes the simulator across many
// operations and accepts a context, and the package-level one-shot
// convenience functions, which produce bit-identical results.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"

	congestedclique "congestedclique"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Print(err)
		os.Exit(1)
	}
}

func run() error {
	const n = 64 // a perfect square keeps the schedule at the paper's exact constants
	rng := rand.New(rand.NewSource(42))
	ctx := context.Background()

	// --- Session style: one handle serves every operation. ----------------
	cl, err := congestedclique.New(n)
	if err != nil {
		return fmt.Errorf("building the clique: %w", err)
	}
	defer cl.Close()

	// Routing: every node sends one message to every node.
	msgs := make([][]congestedclique.Message, n)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			msgs[src] = append(msgs[src], congestedclique.Message{
				Src:     src,
				Dst:     dst,
				Seq:     dst,
				Payload: int64(src*1000 + dst),
			})
		}
	}
	routed, err := cl.Route(ctx, msgs)
	if err != nil {
		return fmt.Errorf("routing failed: %w", err)
	}
	fmt.Printf("routing:  n=%d  problem messages=%d  wire packets=%d  rounds=%d (paper: <= 16)  max edge words/round=%d\n",
		n, n*n, routed.Stats.TotalMessages, routed.Stats.Rounds, routed.Stats.MaxEdgeWords)
	fmt.Printf("          node 7 received %d messages, first payload %d\n",
		len(routed.Delivered[7]), routed.Delivered[7][0].Payload)

	// Sorting: every node contributes n random keys, on the same handle.
	values := make([][]int64, n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			values[i] = append(values[i], rng.Int63n(1_000_000))
		}
	}
	sorted, err := cl.Sort(ctx, values)
	if err != nil {
		return fmt.Errorf("sorting failed: %w", err)
	}
	first := sorted.Batches[0]
	last := sorted.Batches[n-1]
	fmt.Printf("sorting:  n=%d  keys=%d  rounds=%d (paper: <= 37)\n", n, sorted.Total, sorted.Stats.Rounds)
	fmt.Printf("          node 0 holds ranks [%d,%d) starting with %d; node %d ends with %d\n",
		sorted.Starts[0], sorted.Starts[0]+len(first), first[0].Value, n-1, last[len(last)-1].Value)

	totals := cl.CumulativeStats()
	fmt.Printf("session:  %d operations, %d rounds, %d words total on one handle\n",
		totals.Operations, totals.Rounds, totals.TotalWords)

	// --- One-shot style: identical results without managing a handle. ------
	oneShot, err := congestedclique.Route(n, msgs)
	if err != nil {
		return fmt.Errorf("one-shot routing failed: %w", err)
	}
	if oneShot.Stats != routed.Stats {
		return fmt.Errorf("one-shot and session stats differ: %+v vs %+v", oneShot.Stats, routed.Stats)
	}
	fmt.Println("one-shot: congestedclique.Route matches the session run bit for bit")
	return nil
}
