// Command shuffle uses the deterministic router as the shuffle phase of a
// word-count style map/reduce job: every node ("mapper") holds a shard of
// documents, hashes each word to a reducer node, and the Information
// Distribution Task delivers every (word, count) pair to its reducer in a
// constant number of rounds — the scenario the paper's introduction motivates
// with overlay networks whose bandwidth, not topology, is the constraint.
package main

import (
	"context"
	"fmt"
	"hash/fnv"
	"log"
	"math/rand"
	"os"
	"strings"

	congestedclique "congestedclique"
)

const n = 49 // number of mapper/reducer nodes

var dictionary = strings.Fields(`
	routing sorting clique congest round message bandwidth node edge color
	matching koenig deterministic randomized bound constant lenzen podc
	distributed algorithm network relay delimiter bucket sample key payload
`)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Print(err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(7))

	// Map phase (local): each node counts words in its shard and addresses
	// each (word, count) pair to the reducer that owns the word.
	wordID := make(map[string]int64, len(dictionary))
	for i, w := range dictionary {
		wordID[w] = int64(i)
	}
	// Each distinct word is owned by its own reducer so that no reducer can
	// receive more than n (word,count) pairs — the Problem 3.1 load bound.
	// With more words than nodes one would shard words over reducers and split
	// the job into several routing instances.
	if len(dictionary) > n {
		log.Fatalf("dictionary (%d words) must not exceed the clique size %d", len(dictionary), n)
	}
	reducerOf := func(word string) int {
		h := fnv.New32a()
		_, _ = h.Write([]byte(word))
		_ = h // the hash is kept for illustration; ownership is by word id
		return int(wordID[word]) % n
	}

	truth := make(map[string]int64)
	msgs := make([][]congestedclique.Message, n)
	for mapper := 0; mapper < n; mapper++ {
		local := make(map[string]int64)
		for k := 0; k < 40; k++ {
			w := dictionary[rng.Intn(len(dictionary))]
			local[w]++
			truth[w]++
		}
		for w, count := range local {
			msgs[mapper] = append(msgs[mapper], congestedclique.Message{
				Src:     mapper,
				Dst:     reducerOf(w),
				Seq:     len(msgs[mapper]),
				Payload: wordID[w]<<32 | count, // pack (word, count) into one O(log n)-bit payload
			})
		}
	}

	// Shuffle phase: one deterministic routing instance on a session handle —
	// a real map/reduce driver would shard larger jobs into several routing
	// instances and run them all on this one handle.
	cl, err := congestedclique.New(n)
	if err != nil {
		return fmt.Errorf("building the clique: %w", err)
	}
	defer cl.Close()
	res, err := cl.Route(context.Background(), msgs)
	if err != nil {
		return fmt.Errorf("shuffle failed: %w", err)
	}

	// Reduce phase (local): every reducer sums the counts it received.
	reduced := make(map[string]int64)
	for _, inbox := range res.Delivered {
		for _, m := range inbox {
			word := dictionary[m.Payload>>32]
			reduced[word] += m.Payload & 0xFFFFFFFF
		}
	}
	for w, want := range truth {
		if reduced[w] != want {
			return fmt.Errorf("word %q reduced to %d, want %d", w, reduced[w], want)
		}
	}

	fmt.Printf("shuffled %d (word,count) pairs across %d nodes in %d rounds (paper bound: 16)\n",
		res.Stats.TotalMessages, n, res.Stats.Rounds)
	fmt.Printf("max edge load %d words/round; all %d distinct words reduced correctly\n",
		res.Stats.MaxEdgeWords, len(truth))
	top, most := "", int64(0)
	for w, c := range reduced {
		if c > most || (c == most && w < top) {
			top, most = w, c
		}
	}
	fmt.Printf("most frequent word: %q (%d occurrences)\n", top, most)
	return nil
}
