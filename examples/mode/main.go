// Command mode finds the most frequent element of a distributed multiset in
// two different ways and compares their costs:
//
//   - Mode: sorting-based (Theorem 4.5 plus one summary round), which works
//     for arbitrary O(log n)-bit keys, and
//   - CountSmallKeys: the Section 6.3 counting protocol, which needs only two
//     rounds of single-word messages when the key domain is small
//     (here: HTTP-status-like codes).
//
// It also uses Rank (Corollary 4.6) to give every node the rank of each of
// its own observations among the distinct observed values.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"

	"congestedclique"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Print(err)
		os.Exit(1)
	}
}

func run() error {
	const (
		n       = 256
		perNode = 64
		domain  = 3 // status classes 0..2 (Section 6.3 needs domain*log^2(n) <= n)
	)
	rng := rand.New(rand.NewSource(99))
	ctx := context.Background()

	// One session handle serves the small-domain count, the sorting-based
	// mode and the rank query below.
	cl, err := congestedclique.New(n)
	if err != nil {
		return fmt.Errorf("building the clique: %w", err)
	}
	defer cl.Close()

	// Every node observed a stream of status codes; class 2 dominates.
	codes := make([][]int, n)
	values := make([][]int64, n)
	truth := make([]int, domain)
	for i := 0; i < n; i++ {
		for k := 0; k < perNode; k++ {
			c := rng.Intn(domain)
			if rng.Intn(3) != 0 {
				c = 2
			}
			codes[i] = append(codes[i], c)
			values[i] = append(values[i], int64(c))
			truth[c]++
		}
	}

	// Small-domain path: Section 6.3, two rounds, one-word messages.
	hist, err := cl.CountSmallKeys(ctx, codes, domain)
	if err != nil {
		return fmt.Errorf("small-key counting: %w", err)
	}
	best, bestCount := 0, int64(0)
	for v, c := range hist.Counts {
		if c > bestCount {
			best, bestCount = v, c
		}
	}
	fmt.Printf("section 6.3 counting: mode=%d count=%d  rounds=%d  max edge words=%d\n",
		best, bestCount, hist.Stats.Rounds, hist.Stats.MaxEdgeWords)

	// General path: sorting-based mode (works for arbitrary 64-bit keys).
	mode, err := cl.Mode(ctx, values)
	if err != nil {
		return fmt.Errorf("mode: %w", err)
	}
	fmt.Printf("sorting-based mode:   mode=%d count=%d  rounds=%d\n", mode.Value, mode.Count, mode.Stats.Rounds)

	if int64(truth[best]) != bestCount || mode.Value != int64(best) || mode.Count != truth[best] {
		return fmt.Errorf("mode mismatch: truth %v", truth)
	}

	// Rank-in-union: how does each node's first observation rank among the
	// distinct values seen anywhere?
	ranks, err := cl.Rank(ctx, values)
	if err != nil {
		return fmt.Errorf("rank: %w", err)
	}
	fmt.Printf("corollary 4.6: %d distinct values; node 3's first observation %d has distinct-rank %d (rounds=%d)\n",
		ranks.DistinctTotal, values[3][0], ranks.Ranks[3][0], ranks.Stats.Rounds)
	return nil
}
