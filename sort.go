package congestedclique

import (
	"context"
	"fmt"
)

// SortResult is the outcome of one sorting execution (Problem 4.1): node i's
// batch holds the keys of global ranks [Starts[i], Starts[i]+len(Batches[i])).
type SortResult struct {
	// Batches[i] is node i's contiguous batch of the globally sorted order.
	Batches [][]Key
	// Starts[i] is the global rank of the first key of Batches[i].
	Starts []int
	// Total is the number of keys in the system.
	Total int
	// Strategy is the strategy the demand-aware sorting planner selected.
	// It is set only when the operation ran under AlgorithmAuto; under an
	// explicitly chosen algorithm it is the zero value ("unplanned").
	Strategy SortStrategy
	// Stats describes the execution cost.
	Stats Stats
}

// Sort sorts the values of a clique of n nodes: values[i] are node i's keys
// (at most n per node). It is the one-shot convenience form of Clique.Sort
// (see Route for the one-shot contract). The default algorithm is the
// paper's 37-round deterministic Algorithm 4 (Theorem 4.5);
// WithAlgorithm(AlgorithmAuto) consults the demand-aware sorting planner,
// WithAlgorithm(Randomized) selects the sample-sort baseline, LowCompute
// falls back to the deterministic sorter, and NaiveDirect is rejected with
// ErrUnsupportedAlgorithm.
func Sort(n int, values [][]int64, opts ...Option) (*SortResult, error) {
	if err := validateValueShims(n, values); err != nil {
		return nil, err
	}
	c, err := New(n, opts...)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return c.Sort(context.Background(), values)
}

// SortKeys is Sort for callers that already carry Key structures (for example
// to preserve their own Origin/Seq bookkeeping).
func SortKeys(n int, keys [][]Key, opts ...Option) (*SortResult, error) {
	if err := validateSortingInstance(n, keys); err != nil {
		return nil, err
	}
	c, err := New(n, opts...)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return c.sortKeysValidated(context.Background(), keys)
}

// RankResult is the outcome of the rank-in-union computation
// (Corollary 4.6).
type RankResult struct {
	// Ranks[i][j] is the rank, among the distinct values present anywhere in
	// the system, of values[i][j].
	Ranks [][]int
	// DistinctTotal is the number of distinct values in the system.
	DistinctTotal int
	// Stats describes the execution cost.
	Stats Stats
}

// Rank computes, for every input value, its index in the sorted sequence of
// distinct values present in the system; duplicate values share an index
// (Corollary 4.6). It is the one-shot convenience form of Clique.Rank.
func Rank(n int, values [][]int64, opts ...Option) (*RankResult, error) {
	if err := validateValueShims(n, values); err != nil {
		return nil, err
	}
	c, err := New(n, opts...)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return c.Rank(context.Background(), values)
}

// SelectKth returns the key of global rank k (0-based) among all input
// values, together with the execution statistics. It is the one-shot
// convenience form of Clique.SelectKth.
func SelectKth(n int, values [][]int64, k int, opts ...Option) (Key, Stats, error) {
	if err := validateValueShims(n, values); err != nil {
		return Key{}, Stats{}, err
	}
	c, err := New(n, opts...)
	if err != nil {
		return Key{}, Stats{}, err
	}
	defer c.Close()
	return c.SelectKth(context.Background(), values, k)
}

// Median returns the lower median of all input values. It is the one-shot
// convenience form of Clique.Median.
func Median(n int, values [][]int64, opts ...Option) (Key, Stats, error) {
	if err := validateValueShims(n, values); err != nil {
		return Key{}, Stats{}, err
	}
	c, err := New(n, opts...)
	if err != nil {
		return Key{}, Stats{}, err
	}
	defer c.Close()
	return c.Median(context.Background(), values)
}

// ModeResult is the most frequent value and its multiplicity.
type ModeResult struct {
	Value int64
	Count int
	Stats Stats
}

// Mode returns the most frequent value among all inputs (smallest value wins
// ties), computed by sorting plus one summary round. It is the one-shot
// convenience form of Clique.Mode.
func Mode(n int, values [][]int64, opts ...Option) (*ModeResult, error) {
	if err := validateValueShims(n, values); err != nil {
		return nil, err
	}
	c, err := New(n, opts...)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return c.Mode(context.Background(), values)
}

// HistogramResult is the outcome of the Section 6.3 small-key counting
// protocol: the exact global multiplicity of every value of the domain.
type HistogramResult struct {
	Counts []int64
	Stats  Stats
}

// CountSmallKeys counts keys drawn from a small domain [0, domain) in two
// rounds of single-word messages (Section 6.3). The domain must satisfy
// domain * ceil(log2(n+1))^2 <= n. It is the one-shot convenience form of
// Clique.CountSmallKeys.
func CountSmallKeys(n int, values [][]int, domain int, opts ...Option) (*HistogramResult, error) {
	if err := validateNodeCount(n); err != nil {
		return nil, err
	}
	if err := validateSmallKeys(n, values, domain); err != nil {
		return nil, err
	}
	c, err := New(n, opts...)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return c.CountSmallKeys(context.Background(), values, domain)
}

// validateValueShims is the engine-free precondition check shared by the
// plain-value one-shot shims: instance shape errors return before any
// engine construction.
func validateValueShims(n int, values [][]int64) error {
	if err := validateNodeCount(n); err != nil {
		return err
	}
	return validateValues(n, values)
}

// validateSortingInstance checks the Problem 4.1 preconditions.
func validateSortingInstance(n int, keys [][]Key) error {
	if n <= 0 {
		return fmt.Errorf("%w: need at least one node, got %d", ErrInvalidInstance, n)
	}
	if len(keys) > n {
		return fmt.Errorf("%w: %d input slots for %d nodes", ErrInvalidInstance, len(keys), n)
	}
	for i, ks := range keys {
		if len(ks) > n {
			return fmt.Errorf("%w: node %d holds %d keys, Problem 4.1 allows at most n=%d", ErrInvalidInstance, i, len(ks), n)
		}
		for _, k := range ks {
			if k.Origin != i {
				return fmt.Errorf("%w: node %d holds a key with origin %d", ErrInvalidInstance, i, k.Origin)
			}
		}
	}
	return nil
}
