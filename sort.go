package congestedclique

import (
	"fmt"

	"congestedclique/internal/baseline"
	"congestedclique/internal/clique"
	"congestedclique/internal/core"
)

// SortResult is the outcome of one sorting execution (Problem 4.1): node i's
// batch holds the keys of global ranks [Starts[i], Starts[i]+len(Batches[i])).
type SortResult struct {
	// Batches[i] is node i's contiguous batch of the globally sorted order.
	Batches [][]Key
	// Starts[i] is the global rank of the first key of Batches[i].
	Starts []int
	// Total is the number of keys in the system.
	Total int
	// Stats describes the execution cost.
	Stats Stats
}

// Sort sorts the values of a clique of n nodes: values[i] are node i's keys
// (at most n per node). Node i's batch of the globally sorted sequence is
// returned in Batches[i]. The default algorithm is the paper's 37-round
// deterministic Algorithm 4 (Theorem 4.5); WithAlgorithm(Randomized) selects
// the sample-sort baseline.
func Sort(n int, values [][]int64, opts ...Option) (*SortResult, error) {
	keys, err := keysFromValues(n, values)
	if err != nil {
		return nil, err
	}
	return SortKeys(n, keys, opts...)
}

// SortKeys is Sort for callers that already carry Key structures (for example
// to preserve their own Origin/Seq bookkeeping).
func SortKeys(n int, keys [][]Key, opts ...Option) (*SortResult, error) {
	cfg, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	if err := validateSortingInstance(n, keys); err != nil {
		return nil, err
	}
	inputs := make([][]core.Key, n)
	for i := 0; i < n && i < len(keys); i++ {
		for _, k := range keys[i] {
			inputs[i] = append(inputs[i], toCoreKey(k))
		}
	}

	nw, err := buildNetwork(n, cfg)
	if err != nil {
		return nil, err
	}
	results := make([]*core.SortResult, n)
	runErr := nw.Run(func(nd *clique.Node) error {
		var (
			res  *core.SortResult
			sErr error
		)
		switch cfg.algorithm {
		case Deterministic, LowCompute, NaiveDirect:
			res, sErr = core.Sort(nd, inputs[nd.ID()])
		case Randomized:
			res, sErr = baseline.RandomizedSampleSort(nd, inputs[nd.ID()], cfg.seed)
		default:
			sErr = fmt.Errorf("congestedclique: unsupported algorithm %v", cfg.algorithm)
		}
		if sErr != nil {
			return sErr
		}
		results[nd.ID()] = res
		return nil
	})
	if runErr != nil {
		return nil, runErr
	}

	out := &SortResult{
		Batches: make([][]Key, n),
		Starts:  make([]int, n),
		Stats:   statsFromMetrics(nw.Metrics()),
	}
	for i, res := range results {
		out.Total = res.Total
		out.Starts[i] = res.Start
		for _, k := range res.Batch {
			out.Batches[i] = append(out.Batches[i], fromCoreKey(k))
		}
	}
	return out, nil
}

// RankResult is the outcome of the rank-in-union computation
// (Corollary 4.6).
type RankResult struct {
	// Ranks[i][j] is the rank, among the distinct values present anywhere in
	// the system, of values[i][j].
	Ranks [][]int
	// DistinctTotal is the number of distinct values in the system.
	DistinctTotal int
	// Stats describes the execution cost.
	Stats Stats
}

// Rank computes, for every input value, its index in the sorted sequence of
// distinct values present in the system; duplicate values share an index
// (Corollary 4.6).
func Rank(n int, values [][]int64, opts ...Option) (*RankResult, error) {
	cfg, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	keys, err := keysFromValues(n, values)
	if err != nil {
		return nil, err
	}
	if err := validateSortingInstance(n, keys); err != nil {
		return nil, err
	}
	inputs := make([][]core.Key, n)
	for i := 0; i < n && i < len(keys); i++ {
		for _, k := range keys[i] {
			inputs[i] = append(inputs[i], toCoreKey(k))
		}
	}
	nw, err := buildNetwork(n, cfg)
	if err != nil {
		return nil, err
	}
	results := make([]*core.RankResult, n)
	runErr := nw.Run(func(nd *clique.Node) error {
		res, rErr := core.Rank(nd, inputs[nd.ID()])
		if rErr != nil {
			return rErr
		}
		results[nd.ID()] = res
		return nil
	})
	if runErr != nil {
		return nil, runErr
	}
	out := &RankResult{Ranks: make([][]int, n), Stats: statsFromMetrics(nw.Metrics())}
	for i := 0; i < n; i++ {
		out.DistinctTotal = results[i].DistinctTotal
		if i < len(values) {
			out.Ranks[i] = make([]int, len(values[i]))
			for j := range values[i] {
				out.Ranks[i][j] = results[i].Ranks[j]
			}
		}
	}
	return out, nil
}

// SelectKth returns the key of global rank k (0-based) among all input
// values, together with the execution statistics.
func SelectKth(n int, values [][]int64, k int, opts ...Option) (Key, Stats, error) {
	cfg, err := applyOptions(opts)
	if err != nil {
		return Key{}, Stats{}, err
	}
	keys, err := keysFromValues(n, values)
	if err != nil {
		return Key{}, Stats{}, err
	}
	if err := validateSortingInstance(n, keys); err != nil {
		return Key{}, Stats{}, err
	}
	inputs := coreKeys(n, keys)
	nw, err := buildNetwork(n, cfg)
	if err != nil {
		return Key{}, Stats{}, err
	}
	picked := make([]core.Key, n)
	runErr := nw.Run(func(nd *clique.Node) error {
		res, sErr := core.Select(nd, inputs[nd.ID()], k)
		if sErr != nil {
			return sErr
		}
		picked[nd.ID()] = res
		return nil
	})
	if runErr != nil {
		return Key{}, Stats{}, runErr
	}
	return fromCoreKey(picked[0]), statsFromMetrics(nw.Metrics()), nil
}

// Median returns the lower median of all input values.
func Median(n int, values [][]int64, opts ...Option) (Key, Stats, error) {
	cfg, err := applyOptions(opts)
	if err != nil {
		return Key{}, Stats{}, err
	}
	keys, err := keysFromValues(n, values)
	if err != nil {
		return Key{}, Stats{}, err
	}
	if err := validateSortingInstance(n, keys); err != nil {
		return Key{}, Stats{}, err
	}
	inputs := coreKeys(n, keys)
	nw, err := buildNetwork(n, cfg)
	if err != nil {
		return Key{}, Stats{}, err
	}
	picked := make([]core.Key, n)
	runErr := nw.Run(func(nd *clique.Node) error {
		res, sErr := core.Median(nd, inputs[nd.ID()])
		if sErr != nil {
			return sErr
		}
		picked[nd.ID()] = res
		return nil
	})
	if runErr != nil {
		return Key{}, Stats{}, runErr
	}
	return fromCoreKey(picked[0]), statsFromMetrics(nw.Metrics()), nil
}

// ModeResult is the most frequent value and its multiplicity.
type ModeResult struct {
	Value int64
	Count int
	Stats Stats
}

// Mode returns the most frequent value among all inputs (smallest value wins
// ties), computed by sorting plus one summary round.
func Mode(n int, values [][]int64, opts ...Option) (*ModeResult, error) {
	cfg, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	keys, err := keysFromValues(n, values)
	if err != nil {
		return nil, err
	}
	if err := validateSortingInstance(n, keys); err != nil {
		return nil, err
	}
	inputs := coreKeys(n, keys)
	nw, err := buildNetwork(n, cfg)
	if err != nil {
		return nil, err
	}
	results := make([]*core.ModeResult, n)
	runErr := nw.Run(func(nd *clique.Node) error {
		res, mErr := core.Mode(nd, inputs[nd.ID()])
		if mErr != nil {
			return mErr
		}
		results[nd.ID()] = res
		return nil
	})
	if runErr != nil {
		return nil, runErr
	}
	return &ModeResult{Value: results[0].Value, Count: results[0].Count, Stats: statsFromMetrics(nw.Metrics())}, nil
}

// HistogramResult is the outcome of the Section 6.3 small-key counting
// protocol: the exact global multiplicity of every value of the domain.
type HistogramResult struct {
	Counts []int64
	Stats  Stats
}

// CountSmallKeys counts keys drawn from a small domain [0, domain) in two
// rounds of single-word messages (Section 6.3). The domain must satisfy
// domain * ceil(log2(n+1))^2 <= n.
func CountSmallKeys(n int, values [][]int, domain int, opts ...Option) (*HistogramResult, error) {
	cfg, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("%w: need at least one node", ErrInvalidInstance)
	}
	if len(values) > n {
		return nil, fmt.Errorf("%w: %d input slots for %d nodes", ErrInvalidInstance, len(values), n)
	}
	inputs := make([][]int, n)
	for i := 0; i < n && i < len(values); i++ {
		inputs[i] = values[i]
	}
	nw, err := buildNetwork(n, cfg)
	if err != nil {
		return nil, err
	}
	results := make([]*core.SmallKeyResult, n)
	runErr := nw.Run(func(nd *clique.Node) error {
		res, cErr := core.SmallKeyCount(nd, inputs[nd.ID()], domain)
		if cErr != nil {
			return cErr
		}
		results[nd.ID()] = res
		return nil
	})
	if runErr != nil {
		return nil, runErr
	}
	return &HistogramResult{Counts: results[0].Counts, Stats: statsFromMetrics(nw.Metrics())}, nil
}

// keysFromValues attaches Origin/Seq labels to plain values.
func keysFromValues(n int, values [][]int64) ([][]Key, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: need at least one node, got %d", ErrInvalidInstance, n)
	}
	if len(values) > n {
		return nil, fmt.Errorf("%w: %d input slots for %d nodes", ErrInvalidInstance, len(values), n)
	}
	keys := make([][]Key, len(values))
	for i, vs := range values {
		for j, v := range vs {
			keys[i] = append(keys[i], Key{Value: v, Origin: i, Seq: j})
		}
	}
	return keys, nil
}

// validateSortingInstance checks the Problem 4.1 preconditions.
func validateSortingInstance(n int, keys [][]Key) error {
	if n <= 0 {
		return fmt.Errorf("%w: need at least one node, got %d", ErrInvalidInstance, n)
	}
	if len(keys) > n {
		return fmt.Errorf("%w: %d input slots for %d nodes", ErrInvalidInstance, len(keys), n)
	}
	for i, ks := range keys {
		if len(ks) > n {
			return fmt.Errorf("%w: node %d holds %d keys, Problem 4.1 allows at most n=%d", ErrInvalidInstance, i, len(ks), n)
		}
		for _, k := range ks {
			if k.Origin != i {
				return fmt.Errorf("%w: node %d holds a key with origin %d", ErrInvalidInstance, i, k.Origin)
			}
		}
	}
	return nil
}

func coreKeys(n int, keys [][]Key) [][]core.Key {
	inputs := make([][]core.Key, n)
	for i := 0; i < n && i < len(keys); i++ {
		for _, k := range keys[i] {
			inputs[i] = append(inputs[i], toCoreKey(k))
		}
	}
	return inputs
}
