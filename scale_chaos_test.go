package congestedclique

// Chaos at scale: the step executors' fault paths at n=4096 on the sparse
// route. A straggler stall under a generous watchdog is absorbed; a panic
// mid-round fails the attempt and the session retry re-runs it fault-free.
// Both recoveries must reproduce the fault-free sparse golden bit for bit.

import (
	"context"
	"testing"
	"time"

	"congestedclique/internal/workload"
)

func TestSparsePathChaosAtScale(t *testing.T) {
	const n = 4096
	ri, err := workload.ScaleSparseRoute(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	msgs := instanceMessages(ri)
	ctx := context.Background()

	golden, err := Route(n, msgs, WithAlgorithm(AlgorithmAuto), WithSparsePath())
	if err != nil {
		t.Fatal(err)
	}
	if golden.Strategy != StrategyDirect {
		t.Fatalf("scale-sparse strategy %v, want direct", golden.Strategy)
	}

	t.Run("straggler-absorbed", func(t *testing.T) {
		cl, err := New(n, WithSparsePath(), WithRoundDeadline(30*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		res, err := cl.Route(ctx, msgs, WithAlgorithm(AlgorithmAuto),
			WithInjectedStall(n/2, 0, 5*time.Millisecond))
		if err != nil {
			t.Fatalf("stalled run failed: %v", err)
		}
		routeResultEqual(t, "straggler-absorbed", res, golden)
	})

	t.Run("panic-then-retry", func(t *testing.T) {
		cl, err := New(n, WithSparsePath())
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		res, err := cl.Route(ctx, msgs, WithAlgorithm(AlgorithmAuto),
			WithInjectedPanic(n/4, 1), WithRetry(1, 0))
		if err != nil {
			t.Fatalf("retried run failed: %v", err)
		}
		routeResultEqual(t, "panic-then-retry", res, golden)
		if got := cl.CumulativeStats().Retries; got != 1 {
			t.Fatalf("recovery took %d retries, want 1", got)
		}
	})
}
