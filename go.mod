module congestedclique

go 1.24
