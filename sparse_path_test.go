package congestedclique

// Parity pins for WithSparsePath: every operation served by the sparse
// step-mode executors must be bit-identical — deliveries, strategy, and the
// full Stats block — to the same operation on the dense blocking path, with
// and without the charged census, on plan-cache hits, and on the pipeline
// fallback where the sparse handle silently reverts to the dense scheduler.

import (
	"context"
	"fmt"
	"testing"
)

// presortedValues builds a globally presorted [][]int64 instance: node i's
// values are ascending and strictly below node i+1's.
func presortedValues(n int) [][]int64 {
	values := make([][]int64, n)
	v := int64(0)
	for i := 0; i < n; i++ {
		cnt := (i*7)%5 + 1
		if i%11 == 0 {
			cnt = 0
		}
		for j := 0; j < cnt; j++ {
			values[i] = append(values[i], v)
			v += int64(1 + (i+j)%3)
		}
	}
	return values
}

// sparsePathRouteInstances is the root-level route shape sweep: one instance
// per sparse-served strategy plus the pipeline fallback.
func sparsePathRouteInstances(t *testing.T, n int) map[string][][]Message {
	t.Helper()
	oneToMany := make([][]Message, n)
	for j := 0; j < 6*min(n, 8); j++ {
		oneToMany[0] = append(oneToMany[0], Message{Src: 0, Dst: 1 + j%4, Seq: j, Payload: int64(j)})
	}
	return map[string][][]Message{
		"empty":     make([][]Message, n),
		"direct":    scenarioMessages(t, "sparse", n, 1),
		"broadcast": oneToMany,
		"pipeline":  benchRouteWorkload(n),
	}
}

func routeResultEqual(t *testing.T, label string, got, want *RouteResult) {
	t.Helper()
	if got.Strategy != want.Strategy {
		t.Fatalf("%s: strategy %v, want %v", label, got.Strategy, want.Strategy)
	}
	if got.Stats != want.Stats {
		t.Fatalf("%s: stats differ:\n sparse %+v\n dense  %+v", label, got.Stats, want.Stats)
	}
	routeDeliveredEqual(t, label, got, want)
}

func TestSparsePathRouteBitIdentical(t *testing.T) {
	t.Parallel()
	for _, n := range []int{64, 256} {
		for name, msgs := range sparsePathRouteInstances(t, n) {
			for _, census := range []bool{false, true} {
				label := fmt.Sprintf("n=%d/%s/census=%v", n, name, census)
				opts := []Option{WithAlgorithm(AlgorithmAuto)}
				if census {
					opts = append(opts, WithChargedCensus())
				}
				want, err := Route(n, msgs, opts...)
				if err != nil {
					t.Fatalf("%s: dense: %v", label, err)
				}
				got, err := Route(n, msgs, append(opts, WithSparsePath())...)
				if err != nil {
					t.Fatalf("%s: sparse: %v", label, err)
				}
				routeResultEqual(t, label, got, want)
			}
		}
	}
}

func TestSparsePathSortBitIdentical(t *testing.T) {
	t.Parallel()
	for _, n := range []int{64, 256} {
		for _, tc := range []struct {
			name   string
			values [][]int64
		}{
			{"empty", make([][]int64, n)},
			{"presorted", presortedValues(n)},
			{"pipeline", benchSortWorkload(n)},
		} {
			for _, census := range []bool{false, true} {
				label := fmt.Sprintf("n=%d/%s/census=%v", n, tc.name, census)
				opts := []Option{WithAlgorithm(AlgorithmAuto)}
				if census {
					opts = append(opts, WithChargedCensus())
				}
				want, err := Sort(n, tc.values, opts...)
				if err != nil {
					t.Fatalf("%s: dense: %v", label, err)
				}
				got, err := Sort(n, tc.values, append(opts, WithSparsePath())...)
				if err != nil {
					t.Fatalf("%s: sparse: %v", label, err)
				}
				if got.Strategy != want.Strategy {
					t.Fatalf("%s: strategy %v, want %v", label, got.Strategy, want.Strategy)
				}
				if got.Stats != want.Stats {
					t.Fatalf("%s: stats differ:\n sparse %+v\n dense  %+v", label, got.Stats, want.Stats)
				}
				if got.Total != want.Total {
					t.Fatalf("%s: total %d, want %d", label, got.Total, want.Total)
				}
				for i := 0; i < n; i++ {
					if got.Starts[i] != want.Starts[i] {
						t.Fatalf("%s: node %d start %d, want %d", label, i, got.Starts[i], want.Starts[i])
					}
					if len(got.Batches[i]) != len(want.Batches[i]) {
						t.Fatalf("%s: node %d batch length %d, want %d", label, i, len(got.Batches[i]), len(want.Batches[i]))
					}
					for j := range want.Batches[i] {
						if got.Batches[i][j] != want.Batches[i][j] {
							t.Fatalf("%s: node %d key %d = %+v, want %+v", label, i, j, got.Batches[i][j], want.Batches[i][j])
						}
					}
				}
			}
		}
	}
}

// TestSparsePathPlanCacheHit pins the interplay of the cross-run plan cache
// with the sparse executors: the second run of the same instance hits the
// cache (whose plans always arm the census with a pinned fingerprint) and the
// sparse census verify accepts it, bit-identically to the dense hit.
func TestSparsePathPlanCacheHit(t *testing.T) {
	t.Parallel()
	const n = 64
	ctx := context.Background()
	msgs := scenarioMessages(t, "sparse", n, 1)

	run := func(opts ...Option) [2]*RouteResult {
		cl, err := New(n, append([]Option{WithPlanCache(8)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		var out [2]*RouteResult
		for i := range out {
			res, err := cl.Route(ctx, msgs, WithAlgorithm(AlgorithmAuto))
			if err != nil {
				t.Fatal(err)
			}
			out[i] = res
		}
		return out
	}

	dense := run()
	sparse := run(WithSparsePath())
	for i := range dense {
		routeResultEqual(t, fmt.Sprintf("run %d", i), sparse[i], dense[i])
	}
}
