package congestedclique

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
)

func uniformInstance(n, per int, seed int64) [][]Message {
	rng := rand.New(rand.NewSource(seed))
	msgs := make([][]Message, n)
	for k := 0; k < per; k++ {
		perm := rng.Perm(n)
		for src, dst := range perm {
			msgs[src] = append(msgs[src], Message{Src: src, Dst: dst, Seq: len(msgs[src]), Payload: rng.Int63n(1 << 30)})
		}
	}
	return msgs
}

func checkDelivery(t *testing.T, msgs [][]Message, res *RouteResult) {
	t.Helper()
	want := map[Message]int{}
	total := 0
	for _, ms := range msgs {
		for _, m := range ms {
			want[m]++
			total++
		}
	}
	got := 0
	for dst, ms := range res.Delivered {
		for _, m := range ms {
			if m.Dst != dst {
				t.Fatalf("node %d received message for %d", dst, m.Dst)
			}
			if want[m] == 0 {
				t.Fatalf("unexpected message %+v", m)
			}
			want[m]--
			got++
		}
	}
	if got != total {
		t.Fatalf("delivered %d of %d", got, total)
	}
}

func TestRoutePublicAPIAllAlgorithms(t *testing.T) {
	t.Parallel()
	const n = 25
	msgs := uniformInstance(n, n, 1)
	for _, alg := range []Algorithm{Deterministic, LowCompute, Randomized, NaiveDirect} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			res, err := Route(n, msgs, WithAlgorithm(alg), WithSeed(7))
			if err != nil {
				t.Fatal(err)
			}
			checkDelivery(t, msgs, res)
			if res.Stats.Rounds == 0 || res.Stats.TotalMessages == 0 {
				t.Fatalf("missing stats: %+v", res.Stats)
			}
			switch alg {
			case Deterministic:
				if res.Stats.Rounds > 16 {
					t.Errorf("deterministic routing took %d rounds", res.Stats.Rounds)
				}
			case LowCompute:
				if res.Stats.Rounds > 12 {
					t.Errorf("low-compute routing took %d rounds", res.Stats.Rounds)
				}
			}
		})
	}
}

func TestRouteValidation(t *testing.T) {
	t.Parallel()
	if _, err := Route(0, nil); !errors.Is(err, ErrInvalidInstance) {
		t.Fatalf("zero nodes: %v", err)
	}
	bad := [][]Message{{{Src: 1, Dst: 0, Seq: 0}}}
	if _, err := Route(4, bad); !errors.Is(err, ErrInvalidInstance) {
		t.Fatalf("wrong source: %v", err)
	}
	bad = [][]Message{{{Src: 0, Dst: 9, Seq: 0}}}
	if _, err := Route(4, bad); !errors.Is(err, ErrInvalidInstance) {
		t.Fatalf("bad destination: %v", err)
	}
	bad = [][]Message{{{Src: 0, Dst: 1, Seq: 0}, {Src: 0, Dst: 1, Seq: 0}}}
	if _, err := Route(4, bad); !errors.Is(err, ErrInvalidInstance) {
		t.Fatalf("duplicate seq: %v", err)
	}
	// Receive overload: every node sends everything to node 0.
	over := make([][]Message, 4)
	for i := 0; i < 4; i++ {
		for k := 0; k < 4; k++ {
			over[i] = append(over[i], Message{Src: i, Dst: 0, Seq: k})
		}
	}
	if _, err := Route(4, over); !errors.Is(err, ErrInvalidInstance) {
		t.Fatalf("receive overload: %v", err)
	}
	if _, err := Route(4, nil, WithAlgorithm(Algorithm(99))); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := Route(4, nil, WithStrictBandwidth(0)); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
}

func TestRouteStrictBandwidthOption(t *testing.T) {
	t.Parallel()
	msgs := uniformInstance(16, 16, 3)
	if _, err := Route(16, msgs, WithStrictBandwidth(16)); err != nil {
		t.Fatalf("deterministic routing should fit in 16 words per edge: %v", err)
	}
	if _, err := Route(16, msgs, WithStrictBandwidth(1)); !errors.Is(err, ErrBandwidthExceeded) {
		t.Fatalf("a one-word budget cannot possibly suffice and should fail with ErrBandwidthExceeded, got %v", err)
	}
}

func TestNewUniformMessages(t *testing.T) {
	t.Parallel()
	msgs, err := NewUniformMessages([][]int{{1, 2}, {0}}, [][]int64{{10, 20}, {30}})
	if err != nil {
		t.Fatal(err)
	}
	if msgs[0][1].Dst != 2 || msgs[0][1].Payload != 20 || msgs[1][0].Src != 1 {
		t.Fatalf("unexpected messages %+v", msgs)
	}
	if _, err := NewUniformMessages([][]int{{1}}, [][]int64{{1, 2}}); err == nil {
		t.Fatal("mismatched shapes accepted")
	}
	if _, err := NewUniformMessages([][]int{{1}, {0}}, [][]int64{{1}}); err == nil {
		t.Fatal("mismatched row counts accepted")
	}
}

func TestSortPublicAPI(t *testing.T) {
	t.Parallel()
	const n = 16
	rng := rand.New(rand.NewSource(5))
	values := make([][]int64, n)
	var all []int64
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			v := rng.Int63n(1000)
			values[i] = append(values[i], v)
			all = append(all, v)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	for _, alg := range []Algorithm{Deterministic, Randomized} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			res, err := Sort(n, values, WithAlgorithm(alg), WithSeed(11))
			if err != nil {
				t.Fatal(err)
			}
			if res.Total != len(all) {
				t.Fatalf("total %d, want %d", res.Total, len(all))
			}
			var got []int64
			for _, batch := range res.Batches {
				for _, k := range batch {
					got = append(got, k.Value)
				}
			}
			if len(got) != len(all) {
				t.Fatalf("got %d keys, want %d", len(got), len(all))
			}
			for i := range all {
				if got[i] != all[i] {
					t.Fatalf("rank %d: %d want %d", i, got[i], all[i])
				}
			}
			if alg == Deterministic && res.Stats.Rounds > 37 {
				t.Errorf("deterministic sorting took %d rounds", res.Stats.Rounds)
			}
		})
	}
}

func TestSortValidation(t *testing.T) {
	t.Parallel()
	if _, err := Sort(0, nil); !errors.Is(err, ErrInvalidInstance) {
		t.Fatal("zero nodes accepted")
	}
	too := [][]int64{{1, 2, 3, 4, 5}}
	if _, err := Sort(4, too); !errors.Is(err, ErrInvalidInstance) {
		t.Fatal("too many keys accepted")
	}
	badKeys := [][]Key{{{Value: 1, Origin: 3, Seq: 0}}}
	if _, err := SortKeys(4, badKeys); !errors.Is(err, ErrInvalidInstance) {
		t.Fatal("foreign origin accepted")
	}
}

func TestRankSelectMedianModePublicAPI(t *testing.T) {
	t.Parallel()
	const n = 16
	values := make([][]int64, n)
	counts := map[int64]int{}
	var flat []int64
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			v := int64((i*k + 3*k + i) % 9)
			values[i] = append(values[i], v)
			counts[v]++
			flat = append(flat, v)
		}
	}
	sort.Slice(flat, func(i, j int) bool { return flat[i] < flat[j] })

	rank, err := Rank(n, values)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[int64]bool{}
	for _, v := range flat {
		distinct[v] = true
	}
	if rank.DistinctTotal != len(distinct) {
		t.Fatalf("distinct total %d, want %d", rank.DistinctTotal, len(distinct))
	}
	for i := range values {
		for j, v := range values[i] {
			want := 0
			for u := range distinct {
				if u < v {
					want++
				}
			}
			if rank.Ranks[i][j] != want {
				t.Fatalf("rank of %d = %d, want %d", v, rank.Ranks[i][j], want)
			}
		}
	}

	kth, _, err := SelectKth(n, values, 10)
	if err != nil {
		t.Fatal(err)
	}
	if kth.Value != flat[10] {
		t.Fatalf("10th value %d, want %d", kth.Value, flat[10])
	}
	med, _, err := Median(n, values)
	if err != nil {
		t.Fatal(err)
	}
	if med.Value != flat[(len(flat)-1)/2] {
		t.Fatalf("median %d, want %d", med.Value, flat[(len(flat)-1)/2])
	}

	mode, err := Mode(n, values)
	if err != nil {
		t.Fatal(err)
	}
	bestCount := 0
	var bestValue int64
	for v, c := range counts {
		if c > bestCount || (c == bestCount && v < bestValue) {
			bestCount, bestValue = c, v
		}
	}
	if mode.Value != bestValue || mode.Count != bestCount {
		t.Fatalf("mode (%d,%d), want (%d,%d)", mode.Value, mode.Count, bestValue, bestCount)
	}
}

func TestCountSmallKeysPublicAPI(t *testing.T) {
	t.Parallel()
	const n, domain = 128, 2
	values := make([][]int, n)
	want := make([]int64, domain)
	for i := 0; i < n; i++ {
		for k := 0; k < 5; k++ {
			v := (i + k) % domain
			values[i] = append(values[i], v)
			want[v]++
		}
	}
	res, err := CountSmallKeys(n, values, domain)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if res.Counts[v] != want[v] {
			t.Fatalf("count of %d = %d, want %d", v, res.Counts[v], want[v])
		}
	}
	if res.Stats.Rounds != 2 {
		t.Errorf("small-key counting took %d rounds, want 2", res.Stats.Rounds)
	}
	if _, err := CountSmallKeys(0, nil, 2); err == nil {
		t.Fatal("zero nodes accepted")
	}
}

func TestAlgorithmString(t *testing.T) {
	t.Parallel()
	names := map[Algorithm]string{
		Deterministic: "deterministic",
		LowCompute:    "low-compute",
		Randomized:    "randomized",
		NaiveDirect:   "naive-direct",
		Algorithm(42): "algorithm(42)",
	}
	for a, want := range names {
		if a.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(a), a.String(), want)
		}
	}
}
